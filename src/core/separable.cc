#include "core/separable.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace ssa {

Allocation SeparableAllocate(const std::vector<Money>& click_values,
                             const SeparableClickModel& model) {
  const int n = model.num_advertisers();
  const int k = model.num_slots();
  SSA_CHECK(static_cast<int>(click_values.size()) == n);

  // Top-k advertisers by advertiser-specific score alpha_i * v_i, via a
  // size-k min-heap: O(n log k).
  using Entry = std::pair<double, AdvertiserId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (AdvertiserId i = 0; i < n; ++i) {
    const double score = model.advertiser_factors()[i] * click_values[i];
    if (score <= 0.0) continue;
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace(score, i);
    } else if (heap.top() < Entry(score, i)) {  // (score, id) pair order
      heap.pop();
      heap.emplace(score, i);
    }
  }
  std::vector<Entry> top;
  top.reserve(heap.size());
  while (!heap.empty()) {
    top.push_back(heap.top());
    heap.pop();
  }
  std::sort(top.rbegin(), top.rend());  // descending score

  // Slots by descending slot factor.
  std::vector<SlotIndex> slot_order(k);
  for (SlotIndex j = 0; j < k; ++j) slot_order[j] = j;
  std::sort(slot_order.begin(), slot_order.end(), [&](SlotIndex a, SlotIndex b) {
    if (model.slot_factors()[a] != model.slot_factors()[b]) {
      return model.slot_factors()[a] > model.slot_factors()[b];
    }
    return a < b;
  });

  Allocation alloc = Allocation::Empty(n, k);
  for (size_t r = 0; r < top.size() && r < static_cast<size_t>(k); ++r) {
    const AdvertiserId i = top[r].second;
    const SlotIndex j = slot_order[r];
    alloc.slot_to_advertiser[j] = i;
    alloc.advertiser_to_slot[i] = j;
    alloc.total_weight +=
        model.ClickProbability(i, j) * click_values[i];
  }
  return alloc;
}

bool IsSeparable(const std::vector<double>& click, int n, int k,
                 double tolerance) {
  SSA_CHECK(click.size() == static_cast<size_t>(n) * k);
  auto at = [&](int i, int j) { return click[static_cast<size_t>(i) * k + j]; };
  // Rank-one test: all 2x2 minors against the first row/column vanish.
  for (int i = 1; i < n; ++i) {
    for (int j = 1; j < k; ++j) {
      const double minor = at(0, 0) * at(i, j) - at(0, j) * at(i, 0);
      if (std::abs(minor) > tolerance) return false;
    }
  }
  return true;
}

}  // namespace ssa
