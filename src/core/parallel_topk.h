#ifndef SSA_CORE_PARALLEL_TOPK_H_
#define SSA_CORE_PARALLEL_TOPK_H_

#include <utility>
#include <vector>

#include "core/expected_revenue.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace ssa {

/// Result of the tree-aggregation candidate selection (Section III-E,
/// "Parallelization"): the union over slots of each slot's top-k bidders,
/// computed by p leaf machines followed by a binary merge tree of height
/// ceil(log2 p).
struct TreeAggregationResult {
  /// Union of per-slot top-k advertisers (sorted, deduplicated) — feed to
  /// SolveOnCandidates for the O(k^5) root matching.
  std::vector<AdvertiserId> candidates;
  /// Number of merge levels executed (= ceil(log2 num_blocks)).
  int merge_levels = 0;
  /// Measured wall time of the slowest leaf task (ms).
  double leaf_critical_ms = 0.0;
  /// Measured wall time of the slowest merge task per level (ms).
  std::vector<double> level_critical_ms;
  /// Modeled parallel makespan: slowest leaf + sum of per-level slowest
  /// merges — the O((n/p) k log k + k log p) time of the paper's network,
  /// with each tree node mapped to a task.
  double critical_path_ms = 0.0;
};

/// Partial aggregate held by one node of the Section III-E tree network:
/// for each slot, the top-k (weight, advertiser) pairs seen in its subtree,
/// sorted descending by the strict (weight, id) order (ties listed with ids
/// descending — the TopKHeapSet order). Leaves produce these from advertiser
/// ranges; the sharded engine produces them from per-shard heaps.
struct SlotTopK {
  // per-slot sorted lists, each of size <= k.
  std::vector<std::vector<std::pair<double, AdvertiserId>>> per_slot;
};

/// Merges two nodes' sorted per-slot lists keeping the top k per slot —
/// O(k) per slot, the constant-time-per-level step of the paper's network.
/// Associative over the strict (weight, id) order: any merge tree over the
/// same leaves retains exactly the top-k of the union.
SlotTopK MergeSlotTopK(const SlotTopK& a, const SlotTopK& b, int k);

/// Runs the pairwise merge tree over `partials` (ceil(log2 p) levels, one
/// barrier per level; tasks of a level run concurrently when `pool` is
/// non-null) and extracts the root's candidate union: per-slot top-k lists
/// unioned across slots, deduplicated, sorted ascending. With partials
/// produced by per-range leaves this equals SelectTopPerSlotCandidates(·, k)
/// on the whole matrix — the property the sharded coordinator's K >= 8
/// merge path relies on.
std::vector<AdvertiserId> TreeMergeToCandidates(std::vector<SlotTopK> partials,
                                                int k, int num_advertisers,
                                                ThreadPool* pool = nullptr);

/// Simulates the paper's k binary-tree aggregation networks on a thread
/// pool: advertisers are split into `num_blocks` leaf blocks; each leaf
/// computes its local per-slot top-k (size-k heaps); adjacent partial
/// results are merged pairwise (sorted top-k list merge, O(k) per slot) for
/// ceil(log2 num_blocks) levels; the root takes the union across slots.
///
/// With `pool == nullptr` every task runs inline (pure simulation of the
/// distributed schedule); with a pool, tasks of the same level run
/// concurrently, separated by a level barrier exactly like the synchronous
/// tree network.
TreeAggregationResult TreeTopKAggregate(const RevenueMatrix& revenue,
                                        int num_blocks,
                                        ThreadPool* pool = nullptr);

}  // namespace ssa

#endif  // SSA_CORE_PARALLEL_TOPK_H_
