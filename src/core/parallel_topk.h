#ifndef SSA_CORE_PARALLEL_TOPK_H_
#define SSA_CORE_PARALLEL_TOPK_H_

#include <vector>

#include "core/expected_revenue.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace ssa {

/// Result of the tree-aggregation candidate selection (Section III-E,
/// "Parallelization"): the union over slots of each slot's top-k bidders,
/// computed by p leaf machines followed by a binary merge tree of height
/// ceil(log2 p).
struct TreeAggregationResult {
  /// Union of per-slot top-k advertisers (sorted, deduplicated) — feed to
  /// SolveOnCandidates for the O(k^5) root matching.
  std::vector<AdvertiserId> candidates;
  /// Number of merge levels executed (= ceil(log2 num_blocks)).
  int merge_levels = 0;
  /// Measured wall time of the slowest leaf task (ms).
  double leaf_critical_ms = 0.0;
  /// Measured wall time of the slowest merge task per level (ms).
  std::vector<double> level_critical_ms;
  /// Modeled parallel makespan: slowest leaf + sum of per-level slowest
  /// merges — the O((n/p) k log k + k log p) time of the paper's network,
  /// with each tree node mapped to a task.
  double critical_path_ms = 0.0;
};

/// Simulates the paper's k binary-tree aggregation networks on a thread
/// pool: advertisers are split into `num_blocks` leaf blocks; each leaf
/// computes its local per-slot top-k (size-k heaps); adjacent partial
/// results are merged pairwise (sorted top-k list merge, O(k) per slot) for
/// ceil(log2 num_blocks) levels; the root takes the union across slots.
///
/// With `pool == nullptr` every task runs inline (pure simulation of the
/// distributed schedule); with a pool, tasks of the same level run
/// concurrently, separated by a level barrier exactly like the synchronous
/// tree network.
TreeAggregationResult TreeTopKAggregate(const RevenueMatrix& revenue,
                                        int num_blocks,
                                        ThreadPool* pool = nullptr);

}  // namespace ssa

#endif  // SSA_CORE_PARALLEL_TOPK_H_
