#ifndef SSA_CORE_OUTCOME_H_
#define SSA_CORE_OUTCOME_H_

#include <cstdint>

#include "util/common.h"

namespace ssa {

/// The features of an auction outcome visible to one advertiser's bid
/// formulas (Section II-A): which slot (if any) the advertiser received,
/// whether the user clicked the ad, whether the user made a purchase, and —
/// for the Section III-F extension — which slots were assigned heavyweight
/// advertisers.
struct AdvertiserOutcome {
  /// Slot assigned to this advertiser; kNoSlot if not displayed.
  SlotIndex slot = kNoSlot;
  /// True if the user clicked this advertiser's ad.
  bool clicked = false;
  /// True if the user made a purchase via this advertiser's ad.
  bool purchased = false;
  /// Bit j set iff slot j is occupied by a heavyweight advertiser
  /// (Section III-F). Zero in the plain multi-feature model.
  uint32_t heavy_slot_mask = 0;
};

}  // namespace ssa

#endif  // SSA_CORE_OUTCOME_H_
