#include "core/compiled_bids.h"

#include <algorithm>
#include <utility>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ssa {
namespace {

// 4-bit (click, purchase) masks, bit index b = (clicked << 1) | purchased.
constexpr uint8_t kAlways = 0xF;
constexpr uint8_t kNever = 0x0;
constexpr uint8_t kClickMask = 0xC;     // bits 2, 3: clicked
constexpr uint8_t kPurchaseMask = 0xA;  // bits 1, 3: purchased

/// Bottom-up truth-table construction: one recursive walk of the formula
/// tree, each node doing O(k) byte ops on (k + 1)-entry state vectors.
/// Intermediate results live in a caller-owned arena of "bands" (one
/// (k + 1)-byte table per recursion level, grown on demand); frames pass
/// band *indices* across calls and re-derive pointers afterwards, so arena
/// growth never leaves a dangling pointer and compilation performs no
/// per-node allocations once the arena is warm. `heavy_mask` non-null
/// resolves HeavyInSlot predicates to constants; null rejects them (the
/// Theorem 2 fast path requires 1-dependence on own placement).
class TruthCompiler {
 public:
  TruthCompiler(int num_slots, const uint32_t* heavy_mask,
                std::vector<uint8_t>* bands)
      : states_(num_slots + 1),  // k slots + unassigned
        num_slots_(num_slots),
        heavy_mask_(heavy_mask),
        bands_(bands) {}

  /// Writes the formula's truth table into out[0 .. num_slots], one 4-bit
  /// (click, purchase) mask per slot state.
  void CompileInto(const Formula& f, uint8_t* out) {
    Eval(f, 0);
    const uint8_t* result = Band(0);
    for (int s = 0; s < states_; ++s) out[s] = result[s];
  }

 private:
  /// Evaluates `f` into band `b` (bands below b hold ancestors' pending
  /// left operands).
  void Eval(const Formula& f, int b) {
    const size_t needed = static_cast<size_t>(b + 1) * states_;
    if (bands_->size() < needed) bands_->resize(needed);
    switch (f.op()) {
      case Formula::Op::kTrue:
        Fill(Band(b), kAlways);
        return;
      case Formula::Op::kFalse:
        Fill(Band(b), kNever);
        return;
      case Formula::Op::kSlot: {
        uint8_t* band = Band(b);
        Fill(band, kNever);
        if (f.slot_arg() >= 0 && f.slot_arg() < num_slots_) {
          band[f.slot_arg()] = kAlways;
        }
        return;
      }
      case Formula::Op::kClick:
        Fill(Band(b), kClickMask);
        return;
      case Formula::Op::kPurchase:
        Fill(Band(b), kPurchaseMask);
        return;
      case Formula::Op::kHeavyInSlot: {
        SSA_CHECK_MSG(heavy_mask_ != nullptr,
                      "heavyweight bids require CompileHeavy");
        // Mirrors Formula::Evaluate: slots >= 32 are never heavy.
        const bool heavy = f.slot_arg() < 32 &&
                           ((*heavy_mask_ >> f.slot_arg()) & 1u) != 0;
        Fill(Band(b), heavy ? kAlways : kNever);
        return;
      }
      case Formula::Op::kNot: {
        Eval(f.children()[0], b);
        uint8_t* band = Band(b);  // re-derive: child may have grown the arena
        for (int s = 0; s < states_; ++s) {
          band[s] = static_cast<uint8_t>(~band[s] & kAlways);
        }
        return;
      }
      case Formula::Op::kAnd:
      case Formula::Op::kOr: {
        Eval(f.children()[0], b);
        Eval(f.children()[1], b + 1);
        uint8_t* left = Band(b);
        const uint8_t* right = Band(b + 1);
        if (f.op() == Formula::Op::kAnd) {
          for (int s = 0; s < states_; ++s) left[s] &= right[s];
        } else {
          for (int s = 0; s < states_; ++s) left[s] |= right[s];
        }
        return;
      }
    }
    SSA_CHECK_MSG(false, "corrupt formula node");
  }

  uint8_t* Band(int b) {
    return bands_->data() + static_cast<size_t>(b) * states_;
  }

  void Fill(uint8_t* band, uint8_t value) {
    for (int s = 0; s < states_; ++s) band[s] = value;
  }

  const int states_;
  const int num_slots_;
  const uint32_t* heavy_mask_;
  std::vector<uint8_t>* bands_;
};

// ---------------------------------------------------------------------------
// The 4-bit mask kernel: acc[b] += value * ((mask >> b) & 1) for b in 0..3,
// accumulated strictly in row order per lane. The four lanes are independent,
// so the vector dimension is the *outcome* axis (4 doubles = one 256-bit
// register), never the row axis — each lane still sums rows in order, which
// keeps the result bitwise equal to the original scalar loop.
// ---------------------------------------------------------------------------

#if defined(__AVX2__)

/// 16-entry weight LUT: entry m is the (click, purchase) mask m expanded to
/// four {0.0, 1.0} lanes.
struct alignas(32) LaneLut {
  double w[16][4];
};
constexpr LaneLut MakeLaneLut() {
  LaneLut lut{};
  for (int m = 0; m < 16; ++m) {
    for (int b = 0; b < 4; ++b) lut.w[m][b] = ((m >> b) & 1) ? 1.0 : 0.0;
  }
  return lut;
}
constexpr LaneLut kLaneLut = MakeLaneLut();

void AccumulateOutcomeLanes(const double* v, const uint8_t* m, size_t rows,
                            double acc[4]) {
  __m256d vacc = _mm256_setzero_pd();
  for (size_t r = 0; r < rows; ++r) {
    const __m256d w = _mm256_load_pd(kLaneLut.w[m[r] & 0xF]);
    const __m256d value = _mm256_set1_pd(v[r]);
    // Explicit mul + add (no fused multiply-add): matches the scalar path's
    // two roundings, so the lanes stay bitwise identical across builds.
    vacc = _mm256_add_pd(vacc, _mm256_mul_pd(value, w));
  }
  _mm256_storeu_pd(acc, vacc);
}

#else  // portable SWAR path

/// Spreads the 4 mask bits into the four 16-bit lanes of one 64-bit word:
/// bit b of `mask` lands at bit 16*b. The multiplier places copies of the
/// mask at shifts {0, 15, 30, 45}; the contribution ranges (0-3, 15-18,
/// 30-33, 45-48) are disjoint, so there are no carries to mask off.
inline uint64_t SpreadMaskLanes(uint64_t mask) {
  return (mask * 0x0000200040008001ULL) & 0x0001000100010001ULL;
}

void AccumulateOutcomeLanes(const double* v, const uint8_t* m, size_t rows,
                            double acc[4]) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    const double value = v[r];
    const uint64_t lanes = SpreadMaskLanes(m[r] & 0xF);
    // Materialize each lane's {0.0, 1.0} weight branch-free as an IEEE-754
    // bit pattern (0 - bit is all-ones or zero; AND keeps the exponent of
    // 1.0). value * 1.0 == value and value * 0.0 == +0.0 exactly, so the
    // accumulation is bit-for-bit the original conditional sum. The fixed
    // 4-wide pattern below is a single independent mul+add per lane, which
    // compilers turn into packed SIMD without reassociating any lane's sum.
    const uint64_t kOne = 0x3FF0000000000000ULL;  // bits of 1.0
    double w0, w1, w2, w3;
    uint64_t b0 = (0 - ((lanes >> 0) & 1u)) & kOne;
    uint64_t b1 = (0 - ((lanes >> 16) & 1u)) & kOne;
    uint64_t b2 = (0 - ((lanes >> 32) & 1u)) & kOne;
    uint64_t b3 = (0 - ((lanes >> 48) & 1u)) & kOne;
    __builtin_memcpy(&w0, &b0, sizeof w0);
    __builtin_memcpy(&w1, &b1, sizeof w1);
    __builtin_memcpy(&w2, &b2, sizeof w2);
    __builtin_memcpy(&w3, &b3, sizeof w3);
    a0 += value * w0;
    a1 += value * w1;
    a2 += value * w2;
    a3 += value * w3;
  }
  acc[0] = a0;
  acc[1] = a1;
  acc[2] = a2;
  acc[3] = a3;
}

#endif  // __AVX2__

uint64_t HashCombine(uint64_t seed, uint64_t v) {
  // splitmix64-style mix of the incoming value, folded into the seed.
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

uint64_t HashFormula(const Formula& f, uint64_t seed) {
  seed = HashCombine(seed, static_cast<uint64_t>(f.op()));
  seed = HashCombine(seed, static_cast<uint64_t>(
                               static_cast<int64_t>(f.slot_arg())));
  for (const Formula& c : f.children()) seed = HashFormula(c, seed);
  return seed;
}

uint64_t HashDouble(double x) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(x), "Money must be 64-bit");
  __builtin_memcpy(&bits, &x, sizeof(bits));
  return bits;
}

}  // namespace

void CompiledBids::CompileImpl(const BidsTable& bids, int num_slots,
                               const uint32_t* heavy_mask) {
  SSA_CHECK(num_slots >= 0);
  k_ = num_slots;
  resolves_heavy_ = heavy_mask != nullptr;
  heavy_mask_ = heavy_mask != nullptr ? *heavy_mask : 0;
  const size_t rows = bids.size();
  const int states = num_slots + 1;
  values_.clear();
  values_.reserve(rows);
  masks_.assign(static_cast<size_t>(states) * rows, kNever);
  // Reused across rows, tables and auctions (each pool worker has its own):
  // row_truth holds the current row's table, bands the compiler's operand
  // arena.
  thread_local std::vector<uint8_t> row_truth;
  thread_local std::vector<uint8_t> bands;
  if (row_truth.size() < static_cast<size_t>(states)) row_truth.resize(states);
  TruthCompiler compiler(num_slots, heavy_mask, &bands);
  for (size_t r = 0; r < rows; ++r) {
    const BidRow& row = bids.rows()[r];
    values_.push_back(row.value);
    compiler.CompileInto(row.formula, row_truth.data());
    for (int s = 0; s < states; ++s) {
      masks_[static_cast<size_t>(s) * rows + r] = row_truth[s];
    }
  }
}

void CompiledBids::CompileFrom(const BidsTable& bids, int num_slots) {
  // No DependsOnlyOnOwnPlacement() pre-walk: the compiler itself aborts on
  // any HeavyInSlot node when no mask is supplied (same invariant, checked
  // during the one walk compilation already does).
  CompileImpl(bids, num_slots, nullptr);
}

void CompiledBids::CompileHeavyFrom(const BidsTable& bids, int num_slots,
                                    uint32_t heavy_mask) {
  CompileImpl(bids, num_slots, &heavy_mask);
}

CompiledBids CompiledBids::Compile(const BidsTable& bids, int num_slots) {
  CompiledBids out;
  out.CompileFrom(bids, num_slots);
  return out;
}

CompiledBids CompiledBids::CompileHeavy(const BidsTable& bids, int num_slots,
                                        uint32_t heavy_mask) {
  CompiledBids out;
  out.CompileHeavyFrom(bids, num_slots, heavy_mask);
  return out;
}

Money CompiledBids::Payment(const AdvertiserOutcome& outcome) const {
  if (resolves_heavy_) {
    SSA_CHECK_MSG(outcome.heavy_slot_mask == heavy_mask_,
                  "outcome mask differs from the compiled heavy mask");
  }
  const uint8_t* m = MasksForSlot(outcome.slot);
  const int b = (outcome.clicked ? 2 : 0) | (outcome.purchased ? 1 : 0);
  Money total = 0;
  for (size_t r = 0; r < values_.size(); ++r) {
    // value * {0,1} then += keeps the sum bitwise equal to the tree walk's
    // conditional accumulation (values are non-negative, so no -0 hazards).
    total += values_[r] * static_cast<double>((m[r] >> b) & 1);
  }
  return total;
}

Money CompiledBids::ExpectedPayment(SlotIndex slot,
                                    const double prob[4]) const {
  // Four per-outcome payment accumulators filled in one branch-free SIMD
  // pass over the contiguous rows; each equals Payment() for that outcome.
  double acc[4];
  AccumulateOutcomeLanes(values_.data(), MasksForSlot(slot), values_.size(),
                         acc);
  // Same zero-skip and accumulation order as the tree-walking
  // ExpectedPayment's (click, purchase) loop => bitwise-equal results.
  Money expected = 0;
  for (int b = 0; b < 4; ++b) {
    if (prob[b] == 0.0) continue;
    expected += prob[b] * acc[b];
  }
  return expected;
}

uint64_t FingerprintBids(const BidsTable& bids) {
  uint64_t seed = HashCombine(0x55a0f00d, bids.size());
  for (const BidRow& row : bids.rows()) {
    seed = HashFormula(row.formula, seed);
    seed = HashCombine(seed, HashDouble(row.value));
  }
  return seed;
}

void CompiledBidsCache::Reserve(size_t n) {
  if (entries_.size() < n) entries_.resize(n);
}

const CompiledBids& CompiledBidsCache::Get(AdvertiserId i,
                                           const BidsTable& bids,
                                           int num_slots) {
  SSA_CHECK(i >= 0);
  if (static_cast<size_t>(i) >= entries_.size()) {
    entries_.resize(static_cast<size_t>(i) + 1);
  }
  Entry& entry = entries_[i];
  const uint64_t fingerprint = FingerprintBids(bids);
  if (entry.valid && entry.fingerprint == fingerprint &&
      entry.num_slots == num_slots) {
    ++entry.hits;
    return entry.compiled;
  }
  ++entry.misses;
  if (entry.expected) {
    if (entry.expected_fingerprint == fingerprint &&
        entry.expected_num_slots == num_slots) {
      ++entry.verified;
    }
    entry.expected = false;  // one verification shot per restore
  }
  entry.compiled.CompileFrom(bids, num_slots);  // in place: reuses buffers
  entry.fingerprint = fingerprint;
  entry.num_slots = num_slots;
  entry.valid = true;
  return entry.compiled;
}

int64_t CompiledBidsCache::hits() const {
  return HitsInRange(0, static_cast<AdvertiserId>(entries_.size()));
}

int64_t CompiledBidsCache::misses() const {
  return MissesInRange(0, static_cast<AdvertiserId>(entries_.size()));
}

int64_t CompiledBidsCache::HitsInRange(AdvertiserId begin,
                                       AdvertiserId end) const {
  SSA_CHECK(begin >= 0 && begin <= end &&
            static_cast<size_t>(end) <= entries_.size());
  int64_t total = 0;
  for (AdvertiserId i = begin; i < end; ++i) total += entries_[i].hits;
  return total;
}

int64_t CompiledBidsCache::MissesInRange(AdvertiserId begin,
                                         AdvertiserId end) const {
  SSA_CHECK(begin >= 0 && begin <= end &&
            static_cast<size_t>(end) <= entries_.size());
  int64_t total = 0;
  for (AdvertiserId i = begin; i < end; ++i) total += entries_[i].misses;
  return total;
}

int64_t CompiledBidsCache::verified_recompiles() const {
  int64_t total = 0;
  for (const Entry& entry : entries_) total += entry.verified;
  return total;
}

std::vector<CompiledBidsCache::KeySnapshot> CompiledBidsCache::ExportKeys()
    const {
  std::vector<KeySnapshot> keys(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    keys[i].valid = entries_[i].valid;
    keys[i].fingerprint = entries_[i].fingerprint;
    keys[i].num_slots = entries_[i].num_slots;
  }
  return keys;
}

void CompiledBidsCache::PrimeExpectedKeys(
    const std::vector<KeySnapshot>& keys) {
  if (entries_.size() < keys.size()) entries_.resize(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    Entry& entry = entries_[i];
    // Invalidate any live compilation: the engine is being rewound to the
    // checkpoint, so cached tables from beyond it must not be served.
    entry.valid = false;
    entry.expected = keys[i].valid;
    entry.expected_fingerprint = keys[i].fingerprint;
    entry.expected_num_slots = keys[i].num_slots;
  }
}

}  // namespace ssa
