#ifndef SSA_CORE_ABOVE_BIDS_H_
#define SSA_CORE_ABOVE_BIDS_H_

#include <tuple>
#include <vector>

#include "util/common.h"

namespace ssa {

/// A 2-dependent bid (Theorem 3): advertiser `bidder` pays `value` if
/// `bidder` receives a slot placed strictly above `rival` — where `rival`
/// either occupies a lower slot or no slot at all. This is the event
/// E_{i>i'} = ∨_j (Slot^i_j ∧ ((∨_{j'>j} Slot^{i'}_{j'}) ∨ ∧_{j'} ¬Slot^{i'}_{j'})).
///
/// Winner determination with such bids is APX-hard (reduction from
/// maximum-weight feedback arc set), so no fast path exists; this module
/// provides the exact exponential solver used to *demonstrate* the hardness
/// boundary, plus a greedy heuristic whose suboptimality the tests exhibit.
struct AboveBid {
  AdvertiserId bidder = 0;
  AdvertiserId rival = 0;
  Money value = 0;
};

/// Winner-determination result for above-bids: an ordered list of slot
/// occupants (index = slot, value = advertiser or -1).
struct AboveWdResult {
  std::vector<AdvertiserId> slot_to_advertiser;
  double revenue = 0.0;
};

/// Revenue of a concrete slot ordering under pay-what-you-bid.
double AboveBidsRevenue(const std::vector<AdvertiserId>& slot_to_advertiser,
                        int n, const std::vector<AboveBid>& bids);

/// Exact solver: enumerates all ordered selections of at most k of the n
/// advertisers. O(sum_m n!/(n-m)!) — tiny instances only (asserted).
AboveWdResult SolveAboveBidsExhaustive(int n, int k,
                                       const std::vector<AboveBid>& bids);

/// Greedy heuristic: repeatedly appends the advertiser whose placement in
/// the next slot adds the most marginal revenue. Polynomial but suboptimal
/// in general — the hardness of Theorem 3 is why.
AboveWdResult SolveAboveBidsGreedy(int n, int k,
                                   const std::vector<AboveBid>& bids);

/// Theorem 3's encoding: each weighted directed edge (u, v, w) of a digraph
/// becomes an above-bid "u pays w if placed above v". Maximizing auction
/// revenue over size-k ordered subsets is then the maximum-weight feedback
/// arc set over size-k subgraphs.
std::vector<AboveBid> EncodeFeedbackArcInstance(
    const std::vector<std::tuple<int, int, double>>& weighted_edges);

}  // namespace ssa

#endif  // SSA_CORE_ABOVE_BIDS_H_
