#include "core/formula_parser.h"

#include <cctype>
#include <string>

namespace ssa {
namespace {

/// Recursive-descent parser over the formula grammar. No exceptions: errors
/// propagate as Status through the `ok_` flag.
class FormulaParser {
 public:
  explicit FormulaParser(std::string_view text) : text_(text) {}

  StatusOr<Formula> Parse() {
    Formula f = ParseOr();
    if (!ok_) return Status::InvalidArgument(error_);
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_) + " in formula '" +
                                     std::string(text_) + "'");
    }
    return f;
  }

 private:
  Formula ParseOr() {
    Formula f = ParseAnd();
    while (ok_) {
      SkipSpace();
      if (ConsumeOperator("|") || ConsumeKeyword("OR")) {
        f = Formula::Or(f, ParseAnd());
      } else {
        break;
      }
    }
    return f;
  }

  Formula ParseAnd() {
    Formula f = ParseUnary();
    while (ok_) {
      SkipSpace();
      if (ConsumeOperator("&") || ConsumeKeyword("AND")) {
        f = Formula::And(f, ParseUnary());
      } else {
        break;
      }
    }
    return f;
  }

  Formula ParseUnary() {
    SkipSpace();
    if (ConsumeOperator("!") || ConsumeKeyword("NOT")) {
      return Formula::Not(ParseUnary());
    }
    return ParseAtom();
  }

  Formula ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of formula");
    if (text_[pos_] == '(') {
      ++pos_;
      Formula f = ParseOr();
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Fail("expected ')'");
      }
      ++pos_;
      return f;
    }
    // Identifier.
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected predicate at offset " + std::to_string(pos_));
    }
    std::string ident = Upper(text_.substr(start, pos_ - start));
    if (ident == "CLICK") return Formula::Click();
    if (ident == "PURCHASE") return Formula::Purchase();
    if (ident == "TRUE") return Formula::True();
    if (ident == "FALSE") return Formula::False();
    if (ident.rfind("SLOT", 0) == 0) return ParseIndexed(ident, 4, false);
    if (ident.rfind("HEAVYINSLOT", 0) == 0) {
      return ParseIndexed(ident, 11, true);
    }
    if (ident.rfind("HEAVY", 0) == 0) return ParseIndexed(ident, 5, true);
    return Fail("unknown predicate '" + ident + "'");
  }

  /// Parses the 1-based numeric suffix of SlotN / HeavyN identifiers.
  Formula ParseIndexed(const std::string& ident, size_t prefix_len,
                       bool heavy) {
    if (ident.size() == prefix_len) {
      return Fail("predicate '" + ident + "' needs a slot number");
    }
    int value = 0;
    for (size_t i = prefix_len; i < ident.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(ident[i]))) {
        return Fail("bad slot number in '" + ident + "'");
      }
      value = value * 10 + (ident[i] - '0');
      if (value > 1000000) return Fail("slot number out of range");
    }
    if (value < 1) return Fail("slot numbers are 1-based");
    return heavy ? Formula::HeavyInSlot(value - 1) : Formula::Slot(value - 1);
  }

  bool ConsumeOperator(std::string_view op) {
    if (text_.substr(pos_).rfind(op, 0) == 0) {
      pos_ += op.size();
      return true;
    }
    return false;
  }

  /// Consumes a case-insensitive keyword if it appears as a whole word.
  bool ConsumeKeyword(std::string_view kw) {
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) != kw[i]) {
        return false;
      }
    }
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        std::isalnum(static_cast<unsigned char>(text_[end]))) {
      return false;  // part of a longer identifier
    }
    pos_ = end;
    return true;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  static std::string Upper(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::toupper(c));
    return out;
  }

  Formula Fail(std::string message) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(message);
    }
    return Formula::False();
  }

  std::string_view text_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

StatusOr<Formula> ParseFormula(std::string_view text) {
  return FormulaParser(text).Parse();
}

}  // namespace ssa
