#include "core/parallel_topk.h"

#include <algorithm>

#include "util/timer.h"
#include "util/topk_heap.h"

namespace ssa {
namespace {

/// Leaf computation: local per-slot top-k over an advertiser range via
/// size-k min-heaps — O((hi-lo) * k log k). All k heaps live in one
/// thread-local flat buffer (each pool worker reuses its own across leaves
/// and auctions), and the revenue matrix is streamed advertiser-major via
/// the unchecked row pointers, so the scan is allocation-free and
/// cache-friendly. The retained per-slot sets are identical to the previous
/// priority_queue implementation (same strict (weight, id) pair order).
SlotTopK ComputeLeaf(const RevenueMatrix& revenue, AdvertiserId lo,
                     AdvertiserId hi) {
  const int k = revenue.num_slots();
  SlotTopK state;
  state.per_slot.resize(k);
  thread_local TopKHeapSet heaps;
  heaps.Reset(k, std::max(k, 1));
  const double* base = revenue.UnassignedData();
  for (AdvertiserId i = lo; i < hi; ++i) {
    const double* row = revenue.Row(i);
    for (SlotIndex j = 0; j < k; ++j) {
      const double w = row[j] - base[i];
      if (w <= 0.0) continue;
      heaps.Offer(j, w, i);
    }
  }
  for (SlotIndex j = 0; j < k; ++j) {
    heaps.ExtractDescending(j, &state.per_slot[j]);
  }
  return state;
}

/// Root extraction shared by both tree paths: union of the per-slot lists,
/// deduplicated, sorted ascending (canonical — heap and merge order are
/// immaterial).
std::vector<AdvertiserId> ExtractCandidates(const SlotTopK& root,
                                            int num_advertisers) {
  std::vector<char> seen(num_advertisers, 0);
  std::vector<AdvertiserId> candidates;
  for (const auto& list : root.per_slot) {
    for (const auto& [w, i] : list) {
      (void)w;
      if (!seen[i]) {
        seen[i] = 1;
        candidates.push_back(i);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

}  // namespace

SlotTopK MergeSlotTopK(const SlotTopK& a, const SlotTopK& b, int k) {
  SlotTopK out;
  const int slots = static_cast<int>(a.per_slot.size());
  out.per_slot.resize(slots);
  for (int j = 0; j < slots; ++j) {
    const auto& la = a.per_slot[j];
    const auto& lb = b.per_slot[j];
    auto& lo = out.per_slot[j];
    lo.reserve(std::min<size_t>(k, la.size() + lb.size()));
    size_t ia = 0, ib = 0;
    while (lo.size() < static_cast<size_t>(k) &&
           (ia < la.size() || ib < lb.size())) {
      if (ib >= lb.size() || (ia < la.size() && la[ia] >= lb[ib])) {
        lo.push_back(la[ia++]);
      } else {
        lo.push_back(lb[ib++]);
      }
    }
  }
  return out;
}

std::vector<AdvertiserId> TreeMergeToCandidates(std::vector<SlotTopK> partials,
                                                int k, int num_advertisers,
                                                ThreadPool* pool) {
  SSA_CHECK(!partials.empty());
  std::vector<SlotTopK> level = std::move(partials);
  while (level.size() > 1) {
    const int pairs = static_cast<int>(level.size()) / 2;
    const bool odd = (level.size() % 2) != 0;
    std::vector<SlotTopK> next(pairs + (odd ? 1 : 0));
    auto merge_task = [&](int p) {
      next[p] = MergeSlotTopK(level[2 * p], level[2 * p + 1], k);
    };
    if (pool != nullptr) {
      pool->ParallelFor(pairs, merge_task);
    } else {
      for (int p = 0; p < pairs; ++p) merge_task(p);
    }
    if (odd) next.back() = std::move(level.back());
    level = std::move(next);
  }
  return ExtractCandidates(level[0], num_advertisers);
}

TreeAggregationResult TreeTopKAggregate(const RevenueMatrix& revenue,
                                        int num_blocks, ThreadPool* pool) {
  const int n = revenue.num_advertisers();
  const int k = revenue.num_slots();
  SSA_CHECK(num_blocks >= 1);
  num_blocks = std::min(num_blocks, std::max(1, n));

  TreeAggregationResult result;

  // --- Leaf level: p parallel blocks of ~n/p advertisers each.
  std::vector<SlotTopK> level(num_blocks);
  std::vector<double> leaf_ms(num_blocks, 0.0);
  auto leaf_task = [&](int b) {
    WallTimer timer;
    const AdvertiserId lo = static_cast<AdvertiserId>(
        static_cast<int64_t>(n) * b / num_blocks);
    const AdvertiserId hi = static_cast<AdvertiserId>(
        static_cast<int64_t>(n) * (b + 1) / num_blocks);
    level[b] = ComputeLeaf(revenue, lo, hi);
    leaf_ms[b] = timer.ElapsedMillis();
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_blocks, leaf_task);
  } else {
    for (int b = 0; b < num_blocks; ++b) leaf_task(b);
  }
  result.leaf_critical_ms =
      *std::max_element(leaf_ms.begin(), leaf_ms.end());
  result.critical_path_ms = result.leaf_critical_ms;

  // --- Merge levels: pairwise, with a barrier per level (the synchronous
  // tree network of Section III-E). Duplicates TreeMergeToCandidates's loop
  // only to time each level — the candidate output is identical.
  while (level.size() > 1) {
    const int pairs = static_cast<int>(level.size()) / 2;
    const bool odd = (level.size() % 2) != 0;
    std::vector<SlotTopK> next(pairs + (odd ? 1 : 0));
    std::vector<double> merge_ms(pairs, 0.0);
    auto merge_task = [&](int p) {
      WallTimer timer;
      next[p] = MergeSlotTopK(level[2 * p], level[2 * p + 1], k);
      merge_ms[p] = timer.ElapsedMillis();
    };
    if (pool != nullptr) {
      pool->ParallelFor(pairs, merge_task);
    } else {
      for (int p = 0; p < pairs; ++p) merge_task(p);
    }
    if (odd) next.back() = std::move(level.back());
    const double level_max =
        pairs > 0 ? *std::max_element(merge_ms.begin(), merge_ms.end()) : 0.0;
    result.level_critical_ms.push_back(level_max);
    result.critical_path_ms += level_max;
    ++result.merge_levels;
    level = std::move(next);
  }

  // --- Root: union of per-slot lists.
  result.candidates = ExtractCandidates(level[0], n);
  return result;
}

}  // namespace ssa
