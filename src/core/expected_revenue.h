#ifndef SSA_CORE_EXPECTED_REVENUE_H_
#define SSA_CORE_EXPECTED_REVENUE_H_

#include <vector>

#include "core/bids_table.h"
#include "core/click_model.h"
#include "core/compiled_bids.h"
#include "util/common.h"

namespace ssa {

class ThreadPool;

/// The expected-revenue table of Theorem 2's proof: entry (i, j) is the
/// expected payment (assuming advertisers pay what they bid) from assigning
/// slot j to advertiser i, plus a per-advertiser *unassigned* baseline —
/// formulas like `!Slot1` are true when the advertiser gets no slot, so
/// leaving i out still yields expected revenue r_i(⊥).
///
/// Winner determination maximizes
///     sum_{matched i} r_i(slot(i)) + sum_{unmatched i} r_i(⊥)
///   = sum_i r_i(⊥)  +  sum_{matched i} (r_i(slot(i)) - r_i(⊥)),
/// so the matching runs on the *marginal* weights w_ij = r_i(j) - r_i(⊥)
/// (which may be negative; such assignments are avoided by leaving slots
/// empty), with `UnassignedTotal()` the additive constant.
class RevenueMatrix {
 public:
  RevenueMatrix(int num_advertisers, int num_slots);

  /// Re-shapes the matrix for a new fill, reusing the existing allocations
  /// when capacity suffices — the arena path for planning scratch that
  /// builds one matrix per auction (ROADMAP 6c). Entries are zeroed like a
  /// fresh construction, so a Reset matrix is indistinguishable from a new
  /// one.
  void Reset(int num_advertisers, int num_slots);

  int num_advertisers() const { return n_; }
  int num_slots() const { return k_; }

  /// Expected revenue from giving advertiser i slot j.
  double At(AdvertiserId i, SlotIndex j) const {
    return assigned_[Index(i, j)];
  }
  void Set(AdvertiserId i, SlotIndex j, double r) {
    assigned_[Index(i, j)] = r;
  }

  /// Expected revenue from advertiser i when unassigned.
  double AtUnassigned(AdvertiserId i) const { return unassigned_[Check(i)]; }
  void SetUnassigned(AdvertiserId i, double r) { unassigned_[Check(i)] = r; }

  /// Marginal matching weight w_ij = r_i(j) - r_i(⊥).
  double MarginalWeight(AdvertiserId i, SlotIndex j) const {
    return At(i, j) - AtUnassigned(i);
  }

  /// sum_i r_i(⊥): the revenue if no slot were sold at all.
  double UnassignedTotal() const;

  /// Row-major (advertiser-major) view of the assigned table, for the dense
  /// matching kernels.
  const std::vector<double>& assigned() const { return assigned_; }

  // -- Unchecked accessors for the dense kernels ----------------------------
  // Bounds are validated once at construction; the hot loops
  // (BuildRevenueMatrix, SelectTopPerSlotCandidates, the tree top-k leaves,
  // MarginalWeights) stream over raw rows without per-element SSA_CHECKs.
  // The checked At()/Set() accessors remain for construction boundaries and
  // tests.

  /// Pointer to advertiser i's k assigned-revenue entries.
  const double* Row(AdvertiserId i) const {
    return assigned_.data() + static_cast<size_t>(i) * k_;
  }
  double* MutableRow(AdvertiserId i) {
    return assigned_.data() + static_cast<size_t>(i) * k_;
  }
  /// Pointer to the n unassigned baselines r_i(⊥).
  const double* UnassignedData() const { return unassigned_.data(); }
  double* MutableUnassignedData() { return unassigned_.data(); }

 private:
  size_t Index(AdvertiserId i, SlotIndex j) const {
    SSA_CHECK(i >= 0 && i < n_ && j >= 0 && j < k_);
    return static_cast<size_t>(i) * k_ + j;
  }
  AdvertiserId Check(AdvertiserId i) const {
    SSA_CHECK(i >= 0 && i < n_);
    return i;
  }

  int n_;
  int k_;
  std::vector<double> assigned_;
  std::vector<double> unassigned_;
};

/// The (click, purchase) distribution of advertiser i fixed in `slot`
/// (kNoSlot allowed), written to `prob[4]` indexed by
/// (clicked << 1) | purchased — exactly the probabilities ExpectedPayment
/// marginalizes over. Shared by the tree-walking and compiled evaluators so
/// both perform identical arithmetic.
void OutcomeProbabilities(const ClickModel& model, AdvertiserId i,
                          SlotIndex slot, double prob[4]);

/// Expected payment of one advertiser's OR-bid given a fixed slot (or
/// kNoSlot), marginalizing over the click/purchase distribution of `model`.
/// Requires bids.DependsOnlyOnOwnPlacement() (heavyweight formulas take the
/// Section III-F path in core/heavyweight.h). Tree-walking reference
/// implementation; the hot paths use CompiledBids.
Money ExpectedPayment(const BidsTable& bids, const ClickModel& model,
                      AdvertiserId i, SlotIndex slot);

/// Builds the full n x k (+ unassigned) revenue matrix from every
/// advertiser's Bids table. Compiles each table to flat truth tables first,
/// then streams over contiguous arrays — bitwise-identical results to the
/// tree-walking baseline, at a fraction of the cost. With `pool` non-null
/// the per-advertiser rows are filled in parallel (the output is identical;
/// rows are disjoint).
RevenueMatrix BuildRevenueMatrix(const std::vector<BidsTable>& bids,
                                 const ClickModel& model,
                                 ThreadPool* pool = nullptr);

/// The pre-compilation tree-walking construction: one recursive
/// Formula::Evaluate walk per (row, slot, outcome). O(n * k * formula size)
/// with heavy pointer chasing — kept as the equivalence/benchmark baseline.
RevenueMatrix BuildRevenueMatrixBaseline(const std::vector<BidsTable>& bids,
                                         const ClickModel& model);

/// Dense construction over pre-compiled bids (the engine's cached-bids hot
/// path). Every entry of `bids` must be compiled for model.num_slots().
RevenueMatrix BuildRevenueMatrixCompiled(
    const std::vector<const CompiledBids*>& bids, const ClickModel& model,
    ThreadPool* pool = nullptr);

/// Fills advertiser i's row of `matrix` (its k assigned entries plus the
/// unassigned baseline) from its compiled rows — the per-advertiser unit of
/// BuildRevenueMatrixCompiled, exported so sharded engines can stream rows
/// straight out of per-shard compiled-bids caches. Touches only row i, so
/// disjoint advertisers fill concurrently with bitwise-deterministic output.
void FillRevenueRow(const CompiledBids& compiled, const ClickModel& model,
                    RevenueMatrix* matrix, AdvertiserId i);

}  // namespace ssa

#endif  // SSA_CORE_EXPECTED_REVENUE_H_
