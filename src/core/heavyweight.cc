#include "core/heavyweight.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <utility>

#include "core/compiled_bids.h"
#include "matching/hungarian.h"

namespace ssa {

ShadowHeavyClickModel::ShadowHeavyClickModel(
    std::shared_ptr<const ClickModel> base, std::vector<bool> is_heavy,
    double light_shadow, double heavy_shadow, double purchase_given_click)
    : base_(std::move(base)),
      is_heavy_(std::move(is_heavy)),
      light_shadow_(light_shadow),
      heavy_shadow_(heavy_shadow),
      purchase_given_click_(purchase_given_click) {
  SSA_CHECK(base_ != nullptr);
  SSA_CHECK(static_cast<int>(is_heavy_.size()) == base_->num_advertisers());
  SSA_CHECK(light_shadow_ >= 0.0 && light_shadow_ < 1.0);
  SSA_CHECK(heavy_shadow_ >= 0.0 && heavy_shadow_ < 1.0);
}

double ShadowHeavyClickModel::ClickProbability(AdvertiserId i, SlotIndex j,
                                               uint32_t heavy_mask) const {
  double p = base_->ClickProbability(i, j);
  const double shadow = is_heavy_[i] ? heavy_shadow_ : light_shadow_;
  // Every heavyweight strictly above slot j diverts a fraction of clicks.
  const uint32_t above = heavy_mask & ((j >= 32) ? ~0u : ((1u << j) - 1u));
  for (uint32_t bits = above; bits != 0; bits &= bits - 1) p *= 1.0 - shadow;
  return p;
}

TableHeavyClickModel::TableHeavyClickModel(int num_advertisers, int num_slots,
                                           std::vector<double> click,
                                           double purchase_given_click)
    : n_(num_advertisers),
      k_(num_slots),
      click_(std::move(click)),
      purchase_given_click_(purchase_given_click) {
  SSA_CHECK(k_ >= 0 && k_ < 20);  // table is O(n k 2^k)
  SSA_CHECK(click_.size() ==
            (static_cast<size_t>(n_) * k_) << static_cast<size_t>(k_));
  for (double p : click_) SSA_CHECK(p >= 0.0 && p <= 1.0);
}

double TableHeavyClickModel::ClickProbability(AdvertiserId i, SlotIndex j,
                                              uint32_t heavy_mask) const {
  SSA_CHECK(i >= 0 && i < n_ && j >= 0 && j < k_);
  SSA_CHECK(heavy_mask < (1u << k_));
  return click_[((static_cast<size_t>(i) * k_ + j) << k_) + heavy_mask];
}

namespace {

/// The (click, purchase) distribution under the heavyweight model, indexed
/// by (clicked << 1) | purchased — the heavy analogue of
/// OutcomeProbabilities (no purchase without a click in this model).
void HeavyOutcomeProbabilities(const HeavyAwareClickModel& model,
                               AdvertiserId i, SlotIndex slot,
                               uint32_t heavy_mask, double prob[4]) {
  const bool assigned = slot != kNoSlot;
  const double pc =
      assigned ? model.ClickProbability(i, slot, heavy_mask) : 0.0;
  const double ppc =
      assigned ? model.PurchaseProbabilityGivenClick(i, slot, heavy_mask)
               : 0.0;
  prob[0] = 1.0 - pc;
  prob[1] = 0.0;
  prob[2] = pc * (1.0 - ppc);
  prob[3] = pc * ppc;
}

}  // namespace

Money ExpectedPaymentHeavy(const BidsTable& bids,
                           const HeavyAwareClickModel& model, AdvertiserId i,
                           SlotIndex slot, uint32_t heavy_mask) {
  double prob[4];
  HeavyOutcomeProbabilities(model, i, slot, heavy_mask, prob);
  Money expected = 0;
  AdvertiserOutcome outcome;
  outcome.slot = slot;
  outcome.heavy_slot_mask = heavy_mask;
  for (int b = 0; b < 4; ++b) {
    if (prob[b] == 0.0) continue;
    outcome.clicked = (b & 2) != 0;
    outcome.purchased = (b & 1) != 0;
    expected += prob[b] * bids.Payment(outcome);
  }
  return expected;
}

namespace {

/// Solves one heavyweight-slot choice (one `mask`); returns the expected
/// revenue and fills `out` with the combined allocation. Returns -inf when
/// the mask is infeasible (fewer heavyweights than declared heavy slots).
double SolveForMask(const std::vector<BidsTable>& bids,
                    const HeavyAwareClickModel& model,
                    const std::vector<AdvertiserId>& heavy_ids,
                    const std::vector<AdvertiserId>& light_ids, int k,
                    uint32_t mask, Allocation* out) {
  const int n = static_cast<int>(bids.size());
  std::vector<SlotIndex> heavy_slots, light_slots;
  for (SlotIndex j = 0; j < k; ++j) {
    if ((mask >> j) & 1u) {
      heavy_slots.push_back(j);
    } else {
      light_slots.push_back(j);
    }
  }
  if (heavy_ids.size() < heavy_slots.size()) {
    return -std::numeric_limits<double>::infinity();
  }

  // Compile every bid against this mask once (HeavyInSlot predicates become
  // constants): a single tree walk per row, after which the per-subset
  // evaluations below — baselines plus one entry per (advertiser, slot) of
  // its class — are branch-free dot products over the same flat rows,
  // bitwise equal to the tree-walking ExpectedPaymentHeavy. The scratch
  // vector is per worker and recompiled in place, so the 2^k-mask sweep
  // reuses the same buffers instead of allocating n tables per mask.
  thread_local std::vector<CompiledBids> compiled;
  if (static_cast<int>(compiled.size()) < n) compiled.resize(n);
  for (AdvertiserId i = 0; i < n; ++i) {
    compiled[i].CompileHeavyFrom(bids[i], k, mask);
  }
  auto expected_payment = [&](AdvertiserId i, SlotIndex slot) {
    double prob[4];
    HeavyOutcomeProbabilities(model, i, slot, mask, prob);
    return compiled[i].ExpectedPayment(slot, prob);
  };

  // Unassigned baselines depend on the mask (formulas may mention
  // HeavyInSlot even when the advertiser gets no slot).
  double total = 0.0;
  std::vector<double> baseline(n);
  for (AdvertiserId i = 0; i < n; ++i) {
    baseline[i] = expected_payment(i, kNoSlot);
    total += baseline[i];
  }

  *out = Allocation::Empty(n, k);

  // Heavyweights -> heavy slots: *perfect* on the heavy slots, so that the
  // declared mask is realized (negative marginals allowed).
  if (!heavy_slots.empty()) {
    const int h = static_cast<int>(heavy_slots.size());
    const int nh = static_cast<int>(heavy_ids.size());
    std::vector<double> w(static_cast<size_t>(nh) * h);
    for (int a = 0; a < nh; ++a) {
      const AdvertiserId i = heavy_ids[a];
      for (int s = 0; s < h; ++s) {
        w[static_cast<size_t>(a) * h + s] =
            expected_payment(i, heavy_slots[s]) - baseline[i];
      }
    }
    std::vector<AdvertiserId> all(nh);
    for (int a = 0; a < nh; ++a) all[a] = a;
    Allocation sub = MaxWeightPerfectMatchingSubset(w, nh, h, all);
    for (int s = 0; s < h; ++s) {
      const int a = sub.slot_to_advertiser[s];
      SSA_CHECK_MSG(a >= 0, "heavy slot left unfilled by perfect matching");
      const AdvertiserId i = heavy_ids[a];
      out->slot_to_advertiser[heavy_slots[s]] = i;
      out->advertiser_to_slot[i] = heavy_slots[s];
    }
    total += sub.total_weight;
    out->total_weight += sub.total_weight;
  }

  // Lightweights -> light slots: ordinary optional matching.
  if (!light_slots.empty() && !light_ids.empty()) {
    const int l = static_cast<int>(light_slots.size());
    const int nl = static_cast<int>(light_ids.size());
    std::vector<double> w(static_cast<size_t>(nl) * l);
    for (int a = 0; a < nl; ++a) {
      const AdvertiserId i = light_ids[a];
      for (int s = 0; s < l; ++s) {
        w[static_cast<size_t>(a) * l + s] =
            expected_payment(i, light_slots[s]) - baseline[i];
      }
    }
    Allocation sub = MaxWeightMatchingDense(w, nl, l);
    for (int s = 0; s < l; ++s) {
      const int a = sub.slot_to_advertiser[s];
      if (a < 0) continue;
      const AdvertiserId i = light_ids[a];
      out->slot_to_advertiser[light_slots[s]] = i;
      out->advertiser_to_slot[i] = light_slots[s];
    }
    total += sub.total_weight;
    out->total_weight += sub.total_weight;
  }
  return total;
}

}  // namespace

HeavyWdResult DetermineWinnersHeavy(const std::vector<BidsTable>& bids,
                                    const HeavyAwareClickModel& model,
                                    const std::vector<bool>& is_heavy,
                                    ThreadPool* pool) {
  const int n = static_cast<int>(bids.size());
  const int k = model.num_slots();
  SSA_CHECK(static_cast<int>(is_heavy.size()) == n);
  SSA_CHECK_MSG(k < 25, "2^k enumeration requires small k");

  std::vector<AdvertiserId> heavy_ids, light_ids;
  for (AdvertiserId i = 0; i < n; ++i) {
    (is_heavy[i] ? heavy_ids : light_ids).push_back(i);
  }

  const uint32_t num_masks = 1u << k;
  HeavyWdResult best;
  best.expected_revenue = -std::numeric_limits<double>::infinity();

  if (pool == nullptr) {
    for (uint32_t mask = 0; mask < num_masks; ++mask) {
      Allocation alloc;
      const double revenue =
          SolveForMask(bids, model, heavy_ids, light_ids, k, mask, &alloc);
      if (revenue > best.expected_revenue) {
        best.expected_revenue = revenue;
        best.heavy_slot_mask = mask;
        best.allocation = std::move(alloc);
      }
    }
  } else {
    // The paper's 2^k independent processing units: each mask is a task.
    std::mutex mu;
    pool->ParallelFor(static_cast<int>(num_masks), [&](int m) {
      Allocation alloc;
      const uint32_t mask = static_cast<uint32_t>(m);
      const double revenue =
          SolveForMask(bids, model, heavy_ids, light_ids, k, mask, &alloc);
      std::lock_guard<std::mutex> lock(mu);
      if (revenue > best.expected_revenue ||
          (revenue == best.expected_revenue && mask < best.heavy_slot_mask)) {
        best.expected_revenue = revenue;
        best.heavy_slot_mask = mask;
        best.allocation = std::move(alloc);
      }
    });
  }
  SSA_CHECK_MSG(std::isfinite(best.expected_revenue),
                "no feasible heavyweight mask (mask 0 is always feasible)");
  return best;
}

HeavyWdResult BruteForceHeavy(const std::vector<BidsTable>& bids,
                              const HeavyAwareClickModel& model,
                              const std::vector<bool>& is_heavy) {
  const int n = static_cast<int>(bids.size());
  const int k = model.num_slots();
  SSA_CHECK_MSG(std::pow(n + 1.0, k) < 2e6, "oracle instance too large");

  HeavyWdResult best;
  best.expected_revenue = -std::numeric_limits<double>::infinity();
  std::vector<AdvertiserId> slots(k, -1);
  std::vector<char> used(n, 0);

  // Enumerate every partial injective assignment; the mask is implied.
  auto evaluate = [&]() {
    uint32_t mask = 0;
    for (int j = 0; j < k; ++j) {
      if (slots[j] >= 0 && is_heavy[slots[j]]) mask |= 1u << j;
    }
    double total = 0.0;
    std::vector<char> assigned(n, 0);
    for (int j = 0; j < k; ++j) {
      if (slots[j] >= 0) {
        assigned[slots[j]] = 1;
        total += ExpectedPaymentHeavy(bids[slots[j]], model, slots[j], j, mask);
      }
    }
    for (AdvertiserId i = 0; i < n; ++i) {
      if (!assigned[i]) {
        total += ExpectedPaymentHeavy(bids[i], model, i, kNoSlot, mask);
      }
    }
    if (total > best.expected_revenue) {
      best.expected_revenue = total;
      best.heavy_slot_mask = mask;
      best.allocation = Allocation::Empty(n, k);
      best.allocation.slot_to_advertiser = slots;
      for (int j = 0; j < k; ++j) {
        if (slots[j] >= 0) best.allocation.advertiser_to_slot[slots[j]] = j;
      }
    }
  };

  // Recursive enumeration without std::function, via explicit lambda fix.
  auto search = [&](auto&& self, int slot) -> void {
    if (slot == k) {
      evaluate();
      return;
    }
    slots[slot] = -1;
    self(self, slot + 1);
    for (AdvertiserId i = 0; i < n; ++i) {
      if (used[i]) continue;
      used[i] = 1;
      slots[slot] = i;
      self(self, slot + 1);
      slots[slot] = -1;
      used[i] = 0;
    }
  };
  search(search, 0);
  return best;
}

}  // namespace ssa
