#include "core/formula.h"

#include <algorithm>
#include <utility>

namespace ssa {

Formula Formula::Make(Op op, SlotIndex slot, std::vector<Formula> children) {
  auto node = std::make_shared<Node>();
  node->op = op;
  node->slot = slot;
  node->children = std::move(children);
  return Formula(std::move(node));
}

Formula::Formula() : node_(nullptr) { *this = True(); }

Formula Formula::True() { return Make(Op::kTrue, kNoSlot, {}); }
Formula Formula::False() { return Make(Op::kFalse, kNoSlot, {}); }

Formula Formula::Slot(SlotIndex j) {
  SSA_CHECK(j >= 0);
  return Make(Op::kSlot, j, {});
}

Formula Formula::Click() { return Make(Op::kClick, kNoSlot, {}); }
Formula Formula::Purchase() { return Make(Op::kPurchase, kNoSlot, {}); }

Formula Formula::HeavyInSlot(SlotIndex j) {
  SSA_CHECK(j >= 0);
  return Make(Op::kHeavyInSlot, j, {});
}

Formula Formula::Not(Formula f) {
  return Make(Op::kNot, kNoSlot, {std::move(f)});
}

Formula Formula::And(Formula a, Formula b) {
  return Make(Op::kAnd, kNoSlot, {std::move(a), std::move(b)});
}

Formula Formula::Or(Formula a, Formula b) {
  return Make(Op::kOr, kNoSlot, {std::move(a), std::move(b)});
}

Formula Formula::AnySlot(const std::vector<SlotIndex>& slots) {
  if (slots.empty()) return False();
  Formula f = Slot(slots[0]);
  for (size_t i = 1; i < slots.size(); ++i) f = Or(f, Slot(slots[i]));
  return f;
}

bool Formula::Evaluate(const AdvertiserOutcome& outcome) const {
  switch (node_->op) {
    case Op::kTrue:
      return true;
    case Op::kFalse:
      return false;
    case Op::kSlot:
      return outcome.slot == node_->slot;
    case Op::kClick:
      return outcome.clicked;
    case Op::kPurchase:
      return outcome.purchased;
    case Op::kHeavyInSlot:
      return node_->slot < 32 &&
             (outcome.heavy_slot_mask >> node_->slot) & 1u;
    case Op::kNot:
      return !node_->children[0].Evaluate(outcome);
    case Op::kAnd:
      return node_->children[0].Evaluate(outcome) &&
             node_->children[1].Evaluate(outcome);
    case Op::kOr:
      return node_->children[0].Evaluate(outcome) ||
             node_->children[1].Evaluate(outcome);
  }
  SSA_CHECK_MSG(false, "corrupt formula node");
  return false;
}

bool Formula::DependsOnlyOnOwnPlacement() const {
  if (node_->op == Op::kHeavyInSlot) return false;
  return std::all_of(node_->children.begin(), node_->children.end(),
                     [](const Formula& c) {
                       return c.DependsOnlyOnOwnPlacement();
                     });
}

bool Formula::MentionsUserAction() const {
  if (node_->op == Op::kClick || node_->op == Op::kPurchase) return true;
  return std::any_of(node_->children.begin(), node_->children.end(),
                     [](const Formula& c) { return c.MentionsUserAction(); });
}

SlotIndex Formula::MaxSlotIndex() const {
  SlotIndex m = (node_->op == Op::kSlot || node_->op == Op::kHeavyInSlot)
                    ? node_->slot
                    : kNoSlot;
  for (const Formula& c : node_->children) {
    m = std::max(m, c.MaxSlotIndex());
  }
  return m;
}

std::string Formula::ToString() const {
  switch (node_->op) {
    case Op::kTrue:
      return "True";
    case Op::kFalse:
      return "False";
    case Op::kSlot:
      return "Slot" + std::to_string(node_->slot + 1);  // paper is 1-based
    case Op::kClick:
      return "Click";
    case Op::kPurchase:
      return "Purchase";
    case Op::kHeavyInSlot:
      return "Heavy" + std::to_string(node_->slot + 1);
    case Op::kNot:
      return "!" + node_->children[0].ToString();
    case Op::kAnd:
      return "(" + node_->children[0].ToString() + " & " +
             node_->children[1].ToString() + ")";
    case Op::kOr:
      return "(" + node_->children[0].ToString() + " | " +
             node_->children[1].ToString() + ")";
  }
  return "?";
}

bool Formula::StructurallyEquals(const Formula& other) const {
  if (node_ == other.node_) return true;
  if (node_->op != other.node_->op) return false;
  if (node_->slot != other.node_->slot) return false;
  if (node_->children.size() != other.node_->children.size()) return false;
  for (size_t i = 0; i < node_->children.size(); ++i) {
    if (!node_->children[i].StructurallyEquals(other.node_->children[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace ssa
