#ifndef SSA_CORE_SEPARABLE_H_
#define SSA_CORE_SEPARABLE_H_

#include <vector>

#include "core/click_model.h"
#include "matching/allocation.h"
#include "util/common.h"

namespace ssa {

/// The allocation rule current search engines use (Section III-C): when
/// click probabilities are separable — P(click | i, j) = alpha_i * beta_j —
/// and each advertiser bids a single per-click value v_i, the optimal
/// allocation puts the advertiser with the j-th highest alpha_i * v_i into
/// the slot with the j-th highest beta_j. O(n log k) with a size-k heap.
///
/// This fast path is *only* correct under separability (and cannot express
/// multi-feature bids at all) — `tests/separable_test.cc` demonstrates both
/// its agreement with the Hungarian optimum on separable instances and its
/// suboptimality on non-separable ones.
Allocation SeparableAllocate(const std::vector<Money>& click_values,
                             const SeparableClickModel& model);

/// Checks whether an explicit click-probability matrix (advertiser-major,
/// n x k) is separable up to `tolerance`, i.e. rank one: every 2x2 minor
/// vanishes. Figure 7 fails this test; Figure 8 passes.
bool IsSeparable(const std::vector<double>& click, int n, int k,
                 double tolerance = 1e-9);

}  // namespace ssa

#endif  // SSA_CORE_SEPARABLE_H_
