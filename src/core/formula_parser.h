#ifndef SSA_CORE_FORMULA_PARSER_H_
#define SSA_CORE_FORMULA_PARSER_H_

#include <string_view>

#include "core/formula.h"
#include "util/status.h"

namespace ssa {

/// Parses the textual bid-formula syntax used throughout the paper's
/// examples (Figures 3, 4, 6) and by the bidding-program language:
///
///   formula  := or
///   or       := and  (("|" | "OR")  and)*
///   and      := unary (("&" | "AND") unary)*
///   unary    := ("!" | "NOT") unary | atom
///   atom     := "(" formula ")" | predicate
///   predicate:= "SlotN" (1-based) | "Click" | "Purchase" | "HeavyN"
///              | "True" | "False"
///
/// Keywords are case-insensitive; `Slot1` denotes the topmost slot and maps
/// to internal slot index 0.
StatusOr<Formula> ParseFormula(std::string_view text);

}  // namespace ssa

#endif  // SSA_CORE_FORMULA_PARSER_H_
