#include "core/above_bids.h"

#include <algorithm>
#include <cmath>

namespace ssa {

double AboveBidsRevenue(const std::vector<AdvertiserId>& slot_to_advertiser,
                        int n, const std::vector<AboveBid>& bids) {
  // position[i] = slot of advertiser i, or large if unassigned (an
  // unassigned rival counts as "below" per the event definition; an
  // unassigned bidder never pays).
  const int k = static_cast<int>(slot_to_advertiser.size());
  std::vector<int> position(n, k + 1);
  for (int j = 0; j < k; ++j) {
    const AdvertiserId a = slot_to_advertiser[j];
    if (a >= 0) {
      SSA_CHECK(a < n);
      position[a] = j;
    }
  }
  double revenue = 0.0;
  for (const AboveBid& bid : bids) {
    SSA_CHECK(bid.bidder >= 0 && bid.bidder < n);
    SSA_CHECK(bid.rival >= 0 && bid.rival < n);
    if (position[bid.bidder] <= k - 1 &&
        position[bid.bidder] < position[bid.rival]) {
      revenue += bid.value;
    }
  }
  return revenue;
}

namespace {

void SearchOrdered(int n, int k, const std::vector<AboveBid>& bids,
                   std::vector<AdvertiserId>* current, std::vector<char>* used,
                   AboveWdResult* best) {
  // Evaluate the current (possibly partial) ordering: trailing slots empty.
  const double revenue = AboveBidsRevenue(*current, n, bids);
  if (revenue > best->revenue) {
    best->revenue = revenue;
    best->slot_to_advertiser = *current;
  }
  const int depth =
      static_cast<int>(std::count_if(current->begin(), current->end(),
                                     [](AdvertiserId a) { return a >= 0; }));
  if (depth == k) return;
  for (AdvertiserId i = 0; i < n; ++i) {
    if ((*used)[i]) continue;
    (*used)[i] = 1;
    (*current)[depth] = i;
    SearchOrdered(n, k, bids, current, used, best);
    (*current)[depth] = -1;
    (*used)[i] = 0;
  }
}

}  // namespace

AboveWdResult SolveAboveBidsExhaustive(int n, int k,
                                       const std::vector<AboveBid>& bids) {
  SSA_CHECK(k >= 0 && n >= 0);
  // Rough size bound: n^k orderings.
  SSA_CHECK_MSG(std::pow(static_cast<double>(n), k) < 5e7,
                "exhaustive above-bid instance too large");
  AboveWdResult best;
  best.slot_to_advertiser.assign(k, -1);
  best.revenue = 0.0;
  std::vector<AdvertiserId> current(k, -1);
  std::vector<char> used(n, 0);
  SearchOrdered(n, k, bids, &current, &used, &best);
  return best;
}

AboveWdResult SolveAboveBidsGreedy(int n, int k,
                                   const std::vector<AboveBid>& bids) {
  AboveWdResult result;
  result.slot_to_advertiser.assign(k, -1);
  std::vector<char> used(n, 0);
  result.revenue = 0.0;
  for (int depth = 0; depth < k; ++depth) {
    AdvertiserId best_adv = -1;
    double best_revenue = result.revenue;
    for (AdvertiserId i = 0; i < n; ++i) {
      if (used[i]) continue;
      result.slot_to_advertiser[depth] = i;
      const double revenue = AboveBidsRevenue(result.slot_to_advertiser, n, bids);
      if (revenue > best_revenue) {
        best_revenue = revenue;
        best_adv = i;
      }
    }
    if (best_adv == -1) {
      result.slot_to_advertiser[depth] = -1;
      break;  // no improving placement
    }
    result.slot_to_advertiser[depth] = best_adv;
    used[best_adv] = 1;
    result.revenue = best_revenue;
  }
  return result;
}

std::vector<AboveBid> EncodeFeedbackArcInstance(
    const std::vector<std::tuple<int, int, double>>& weighted_edges) {
  std::vector<AboveBid> bids;
  bids.reserve(weighted_edges.size());
  for (const auto& [u, v, w] : weighted_edges) {
    SSA_CHECK(u != v);
    bids.push_back(AboveBid{u, v, w});
  }
  return bids;
}

}  // namespace ssa
