#ifndef SSA_CORE_WINNER_DETERMINATION_H_
#define SSA_CORE_WINNER_DETERMINATION_H_

#include <string>
#include <vector>

#include "core/expected_revenue.h"
#include "matching/allocation.h"
#include "util/common.h"

namespace ssa {

/// The four winner-determination methods compared in Section V.
enum class WdMethod {
  /// Solve the assignment linear program with the simplex method (the naive
  /// baseline; integral optimum by Chvátal's theorem).
  kLp,
  /// Straightforward Hungarian (classical cover-based Munkres) on the full
  /// advertiser x slot bipartite graph, O(nk(n+k)).
  kHungarian,
  /// The paper's algorithm (Section III-E): reduce to the per-slot top-k
  /// bidders, then Hungarian on the reduced graph; O(nk log k + k^5).
  kReducedHungarian,
  /// Exhaustive search; exponential, test oracle only.
  kBruteForce,
};

/// Human-readable method name ("LP", "H", "RH", "BF").
std::string WdMethodName(WdMethod method);

/// Outcome of winner determination over a revenue matrix.
struct WdResult {
  Allocation allocation;
  /// Objective of the matching on marginal weights w_ij = r_i(j) - r_i(⊥).
  double matching_weight = 0.0;
  /// Total expected revenue: matching_weight + sum_i r_i(⊥).
  double expected_revenue = 0.0;
};

/// Runs winner determination with the chosen method. All methods return an
/// optimal allocation (they differ only in cost); tests assert equal
/// objectives across methods.
WdResult DetermineWinners(const RevenueMatrix& revenue, WdMethod method);

/// The reduction step of Section III-E: for each slot, the `per_slot`
/// advertisers with the highest positive marginal weight (maintained with a
/// size-bounded min-heap: O(n k log per_slot)); returns the deduplicated
/// union, at most k * per_slot candidates. An advertiser outside every
/// slot's top-k can be exchanged out of any optimal matching, so matching on
/// this subset is exact when per_slot >= k. per_slot == 0 (top-0) is the
/// valid degenerate case: no candidates. Ties in marginal weight break by
/// advertiser id — the higher id is retained first (the strict (weight, id)
/// order of TopKHeapSet), so the selection is a pure function of the matrix.
std::vector<AdvertiserId> SelectTopPerSlotCandidates(
    const RevenueMatrix& revenue, int per_slot);

/// Solves the reduced problem on an explicit candidate set (used by RH, by
/// the RHTALU pipeline — whose candidates come from the Threshold Algorithm —
/// and by the parallel tree aggregation).
WdResult SolveOnCandidates(const RevenueMatrix& revenue,
                           const std::vector<AdvertiserId>& candidates);

/// Marginal weights in the advertiser-major layout the matching kernels use.
std::vector<double> MarginalWeights(const RevenueMatrix& revenue);

}  // namespace ssa

#endif  // SSA_CORE_WINNER_DETERMINATION_H_
