#ifndef SSA_CORE_BIDS_TABLE_H_
#define SSA_CORE_BIDS_TABLE_H_

#include <string>
#include <vector>

#include "core/formula.h"
#include "core/outcome.h"
#include "util/common.h"

namespace ssa {

/// One row of a Bids table: "pay `value` if `formula` is true in the final
/// outcome" (Section II-A, Figure 3).
struct BidRow {
  Formula formula;
  Money value = 0;
};

/// An advertiser's OR-bid: a set of (formula, value) rows. If several
/// formulas are true in an outcome, the advertiser is charged the *sum* of
/// the corresponding values — the paper's OR-bid semantics, which keeps the
/// representation polynomial instead of the exponential full-valuation table
/// of Figure 2.
class BidsTable {
 public:
  BidsTable() = default;

  /// Adds a row. Zero-value rows are kept (programs may emit them; see the
  /// Figure 6 example where `Click` carries value 0).
  void AddBid(Formula formula, Money value);

  /// Removes all rows (bidding programs rebuild the table every auction).
  void Clear() { rows_.clear(); }

  const std::vector<BidRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }
  size_t size() const { return rows_.size(); }

  /// Amount the advertiser pays (assuming pay-what-you-bid) under a concrete
  /// outcome: the sum of values of all rows whose formula holds.
  Money Payment(const AdvertiserOutcome& outcome) const;

  /// True iff every row's event depends only on this advertiser's own
  /// placement (no HeavyInSlot predicates) — i.e. the bid is 1-dependent and
  /// eligible for the Theorem 2 fast path.
  bool DependsOnlyOnOwnPlacement() const;

  /// Largest slot index mentioned by any row; -1 if none.
  SlotIndex MaxSlotIndex() const;

  /// Sum of all row values — an upper bound on any payment.
  Money TotalValue() const;

  /// Debug form: one "formula -> value" line per row.
  std::string ToString() const;

 private:
  std::vector<BidRow> rows_;
};

}  // namespace ssa

#endif  // SSA_CORE_BIDS_TABLE_H_
