#include "core/expected_revenue.h"

#include <numeric>

namespace ssa {

RevenueMatrix::RevenueMatrix(int num_advertisers, int num_slots)
    : n_(num_advertisers),
      k_(num_slots),
      assigned_(static_cast<size_t>(num_advertisers) * num_slots, 0.0),
      unassigned_(num_advertisers, 0.0) {
  SSA_CHECK(n_ >= 0 && k_ >= 0);
}

double RevenueMatrix::UnassignedTotal() const {
  return std::accumulate(unassigned_.begin(), unassigned_.end(), 0.0);
}

Money ExpectedPayment(const BidsTable& bids, const ClickModel& model,
                      AdvertiserId i, SlotIndex slot) {
  SSA_CHECK_MSG(bids.DependsOnlyOnOwnPlacement(),
                "heavyweight bids require the Section III-F solver");
  const bool assigned = slot != kNoSlot;
  // With the slot fixed, only the (click, purchase) pair is random. An
  // unassigned ad is never displayed, hence never clicked; purchases require
  // the ad's link, so the no-click purchase probability applies only when
  // displayed (and defaults to zero).
  const double pc = assigned ? model.ClickProbability(i, slot) : 0.0;
  const double ppc =
      assigned ? model.PurchaseProbabilityGivenClick(i, slot) : 0.0;
  const double ppn =
      assigned ? model.PurchaseProbabilityGivenNoClick(i, slot) : 0.0;

  const double prob[2][2] = {
      // [clicked][purchased]
      {(1.0 - pc) * (1.0 - ppn), (1.0 - pc) * ppn},
      {pc * (1.0 - ppc), pc * ppc},
  };

  Money expected = 0;
  AdvertiserOutcome outcome;
  outcome.slot = slot;
  for (int c = 0; c < 2; ++c) {
    for (int p = 0; p < 2; ++p) {
      if (prob[c][p] == 0.0) continue;
      outcome.clicked = (c == 1);
      outcome.purchased = (p == 1);
      expected += prob[c][p] * bids.Payment(outcome);
    }
  }
  return expected;
}

RevenueMatrix BuildRevenueMatrix(const std::vector<BidsTable>& bids,
                                 const ClickModel& model) {
  const int n = static_cast<int>(bids.size());
  const int k = model.num_slots();
  SSA_CHECK(model.num_advertisers() >= n);
  RevenueMatrix matrix(n, k);
  for (AdvertiserId i = 0; i < n; ++i) {
    for (SlotIndex j = 0; j < k; ++j) {
      matrix.Set(i, j, ExpectedPayment(bids[i], model, i, j));
    }
    matrix.SetUnassigned(i, ExpectedPayment(bids[i], model, i, kNoSlot));
  }
  return matrix;
}

}  // namespace ssa
