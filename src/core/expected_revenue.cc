#include "core/expected_revenue.h"

#include <numeric>

#include "util/thread_pool.h"

namespace ssa {

RevenueMatrix::RevenueMatrix(int num_advertisers, int num_slots)
    : n_(num_advertisers),
      k_(num_slots),
      assigned_(static_cast<size_t>(num_advertisers) * num_slots, 0.0),
      unassigned_(num_advertisers, 0.0) {
  SSA_CHECK(n_ >= 0 && k_ >= 0);
}

void RevenueMatrix::Reset(int num_advertisers, int num_slots) {
  SSA_CHECK(num_advertisers >= 0 && num_slots >= 0);
  n_ = num_advertisers;
  k_ = num_slots;
  assigned_.assign(static_cast<size_t>(n_) * k_, 0.0);
  unassigned_.assign(static_cast<size_t>(n_), 0.0);
}

double RevenueMatrix::UnassignedTotal() const {
  return std::accumulate(unassigned_.begin(), unassigned_.end(), 0.0);
}

void OutcomeProbabilities(const ClickModel& model, AdvertiserId i,
                          SlotIndex slot, double prob[4]) {
  // With the slot fixed, only the (click, purchase) pair is random. An
  // unassigned ad is never displayed, hence never clicked; purchases require
  // the ad's link, so the no-click purchase probability applies only when
  // displayed (and defaults to zero). Virtual so table-backed models can
  // serve the whole distribution with one dispatch.
  model.OutcomeDistribution(i, slot, prob);
}

Money ExpectedPayment(const BidsTable& bids, const ClickModel& model,
                      AdvertiserId i, SlotIndex slot) {
  SSA_CHECK_MSG(bids.DependsOnlyOnOwnPlacement(),
                "heavyweight bids require the Section III-F solver");
  double prob[4];
  OutcomeProbabilities(model, i, slot, prob);

  Money expected = 0;
  AdvertiserOutcome outcome;
  outcome.slot = slot;
  for (int b = 0; b < 4; ++b) {
    if (prob[b] == 0.0) continue;
    outcome.clicked = (b & 2) != 0;
    outcome.purchased = (b & 1) != 0;
    expected += prob[b] * bids.Payment(outcome);
  }
  return expected;
}

/// Per slot, one branch-free pass over the advertiser's contiguous
/// values/masks.
void FillRevenueRow(const CompiledBids& compiled, const ClickModel& model,
                    RevenueMatrix* matrix, AdvertiserId i) {
  const int k = matrix->num_slots();
  double prob[4];
  double* row = matrix->MutableRow(i);
  for (SlotIndex j = 0; j < k; ++j) {
    OutcomeProbabilities(model, i, j, prob);
    row[j] = compiled.ExpectedPayment(j, prob);
  }
  OutcomeProbabilities(model, i, kNoSlot, prob);
  matrix->MutableUnassignedData()[i] = compiled.ExpectedPayment(kNoSlot, prob);
}

RevenueMatrix BuildRevenueMatrix(const std::vector<BidsTable>& bids,
                                 const ClickModel& model, ThreadPool* pool) {
  const int n = static_cast<int>(bids.size());
  const int k = model.num_slots();
  SSA_CHECK(model.num_advertisers() >= n);
  RevenueMatrix matrix(n, k);
  auto fill_range = [&](int begin, int end) {
    // Compile-and-use per advertiser: one tree walk per row, then dense
    // evaluation; the compiled rows stay hot in cache for all k+1 states.
    // One scratch CompiledBids per worker keeps the loop allocation-free.
    thread_local CompiledBids compiled;
    for (AdvertiserId i = begin; i < end; ++i) {
      compiled.CompileFrom(bids[i], k);
      FillRevenueRow(compiled, model, &matrix, i);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunks(n, fill_range);
  } else {
    fill_range(0, n);
  }
  return matrix;
}

RevenueMatrix BuildRevenueMatrixBaseline(const std::vector<BidsTable>& bids,
                                         const ClickModel& model) {
  const int n = static_cast<int>(bids.size());
  const int k = model.num_slots();
  SSA_CHECK(model.num_advertisers() >= n);
  RevenueMatrix matrix(n, k);
  for (AdvertiserId i = 0; i < n; ++i) {
    for (SlotIndex j = 0; j < k; ++j) {
      matrix.Set(i, j, ExpectedPayment(bids[i], model, i, j));
    }
    matrix.SetUnassigned(i, ExpectedPayment(bids[i], model, i, kNoSlot));
  }
  return matrix;
}

RevenueMatrix BuildRevenueMatrixCompiled(
    const std::vector<const CompiledBids*>& bids, const ClickModel& model,
    ThreadPool* pool) {
  const int n = static_cast<int>(bids.size());
  const int k = model.num_slots();
  SSA_CHECK(model.num_advertisers() >= n);
  RevenueMatrix matrix(n, k);
  auto fill_range = [&](int begin, int end) {
    for (AdvertiserId i = begin; i < end; ++i) {
      SSA_CHECK(bids[i] != nullptr && bids[i]->num_slots() == k);
      FillRevenueRow(*bids[i], model, &matrix, i);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunks(n, fill_range);
  } else {
    fill_range(0, n);
  }
  return matrix;
}

}  // namespace ssa
