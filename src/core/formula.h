#ifndef SSA_CORE_FORMULA_H_
#define SSA_CORE_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/outcome.h"
#include "util/common.h"

namespace ssa {

/// A Boolean combination of outcome predicates — the unit an advertiser bids
/// on (Section II-A). Available predicates:
///
///   * Slot(j)        — "my ad was shown in slot j" (0-based internally;
///                       the parser accepts the paper's 1-based `Slot1`).
///   * Click()        — "the user clicked my ad".
///   * Purchase()     — "the user purchased via my ad".
///   * HeavyInSlot(j) — "slot j holds a heavyweight advertiser"
///                       (Section III-F extension).
///
/// Formulas are immutable trees shared by value (shallow copies share
/// subtree nodes). All formulas over these predicates are 1-dependent in the
/// sense of Definition 1, which is what makes winner determination reduce to
/// bipartite matching (Theorem 2); `DependsOnlyOnOwnPlacement()` reports
/// whether a formula avoids the heavyweight predicates and hence fits the
/// plain fast path.
class Formula {
 public:
  enum class Op {
    kTrue,
    kFalse,
    kSlot,         // Slot(slot_arg)
    kClick,
    kPurchase,
    kHeavyInSlot,  // HeavyInSlot(slot_arg)
    kNot,
    kAnd,
    kOr,
  };

  /// Constructs the constant-true formula (default so containers work).
  Formula();

  // -- Leaf constructors -----------------------------------------------------

  static Formula True();
  static Formula False();
  /// Predicate: this advertiser is shown in slot `j` (0-based).
  static Formula Slot(SlotIndex j);
  static Formula Click();
  static Formula Purchase();
  /// Predicate: slot `j` (0-based) holds a heavyweight advertiser.
  static Formula HeavyInSlot(SlotIndex j);

  // -- Connectives -----------------------------------------------------------

  static Formula Not(Formula f);
  static Formula And(Formula a, Formula b);
  static Formula Or(Formula a, Formula b);
  /// N-ary disjunction of Slot(j) for j in `slots` — the common "display me
  /// in any of these positions" bid (e.g. Figure 3's `Slot1 | Slot2`).
  static Formula AnySlot(const std::vector<SlotIndex>& slots);

  Formula operator!() const { return Not(*this); }
  friend Formula operator&&(const Formula& a, const Formula& b) {
    return And(a, b);
  }
  friend Formula operator||(const Formula& a, const Formula& b) {
    return Or(a, b);
  }

  // -- Inspection ------------------------------------------------------------

  Op op() const { return node_->op; }
  /// Slot argument of a kSlot / kHeavyInSlot node.
  SlotIndex slot_arg() const { return node_->slot; }
  /// Children of a connective node.
  const std::vector<Formula>& children() const { return node_->children; }

  /// Truth value of the formula under a concrete outcome.
  bool Evaluate(const AdvertiserOutcome& outcome) const;

  /// True iff the formula never mentions HeavyInSlot — i.e. its event depends
  /// only on this advertiser's own placement (plus click/purchase, which the
  /// model makes 1-dependent), so Theorem 2's fast path applies.
  bool DependsOnlyOnOwnPlacement() const;

  /// True iff the formula mentions Click or Purchase.
  bool MentionsUserAction() const;

  /// Largest slot index referenced (by Slot or HeavyInSlot); -1 if none.
  SlotIndex MaxSlotIndex() const;

  /// Text form, parseable by ParseFormula; e.g. "(Click & Slot1) | Purchase".
  std::string ToString() const;

  /// Structural equality (same tree shape and predicates).
  bool StructurallyEquals(const Formula& other) const;

 private:
  struct Node {
    Op op;
    SlotIndex slot = kNoSlot;
    std::vector<Formula> children;
  };

  explicit Formula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}
  static Formula Make(Op op, SlotIndex slot, std::vector<Formula> children);

  std::shared_ptr<const Node> node_;
};

}  // namespace ssa

#endif  // SSA_CORE_FORMULA_H_
