#include "core/winner_determination.h"

#include <algorithm>

#include "lp/assignment_lp.h"
#include "matching/brute_force.h"
#include "matching/hungarian.h"
#include "matching/munkres.h"
#include "util/topk_heap.h"

namespace ssa {

std::string WdMethodName(WdMethod method) {
  switch (method) {
    case WdMethod::kLp:
      return "LP";
    case WdMethod::kHungarian:
      return "H";
    case WdMethod::kReducedHungarian:
      return "RH";
    case WdMethod::kBruteForce:
      return "BF";
  }
  return "?";
}

std::vector<double> MarginalWeights(const RevenueMatrix& revenue) {
  const int n = revenue.num_advertisers();
  const int k = revenue.num_slots();
  std::vector<double> w(static_cast<size_t>(n) * k);
  const double* base = revenue.UnassignedData();
  for (AdvertiserId i = 0; i < n; ++i) {
    const double* row = revenue.Row(i);
    double* out = w.data() + static_cast<size_t>(i) * k;
    for (SlotIndex j = 0; j < k; ++j) out[j] = row[j] - base[i];
  }
  return w;
}

std::vector<AdvertiserId> SelectTopPerSlotCandidates(
    const RevenueMatrix& revenue, int per_slot) {
  SSA_CHECK(per_slot >= 0);  // per_slot == 0 degenerates to no candidates
  const int n = revenue.num_advertisers();
  const int k = revenue.num_slots();

  // One size-bounded min-heap per slot over (weight, advertiser). The root
  // is the weakest of the current top `per_slot`, so each of the n*k entries
  // costs O(log per_slot) — the O(nk log k) term of Section III-E. The k
  // heaps live in one thread-local flat buffer reused across auctions (no
  // per-call priority_queue allocations); Offer() applies the strict
  // (weight, id) pair order, deterministic and insertion-order independent,
  // so the Threshold Algorithm pipeline selects the identical candidate set
  // (equivalence tests rely on this).
  thread_local TopKHeapSet heaps;
  heaps.Reset(k, per_slot);
  const double* base = revenue.UnassignedData();
  for (AdvertiserId i = 0; i < n; ++i) {
    const double* row = revenue.Row(i);
    for (SlotIndex j = 0; j < k; ++j) {
      const double w = row[j] - base[i];
      if (w <= 0.0) continue;  // never beats leaving the slot empty
      heaps.Offer(j, w, i);
    }
  }

  std::vector<char> seen(n, 0);
  std::vector<AdvertiserId> candidates;
  candidates.reserve(static_cast<size_t>(k) * per_slot);
  for (SlotIndex j = 0; j < k; ++j) {
    const TopKHeapSet::Entry* entries = heaps.entries(j);
    for (int e = 0; e < heaps.size(j); ++e) {
      const AdvertiserId i = entries[e].id;
      if (!seen[i]) {
        seen[i] = 1;
        candidates.push_back(i);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

WdResult SolveOnCandidates(const RevenueMatrix& revenue,
                           const std::vector<AdvertiserId>& candidates) {
  const std::vector<double> w = MarginalWeights(revenue);
  WdResult result;
  result.allocation = MaxWeightMatchingSubset(w, revenue.num_advertisers(),
                                              revenue.num_slots(), candidates);
  result.matching_weight = result.allocation.total_weight;
  result.expected_revenue = result.matching_weight + revenue.UnassignedTotal();
  return result;
}

namespace {

/// Canonicalizes an optimal allocation: an edge with non-positive marginal
/// weight is revenue-neutral (or harmful) versus leaving the slot empty, so
/// it is dropped. RH never produces such edges (its candidate heaps keep
/// strictly positive weights only); LP and Munkres can tie-break toward
/// filling a slot with a zero-weight advertiser, which would make the
/// methods observably different auctions (a seated zero-bidder still
/// collects clicks and mutates its ROI state). After this pass all methods
/// yield the same allocation except on exact positive-weight ties.
void DropNonPositiveEdges(const RevenueMatrix& revenue, Allocation* a) {
  a->total_weight = 0.0;
  for (SlotIndex j = 0; j < a->num_slots(); ++j) {
    const AdvertiserId i = a->slot_to_advertiser[j];
    if (i < 0) continue;
    const double w = revenue.MarginalWeight(i, j);
    if (w <= 0.0) {
      a->slot_to_advertiser[j] = -1;
      a->advertiser_to_slot[i] = kNoSlot;
    } else {
      a->total_weight += w;
    }
  }
}

}  // namespace

WdResult DetermineWinners(const RevenueMatrix& revenue, WdMethod method) {
  const int n = revenue.num_advertisers();
  const int k = revenue.num_slots();
  WdResult result;
  switch (method) {
    case WdMethod::kLp: {
      const std::vector<double> w = MarginalWeights(revenue);
      StatusOr<Allocation> alloc = SolveAssignmentLp(w, n, k);
      SSA_CHECK_MSG(alloc.ok(), alloc.status().ToString().c_str());
      result.allocation = *std::move(alloc);
      break;
    }
    case WdMethod::kHungarian: {
      result.allocation = MunkresMatching(MarginalWeights(revenue), n, k);
      break;
    }
    case WdMethod::kReducedHungarian: {
      return SolveOnCandidates(revenue,
                               SelectTopPerSlotCandidates(revenue, k));
    }
    case WdMethod::kBruteForce: {
      result.allocation = BruteForceMatching(MarginalWeights(revenue), n, k);
      break;
    }
  }
  DropNonPositiveEdges(revenue, &result.allocation);
  result.matching_weight = result.allocation.total_weight;
  result.expected_revenue = result.matching_weight + revenue.UnassignedTotal();
  return result;
}

}  // namespace ssa
