#ifndef SSA_CORE_COMPILED_BIDS_H_
#define SSA_CORE_COMPILED_BIDS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/bids_table.h"
#include "core/outcome.h"
#include "util/common.h"

namespace ssa {

/// Compiled form of one advertiser's BidsTable: every row's Formula tree is
/// flattened into a truth table over the 1-dependent outcome space — one
/// 4-bit (click, purchase) mask per slot state. The slot states are the k
/// slots plus "unassigned", so a row costs (k + 1) bytes plus its value.
///
/// This turns ExpectedPayment from a recursive shared_ptr tree walk (up to
/// one walk per (click, purchase) outcome) into a branch-free dot product of
/// contiguous row values against four accumulators, and makes the Theorem 2
/// revenue-matrix construction stream over flat arrays. Compilation itself
/// is a single bottom-up walk per row (each node costs O(k) byte ops), so it
/// amortizes after roughly one ExpectedPayment call.
///
/// The four outcome accumulators are the kernel's vector dimension: the
/// portable build packs the 4 mask bits into 64-bit SWAR lanes and expands
/// them to {0.0, 1.0} weights branch-free (compilers vectorize the fixed
/// 4-wide mul+add), and AVX2 builds (-mavx2 / SSA_NATIVE) use a 256-bit
/// specialization. Rows are never reassociated across lanes, so every build
/// flavor produces identical bits.
///
/// Numerical contract: the compiled evaluators reproduce the tree-walking
/// `BidsTable::Payment` / `ExpectedPayment` results *bit for bit* — values
/// accumulate in row order and the outcome probabilities are applied in the
/// same order with the same zero-skipping, so the compiled path is a pure
/// representation change (the equivalence tests assert exact equality).
class CompiledBids {
 public:
  CompiledBids() = default;

  /// Compiles `bids` for a page with `num_slots` slots. Requires
  /// bids.DependsOnlyOnOwnPlacement() (same precondition as ExpectedPayment);
  /// rows mentioning slots >= num_slots compile to "never true in that slot"
  /// exactly like the tree evaluation over in-range outcomes.
  static CompiledBids Compile(const BidsTable& bids, int num_slots);

  /// Section III-F variant: HeavyInSlot predicates are resolved against the
  /// fixed `heavy_mask` (bit j set => slot j holds a heavyweight), so the
  /// compiled rows are valid for per-subset evaluations under exactly that
  /// mask.
  static CompiledBids CompileHeavy(const BidsTable& bids, int num_slots,
                                   uint32_t heavy_mask);

  /// In-place recompilation reusing this object's buffers — the zero-
  /// allocation path for compile-and-discard loops (BuildRevenueMatrix over
  /// raw tables keeps one scratch CompiledBids per worker).
  void CompileFrom(const BidsTable& bids, int num_slots);
  void CompileHeavyFrom(const BidsTable& bids, int num_slots,
                        uint32_t heavy_mask);

  int num_slots() const { return k_; }
  size_t num_rows() const { return values_.size(); }

  /// Payment under a concrete outcome — bitwise equal to
  /// BidsTable::Payment for outcomes with slot in [0, num_slots) or kNoSlot
  /// (and, for CompileHeavy, outcome.heavy_slot_mask == the compiled mask).
  Money Payment(const AdvertiserOutcome& outcome) const;

  /// Expected payment given the advertiser's slot (kNoSlot allowed) and the
  /// (click, purchase) distribution `prob`, indexed by
  /// (clicked << 1) | purchased. Bitwise equal to the tree-walking
  /// ExpectedPayment when `prob` comes from OutcomeProbabilities /
  /// HeavyOutcomeProbabilities.
  Money ExpectedPayment(SlotIndex slot, const double prob[4]) const;

  /// Dense-kernel access: row values and the per-slot mask column
  /// (`slot == kNoSlot` selects the unassigned state). One byte per row.
  const double* values() const { return values_.data(); }
  const uint8_t* MasksForSlot(SlotIndex slot) const {
    return masks_.data() + static_cast<size_t>(StateIndex(slot)) * num_rows();
  }

 private:
  void CompileImpl(const BidsTable& bids, int num_slots,
                   const uint32_t* heavy_mask);

  int StateIndex(SlotIndex slot) const {
    SSA_CHECK(slot == kNoSlot || (slot >= 0 && slot < k_));
    return slot == kNoSlot ? k_ : slot;
  }

  int k_ = 0;
  bool resolves_heavy_ = false;
  uint32_t heavy_mask_ = 0;
  std::vector<double> values_;  // one entry per row, in table order
  /// Truth tables, slot-state-major: masks_[s * num_rows + r] is row r's
  /// 4-bit (click, purchase) mask in state s (s == k_ is "unassigned").
  std::vector<uint8_t> masks_;
};

/// Order-sensitive content fingerprint of a BidsTable (formula structure +
/// row values). Strategies usually re-emit identical tables for a keyword,
/// so the engine keys its compiled-bids cache on this 64-bit hash; a
/// collision would silently reuse a stale compilation, but at 64 bits that
/// is vanishingly unlikely for auction-sized populations.
uint64_t FingerprintBids(const BidsTable& bids);

/// Per-advertiser cache of compiled bids keyed on content fingerprint —
/// AuctionEngine keeps one across auctions so unchanged tables are never
/// recompiled. Entries are keyed by *global* advertiser id: a sharded
/// engine's planning lane shares one cache across its shards, so moving a
/// shard boundary (Repartition) never invalidates a compilation — the entry
/// simply gets probed by a different shard's task.
///
/// Threading: Get(i, ...) mutates only entry i (hit/miss counters included —
/// there is deliberately no cache-wide mutable state on the Get path), so
/// concurrent Gets for *distinct* ids are race-free **provided the entries
/// already exist** — call Reserve(population) up front; an unreserved Get
/// grows the deque, which must stay single-threaded.
class CompiledBidsCache {
 public:
  /// Pre-creates entries [0, n) so concurrent Get calls on distinct ids
  /// never reshape the container. Idempotent; never shrinks.
  void Reserve(size_t n);

  /// Returns the compiled form of `bids` for advertiser `i`, reusing the
  /// cached compilation when fingerprint and num_slots both match. The
  /// returned reference stays valid until the next Get(i, ...) call *for the
  /// same advertiser* (entries live in a deque, so growing the cache for
  /// other advertisers never moves them).
  const CompiledBids& Get(AdvertiserId i, const BidsTable& bids,
                          int num_slots);

  /// Counter sums over every entry (per-entry counters keep the Get path
  /// free of shared mutable state; summing is O(entries), fine for
  /// telemetry).
  int64_t hits() const;
  int64_t misses() const;
  /// Per-range sums — per-shard observability under global keying.
  int64_t HitsInRange(AdvertiserId begin, AdvertiserId end) const;
  int64_t MissesInRange(AdvertiserId begin, AdvertiserId end) const;

  /// One cached entry's identity, without its compiled payload — what engine
  /// checkpoints persist. Compilations are pure functions of (table,
  /// num_slots), so a checkpoint only needs the keys: after restore the
  /// tables recompile on demand and the stored fingerprints verify that the
  /// restored strategies re-emit exactly the tables that were cached.
  struct KeySnapshot {
    bool valid = false;
    uint64_t fingerprint = 0;
    int32_t num_slots = -1;
  };

  /// Snapshot of every entry's key, indexed by advertiser slot.
  std::vector<KeySnapshot> ExportKeys() const;

  /// Primes the cache with the keys a checkpoint recorded. Entries stay
  /// uncompiled (recompile on demand); the first Get() per advertiser checks
  /// the incoming table's fingerprint against the expected key and counts a
  /// verified recompilation on match — a cheap end-to-end integrity signal
  /// that the restored strategy state reproduces the checkpointed tables.
  void PrimeExpectedKeys(const std::vector<KeySnapshot>& keys);

  /// Post-restore recompilations whose fingerprint matched the primed key.
  int64_t verified_recompiles() const;

 private:
  struct Entry {
    bool valid = false;
    uint64_t fingerprint = 0;
    int num_slots = -1;
    /// Key recorded by a checkpoint, awaiting verification on first Get().
    bool expected = false;
    uint64_t expected_fingerprint = 0;
    int expected_num_slots = -1;
    /// Per-entry counters: Get touches only its own entry, which is what
    /// makes disjoint-id concurrent lookups race-free.
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t verified = 0;
    CompiledBids compiled;
  };
  std::deque<Entry> entries_;
};

}  // namespace ssa

#endif  // SSA_CORE_COMPILED_BIDS_H_
