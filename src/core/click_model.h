#ifndef SSA_CORE_CLICK_MODEL_H_
#define SSA_CORE_CLICK_MODEL_H_

#include <memory>
#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace ssa {

/// The search provider's estimated click/purchase probabilities
/// (Section III-A). The first-order model the paper adopts: the probability
/// that advertiser i gets a click depends only on the slot assigned to i,
/// and the probability of a purchase depends only on whether i got a click
/// and on i's slot. This makes every event expressible by a bid formula
/// 1-dependent (Definition 1), which is what Theorem 2 exploits.
class ClickModel {
 public:
  virtual ~ClickModel() = default;

  virtual int num_advertisers() const = 0;
  virtual int num_slots() const = 0;

  /// P(click | advertiser i shown in slot j). j in [0, num_slots).
  /// An unassigned advertiser is never clicked — callers handle kNoSlot.
  virtual double ClickProbability(AdvertiserId i, SlotIndex j) const = 0;

  /// P(purchase | click, advertiser i in slot j).
  virtual double PurchaseProbabilityGivenClick(AdvertiserId i,
                                               SlotIndex j) const = 0;

  /// P(purchase | no click, advertiser i in slot j). Usually zero; exposed
  /// because the paper conditions purchases on (click, slot) generally.
  virtual double PurchaseProbabilityGivenNoClick(AdvertiserId /*i*/,
                                                 SlotIndex /*j*/) const {
    return 0.0;
  }

  /// The full (click, purchase) distribution of advertiser i fixed in
  /// `slot` (kNoSlot allowed), written to prob[4] indexed by
  /// (clicked << 1) | purchased — the form the dense matrix kernels
  /// consume. The default composes the three per-quantity virtuals above;
  /// table-backed models override it to serve the row with a single bounds
  /// check. Overrides must perform the identical arithmetic (the compiled
  /// revenue-matrix path is asserted bitwise-equal to the tree walk).
  virtual void OutcomeDistribution(AdvertiserId i, SlotIndex slot,
                                   double prob[4]) const;
};

/// Click model backed by explicit per-(advertiser, slot) probability tables —
/// the general, non-separable case of Figure 7.
class MatrixClickModel : public ClickModel {
 public:
  /// `click` is row-major n x k. Purchase probabilities default to zero.
  MatrixClickModel(int num_advertisers, int num_slots,
                   std::vector<double> click);
  MatrixClickModel(int num_advertisers, int num_slots,
                   std::vector<double> click,
                   std::vector<double> purchase_given_click);

  int num_advertisers() const override { return n_; }
  int num_slots() const override { return k_; }
  double ClickProbability(AdvertiserId i, SlotIndex j) const override;
  double PurchaseProbabilityGivenClick(AdvertiserId i,
                                       SlotIndex j) const override;
  void OutcomeDistribution(AdvertiserId i, SlotIndex slot,
                           double prob[4]) const override;

 private:
  int n_;
  int k_;
  std::vector<double> click_;
  std::vector<double> purchase_given_click_;  // may be empty => 0
};

/// Separable click probabilities (Section III-C, Figure 8): P(click | i, j) =
/// advertiser_factor[i] * slot_factor[j]. Current Google/Yahoo allocation
/// relies on exactly this restriction; `core/separable.h` implements the
/// O(n log k) allocation that is only correct under it.
class SeparableClickModel : public ClickModel {
 public:
  SeparableClickModel(std::vector<double> advertiser_factors,
                      std::vector<double> slot_factors,
                      double purchase_given_click = 0.0);

  int num_advertisers() const override {
    return static_cast<int>(advertiser_factors_.size());
  }
  int num_slots() const override {
    return static_cast<int>(slot_factors_.size());
  }
  double ClickProbability(AdvertiserId i, SlotIndex j) const override;
  double PurchaseProbabilityGivenClick(AdvertiserId,
                                       SlotIndex) const override {
    return purchase_given_click_;
  }

  const std::vector<double>& advertiser_factors() const {
    return advertiser_factors_;
  }
  const std::vector<double>& slot_factors() const { return slot_factors_; }

 private:
  std::vector<double> advertiser_factors_;
  std::vector<double> slot_factors_;
  double purchase_given_click_;
};

/// The evaluation section's generator (Section V): the interval [lo, hi]
/// (paper: [0.1, 0.9]) is partitioned into k disjoint equal-width intervals;
/// slot j is associated with the (j+1)-th highest interval (slot 0 the
/// highest), and each advertiser's click probability for slot j is drawn
/// uniformly within slot j's interval. Non-separable in general.
MatrixClickModel MakeSlotIntervalClickModel(int num_advertisers, int num_slots,
                                            Rng& rng, double lo = 0.1,
                                            double hi = 0.9,
                                            double purchase_given_click = 0.0);

/// Uniform random separable model: advertiser factors U(0.2, 1.0), slot
/// factors descending in j (slot 0 largest). Used by the separability
/// ablation.
SeparableClickModel MakeRandomSeparableClickModel(int num_advertisers,
                                                  int num_slots, Rng& rng);

}  // namespace ssa

#endif  // SSA_CORE_CLICK_MODEL_H_
