#include "core/bids_table.h"

#include <algorithm>
#include <utility>

namespace ssa {

void BidsTable::AddBid(Formula formula, Money value) {
  SSA_CHECK_MSG(value >= 0, "bid values must be non-negative");
  rows_.push_back(BidRow{std::move(formula), value});
}

Money BidsTable::Payment(const AdvertiserOutcome& outcome) const {
  Money total = 0;
  for (const BidRow& row : rows_) {
    if (row.formula.Evaluate(outcome)) total += row.value;
  }
  return total;
}

bool BidsTable::DependsOnlyOnOwnPlacement() const {
  return std::all_of(rows_.begin(), rows_.end(), [](const BidRow& row) {
    return row.formula.DependsOnlyOnOwnPlacement();
  });
}

SlotIndex BidsTable::MaxSlotIndex() const {
  SlotIndex m = kNoSlot;
  for (const BidRow& row : rows_) {
    m = std::max(m, row.formula.MaxSlotIndex());
  }
  return m;
}

Money BidsTable::TotalValue() const {
  Money total = 0;
  for (const BidRow& row : rows_) total += row.value;
  return total;
}

std::string BidsTable::ToString() const {
  std::string out;
  for (const BidRow& row : rows_) {
    out += row.formula.ToString();
    out += " -> ";
    out += std::to_string(row.value);
    out += "\n";
  }
  return out;
}

}  // namespace ssa
