#ifndef SSA_CORE_HEAVYWEIGHT_H_
#define SSA_CORE_HEAVYWEIGHT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bids_table.h"
#include "core/click_model.h"
#include "matching/allocation.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace ssa {

/// Section III-F: beyond 1-dependence. Advertisers are classified as
/// heavyweights (famous) or lightweights; click/purchase probabilities may
/// now depend on *which slots hold heavyweights* (the `heavy_mask`), and
/// bids may mention the HeavyInSlot predicates. Representations stay
/// O(k 2^(k-1)) — independent of n.
class HeavyAwareClickModel {
 public:
  virtual ~HeavyAwareClickModel() = default;

  virtual int num_advertisers() const = 0;
  virtual int num_slots() const = 0;

  /// P(click | advertiser i in slot j, heavyweight slots = heavy_mask).
  virtual double ClickProbability(AdvertiserId i, SlotIndex j,
                                  uint32_t heavy_mask) const = 0;
  virtual double PurchaseProbabilityGivenClick(AdvertiserId i, SlotIndex j,
                                               uint32_t heavy_mask) const = 0;
};

/// The motivating example of Section III-F made concrete: a heavyweight
/// above you "shadows" your ad. The click probability is a base
/// (advertiser, slot) matrix damped multiplicatively by every heavyweight
/// placed strictly above:
///   P(click | i, j, H) = base(i, j) * prod_{j' < j, j' in H} (1 - shadow_i)
/// where shadow_i is `heavy_shadow` if advertiser i is itself a heavyweight
/// (big brands suffer less) and `light_shadow` otherwise.
class ShadowHeavyClickModel : public HeavyAwareClickModel {
 public:
  ShadowHeavyClickModel(std::shared_ptr<const ClickModel> base,
                        std::vector<bool> is_heavy, double light_shadow,
                        double heavy_shadow,
                        double purchase_given_click = 0.0);

  int num_advertisers() const override { return base_->num_advertisers(); }
  int num_slots() const override { return base_->num_slots(); }
  double ClickProbability(AdvertiserId i, SlotIndex j,
                          uint32_t heavy_mask) const override;
  double PurchaseProbabilityGivenClick(AdvertiserId, SlotIndex,
                                       uint32_t) const override {
    return purchase_given_click_;
  }

 private:
  std::shared_ptr<const ClickModel> base_;
  std::vector<bool> is_heavy_;
  double light_shadow_;
  double heavy_shadow_;
  double purchase_given_click_;
};

/// Fully general table: explicit P(click | i, j, mask) of size n * k * 2^k.
/// Exponential in k — used by tests and tiny instances, mirroring the
/// paper's remark that the general representation is O(k 2^(k-1)).
class TableHeavyClickModel : public HeavyAwareClickModel {
 public:
  /// click[( i * k + j ) * 2^k + mask].
  TableHeavyClickModel(int num_advertisers, int num_slots,
                       std::vector<double> click,
                       double purchase_given_click = 0.0);

  int num_advertisers() const override { return n_; }
  int num_slots() const override { return k_; }
  double ClickProbability(AdvertiserId i, SlotIndex j,
                          uint32_t heavy_mask) const override;
  double PurchaseProbabilityGivenClick(AdvertiserId, SlotIndex,
                                       uint32_t) const override {
    return purchase_given_click_;
  }

 private:
  int n_;
  int k_;
  std::vector<double> click_;
  double purchase_given_click_;
};

/// Expected payment of a bid (which may mention HeavyInSlot predicates)
/// given the advertiser's slot (or kNoSlot) and the heavyweight slot mask.
Money ExpectedPaymentHeavy(const BidsTable& bids,
                           const HeavyAwareClickModel& model, AdvertiserId i,
                           SlotIndex slot, uint32_t heavy_mask);

/// Winner determination result in the heavyweight model.
struct HeavyWdResult {
  Allocation allocation;
  /// Chosen heavyweight-slot set (bit j => slot j holds a heavyweight).
  uint32_t heavy_slot_mask = 0;
  double expected_revenue = 0.0;
};

/// The Section III-F algorithm: enumerate all 2^k choices of heavyweight
/// slots; for each, solve two disjoint matchings — heavyweights to heavy
/// slots (perfect: a declared-heavy slot must actually receive a
/// heavyweight) and lightweights to the remaining slots — and keep the best
/// total. O(2^k (n log k + k^5)) serial; subsets run concurrently on `pool`
/// when provided (the paper's 2^k processing units).
HeavyWdResult DetermineWinnersHeavy(const std::vector<BidsTable>& bids,
                                    const HeavyAwareClickModel& model,
                                    const std::vector<bool>& is_heavy,
                                    ThreadPool* pool = nullptr);

/// Exhaustive oracle over all slot assignments (mask is derived from the
/// assignment). Exponential; tests only.
HeavyWdResult BruteForceHeavy(const std::vector<BidsTable>& bids,
                              const HeavyAwareClickModel& model,
                              const std::vector<bool>& is_heavy);

}  // namespace ssa

#endif  // SSA_CORE_HEAVYWEIGHT_H_
