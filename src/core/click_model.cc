#include "core/click_model.h"

#include <algorithm>
#include <utility>

namespace ssa {

void ClickModel::OutcomeDistribution(AdvertiserId i, SlotIndex slot,
                                     double prob[4]) const {
  const bool assigned = slot != kNoSlot;
  const double pc = assigned ? ClickProbability(i, slot) : 0.0;
  const double ppc = assigned ? PurchaseProbabilityGivenClick(i, slot) : 0.0;
  const double ppn = assigned ? PurchaseProbabilityGivenNoClick(i, slot) : 0.0;
  prob[0] = (1.0 - pc) * (1.0 - ppn);
  prob[1] = (1.0 - pc) * ppn;
  prob[2] = pc * (1.0 - ppc);
  prob[3] = pc * ppc;
}

MatrixClickModel::MatrixClickModel(int num_advertisers, int num_slots,
                                   std::vector<double> click)
    : MatrixClickModel(num_advertisers, num_slots, std::move(click), {}) {}

MatrixClickModel::MatrixClickModel(int num_advertisers, int num_slots,
                                   std::vector<double> click,
                                   std::vector<double> purchase_given_click)
    : n_(num_advertisers),
      k_(num_slots),
      click_(std::move(click)),
      purchase_given_click_(std::move(purchase_given_click)) {
  SSA_CHECK(n_ >= 0 && k_ >= 0);
  SSA_CHECK(click_.size() == static_cast<size_t>(n_) * k_);
  SSA_CHECK(purchase_given_click_.empty() ||
            purchase_given_click_.size() == static_cast<size_t>(n_) * k_);
  for (double p : click_) SSA_CHECK(p >= 0.0 && p <= 1.0);
  for (double p : purchase_given_click_) SSA_CHECK(p >= 0.0 && p <= 1.0);
}

double MatrixClickModel::ClickProbability(AdvertiserId i, SlotIndex j) const {
  SSA_CHECK(i >= 0 && i < n_ && j >= 0 && j < k_);
  return click_[static_cast<size_t>(i) * k_ + j];
}

double MatrixClickModel::PurchaseProbabilityGivenClick(AdvertiserId i,
                                                       SlotIndex j) const {
  SSA_CHECK(i >= 0 && i < n_ && j >= 0 && j < k_);
  if (purchase_given_click_.empty()) return 0.0;
  return purchase_given_click_[static_cast<size_t>(i) * k_ + j];
}

void MatrixClickModel::OutcomeDistribution(AdvertiserId i, SlotIndex slot,
                                           double prob[4]) const {
  // One virtual dispatch and one bounds check for the whole distribution —
  // the matrix-build hot path calls this n * (k + 1) times per auction.
  // Arithmetic is identical to the base implementation (bitwise contract).
  const bool assigned = slot != kNoSlot;
  SSA_CHECK(i >= 0 && i < n_ && (!assigned || (slot >= 0 && slot < k_)));
  const size_t idx = assigned ? static_cast<size_t>(i) * k_ + slot : 0;
  const double pc = assigned ? click_[idx] : 0.0;
  const double ppc =
      assigned && !purchase_given_click_.empty() ? purchase_given_click_[idx]
                                                 : 0.0;
  // PurchaseProbabilityGivenNoClick is not overridden by this model: 0.
  prob[0] = (1.0 - pc) * (1.0 - 0.0);
  prob[1] = (1.0 - pc) * 0.0;
  prob[2] = pc * (1.0 - ppc);
  prob[3] = pc * ppc;
}

SeparableClickModel::SeparableClickModel(std::vector<double> advertiser_factors,
                                         std::vector<double> slot_factors,
                                         double purchase_given_click)
    : advertiser_factors_(std::move(advertiser_factors)),
      slot_factors_(std::move(slot_factors)),
      purchase_given_click_(purchase_given_click) {
  for (double f : advertiser_factors_) SSA_CHECK(f >= 0.0);
  for (double f : slot_factors_) SSA_CHECK(f >= 0.0);
  SSA_CHECK(purchase_given_click_ >= 0.0 && purchase_given_click_ <= 1.0);
}

double SeparableClickModel::ClickProbability(AdvertiserId i,
                                             SlotIndex j) const {
  SSA_CHECK(i >= 0 && i < num_advertisers() && j >= 0 && j < num_slots());
  return std::min(1.0, advertiser_factors_[i] * slot_factors_[j]);
}

MatrixClickModel MakeSlotIntervalClickModel(int num_advertisers, int num_slots,
                                            Rng& rng, double lo, double hi,
                                            double purchase_given_click) {
  SSA_CHECK(num_slots > 0 && lo >= 0.0 && hi <= 1.0 && lo < hi);
  const double width = (hi - lo) / num_slots;
  std::vector<double> click(static_cast<size_t>(num_advertisers) * num_slots);
  for (int i = 0; i < num_advertisers; ++i) {
    for (int j = 0; j < num_slots; ++j) {
      // Slot j gets the (j+1)-th highest interval: slot 0 spans
      // [hi - width, hi), slot k-1 spans [lo, lo + width).
      const double interval_lo = hi - width * (j + 1);
      click[static_cast<size_t>(i) * num_slots + j] =
          rng.Uniform(interval_lo, interval_lo + width);
    }
  }
  std::vector<double> purchase;
  if (purchase_given_click > 0.0) {
    purchase.assign(static_cast<size_t>(num_advertisers) * num_slots,
                    purchase_given_click);
  }
  return MatrixClickModel(num_advertisers, num_slots, std::move(click),
                          std::move(purchase));
}

SeparableClickModel MakeRandomSeparableClickModel(int num_advertisers,
                                                  int num_slots, Rng& rng) {
  std::vector<double> adv(num_advertisers);
  for (double& f : adv) f = rng.Uniform(0.2, 1.0);
  std::vector<double> slot(num_slots);
  // Descending slot factors: top slot most clickable, as observed in [11].
  for (int j = 0; j < num_slots; ++j) {
    slot[j] = 0.9 * (num_slots - j) / num_slots;
  }
  return SeparableClickModel(std::move(adv), std::move(slot));
}

}  // namespace ssa
