#ifndef SSA_DB_VALUE_H_
#define SSA_DB_VALUE_H_

#include <string>

#include "util/common.h"

namespace ssa {

/// A scalar cell value in the bidding-program tables: a number, a string
/// (keyword text, bid-formula text) or NULL (empty-set aggregates).
class Value {
 public:
  enum class Type { kNull, kNumber, kString };

  Value() : type_(Type::kNull) {}

  static Value Null() { return Value(); }
  static Value Number(double v) {
    Value x;
    x.type_ = Type::kNumber;
    x.number_ = v;
    return x;
  }
  static Value String(std::string s) {
    Value x;
    x.type_ = Type::kString;
    x.string_ = std::move(s);
    return x;
  }
  static Value Bool(bool b) { return Number(b ? 1.0 : 0.0); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  double number() const {
    SSA_CHECK_MSG(is_number(), "Value is not a number");
    return number_;
  }
  const std::string& str() const {
    SSA_CHECK_MSG(is_string(), "Value is not a string");
    return string_;
  }

  /// SQL-ish truthiness: non-zero number; NULL and strings are not truthy.
  bool Truthy() const { return is_number() && number_ != 0.0; }

  /// Equality per SQL semantics-lite: NULL equals nothing (including NULL).
  bool EqualsValue(const Value& o) const {
    if (is_null() || o.is_null()) return false;
    if (type_ != o.type_) return false;
    return is_number() ? number_ == o.number_ : string_ == o.string_;
  }

  std::string ToString() const;

 private:
  Type type_;
  double number_ = 0.0;
  std::string string_;
};

}  // namespace ssa

#endif  // SSA_DB_VALUE_H_
