#include "db/value.h"

#include <cmath>
#include <cstdio>

namespace ssa {

std::string Value::ToString() const {
  switch (type_) {
    case Type::kNull:
      return "NULL";
    case Type::kString:
      return "'" + string_ + "'";
    case Type::kNumber: {
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", number_);
      return buf;
    }
  }
  return "?";
}

}  // namespace ssa
