#ifndef SSA_DB_TABLE_H_
#define SSA_DB_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/value.h"
#include "util/common.h"

namespace ssa {

/// An in-memory relation backing the bidding-program language: the private
/// Keywords and Bids tables of Section II-B, plus shared read-only tables
/// such as Query. Intentionally minimal: ordered rows, named columns,
/// point access — the interpreter implements scans, predicates and
/// aggregates on top.
class Table {
 public:
  Table(std::string name, std::vector<std::string> column_names);

  const std::string& name() const { return name_; }
  int num_columns() const { return static_cast<int>(column_names_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  /// Index of a column by (case-sensitive) name; -1 if absent.
  int ColumnIndex(const std::string& column) const;
  bool HasColumn(const std::string& column) const {
    return ColumnIndex(column) >= 0;
  }

  /// Appends a row; the value count must match the schema.
  void InsertRow(std::vector<Value> values);
  /// Deletes all rows.
  void Clear() { rows_.clear(); }

  const Value& At(int row, int col) const;
  void Set(int row, int col, Value v);

  const Value& At(int row, const std::string& column) const {
    return At(row, MustColumn(column));
  }
  void Set(int row, const std::string& column, Value v) {
    Set(row, MustColumn(column), std::move(v));
  }

 private:
  int MustColumn(const std::string& column) const;

  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<std::vector<Value>> rows_;
};

/// Named-table catalog: one per bidding program (its private tables) plus
/// engine-level shared tables. Lookup is case-sensitive, matching the
/// paper's examples (Keywords, Bids, Query).
class Database {
 public:
  /// Creates and owns a table; the name must be unused.
  Table* AddTable(std::string name, std::vector<std::string> column_names);
  /// nullptr when absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace ssa

#endif  // SSA_DB_TABLE_H_
