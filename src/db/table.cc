#include "db/table.h"

#include <utility>

namespace ssa {

Table::Table(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)), column_names_(std::move(column_names)) {
  SSA_CHECK(!column_names_.empty());
}

int Table::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == column) return static_cast<int>(i);
  }
  return -1;
}

int Table::MustColumn(const std::string& column) const {
  const int idx = ColumnIndex(column);
  SSA_CHECK_MSG(idx >= 0, ("no column '" + column + "' in table '" + name_ +
                           "'").c_str());
  return idx;
}

void Table::InsertRow(std::vector<Value> values) {
  SSA_CHECK(values.size() == column_names_.size());
  rows_.push_back(std::move(values));
}

const Value& Table::At(int row, int col) const {
  SSA_CHECK(row >= 0 && row < num_rows() && col >= 0 && col < num_columns());
  return rows_[row][col];
}

void Table::Set(int row, int col, Value v) {
  SSA_CHECK(row >= 0 && row < num_rows() && col >= 0 && col < num_columns());
  rows_[row][col] = std::move(v);
}

Table* Database::AddTable(std::string name,
                          std::vector<std::string> column_names) {
  SSA_CHECK_MSG(tables_.find(name) == tables_.end(), "duplicate table");
  auto table = std::make_unique<Table>(name, std::move(column_names));
  Table* raw = table.get();
  tables_.emplace(raw->name(), std::move(table));
  return raw;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace ssa
