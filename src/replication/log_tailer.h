#ifndef SSA_REPLICATION_LOG_TAILER_H_
#define SSA_REPLICATION_LOG_TAILER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/settlement_log.h"
#include "util/status.h"

namespace ssa {

struct LogTailerOptions {
  /// Records with seq <= this are scanned past without being delivered —
  /// the resume point after a checkpoint bootstrap (pass the checkpoint's
  /// seq; the first delivered record is then start_after_seq + 1).
  uint64_t start_after_seq = 0;
};

/// Polling reader over a live settlement log: the follower's feed.
///
/// Unlike ReadSettlementLog — which reads a *dead* log once and treats the
/// tail as a crash artifact to truncate — the tailer reads a log a leader is
/// still appending to. The distinction that makes this safe is
/// LogTailKind/FrameParse (settlement_log.h): a tail that is a prefix of a
/// well-formed frame is indistinguishable from a group commit caught
/// mid-write, so the tailer holds those bytes in a carry buffer and retries
/// on the next poll; only a provably-bad frame (insane length, CRC mismatch
/// on a complete payload, undecodable payload, sequence gap) or the file
/// shrinking beneath already-consumed bytes is data loss. Errors are sticky:
/// once a poll fails, every later poll returns the same status — a tailer
/// cannot resynchronize past corruption, its owner must re-bootstrap.
///
/// Single-threaded by contract (the follower's apply thread owns it).
/// Opening a path that does not exist yet is fine — the leader may not have
/// settled anything; polls deliver nothing until the file appears.
class LogTailer {
 public:
  static StatusOr<std::unique_ptr<LogTailer>> Open(
      const std::string& path, const LogTailerOptions& options = {});

  ~LogTailer();
  LogTailer(const LogTailer&) = delete;
  LogTailer& operator=(const LogTailer&) = delete;

  /// Reads whatever the leader has written since the last poll and appends
  /// every newly complete record with seq > start_after_seq to `*records`
  /// (which is NOT cleared), in sequence order. Returning OK with nothing
  /// appended means "clean live tail — nothing new yet"; wait and poll
  /// again. The in-progress tail of a buffered/group-commit write is
  /// carried, not consumed, so a frame split across two polls is delivered
  /// exactly once, whole.
  Status Poll(std::vector<SettlementRecord>* records);

  /// Highest sequence delivered so far (start_after_seq until the first
  /// delivery).
  uint64_t last_seq() const { return last_seq_; }

  /// Bytes the file held past the last fully consumed frame at the end of
  /// the last poll — the replication byte lag as seen from this side (an
  /// in-progress frame tail counts until it completes).
  uint64_t bytes_behind() const { return bytes_behind_; }

  int64_t records_delivered() const { return records_delivered_; }
  int64_t polls() const { return polls_; }
  const std::string& path() const { return path_; }

 private:
  LogTailer(std::string path, const LogTailerOptions& options);

  /// Opens the fd if the file now exists. OK (fd still -1) while it
  /// doesn't.
  Status EnsureOpen();
  Status Fail(Status status);  // records + returns the sticky error

  const std::string path_;
  const LogTailerOptions options_;
  int fd_ = -1;
  Status status_ = Status::Ok();  // sticky
  /// Unconsumed bytes read from the file: at most one in-progress frame
  /// plus whatever a read picked up beyond the last parse.
  std::string carry_;
  /// File offset of the next byte to read (== consumed bytes + carry_).
  uint64_t file_offset_ = 0;
  /// Seq of the last frame *parsed* (delivered or skipped); 0 before any.
  uint64_t parsed_seq_ = 0;
  uint64_t last_seq_;
  uint64_t bytes_behind_ = 0;
  int64_t records_delivered_ = 0;
  int64_t polls_ = 0;
};

}  // namespace ssa

#endif  // SSA_REPLICATION_LOG_TAILER_H_
