#include "replication/log_tailer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace ssa {

StatusOr<std::unique_ptr<LogTailer>> LogTailer::Open(
    const std::string& path, const LogTailerOptions& options) {
  std::unique_ptr<LogTailer> tailer(new LogTailer(path, options));
  // A missing file is not an error — the leader may not have settled its
  // first group yet. Anything else (permissions, a directory) is.
  SSA_RETURN_IF_ERROR(tailer->EnsureOpen());
  return tailer;
}

LogTailer::LogTailer(std::string path, const LogTailerOptions& options)
    : path_(std::move(path)),
      options_(options),
      last_seq_(options.start_after_seq) {}

LogTailer::~LogTailer() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogTailer::EnsureOpen() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) {
    if (errno == ENOENT) return Status::Ok();  // not written yet
    return Status::Internal("open " + path_ + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status LogTailer::Fail(Status status) {
  status_ = std::move(status);
  return status_;
}

Status LogTailer::Poll(std::vector<SettlementRecord>* records) {
  ++polls_;
  if (!status_.ok()) return status_;
  SSA_RETURN_IF_ERROR(EnsureOpen());
  if (fd_ < 0) return Status::Ok();  // file still absent: nothing yet

  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Fail(
        Status::Internal("fstat " + path_ + ": " + std::strerror(errno)));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < file_offset_) {
    // The log is append-only by contract; bytes this tailer already read
    // vanishing means the file was truncated or replaced underneath it.
    return Fail(Status::DataLoss(
        "settlement log " + path_ + " shrank beneath the tailer (" +
        std::to_string(size) + " < " + std::to_string(file_offset_) + ")"));
  }

  // Pull everything new into the carry buffer.
  while (file_offset_ < size) {
    char buf[64 << 10];
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(sizeof(buf), size - file_offset_));
    const ssize_t n =
        ::pread(fd_, buf, want, static_cast<off_t>(file_offset_));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Fail(
          Status::Internal("pread " + path_ + ": " + std::strerror(errno)));
    }
    if (n == 0) break;  // raced a truncation check; next poll re-stats
    carry_.append(buf, static_cast<size_t>(n));
    file_offset_ += static_cast<uint64_t>(n);
  }

  // Parse complete frames off the front of the carry buffer.
  size_t pos = 0;
  while (pos < carry_.size()) {
    SettlementRecord record;
    size_t frame_bytes = 0;
    const FrameParse parse = ParseLogFrame(carry_, pos, &record, &frame_bytes);
    if (parse == FrameParse::kIncomplete) break;  // live tail — wait
    if (parse == FrameParse::kCorrupt) {
      carry_.erase(0, pos);
      return Fail(Status::DataLoss(
          "settlement log " + path_ + " corrupt at offset " +
          std::to_string(file_offset_ - carry_.size())));
    }
    if (parsed_seq_ != 0 && record.seq != parsed_seq_ + 1) {
      carry_.erase(0, pos);
      return Fail(Status::DataLoss(
          "settlement log " + path_ + " sequence gap: got " +
          std::to_string(record.seq) + " after " +
          std::to_string(parsed_seq_)));
    }
    parsed_seq_ = record.seq;
    pos += frame_bytes;
    if (record.seq > options_.start_after_seq) {
      if (record.seq != last_seq_ + 1) {
        // First delivery past the resume point must be exactly the next
        // sequence — a log starting beyond it cannot rebuild the state.
        carry_.erase(0, pos);
        return Fail(Status::DataLoss(
            "settlement log " + path_ + " resumes at seq " +
            std::to_string(record.seq) + ", tailer needs " +
            std::to_string(last_seq_ + 1)));
      }
      last_seq_ = record.seq;
      ++records_delivered_;
      records->push_back(std::move(record));
    }
  }
  carry_.erase(0, pos);
  bytes_behind_ = carry_.size();
  return Status::Ok();
}

}  // namespace ssa
