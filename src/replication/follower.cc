#include "replication/follower.h"

#include <utility>

#include "durability/wire.h"

namespace ssa {

FollowerEngine::FollowerEngine(
    const FollowerConfig& config, Workload workload,
    std::vector<std::unique_ptr<BiddingStrategy>> strategies)
    : config_(config),
      engine_(config.engine, std::move(workload), std::move(strategies)) {}

FollowerEngine::~FollowerEngine() { Stop(); }

Status FollowerEngine::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("follower already started");
  }
  // --- Bootstrap: restore the checkpoint if one exists, else replay from
  // seq 1. RestoreFromCheckpoint is all-or-nothing, so a missing file and
  // a fresh engine are the same starting state.
  if (!config_.checkpoint_path.empty() && FileExists(config_.checkpoint_path)) {
    SSA_RETURN_IF_ERROR(engine_.RestoreFromCheckpoint(config_.checkpoint_path));
  }
  const uint64_t boot_seq = static_cast<uint64_t>(engine_.auctions_run());
  applied_seq_.store(boot_seq, std::memory_order_release);

  LogTailerOptions tail_options;
  tail_options.start_after_seq = boot_seq;
  SSA_ASSIGN_OR_RETURN(tailer_, LogTailer::Open(config_.log_path,
                                                tail_options));
  read_lane_ = engine_.NewPlanLane();

  if (config_.metrics != nullptr) {
    applied_seq_gauge_ = config_.metrics->GetGauge(
        "replication_applied_seq", config_.metric_labels,
        "Highest settlement sequence applied to this follower");
    lag_seq_gauge_ = config_.metrics->GetGauge(
        "replication_lag_seq", config_.metric_labels,
        "Leader settled seq minus follower applied seq");
    lag_bytes_gauge_ = config_.metrics->GetGauge(
        "replication_lag_bytes", config_.metric_labels,
        "Log bytes past the follower's last consumed frame");
    applied_counter_ = config_.metrics->GetCounter(
        "replication_records_applied_total", config_.metric_labels,
        "Settlement records replayed onto this follower");
  }

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  apply_thread_ = std::thread([this] { ApplyLoop(); });
  return Status::Ok();
}

void FollowerEngine::Stop() {
  stop_.store(true, std::memory_order_release);
  applied_cv_.notify_all();
  if (apply_thread_.joinable()) apply_thread_.join();
  running_.store(false, std::memory_order_release);
}

Status FollowerEngine::status() const {
  std::lock_guard<std::mutex> guard(lock_);
  return err_;
}

bool FollowerEngine::WaitForSeq(uint64_t seq,
                                std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> guard(lock_);
  applied_cv_.wait_for(guard, timeout, [&] {
    return applied_seq_.load(std::memory_order_acquire) >= seq ||
           !err_.ok() || stop_.load(std::memory_order_acquire);
  });
  return applied_seq_.load(std::memory_order_acquire) >= seq;
}

void FollowerEngine::ApplyLoop() {
  std::vector<SettlementRecord> batch;
  bool at_limit = false;
  while (!stop_.load(std::memory_order_acquire)) {
    if (at_limit) {
      // Test knob: hold at the limit (the sweep's kill point) until Stop.
      std::this_thread::sleep_for(config_.poll_interval);
      continue;
    }
    batch.clear();
    const Status polled = tailer_->Poll(&batch);
    if (!polled.ok()) {
      std::lock_guard<std::mutex> guard(lock_);
      err_ = polled;
      applied_cv_.notify_all();
      break;
    }
    bytes_behind_.store(tailer_->bytes_behind(), std::memory_order_relaxed);
    bool applied_any = false;
    for (const SettlementRecord& record : batch) {
      if (config_.apply_limit_seq != 0 &&
          record.seq > config_.apply_limit_seq) {
        at_limit = true;
        break;
      }
      if (!ApplyRecord(record)) return;
      applied_any = true;
    }
    PublishGauges();
    if (!applied_any && !at_limit) {
      std::this_thread::sleep_for(config_.poll_interval);
    }
  }
  PublishGauges();
}

bool FollowerEngine::ApplyRecord(const SettlementRecord& record) {
  const uint64_t trace_seq =
      config_.tracer != nullptr ? config_.tracer->Sample(record.seq) : 0;
  const uint64_t t0 = trace_seq != 0 ? Tracer::NowNs() : 0;
  {
    std::lock_guard<std::mutex> guard(lock_);
    // Replay-as-apply: re-executing the logged query IS the state
    // transition. Same seed + same account state -> the user RNG reproduces
    // the leader's events bitwise, which verify_applies pins per record.
    const AuctionOutcome& outcome = engine_.RunAuctionOn(record.query);
    if (config_.verify_applies && !record.MatchesOutcome(outcome)) {
      err_ = Status::DataLoss(
          "follower diverged from the settlement log at seq " +
          std::to_string(record.seq) +
          " (seed/workload/strategy mismatch with the leader?)");
      applied_cv_.notify_all();
      return false;
    }
    applied_seq_.store(record.seq, std::memory_order_release);
    records_applied_.fetch_add(1, std::memory_order_relaxed);
    applied_cv_.notify_all();
  }
  if (applied_counter_ != nullptr) applied_counter_->Increment();
  if (trace_seq != 0) {
    config_.tracer->RecordSpan(trace_seq, TraceStage::kFollowerApply,
                               /*track=*/90, t0, Tracer::NowNs());
  }
  return true;
}

void FollowerEngine::PublishGauges() {
  const uint64_t applied = applied_seq_.load(std::memory_order_acquire);
  if (applied_seq_gauge_ != nullptr) {
    applied_seq_gauge_->Set(static_cast<int64_t>(applied));
  }
  if (lag_bytes_gauge_ != nullptr) {
    lag_bytes_gauge_->Set(
        static_cast<int64_t>(bytes_behind_.load(std::memory_order_relaxed)));
  }
  if (lag_seq_gauge_ != nullptr && config_.leader_seq) {
    const uint64_t leader = config_.leader_seq();
    lag_seq_gauge_->Set(
        static_cast<int64_t>(leader > applied ? leader - applied : 0));
  }
}

Status FollowerEngine::WhatIf(const Query& query,
                              ShardedAuctionEngine::PlannedAuction* plan,
                              uint64_t* applied_at) {
  std::lock_guard<std::mutex> guard(lock_);
  SSA_RETURN_IF_ERROR(err_);
  engine_.WhatIfAuction(query, read_lane_.get(), plan);
  if (applied_at != nullptr) {
    *applied_at = applied_seq_.load(std::memory_order_acquire);
  }
  return Status::Ok();
}

Status FollowerEngine::EstimatePrices(const Query& query,
                                      std::vector<Money>* prices,
                                      uint64_t* applied_at) {
  ShardedAuctionEngine::PlannedAuction plan;
  SSA_RETURN_IF_ERROR(WhatIf(query, &plan, applied_at));
  *prices = std::move(plan.prices);
  return Status::Ok();
}

Status FollowerEngine::AccountSnapshot(AdvertiserId id,
                                       AdvertiserAccount* account,
                                       uint64_t* applied_at) {
  std::lock_guard<std::mutex> guard(lock_);
  SSA_RETURN_IF_ERROR(err_);
  const std::vector<AdvertiserAccount>& accounts = engine_.accounts();
  if (id < 0 || id >= static_cast<AdvertiserId>(accounts.size())) {
    return Status::InvalidArgument("no such advertiser: " +
                                   std::to_string(id));
  }
  *account = accounts[id];
  if (applied_at != nullptr) {
    *applied_at = applied_seq_.load(std::memory_order_acquire);
  }
  return Status::Ok();
}

Status FollowerEngine::AccountsSnapshot(
    std::vector<AdvertiserAccount>* accounts, uint64_t* applied_at) {
  std::lock_guard<std::mutex> guard(lock_);
  SSA_RETURN_IF_ERROR(err_);
  *accounts = engine_.accounts();
  if (applied_at != nullptr) {
    *applied_at = applied_seq_.load(std::memory_order_acquire);
  }
  return Status::Ok();
}

Status FollowerEngine::TotalRevenue(Money* revenue, uint64_t* applied_at) {
  std::lock_guard<std::mutex> guard(lock_);
  SSA_RETURN_IF_ERROR(err_);
  *revenue = engine_.total_revenue();
  if (applied_at != nullptr) {
    *applied_at = applied_seq_.load(std::memory_order_acquire);
  }
  return Status::Ok();
}

Status FollowerEngine::WriteCheckpoint(const std::string& path) {
  std::lock_guard<std::mutex> guard(lock_);
  SSA_RETURN_IF_ERROR(err_);
  return engine_.WriteCheckpoint(path);
}

}  // namespace ssa
