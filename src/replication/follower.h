#ifndef SSA_REPLICATION_FOLLOWER_H_
#define SSA_REPLICATION_FOLLOWER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "auction/sharded_engine.h"
#include "auction/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/log_tailer.h"
#include "strategy/strategy.h"
#include "util/status.h"

namespace ssa {

struct FollowerConfig {
  /// Engine shape — must match the leader's workload, strategy lineup, and
  /// seed (the bitwise contract's preconditions). The shard count and pool
  /// may differ freely: checkpoints and replay are shard-layout-portable.
  ShardedEngineConfig engine;
  /// Checkpoint to bootstrap from; skipped when empty or absent (the
  /// follower then replays the log from seq 1).
  std::string checkpoint_path;
  /// The leader's settlement log to tail.
  std::string log_path;
  /// Apply-thread sleep between polls that found nothing.
  std::chrono::milliseconds poll_interval{2};
  /// Verify every applied record bitwise against the replayed outcome
  /// (SettlementRecord::MatchesOutcome). A mismatch is sticky kDataLoss —
  /// a diverged follower must never serve reads.
  bool verify_applies = true;
  /// Test knob: stop applying past this sequence (0 = no limit). The apply
  /// thread idles there — the kill point of the restart sweep.
  uint64_t apply_limit_seq = 0;

  // --- Observability (all optional, not owned).
  /// Registry for replication_* gauges/counters; null = no metrics.
  MetricsRegistry* metrics = nullptr;
  /// Label value for this follower's metrics, e.g. "follower=\"f0\"".
  std::string metric_labels;
  /// Span sink: one kFollowerApply span per applied record (subject to the
  /// tracer's own sampling, keyed by record seq).
  Tracer* tracer = nullptr;
  /// The leader's settled sequence, for the replication_lag_seq gauge and
  /// bounded-staleness routing. Must be safe to call from the apply thread
  /// (e.g. AuctionServer::settled_seq, an atomic read). Null = lag gauges
  /// report only byte lag.
  std::function<uint64_t()> leader_seq;
};

/// A read-only replica: a private ShardedAuctionEngine bootstrapped from
/// the leader's checkpoint, fed by a LogTailer, serving snapshot reads.
///
/// Replaying the log IS the state machine: each record is applied by
/// re-executing RunAuctionOn(record.query) on the replica, which — given
/// equal seed, workload, and strategies — reproduces the leader's
/// settlement bitwise (same user-RNG draws, same account deltas, same
/// revenue; fault_injection_test pins the same property for recovery).
/// verify_applies checks every record against its replayed outcome, so a
/// configuration mismatch surfaces as kDataLoss at the first divergent
/// record instead of silently wrong reads.
///
/// Threading: one internal apply thread owns the tailer; a mutex serializes
/// applies against reads, so every read sees a frame-complete state at some
/// exact applied_seq (never mid-settlement). Reads on one follower
/// therefore contend with its applies — read throughput scales by adding
/// followers (ReadReplicaSet), not threads per follower.
class FollowerEngine {
 public:
  FollowerEngine(const FollowerConfig& config, Workload workload,
                 std::vector<std::unique_ptr<BiddingStrategy>> strategies);
  ~FollowerEngine();

  /// Bootstraps (checkpoint restore if configured and present), opens the
  /// tailer at the restored sequence, and starts the apply thread.
  Status Start();

  /// Stops and joins the apply thread. Idempotent. The engine state stays
  /// readable (at whatever applied_seq it reached) after Stop.
  void Stop();

  /// Highest sequence applied to the replica. Safe from any thread.
  uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }

  /// Byte lag as of the last poll (in-progress tail bytes count).
  uint64_t bytes_behind() const {
    return bytes_behind_.load(std::memory_order_relaxed);
  }

  int64_t records_applied() const {
    return records_applied_.load(std::memory_order_relaxed);
  }

  /// Sticky apply-path error (tailer corruption, replay divergence,
  /// bootstrap failure). A follower with !status().ok() refuses reads.
  Status status() const;

  /// True while the apply thread runs.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Blocks until applied_seq() >= seq, the timeout passes, or the
  /// follower stops/fails. Returns whether the target was reached — the
  /// read-your-writes gate.
  bool WaitForSeq(uint64_t seq, std::chrono::milliseconds timeout);

  /// One what-if auction at the replica's current snapshot (pure read:
  /// nothing on the replica moves). On success `*applied_at` (if non-null)
  /// reports the applied_seq the result is a function of.
  Status WhatIf(const Query& query, ShardedAuctionEngine::PlannedAuction* plan,
                uint64_t* applied_at = nullptr);

  /// Price estimate: the per-slot prices a query would clear at right now
  /// (the what-if's pricing output alone).
  Status EstimatePrices(const Query& query, std::vector<Money>* prices,
                        uint64_t* applied_at = nullptr);

  /// Snapshot of one advertiser's account at a frame-complete sequence.
  Status AccountSnapshot(AdvertiserId id, AdvertiserAccount* account,
                         uint64_t* applied_at = nullptr);

  /// Full account-state snapshot (the bitwise-equivalence probe).
  Status AccountsSnapshot(std::vector<AdvertiserAccount>* accounts,
                          uint64_t* applied_at = nullptr);

  /// Telemetry reads (frame-complete, like the snapshots).
  Status TotalRevenue(Money* revenue, uint64_t* applied_at = nullptr);

  /// Writes the replica's state as a standard engine checkpoint — a
  /// follower can absorb checkpoint I/O the leader would otherwise pay,
  /// and a restarted follower (or a new one) bootstraps from it.
  Status WriteCheckpoint(const std::string& path);

 private:
  void ApplyLoop();
  /// Applies one record under lock_. Sets err_ and returns false on
  /// divergence.
  bool ApplyRecord(const SettlementRecord& record);
  void PublishGauges();

  FollowerConfig config_;
  ShardedAuctionEngine engine_;
  std::unique_ptr<LogTailer> tailer_;
  std::thread apply_thread_;

  /// Serializes applies against reads; protects engine_ and err_.
  mutable std::mutex lock_;
  std::condition_variable applied_cv_;
  Status err_ = Status::Ok();

  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<uint64_t> bytes_behind_{0};
  std::atomic<int64_t> records_applied_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  /// Read-path lane (under lock_, so one is enough).
  std::unique_ptr<ShardedAuctionEngine::PlanLane> read_lane_;

  // Metric handles (null when metrics are off).
  Gauge* applied_seq_gauge_ = nullptr;
  Gauge* lag_seq_gauge_ = nullptr;
  Gauge* lag_bytes_gauge_ = nullptr;
  Counter* applied_counter_ = nullptr;
};

}  // namespace ssa

#endif  // SSA_REPLICATION_FOLLOWER_H_
