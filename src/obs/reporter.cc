#include "obs/reporter.h"

#include <utility>

#include "durability/wire.h"

namespace ssa {

MetricsReporter::MetricsReporter(const MetricsRegistry* registry,
                                 Options options)
    : registry_(registry), options_(std::move(options)) {}

MetricsReporter::~MetricsReporter() { Stop(); }

void MetricsReporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void MetricsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
}

void MetricsReporter::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, options_.interval,
                       [this] { return stop_requested_; })) {
        break;
      }
    }
    EmitOnce();
  }
  EmitOnce();  // terminal snapshot so short runs still publish final state
}

void MetricsReporter::EmitOnce() {
  const MetricsSnapshot snap = registry_->Snapshot();
  if (options_.on_snapshot) options_.on_snapshot(snap);
  if (!options_.output_path.empty()) {
    const std::string body = options_.format == Format::kPrometheus
                                 ? ExportPrometheus(snap, registry_)
                                 : ExportMetricsJson(snap);
    // Best effort: a failed write must not take down the pipeline.
    AtomicWriteFile(options_.output_path, body);
  }
  reports_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ssa
