#ifndef SSA_OBS_REPORTER_H_
#define SSA_OBS_REPORTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace ssa {

/// Periodic background reporter: snapshots a MetricsRegistry every
/// `interval` and hands the snapshot to a callback and/or atomically
/// rewrites a file with the chosen exposition. Runs on its own thread and
/// touches only the registry's thread-safe read side, so it can coexist
/// with a live serving pipeline.
class MetricsReporter {
 public:
  enum class Format { kPrometheus, kJson };

  struct Options {
    std::chrono::milliseconds interval{1000};
    /// When non-empty, each snapshot is atomically written here (tmp +
    /// fsync + rename, so scrapers never see a partial file).
    std::string output_path;
    Format format = Format::kPrometheus;
    /// Optional callback invoked with each snapshot (on the reporter
    /// thread). May be set instead of, or in addition to, output_path.
    std::function<void(const MetricsSnapshot&)> on_snapshot;
  };

  /// `registry` must outlive the reporter.
  MetricsReporter(const MetricsRegistry* registry, Options options);
  ~MetricsReporter();

  MetricsReporter(const MetricsReporter&) = delete;
  MetricsReporter& operator=(const MetricsReporter&) = delete;

  void Start();
  /// Stops the thread after one final snapshot (so short-lived processes
  /// still publish their terminal state). Idempotent.
  void Stop();

  uint64_t reports_written() const {
    return reports_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void EmitOnce();

  const MetricsRegistry* registry_;
  Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::atomic<uint64_t> reports_{0};
  std::thread thread_;
};

}  // namespace ssa

#endif  // SSA_OBS_REPORTER_H_
