#ifndef SSA_OBS_TRACE_H_
#define SSA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ssa {

/// Pipeline stages a query passes through in the serving executor. One span
/// is stamped per stage crossing; together they reconstruct the query's
/// journey submit -> queue wait -> capture -> plan lane -> merge-barrier
/// wait -> settle-in-order -> log append / group fsync.
enum class TraceStage : uint8_t {
  kQuery = 0,        // umbrella: submit -> settled (async span)
  kQueueWait = 1,    // submit -> popped by the executor (async span)
  kCapture = 2,      // sequential bid capture (executor track)
  kPlan = 3,         // pure planning half (lane track)
  kBarrierWait = 4,  // executor blocked in AwaitReady for this slot
  kSettle = 5,       // in-order settlement + strategy updates
  kLogAppend = 6,    // settlement record append (buffered)
  kLogFsync = 7,     // group-commit fsync covering this batch
  kShardCapture = 8,  // per-shard slice of capture (shard track)
  kShardPlan = 9,     // per-shard slice of planning (lane x shard track)
  kBatch = 10,        // executor micro-batch envelope
  kRepartition = 11,  // shard rebalance event
  kFollowerApply = 12,  // follower replays one settlement record
};

const char* TraceStageName(TraceStage stage);

/// Tracing knobs. `sample_every = N` records every N-th sampled query
/// (deterministic modulo on the admission sequence — the same queries are
/// sampled on every run, so replay comparisons see identical instrumentation
/// load). 0 disables tracing entirely (spans become a single predictable
/// branch).
struct TraceConfig {
  uint32_t sample_every = 0;      // 0 = off, 1 = every query, N = 1-in-N
  uint32_t ring_capacity = 1 << 16;  // spans retained (power of two)
};

/// One completed span. Fields are atomics only so the overwriting ring can
/// be read while writers race past it (see Tracer); logically this is plain
/// data guarded by `version`.
struct TraceSpan {
  std::atomic<uint64_t> version{0};  // seqlock: odd = write in progress
  std::atomic<uint64_t> seq{0};      // query admission sequence (0 = none)
  std::atomic<uint64_t> start_ns{0};
  std::atomic<uint64_t> end_ns{0};
  std::atomic<int32_t> track{0};  // see Tracer track-id scheme
  std::atomic<uint8_t> stage{0};
};

/// A decoded span, safe to copy/sort/serialize.
struct TraceEvent {
  uint64_t seq = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  int32_t track = 0;
  TraceStage stage = TraceStage::kQuery;
};

/// Fixed-size lock-free overwriting span ring with deterministic 1-in-N
/// sampling.
///
/// Write path: one relaxed fetch_add on the ring cursor plus six relaxed
/// stores behind a per-cell seqlock version — wait-free, allocation-free,
/// safe from the executor, the planning lanes, and producer threads
/// concurrently. When the ring wraps, old spans are overwritten; if two
/// writers ever collide on the same cell a full wrap apart, the seqlock
/// keeps the data race benign (readers discard cells whose version is odd
/// or changed mid-read) at the cost of dropping that cell. Tracing is
/// best-effort by design: it must never block or perturb the pipeline.
///
/// Track-id scheme (rendered as Chrome trace tids):
///   0            executor thread
///   1 + e        plan lane e (external LanePool lanes)
///   100 + s      shard s capture slice
///   200 + 100*(lane+1) + s   shard s planned on `lane` (-1 = internal)
class Tracer {
 public:
  explicit Tracer(const TraceConfig& config);

  /// True when tracing is configured on (sample_every > 0).
  bool enabled() const { return sample_every_ > 0; }

  /// Assigns the sampling decision for the query admitted with sequence
  /// number `admission_seq` (1-based). Returns a nonzero trace sequence if
  /// the query is sampled, 0 otherwise. Deterministic: seq 1, 1+N, 1+2N,
  /// ... are sampled.
  uint64_t Sample(uint64_t admission_seq) const {
    if (sample_every_ == 0) return 0;
    return (admission_seq - 1) % sample_every_ == 0 ? admission_seq : 0;
  }

  /// Current monotonic timestamp in ns (steady clock, same base for every
  /// span in this process).
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Records a completed span for sampled query `trace_seq` (no-op when 0).
  /// Wait-free; callable from any thread.
  void RecordSpan(uint64_t trace_seq, TraceStage stage, int32_t track,
                  uint64_t start_ns, uint64_t end_ns);

  /// Number of spans dropped to cell contention plus spans overwritten by
  /// ring wrap-around (approximate).
  uint64_t spans_recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Decodes every consistent span currently in the ring, sorted by
  /// start_ns. Safe concurrently with writers (torn cells are skipped).
  std::vector<TraceEvent> Drain() const;

  /// Renders events as Chrome trace-event JSON (the `traceEvents` array
  /// format Perfetto loads directly): serial tracks emit complete "X"
  /// events; kQuery/kQueueWait — which overlap freely across queries — emit
  /// async "b"/"e" pairs keyed by query seq. A metadata record names each
  /// track.
  static std::string ExportChromeTrace(const std::vector<TraceEvent>& events);

 private:
  const uint32_t sample_every_;
  const uint32_t capacity_;  // power of two
  std::vector<TraceSpan> ring_;
  mutable std::atomic<uint64_t> cursor_{0};
};

}  // namespace ssa

#endif  // SSA_OBS_TRACE_H_
