#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

namespace ssa {

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kQuery:
      return "query";
    case TraceStage::kQueueWait:
      return "queue_wait";
    case TraceStage::kCapture:
      return "capture";
    case TraceStage::kPlan:
      return "plan";
    case TraceStage::kBarrierWait:
      return "barrier_wait";
    case TraceStage::kSettle:
      return "settle";
    case TraceStage::kLogAppend:
      return "log_append";
    case TraceStage::kLogFsync:
      return "log_fsync";
    case TraceStage::kShardCapture:
      return "shard_capture";
    case TraceStage::kShardPlan:
      return "shard_plan";
    case TraceStage::kBatch:
      return "batch";
    case TraceStage::kRepartition:
      return "repartition";
    case TraceStage::kFollowerApply:
      return "follower_apply";
  }
  return "unknown";
}

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  if (v < 2) return 2;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

std::string TrackName(int32_t track) {
  char buf[64];
  if (track == 0) {
    return "executor";
  } else if (track < 100) {
    std::snprintf(buf, sizeof(buf), "lane %d", track - 1);
  } else if (track < 200) {
    std::snprintf(buf, sizeof(buf), "shard %d capture", track - 100);
  } else {
    const int lane = (track - 200) / 100 - 1;  // -1 = engine-internal lane
    const int shard = (track - 200) % 100;
    if (lane < 0) {
      std::snprintf(buf, sizeof(buf), "shard %d plan (internal)", shard);
    } else {
      std::snprintf(buf, sizeof(buf), "shard %d plan (lane %d)", shard, lane);
    }
  }
  return buf;
}

}  // namespace

Tracer::Tracer(const TraceConfig& config)
    : sample_every_(config.sample_every),
      capacity_(RoundUpPow2(config.ring_capacity)),
      ring_(sample_every_ > 0 ? capacity_ : 0) {}

void Tracer::RecordSpan(uint64_t trace_seq, TraceStage stage, int32_t track,
                        uint64_t start_ns, uint64_t end_ns) {
  if (trace_seq == 0 || ring_.empty()) return;
  const uint64_t slot =
      cursor_.fetch_add(1, std::memory_order_relaxed) & (capacity_ - 1);
  TraceSpan& cell = ring_[slot];
  // Per-cell seqlock: bump to odd, publish fields, bump to even. A reader
  // that observes an odd or changed version discards the cell; a second
  // writer lapping the ring onto this cell while we are mid-write simply
  // loses one span — acceptable for a best-effort overwriting ring.
  const uint64_t v0 = cell.version.load(std::memory_order_relaxed);
  cell.version.store(v0 + 1, std::memory_order_release);
  cell.seq.store(trace_seq, std::memory_order_relaxed);
  cell.start_ns.store(start_ns, std::memory_order_relaxed);
  cell.end_ns.store(end_ns, std::memory_order_relaxed);
  cell.track.store(track, std::memory_order_relaxed);
  cell.stage.store(static_cast<uint8_t>(stage), std::memory_order_relaxed);
  cell.version.store(v0 + 2, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Drain() const {
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  for (const TraceSpan& cell : ring_) {
    const uint64_t v1 = cell.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // never written / mid-write
    TraceEvent e;
    e.seq = cell.seq.load(std::memory_order_relaxed);
    e.start_ns = cell.start_ns.load(std::memory_order_relaxed);
    e.end_ns = cell.end_ns.load(std::memory_order_relaxed);
    e.track = cell.track.load(std::memory_order_relaxed);
    e.stage = static_cast<TraceStage>(cell.stage.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t v2 = cell.version.load(std::memory_order_relaxed);
    if (v1 != v2) continue;  // torn read: a writer raced past
    if (e.seq == 0) continue;
    events.push_back(e);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.seq < b.seq;
            });
  return events;
}

std::string Tracer::ExportChromeTrace(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&]() {
    if (!first) out << ",";
    first = false;
  };
  // Thread-name metadata for every track that appears.
  std::map<int32_t, bool> tracks;
  for (const TraceEvent& e : events) tracks[e.track] = true;
  for (const auto& kv : tracks) {
    comma();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
        << kv.first << ",\"args\":{\"name\":\"" << TrackName(kv.first)
        << "\"}}";
  }
  for (const TraceEvent& e : events) {
    const char* name = TraceStageName(e.stage);
    const double ts_us = static_cast<double>(e.start_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(e.end_ns - e.start_ns) / 1000.0;
    char ts[48], dur[48];
    std::snprintf(ts, sizeof(ts), "%.3f", ts_us);
    std::snprintf(dur, sizeof(dur), "%.3f", dur_us);
    if (e.stage == TraceStage::kQuery || e.stage == TraceStage::kQueueWait) {
      // Overlapping across queries: async begin/end pairs keyed by seq so
      // Perfetto nests them per query instead of malforming one track.
      char te[48];
      std::snprintf(te, sizeof(te), "%.3f",
                    static_cast<double>(e.end_ns) / 1000.0);
      comma();
      out << "{\"name\":\"" << name << "\",\"cat\":\"" << name
          << "\",\"ph\":\"b\",\"id\":" << e.seq
          << ",\"pid\":1,\"tid\":" << e.track << ",\"ts\":" << ts << "}";
      comma();
      out << "{\"name\":\"" << name << "\",\"cat\":\"" << name
          << "\",\"ph\":\"e\",\"id\":" << e.seq
          << ",\"pid\":1,\"tid\":" << e.track << ",\"ts\":" << te << "}";
    } else {
      comma();
      out << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
          << e.track << ",\"ts\":" << ts << ",\"dur\":" << dur
          << ",\"args\":{\"seq\":" << e.seq << "}}";
    }
  }
  out << "],\"displayTimeUnit\":\"ns\"}";
  return out.str();
}

}  // namespace ssa
