#ifndef SSA_OBS_METRICS_H_
#define SSA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace ssa {

/// Monotone event counter. Increment is wait-free (one relaxed fetch_add) —
/// safe from any thread, including the serving hot path and the planning
/// lanes. Readers get an instantaneous relaxed snapshot.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, shard cost, checkpoint
/// age). Stored as IEEE-754 bits in one atomic word: Set/value are wait-free
/// and never torn.
class Gauge {
 public:
  void Set(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  void Set(int64_t v) { Set(static_cast<double>(v)); }
  double value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::atomic<uint64_t> bits_{0};  // IEEE-754 bit pattern; 0 == +0.0
};

/// One scalar sample of a snapshot. `labels` is the rendered Prometheus
/// label body without braces (e.g. `shard="2"`), empty for unlabeled
/// metrics.
struct MetricSample {
  std::string name;
  std::string labels;
  enum Kind { kCounter, kGauge } kind = kCounter;
  double value = 0;
};

/// One histogram of a snapshot: aggregates, pre-computed percentiles, and
/// the non-empty buckets as (inclusive upper bound, count) pairs — exactly
/// what the Prometheus exposition needs cumulated into `le` buckets.
struct HistogramSample {
  std::string name;
  std::string labels;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/// A point-in-time copy of every registered metric, safe to serialize or
/// ship off-thread (plain data, no atomics).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;
  std::vector<HistogramSample> histograms;
};

/// Process- or subsystem-wide registry of named counters, gauges, and
/// log-bucketed latency histograms.
///
/// Usage contract: Get* interns an instrument under (name, labels) and
/// returns a pointer that stays valid for the registry's lifetime — fetch
/// instruments once at setup, then update them lock-free on the hot path
/// (the registry mutex guards only registration and snapshotting, never a
/// Record/Increment/Set). RegisterExternal adds a histogram the caller owns
/// (e.g. the AuctionServer stage histograms) to snapshots without copying
/// its hot path. AddCollector registers a pull-style callback run at
/// snapshot time for values that are cheap to read but not worth a pushed
/// instrument (queue depth); collectors must only perform reads that are
/// safe from a foreign thread (own-mutex or atomic state).
///
/// Snapshot() is safe concurrently with hot-path updates from any thread
/// (relaxed reads of atomic instruments — the same contract as
/// LatencyHistogram's read side) and is what the periodic MetricsReporter
/// calls.
class MetricsRegistry {
 public:
  using Collector = std::function<void(MetricsSnapshot*)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns and returns the counter/gauge/histogram for (name, labels).
  /// `help` is kept from the first registration of `name`. Registration
  /// takes the registry mutex — setup/cold path only.
  Counter* GetCounter(const std::string& name, const std::string& labels = "",
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "",
                  const std::string& help = "");
  LatencyHistogram* GetHistogram(const std::string& name,
                                 const std::string& labels = "",
                                 const std::string& help = "");

  /// Adds a caller-owned histogram to snapshots. The histogram must outlive
  /// the registry (or be deregistered by destroying the registry first).
  void RegisterExternal(const std::string& name, const std::string& labels,
                        const std::string& help, const LatencyHistogram* hist);

  /// Registers a pull-style collector invoked on every Snapshot().
  void AddCollector(Collector fn);

  /// Help text recorded for `name` ("" if none).
  std::string help(const std::string& name) const;

  /// Point-in-time copy of everything registered. Thread-safe.
  MetricsSnapshot Snapshot() const;

 private:
  struct HistEntry {
    std::string name;
    std::string labels;
    const LatencyHistogram* hist = nullptr;  // external, or &owned
    std::unique_ptr<LatencyHistogram> owned;
  };
  template <typename T>
  struct ScalarEntry {
    std::string name;
    std::string labels;
    T instrument;
  };

  void RecordHelp(const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  // Deques: pointer stability across registrations.
  std::deque<ScalarEntry<Counter>> counters_;
  std::deque<ScalarEntry<Gauge>> gauges_;
  std::deque<HistEntry> histograms_;
  std::map<std::string, size_t> counter_index_;
  std::map<std::string, size_t> gauge_index_;
  std::map<std::string, size_t> histogram_index_;
  std::map<std::string, std::string> help_;
  std::vector<Collector> collectors_;
};

/// Renders a snapshot in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` headers per family, `name{labels} value`
/// samples, histograms as cumulative `_bucket{le=...}` series plus `_sum`
/// and `_count`.
std::string ExportPrometheus(const MetricsSnapshot& snapshot,
                             const MetricsRegistry* help_source = nullptr);

/// Renders a snapshot as one JSON object:
///   {"counters": {"name{labels}": v}, "gauges": {...},
///    "histograms": {"name{labels}": {"count","sum","min","max",
///                                    "p50","p95","p99"}}}
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);

}  // namespace ssa

#endif  // SSA_OBS_METRICS_H_
