#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "util/common.h"

namespace ssa {
namespace {

std::string Key(const std::string& name, const std::string& labels) {
  return name + "\x01" + labels;
}

// Prometheus sample line: name{labels} value.
void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, double value) {
  out->append(name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  char buf[64];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), " %" PRId64,
                  static_cast<int64_t>(value));
  } else {
    std::snprintf(buf, sizeof(buf), " %.17g", value);
  }
  out->append(buf);
  out->push_back('\n');
}

// Histogram bucket line: name_bucket{labels,le="..."} cumulative_count.
void AppendBucket(std::string* out, const std::string& name,
                  const std::string& labels, const std::string& le,
                  uint64_t cumulative) {
  out->append(name);
  out->append("_bucket{");
  if (!labels.empty()) {
    out->append(labels);
    out->push_back(',');
  }
  out->append("le=\"");
  out->append(le);
  out->append("\"}");
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
  out->append(buf);
}

void AppendHeader(std::string* out, const std::string& name,
                  const std::string& help, const char* type) {
  if (!help.empty()) {
    out->append("# HELP ");
    out->append(name);
    out->push_back(' ');
    out->append(help);
    out->push_back('\n');
  }
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string DisplayName(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = Key(name, labels);
  auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return &counters_[it->second].instrument;
  RecordHelp(name, help);
  counter_index_[key] = counters_.size();
  counters_.emplace_back();
  counters_.back().name = name;
  counters_.back().labels = labels;
  return &counters_.back().instrument;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = Key(name, labels);
  auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return &gauges_[it->second].instrument;
  RecordHelp(name, help);
  gauge_index_[key] = gauges_.size();
  gauges_.emplace_back();
  gauges_.back().name = name;
  gauges_.back().labels = labels;
  return &gauges_.back().instrument;
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& labels,
                                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = Key(name, labels);
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) {
    HistEntry& e = histograms_[it->second];
    SSA_CHECK(e.owned != nullptr);  // Get on an external registration
    return e.owned.get();
  }
  RecordHelp(name, help);
  histogram_index_[key] = histograms_.size();
  histograms_.emplace_back();
  HistEntry& e = histograms_.back();
  e.name = name;
  e.labels = labels;
  e.owned.reset(new LatencyHistogram());
  e.hist = e.owned.get();
  return e.owned.get();
}

void MetricsRegistry::RegisterExternal(const std::string& name,
                                       const std::string& labels,
                                       const std::string& help,
                                       const LatencyHistogram* hist) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = Key(name, labels);
  auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) {
    histograms_[it->second].hist = hist;  // re-point (e.g. after restart)
    return;
  }
  RecordHelp(name, help);
  histogram_index_[key] = histograms_.size();
  histograms_.emplace_back();
  HistEntry& e = histograms_.back();
  e.name = name;
  e.labels = labels;
  e.hist = hist;
}

void MetricsRegistry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

void MetricsRegistry::RecordHelp(const std::string& name,
                                 const std::string& help) {
  if (!help.empty() && help_.find(name) == help_.end()) help_[name] = help;
}

std::string MetricsRegistry::help(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.samples.reserve(counters_.size() + gauges_.size());
    for (const auto& e : counters_) {
      MetricSample s;
      s.name = e.name;
      s.labels = e.labels;
      s.kind = MetricSample::kCounter;
      s.value = static_cast<double>(e.instrument.value());
      snap.samples.push_back(std::move(s));
    }
    for (const auto& e : gauges_) {
      MetricSample s;
      s.name = e.name;
      s.labels = e.labels;
      s.kind = MetricSample::kGauge;
      s.value = e.instrument.value();
      snap.samples.push_back(std::move(s));
    }
    for (const auto& e : histograms_) {
      HistogramSample h;
      h.name = e.name;
      h.labels = e.labels;
      h.count = e.hist->count();
      h.sum = e.hist->sum();
      h.min = e.hist->min();
      h.max = e.hist->max();
      h.p50 = e.hist->Percentile(50.0);
      h.p95 = e.hist->Percentile(95.0);
      h.p99 = e.hist->Percentile(99.0);
      e.hist->ForEachBucket([&h](uint64_t upper, uint64_t count) {
        h.buckets.emplace_back(upper, count);
      });
      snap.histograms.push_back(std::move(h));
    }
    collectors = collectors_;  // run outside the lock: a collector may call
                               // back into the registry
  }
  for (const auto& fn : collectors) fn(&snap);
  return snap;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot,
                             const MetricsRegistry* help_source) {
  std::string out;
  out.reserve(4096);
  auto help_for = [&](const std::string& name) {
    return help_source ? help_source->help(name) : std::string();
  };
  // Group samples by family name so HELP/TYPE headers are emitted once per
  // family, with every labeled sample beneath.
  std::set<std::string> done;
  for (size_t i = 0; i < snapshot.samples.size(); ++i) {
    const MetricSample& s = snapshot.samples[i];
    if (!done.insert(s.name).second) continue;
    AppendHeader(&out, s.name, help_for(s.name),
                 s.kind == MetricSample::kCounter ? "counter" : "gauge");
    for (size_t j = i; j < snapshot.samples.size(); ++j) {
      const MetricSample& t = snapshot.samples[j];
      if (t.name == s.name) AppendSample(&out, t.name, t.labels, t.value);
    }
  }
  std::set<std::string> hist_done;
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    if (!hist_done.insert(h.name).second) continue;
    AppendHeader(&out, h.name, help_for(h.name), "histogram");
    for (size_t j = i; j < snapshot.histograms.size(); ++j) {
      const HistogramSample& t = snapshot.histograms[j];
      if (t.name != h.name) continue;
      uint64_t cumulative = 0;
      for (const auto& bucket : t.buckets) {
        cumulative += bucket.second;
        char le[32];
        std::snprintf(le, sizeof(le), "%" PRIu64, bucket.first);
        AppendBucket(&out, t.name, t.labels, le, cumulative);
      }
      AppendBucket(&out, t.name, t.labels, "+Inf", t.count);
      AppendSample(&out, t.name + "_sum", t.labels,
                   static_cast<double>(t.sum));
      AppendSample(&out, t.name + "_count", t.labels,
                   static_cast<double>(t.count));
    }
  }
  return out;
}

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& s : snapshot.samples) {
    if (s.kind != MetricSample::kCounter) continue;
    if (!first) out << ",";
    first = false;
    std::string key;
    JsonEscape(DisplayName(s.name, s.labels), &key);
    out << "\"" << key << "\":" << static_cast<int64_t>(s.value);
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& s : snapshot.samples) {
    if (s.kind != MetricSample::kGauge) continue;
    if (!first) out << ",";
    first = false;
    std::string key;
    JsonEscape(DisplayName(s.name, s.labels), &key);
    out << "\"" << key << "\":" << s.value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out << ",";
    first = false;
    std::string key;
    JsonEscape(DisplayName(h.name, h.labels), &key);
    out << "\"" << key << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"min\":" << h.min << ",\"max\":" << h.max
        << ",\"p50\":" << h.p50 << ",\"p95\":" << h.p95
        << ",\"p99\":" << h.p99 << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace ssa
