#ifndef SSA_LP_SIMPLEX_H_
#define SSA_LP_SIMPLEX_H_

#include <utility>
#include <vector>

#include "util/status.h"

namespace ssa {

/// A linear program in the inequality form the winner-determination LP uses:
///
///   maximize    c^T x
///   subject to  A x <= b,   x >= 0,   b >= 0.
///
/// Rows are stored sparsely (the assignment constraint matrix has exactly
/// two nonzeros per variable); the solver densifies into a tableau.
struct LpProblem {
  struct Row {
    /// (variable index, coefficient) pairs.
    std::vector<std::pair<int, double>> coefficients;
    double rhs = 0.0;
  };

  int num_vars = 0;
  std::vector<double> objective;  // size num_vars
  std::vector<Row> rows;

  /// Adds a constraint sum(coefficients) <= rhs; rhs must be >= 0 so the
  /// all-slack basis is feasible.
  void AddRow(std::vector<std::pair<int, double>> coefficients, double rhs);
};

/// Result of a successful solve.
struct LpSolution {
  std::vector<double> x;        // primal values, size num_vars
  double objective_value = 0.0;
  int iterations = 0;
};

/// Dense-tableau primal simplex with Dantzig pricing and a Bland-rule
/// anti-cycling fallback. This is the from-scratch substitute for the
/// paper's GLPK simplex (Section V, method "LP"): a general-purpose solver
/// that is deliberately oblivious to the assignment structure. Returns
/// kInternal if the iteration limit is hit and kFailedPrecondition if the
/// LP is unbounded (cannot happen for the bounded assignment polytope).
StatusOr<LpSolution> SolveLpMax(const LpProblem& problem, int max_iters = -1);

}  // namespace ssa

#endif  // SSA_LP_SIMPLEX_H_
