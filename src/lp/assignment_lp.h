#ifndef SSA_LP_ASSIGNMENT_LP_H_
#define SSA_LP_ASSIGNMENT_LP_H_

#include <vector>

#include "lp/simplex.h"
#include "matching/allocation.h"
#include "util/common.h"
#include "util/status.h"

namespace ssa {

/// The winner-determination linear program (method "LP" of Section V):
///
///   maximize   sum_{i,j} w_ij x_ij
///   s.t.       sum_j x_ij <= 1   for every advertiser i
///              sum_i x_ij <= 1   for every slot j
///              x_ij >= 0
///
/// The constraint matrix's rows are the maximal cliques of an interval-like
/// perfect graph, so by Chvátal's theorem the LP has an integral optimum —
/// the paper relies on this to use a plain LP solver as the naive baseline.
LpProblem BuildAssignmentLp(const std::vector<double>& weights, int n, int k);

/// Solves the assignment LP with the simplex method and extracts the slot
/// allocation from the (guaranteed integral) optimum. `weights` is
/// advertiser-major marginal weight. Returns kInternal if the optimum
/// turned out fractional (would indicate a solver bug; asserted in tests).
StatusOr<Allocation> SolveAssignmentLp(const std::vector<double>& weights,
                                       int n, int k);

}  // namespace ssa

#endif  // SSA_LP_ASSIGNMENT_LP_H_
