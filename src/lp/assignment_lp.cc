#include "lp/assignment_lp.h"

#include <cmath>

namespace ssa {

LpProblem BuildAssignmentLp(const std::vector<double>& weights, int n, int k) {
  SSA_CHECK(weights.size() == static_cast<size_t>(n) * k);
  LpProblem lp;
  lp.num_vars = n * k;  // x_ij at index i * k + j
  lp.objective = weights;
  lp.rows.reserve(n + k);
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> row;
    row.reserve(k);
    for (int j = 0; j < k; ++j) row.emplace_back(i * k + j, 1.0);
    lp.AddRow(std::move(row), 1.0);
  }
  for (int j = 0; j < k; ++j) {
    std::vector<std::pair<int, double>> row;
    row.reserve(n);
    for (int i = 0; i < n; ++i) row.emplace_back(i * k + j, 1.0);
    lp.AddRow(std::move(row), 1.0);
  }
  return lp;
}

StatusOr<Allocation> SolveAssignmentLp(const std::vector<double>& weights,
                                       int n, int k) {
  const LpProblem lp = BuildAssignmentLp(weights, n, k);
  StatusOr<LpSolution> solution = SolveLpMax(lp);
  if (!solution.ok()) return solution.status();

  Allocation alloc = Allocation::Empty(n, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      const double x = solution->x[static_cast<size_t>(i) * k + j];
      if (x > 0.5) {
        if (std::abs(x - 1.0) > 1e-6) {
          return Status::Internal("fractional assignment LP optimum");
        }
        SSA_CHECK_MSG(alloc.slot_to_advertiser[j] == -1,
                      "slot constraint violated");
        SSA_CHECK_MSG(alloc.advertiser_to_slot[i] == kNoSlot,
                      "advertiser constraint violated");
        alloc.slot_to_advertiser[j] = i;
        alloc.advertiser_to_slot[i] = j;
        alloc.total_weight += weights[static_cast<size_t>(i) * k + j];
      } else if (x > 1e-6) {
        return Status::Internal("fractional assignment LP optimum");
      }
    }
  }
  return alloc;
}

}  // namespace ssa
