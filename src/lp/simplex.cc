#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/common.h"

namespace ssa {

void LpProblem::AddRow(std::vector<std::pair<int, double>> coefficients,
                       double rhs) {
  SSA_CHECK_MSG(rhs >= 0.0, "rhs must be non-negative");
  for (const auto& [var, coef] : coefficients) {
    SSA_CHECK(var >= 0 && var < num_vars);
    (void)coef;
  }
  rows.push_back(Row{std::move(coefficients), rhs});
}

namespace {

constexpr double kPivotEps = 1e-9;
constexpr double kCostEps = 1e-9;

}  // namespace

StatusOr<LpSolution> SolveLpMax(const LpProblem& problem, int max_iters) {
  const int nv = problem.num_vars;
  const int m = static_cast<int>(problem.rows.size());
  SSA_CHECK(static_cast<int>(problem.objective.size()) == nv);
  const int total_cols = nv + m + 1;  // structural + slacks + rhs
  const int rhs_col = nv + m;
  if (max_iters < 0) max_iters = 200 * (m + nv) + 1000;

  // Tableau rows 0..m; row 0 is the objective (reduced-cost) row.
  std::vector<double> t(static_cast<size_t>(m + 1) * total_cols, 0.0);
  auto at = [&](int r, int c) -> double& {
    return t[static_cast<size_t>(r) * total_cols + c];
  };

  for (int j = 0; j < nv; ++j) at(0, j) = -problem.objective[j];
  for (int i = 0; i < m; ++i) {
    const LpProblem::Row& row = problem.rows[i];
    for (const auto& [var, coef] : row.coefficients) at(i + 1, var) += coef;
    at(i + 1, nv + i) = 1.0;  // slack
    at(i + 1, rhs_col) = row.rhs;
  }
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) basis[i] = nv + i;

  int iterations = 0;
  int stall = 0;  // consecutive non-improving pivots -> switch to Bland
  double last_obj = 0.0;
  while (iterations < max_iters) {
    // Pricing: Dantzig (most negative reduced cost) normally; Bland
    // (first negative) once the objective stalls, which guarantees
    // termination on degenerate vertices.
    const bool bland = stall > 2 * (m + 2);
    int enter = -1;
    double best = -kCostEps;
    for (int j = 0; j < nv + m; ++j) {
      const double rc = at(0, j);
      if (rc < best) {
        enter = j;
        if (bland) break;
        best = rc;
      }
    }
    if (enter == -1) {
      // Optimal.
      LpSolution sol;
      sol.x.assign(nv, 0.0);
      for (int i = 0; i < m; ++i) {
        if (basis[i] < nv) sol.x[basis[i]] = at(i + 1, rhs_col);
      }
      sol.objective_value = at(0, rhs_col);
      sol.iterations = iterations;
      return sol;
    }

    // Ratio test with Bland tie-breaking on the leaving basic variable.
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 1; i <= m; ++i) {
      const double a = at(i, enter);
      if (a > kPivotEps) {
        const double ratio = at(i, rhs_col) / a;
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 && leave != -1 &&
             basis[i - 1] < basis[leave - 1])) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == -1) {
      return Status::FailedPrecondition("LP is unbounded");
    }

    // Pivot on (leave, enter).
    const double pivot = at(leave, enter);
    const double inv = 1.0 / pivot;
    double* lrow = &at(leave, 0);
    for (int c = 0; c < total_cols; ++c) lrow[c] *= inv;
    lrow[enter] = 1.0;
    for (int r = 0; r <= m; ++r) {
      if (r == leave) continue;
      const double factor = at(r, enter);
      if (factor == 0.0) continue;
      double* row = &at(r, 0);
      for (int c = 0; c < total_cols; ++c) row[c] -= factor * lrow[c];
      row[enter] = 0.0;
    }
    basis[leave - 1] = enter;
    ++iterations;

    const double obj = at(0, rhs_col);
    if (obj > last_obj + 1e-12) {
      stall = 0;
      last_obj = obj;
    } else {
      ++stall;
    }
  }
  return Status::Internal("simplex iteration limit exceeded");
}

}  // namespace ssa
