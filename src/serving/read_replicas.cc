#include "serving/read_replicas.h"

#include <algorithm>
#include <string>
#include <utility>

namespace ssa {

ReadReplicaSet::ReadReplicaSet(const ReadReplicaSetConfig& config,
                               FollowerFactory factory)
    : config_(config), factory_(std::move(factory)) {
  SSA_CHECK(config_.num_followers >= 1);
  SSA_CHECK(factory_ != nullptr);
}

ReadReplicaSet::~ReadReplicaSet() { Stop(); }

Status ReadReplicaSet::Start() {
  followers_.clear();
  followers_.reserve(config_.num_followers);
  for (int i = 0; i < config_.num_followers; ++i) {
    followers_.push_back(factory_(i));
    SSA_RETURN_IF_ERROR(followers_.back()->Start());
  }
  return Status::Ok();
}

void ReadReplicaSet::Stop() {
  for (auto& follower : followers_) {
    if (follower) follower->Stop();
  }
}

bool ReadReplicaSet::Eligible(int i, const ReadOptions& options,
                              uint64_t leader) const {
  const FollowerEngine& f = *followers_[i];
  if (!f.running() || !f.status().ok()) return false;
  switch (options.consistency) {
    case ReadConsistency::kAny:
      return true;
    case ReadConsistency::kAtLeastSeq:
      return f.applied_seq() >= options.min_seq;
    case ReadConsistency::kBoundedStaleness:
      return f.applied_seq() + options.max_lag_seq >= leader;
  }
  return false;
}

StatusOr<FollowerEngine*> ReadReplicaSet::Route(const ReadOptions& options) {
  if (followers_.empty()) {
    return Status::FailedPrecondition("ReadReplicaSet not started");
  }
  if (options.consistency == ReadConsistency::kBoundedStaleness &&
      !config_.leader_seq) {
    return Status::InvalidArgument(
        "kBoundedStaleness requires ReadReplicaSetConfig::leader_seq");
  }
  const uint64_t leader =
      config_.leader_seq ? config_.leader_seq() : uint64_t{0};
  const int n = num_followers();
  std::vector<int> eligible;
  eligible.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (Eligible(i, options, leader)) eligible.push_back(i);
  }
  if (!eligible.empty()) {
    const uint64_t tick = rr_.fetch_add(1, std::memory_order_relaxed);
    return followers_[eligible[tick % eligible.size()]].get();
  }

  if (options.consistency == ReadConsistency::kAtLeastSeq) {
    // Nobody is there yet: wait on the most-advanced healthy follower — the
    // one whose catch-up distance is shortest — then re-check.
    int best = -1;
    uint64_t best_seq = 0;
    for (int i = 0; i < n; ++i) {
      const FollowerEngine& f = *followers_[i];
      if (!f.running() || !f.status().ok()) continue;
      if (best < 0 || f.applied_seq() >= best_seq) {
        best = i;
        best_seq = f.applied_seq();
      }
    }
    if (best >= 0 &&
        followers_[best]->WaitForSeq(options.min_seq, options.wait_timeout)) {
      return followers_[best].get();
    }
    return Status::Unavailable(
        "no follower reached seq " + std::to_string(options.min_seq) +
        " within the wait budget");
  }
  return Status::Unavailable("no follower satisfies the requested staleness");
}

Status ReadReplicaSet::WhatIf(const ReadOptions& options, const Query& query,
                              ShardedAuctionEngine::PlannedAuction* plan,
                              uint64_t* applied_at) {
  SSA_ASSIGN_OR_RETURN(FollowerEngine * follower, Route(options));
  return follower->WhatIf(query, plan, applied_at);
}

Status ReadReplicaSet::EstimatePrices(const ReadOptions& options,
                                      const Query& query,
                                      std::vector<Money>* prices,
                                      uint64_t* applied_at) {
  SSA_ASSIGN_OR_RETURN(FollowerEngine * follower, Route(options));
  return follower->EstimatePrices(query, prices, applied_at);
}

Status ReadReplicaSet::AccountSnapshot(const ReadOptions& options,
                                       AdvertiserId id,
                                       AdvertiserAccount* account,
                                       uint64_t* applied_at) {
  SSA_ASSIGN_OR_RETURN(FollowerEngine * follower, Route(options));
  return follower->AccountSnapshot(id, account, applied_at);
}

Status ReadReplicaSet::RestartFollower(int i) {
  if (i < 0 || i >= num_followers()) {
    return Status::InvalidArgument("no such follower: " + std::to_string(i));
  }
  followers_[i]->Stop();
  followers_[i] = factory_(i);
  return followers_[i]->Start();
}

uint64_t ReadReplicaSet::min_applied_seq() const {
  uint64_t min_seq = 0;
  bool any = false;
  for (const auto& f : followers_) {
    if (!f || !f->running() || !f->status().ok()) continue;
    const uint64_t seq = f->applied_seq();
    if (!any || seq < min_seq) min_seq = seq;
    any = true;
  }
  return any ? min_seq : 0;
}

uint64_t ReadReplicaSet::max_applied_seq() const {
  uint64_t max_seq = 0;
  for (const auto& f : followers_) {
    if (!f || !f->running() || !f->status().ok()) continue;
    max_seq = std::max(max_seq, f->applied_seq());
  }
  return max_seq;
}

}  // namespace ssa
