#ifndef SSA_SERVING_AUCTION_SERVER_H_
#define SSA_SERVING_AUCTION_SERVER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "auction/sharded_engine.h"
#include "durability/recovery.h"
#include "durability/settlement_log.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "util/bounded_queue.h"
#include "util/epoch.h"
#include "util/histogram.h"

namespace ssa {

/// How the executor orders planning vs settlement inside a micro-batch.
enum class ServingMode {
  /// Plan and settle each query before planning the next. Given a fixed
  /// arrival order this reproduces the serial engine loop *bitwise* — for
  /// any batch size, batch deadline, shard count, or pool — because batch
  /// boundaries only group work, never reorder it (serving_test pins this
  /// against AuctionEngine::RunAuctionOn).
  kDeterministicReplay,
  /// Plan the whole batch against batch-start account state, then settle in
  /// arrival order in one pass. Settlement (user simulation, charging,
  /// accounting, outcome notifications, revenue accumulation) amortizes
  /// across the batch, and planning stops waiting on per-query settlement.
  /// Still deterministic given the arrival order, but bids inside a batch
  /// no longer see intra-batch settlements — the documented freshness trade
  /// (equal to replay when the batch size is 1).
  kBatchedSettlement,
};

/// Which ingestion queue the server runs on.
enum class QueueImpl {
  /// BoundedQueue: mutex + condvars, supports every backpressure policy.
  kLocking,
  /// MpmcRingQueue: lock-free Vyukov ring; producers never touch a mutex.
  /// Supports only BackpressurePolicy::kReject (a lock-free ring can
  /// neither block a producer nor atomically evict its oldest element);
  /// the executor polls with a yield-then-sleep backoff instead of waiting
  /// on a condvar.
  kLockFree,
};

/// One admitted query: what travels through the ingestion queue.
struct ServingRequest {
  Query query;
  /// Admission timestamp — queue-wait and end-to-end latency anchor.
  std::chrono::steady_clock::time_point admitted_at{};
  /// Sampled trace sequence (0 = this query records no spans). Assigned at
  /// Submit from the admission counter, deterministically 1-in-N.
  uint64_t trace_seq = 0;
};

/// Observability knobs. Metrics default on (wait-free instruments; the
/// executor additionally publishes engine/log gauges once per batch);
/// tracing defaults off. Neither path touches auction values —
/// instrumentation only reads clocks and writes side state — so
/// kDeterministicReplay stays bitwise-identical at any sampling rate
/// (serving_test pins this at full sampling).
struct ObsConfig {
  /// Register instruments and publish per-batch gauges. false = the
  /// registry stays empty and the serving path records only the four
  /// pre-existing stage histograms.
  bool metrics = true;
  /// sample_every = 0 disables tracing; the hot path then pays one null
  /// check per stage.
  TraceConfig trace;
  /// > 0 runs a background MetricsReporter at this interval (plus one
  /// terminal snapshot at Stop()).
  std::chrono::milliseconds report_interval{0};
  /// Reporter target (Prometheus text, atomically replaced per snapshot).
  /// Empty = reporter publishes through `report_callback` only.
  std::string report_path;
  /// Optional per-snapshot callback (reporter thread).
  std::function<void(const MetricsSnapshot&)> report_callback;
};

/// Durability knobs for the serving path. All off by default — the server
/// behaves exactly as before unless a log path is configured.
struct DurabilityConfig {
  /// Settlement-log sink: every settled auction is appended as a sequenced,
  /// checksummed record. Empty = durability off.
  std::string log_path;
  LogWriterOptions writer;
  /// Checkpoint file recovery rewinds to (and WriteCheckpoint() targets).
  /// Empty or missing = recover by replaying the whole log.
  std::string checkpoint_path;
  /// Run restore-then-replay in Start() before the executor launches.
  bool recover_on_start = true;
  /// Test hook threaded into the log writer (crash/corruption injection).
  /// Not owned; null in production.
  FaultInjector* injector = nullptr;
};

/// Serving-layer knobs on top of the sharded engine configuration.
struct ServerConfig {
  /// Engine knobs (winner determination, pricing, seed, shard count, pool).
  /// `engine.pool` is the same pool the shard phase of every planned
  /// auction runs on — the server adds no pool of its own.
  ShardedEngineConfig engine;
  /// Ingestion bound. Exact under QueueImpl::kLocking; under kLockFree the
  /// ring rounds it *up to the next power of two*, so the reject threshold
  /// can admit up to ~2x this value — size it as a power of two when the
  /// bound matters.
  size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  QueueImpl queue_impl = QueueImpl::kLocking;
  /// Micro-batch triggers: a batch closes when it holds `max_batch_size`
  /// requests or `batch_deadline` has elapsed since its first request was
  /// popped, whichever comes first.
  int max_batch_size = 16;
  std::chrono::microseconds batch_deadline{200};
  ServingMode mode = ServingMode::kDeterministicReplay;
  /// Planning lanes E. 0 = the executor plans in-thread (the pre-lane
  /// executor, byte for byte). E >= 1 replicates the *pure* half of planning
  /// across E worker threads, each owning a private PlanLane scratch arena
  /// (compiled-bids caches, revenue matrix, top-k heaps): the executor
  /// captures bids strictly in arrival order (bidding programs may mutate
  /// their private state, so capture cannot parallelize), hands each
  /// captured slot to any idle lane, and settles through an ordered commit
  /// barrier strictly in arrival order. Values and the settlement trajectory
  /// are identical for every E in both modes — under kDeterministicReplay
  /// bitwise-equal to the serial engine loop (serving_test pins E in
  /// {1,2,4,8}); under kBatchedSettlement lanes plan slots while the
  /// executor settles earlier slots of the same batch, which is where the
  /// throughput shows up on multi-core hosts.
  int num_plan_lanes = 0;
  /// Cost-model-driven shard rebalancing, honored only at epoch boundaries:
  /// after a micro-batch fully settles and before the next batch's first
  /// capture — the only points where no plan is in flight on any lane, which
  /// is Repartition's concurrency precondition. Off by default (`every` is
  /// overridden to 0 here); set `every` > 0 to rebalance when due and the
  /// predicted imbalance is at least `min_imbalance`. Rebalancing moves
  /// shard boundaries only — under kDeterministicReplay the trajectory stays
  /// bitwise-equal to the serial engine (serving_test pins this).
  ShardRebalancerOptions rebalance{/*every=*/0};
  DurabilityConfig durability;
  ObsConfig obs;
};

/// Asynchronous serving front-end for the sharded auction engine: producers
/// Submit() queries into a bounded ingestion queue (block / reject /
/// drop-oldest backpressure); a single executor thread pulls size- or
/// deadline-triggered micro-batches and drives them through the
/// ShardedAuctionEngine (whose shard phase fans out on the configured
/// ThreadPool). Per-stage latencies — queue wait, auction (plan),
/// settlement, end-to-end — are recorded into log-bucketed histograms, and
/// admission verdicts are counted, so tail latency under load is a measured
/// quantity rather than an offline extrapolation.
///
/// Threading contract: Submit() is safe from any number of producer
/// threads; the engine's mutable state (accounts, strategies, user RNG) is
/// touched only by the executor; telemetry accessors are safe any time
/// (relaxed atomics) but meaningfully consistent after Stop(). The
/// completion hook runs on the executor thread, in settlement (arrival)
/// order. With num_plan_lanes >= 1 the lane workers run only the const,
/// side-effect-free PlanCaptured half on private scratch — capture and
/// settlement stay on the executor, so the single-writer contract above is
/// unchanged (serving_stress_test runs this under TSan).
class AuctionServer {
 public:
  using CompletionFn = std::function<void(const AuctionOutcome&)>;

  AuctionServer(const ServerConfig& config, Workload workload,
                std::vector<std::unique_ptr<BiddingStrategy>> strategies);
  ~AuctionServer();

  AuctionServer(const AuctionServer&) = delete;
  AuctionServer& operator=(const AuctionServer&) = delete;

  /// Installs the per-auction completion hook. Must precede Start().
  void set_on_complete(CompletionFn fn);

  /// Launches the executor thread. Must be called at most once. With
  /// durability configured, first runs restore-then-replay recovery
  /// (checkpoint, then the settlement log's intact suffix; a torn tail is
  /// truncated) and opens the log sink at the recovered sequence — a
  /// recovery error leaves the server unstarted. Without durability, never
  /// fails.
  Status Start();

  /// Closes the ingestion queue, lets the executor drain every admitted
  /// request, joins it, and then flushes the settlement log — every settled
  /// auction is in the OS (and on disk under kGroupFsync/kFsyncEach) when
  /// Stop() returns. Idempotent; also invoked by the destructor.
  void Stop();

  /// Checkpoints the engine to `durability.checkpoint_path`. Call while the
  /// executor is quiescent (before Start() or after Stop()): checkpoints
  /// must snapshot a settlement boundary.
  Status WriteCheckpoint() const;

  /// Admits one query per the backpressure policy. Thread-safe.
  QueuePushResult Submit(Query query);

  // --- Telemetry -----------------------------------------------------------
  /// Stage latencies in microseconds.
  const LatencyHistogram& queue_wait_us() const { return queue_wait_us_; }
  const LatencyHistogram& auction_us() const { return auction_us_; }
  const LatencyHistogram& settlement_us() const { return settlement_us_; }
  const LatencyHistogram& end_to_end_us() const { return end_to_end_us_; }

  /// Clears the four stage histograms (admission counters are untouched) —
  /// the warmup/measured boundary of the load harnesses. Call only while no
  /// request is in flight (e.g. after completed() has caught up with every
  /// submission), otherwise concurrent Record()s may straddle the reset.
  void ResetTelemetry() {
    queue_wait_us_.Reset();
    auction_us_.Reset();
    settlement_us_.Reset();
    end_to_end_us_.Reset();
  }

  /// Admission / completion counters.
  int64_t accepted() const;
  int64_t rejected() const;
  int64_t dropped_oldest() const;
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  int64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  /// Epoch-boundary rebalances that actually moved a shard boundary.
  int64_t rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

  /// The served engine (read after Stop() for settled accounts/revenue).
  const ShardedAuctionEngine& engine() const { return engine_; }
  const ServerConfig& config() const { return config_; }

  // --- Durability telemetry -----------------------------------------------
  /// What Start()'s recovery did (zeroes when durability is off or
  /// recover_on_start was false).
  const RecoveryReport& recovery() const { return recovery_; }
  /// Auctions settled since the checkpoint recovery restored (== the replay
  /// cost of a crash right now, in auctions).
  int64_t checkpoint_age() const {
    return engine_.auctions_run() -
           static_cast<int64_t>(recovery_.checkpoint_seq);
  }
  /// Sequence of the last settled auction, readable from any thread — the
  /// read-your-writes token for replicated reads: a client that saw its
  /// write complete passes this as ReadOptions::min_seq (kAtLeastSeq) and
  /// any follower at or past it reflects the write. Monotone; equals
  /// engine().auctions_run() but, unlike it, is safe to read while the
  /// executor settles.
  uint64_t settled_seq() const {
    return settled_seq_.load(std::memory_order_acquire);
  }
  /// First settlement-log append/flush error, if any (OK otherwise). The
  /// executor keeps serving on log errors; callers decide whether a lame
  /// log sink is fatal.
  Status log_status() const;
  /// The log sink, if configured (counters: records appended, commits,
  /// syncs, bytes). Null when durability is off.
  const SettlementLogWriter* log_writer() const { return log_writer_.get(); }

  // --- Observability --------------------------------------------------------
  /// The unified metrics registry: stage histograms, admission/completion
  /// counters, queue depth, per-lane barrier waits, per-shard engine
  /// telemetry, and durability gauges all snapshot through here.
  /// Snapshot()/exporters are safe any time; per-shard and log gauges are
  /// refreshed by the executor at batch boundaries (and once more at
  /// Stop()), so they trail live state by at most one batch.
  const MetricsRegistry& metrics() const { return registry_; }
  MetricsRegistry* mutable_metrics() { return &registry_; }
  /// The pipeline tracer (null when obs.trace.sample_every == 0).
  const Tracer* tracer() const { return tracer_.get(); }
  /// Decoded spans currently in the trace ring, start-ordered (empty when
  /// tracing is off). Export with Tracer::ExportChromeTrace.
  std::vector<TraceEvent> DrainTrace() const {
    return tracer_ != nullptr ? tracer_->Drain() : std::vector<TraceEvent>();
  }

 private:
  void ExecutorLoop();
  /// Lock-free analogue of BoundedQueue::PopBatch: poll with backoff for
  /// the first request, then drain until full batch, deadline, or closed.
  bool PopBatchLockFree(std::vector<ServingRequest>* out);
  void RunBatch(std::vector<ServingRequest>* batch);
  /// The lane-pool epoch pipeline (num_plan_lanes >= 1): capture in arrival
  /// order, plan on any idle lane, settle through the commit barrier in
  /// arrival order.
  void RunBatchWithLanes(std::vector<ServingRequest>* batch);
  /// Lane worker body: plans epoch slot `slot` on lane `lane`'s scratch,
  /// then marks the slot ready for the settler.
  void RunLane(int lane, int64_t slot);
  /// Settles epoch slot `i` of `batch` (histograms, log, completion hook).
  void SettleSlot(std::vector<ServingRequest>* batch, size_t i);
  /// Epoch-boundary rebalance check: runs between RunBatch calls (batch
  /// fully settled, every lane idle), asks the rebalancer whether a check is
  /// due, and applies RebalanceShards under config.rebalance.min_imbalance.
  void MaybeRebalance();
  /// Registers instruments/collectors and constructs the tracer (called from
  /// the constructor; no-ops per ObsConfig).
  void SetupObservability();
  /// Pushes plain (non-atomic) engine and log-writer state — shard stats,
  /// per-lane cache totals, log counters, checkpoint age — into registry
  /// gauges. Executor thread only (batch boundaries + Stop), which is what
  /// keeps the reporter/snapshot side race-free: snapshots read only atomic
  /// gauge words, never the engine's plain state.
  void PublishEngineGauges();

  ServerConfig config_;
  ShardedAuctionEngine engine_;
  ShardRebalancer rebalancer_;
  std::unique_ptr<BoundedQueue<ServingRequest>> locking_queue_;
  std::unique_ptr<MpmcRingQueue<ServingRequest>> ring_;
  std::atomic<bool> ring_closed_{false};
  /// Lock-free Submits currently between their closed-check and their
  /// TryPush return. The executor exits only once this is zero *and* the
  /// ring is drained, so a producer that raced past the closed-check cannot
  /// strand an accepted request (Stop()'s drain contract).
  std::atomic<int64_t> submits_in_flight_{0};
  std::atomic<int64_t> ring_accepted_{0};
  std::atomic<int64_t> ring_rejected_{0};

  /// Appends the settled outcome to the log sink (no-op when off); records
  /// the first failure in log_status_. Executor thread only.
  void LogSettlement(const AuctionOutcome& outcome, uint64_t trace_seq);

  CompletionFn on_complete_;
  std::thread executor_;
  bool started_ = false;
  bool stopped_ = false;

  std::unique_ptr<SettlementLogWriter> log_writer_;
  RecoveryReport recovery_;
  /// Last settled sequence (see settled_seq()). Written by the executor in
  /// LogSettlement — which runs for every settled auction, log sink or not.
  std::atomic<uint64_t> settled_seq_{0};
  mutable std::mutex log_status_mu_;
  Status log_status_;  // guarded by log_status_mu_

  LatencyHistogram queue_wait_us_;
  LatencyHistogram auction_us_;
  LatencyHistogram settlement_us_;
  LatencyHistogram end_to_end_us_;
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> rebalances_{0};

  // --- Observability state --------------------------------------------------
  MetricsRegistry registry_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsReporter> reporter_;
  /// Admission sequence feeding the deterministic trace sampler (counted
  /// only when tracing is configured).
  std::atomic<uint64_t> admissions_{0};
  /// Interned instruments, null when obs.metrics is false. The per-lane
  /// vectors are indexed by lane id; lane workers touch only their own
  /// (atomic) instruments.
  LatencyHistogram* batch_size_hist_ = nullptr;
  std::vector<LatencyHistogram*> lane_barrier_wait_us_;
  std::vector<Counter*> lane_plans_total_;

  /// Batched-settlement scratch: one plan per in-flight batch slot.
  std::vector<ShardedAuctionEngine::PlannedAuction> plans_;

  // --- Planning-lane epoch state (num_plan_lanes >= 1 only) ----------------
  // One epoch == one micro-batch. Per-slot state is written by exactly one
  // party at a time: the executor fills captures_[i]/capture_us_[i] before
  // Dispatch(i) (publication via the lane pool's queue mutex); the owning
  // lane fills plans_[i]/plan_us_[i] before MarkReady(i) (publication via
  // the barrier mutex); the executor reads them after AwaitReady(i). No slot
  // is touched concurrently, which is the whole TSan story.
  std::vector<std::unique_ptr<ShardedAuctionEngine::PlanLane>> lanes_;
  OrderedCommitBarrier settle_barrier_;
  std::vector<ShardedAuctionEngine::CapturedBids> captures_;
  std::vector<uint64_t> capture_us_;
  std::vector<uint64_t> plan_us_;
  /// Which lane planned each epoch slot — written by the owning lane before
  /// MarkReady, read by the executor after AwaitReady (the barrier mutex
  /// publishes it), attributing barrier waits per lane.
  std::vector<int> slot_lane_;
  /// The batch the open epoch is serving; valid between the first
  /// Dispatch and the last AwaitReady of the epoch.
  std::vector<ServingRequest>* epoch_batch_ = nullptr;
  /// Declared last so it is destroyed first: the pool's destructor joins
  /// the lane workers, which may still be finishing a MarkReady on
  /// settle_barrier_ or reading captures_/lanes_ — everything above must
  /// outlive them.
  std::unique_ptr<LanePool> lane_pool_;
};

}  // namespace ssa

#endif  // SSA_SERVING_AUCTION_SERVER_H_
