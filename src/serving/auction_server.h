#ifndef SSA_SERVING_AUCTION_SERVER_H_
#define SSA_SERVING_AUCTION_SERVER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "auction/sharded_engine.h"
#include "durability/recovery.h"
#include "durability/settlement_log.h"
#include "util/bounded_queue.h"
#include "util/histogram.h"

namespace ssa {

/// How the executor orders planning vs settlement inside a micro-batch.
enum class ServingMode {
  /// Plan and settle each query before planning the next. Given a fixed
  /// arrival order this reproduces the serial engine loop *bitwise* — for
  /// any batch size, batch deadline, shard count, or pool — because batch
  /// boundaries only group work, never reorder it (serving_test pins this
  /// against AuctionEngine::RunAuctionOn).
  kDeterministicReplay,
  /// Plan the whole batch against batch-start account state, then settle in
  /// arrival order in one pass. Settlement (user simulation, charging,
  /// accounting, outcome notifications, revenue accumulation) amortizes
  /// across the batch, and planning stops waiting on per-query settlement.
  /// Still deterministic given the arrival order, but bids inside a batch
  /// no longer see intra-batch settlements — the documented freshness trade
  /// (equal to replay when the batch size is 1).
  kBatchedSettlement,
};

/// Which ingestion queue the server runs on.
enum class QueueImpl {
  /// BoundedQueue: mutex + condvars, supports every backpressure policy.
  kLocking,
  /// MpmcRingQueue: lock-free Vyukov ring; producers never touch a mutex.
  /// Supports only BackpressurePolicy::kReject (a lock-free ring can
  /// neither block a producer nor atomically evict its oldest element);
  /// the executor polls with a yield-then-sleep backoff instead of waiting
  /// on a condvar.
  kLockFree,
};

/// One admitted query: what travels through the ingestion queue.
struct ServingRequest {
  Query query;
  /// Admission timestamp — queue-wait and end-to-end latency anchor.
  std::chrono::steady_clock::time_point admitted_at{};
};

/// Durability knobs for the serving path. All off by default — the server
/// behaves exactly as before unless a log path is configured.
struct DurabilityConfig {
  /// Settlement-log sink: every settled auction is appended as a sequenced,
  /// checksummed record. Empty = durability off.
  std::string log_path;
  LogWriterOptions writer;
  /// Checkpoint file recovery rewinds to (and WriteCheckpoint() targets).
  /// Empty or missing = recover by replaying the whole log.
  std::string checkpoint_path;
  /// Run restore-then-replay in Start() before the executor launches.
  bool recover_on_start = true;
  /// Test hook threaded into the log writer (crash/corruption injection).
  /// Not owned; null in production.
  FaultInjector* injector = nullptr;
};

/// Serving-layer knobs on top of the sharded engine configuration.
struct ServerConfig {
  /// Engine knobs (winner determination, pricing, seed, shard count, pool).
  /// `engine.pool` is the same pool the shard phase of every planned
  /// auction runs on — the server adds no pool of its own.
  ShardedEngineConfig engine;
  /// Ingestion bound. Exact under QueueImpl::kLocking; under kLockFree the
  /// ring rounds it *up to the next power of two*, so the reject threshold
  /// can admit up to ~2x this value — size it as a power of two when the
  /// bound matters.
  size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  QueueImpl queue_impl = QueueImpl::kLocking;
  /// Micro-batch triggers: a batch closes when it holds `max_batch_size`
  /// requests or `batch_deadline` has elapsed since its first request was
  /// popped, whichever comes first.
  int max_batch_size = 16;
  std::chrono::microseconds batch_deadline{200};
  ServingMode mode = ServingMode::kDeterministicReplay;
  DurabilityConfig durability;
};

/// Asynchronous serving front-end for the sharded auction engine: producers
/// Submit() queries into a bounded ingestion queue (block / reject /
/// drop-oldest backpressure); a single executor thread pulls size- or
/// deadline-triggered micro-batches and drives them through the
/// ShardedAuctionEngine (whose shard phase fans out on the configured
/// ThreadPool). Per-stage latencies — queue wait, auction (plan),
/// settlement, end-to-end — are recorded into log-bucketed histograms, and
/// admission verdicts are counted, so tail latency under load is a measured
/// quantity rather than an offline extrapolation.
///
/// Threading contract: Submit() is safe from any number of producer
/// threads; the engine is touched only by the executor; telemetry accessors
/// are safe any time (relaxed atomics) but meaningfully consistent after
/// Stop(). The completion hook runs on the executor thread, in settlement
/// (arrival) order.
class AuctionServer {
 public:
  using CompletionFn = std::function<void(const AuctionOutcome&)>;

  AuctionServer(const ServerConfig& config, Workload workload,
                std::vector<std::unique_ptr<BiddingStrategy>> strategies);
  ~AuctionServer();

  AuctionServer(const AuctionServer&) = delete;
  AuctionServer& operator=(const AuctionServer&) = delete;

  /// Installs the per-auction completion hook. Must precede Start().
  void set_on_complete(CompletionFn fn);

  /// Launches the executor thread. Must be called at most once. With
  /// durability configured, first runs restore-then-replay recovery
  /// (checkpoint, then the settlement log's intact suffix; a torn tail is
  /// truncated) and opens the log sink at the recovered sequence — a
  /// recovery error leaves the server unstarted. Without durability, never
  /// fails.
  Status Start();

  /// Closes the ingestion queue, lets the executor drain every admitted
  /// request, joins it, and then flushes the settlement log — every settled
  /// auction is in the OS (and on disk under kGroupFsync/kFsyncEach) when
  /// Stop() returns. Idempotent; also invoked by the destructor.
  void Stop();

  /// Checkpoints the engine to `durability.checkpoint_path`. Call while the
  /// executor is quiescent (before Start() or after Stop()): checkpoints
  /// must snapshot a settlement boundary.
  Status WriteCheckpoint() const;

  /// Admits one query per the backpressure policy. Thread-safe.
  QueuePushResult Submit(Query query);

  // --- Telemetry -----------------------------------------------------------
  /// Stage latencies in microseconds.
  const LatencyHistogram& queue_wait_us() const { return queue_wait_us_; }
  const LatencyHistogram& auction_us() const { return auction_us_; }
  const LatencyHistogram& settlement_us() const { return settlement_us_; }
  const LatencyHistogram& end_to_end_us() const { return end_to_end_us_; }

  /// Clears the four stage histograms (admission counters are untouched) —
  /// the warmup/measured boundary of the load harnesses. Call only while no
  /// request is in flight (e.g. after completed() has caught up with every
  /// submission), otherwise concurrent Record()s may straddle the reset.
  void ResetTelemetry() {
    queue_wait_us_.Reset();
    auction_us_.Reset();
    settlement_us_.Reset();
    end_to_end_us_.Reset();
  }

  /// Admission / completion counters.
  int64_t accepted() const;
  int64_t rejected() const;
  int64_t dropped_oldest() const;
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  int64_t batches() const { return batches_.load(std::memory_order_relaxed); }

  /// The served engine (read after Stop() for settled accounts/revenue).
  const ShardedAuctionEngine& engine() const { return engine_; }
  const ServerConfig& config() const { return config_; }

  // --- Durability telemetry -----------------------------------------------
  /// What Start()'s recovery did (zeroes when durability is off or
  /// recover_on_start was false).
  const RecoveryReport& recovery() const { return recovery_; }
  /// Auctions settled since the checkpoint recovery restored (== the replay
  /// cost of a crash right now, in auctions).
  int64_t checkpoint_age() const {
    return engine_.auctions_run() -
           static_cast<int64_t>(recovery_.checkpoint_seq);
  }
  /// First settlement-log append/flush error, if any (OK otherwise). The
  /// executor keeps serving on log errors; callers decide whether a lame
  /// log sink is fatal.
  Status log_status() const;
  /// The log sink, if configured (counters: records appended, commits,
  /// syncs, bytes). Null when durability is off.
  const SettlementLogWriter* log_writer() const { return log_writer_.get(); }

 private:
  void ExecutorLoop();
  /// Lock-free analogue of BoundedQueue::PopBatch: poll with backoff for
  /// the first request, then drain until full batch, deadline, or closed.
  bool PopBatchLockFree(std::vector<ServingRequest>* out);
  void RunBatch(std::vector<ServingRequest>* batch);

  ServerConfig config_;
  ShardedAuctionEngine engine_;
  std::unique_ptr<BoundedQueue<ServingRequest>> locking_queue_;
  std::unique_ptr<MpmcRingQueue<ServingRequest>> ring_;
  std::atomic<bool> ring_closed_{false};
  /// Lock-free Submits currently between their closed-check and their
  /// TryPush return. The executor exits only once this is zero *and* the
  /// ring is drained, so a producer that raced past the closed-check cannot
  /// strand an accepted request (Stop()'s drain contract).
  std::atomic<int64_t> submits_in_flight_{0};
  std::atomic<int64_t> ring_accepted_{0};
  std::atomic<int64_t> ring_rejected_{0};

  /// Appends the settled outcome to the log sink (no-op when off); records
  /// the first failure in log_status_. Executor thread only.
  void LogSettlement(const AuctionOutcome& outcome);

  CompletionFn on_complete_;
  std::thread executor_;
  bool started_ = false;
  bool stopped_ = false;

  std::unique_ptr<SettlementLogWriter> log_writer_;
  RecoveryReport recovery_;
  mutable std::mutex log_status_mu_;
  Status log_status_;  // guarded by log_status_mu_

  LatencyHistogram queue_wait_us_;
  LatencyHistogram auction_us_;
  LatencyHistogram settlement_us_;
  LatencyHistogram end_to_end_us_;
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> batches_{0};

  /// Batched-settlement scratch: one plan per in-flight batch slot.
  std::vector<ShardedAuctionEngine::PlannedAuction> plans_;
};

}  // namespace ssa

#endif  // SSA_SERVING_AUCTION_SERVER_H_
