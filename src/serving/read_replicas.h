#ifndef SSA_SERVING_READ_REPLICAS_H_
#define SSA_SERVING_READ_REPLICAS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "replication/follower.h"
#include "util/status.h"

namespace ssa {

/// How stale a routed read may be.
enum class ReadConsistency {
  /// Any running follower: maximal scale-out, staleness unbounded (but
  /// observable per read via `applied_at`).
  kAny,
  /// Read-your-writes: only followers with applied_seq >= ReadOptions::
  /// min_seq are eligible. The client passes the leader's settled_seq()
  /// token from its write; the routed result then reflects that write and
  /// everything before it. If no follower is there yet, the router waits
  /// on the most-advanced one up to wait_timeout, then fails kUnavailable.
  kAtLeastSeq,
  /// Bounded staleness: followers within ReadOptions::max_lag_seq of the
  /// leader's current settled sequence (leader_seq must be configured).
  kBoundedStaleness,
};

struct ReadOptions {
  ReadConsistency consistency = ReadConsistency::kAny;
  /// kAtLeastSeq: the write token the read must reflect.
  uint64_t min_seq = 0;
  /// kBoundedStaleness: max sequences a serving follower may trail.
  uint64_t max_lag_seq = 0;
  /// kAtLeastSeq: how long Route may block for a follower to catch up.
  std::chrono::milliseconds wait_timeout{250};
};

struct ReadReplicaSetConfig {
  int num_followers = 1;
  /// The leader's settled sequence (AuctionServer::settled_seq) — required
  /// for kBoundedStaleness, optional otherwise.
  std::function<uint64_t()> leader_seq;
};

/// The read fan-out: N FollowerEngines behind one routing front.
///
/// Followers are built by a caller-supplied factory (each must get its own
/// private engine replica — same seed/workload/strategies as the leader),
/// so the set stays agnostic of workload construction. Routing picks
/// round-robin among the followers eligible under the requested
/// consistency; a follower that is stopped or failed (sticky apply error)
/// is never eligible, so a corrupted or diverged replica drops out of
/// rotation by itself. RestartFollower rebuilds one in place through the
/// factory — the catch-up path after a kill (bootstrap from checkpoint,
/// re-tail the log).
///
/// Thread-safe for concurrent Route/WhatIf/EstimatePrices once Start has
/// returned; Start/Stop/RestartFollower are management-plane calls and must
/// not race each other.
class ReadReplicaSet {
 public:
  using FollowerFactory = std::function<std::unique_ptr<FollowerEngine>(int)>;

  /// `factory(i)` builds follower i (not yet started).
  ReadReplicaSet(const ReadReplicaSetConfig& config, FollowerFactory factory);
  ~ReadReplicaSet();

  /// Builds and starts every follower.
  Status Start();
  /// Stops every follower (their state stays readable).
  void Stop();

  /// Picks an eligible follower for `options`, or kUnavailable when none
  /// qualifies within the wait budget. The returned pointer stays valid
  /// until Stop/RestartFollower.
  StatusOr<FollowerEngine*> Route(const ReadOptions& options);

  /// Routed reads — Route + the follower call. `applied_at` (if non-null)
  /// reports the applied sequence the answer is a function of.
  Status WhatIf(const ReadOptions& options, const Query& query,
                ShardedAuctionEngine::PlannedAuction* plan,
                uint64_t* applied_at = nullptr);
  Status EstimatePrices(const ReadOptions& options, const Query& query,
                        std::vector<Money>* prices,
                        uint64_t* applied_at = nullptr);
  Status AccountSnapshot(const ReadOptions& options, AdvertiserId id,
                         AdvertiserAccount* account,
                         uint64_t* applied_at = nullptr);

  /// Tears follower i down and rebuilds it through the factory (which
  /// decides the bootstrap: typically the latest checkpoint + the log).
  Status RestartFollower(int i);

  int num_followers() const { return static_cast<int>(followers_.size()); }
  FollowerEngine* follower(int i) { return followers_[i].get(); }

  /// Applied-seq extremes across running, healthy followers (0 when none).
  uint64_t min_applied_seq() const;
  uint64_t max_applied_seq() const;

 private:
  /// True when follower i may serve under `options`.
  bool Eligible(int i, const ReadOptions& options, uint64_t leader) const;

  ReadReplicaSetConfig config_;
  FollowerFactory factory_;
  std::vector<std::unique_ptr<FollowerEngine>> followers_;
  std::atomic<uint64_t> rr_{0};  // round-robin cursor
};

}  // namespace ssa

#endif  // SSA_SERVING_READ_REPLICAS_H_
