#include "serving/auction_server.h"

#include <utility>

#include "util/timer.h"

namespace ssa {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Non-negative elapsed microseconds between two steady-clock points.
uint64_t ElapsedUs(SteadyClock::time_point from, SteadyClock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

/// Steady-clock point as absolute nanoseconds — the tracer's time base
/// (Tracer::NowNs uses the same clock, so spans from both sources align).
uint64_t ToNs(SteadyClock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

std::string LaneLabel(int lane) {
  return "lane=\"" + std::to_string(lane) + "\"";
}

std::string ShardLabel(int shard) {
  return "shard=\"" + std::to_string(shard) + "\"";
}

/// Executor-side poll backoff for the lock-free queue: stay hot for a few
/// rounds, then yield the core, then sleep — bounds idle burn at ~20 wakeups
/// per millisecond without adding more than ~50us of pop latency.
void Backoff(int* round) {
  if (*round < 64) {
    // hot spin: the producer is probably mid-push
  } else if (*round < 256) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ++*round;
}

}  // namespace

AuctionServer::AuctionServer(
    const ServerConfig& config, Workload workload,
    std::vector<std::unique_ptr<BiddingStrategy>> strategies)
    : config_(config),
      engine_(config.engine, std::move(workload), std::move(strategies)),
      rebalancer_(config.rebalance) {
  SSA_CHECK(config_.queue_capacity >= 1);
  SSA_CHECK(config_.max_batch_size >= 1);
  if (config_.queue_impl == QueueImpl::kLockFree) {
    // A lock-free ring can neither block a producer nor atomically evict
    // its oldest element; reject is the only expressible policy.
    SSA_CHECK(config_.backpressure == BackpressurePolicy::kReject);
    ring_ = std::make_unique<MpmcRingQueue<ServingRequest>>(
        config_.queue_capacity);
  } else {
    locking_queue_ = std::make_unique<BoundedQueue<ServingRequest>>(
        config_.queue_capacity, config_.backpressure);
  }
  SSA_CHECK(config_.num_plan_lanes >= 0);
  if (config_.num_plan_lanes >= 1) {
    lanes_.reserve(static_cast<size_t>(config_.num_plan_lanes));
    for (int e = 0; e < config_.num_plan_lanes; ++e) {
      lanes_.push_back(engine_.NewPlanLane());
    }
    // Worker threads start here and idle until the executor dispatches an
    // epoch slot; they only ever run the const PlanCaptured half on their
    // own lane's scratch.
    lane_pool_ = std::make_unique<LanePool>(
        config_.num_plan_lanes,
        [this](int lane, int64_t ticket) { RunLane(lane, ticket); });
  }
  SetupObservability();
}

void AuctionServer::SetupObservability() {
  const ObsConfig& obs = config_.obs;
  if (obs.trace.sample_every > 0) {
    tracer_ = std::make_unique<Tracer>(obs.trace);
    engine_.set_tracer(tracer_.get());
    // Distinct kShardPlan track base per lane, so Perfetto shows which lane
    // planned each shard slice (the internal lane keeps base 200).
    for (size_t e = 0; e < lanes_.size(); ++e) {
      lanes_[e]->set_trace_track_base(200 + 100 * (static_cast<int>(e) + 1));
    }
  }
  if (!obs.metrics) return;
  registry_.RegisterExternal("serving_queue_wait_us", "",
                             "Queue wait per request, microseconds",
                             &queue_wait_us_);
  registry_.RegisterExternal("serving_auction_us", "",
                             "Planning (capture + plan) per query, "
                             "microseconds",
                             &auction_us_);
  registry_.RegisterExternal("serving_settlement_us", "",
                             "Settlement per query, microseconds",
                             &settlement_us_);
  registry_.RegisterExternal("serving_end_to_end_us", "",
                             "Submit-to-settled per query, microseconds",
                             &end_to_end_us_);
  batch_size_hist_ = registry_.GetHistogram(
      "serving_batch_queries", "", "Micro-batch size in queries");
  for (int e = 0; e < config_.num_plan_lanes; ++e) {
    lane_barrier_wait_us_.push_back(registry_.GetHistogram(
        "serving_barrier_wait_us", LaneLabel(e),
        "Executor wait at the ordered commit barrier, by the lane that "
        "planned the slot, microseconds"));
    lane_plans_total_.push_back(registry_.GetCounter(
        "serving_lane_plans_total", LaneLabel(e),
        "Epoch slots planned per lane (lane occupancy)"));
  }
  // Pull-side collector: admission/completion counters and queue depth.
  // Everything read here is atomic or guarded by the source's own mutex, so
  // the reporter thread may snapshot while producers and the executor run.
  registry_.AddCollector([this](MetricsSnapshot* snap) {
    auto add = [snap](const char* name, MetricSample::Kind kind, double v) {
      MetricSample s;
      s.name = name;
      s.kind = kind;
      s.value = v;
      snap->samples.push_back(std::move(s));
    };
    add("serving_accepted_total", MetricSample::kCounter,
        static_cast<double>(accepted()));
    add("serving_rejected_total", MetricSample::kCounter,
        static_cast<double>(rejected()));
    add("serving_dropped_oldest_total", MetricSample::kCounter,
        static_cast<double>(dropped_oldest()));
    add("serving_completed_total", MetricSample::kCounter,
        static_cast<double>(completed()));
    add("serving_batches_total", MetricSample::kCounter,
        static_cast<double>(batches()));
    add("serving_rebalances_total", MetricSample::kCounter,
        static_cast<double>(rebalances()));
    const size_t depth = locking_queue_ != nullptr ? locking_queue_->size()
                                                   : ring_->SizeApprox();
    add("serving_queue_depth", MetricSample::kGauge,
        static_cast<double>(depth));
    if (tracer_ != nullptr) {
      add("trace_spans_recorded_total", MetricSample::kCounter,
          static_cast<double>(tracer_->spans_recorded()));
    }
  });
}

AuctionServer::~AuctionServer() { Stop(); }

void AuctionServer::set_on_complete(CompletionFn fn) {
  SSA_CHECK(!started_);
  on_complete_ = std::move(fn);
}

Status AuctionServer::Start() {
  SSA_CHECK(!started_);
  const DurabilityConfig& durability = config_.durability;
  if (!durability.log_path.empty()) {
    if (durability.recover_on_start) {
      RecoveryOptions options;
      options.checkpoint_path = durability.checkpoint_path;
      options.log_path = durability.log_path;
      options.stream = QueryStream::kExternal;
      // Replay-verification demands bitwise re-execution; batched
      // settlement's batch boundaries are timing-dependent, so only the
      // deterministic-replay mode can promise the log matches a re-run.
      options.verify_outcomes = config_.mode == ServingMode::kDeterministicReplay;
      SSA_RETURN_IF_ERROR(RecoverEngine(&engine_, options, &recovery_));
    }
    LogWriterOptions writer_options = durability.writer;
    if (config_.obs.metrics) {
      writer_options.fsync_us = registry_.GetHistogram(
          "durability_fsync_us", "", "Settlement-log fsync, microseconds");
      writer_options.commit_records = registry_.GetHistogram(
          "durability_commit_records", "", "Records per group commit");
    }
    writer_options.tracer = tracer_.get();
    SSA_ASSIGN_OR_RETURN(
        log_writer_,
        SettlementLogWriter::Open(
            durability.log_path, writer_options,
            static_cast<uint64_t>(engine_.auctions_run()) + 1,
            durability.injector));
  }
  // Recovery (if any) repositioned the engine; the settled token starts
  // there, so kAtLeastSeq reads issued before the first new settlement gate
  // on the recovered position.
  settled_seq_.store(static_cast<uint64_t>(engine_.auctions_run()),
                     std::memory_order_release);
  if (config_.obs.metrics) {
    // Recovery is done and final; publish it once as gauges.
    registry_
        .GetGauge("recovery_checkpoint_seq", "",
                   "Checkpoint sequence recovery restored from")
        ->Set(static_cast<int64_t>(recovery_.checkpoint_seq));
    registry_
        .GetGauge("recovery_records_replayed", "",
                   "Settlement records replayed at Start")
        ->Set(recovery_.records_replayed);
    registry_
        .GetGauge("recovery_records_skipped", "",
                   "Pre-checkpoint records skipped at Start")
        ->Set(recovery_.records_skipped);
    registry_
        .GetGauge("recovery_truncated_bytes", "",
                   "Corrupt log-tail bytes truncated at Start")
        ->Set(static_cast<int64_t>(recovery_.truncated_bytes));
    registry_
        .GetGauge("recovery_verify_mismatches", "",
                   "Replay verification mismatches at Start")
        ->Set(recovery_.verify_mismatches);
    registry_
        .GetGauge("recovery_recovered_seq", "",
                   "Engine position after recovery (last durable auction)")
        ->Set(static_cast<int64_t>(recovery_.recovered_seq));
    registry_
        .GetGauge("recovery_tail_truncated", "",
                   "1 when recovery discarded a torn/corrupt log tail")
        ->Set(static_cast<int64_t>(recovery_.tail_truncated ? 1 : 0));
    PublishEngineGauges();
  }
  if (config_.obs.report_interval.count() > 0) {
    MetricsReporter::Options reporter_options;
    reporter_options.interval = config_.obs.report_interval;
    reporter_options.output_path = config_.obs.report_path;
    reporter_options.on_snapshot = config_.obs.report_callback;
    reporter_ =
        std::make_unique<MetricsReporter>(&registry_, reporter_options);
    reporter_->Start();
  }
  started_ = true;
  executor_ = std::thread([this] { ExecutorLoop(); });
  return Status::Ok();
}

void AuctionServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (locking_queue_ != nullptr) {
    locking_queue_->Close();
  } else {
    ring_closed_.store(true, std::memory_order_release);
  }
  executor_.join();
  // The executor has settled (and staged) everything admitted; push the
  // staged suffix to the OS so a clean shutdown loses nothing.
  if (log_writer_ != nullptr) {
    const Status status = log_writer_->Flush();
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(log_status_mu_);
      if (log_status_.ok()) log_status_ = status;
    }
  }
  // Executor joined: publishing the final engine/log state is race-free,
  // and the reporter's terminal snapshot (inside Stop) sees it.
  if (config_.obs.metrics) PublishEngineGauges();
  if (reporter_ != nullptr) reporter_->Stop();
}

void AuctionServer::PublishEngineGauges() {
  if (!config_.obs.metrics) return;
  const int num_shards = engine_.num_shards();
  for (int s = 0; s < num_shards; ++s) {
    const ShardedAuctionEngine::ShardStats stats = engine_.shard_stats(s);
    const std::string label = ShardLabel(s);
    registry_
        .GetGauge("engine_shard_capture_ns", label,
                  "Bid-capture wall time per shard since the last "
                  "repartition, ns")
        ->Set(stats.capture_ns);
    registry_
        .GetGauge("engine_shard_phase_ns", label,
                  "Internal-lane shard-phase wall time since the last "
                  "repartition, ns")
        ->Set(stats.phase_ns);
    registry_
        .GetGauge("engine_shard_model_cost", label,
                  "Cost model's predicted per-auction cost for the shard's "
                  "range, ns")
        ->Set(stats.model_cost);
    registry_
        .GetGauge("engine_shard_advertisers", label,
                  "Advertisers currently owned by the shard")
        ->Set(static_cast<int64_t>(stats.end - stats.begin));
  }
  registry_
      .GetGauge("engine_cache_hits_total", "",
                "Internal-lane compiled-bids cache hits")
      ->Set(engine_.cache_hits());
  registry_
      .GetGauge("engine_cache_misses_total", "",
                "Internal-lane compiled-bids cache misses")
      ->Set(engine_.cache_misses());
  for (size_t e = 0; e < lanes_.size(); ++e) {
    const std::string label = LaneLabel(static_cast<int>(e));
    registry_
        .GetGauge("lane_cache_hits_total", label,
                  "Per-lane compiled-bids cache hits")
        ->Set(lanes_[e]->cache_hits());
    registry_
        .GetGauge("lane_cache_misses_total", label,
                  "Per-lane compiled-bids cache misses")
        ->Set(lanes_[e]->cache_misses());
  }
  if (log_writer_ != nullptr) {
    registry_
        .GetGauge("durability_records_appended_total", "",
                  "Settlement records appended to the log")
        ->Set(log_writer_->records_appended());
    registry_
        .GetGauge("durability_commits_total", "", "Log group commits")
        ->Set(log_writer_->commits());
    registry_
        .GetGauge("durability_syncs_total", "", "Log fsyncs")
        ->Set(log_writer_->syncs());
    registry_
        .GetGauge("durability_bytes_written_total", "", "Log bytes written")
        ->Set(static_cast<int64_t>(log_writer_->bytes_written()));
    registry_
        .GetGauge("durability_checkpoint_age", "",
                  "Auctions settled since the recovered checkpoint (crash "
                  "replay cost)")
        ->Set(checkpoint_age());
    registry_
        .GetGauge("durability_sync_mode", "",
                  "Configured LogSyncMode (0=buffered, 1=group fsync, "
                  "2=fsync each)")
        ->Set(static_cast<int64_t>(config_.durability.writer.sync));
    registry_
        .GetGauge("durability_group_records", "",
                  "Configured group-commit threshold, records")
        ->Set(static_cast<int64_t>(config_.durability.writer.group_records));
  }
}

Status AuctionServer::WriteCheckpoint() const {
  if (config_.durability.checkpoint_path.empty()) {
    return Status::FailedPrecondition("no checkpoint_path configured");
  }
  return engine_.WriteCheckpoint(config_.durability.checkpoint_path);
}

Status AuctionServer::log_status() const {
  std::lock_guard<std::mutex> lock(log_status_mu_);
  return log_status_;
}

void AuctionServer::LogSettlement(const AuctionOutcome& outcome,
                                  uint64_t trace_seq) {
  // The read-your-writes token advances for every settled auction, log sink
  // or not — replicated reads gate on it even when durability is off.
  settled_seq_.store(static_cast<uint64_t>(engine_.auctions_run()),
                     std::memory_order_release);
  if (log_writer_ == nullptr) return;
  const bool traced = tracer_ != nullptr && trace_seq != 0;
  const uint64_t t0 = traced ? Tracer::NowNs() : 0;
  const Status status = log_writer_->Append(SettlementRecord::FromOutcome(
      static_cast<uint64_t>(engine_.auctions_run()), outcome));
  if (traced) {
    tracer_->RecordSpan(trace_seq, TraceStage::kLogAppend, /*track=*/0, t0,
                        Tracer::NowNs());
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(log_status_mu_);
    if (log_status_.ok()) log_status_ = status;
  }
}

QueuePushResult AuctionServer::Submit(Query query) {
  ServingRequest request;
  request.query = std::move(query);
  request.admitted_at = SteadyClock::now();
  if (tracer_ != nullptr) {
    // Deterministic 1-in-N on the admission sequence: the same queries are
    // sampled on every run, so replay comparisons carry identical
    // instrumentation load.
    request.trace_seq = tracer_->Sample(
        admissions_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  if (locking_queue_ != nullptr) {
    return locking_queue_->Push(std::move(request));
  }
  // The in-flight window covers the closed-check through the TryPush
  // return: the executor will not exit while any Submit is inside it, so a
  // push that races with Stop() is still drained.
  submits_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (ring_closed_.load(std::memory_order_acquire)) {
    submits_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return QueuePushResult::kClosed;
  }
  const bool pushed = ring_->TryPush(std::move(request));
  submits_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (pushed) {
    ring_accepted_.fetch_add(1, std::memory_order_relaxed);
    return QueuePushResult::kAccepted;
  }
  ring_rejected_.fetch_add(1, std::memory_order_relaxed);
  return QueuePushResult::kRejected;
}

int64_t AuctionServer::accepted() const {
  return locking_queue_ != nullptr
             ? locking_queue_->accepted()
             : ring_accepted_.load(std::memory_order_relaxed);
}

int64_t AuctionServer::rejected() const {
  return locking_queue_ != nullptr
             ? locking_queue_->rejected()
             : ring_rejected_.load(std::memory_order_relaxed);
}

int64_t AuctionServer::dropped_oldest() const {
  return locking_queue_ != nullptr ? locking_queue_->dropped_oldest() : 0;
}

bool AuctionServer::PopBatchLockFree(std::vector<ServingRequest>* out) {
  ServingRequest request;
  int round = 0;
  // Wait (poll) for the batch's first request.
  while (!ring_->TryPop(&request)) {
    if (ring_closed_.load(std::memory_order_acquire) &&
        submits_in_flight_.load(std::memory_order_acquire) == 0) {
      // Closed with no Submit mid-push: every accepted request is fully
      // published, so one final failed pop means drained-and-done.
      if (ring_->TryPop(&request)) break;
      return false;
    }
    Backoff(&round);
  }
  out->push_back(std::move(request));
  // Size-or-deadline collection, mirroring BoundedQueue::PopBatch.
  const auto deadline = SteadyClock::now() + config_.batch_deadline;
  while (static_cast<int>(out->size()) < config_.max_batch_size) {
    if (ring_->TryPop(&request)) {
      out->push_back(std::move(request));
      continue;
    }
    if (ring_closed_.load(std::memory_order_acquire) ||
        SteadyClock::now() >= deadline) {
      break;
    }
    std::this_thread::yield();
  }
  return true;
}

void AuctionServer::ExecutorLoop() {
  std::vector<ServingRequest> batch;
  for (;;) {
    batch.clear();
    const bool alive =
        locking_queue_ != nullptr
            ? locking_queue_->PopBatch(&batch,
                                       static_cast<size_t>(
                                           config_.max_batch_size),
                                       config_.batch_deadline)
            : PopBatchLockFree(&batch);
    if (!alive) return;  // closed and drained
    // Batch envelope span, stamped with the batch's first sampled query (a
    // batch with no sampled query records no envelope).
    uint64_t batch_trace_seq = 0;
    if (tracer_ != nullptr) {
      for (const ServingRequest& r : batch) {
        if (r.trace_seq != 0) {
          batch_trace_seq = r.trace_seq;
          break;
        }
      }
    }
    const uint64_t batch_t0 = batch_trace_seq != 0 ? Tracer::NowNs() : 0;
    RunBatch(&batch);
    if (batch_trace_seq != 0) {
      tracer_->RecordSpan(batch_trace_seq, TraceStage::kBatch, /*track=*/0,
                          batch_t0, Tracer::NowNs());
    }
    // Epoch boundary: the batch is fully settled and every lane is idle (the
    // settler awaited each slot), so no plan or capture is in flight —
    // exactly Repartition's precondition. Never inside a batch.
    MaybeRebalance();
    // Per-batch gauge refresh: shard stats, lane caches, log counters. Off
    // the per-query path; plain engine state is only ever read here, on the
    // executor, which is what keeps registry snapshots race-free.
    PublishEngineGauges();
  }
}

void AuctionServer::MaybeRebalance() {
  if (config_.rebalance.every <= 0) return;
  if (!rebalancer_.Due(engine_.auctions_run())) return;
  if (engine_.RebalanceShards(config_.rebalance.min_imbalance)) {
    rebalances_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AuctionServer::RunBatch(std::vector<ServingRequest>* batch) {
  const auto popped_at = SteadyClock::now();
  for (const ServingRequest& r : *batch) {
    queue_wait_us_.Record(ElapsedUs(r.admitted_at, popped_at));
    if (tracer_ != nullptr && r.trace_seq != 0) {
      tracer_->RecordSpan(r.trace_seq, TraceStage::kQueueWait, /*track=*/0,
                          ToNs(r.admitted_at), ToNs(popped_at));
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (batch_size_hist_ != nullptr) batch_size_hist_->Record(batch->size());

  if (lane_pool_ != nullptr) {
    RunBatchWithLanes(batch);
    return;
  }

  WallTimer timer;
  if (config_.mode == ServingMode::kDeterministicReplay) {
    // Plan+settle interleaved per query: batch boundaries group work but
    // never reorder it, so the trajectory equals the serial engine loop.
    for (ServingRequest& r : *batch) {
      const bool traced = tracer_ != nullptr && r.trace_seq != 0;
      plans_.resize(1);
      timer.Reset();
      uint64_t t0 = traced ? Tracer::NowNs() : 0;
      engine_.PlanAuction(r.query, &plans_[0], r.trace_seq);
      if (traced) {
        tracer_->RecordSpan(r.trace_seq, TraceStage::kPlan, /*track=*/0, t0,
                            Tracer::NowNs());
      }
      auction_us_.Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
      timer.Reset();
      t0 = traced ? Tracer::NowNs() : 0;
      const AuctionOutcome& outcome = engine_.SettlePlanned(&plans_[0]);
      LogSettlement(outcome, r.trace_seq);
      settlement_us_.Record(
          static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
      const auto settled_at = SteadyClock::now();
      if (traced) {
        tracer_->RecordSpan(r.trace_seq, TraceStage::kSettle, /*track=*/0,
                            t0, ToNs(settled_at));
        tracer_->RecordSpan(r.trace_seq, TraceStage::kQuery, /*track=*/0,
                            ToNs(r.admitted_at), ToNs(settled_at));
      }
      end_to_end_us_.Record(ElapsedUs(r.admitted_at, settled_at));
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (on_complete_) on_complete_(outcome);
    }
    return;
  }

  // Batched settlement: plan the whole batch against batch-start account
  // state, then settle in arrival order in one pass.
  plans_.resize(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    const ServingRequest& r = (*batch)[i];
    const bool traced = tracer_ != nullptr && r.trace_seq != 0;
    timer.Reset();
    const uint64_t t0 = traced ? Tracer::NowNs() : 0;
    engine_.PlanAuction(r.query, &plans_[i], r.trace_seq);
    if (traced) {
      tracer_->RecordSpan(r.trace_seq, TraceStage::kPlan, /*track=*/0, t0,
                          Tracer::NowNs());
    }
    auction_us_.Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    const ServingRequest& r = (*batch)[i];
    const bool traced = tracer_ != nullptr && r.trace_seq != 0;
    timer.Reset();
    const uint64_t t0 = traced ? Tracer::NowNs() : 0;
    const AuctionOutcome& outcome = engine_.SettlePlanned(&plans_[i]);
    LogSettlement(outcome, r.trace_seq);
    settlement_us_.Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
    const auto settled_at = SteadyClock::now();
    if (traced) {
      tracer_->RecordSpan(r.trace_seq, TraceStage::kSettle, /*track=*/0, t0,
                          ToNs(settled_at));
      tracer_->RecordSpan(r.trace_seq, TraceStage::kQuery, /*track=*/0,
                          ToNs(r.admitted_at), ToNs(settled_at));
    }
    end_to_end_us_.Record(ElapsedUs(r.admitted_at, settled_at));
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (on_complete_) on_complete_(outcome);
  }
}

void AuctionServer::SettleSlot(std::vector<ServingRequest>* batch, size_t i) {
  const ServingRequest& r = (*batch)[i];
  const bool traced = tracer_ != nullptr && r.trace_seq != 0;
  // auction_us spans both planning halves: the executor's capture plus the
  // lane's pure plan — the same work the in-thread path times as one span.
  auction_us_.Record(capture_us_[i] + plan_us_[i]);
  WallTimer timer;
  const uint64_t t0 = traced ? Tracer::NowNs() : 0;
  const AuctionOutcome& outcome = engine_.SettlePlanned(&plans_[i]);
  LogSettlement(outcome, r.trace_seq);
  settlement_us_.Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
  const auto settled_at = SteadyClock::now();
  if (traced) {
    tracer_->RecordSpan(r.trace_seq, TraceStage::kSettle, /*track=*/0, t0,
                        ToNs(settled_at));
    tracer_->RecordSpan(r.trace_seq, TraceStage::kQuery, /*track=*/0,
                        ToNs(r.admitted_at), ToNs(settled_at));
  }
  end_to_end_us_.Record(ElapsedUs(r.admitted_at, settled_at));
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (on_complete_) on_complete_(outcome);
}

void AuctionServer::RunLane(int lane, int64_t slot) {
  const size_t i = static_cast<size_t>(slot);
  const uint64_t trace_seq = (*epoch_batch_)[i].trace_seq;
  const bool traced = tracer_ != nullptr && trace_seq != 0;
  WallTimer timer;
  const uint64_t t0 = traced ? Tracer::NowNs() : 0;
  // Pure planning on this lane's private scratch: reads the executor's
  // captured bids (published by Dispatch), writes only lanes_[lane] and
  // plans_[i] (published to the settler by MarkReady).
  engine_.PlanCaptured((*epoch_batch_)[i].query, captures_[i],
                       lanes_[static_cast<size_t>(lane)].get(), &plans_[i],
                       trace_seq);
  if (traced) {
    tracer_->RecordSpan(trace_seq, TraceStage::kPlan, /*track=*/1 + lane, t0,
                        Tracer::NowNs());
  }
  if (!lane_plans_total_.empty()) {
    lane_plans_total_[static_cast<size_t>(lane)]->Increment();
  }
  plan_us_[i] = static_cast<uint64_t>(timer.ElapsedMillis() * 1e3);
  // Published to the executor by MarkReady's mutex — lets the settler
  // attribute its barrier wait to the lane that planned the slot.
  slot_lane_[i] = lane;
  settle_barrier_.MarkReady(slot);
}

void AuctionServer::RunBatchWithLanes(std::vector<ServingRequest>* batch) {
  const size_t b = batch->size();
  plans_.resize(b);
  captures_.resize(b);
  capture_us_.assign(b, 0);
  plan_us_.assign(b, 0);
  slot_lane_.assign(b, -1);
  epoch_batch_ = batch;
  settle_barrier_.Reset(static_cast<int64_t>(b));

  // Capture instrumentation (executor track) and per-lane barrier-wait
  // attribution: AwaitReady's blocked time is charged to the lane that
  // planned the slot (slot_lane_, published by MarkReady) — the exact
  // signal ROADMAP item 2 wants rebalancing to consume.
  auto capture_slot = [&](size_t i) {
    const ServingRequest& r = (*batch)[i];
    const bool traced = tracer_ != nullptr && r.trace_seq != 0;
    WallTimer timer;
    const uint64_t t0 = traced ? Tracer::NowNs() : 0;
    engine_.CaptureBids(r.query, &captures_[i], r.trace_seq);
    if (traced) {
      tracer_->RecordSpan(r.trace_seq, TraceStage::kCapture, /*track=*/0, t0,
                          Tracer::NowNs());
    }
    capture_us_[i] = static_cast<uint64_t>(timer.ElapsedMillis() * 1e3);
  };
  auto await_slot = [&](size_t i) {
    const ServingRequest& r = (*batch)[i];
    const bool traced = tracer_ != nullptr && r.trace_seq != 0;
    const bool timed = traced || !lane_barrier_wait_us_.empty();
    const uint64_t t0 = timed ? Tracer::NowNs() : 0;
    settle_barrier_.AwaitReady(static_cast<int64_t>(i));
    if (timed) {
      const uint64_t t1 = Tracer::NowNs();
      if (traced) {
        tracer_->RecordSpan(r.trace_seq, TraceStage::kBarrierWait,
                            /*track=*/0, t0, t1);
      }
      const int lane = slot_lane_[i];  // valid after AwaitReady
      if (!lane_barrier_wait_us_.empty() && lane >= 0) {
        lane_barrier_wait_us_[static_cast<size_t>(lane)]->Record(
            (t1 - t0) / 1000);
      }
    }
  };

  if (config_.mode == ServingMode::kDeterministicReplay) {
    // Replay demands capture i+1 see slot i fully settled (bidding programs
    // read accounts and their own outcome-updated state), so each slot makes
    // a full capture -> plan-on-lane -> settle round trip. Values are
    // bitwise-equal to the serial loop for any lane count; per-lane cache
    // divergence affects timing only.
    for (size_t i = 0; i < b; ++i) {
      capture_slot(i);
      lane_pool_->Dispatch(static_cast<int64_t>(i));
      await_slot(i);
      SettleSlot(batch, i);
    }
  } else {
    // Batched settlement: every capture reads batch-start account state, so
    // all captures precede the first settlement — same semantics as the
    // in-thread batched path. The overlap is everything else: capture i+1
    // proceeds while lanes plan earlier slots, and the settler drains slot i
    // while lanes still plan slots j > i.
    for (size_t i = 0; i < b; ++i) {
      capture_slot(i);
      lane_pool_->Dispatch(static_cast<int64_t>(i));
    }
    for (size_t i = 0; i < b; ++i) {
      await_slot(i);
      SettleSlot(batch, i);
    }
  }
  epoch_batch_ = nullptr;
}

}  // namespace ssa
