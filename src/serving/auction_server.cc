#include "serving/auction_server.h"

#include <utility>

#include "util/timer.h"

namespace ssa {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Non-negative elapsed microseconds between two steady-clock points.
uint64_t ElapsedUs(SteadyClock::time_point from, SteadyClock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us > 0 ? static_cast<uint64_t>(us) : 0;
}

/// Executor-side poll backoff for the lock-free queue: stay hot for a few
/// rounds, then yield the core, then sleep — bounds idle burn at ~20 wakeups
/// per millisecond without adding more than ~50us of pop latency.
void Backoff(int* round) {
  if (*round < 64) {
    // hot spin: the producer is probably mid-push
  } else if (*round < 256) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ++*round;
}

}  // namespace

AuctionServer::AuctionServer(
    const ServerConfig& config, Workload workload,
    std::vector<std::unique_ptr<BiddingStrategy>> strategies)
    : config_(config),
      engine_(config.engine, std::move(workload), std::move(strategies)),
      rebalancer_(config.rebalance) {
  SSA_CHECK(config_.queue_capacity >= 1);
  SSA_CHECK(config_.max_batch_size >= 1);
  if (config_.queue_impl == QueueImpl::kLockFree) {
    // A lock-free ring can neither block a producer nor atomically evict
    // its oldest element; reject is the only expressible policy.
    SSA_CHECK(config_.backpressure == BackpressurePolicy::kReject);
    ring_ = std::make_unique<MpmcRingQueue<ServingRequest>>(
        config_.queue_capacity);
  } else {
    locking_queue_ = std::make_unique<BoundedQueue<ServingRequest>>(
        config_.queue_capacity, config_.backpressure);
  }
  SSA_CHECK(config_.num_plan_lanes >= 0);
  if (config_.num_plan_lanes >= 1) {
    lanes_.reserve(static_cast<size_t>(config_.num_plan_lanes));
    for (int e = 0; e < config_.num_plan_lanes; ++e) {
      lanes_.push_back(engine_.NewPlanLane());
    }
    // Worker threads start here and idle until the executor dispatches an
    // epoch slot; they only ever run the const PlanCaptured half on their
    // own lane's scratch.
    lane_pool_ = std::make_unique<LanePool>(
        config_.num_plan_lanes,
        [this](int lane, int64_t ticket) { RunLane(lane, ticket); });
  }
}

AuctionServer::~AuctionServer() { Stop(); }

void AuctionServer::set_on_complete(CompletionFn fn) {
  SSA_CHECK(!started_);
  on_complete_ = std::move(fn);
}

Status AuctionServer::Start() {
  SSA_CHECK(!started_);
  const DurabilityConfig& durability = config_.durability;
  if (!durability.log_path.empty()) {
    if (durability.recover_on_start) {
      RecoveryOptions options;
      options.checkpoint_path = durability.checkpoint_path;
      options.log_path = durability.log_path;
      options.stream = QueryStream::kExternal;
      // Replay-verification demands bitwise re-execution; batched
      // settlement's batch boundaries are timing-dependent, so only the
      // deterministic-replay mode can promise the log matches a re-run.
      options.verify_outcomes = config_.mode == ServingMode::kDeterministicReplay;
      SSA_RETURN_IF_ERROR(RecoverEngine(&engine_, options, &recovery_));
    }
    SSA_ASSIGN_OR_RETURN(
        log_writer_,
        SettlementLogWriter::Open(
            durability.log_path, durability.writer,
            static_cast<uint64_t>(engine_.auctions_run()) + 1,
            durability.injector));
  }
  started_ = true;
  executor_ = std::thread([this] { ExecutorLoop(); });
  return Status::Ok();
}

void AuctionServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  if (locking_queue_ != nullptr) {
    locking_queue_->Close();
  } else {
    ring_closed_.store(true, std::memory_order_release);
  }
  executor_.join();
  // The executor has settled (and staged) everything admitted; push the
  // staged suffix to the OS so a clean shutdown loses nothing.
  if (log_writer_ != nullptr) {
    const Status status = log_writer_->Flush();
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(log_status_mu_);
      if (log_status_.ok()) log_status_ = status;
    }
  }
}

Status AuctionServer::WriteCheckpoint() const {
  if (config_.durability.checkpoint_path.empty()) {
    return Status::FailedPrecondition("no checkpoint_path configured");
  }
  return engine_.WriteCheckpoint(config_.durability.checkpoint_path);
}

Status AuctionServer::log_status() const {
  std::lock_guard<std::mutex> lock(log_status_mu_);
  return log_status_;
}

void AuctionServer::LogSettlement(const AuctionOutcome& outcome) {
  if (log_writer_ == nullptr) return;
  const Status status = log_writer_->Append(SettlementRecord::FromOutcome(
      static_cast<uint64_t>(engine_.auctions_run()), outcome));
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(log_status_mu_);
    if (log_status_.ok()) log_status_ = status;
  }
}

QueuePushResult AuctionServer::Submit(Query query) {
  ServingRequest request;
  request.query = std::move(query);
  request.admitted_at = SteadyClock::now();
  if (locking_queue_ != nullptr) {
    return locking_queue_->Push(std::move(request));
  }
  // The in-flight window covers the closed-check through the TryPush
  // return: the executor will not exit while any Submit is inside it, so a
  // push that races with Stop() is still drained.
  submits_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (ring_closed_.load(std::memory_order_acquire)) {
    submits_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return QueuePushResult::kClosed;
  }
  const bool pushed = ring_->TryPush(std::move(request));
  submits_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (pushed) {
    ring_accepted_.fetch_add(1, std::memory_order_relaxed);
    return QueuePushResult::kAccepted;
  }
  ring_rejected_.fetch_add(1, std::memory_order_relaxed);
  return QueuePushResult::kRejected;
}

int64_t AuctionServer::accepted() const {
  return locking_queue_ != nullptr
             ? locking_queue_->accepted()
             : ring_accepted_.load(std::memory_order_relaxed);
}

int64_t AuctionServer::rejected() const {
  return locking_queue_ != nullptr
             ? locking_queue_->rejected()
             : ring_rejected_.load(std::memory_order_relaxed);
}

int64_t AuctionServer::dropped_oldest() const {
  return locking_queue_ != nullptr ? locking_queue_->dropped_oldest() : 0;
}

bool AuctionServer::PopBatchLockFree(std::vector<ServingRequest>* out) {
  ServingRequest request;
  int round = 0;
  // Wait (poll) for the batch's first request.
  while (!ring_->TryPop(&request)) {
    if (ring_closed_.load(std::memory_order_acquire) &&
        submits_in_flight_.load(std::memory_order_acquire) == 0) {
      // Closed with no Submit mid-push: every accepted request is fully
      // published, so one final failed pop means drained-and-done.
      if (ring_->TryPop(&request)) break;
      return false;
    }
    Backoff(&round);
  }
  out->push_back(std::move(request));
  // Size-or-deadline collection, mirroring BoundedQueue::PopBatch.
  const auto deadline = SteadyClock::now() + config_.batch_deadline;
  while (static_cast<int>(out->size()) < config_.max_batch_size) {
    if (ring_->TryPop(&request)) {
      out->push_back(std::move(request));
      continue;
    }
    if (ring_closed_.load(std::memory_order_acquire) ||
        SteadyClock::now() >= deadline) {
      break;
    }
    std::this_thread::yield();
  }
  return true;
}

void AuctionServer::ExecutorLoop() {
  std::vector<ServingRequest> batch;
  for (;;) {
    batch.clear();
    const bool alive =
        locking_queue_ != nullptr
            ? locking_queue_->PopBatch(&batch,
                                       static_cast<size_t>(
                                           config_.max_batch_size),
                                       config_.batch_deadline)
            : PopBatchLockFree(&batch);
    if (!alive) return;  // closed and drained
    RunBatch(&batch);
    // Epoch boundary: the batch is fully settled and every lane is idle (the
    // settler awaited each slot), so no plan or capture is in flight —
    // exactly Repartition's precondition. Never inside a batch.
    MaybeRebalance();
  }
}

void AuctionServer::MaybeRebalance() {
  if (config_.rebalance.every <= 0) return;
  if (!rebalancer_.Due(engine_.auctions_run())) return;
  if (engine_.RebalanceShards(config_.rebalance.min_imbalance)) {
    rebalances_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AuctionServer::RunBatch(std::vector<ServingRequest>* batch) {
  const auto popped_at = SteadyClock::now();
  for (const ServingRequest& r : *batch) {
    queue_wait_us_.Record(ElapsedUs(r.admitted_at, popped_at));
  }
  batches_.fetch_add(1, std::memory_order_relaxed);

  if (lane_pool_ != nullptr) {
    RunBatchWithLanes(batch);
    return;
  }

  WallTimer timer;
  if (config_.mode == ServingMode::kDeterministicReplay) {
    // Plan+settle interleaved per query: batch boundaries group work but
    // never reorder it, so the trajectory equals the serial engine loop.
    for (ServingRequest& r : *batch) {
      plans_.resize(1);
      timer.Reset();
      engine_.PlanAuction(r.query, &plans_[0]);
      auction_us_.Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
      timer.Reset();
      const AuctionOutcome& outcome = engine_.SettlePlanned(&plans_[0]);
      LogSettlement(outcome);
      settlement_us_.Record(
          static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
      end_to_end_us_.Record(ElapsedUs(r.admitted_at, SteadyClock::now()));
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (on_complete_) on_complete_(outcome);
    }
    return;
  }

  // Batched settlement: plan the whole batch against batch-start account
  // state, then settle in arrival order in one pass.
  plans_.resize(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    timer.Reset();
    engine_.PlanAuction((*batch)[i].query, &plans_[i]);
    auction_us_.Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
  }
  for (size_t i = 0; i < batch->size(); ++i) {
    timer.Reset();
    const AuctionOutcome& outcome = engine_.SettlePlanned(&plans_[i]);
    LogSettlement(outcome);
    settlement_us_.Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
    end_to_end_us_.Record(
        ElapsedUs((*batch)[i].admitted_at, SteadyClock::now()));
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (on_complete_) on_complete_(outcome);
  }
}

void AuctionServer::SettleSlot(std::vector<ServingRequest>* batch, size_t i) {
  // auction_us spans both planning halves: the executor's capture plus the
  // lane's pure plan — the same work the in-thread path times as one span.
  auction_us_.Record(capture_us_[i] + plan_us_[i]);
  WallTimer timer;
  const AuctionOutcome& outcome = engine_.SettlePlanned(&plans_[i]);
  LogSettlement(outcome);
  settlement_us_.Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1e3));
  end_to_end_us_.Record(
      ElapsedUs((*batch)[i].admitted_at, SteadyClock::now()));
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (on_complete_) on_complete_(outcome);
}

void AuctionServer::RunLane(int lane, int64_t slot) {
  const size_t i = static_cast<size_t>(slot);
  WallTimer timer;
  // Pure planning on this lane's private scratch: reads the executor's
  // captured bids (published by Dispatch), writes only lanes_[lane] and
  // plans_[i] (published to the settler by MarkReady).
  engine_.PlanCaptured((*epoch_batch_)[i].query, captures_[i],
                       lanes_[static_cast<size_t>(lane)].get(), &plans_[i]);
  plan_us_[i] = static_cast<uint64_t>(timer.ElapsedMillis() * 1e3);
  settle_barrier_.MarkReady(slot);
}

void AuctionServer::RunBatchWithLanes(std::vector<ServingRequest>* batch) {
  const size_t b = batch->size();
  plans_.resize(b);
  captures_.resize(b);
  capture_us_.assign(b, 0);
  plan_us_.assign(b, 0);
  epoch_batch_ = batch;
  settle_barrier_.Reset(static_cast<int64_t>(b));

  WallTimer timer;
  if (config_.mode == ServingMode::kDeterministicReplay) {
    // Replay demands capture i+1 see slot i fully settled (bidding programs
    // read accounts and their own outcome-updated state), so each slot makes
    // a full capture -> plan-on-lane -> settle round trip. Values are
    // bitwise-equal to the serial loop for any lane count; per-lane cache
    // divergence affects timing only.
    for (size_t i = 0; i < b; ++i) {
      timer.Reset();
      engine_.CaptureBids((*batch)[i].query, &captures_[i]);
      capture_us_[i] = static_cast<uint64_t>(timer.ElapsedMillis() * 1e3);
      lane_pool_->Dispatch(static_cast<int64_t>(i));
      settle_barrier_.AwaitReady(static_cast<int64_t>(i));
      SettleSlot(batch, i);
    }
  } else {
    // Batched settlement: every capture reads batch-start account state, so
    // all captures precede the first settlement — same semantics as the
    // in-thread batched path. The overlap is everything else: capture i+1
    // proceeds while lanes plan earlier slots, and the settler drains slot i
    // while lanes still plan slots j > i.
    for (size_t i = 0; i < b; ++i) {
      timer.Reset();
      engine_.CaptureBids((*batch)[i].query, &captures_[i]);
      capture_us_[i] = static_cast<uint64_t>(timer.ElapsedMillis() * 1e3);
      lane_pool_->Dispatch(static_cast<int64_t>(i));
    }
    for (size_t i = 0; i < b; ++i) {
      settle_barrier_.AwaitReady(static_cast<int64_t>(i));
      SettleSlot(batch, i);
    }
  }
  epoch_batch_ = nullptr;
}

}  // namespace ssa
