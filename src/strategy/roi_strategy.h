#ifndef SSA_STRATEGY_ROI_STRATEGY_H_
#define SSA_STRATEGY_ROI_STRATEGY_H_

#include <vector>

#include "core/formula.h"
#include "strategy/strategy.h"
#include "util/common.h"

namespace ssa {

/// Native implementation of the ROI-equalizing heuristic of Section II-C /
/// Figure 5 (after [Borgs et al., WWW'07]), the strategy every bidder runs
/// in the paper's experiments. Per auction, with t the auction number and
/// kw the queried keyword (relevance 1, all others 0):
///
///   if amount_spent < target_rate * t              (underspending)
///     and roi(kw) == max_kw' roi(kw') and bid[kw] < max_bid[kw]:
///       bid[kw] += 1
///   else if amount_spent > target_rate * t         (overspending)
///     and roi(kw) == min_kw' roi(kw') and bid[kw] > 0:
///       bid[kw] -= 1
///
/// then emit one Bids row per distinct keyword formula, whose value is the
/// sum of tentative bids of sufficiently relevant keywords (relevance >
/// 0.7) carrying that formula — with one keyword per query this is a single
/// `Click -> bid[kw]` row.
///
/// Tentative bids are integral cents, so all boundary comparisons
/// (bid < max_bid, bid > 0) are exact; the logical-update engine
/// (strategy/logical_roi.h) replicates these semantics bit-for-bit, which
/// the equivalence tests assert.
class RoiStrategy : public BiddingStrategy {
 public:
  /// `keyword_formulas[kw]` is the formula keyword kw's bid attaches to
  /// (plain Click in the Section V workload). Tentative bids start at 0.
  explicit RoiStrategy(std::vector<Formula> keyword_formulas);

  void MakeBids(const Query& query, const AdvertiserAccount& account,
                BidsTable* bids) override;

  /// Genuinely const read path: computes the same table MakeBids would
  /// emit, keeping the Figure 5 tentative-bid adjustment in a local instead
  /// of writing it back. Avoids the base-class save/mutate/restore dance.
  void PeekBids(const Query& query, const AdvertiserAccount& account,
                BidsTable* bids) const override;

  /// Checkpoint hooks: the tentative-bid vector is the strategy's entire
  /// mutable state.
  void SaveState(std::string* out) const override;
  Status RestoreState(std::string_view blob) override;

  /// Current tentative bid per keyword (exposed for the equivalence tests).
  const std::vector<Money>& tentative_bids() const { return bids_; }

 private:
  /// The full Figure 5 step — tentative-bid adjustment applied to
  /// `*tentative`, then the bids-table emission — shared by the mutating
  /// (MakeBids: tentative == &bids_) and const (PeekBids: tentative = a
  /// local copy) entry points so the two stay bitwise-identical.
  void StepOn(const Query& query, const AdvertiserAccount& account,
              std::vector<Money>* tentative, BidsTable* bids) const;

  std::vector<Formula> keyword_formulas_;
  std::vector<Money> bids_;
};

}  // namespace ssa

#endif  // SSA_STRATEGY_ROI_STRATEGY_H_
