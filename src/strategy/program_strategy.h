#ifndef SSA_STRATEGY_PROGRAM_STRATEGY_H_
#define SSA_STRATEGY_PROGRAM_STRATEGY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/table.h"
#include "lang/interpreter.h"
#include "strategy/strategy.h"
#include "util/status.h"

namespace ssa {

/// A bidding strategy defined by a program in the Section II-B language.
/// The advertiser's private database holds the Figure 4 Keywords table
///
///   Keywords(text, formula, maxbid, roi, bid, relevance)
///
/// and a Bids(formula, value) table with one row per distinct formula. Per
/// auction, the search provider refreshes the provider-maintained columns
/// (roi, relevance, maxbid) and scalars (amtSpent, time, targetSpendRate),
/// fires the program's AFTER INSERT ON Query triggers, and reads the Bids
/// table back out. The `bid` column is program state and persists across
/// auctions.
///
/// Running the verbatim Figure 5 Equalize-ROI program through this class is
/// behaviorally identical to the native RoiStrategy — the
/// `lang_equivalence_test` locks that in.
class ProgramStrategy : public BiddingStrategy {
 public:
  /// Keyword metadata: display text and the bid formula per keyword.
  struct KeywordSpec {
    std::string text;
    Formula formula;
  };

  /// Parses `source` and sets up the private tables. Returns an error on
  /// parse failure or if the program references unknown tables/columns at
  /// first execution.
  static StatusOr<std::unique_ptr<ProgramStrategy>> Create(
      std::string_view source, std::vector<KeywordSpec> keywords);

  void MakeBids(const Query& query, const AdvertiserAccount& account,
                BidsTable* bids) override;

  /// Section II-B notification triggers: receiving a slot fires AFTER
  /// INSERT ON Slot; a click fires AFTER INSERT ON Click; a purchase fires
  /// AFTER INSERT ON Purchase. The handlers see the same tables and scalars
  /// as the bid trigger, plus `wonSlot` (1-based slot received).
  void OnOutcome(const Query& query, const AdvertiserAccount& account,
                 SlotIndex slot, bool clicked, bool purchased) override;

  /// Checkpoint hooks: the full contents of the private Keywords and Bids
  /// tables (programs may mutate any cell, and the `bid` column is
  /// long-lived state). Restore rebuilds the formula-row index from the
  /// serialized Bids rows, so programs that inserted new formula rows
  /// round-trip too.
  void SaveState(std::string* out) const override;
  Status RestoreState(std::string_view blob) override;

  /// Current tentative bid column (for tests).
  Money TentativeBid(int kw) const;

 private:
  ProgramStrategy(lang::ParsedProgram program,
                  std::vector<KeywordSpec> keywords);

  lang::ParsedProgram program_;
  std::vector<KeywordSpec> keywords_;
  Database db_;
  Table* keywords_table_ = nullptr;
  Table* bids_table_ = nullptr;
  /// Row index in bids_table_ for each distinct formula string.
  std::map<std::string, int> formula_rows_;
  /// Parsed Formula per bids_table_ row.
  std::vector<Formula> row_formulas_;
};

}  // namespace ssa

#endif  // SSA_STRATEGY_PROGRAM_STRATEGY_H_
