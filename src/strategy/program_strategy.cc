#include "strategy/program_strategy.h"

#include <utility>

#include "core/formula_parser.h"
#include "durability/wire.h"

namespace ssa {
namespace {

void EncodeTable(const Table& table, WireWriter* w) {
  w->PutU32(static_cast<uint32_t>(table.num_rows()));
  for (int row = 0; row < table.num_rows(); ++row) {
    for (int col = 0; col < table.num_columns(); ++col) {
      const Value& v = table.At(row, col);
      w->PutU8(static_cast<uint8_t>(v.type()));
      if (v.is_number()) {
        w->PutDouble(v.number());
      } else if (v.is_string()) {
        w->PutString(v.str());
      }
    }
  }
}

Status DecodeTable(WireReader* r, Table* table) {
  uint32_t num_rows = 0;
  SSA_RETURN_IF_ERROR(r->GetU32(&num_rows));
  table->Clear();
  for (uint32_t row = 0; row < num_rows; ++row) {
    std::vector<Value> values;
    values.reserve(table->num_columns());
    for (int col = 0; col < table->num_columns(); ++col) {
      uint8_t type = 0;
      SSA_RETURN_IF_ERROR(r->GetU8(&type));
      switch (static_cast<Value::Type>(type)) {
        case Value::Type::kNull:
          values.push_back(Value::Null());
          break;
        case Value::Type::kNumber: {
          double number = 0;
          SSA_RETURN_IF_ERROR(r->GetDouble(&number));
          values.push_back(Value::Number(number));
          break;
        }
        case Value::Type::kString: {
          std::string s;
          SSA_RETURN_IF_ERROR(r->GetString(&s));
          values.push_back(Value::String(std::move(s)));
          break;
        }
        default:
          return Status::InvalidArgument("bad value tag in table state");
      }
    }
    table->InsertRow(std::move(values));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<ProgramStrategy>> ProgramStrategy::Create(
    std::string_view source, std::vector<KeywordSpec> keywords) {
  if (keywords.empty()) {
    return Status::InvalidArgument("at least one keyword required");
  }
  StatusOr<lang::ParsedProgram> program = lang::ParseProgram(source);
  if (!program.ok()) return program.status();
  return std::unique_ptr<ProgramStrategy>(
      new ProgramStrategy(*std::move(program), std::move(keywords)));
}

ProgramStrategy::ProgramStrategy(lang::ParsedProgram program,
                                 std::vector<KeywordSpec> keywords)
    : program_(std::move(program)), keywords_(std::move(keywords)) {
  // Keywords table, one row per keyword (Figure 4 schema).
  keywords_table_ = db_.AddTable(
      "Keywords", {"text", "formula", "maxbid", "roi", "bid", "relevance"});
  for (const KeywordSpec& spec : keywords_) {
    keywords_table_->InsertRow({
        Value::String(spec.text),
        Value::String(spec.formula.ToString()),
        Value::Number(0),  // maxbid: refreshed from the account each auction
        Value::Number(0),  // roi: provider-maintained
        Value::Number(0),  // bid: program state, starts at 0
        Value::Number(0),  // relevance: per-query
    });
  }
  // Bids table: one row per distinct formula, value rewritten per auction.
  bids_table_ = db_.AddTable("Bids", {"formula", "value"});
  for (const KeywordSpec& spec : keywords_) {
    const std::string text = spec.formula.ToString();
    if (formula_rows_.find(text) == formula_rows_.end()) {
      formula_rows_[text] = bids_table_->num_rows();
      bids_table_->InsertRow({Value::String(text), Value::Number(0)});
      row_formulas_.push_back(spec.formula);
    }
  }
}

void ProgramStrategy::MakeBids(const Query& query,
                               const AdvertiserAccount& account,
                               BidsTable* bids) {
  const int num_keywords = static_cast<int>(keywords_.size());
  SSA_CHECK(account.num_keywords() == num_keywords);
  SSA_CHECK(static_cast<int>(query.relevance.size()) == num_keywords);

  // Refresh the provider-maintained columns and scalars (Section II-B: the
  // provider automatically maintains commonly used variables).
  const int col_maxbid = keywords_table_->ColumnIndex("maxbid");
  const int col_roi = keywords_table_->ColumnIndex("roi");
  const int col_relevance = keywords_table_->ColumnIndex("relevance");
  for (int kw = 0; kw < num_keywords; ++kw) {
    keywords_table_->Set(kw, col_maxbid, Value::Number(account.max_bid[kw]));
    keywords_table_->Set(kw, col_roi, Value::Number(account.Roi(kw)));
    keywords_table_->Set(kw, col_relevance,
                         Value::Number(query.relevance[kw]));
  }
  lang::ScalarEnv scalars;
  scalars.Set("amtSpent", account.amount_spent);
  scalars.Set("time", static_cast<double>(query.time));
  scalars.Set("targetSpendRate", account.target_spend_rate);
  scalars.Set("queryKeyword", static_cast<double>(query.keyword));

  // The engine "inserts" the query; AFTER INSERT ON Query triggers fire.
  Status status =
      lang::Interpreter::FireTriggers(program_, "Query", &db_, scalars);
  SSA_CHECK_MSG(status.ok(), status.ToString().c_str());

  // Read the program's Bids table back out.
  const int col_value = bids_table_->ColumnIndex("value");
  for (int row = 0; row < bids_table_->num_rows(); ++row) {
    const Value& v = bids_table_->At(row, col_value);
    const Money value = v.is_number() ? v.number() : 0.0;
    bids->AddBid(row_formulas_[row], value < 0 ? 0 : value);
  }
}

void ProgramStrategy::OnOutcome(const Query& query,
                                const AdvertiserAccount& account,
                                SlotIndex slot, bool clicked, bool purchased) {
  lang::ScalarEnv scalars;
  scalars.Set("amtSpent", account.amount_spent);
  scalars.Set("time", static_cast<double>(query.time));
  scalars.Set("targetSpendRate", account.target_spend_rate);
  scalars.Set("queryKeyword", static_cast<double>(query.keyword));
  scalars.Set("wonSlot", static_cast<double>(slot + 1));

  Status status =
      lang::Interpreter::FireTriggers(program_, "Slot", &db_, scalars);
  SSA_CHECK_MSG(status.ok(), status.ToString().c_str());
  if (clicked) {
    status = lang::Interpreter::FireTriggers(program_, "Click", &db_, scalars);
    SSA_CHECK_MSG(status.ok(), status.ToString().c_str());
  }
  if (purchased) {
    status =
        lang::Interpreter::FireTriggers(program_, "Purchase", &db_, scalars);
    SSA_CHECK_MSG(status.ok(), status.ToString().c_str());
  }
}

void ProgramStrategy::SaveState(std::string* out) const {
  WireWriter w(out);
  EncodeTable(*keywords_table_, &w);
  EncodeTable(*bids_table_, &w);
}

Status ProgramStrategy::RestoreState(std::string_view blob) {
  WireReader r(blob);
  SSA_RETURN_IF_ERROR(DecodeTable(&r, keywords_table_));
  SSA_RETURN_IF_ERROR(DecodeTable(&r, bids_table_));
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in ProgramStrategy state");
  }
  if (keywords_table_->num_rows() != static_cast<int>(keywords_.size())) {
    return Status::InvalidArgument(
        "ProgramStrategy state has wrong keyword count");
  }
  formula_rows_.clear();
  row_formulas_.clear();
  const int col_formula = bids_table_->ColumnIndex("formula");
  for (int row = 0; row < bids_table_->num_rows(); ++row) {
    const Value& cell = bids_table_->At(row, col_formula);
    if (!cell.is_string()) {
      return Status::InvalidArgument("Bids formula cell is not a string");
    }
    StatusOr<Formula> formula = ParseFormula(cell.str());
    if (!formula.ok()) return formula.status();
    formula_rows_[cell.str()] = row;
    row_formulas_.push_back(*std::move(formula));
  }
  return Status::Ok();
}

Money ProgramStrategy::TentativeBid(int kw) const {
  SSA_CHECK(kw >= 0 && kw < static_cast<int>(keywords_.size()));
  return keywords_table_->At(kw, "bid").number();
}

}  // namespace ssa
