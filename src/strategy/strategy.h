#ifndef SSA_STRATEGY_STRATEGY_H_
#define SSA_STRATEGY_STRATEGY_H_

#include <string>
#include <string_view>

#include "auction/account.h"
#include "auction/query_gen.h"
#include "core/bids_table.h"
#include "util/common.h"
#include "util/status.h"

namespace ssa {

/// A dynamic bidding strategy — the paper's "bidding program" (Section II-B)
/// seen as an abstract interface. Each time a user search triggers an
/// auction, the program runs with access to the query (shared, read-only)
/// and its own account variables (private), and emits a Bids table.
///
/// Implementations: RoiStrategy (native C++ version of Figure 5),
/// ProgramStrategy (interprets a program written in the mini-SQL bidding
/// language), plus fixed/test strategies. Strategies of different
/// advertisers never share mutable state, so program evaluation is
/// embarrassingly parallel — the property Section II-B calls out.
class BiddingStrategy {
 public:
  virtual ~BiddingStrategy() = default;

  /// Computes this advertiser's bids for the current auction. `bids` arrives
  /// cleared; the strategy may mutate its own private state.
  virtual void MakeBids(const Query& query, const AdvertiserAccount& account,
                        BidsTable* bids) = 0;

  /// Computes the bids MakeBids *would* emit for this auction without
  /// advancing the strategy's private state — the read-only entry point the
  /// follower/what-if paths use. The default implements it on top of the
  /// checkpoint contract: save state, run MakeBids, restore — correct for
  /// any strategy whose SaveState/RestoreState round-trip is bitwise (which
  /// the contract requires), at the cost of a state copy and a transient
  /// mutation. NOT thread-safe against a concurrent MakeBids on the same
  /// strategy; callers serialize reads against applies (the follower holds
  /// its apply mutex). Strategies with cheap pure math (RoiStrategy)
  /// override with a genuinely const computation.
  virtual void PeekBids(const Query& query, const AdvertiserAccount& account,
                        BidsTable* bids) const {
    auto* self = const_cast<BiddingStrategy*>(this);
    std::string saved;
    SaveState(&saved);
    self->MakeBids(query, account, bids);
    const Status restored = self->RestoreState(saved);
    SSA_CHECK(restored.ok());
  }

  /// Outcome notification (Section II-B: "SQL triggers can be used ... to
  /// notify programs if they received a slot, click, or purchase"). Called
  /// by the engine after each auction the advertiser won; `slot` is the
  /// 0-based position received. Default: ignore.
  virtual void OnOutcome(const Query& query, const AdvertiserAccount& account,
                         SlotIndex slot, bool clicked, bool purchased) {
    (void)query;
    (void)account;
    (void)slot;
    (void)clicked;
    (void)purchased;
  }

  /// Appends the strategy's private mutable state (tentative bids, program
  /// tables, outcome counters — anything MakeBids/OnOutcome mutate) to
  /// `out`, for engine checkpoints. A strategy restored from this blob must
  /// behave bitwise-identically to the original from then on. Default:
  /// stateless — nothing to save.
  virtual void SaveState(std::string* out) const { (void)out; }

  /// Restores the state SaveState serialized. The default accepts only the
  /// empty blob a stateless strategy saves; stateful strategies must
  /// override both methods or checkpoints of engines running them fail
  /// loudly here rather than silently diverging after restore.
  virtual Status RestoreState(std::string_view blob) {
    return blob.empty()
               ? Status::Ok()
               : Status::InvalidArgument(
                     "non-empty checkpoint state for a strategy without "
                     "RestoreState");
  }
};

}  // namespace ssa

#endif  // SSA_STRATEGY_STRATEGY_H_
