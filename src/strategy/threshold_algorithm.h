#ifndef SSA_STRATEGY_THRESHOLD_ALGORITHM_H_
#define SSA_STRATEGY_THRESHOLD_ALGORITHM_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/common.h"

namespace ssa {

/// A list supporting *sorted access* in Fagin's sense: objects streamed in
/// descending attribute order. Used by the Threshold Algorithm
/// (Section IV-A) to find the per-slot top-k bidders without touching every
/// advertiser.
class SortedAccessList {
 public:
  virtual ~SortedAccessList() = default;
  /// Yields the next (object id, attribute value) pair in descending value
  /// order; returns false when exhausted.
  virtual bool Next(int32_t* id, double* value) = 0;
};

/// Adapter over a pre-sorted (value desc) vector of (value, id).
class VectorSortedList : public SortedAccessList {
 public:
  explicit VectorSortedList(std::vector<std::pair<double, int32_t>> entries)
      : entries_(std::move(entries)) {}
  bool Next(int32_t* id, double* value) override {
    if (pos_ >= entries_.size()) return false;
    *value = entries_[pos_].first;
    *id = entries_[pos_].second;
    ++pos_;
    return true;
  }

 private:
  std::vector<std::pair<double, int32_t>> entries_;
  size_t pos_ = 0;
};

/// Result of a Threshold Algorithm run.
struct ThresholdTopKResult {
  /// Top-k objects as (score, id), descending (ties by id ascending).
  std::vector<std::pair<double, int32_t>> top;
  /// Number of sorted accesses performed — the instance-optimality metric;
  /// sublinear in n on favorable inputs, which bench_threshold measures.
  int64_t sorted_accesses = 0;
  /// Number of random accesses (score probes).
  int64_t random_accesses = 0;
};

/// Fagin-Lotem-Naor Threshold Algorithm: finds the k objects maximizing a
/// monotone score given sorted access to each attribute list and random
/// access to full scores.
///
///   * `lists`: one sorted-access stream per attribute.
///   * `score(id)`: the full (monotone) aggregate for one object.
///   * `bound(cursor_values)`: the same aggregate applied to the last value
///     seen in each list — the threshold tau; no unseen object can score
///     above it.
///   * `universe_size`: id range [0, universe_size) for the seen-set.
///
/// Stops as soon as k objects score >= tau (or all lists are exhausted).
/// Only strictly positive scores are returned (a zero-score bidder can never
/// displace "leave the slot empty").
ThresholdTopKResult ThresholdTopK(
    const std::vector<SortedAccessList*>& lists,
    const std::function<double(int32_t)>& score,
    const std::function<double(const std::vector<double>&)>& bound, int k,
    int32_t universe_size);

}  // namespace ssa

#endif  // SSA_STRATEGY_THRESHOLD_ALGORITHM_H_
