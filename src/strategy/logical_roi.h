#ifndef SSA_STRATEGY_LOGICAL_ROI_H_
#define SSA_STRATEGY_LOGICAL_ROI_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "auction/auction_engine.h"
#include "auction/workload.h"
#include "util/common.h"
#include "util/sorted_list.h"

namespace ssa {

/// The RHTALU engine (Section IV + Section III-E): the same observable
/// auction as `AuctionEngine` running `RoiStrategy` for every bidder with
/// WdMethod::kReducedHungarian — same winners, same charges, same account
/// trajectories given equal seeds (asserted by the equivalence tests) — but
/// with per-auction work that avoids touching every advertiser:
///
///  * **Logical updates** (Section IV-B): for each keyword, bidders are
///    partitioned into an increment list, a decrement list and a constant
///    list, each kept sorted by *stored* bid with a shared adjustment
///    variable. The ROI heuristic's "+1 to everyone incrementing this
///    keyword" becomes one adjustment-variable bump; members whose bid
///    would cross its cap (max bid) or floor (zero) are peeled off by
///    boundary heaps before the bump.
///  * **Triggers on shared monotone variables** (Section IV-B): a losing
///    bidder's spend rate decays deterministically with time, so the
///    auction number at which it flips from overspending to underspending
///    is precomputed and queued; list memberships are only touched when a
///    trigger fires or the bidder wins (and is charged).
///  * **Threshold Algorithm** (Section IV-A): per slot, the top-(k+1)
///    bidders by expected revenue ctr(i, slot) * bid_i are found by TA over
///    two sorted views — the static ctr-sorted list and the (lazily merged)
///    bid-sorted lists — stopping once the threshold is cleared, typically
///    after probing a small fraction of the n bidders.
///  * The reduced bipartite graph (top-k per slot) then goes to the
///    Hungarian kernel exactly as in RH.
class LogicalRoiEngine {
 public:
  /// Work counters for the ablation benches.
  struct Stats {
    int64_t ta_sorted_accesses = 0;
    int64_t triggers_fired = 0;
    int64_t list_moves = 0;
    int64_t boundary_moves = 0;
  };

  /// Requires kPayYourBid or kGeneralizedSecondPrice pricing (the paper's
  /// experiments use the GSP generalization).
  LogicalRoiEngine(const EngineConfig& config, Workload workload);

  /// Runs one complete auction (identical lifecycle to AuctionEngine).
  const AuctionOutcome& RunAuction();

  const std::vector<AdvertiserAccount>& accounts() const {
    return workload_.accounts;
  }
  const AuctionOutcome& last_outcome() const { return outcome_; }
  int64_t auctions_run() const { return auctions_run_; }
  Money total_revenue() const { return total_revenue_; }
  const Stats& stats() const { return stats_; }

  /// Current tentative bid of advertiser i on keyword kw (stored value plus
  /// its list's adjustment variable) — mirrors
  /// RoiStrategy::tentative_bids(); exposed for the equivalence tests.
  Money EffectiveBid(AdvertiserId i, int kw) const;

 private:
  /// Which list a (bidder, keyword) pair currently lives in.
  enum Tag : int8_t { kInc = 0, kDec = 1, kConst = 2 };
  /// Spending state relative to the target rate at a given auction time.
  enum class TimeState { kUnder, kEq, kOver };

  /// Lazily-invalidated boundary-heap entry (gen mismatches => stale).
  struct BoundaryEntry {
    double key;
    AdvertiserId id;
    uint32_t gen;
    bool operator>(const BoundaryEntry& o) const {
      if (key != o.key) return key > o.key;
      return id > o.id;
    }
  };
  using BoundaryHeap =
      std::priority_queue<BoundaryEntry, std::vector<BoundaryEntry>,
                          std::greater<BoundaryEntry>>;

  struct Member {
    Tag tag = kConst;
    double stored = 0;
    uint32_t gen = 0;
  };

  struct KwState {
    SortedKeyList lists[3];  // indexed by Tag, sorted by stored bid desc
    double adjustment[3] = {0, 0, 0};  // kConst stays 0
    /// Min-heap on (max_bid - stored): the member that hits its cap first.
    BoundaryHeap inc_boundary;
    /// Min-heap on stored: the member that hits zero first.
    BoundaryHeap dec_boundary;
  };

  struct Trigger {
    int64_t time;
    AdvertiserId id;
    uint32_t gen;
    bool operator>(const Trigger& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;
    }
  };

  TimeState StateAt(AdvertiserId i, int64_t t) const;
  Money EffBid(AdvertiserId i, int kw) const;
  /// Re-derives the list membership of all of bidder i's keywords from its
  /// account state at auction time t (the same predicate RoiStrategy
  /// evaluates), moving entries as needed.
  void ClassifyBidder(AdvertiserId i, int64_t t);
  /// Queues the next time-trigger for bidder i (none when underspending —
  /// that state is absorbing until the bidder wins again).
  void ScheduleTrigger(AdvertiserId i, int64_t t_now);
  void MoveMember(AdvertiserId i, int kw, Tag new_tag);
  /// The per-auction logical update for the queried keyword: peel boundary
  /// members, then bump the increment/decrement adjustment variables.
  void ApplyLogicalUpdate(int kw);
  /// Threshold Algorithm for one slot: top `depth` bidders by
  /// ctr(i, slot) * bid_i(kw), descending (score, id).
  void TopForSlot(SlotIndex slot, int kw, int depth,
                  std::vector<std::pair<double, AdvertiserId>>* out);

  EngineConfig config_;
  Workload workload_;
  QueryGenerator query_gen_;
  Rng user_rng_;
  const MatrixClickModel* model_ = nullptr;  // owned by workload_
  int n_ = 0;
  int k_ = 0;
  int num_keywords_ = 0;

  /// Static per-slot (ctr, advertiser) lists, descending — the w_ij sorted
  /// lists of Section IV-A.
  std::vector<std::vector<std::pair<double, AdvertiserId>>> ctr_sorted_;
  std::vector<KwState> keywords_;
  /// members_[kw][i]: current list/stored-bid of advertiser i on keyword kw.
  std::vector<std::vector<Member>> members_;
  std::priority_queue<Trigger, std::vector<Trigger>, std::greater<Trigger>>
      triggers_;
  std::vector<uint32_t> bidder_gen_;

  // Epoch-stamped scratch for TA seen-sets and candidate dedup.
  std::vector<int64_t> seen_epoch_;
  int64_t epoch_ = 0;
  std::vector<int64_t> candidate_epoch_;

  AuctionOutcome outcome_;
  int64_t auctions_run_ = 0;
  Money total_revenue_ = 0;
  Stats stats_;
};

}  // namespace ssa

#endif  // SSA_STRATEGY_LOGICAL_ROI_H_
