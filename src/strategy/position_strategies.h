#ifndef SSA_STRATEGY_POSITION_STRATEGIES_H_
#define SSA_STRATEGY_POSITION_STRATEGIES_H_

#include <memory>

#include "auction/auction_engine.h"
#include "strategy/strategy.h"
#include "util/common.h"

namespace ssa {

/// The dynamic goals Section I-A says advertisers buy from search-engine
/// management companies — here as first-class strategies instead of a menu
/// of third-party services:
///   * PositionTargetStrategy — "maintaining a specified slot position";
///   * AboveCompetitorStrategy — "maintaining a slot position above a
///     specified competitor";
///   * BudgetedStrategy — the daily-budget guard current platforms offer.

/// Chases a target slot with a simple ladder: bid up while landing below the
/// target (or not displayed), bid down when overshooting above it — paying
/// for slot 1 when you only want slot 3 is wasted spend. Bids are per-click
/// (`Click` formula), stepped by `step` cents within [0, max_bid].
class PositionTargetStrategy : public BiddingStrategy {
 public:
  PositionTargetStrategy(SlotIndex target_slot, Money max_bid, Money step = 1);

  void MakeBids(const Query& query, const AdvertiserAccount& account,
                BidsTable* bids) override;
  void OnOutcome(const Query& query, const AdvertiserAccount& account,
                 SlotIndex slot, bool clicked, bool purchased) override;
  void SaveState(std::string* out) const override;
  Status RestoreState(std::string_view blob) override;

  Money current_bid() const { return bid_; }

 private:
  SlotIndex target_slot_;
  Money max_bid_;
  Money step_;
  Money bid_ = 0;
  int64_t last_won_time_ = 0;
};

/// Stays above one named rival. Engines only notify advertisers of their own
/// outcomes (private state, Section II-B), so this strategy models what SEM
/// companies actually do: observe the *public* result page and resubmit —
/// feed each auction's outcome to ObservePage(). While the rival sits at or
/// above our position (or we are not displayed), escalate; once safely
/// above, decay to save money.
class AboveCompetitorStrategy : public BiddingStrategy {
 public:
  AboveCompetitorStrategy(AdvertiserId self, AdvertiserId rival, Money max_bid,
                          Money step = 1);

  void MakeBids(const Query& query, const AdvertiserAccount& account,
                BidsTable* bids) override;

  /// Public-page observation hook (call after each auction).
  void ObservePage(const AuctionOutcome& outcome);

  void SaveState(std::string* out) const override;
  Status RestoreState(std::string_view blob) override;

  Money current_bid() const { return bid_; }

 private:
  AdvertiserId self_;
  AdvertiserId rival_;
  Money max_bid_;
  Money step_;
  Money bid_ = 0;
};

/// Daily-budget guard: delegates to an inner strategy until the account's
/// spend reaches the budget, then stops bidding (the standard platform
/// semantics the paper lists among today's limited controls).
class BudgetedStrategy : public BiddingStrategy {
 public:
  BudgetedStrategy(std::unique_ptr<BiddingStrategy> inner, Money budget);

  void MakeBids(const Query& query, const AdvertiserAccount& account,
                BidsTable* bids) override;
  void OnOutcome(const Query& query, const AdvertiserAccount& account,
                 SlotIndex slot, bool clicked, bool purchased) override;
  /// Budget tracking lives in the account; only the inner strategy's state
  /// travels through checkpoints.
  void SaveState(std::string* out) const override;
  Status RestoreState(std::string_view blob) override;

  Money budget() const { return budget_; }

 private:
  std::unique_ptr<BiddingStrategy> inner_;
  Money budget_;
};

}  // namespace ssa

#endif  // SSA_STRATEGY_POSITION_STRATEGIES_H_
