#include "strategy/position_strategies.h"

#include <algorithm>
#include <utility>

#include "durability/wire.h"

namespace ssa {

PositionTargetStrategy::PositionTargetStrategy(SlotIndex target_slot,
                                               Money max_bid, Money step)
    : target_slot_(target_slot), max_bid_(max_bid), step_(step) {
  SSA_CHECK(target_slot >= 0 && max_bid >= 0 && step > 0);
}

void PositionTargetStrategy::MakeBids(const Query& query,
                                      const AdvertiserAccount& account,
                                      BidsTable* bids) {
  (void)account;
  // Not displayed since the last auction? We are below every slot including
  // the target: escalate.
  if (last_won_time_ < query.time - 1) {
    bid_ = std::min(max_bid_, bid_ + step_);
  }
  if (bid_ > 0) bids->AddBid(Formula::Click(), bid_);
}

void PositionTargetStrategy::OnOutcome(const Query& query,
                                       const AdvertiserAccount& account,
                                       SlotIndex slot, bool clicked,
                                       bool purchased) {
  (void)account;
  (void)clicked;
  (void)purchased;
  last_won_time_ = query.time;
  if (slot < target_slot_) {
    // Overshot: slot 0 is the most prominent (and most expensive).
    bid_ = std::max<Money>(0, bid_ - step_);
  } else if (slot > target_slot_) {
    bid_ = std::min(max_bid_, bid_ + step_);
  }
}

void PositionTargetStrategy::SaveState(std::string* out) const {
  WireWriter w(out);
  w.PutDouble(bid_);
  w.PutI64(last_won_time_);
}

Status PositionTargetStrategy::RestoreState(std::string_view blob) {
  WireReader r(blob);
  Money bid = 0;
  int64_t last_won_time = 0;
  SSA_RETURN_IF_ERROR(r.GetDouble(&bid));
  SSA_RETURN_IF_ERROR(r.GetI64(&last_won_time));
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        "trailing bytes in PositionTargetStrategy state");
  }
  bid_ = bid;
  last_won_time_ = last_won_time;
  return Status::Ok();
}

AboveCompetitorStrategy::AboveCompetitorStrategy(AdvertiserId self,
                                                 AdvertiserId rival,
                                                 Money max_bid, Money step)
    : self_(self), rival_(rival), max_bid_(max_bid), step_(step) {
  SSA_CHECK(self != rival && max_bid >= 0 && step > 0);
}

void AboveCompetitorStrategy::MakeBids(const Query& query,
                                       const AdvertiserAccount& account,
                                       BidsTable* bids) {
  (void)query;
  (void)account;
  if (bid_ > 0) bids->AddBid(Formula::Click(), bid_);
}

void AboveCompetitorStrategy::ObservePage(const AuctionOutcome& outcome) {
  const auto& alloc = outcome.wd.allocation;
  const SlotIndex mine = alloc.advertiser_to_slot[self_];
  const SlotIndex theirs = alloc.advertiser_to_slot[rival_];
  const bool above =
      mine != kNoSlot && (theirs == kNoSlot || mine < theirs);
  if (above) {
    // Safely above: decay unless that would immediately drop us below.
    if (theirs == kNoSlot || mine + 1 < theirs) {
      bid_ = std::max<Money>(0, bid_ - step_);
    }
  } else {
    bid_ = std::min(max_bid_, bid_ + step_);
  }
}

void AboveCompetitorStrategy::SaveState(std::string* out) const {
  WireWriter(out).PutDouble(bid_);
}

Status AboveCompetitorStrategy::RestoreState(std::string_view blob) {
  WireReader r(blob);
  Money bid = 0;
  SSA_RETURN_IF_ERROR(r.GetDouble(&bid));
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        "trailing bytes in AboveCompetitorStrategy state");
  }
  bid_ = bid;
  return Status::Ok();
}

BudgetedStrategy::BudgetedStrategy(std::unique_ptr<BiddingStrategy> inner,
                                   Money budget)
    : inner_(std::move(inner)), budget_(budget) {
  SSA_CHECK(inner_ != nullptr && budget >= 0);
}

void BudgetedStrategy::MakeBids(const Query& query,
                                const AdvertiserAccount& account,
                                BidsTable* bids) {
  if (account.amount_spent >= budget_) return;  // exhausted: sit out
  inner_->MakeBids(query, account, bids);
}

void BudgetedStrategy::OnOutcome(const Query& query,
                                 const AdvertiserAccount& account,
                                 SlotIndex slot, bool clicked,
                                 bool purchased) {
  inner_->OnOutcome(query, account, slot, clicked, purchased);
}

void BudgetedStrategy::SaveState(std::string* out) const {
  inner_->SaveState(out);
}

Status BudgetedStrategy::RestoreState(std::string_view blob) {
  return inner_->RestoreState(blob);
}

}  // namespace ssa
