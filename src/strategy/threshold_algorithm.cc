#include "strategy/threshold_algorithm.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace ssa {

ThresholdTopKResult ThresholdTopK(
    const std::vector<SortedAccessList*>& lists,
    const std::function<double(int32_t)>& score,
    const std::function<double(const std::vector<double>&)>& bound, int k,
    int32_t universe_size) {
  SSA_CHECK(k >= 1 && !lists.empty() && universe_size >= 0);
  ThresholdTopKResult result;

  // Min-heap of the current top-k by strict (score, id) pair order — the
  // identical rule the eager per-slot heaps use, so both pipelines keep the
  // same objects even on score ties.
  using Entry = std::pair<double, int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;

  std::vector<char> seen(universe_size, 0);
  std::vector<double> cursors(lists.size(),
                              std::numeric_limits<double>::infinity());
  std::vector<char> exhausted(lists.size(), 0);
  size_t num_exhausted = 0;

  while (num_exhausted < lists.size()) {
    for (size_t l = 0; l < lists.size(); ++l) {
      if (exhausted[l]) continue;
      int32_t id;
      double value;
      if (!lists[l]->Next(&id, &value)) {
        exhausted[l] = 1;
        ++num_exhausted;
        continue;
      }
      ++result.sorted_accesses;
      SSA_CHECK_MSG(value <= cursors[l] + 1e-12,
                    "sorted access list out of order");
      cursors[l] = value;
      SSA_CHECK(id >= 0 && id < universe_size);
      if (!seen[id]) {
        seen[id] = 1;
        ++result.random_accesses;
        const double s = score(id);
        if (s > 0.0) {
          if (static_cast<int>(heap.size()) < k) {
            heap.emplace(s, id);
          } else if (heap.top() < Entry(s, id)) {
            heap.pop();
            heap.emplace(s, id);
          }
        }
      }
    }
    // Threshold test: no unseen object can beat tau.
    const double tau = bound(cursors);
    if (static_cast<int>(heap.size()) >= k && heap.top().first >= tau) break;
    if (tau <= 0.0) break;  // only non-positive scores remain unseen
  }

  result.top.reserve(heap.size());
  while (!heap.empty()) {
    result.top.push_back(heap.top());
    heap.pop();
  }
  std::reverse(result.top.begin(), result.top.end());
  return result;
}

}  // namespace ssa
