#include "strategy/roi_strategy.h"

#include <algorithm>
#include <utility>

#include "durability/wire.h"

namespace ssa {

RoiStrategy::RoiStrategy(std::vector<Formula> keyword_formulas)
    : keyword_formulas_(std::move(keyword_formulas)),
      bids_(keyword_formulas_.size(), 0.0) {
  SSA_CHECK(!keyword_formulas_.empty());
}

void RoiStrategy::MakeBids(const Query& query,
                           const AdvertiserAccount& account, BidsTable* bids) {
  StepOn(query, account, &bids_, bids);
}

void RoiStrategy::PeekBids(const Query& query,
                           const AdvertiserAccount& account,
                           BidsTable* bids) const {
  std::vector<Money> tentative = bids_;  // adjustment lands here, not in bids_
  StepOn(query, account, &tentative, bids);
}

void RoiStrategy::StepOn(const Query& query, const AdvertiserAccount& account,
                         std::vector<Money>* tentative,
                         BidsTable* bids) const {
  std::vector<Money>& tb = *tentative;
  const int num_keywords = static_cast<int>(tb.size());
  SSA_CHECK(account.num_keywords() == num_keywords);
  SSA_CHECK(static_cast<int>(query.relevance.size()) == num_keywords);

  // Tentative-bid update (lines 3-20 of Figure 5). The subqueries range
  // over *all* keywords; the relevance predicate restricts the UPDATE to
  // keywords relevant to this query.
  double max_roi = account.Roi(0), min_roi = account.Roi(0);
  for (int kw = 1; kw < num_keywords; ++kw) {
    const double roi = account.Roi(kw);
    max_roi = std::max(max_roi, roi);
    min_roi = std::min(min_roi, roi);
  }
  if (account.Underspending(query.time)) {
    for (int kw = 0; kw < num_keywords; ++kw) {
      if (query.relevance[kw] > 0 && account.Roi(kw) == max_roi &&
          tb[kw] < account.max_bid[kw]) {
        tb[kw] += 1;
      }
    }
  } else if (account.Overspending(query.time)) {
    for (int kw = 0; kw < num_keywords; ++kw) {
      if (query.relevance[kw] > 0 && account.Roi(kw) == min_roi &&
          tb[kw] > 0) {
        tb[kw] -= 1;
      }
    }
  }

  // Bids-table update (lines 22-27): one row per distinct formula, value =
  // sum of tentative bids of keywords with relevance > 0.7 carrying it.
  // Formulas are grouped by structural equality (the keyword universe is
  // small, so the quadratic grouping is irrelevant).
  for (int kw = 0; kw < num_keywords; ++kw) {
    if (query.relevance[kw] <= 0.7) continue;
    bool merged = false;
    for (size_t row = 0; row < bids->rows().size(); ++row) {
      if (bids->rows()[row].formula.StructurallyEquals(
              keyword_formulas_[kw])) {
        // Rebuild the row with the summed value (BidsTable rows are
        // immutable by design; re-adding keeps the interface minimal).
        BidsTable updated;
        for (size_t r = 0; r < bids->rows().size(); ++r) {
          updated.AddBid(bids->rows()[r].formula,
                         bids->rows()[r].value +
                             (r == row ? tb[kw] : 0.0));
        }
        *bids = std::move(updated);
        merged = true;
        break;
      }
    }
    if (!merged) bids->AddBid(keyword_formulas_[kw], tb[kw]);
  }
}

void RoiStrategy::SaveState(std::string* out) const {
  WireWriter(out).PutDoubleVector(bids_);
}

Status RoiStrategy::RestoreState(std::string_view blob) {
  WireReader r(blob);
  std::vector<Money> bids;
  SSA_RETURN_IF_ERROR(r.GetDoubleVector(&bids));
  if (bids.size() != bids_.size()) {
    return Status::InvalidArgument(
        "RoiStrategy state has wrong keyword count");
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in RoiStrategy state");
  }
  bids_ = std::move(bids);
  return Status::Ok();
}

}  // namespace ssa
