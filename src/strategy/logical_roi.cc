#include "strategy/logical_roi.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "matching/hungarian.h"
#include "util/timer.h"

namespace ssa {

LogicalRoiEngine::LogicalRoiEngine(const EngineConfig& config,
                                   Workload workload)
    : config_(config),
      workload_(std::move(workload)),
      query_gen_(workload_.config.num_keywords, config.seed),
      user_rng_(config.seed ^ 0x5eed0f0e125eedULL) {
  SSA_CHECK_MSG(config_.pricing != PricingRule::kVcg,
                "LogicalRoiEngine supports per-click pricing rules only");
  SSA_CHECK_MSG(config_.wd_method == WdMethod::kReducedHungarian,
                "RHTALU builds on the reduced-Hungarian method");
  model_ = workload_.click_model.get();
  n_ = workload_.config.num_advertisers;
  k_ = workload_.config.num_slots;
  num_keywords_ = workload_.config.num_keywords;

  // Static sorted ctr lists, one per slot (Section IV-A keeps "a list of
  // bidders sorted by w_ij"). Descending (ctr, id asc on ties).
  ctr_sorted_.resize(k_);
  for (SlotIndex j = 0; j < k_; ++j) {
    auto& list = ctr_sorted_[j];
    list.reserve(n_);
    for (AdvertiserId i = 0; i < n_; ++i) {
      list.emplace_back(model_->ClickProbability(i, j), i);
    }
    std::sort(list.begin(), list.end(),
              [](const std::pair<double, AdvertiserId>& a,
                 const std::pair<double, AdvertiserId>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
  }

  // Initial membership at auction time 1: every bidder starts with spent 0
  // (underspending, since target rates are >= 1) and all-zero ROI, so every
  // keyword is in the argmax-ROI set; keywords with a positive cap join the
  // increment list, zero-cap keywords are constant at 0. Bulk-built sorted
  // (all stored bids are 0, ids ascending).
  keywords_.resize(num_keywords_);
  members_.assign(num_keywords_,
                  std::vector<Member>(n_, Member{kConst, 0.0, 0}));
  bidder_gen_.assign(n_, 0);
  for (int kw = 0; kw < num_keywords_; ++kw) {
    std::vector<SortedKeyList::Entry> inc_entries, const_entries;
    std::vector<BoundaryEntry> boundary;
    for (AdvertiserId i = 0; i < n_; ++i) {
      if (workload_.accounts[i].max_bid[kw] > 0) {
        members_[kw][i] = Member{kInc, 0.0, 0};
        inc_entries.push_back(SortedKeyList::Entry{0.0, i});
        boundary.push_back(
            BoundaryEntry{workload_.accounts[i].max_bid[kw], i, 0});
      } else {
        members_[kw][i] = Member{kConst, 0.0, 0};
        const_entries.push_back(SortedKeyList::Entry{0.0, i});
      }
    }
    keywords_[kw].lists[kInc].AssignSorted(std::move(inc_entries));
    keywords_[kw].lists[kConst].AssignSorted(std::move(const_entries));
    keywords_[kw].inc_boundary = BoundaryHeap(std::greater<BoundaryEntry>(),
                                              std::move(boundary));
  }

  seen_epoch_.assign(n_, 0);
  candidate_epoch_.assign(n_, 0);
}

LogicalRoiEngine::TimeState LogicalRoiEngine::StateAt(AdvertiserId i,
                                                      int64_t t) const {
  const AdvertiserAccount& a = workload_.accounts[i];
  if (a.Underspending(t)) return TimeState::kUnder;
  if (a.Overspending(t)) return TimeState::kOver;
  return TimeState::kEq;
}

Money LogicalRoiEngine::EffBid(AdvertiserId i, int kw) const {
  const Member& m = members_[kw][i];
  return m.stored + keywords_[kw].adjustment[m.tag];
}

Money LogicalRoiEngine::EffectiveBid(AdvertiserId i, int kw) const {
  SSA_CHECK(i >= 0 && i < n_ && kw >= 0 && kw < num_keywords_);
  return EffBid(i, kw);
}

void LogicalRoiEngine::MoveMember(AdvertiserId i, int kw, Tag new_tag) {
  KwState& state = keywords_[kw];
  Member& m = members_[kw][i];
  const Money effective = m.stored + state.adjustment[m.tag];
  state.lists[m.tag].Erase(i, m.stored);
  m.tag = new_tag;
  m.stored = effective - state.adjustment[new_tag];
  ++m.gen;
  state.lists[new_tag].Insert(i, m.stored);
  if (new_tag == kInc) {
    state.inc_boundary.push(BoundaryEntry{
        workload_.accounts[i].max_bid[kw] - m.stored, i, m.gen});
  } else if (new_tag == kDec) {
    state.dec_boundary.push(BoundaryEntry{m.stored, i, m.gen});
  }
  ++stats_.list_moves;
}

void LogicalRoiEngine::ClassifyBidder(AdvertiserId i, int64_t t) {
  const AdvertiserAccount& account = workload_.accounts[i];
  const TimeState state = StateAt(i, t);
  double max_roi = account.Roi(0), min_roi = account.Roi(0);
  for (int kw = 1; kw < num_keywords_; ++kw) {
    const double roi = account.Roi(kw);
    max_roi = std::max(max_roi, roi);
    min_roi = std::min(min_roi, roi);
  }
  for (int kw = 0; kw < num_keywords_; ++kw) {
    const Money bid = EffBid(i, kw);
    Tag desired = kConst;
    if (state == TimeState::kUnder && account.Roi(kw) == max_roi &&
        bid < account.max_bid[kw]) {
      desired = kInc;
    } else if (state == TimeState::kOver && account.Roi(kw) == min_roi &&
               bid > 0) {
      desired = kDec;
    }
    if (desired != members_[kw][i].tag) MoveMember(i, kw, desired);
  }
}

void LogicalRoiEngine::ScheduleTrigger(AdvertiserId i, int64_t t_now) {
  const TimeState state = StateAt(i, t_now);
  if (state == TimeState::kUnder) return;  // absorbing until the next win
  const AdvertiserAccount& a = workload_.accounts[i];
  int64_t t_next = t_now + 1;
  if (state == TimeState::kOver && a.target_spend_rate > 0) {
    // Crossing near amount_spent / rate; guess conservatively *early* (the
    // handler re-checks and re-schedules), so float error can never make a
    // membership stale at the auction where the state actually flips.
    const double boundary = a.amount_spent / a.target_spend_rate;
    t_next = std::max<int64_t>(
        t_now + 1, static_cast<int64_t>(std::floor(boundary)) - 1);
  }
  triggers_.push(Trigger{t_next, i, bidder_gen_[i]});
}

void LogicalRoiEngine::ApplyLogicalUpdate(int kw) {
  KwState& state = keywords_[kw];
  // Members whose bid reached its cap leave the increment list *before* the
  // shared +1 (the Figure 5 guard `bid < maxbid`).
  while (!state.inc_boundary.empty()) {
    const BoundaryEntry e = state.inc_boundary.top();
    const Member& m = members_[kw][e.id];
    if (m.gen != e.gen) {
      state.inc_boundary.pop();  // stale
      continue;
    }
    SSA_CHECK_MSG(e.key >= state.adjustment[kInc],
                  "increment member already above its cap");
    if (e.key != state.adjustment[kInc]) break;
    state.inc_boundary.pop();
    MoveMember(e.id, kw, kConst);
    ++stats_.boundary_moves;
  }
  state.adjustment[kInc] += 1;

  // Members whose bid reached zero leave the decrement list before the
  // shared -1 (the guard `bid > 0`).
  while (!state.dec_boundary.empty()) {
    const BoundaryEntry e = state.dec_boundary.top();
    const Member& m = members_[kw][e.id];
    if (m.gen != e.gen) {
      state.dec_boundary.pop();
      continue;
    }
    SSA_CHECK_MSG(e.key + state.adjustment[kDec] >= 0,
                  "decrement member already below zero");
    if (e.key + state.adjustment[kDec] != 0) break;
    state.dec_boundary.pop();
    MoveMember(e.id, kw, kConst);
    ++stats_.boundary_moves;
  }
  state.adjustment[kDec] -= 1;
}

void LogicalRoiEngine::TopForSlot(
    SlotIndex slot, int kw, int depth,
    std::vector<std::pair<double, AdvertiserId>>* out) {
  ++epoch_;
  const KwState& state = keywords_[kw];
  const auto& ctr_list = ctr_sorted_[slot];

  using Entry = std::pair<double, AdvertiserId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;

  size_t ctr_pos = 0;
  size_t bid_pos[3] = {0, 0, 0};
  double last_ctr = std::numeric_limits<double>::infinity();
  double last_bid = std::numeric_limits<double>::infinity();

  auto consider = [&](AdvertiserId id) {
    if (seen_epoch_[id] == epoch_) return;
    seen_epoch_[id] = epoch_;
    const double score = model_->ClickProbability(id, slot) * EffBid(id, kw);
    if (score <= 0.0) return;
    if (static_cast<int>(heap.size()) < depth) {
      heap.emplace(score, id);
    } else if (heap.top() < Entry(score, id)) {
      heap.pop();
      heap.emplace(score, id);
    }
  };

  for (;;) {
    bool exhausted = false;
    // Sorted access on the ctr list.
    if (ctr_pos < ctr_list.size()) {
      last_ctr = ctr_list[ctr_pos].first;
      consider(ctr_list[ctr_pos].second);
      ++ctr_pos;
      ++stats_.ta_sorted_accesses;
    } else {
      exhausted = true;
    }
    // Sorted access on the bid view: a lazy 3-way merge of the increment /
    // decrement / constant lists, each sorted by stored (hence effective)
    // bid descending.
    int best_list = -1;
    double best_eff = -std::numeric_limits<double>::infinity();
    for (int l = 0; l < 3; ++l) {
      if (bid_pos[l] >= state.lists[l].size()) continue;
      const double eff = state.lists[l].At(bid_pos[l]).key +
                         state.adjustment[l];
      if (eff > best_eff) {
        best_eff = eff;
        best_list = l;
      }
    }
    if (best_list >= 0) {
      last_bid = best_eff;
      consider(state.lists[best_list].At(bid_pos[best_list]).id);
      ++bid_pos[best_list];
      ++stats_.ta_sorted_accesses;
    } else {
      exhausted = true;
    }

    if (exhausted) break;  // one view ran dry => every bidder was seen
    const double tau = last_ctr * last_bid;
    if (static_cast<int>(heap.size()) >= depth && heap.top().first >= tau) {
      break;
    }
    if (tau <= 0.0) break;  // only zero bids remain unseen
  }

  out->clear();
  out->reserve(heap.size());
  while (!heap.empty()) {
    out->push_back(heap.top());
    heap.pop();
  }
  std::reverse(out->begin(), out->end());  // descending (score, id)
}

const AuctionOutcome& LogicalRoiEngine::RunAuction() {
  outcome_ = AuctionOutcome{};
  outcome_.query = query_gen_.Next();
  const int64_t t = outcome_.query.time;
  const int kw = outcome_.query.keyword;
  ++auctions_run_;
  SSA_CHECK(t == auctions_run_);

  // --- "Program evaluation": fire due time-triggers, then the O(1) logical
  // bid update for the queried keyword.
  WallTimer timer;
  while (!triggers_.empty() && triggers_.top().time <= t) {
    const Trigger trig = triggers_.top();
    triggers_.pop();
    if (bidder_gen_[trig.id] != trig.gen) continue;  // stale
    ++stats_.triggers_fired;
    ClassifyBidder(trig.id, t);
    ScheduleTrigger(trig.id, t);
  }
  ApplyLogicalUpdate(kw);
  outcome_.program_eval_ms = timer.ElapsedMillis();

  // --- Winner determination: TA top-(k+1) per slot, reduced matching on
  // the per-slot top-k union.
  timer.Reset();
  std::vector<std::vector<std::pair<double, AdvertiserId>>> slot_top(k_);
  std::vector<AdvertiserId> candidates;
  ++epoch_;  // candidate-dedup epoch (TopForSlot bumps its own)
  const int64_t cand_epoch = epoch_;
  for (SlotIndex j = 0; j < k_; ++j) {
    TopForSlot(j, kw, k_ + 1, &slot_top[j]);
    const int take = std::min<int>(k_, static_cast<int>(slot_top[j].size()));
    for (int r = 0; r < take; ++r) {
      const AdvertiserId id = slot_top[j][r].second;
      if (candidate_epoch_[id] != cand_epoch) {
        candidate_epoch_[id] = cand_epoch;
        candidates.push_back(id);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());

  const int m = static_cast<int>(candidates.size());
  std::vector<double> compact(static_cast<size_t>(m) * k_);
  for (int c = 0; c < m; ++c) {
    const AdvertiserId i = candidates[c];
    const Money bid = EffBid(i, kw);
    for (SlotIndex j = 0; j < k_; ++j) {
      compact[static_cast<size_t>(c) * k_ + j] =
          model_->ClickProbability(i, j) * bid;
    }
  }
  const Allocation reduced = MaxWeightMatchingDense(compact, m, k_);
  outcome_.wd.allocation = Allocation::Empty(n_, k_);
  for (SlotIndex j = 0; j < k_; ++j) {
    const int c = reduced.slot_to_advertiser[j];
    if (c < 0) continue;
    const AdvertiserId i = candidates[c];
    outcome_.wd.allocation.slot_to_advertiser[j] = i;
    outcome_.wd.allocation.advertiser_to_slot[i] = j;
  }
  outcome_.wd.allocation.total_weight = reduced.total_weight;
  outcome_.wd.matching_weight = reduced.total_weight;
  // Click-only bids pay nothing when unassigned, so the baseline is zero.
  outcome_.wd.expected_revenue = reduced.total_weight;
  outcome_.wd_ms = timer.ElapsedMillis();

  // --- Pricing (pay-your-bid or generalized second price), mirroring
  // auction/pricing.cc arithmetic exactly.
  timer.Reset();
  std::vector<Money> prices(k_, 0.0);
  for (SlotIndex j = 0; j < k_; ++j) {
    const AdvertiserId i = outcome_.wd.allocation.slot_to_advertiser[j];
    if (i < 0) continue;
    const double ctr = model_->ClickProbability(i, j);
    if (ctr <= 0.0) continue;
    const double own_bid = ctr * EffBid(i, kw) / ctr;
    if (config_.pricing == PricingRule::kPayYourBid) {
      prices[j] = std::max(0.0, own_bid);
      continue;
    }
    // Best bidder for slot j left without any slot: guaranteed to appear in
    // the slot's TA top-(k+1) since at most k advertisers won slots.
    double r_next = 0.0;
    for (const auto& [score, other] : slot_top[j]) {
      if (outcome_.wd.allocation.advertiser_to_slot[other] == kNoSlot) {
        r_next = std::max(r_next, score);
      }
    }
    prices[j] = std::max(0.0, std::min(own_bid, r_next / ctr));
  }
  outcome_.pricing_ms = timer.ElapsedMillis();

  // --- User action, charging, accounting — identical arithmetic to
  // AuctionEngine::RunAuction so the equivalence is exact.
  std::vector<AdvertiserId> changed;
  for (SlotIndex j = 0; j < k_; ++j) {
    const AdvertiserId i = outcome_.wd.allocation.slot_to_advertiser[j];
    if (i < 0) continue;
    UserEvent event;
    event.advertiser = i;
    event.slot = j;
    event.clicked = user_rng_.Bernoulli(model_->ClickProbability(i, j));
    const double ppc = model_->PurchaseProbabilityGivenClick(i, j);
    if (event.clicked && ppc > 0.0) {
      event.purchased = user_rng_.Bernoulli(ppc);
    }
    AdvertiserAccount& account = workload_.accounts[i];
    if (event.clicked) {
      event.charged = prices[j];
      account.value_gained[kw] += account.value_per_click[kw];
      changed.push_back(i);
    }
    if (event.charged > 0) {
      account.amount_spent += event.charged;
      account.spent_per_keyword[kw] += event.charged;
    }
    outcome_.revenue_charged += event.charged;
    outcome_.events.push_back(event);
  }
  total_revenue_ += outcome_.revenue_charged;

  // Clicked winners' accounts changed: re-derive their memberships and
  // triggers (the only per-bidder work outside TA, O(k) bidders/auction).
  for (AdvertiserId i : changed) {
    ++bidder_gen_[i];
    ClassifyBidder(i, t);
    ScheduleTrigger(i, t);
  }
  return outcome_;
}

}  // namespace ssa
