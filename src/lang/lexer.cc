#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>

namespace ssa {
namespace lang {
namespace {

const char* const kKeywords[] = {
    "CREATE", "TRIGGER", "AFTER", "INSERT", "ON",  "IF",    "THEN",
    "ELSEIF", "ELSE",    "ENDIF", "UPDATE", "SET", "WHERE", "SELECT",
    "FROM",   "AND",     "OR",    "NOT",    "MAX", "MIN",   "SUM",
    "COUNT",  "AVG",
};

std::string Upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

bool IsKeyword(const std::string& ident_upper) {
  for (const char* kw : kKeywords) {
    if (ident_upper == kw) return true;
  }
  return false;
}

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t pos = 0;
  int line = 1;
  auto push = [&](TokenKind kind, std::string text = "", double num = 0) {
    tokens.push_back(Token{kind, std::move(text), num, line});
  };
  while (pos < source.size()) {
    const char c = source[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '-' && pos + 1 < source.size() && source[pos + 1] == '-') {
      while (pos < source.size() && source[pos] != '\n') ++pos;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[pos])) ||
              source[pos] == '_')) {
        ++pos;
      }
      std::string ident(source.substr(start, pos - start));
      std::string upper = Upper(ident);
      if (IsKeyword(upper)) {
        push(TokenKind::kKeyword, upper);
      } else {
        push(TokenKind::kIdentifier, ident);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[pos + 1])))) {
      size_t start = pos;
      while (pos < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[pos])) ||
              source[pos] == '.')) {
        ++pos;
      }
      const std::string text(source.substr(start, pos - start));
      push(TokenKind::kNumber, text, std::strtod(text.c_str(), nullptr));
      continue;
    }
    if (c == '\'') {
      ++pos;
      size_t start = pos;
      while (pos < source.size() && source[pos] != '\'') {
        if (source[pos] == '\n') ++line;
        ++pos;
      }
      if (pos >= source.size()) {
        return Status::InvalidArgument("unterminated string literal at line " +
                                       std::to_string(line));
      }
      push(TokenKind::kString, std::string(source.substr(start, pos - start)));
      ++pos;  // closing quote
      continue;
    }
    ++pos;
    switch (c) {
      case '(':
        push(TokenKind::kLParen);
        break;
      case ')':
        push(TokenKind::kRParen);
        break;
      case '{':
        push(TokenKind::kLBrace);
        break;
      case '}':
        push(TokenKind::kRBrace);
        break;
      case ',':
        push(TokenKind::kComma);
        break;
      case ';':
        push(TokenKind::kSemicolon);
        break;
      case '.':
        push(TokenKind::kDot);
        break;
      case '+':
        push(TokenKind::kPlus);
        break;
      case '-':
        push(TokenKind::kMinus);
        break;
      case '*':
        push(TokenKind::kStar);
        break;
      case '/':
        push(TokenKind::kSlash);
        break;
      case '=':
        push(TokenKind::kEq);
        break;
      case '<':
        if (pos < source.size() && source[pos] == '>') {
          ++pos;
          push(TokenKind::kNe);
        } else if (pos < source.size() && source[pos] == '=') {
          ++pos;
          push(TokenKind::kLe);
        } else {
          push(TokenKind::kLt);
        }
        break;
      case '>':
        if (pos < source.size() && source[pos] == '=') {
          ++pos;
          push(TokenKind::kGe);
        } else {
          push(TokenKind::kGt);
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at line " + std::to_string(line));
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  tokens.push_back(end);
  return tokens;
}

}  // namespace lang
}  // namespace ssa
