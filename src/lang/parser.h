#ifndef SSA_LANG_PARSER_H_
#define SSA_LANG_PARSER_H_

#include <string_view>
#include <vector>

#include "lang/ast.h"
#include "util/status.h"

namespace ssa {
namespace lang {

/// A parsed bidding program: a set of triggers (Figure 5 has one, firing
/// AFTER INSERT ON Query).
struct ParsedProgram {
  std::vector<TriggerDecl> triggers;
};

/// Parses program source. Grammar (keywords case-insensitive):
///
///   program   := trigger*
///   trigger   := CREATE TRIGGER ident AFTER INSERT ON ident '{' stmt* '}'
///   stmt      := update ';' | if
///   update    := UPDATE ident SET ident '=' expr (',' ident '=' expr)*
///                [WHERE expr]
///   if        := IF expr THEN stmt* (ELSEIF expr THEN stmt*)*
///                [ELSE stmt*] ENDIF [';']
///   expr      := or ; or := and (OR and)* ; and := not (AND not)*
///   not       := NOT not | cmp
///   cmp       := add (('='|'<>'|'<'|'<='|'>'|'>=') add)?
///   add       := mul (('+'|'-') mul)* ; mul := unary (('*'|'/') unary)*
///   unary     := '-' unary | primary
///   primary   := number | string | ref | '(' (select | expr) ')'
///   ref       := ident ['.' ident]
///   select    := SELECT agg '(' ref ')' FROM ident [ident] [WHERE expr]
///   agg       := MAX | MIN | SUM | COUNT | AVG
StatusOr<ParsedProgram> ParseProgram(std::string_view source);

}  // namespace lang
}  // namespace ssa

#endif  // SSA_LANG_PARSER_H_
