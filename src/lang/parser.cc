#include "lang/parser.h"

#include <utility>

#include "lang/lexer.h"

namespace ssa {
namespace lang {
namespace {

/// Recursive-descent parser. Exception-free: the first error latches and
/// unwinds through null-checks.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedProgram> Parse() {
    ParsedProgram program;
    while (ok_ && !AtEnd()) {
      program.triggers.push_back(ParseTrigger());
    }
    if (!ok_) return Status::InvalidArgument(error_);
    return program;
  }

 private:
  // --- token helpers --------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool CheckKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  bool MatchKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      Fail(std::string("expected ") + kw + " at line " +
           std::to_string(Peek().line));
    }
  }
  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }
  void Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) {
      Fail(std::string("expected ") + what + " at line " +
           std::to_string(Peek().line));
    }
  }
  std::string ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      Fail(std::string("expected ") + what + " at line " +
           std::to_string(Peek().line));
      return "";
    }
    return Advance().text;
  }

  void Fail(std::string message) {
    if (ok_) {
      ok_ = false;
      error_ = std::move(message);
    }
  }

  // --- grammar --------------------------------------------------------------

  TriggerDecl ParseTrigger() {
    TriggerDecl trigger;
    ExpectKeyword("CREATE");
    ExpectKeyword("TRIGGER");
    trigger.name = ExpectIdentifier("trigger name");
    ExpectKeyword("AFTER");
    ExpectKeyword("INSERT");
    ExpectKeyword("ON");
    trigger.table = ExpectIdentifier("table name");
    Expect(TokenKind::kLBrace, "'{'");
    while (ok_ && Peek().kind != TokenKind::kRBrace && !AtEnd()) {
      trigger.body.push_back(ParseStmt());
    }
    Expect(TokenKind::kRBrace, "'}'");
    return trigger;
  }

  StmtPtr ParseStmt() {
    if (CheckKeyword("UPDATE")) return ParseUpdate();
    if (CheckKeyword("IF")) return ParseIf();
    Fail("expected UPDATE or IF at line " + std::to_string(Peek().line));
    return nullptr;
  }

  StmtPtr ParseUpdate() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kUpdate;
    ExpectKeyword("UPDATE");
    stmt->table = ExpectIdentifier("table name");
    ExpectKeyword("SET");
    do {
      Assignment a;
      a.column = ExpectIdentifier("column name");
      Expect(TokenKind::kEq, "'='");
      a.value = ParseExpr();
      stmt->assignments.push_back(std::move(a));
    } while (ok_ && Match(TokenKind::kComma));
    if (MatchKeyword("WHERE")) stmt->where = ParseExpr();
    Expect(TokenKind::kSemicolon, "';'");
    return stmt;
  }

  StmtPtr ParseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    ExpectKeyword("IF");
    for (;;) {
      ExprPtr cond = ParseExpr();
      ExpectKeyword("THEN");
      std::vector<StmtPtr> body;
      while (ok_ && !CheckKeyword("ELSEIF") && !CheckKeyword("ELSE") &&
             !CheckKeyword("ENDIF") && !AtEnd()) {
        body.push_back(ParseStmt());
      }
      stmt->branches.emplace_back(std::move(cond), std::move(body));
      if (!MatchKeyword("ELSEIF")) break;
    }
    if (MatchKeyword("ELSE")) {
      while (ok_ && !CheckKeyword("ENDIF") && !AtEnd()) {
        stmt->else_body.push_back(ParseStmt());
      }
    }
    ExpectKeyword("ENDIF");
    Match(TokenKind::kSemicolon);  // optional, per Figure 5
    return stmt;
  }

  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr e = ParseAnd();
    while (ok_ && MatchKeyword("OR")) {
      e = MakeBinary(BinaryOp::kOr, std::move(e), ParseAnd());
    }
    return e;
  }

  ExprPtr ParseAnd() {
    ExprPtr e = ParseNot();
    while (ok_ && MatchKeyword("AND")) {
      e = MakeBinary(BinaryOp::kAnd, std::move(e), ParseNot());
    }
    return e;
  }

  ExprPtr ParseNot() {
    if (MatchKeyword("NOT")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNot;
      e->operand = ParseNot();
      return e;
    }
    return ParseCmp();
  }

  ExprPtr ParseCmp() {
    ExprPtr e = ParseAdd();
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return e;
    }
    Advance();
    return MakeBinary(op, std::move(e), ParseAdd());
  }

  ExprPtr ParseAdd() {
    ExprPtr e = ParseMul();
    while (ok_) {
      if (Match(TokenKind::kPlus)) {
        e = MakeBinary(BinaryOp::kAdd, std::move(e), ParseMul());
      } else if (Match(TokenKind::kMinus)) {
        e = MakeBinary(BinaryOp::kSub, std::move(e), ParseMul());
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr ParseMul() {
    ExprPtr e = ParseUnary();
    while (ok_) {
      if (Match(TokenKind::kStar)) {
        e = MakeBinary(BinaryOp::kMul, std::move(e), ParseUnary());
      } else if (Match(TokenKind::kSlash)) {
        e = MakeBinary(BinaryOp::kDiv, std::move(e), ParseUnary());
      } else {
        break;
      }
    }
    return e;
  }

  ExprPtr ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnaryMinus;
      e->operand = ParseUnary();
      return e;
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    auto e = std::make_unique<Expr>();
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kNumber:
        e->kind = Expr::Kind::kLiteral;
        e->literal = Value::Number(Advance().number);
        return e;
      case TokenKind::kString:
        e->kind = Expr::Kind::kLiteral;
        e->literal = Value::String(Advance().text);
        return e;
      case TokenKind::kIdentifier: {
        e->kind = Expr::Kind::kColumnRef;
        e->column = Advance().text;
        if (Match(TokenKind::kDot)) {
          e->qualifier = std::move(e->column);
          e->column = ExpectIdentifier("column name");
        }
        return e;
      }
      case TokenKind::kLParen: {
        Advance();
        if (CheckKeyword("SELECT")) {
          ExprPtr sub = ParseSelect();
          Expect(TokenKind::kRParen, "')'");
          return sub;
        }
        ExprPtr inner = ParseExpr();
        Expect(TokenKind::kRParen, "')'");
        return inner;
      }
      default:
        Fail("expected expression at line " + std::to_string(tok.line));
        e->kind = Expr::Kind::kLiteral;
        e->literal = Value::Null();
        return e;
    }
  }

  ExprPtr ParseSelect() {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kSubquery;
    ExpectKeyword("SELECT");
    if (MatchKeyword("MAX")) {
      e->aggregate = AggregateFn::kMax;
    } else if (MatchKeyword("MIN")) {
      e->aggregate = AggregateFn::kMin;
    } else if (MatchKeyword("SUM")) {
      e->aggregate = AggregateFn::kSum;
    } else if (MatchKeyword("COUNT")) {
      e->aggregate = AggregateFn::kCount;
    } else if (MatchKeyword("AVG")) {
      e->aggregate = AggregateFn::kAvg;
    } else {
      Fail("expected aggregate function at line " +
           std::to_string(Peek().line));
    }
    Expect(TokenKind::kLParen, "'('");
    e->agg_column = ExpectIdentifier("column");
    if (Match(TokenKind::kDot)) {
      e->agg_qualifier = std::move(e->agg_column);
      e->agg_column = ExpectIdentifier("column name");
    }
    Expect(TokenKind::kRParen, "')'");
    ExpectKeyword("FROM");
    e->from_table = ExpectIdentifier("table name");
    if (Peek().kind == TokenKind::kIdentifier) {
      e->from_alias = Advance().text;  // optional alias, e.g. "Keywords K"
    }
    if (MatchKeyword("WHERE")) e->where = ParseExpr();
    return e;
  }

  ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

StatusOr<ParsedProgram> ParseProgram(std::string_view source) {
  StatusOr<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  return Parser(*std::move(tokens)).Parse();
}

}  // namespace lang
}  // namespace ssa
