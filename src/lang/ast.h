#ifndef SSA_LANG_AST_H_
#define SSA_LANG_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "db/value.h"

namespace ssa {
namespace lang {

/// Expression AST of the bidding-program language. Expressions are scalar;
/// the only nested query form is the scalar aggregate subquery
/// (SELECT MAX(K.roi) FROM Keywords K WHERE ...), which Figure 5 uses and
/// which keeps the language free of recursion as Section II-B prescribes.
struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class AggregateFn { kMax, kMin, kSum, kCount, kAvg };

struct Expr {
  enum class Kind {
    kLiteral,    // number or string constant
    kColumnRef,  // [qualifier.]name — column of a bound row, else scalar var
    kUnaryMinus,
    kNot,
    kBinary,
    kSubquery,  // scalar aggregate subquery
  };

  Kind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  // table name or alias; empty if unqualified
  std::string column;

  // kUnaryMinus / kNot
  ExprPtr operand;

  // kBinary
  BinaryOp op = BinaryOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;

  // kSubquery
  AggregateFn aggregate = AggregateFn::kMax;
  std::string agg_qualifier;  // qualifier of the aggregated column
  std::string agg_column;
  std::string from_table;
  std::string from_alias;  // empty if none
  ExprPtr where;           // may be null
};

/// Statement AST.
struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Assignment {
  std::string column;
  ExprPtr value;
};

struct Stmt {
  enum class Kind { kUpdate, kIf };

  Kind kind;

  // kUpdate: UPDATE table SET col = expr, ... [WHERE expr]
  std::string table;
  std::vector<Assignment> assignments;
  ExprPtr where;  // may be null

  // kIf: IF c1 THEN body1 ELSEIF c2 THEN body2 ... [ELSE bodyN] ENDIF
  std::vector<std::pair<ExprPtr, std::vector<StmtPtr>>> branches;
  std::vector<StmtPtr> else_body;
};

/// CREATE TRIGGER name AFTER INSERT ON table { body } — the activation hook
/// of Section II-B ("SQL triggers can be used to activate programs when an
/// auction begins").
struct TriggerDecl {
  std::string name;
  std::string table;
  std::vector<StmtPtr> body;
};

}  // namespace lang
}  // namespace ssa

#endif  // SSA_LANG_AST_H_
