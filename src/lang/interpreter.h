#ifndef SSA_LANG_INTERPRETER_H_
#define SSA_LANG_INTERPRETER_H_

#include <map>
#include <string>
#include <string_view>

#include "db/table.h"
#include "lang/parser.h"
#include "util/status.h"

namespace ssa {
namespace lang {

/// Scalar variables visible to a bidding program — the automatically
/// maintained quantities of Section II-B (amtSpent, time, targetSpendRate,
/// ...). Unqualified identifiers that match no column of a bound row
/// resolve here.
struct ScalarEnv {
  std::map<std::string, double> vars;

  void Set(const std::string& name, double value) { vars[name] = value; }
};

/// Executes parsed bidding programs against a per-advertiser Database.
/// SQL-lite semantics:
///   * UPDATE evaluates all SET expressions against the pre-update row
///     (simultaneous assignment), for every row satisfying WHERE;
///   * scalar aggregate subqueries see the subquery row (via its alias or
///     table name) plus any outer row (correlated refs like Bids.formula)
///     plus the scalar environment;
///   * comparisons/logic are numeric (0/1); NULL compares false; strings
///     support = and <>;
///   * MAX/MIN/AVG over an empty set yield NULL, SUM/COUNT yield 0.
class Interpreter {
 public:
  /// Fires every trigger declared AFTER INSERT ON `table` (the Section II-B
  /// activation model: the engine "inserts" the query, programs react).
  static Status FireTriggers(const ParsedProgram& program,
                             const std::string& table, Database* db,
                             const ScalarEnv& scalars);

  /// Runs one statement list (exposed for tests).
  static Status ExecuteBody(const std::vector<StmtPtr>& body, Database* db,
                            const ScalarEnv& scalars);
};

}  // namespace lang
}  // namespace ssa

#endif  // SSA_LANG_INTERPRETER_H_
