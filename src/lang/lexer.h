#ifndef SSA_LANG_LEXER_H_
#define SSA_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ssa {
namespace lang {

/// Token kinds of the bidding-program language — the SQL-without-recursion
/// subset of Section II-B in which Figure 5's Equalize-ROI program is
/// written.
enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,   // single-quoted, e.g. 'Click & Slot1'
  kKeyword,  // normalized upper-case in `text`
  // punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kDot,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEq,         // =
  kNe,         // <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier/keyword text (keywords upper-cased)
  double number = 0;  // for kNumber
  int line = 1;
};

/// Tokenizes a program. Keywords (CREATE, TRIGGER, AFTER, INSERT, ON, IF,
/// THEN, ELSEIF, ELSE, ENDIF, UPDATE, SET, WHERE, SELECT, FROM, AND, OR,
/// NOT, MAX, MIN, SUM, COUNT, AVG) are case-insensitive; identifiers keep
/// their case. `--` starts a comment to end of line.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

/// True if `ident_upper` (already upper-cased) is a language keyword.
bool IsKeyword(const std::string& ident_upper);

}  // namespace lang
}  // namespace ssa

#endif  // SSA_LANG_LEXER_H_
