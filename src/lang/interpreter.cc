#include "lang/interpreter.h"

#include <cmath>
#include <vector>

namespace ssa {
namespace lang {
namespace {

/// A row bound into scope during evaluation, addressable by alias or table
/// name (innermost binding wins for unqualified names).
struct RowBinding {
  Table* table;
  int row;
  std::string alias;  // may equal the table name
};

struct EvalContext {
  Database* db;
  const ScalarEnv* scalars;
  std::vector<RowBinding> bindings;  // innermost last
  bool ok = true;
  std::string error;

  Value Fail(std::string message) {
    if (ok) {
      ok = false;
      error = std::move(message);
    }
    return Value::Null();
  }
};

Value Eval(const Expr& e, EvalContext* ctx);

Value ResolveColumn(const std::string& qualifier, const std::string& column,
                    EvalContext* ctx) {
  // Qualified: find the binding whose alias or table name matches.
  if (!qualifier.empty()) {
    for (auto it = ctx->bindings.rbegin(); it != ctx->bindings.rend(); ++it) {
      if (it->alias == qualifier || it->table->name() == qualifier) {
        const int col = it->table->ColumnIndex(column);
        if (col < 0) {
          return ctx->Fail("no column '" + column + "' in '" + qualifier +
                           "'");
        }
        return it->table->At(it->row, col);
      }
    }
    return ctx->Fail("unknown table or alias '" + qualifier + "'");
  }
  // Unqualified: innermost row that has the column, else a scalar variable.
  for (auto it = ctx->bindings.rbegin(); it != ctx->bindings.rend(); ++it) {
    const int col = it->table->ColumnIndex(column);
    if (col >= 0) return it->table->At(it->row, col);
  }
  auto var = ctx->scalars->vars.find(column);
  if (var != ctx->scalars->vars.end()) return Value::Number(var->second);
  return ctx->Fail("unknown identifier '" + column + "'");
}

Value EvalBinary(const Expr& e, EvalContext* ctx) {
  // Short-circuiting logic first.
  if (e.op == BinaryOp::kAnd) {
    const Value lhs = Eval(*e.lhs, ctx);
    if (!ctx->ok || !lhs.Truthy()) return Value::Bool(false);
    return Value::Bool(Eval(*e.rhs, ctx).Truthy());
  }
  if (e.op == BinaryOp::kOr) {
    const Value lhs = Eval(*e.lhs, ctx);
    if (!ctx->ok) return Value::Null();
    if (lhs.Truthy()) return Value::Bool(true);
    return Value::Bool(Eval(*e.rhs, ctx).Truthy());
  }

  const Value lhs = Eval(*e.lhs, ctx);
  const Value rhs = Eval(*e.rhs, ctx);
  if (!ctx->ok) return Value::Null();

  switch (e.op) {
    case BinaryOp::kEq:
      return Value::Bool(lhs.EqualsValue(rhs));
    case BinaryOp::kNe:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(!lhs.EqualsValue(rhs));
    default:
      break;
  }

  // Remaining operators need numbers; NULL propagates (comparisons false,
  // arithmetic NULL).
  const bool comparison = e.op == BinaryOp::kLt || e.op == BinaryOp::kLe ||
                          e.op == BinaryOp::kGt || e.op == BinaryOp::kGe;
  if (lhs.is_null() || rhs.is_null()) {
    return comparison ? Value::Bool(false) : Value::Null();
  }
  if (!lhs.is_number() || !rhs.is_number()) {
    return ctx->Fail("arithmetic on non-numeric values");
  }
  const double a = lhs.number();
  const double b = rhs.number();
  switch (e.op) {
    case BinaryOp::kAdd:
      return Value::Number(a + b);
    case BinaryOp::kSub:
      return Value::Number(a - b);
    case BinaryOp::kMul:
      return Value::Number(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Value::Null();  // SQL-ish: division by zero
      return Value::Number(a / b);
    case BinaryOp::kLt:
      return Value::Bool(a < b);
    case BinaryOp::kLe:
      return Value::Bool(a <= b);
    case BinaryOp::kGt:
      return Value::Bool(a > b);
    case BinaryOp::kGe:
      return Value::Bool(a >= b);
    default:
      return ctx->Fail("unhandled binary operator");
  }
}

Value EvalSubquery(const Expr& e, EvalContext* ctx) {
  Table* table = ctx->db->GetTable(e.from_table);
  if (table == nullptr) {
    return ctx->Fail("unknown table '" + e.from_table + "' in subquery");
  }
  const std::string alias =
      e.from_alias.empty() ? e.from_table : e.from_alias;

  double sum = 0.0;
  double best = 0.0;
  int64_t count = 0;
  for (int row = 0; row < table->num_rows(); ++row) {
    ctx->bindings.push_back(RowBinding{table, row, alias});
    bool keep = true;
    if (e.where != nullptr) keep = Eval(*e.where, ctx).Truthy();
    Value cell;
    if (keep && ctx->ok) {
      cell = ResolveColumn(e.agg_qualifier, e.agg_column, ctx);
    }
    ctx->bindings.pop_back();
    if (!ctx->ok) return Value::Null();
    if (!keep || cell.is_null()) continue;
    if (e.aggregate != AggregateFn::kCount && !cell.is_number()) {
      return ctx->Fail("aggregate over non-numeric column '" + e.agg_column +
                       "'");
    }
    const double v = e.aggregate == AggregateFn::kCount ? 0.0 : cell.number();
    if (count == 0) {
      best = v;
    } else if (e.aggregate == AggregateFn::kMax) {
      best = std::max(best, v);
    } else if (e.aggregate == AggregateFn::kMin) {
      best = std::min(best, v);
    }
    sum += v;
    ++count;
  }

  switch (e.aggregate) {
    case AggregateFn::kCount:
      return Value::Number(static_cast<double>(count));
    case AggregateFn::kSum:
      return Value::Number(sum);
    case AggregateFn::kMax:
    case AggregateFn::kMin:
      return count == 0 ? Value::Null() : Value::Number(best);
    case AggregateFn::kAvg:
      return count == 0 ? Value::Null()
                        : Value::Number(sum / static_cast<double>(count));
  }
  return Value::Null();
}

Value Eval(const Expr& e, EvalContext* ctx) {
  if (!ctx->ok) return Value::Null();
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kColumnRef:
      return ResolveColumn(e.qualifier, e.column, ctx);
    case Expr::Kind::kUnaryMinus: {
      const Value v = Eval(*e.operand, ctx);
      if (v.is_null()) return v;
      if (!v.is_number()) return ctx->Fail("negating a non-number");
      return Value::Number(-v.number());
    }
    case Expr::Kind::kNot:
      return Value::Bool(!Eval(*e.operand, ctx).Truthy());
    case Expr::Kind::kBinary:
      return EvalBinary(e, ctx);
    case Expr::Kind::kSubquery:
      return EvalSubquery(e, ctx);
  }
  return ctx->Fail("corrupt expression node");
}

void ExecStmt(const Stmt& stmt, EvalContext* ctx);

void ExecBody(const std::vector<StmtPtr>& body, EvalContext* ctx) {
  for (const StmtPtr& stmt : body) {
    if (!ctx->ok) return;
    ExecStmt(*stmt, ctx);
  }
}

void ExecUpdate(const Stmt& stmt, EvalContext* ctx) {
  Table* table = ctx->db->GetTable(stmt.table);
  if (table == nullptr) {
    ctx->Fail("unknown table '" + stmt.table + "' in UPDATE");
    return;
  }
  // Resolve target columns once.
  std::vector<int> columns;
  columns.reserve(stmt.assignments.size());
  for (const Assignment& a : stmt.assignments) {
    const int col = table->ColumnIndex(a.column);
    if (col < 0) {
      ctx->Fail("no column '" + a.column + "' in '" + stmt.table + "'");
      return;
    }
    columns.push_back(col);
  }
  for (int row = 0; row < table->num_rows(); ++row) {
    ctx->bindings.push_back(RowBinding{table, row, table->name()});
    bool keep = true;
    if (stmt.where != nullptr) keep = Eval(*stmt.where, ctx).Truthy();
    std::vector<Value> new_values;
    if (keep && ctx->ok) {
      // All RHS evaluated against the pre-update row (SQL semantics).
      new_values.reserve(stmt.assignments.size());
      for (const Assignment& a : stmt.assignments) {
        new_values.push_back(Eval(*a.value, ctx));
      }
    }
    ctx->bindings.pop_back();
    if (!ctx->ok) return;
    if (!keep) continue;
    for (size_t i = 0; i < columns.size(); ++i) {
      table->Set(row, columns[i], std::move(new_values[i]));
    }
  }
}

void ExecIf(const Stmt& stmt, EvalContext* ctx) {
  for (const auto& [cond, body] : stmt.branches) {
    const Value v = Eval(*cond, ctx);
    if (!ctx->ok) return;
    if (v.Truthy()) {
      ExecBody(body, ctx);
      return;
    }
  }
  ExecBody(stmt.else_body, ctx);
}

void ExecStmt(const Stmt& stmt, EvalContext* ctx) {
  switch (stmt.kind) {
    case Stmt::Kind::kUpdate:
      ExecUpdate(stmt, ctx);
      break;
    case Stmt::Kind::kIf:
      ExecIf(stmt, ctx);
      break;
  }
}

}  // namespace

Status Interpreter::ExecuteBody(const std::vector<StmtPtr>& body, Database* db,
                                const ScalarEnv& scalars) {
  EvalContext ctx;
  ctx.db = db;
  ctx.scalars = &scalars;
  ExecBody(body, &ctx);
  if (!ctx.ok) return Status::InvalidArgument(ctx.error);
  return Status::Ok();
}

Status Interpreter::FireTriggers(const ParsedProgram& program,
                                 const std::string& table, Database* db,
                                 const ScalarEnv& scalars) {
  for (const TriggerDecl& trigger : program.triggers) {
    if (trigger.table != table) continue;
    Status status = ExecuteBody(trigger.body, db, scalars);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace lang
}  // namespace ssa
