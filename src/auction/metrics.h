#ifndef SSA_AUCTION_METRICS_H_
#define SSA_AUCTION_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "auction/auction_engine.h"
#include "util/stats.h"

namespace ssa {

/// Campaign-level analytics accumulated from per-auction outcomes: revenue,
/// fill rates, click-through by slot, and processing-time distributions —
/// the provider-side dashboard the benchmark harnesses and examples report
/// from.
class CampaignMetrics {
 public:
  /// Folds one auction's outcome into the aggregates.
  void Record(const AuctionOutcome& outcome);

  int64_t auctions() const { return auctions_; }
  int64_t impressions() const { return impressions_; }
  int64_t clicks() const { return clicks_; }
  int64_t purchases() const { return purchases_; }
  Money revenue() const { return revenue_; }

  /// Realized click-through rate over all impressions.
  double ClickThroughRate() const;
  /// Average charged revenue per auction.
  Money RevenuePerAuction() const;
  /// Fraction of slot-auction pairs that were filled.
  double FillRate(int num_slots) const;

  /// Per-slot impression / click counts (index = slot).
  const std::vector<int64_t>& slot_impressions() const {
    return slot_impressions_;
  }
  const std::vector<int64_t>& slot_clicks() const { return slot_clicks_; }

  /// Processing-time distribution (ms) across recorded auctions.
  const SummaryStats& processing_ms() const { return processing_ms_; }

  /// Multi-line human-readable summary.
  std::string Report(int num_slots) const;

 private:
  int64_t auctions_ = 0;
  int64_t impressions_ = 0;
  int64_t clicks_ = 0;
  int64_t purchases_ = 0;
  Money revenue_ = 0;
  std::vector<int64_t> slot_impressions_;
  std::vector<int64_t> slot_clicks_;
  SummaryStats processing_ms_;
};

}  // namespace ssa

#endif  // SSA_AUCTION_METRICS_H_
