#include "auction/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "core/expected_revenue.h"
#include "durability/checkpoint.h"
#include "core/parallel_topk.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ssa {

ShardedAuctionEngine::ShardedAuctionEngine(
    const ShardedEngineConfig& config, Workload workload,
    std::vector<std::unique_ptr<BiddingStrategy>> strategies)
    : config_(config),
      workload_(std::move(workload)),
      strategies_(std::move(strategies)),
      query_gen_(workload_.config.num_keywords, config.engine.seed),
      user_rng_(config.engine.seed ^ 0x5eed0f0e125eedULL),
      cost_model_(static_cast<int>(strategies_.size()), config.cost_model) {
  SSA_CHECK(strategies_.size() == workload_.accounts.size());
  // The sharded engine replaces row-block matrix parallelism with
  // whole-shard tasks; a configured matrix_pool would be silently dropped,
  // so reject the misconfiguration instead (use ShardedEngineConfig::pool).
  SSA_CHECK_MSG(config_.engine.matrix_pool == nullptr,
                "ShardedEngineConfig: engine.matrix_pool is not used by the "
                "sharded engine; set ShardedEngineConfig::pool instead");
  const int n = static_cast<int>(strategies_.size());
  SSA_CHECK(config_.num_shards >= 1);
  const int num_shards = std::min(config_.num_shards, std::max(1, n));
  ranges_.resize(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    // Same balanced contiguous partition as the Section III-E tree leaves.
    ranges_[s].begin =
        static_cast<AdvertiserId>(static_cast<int64_t>(n) * s / num_shards);
    ranges_[s].end =
        static_cast<AdvertiserId>(static_cast<int64_t>(n) * (s + 1) /
                                  num_shards);
  }
  capture_ns_.assign(ranges_.size(), 0);
  internal_lane_ = NewPlanLane();
  // The internal lane is the engine's only lane on the RunAuctionOn path, so
  // intra-query shard parallelism is the right use of the pool there.
  internal_lane_->pool = config_.pool;
}

std::unique_ptr<ShardedAuctionEngine::PlanLane>
ShardedAuctionEngine::NewPlanLane() const {
  auto lane = std::make_unique<PlanLane>();
  // Pre-sized so parallel shard tasks only ever touch existing, disjoint
  // entries (CompiledBidsCache's concurrency precondition).
  lane->cache.Reserve(strategies_.size());
  lane->shards.resize(ranges_.size());
  lane->pool = nullptr;
  return lane;
}

void ShardedAuctionEngine::CaptureBids(const Query& query, CapturedBids* bids,
                                       uint64_t trace_seq) {
  const int n = static_cast<int>(strategies_.size());
  bids->resize(n);
  const bool traced = tracer_ != nullptr && trace_seq != 0;
  auto capture_range = [&](int s) {
    const ShardRange& range = ranges_[static_cast<size_t>(s)];
    const uint64_t t0 = traced ? Tracer::NowNs() : 0;
    WallTimer timer;
    for (AdvertiserId i = range.begin; i < range.end; ++i) {
      BidsTable& table = (*bids)[i];
      table.Clear();
      strategies_[i]->MakeBids(query, workload_.accounts[i], &table);
    }
    // One timer per shard per auction, attributed per advertiser by rows
    // emitted — the cost feedback RebalanceShards partitions on. Ranges are
    // disjoint, so the fan-out writes disjoint cost entries (and disjoint
    // capture_ns_ slots).
    const double span_ns = timer.ElapsedSeconds() * 1e9;
    cost_model_.RecordRangeSample(range.begin, range.end, *bids, span_ns);
    capture_ns_[static_cast<size_t>(s)] += static_cast<int64_t>(span_ns);
    if (traced) {
      tracer_->RecordSpan(trace_seq, TraceStage::kShardCapture, 100 + s, t0,
                          Tracer::NowNs());
    }
  };
  const int num_shards = static_cast<int>(ranges_.size());
  if (config_.pool != nullptr && num_shards > 1) {
    // Strategies of different advertisers share no state (Section II-B), so
    // the capture fans out across shards; only captures of *distinct
    // queries* must serialize.
    config_.pool->ParallelFor(num_shards, capture_range);
  } else {
    for (int s = 0; s < num_shards; ++s) capture_range(s);
  }
  cost_model_.NoteAuction();
}

void ShardedAuctionEngine::RunShardPhase(const ShardRange& range,
                                         CompiledBidsCache* cache,
                                         PlanLane::ShardScratch* scratch,
                                         const CapturedBids& bids,
                                         RevenueMatrix* revenue,
                                         bool collect_topk) const {
  WallTimer phase_timer;
  const int k = workload_.config.num_slots;
  const ClickModel& model = *workload_.click_model;
  for (AdvertiserId i = range.begin; i < range.end; ++i) {
    const CompiledBids& compiled = cache->Get(i, bids[i], k);
    FillRevenueRow(compiled, model, revenue, i);
  }
  if (!collect_topk) {
    scratch->phase_ns +=
        static_cast<int64_t>(phase_timer.ElapsedSeconds() * 1e9);
    return;
  }
  // Local per-slot top-k over the shard's rows — the leaf step of the
  // Section III-E aggregation, with global advertiser ids so the merge is a
  // plain re-offer.
  scratch->topk.Reset(k, std::max(k, 1));
  const double* base = revenue->UnassignedData();
  for (AdvertiserId i = range.begin; i < range.end; ++i) {
    const double* row = revenue->Row(i);
    for (SlotIndex j = 0; j < k; ++j) {
      const double w = row[j] - base[i];
      if (w <= 0.0) continue;  // never beats leaving the slot empty
      scratch->topk.Offer(j, w, i);
    }
  }
  scratch->phase_ns +=
      static_cast<int64_t>(phase_timer.ElapsedSeconds() * 1e9);
}

std::vector<AdvertiserId> ShardedAuctionEngine::MergeShardCandidates(
    PlanLane* lane, int num_advertisers, int num_slots) const {
  // At K >= kTreeMergeMinShards, route the per-shard partials through the
  // Section III-E binary merge tree instead of one flat re-offer: each
  // shard's heaps become sorted per-slot top-k lists (the tree's leaf
  // aggregates), merged pairwise in ceil(log2 K) levels on the lane's pool.
  // Top-k-of-union is associative under the strict (weight, id) order, so
  // the retained set — and the sorted candidate vector — is bitwise
  // identical to the flat path (sharded_engine_test pins K in {8, 12}).
  const size_t num_shards = lane->shards.size();
  if (static_cast<int>(num_shards) >= kTreeMergeMinShards) {
    std::vector<SlotTopK> partials(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      partials[s].per_slot.resize(num_slots);
      for (SlotIndex j = 0; j < num_slots; ++j) {
        lane->shards[s].topk.ExtractDescending(j, &partials[s].per_slot[j]);
      }
    }
    return TreeMergeToCandidates(std::move(partials), num_slots,
                                 num_advertisers, lane->pool);
  }

  // Re-offer every shard's retained entries into one global heap set. The
  // (weight, id) order is strict and insertion-order independent, and every
  // globally top-k entry is top-k within its own shard, so the merged heaps
  // hold exactly the entries SelectTopPerSlotCandidates(revenue, k) keeps.
  TopKHeapSet& merged = lane->merged_topk;
  merged.Reset(num_slots, std::max(num_slots, 1));
  for (const PlanLane::ShardScratch& shard : lane->shards) {
    for (SlotIndex j = 0; j < num_slots; ++j) {
      const TopKHeapSet::Entry* entries = shard.topk.entries(j);
      for (int e = 0; e < shard.topk.size(j); ++e) {
        merged.Offer(j, entries[e].weight, entries[e].id);
      }
    }
  }
  // Candidate extraction mirrors SelectTopPerSlotCandidates: union across
  // slots, deduplicated, sorted ascending (the sort makes the vector
  // canonical, so heap iteration order is immaterial).
  std::vector<char> seen(num_advertisers, 0);
  std::vector<AdvertiserId> candidates;
  candidates.reserve(static_cast<size_t>(num_slots) * num_slots);
  for (SlotIndex j = 0; j < num_slots; ++j) {
    const TopKHeapSet::Entry* entries = merged.entries(j);
    for (int e = 0; e < merged.size(j); ++e) {
      const AdvertiserId i = entries[e].id;
      if (!seen[i]) {
        seen[i] = 1;
        candidates.push_back(i);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

const AuctionOutcome& ShardedAuctionEngine::RunAuction() {
  return RunAuctionOn(query_gen_.Next());
}

const AuctionOutcome& ShardedAuctionEngine::RunAuctionOn(const Query& query) {
  PlanAuction(query, &plan_scratch_);
  return SettlePlanned(&plan_scratch_);
}

void ShardedAuctionEngine::PlanCaptured(const Query& query,
                                        const CapturedBids& bids,
                                        PlanLane* lane, PlannedAuction* plan,
                                        uint64_t trace_seq) const {
  const int n = static_cast<int>(strategies_.size());
  const int k = workload_.config.num_slots;
  const ClickModel& model = *workload_.click_model;
  SSA_CHECK(static_cast<int>(bids.size()) == n);
  // A Repartition since this lane was created may have changed the shard
  // count; scratch adapts lazily (the compiled-bids cache is keyed by global
  // advertiser id, so it carries over untouched).
  if (lane->shards.size() != ranges_.size()) {
    lane->shards.clear();
    lane->shards.resize(ranges_.size());
  }
  plan->outcome = AuctionOutcome{};
  plan->outcome.query = query;

  // --- Shard phase: compile + the Theorem 2 matrix, fused, share-nothing.
  // Shards touch disjoint caches, heaps, and matrix rows, so the pool
  // schedule cannot change any value.
  WallTimer timer;
  RevenueMatrix& revenue = lane->revenue;
  revenue.Reset(n, k);
  const bool reduced =
      config_.engine.wd_method == WdMethod::kReducedHungarian;
  const int num_shards = static_cast<int>(ranges_.size());
  const bool traced = tracer_ != nullptr && trace_seq != 0;
  auto plan_shard = [&](int s) {
    const uint64_t t0 = traced ? Tracer::NowNs() : 0;
    RunShardPhase(ranges_[s], &lane->cache, &lane->shards[s], bids, &revenue,
                  reduced);
    if (traced) {
      tracer_->RecordSpan(trace_seq, TraceStage::kShardPlan,
                          lane->trace_track_base + s, t0, Tracer::NowNs());
    }
  };
  if (lane->pool != nullptr && num_shards > 1) {
    lane->pool->ParallelFor(num_shards, plan_shard);
  } else {
    for (int s = 0; s < num_shards; ++s) plan_shard(s);
  }
  plan->outcome.program_eval_ms = timer.ElapsedMillis();

  // --- Step 4: winner determination. The reduced method consumes the
  // merged shard candidates; the dense methods see the full matrix.
  timer.Reset();
  if (reduced) {
    plan->outcome.wd = SolveOnCandidates(revenue,
                                         MergeShardCandidates(lane, n, k));
  } else {
    plan->outcome.wd = DetermineWinners(revenue, config_.engine.wd_method);
  }
  plan->outcome.wd_ms = timer.ElapsedMillis();

  // --- Step 6 prep: prices.
  timer.Reset();
  plan->prices = ComputePrices(config_.engine.pricing, revenue, model,
                               plan->outcome.wd.allocation);
  plan->outcome.pricing_ms = timer.ElapsedMillis();
}

void ShardedAuctionEngine::PlanAuction(const Query& query,
                                       PlannedAuction* plan,
                                       uint64_t trace_seq) {
  // Capture (Step 3, order-dependent) then plan on the internal lane. The
  // reported program_eval_ms spans both halves, matching the fused phase the
  // pre-lane engine timed.
  WallTimer timer;
  CaptureBids(query, &capture_scratch_, trace_seq);
  const double capture_ms = timer.ElapsedMillis();
  PlanCaptured(query, capture_scratch_, internal_lane_.get(), plan,
               trace_seq);
  plan->outcome.program_eval_ms += capture_ms;
}

void ShardedAuctionEngine::CaptureBidsForRead(const Query& query,
                                              CapturedBids* bids) const {
  const int n = static_cast<int>(strategies_.size());
  bids->resize(n);
  for (AdvertiserId i = 0; i < n; ++i) {
    BidsTable& table = (*bids)[i];
    table.Clear();
    strategies_[i]->PeekBids(query, workload_.accounts[i], &table);
  }
}

void ShardedAuctionEngine::WhatIfAuction(const Query& query, PlanLane* lane,
                                         PlannedAuction* plan) const {
  WallTimer timer;
  CaptureBidsForRead(query, &lane->peek_capture);
  const double capture_ms = timer.ElapsedMillis();
  PlanCaptured(query, lane->peek_capture, lane, plan);
  plan->outcome.program_eval_ms += capture_ms;
}

const AuctionOutcome& ShardedAuctionEngine::SettlePlanned(
    PlannedAuction* plan) {
  const ClickModel& model = *workload_.click_model;
  outcome_ = std::move(plan->outcome);
  outcome_.prices = std::move(plan->prices);
  ++auctions_run_;

  // --- Step 5: user action simulation, charging, accounting, notifications.
  SettleAuction(config_.engine.pricing, model, outcome_.prices,
                &workload_.accounts, strategies_, &user_rng_, &outcome_);
  total_revenue_ += outcome_.revenue_charged;
  return outcome_;
}

ShardedAuctionEngine::ShardStats ShardedAuctionEngine::shard_stats(
    int shard) const {
  SSA_CHECK(shard >= 0 && shard < num_shards());
  const ShardRange& range = ranges_[shard];
  const CompiledBidsCache& cache = internal_lane_->cache;
  ShardStats stats;
  stats.begin = range.begin;
  stats.end = range.end;
  stats.cache_hits = cache.HitsInRange(range.begin, range.end);
  stats.cache_misses = cache.MissesInRange(range.begin, range.end);
  stats.capture_ns = capture_ns_[static_cast<size_t>(shard)];
  if (shard < static_cast<int>(internal_lane_->shards.size())) {
    stats.phase_ns = internal_lane_->shards[shard].phase_ns;
  }
  stats.model_cost = cost_model_.RangeCost(range.begin, range.end);
  return stats;
}

Status ShardedAuctionEngine::Repartition(
    const std::vector<ShardRange>& ranges) {
  const AdvertiserId n = static_cast<AdvertiserId>(strategies_.size());
  if (ranges.empty()) {
    return Status::InvalidArgument("Repartition: empty range list");
  }
  if (ranges.front().begin != 0 || ranges.back().end != n) {
    return Status::InvalidArgument(
        "Repartition: ranges must cover [0, num_advertisers)");
  }
  for (size_t s = 0; s < ranges.size(); ++s) {
    if (ranges[s].begin >= ranges[s].end) {
      return Status::InvalidArgument("Repartition: empty or inverted shard");
    }
    if (s > 0 && ranges[s].begin != ranges[s - 1].end) {
      return Status::InvalidArgument("Repartition: ranges must be contiguous");
    }
  }
  ranges_ = ranges;
  // The internal lane's shard scratch is layout-specific (per-shard heaps and
  // phase timers), as are the capture clocks; the compiled-bids cache is
  // keyed by global advertiser id and survives untouched. External lanes
  // resize lazily in PlanCaptured.
  capture_ns_.assign(ranges_.size(), 0);
  internal_lane_->shards.clear();
  internal_lane_->shards.resize(ranges_.size());
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Instant repartition marker on the executor track (rebalances run only
    // between epochs, so this never races a plan's shard spans). Sequenced
    // by auction count so successive layout changes stay distinguishable.
    const uint64_t now = Tracer::NowNs();
    tracer_->RecordSpan(static_cast<uint64_t>(auctions_run_) + 1,
                        TraceStage::kRepartition, 0, now, now);
  }
  return Status::Ok();
}

bool ShardedAuctionEngine::RebalanceShards(double min_imbalance) {
  if (num_shards() <= 1) return false;
  if (cost_model_.TotalCost() <= 0.0) return false;  // no signal yet
  const double imbalance =
      ShardRebalancer::PredictedImbalance(cost_model_.costs(), ranges_);
  if (imbalance < min_imbalance) return false;
  std::vector<ShardRange> balanced = ShardRebalancer::ComputeBalancedRanges(
      cost_model_.costs(), num_shards());
  if (balanced == ranges_) return false;
  const Status status = Repartition(balanced);
  SSA_CHECK_MSG(status.ok(), "RebalanceShards produced invalid ranges");
  return true;
}

int64_t ShardedAuctionEngine::cache_hits() const {
  return internal_lane_->cache_hits();
}

int64_t ShardedAuctionEngine::cache_misses() const {
  return internal_lane_->cache_misses();
}

int64_t ShardedAuctionEngine::verified_recompiles() const {
  return internal_lane_->cache.verified_recompiles();
}

void ShardedAuctionEngine::CaptureCheckpoint(EngineCheckpoint* ckpt) const {
  *ckpt = EngineCheckpoint{};
  ckpt->seq = static_cast<uint64_t>(auctions_run_);
  ckpt->total_revenue = total_revenue_;
  user_rng_.SaveState(ckpt->user_rng);
  ckpt->query_gen = query_gen_.SaveState();
  ckpt->num_advertisers = static_cast<int32_t>(strategies_.size());
  ckpt->num_slots = workload_.config.num_slots;
  ckpt->num_keywords = workload_.config.num_keywords;
  ckpt->accounts = workload_.accounts;
  ckpt->strategy_state.resize(strategies_.size());
  for (size_t i = 0; i < strategies_.size(); ++i) {
    strategies_[i]->SaveState(&ckpt->strategy_state[i]);
  }
  // The lane cache keys by global advertiser id, so its key snapshot is
  // already portable across shard layouts. Only the internal lane's cache
  // persists — external PlanLanes are scratch.
  ckpt->cache_keys = internal_lane_->cache.ExportKeys();
  ckpt->cache_keys.resize(strategies_.size());
}

Status ShardedAuctionEngine::RestoreCheckpoint(const EngineCheckpoint& ckpt) {
  const size_t n = strategies_.size();
  if (ckpt.num_advertisers != static_cast<int32_t>(n) ||
      ckpt.num_slots != workload_.config.num_slots ||
      ckpt.num_keywords != workload_.config.num_keywords) {
    return Status::InvalidArgument(
        "checkpoint workload shape does not match this engine");
  }
  if (ckpt.accounts.size() != n || ckpt.strategy_state.size() != n) {
    return Status::InvalidArgument("checkpoint population size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    SSA_RETURN_IF_ERROR(strategies_[i]->RestoreState(ckpt.strategy_state[i]));
  }
  workload_.accounts = ckpt.accounts;
  user_rng_.RestoreState(ckpt.user_rng);
  query_gen_.RestoreState(ckpt.query_gen);
  auctions_run_ = static_cast<int64_t>(ckpt.seq);
  total_revenue_ = ckpt.total_revenue;
  // Cache keys are global-id indexed on both sides, so a checkpoint written
  // under one shard layout restores under any other.
  internal_lane_->cache.PrimeExpectedKeys(ckpt.cache_keys);
  outcome_ = AuctionOutcome{};
  return Status::Ok();
}

Status ShardedAuctionEngine::WriteCheckpoint(const std::string& path) const {
  EngineCheckpoint ckpt;
  CaptureCheckpoint(&ckpt);
  return WriteCheckpointFile(path, ckpt);
}

Status ShardedAuctionEngine::RestoreFromCheckpoint(const std::string& path) {
  EngineCheckpoint ckpt;
  SSA_RETURN_IF_ERROR(ReadCheckpointFile(path, &ckpt));
  return RestoreCheckpoint(ckpt);
}

}  // namespace ssa
