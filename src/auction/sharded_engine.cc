#include "auction/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "core/expected_revenue.h"
#include "durability/checkpoint.h"
#include "core/parallel_topk.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ssa {

ShardedAuctionEngine::ShardedAuctionEngine(
    const ShardedEngineConfig& config, Workload workload,
    std::vector<std::unique_ptr<BiddingStrategy>> strategies)
    : config_(config),
      workload_(std::move(workload)),
      strategies_(std::move(strategies)),
      query_gen_(workload_.config.num_keywords, config.engine.seed),
      user_rng_(config.engine.seed ^ 0x5eed0f0e125eedULL) {
  SSA_CHECK(strategies_.size() == workload_.accounts.size());
  const int n = static_cast<int>(strategies_.size());
  SSA_CHECK(config_.num_shards >= 1);
  const int num_shards = std::min(config_.num_shards, std::max(1, n));
  shards_.resize(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    Shard& shard = shards_[s];
    // Same balanced contiguous partition as the Section III-E tree leaves.
    shard.begin = static_cast<AdvertiserId>(
        static_cast<int64_t>(n) * s / num_shards);
    shard.end = static_cast<AdvertiserId>(
        static_cast<int64_t>(n) * (s + 1) / num_shards);
    shard.bids.resize(shard.end - shard.begin);
  }
}

void ShardedAuctionEngine::RunShardPhase(Shard* shard, const Query& query,
                                         RevenueMatrix* revenue,
                                         bool collect_topk) {
  const int k = workload_.config.num_slots;
  const ClickModel& model = *workload_.click_model;
  for (AdvertiserId i = shard->begin; i < shard->end; ++i) {
    BidsTable& bids = shard->bids[i - shard->begin];
    bids.Clear();
    strategies_[i]->MakeBids(query, workload_.accounts[i], &bids);
    const CompiledBids& compiled = shard->cache.Get(i - shard->begin, bids, k);
    FillRevenueRow(compiled, model, revenue, i);
  }
  if (!collect_topk) return;
  // Local per-slot top-k over the shard's rows — the leaf step of the
  // Section III-E aggregation, with global advertiser ids so the merge is a
  // plain re-offer.
  shard->topk.Reset(k, std::max(k, 1));
  const double* base = revenue->UnassignedData();
  for (AdvertiserId i = shard->begin; i < shard->end; ++i) {
    const double* row = revenue->Row(i);
    for (SlotIndex j = 0; j < k; ++j) {
      const double w = row[j] - base[i];
      if (w <= 0.0) continue;  // never beats leaving the slot empty
      shard->topk.Offer(j, w, i);
    }
  }
}

std::vector<AdvertiserId> ShardedAuctionEngine::MergeShardCandidates(
    int num_advertisers, int num_slots) {
  // At K >= kTreeMergeMinShards, route the per-shard partials through the
  // Section III-E binary merge tree instead of one flat re-offer: each
  // shard's heaps become sorted per-slot top-k lists (the tree's leaf
  // aggregates), merged pairwise in ceil(log2 K) levels on the shard pool.
  // Top-k-of-union is associative under the strict (weight, id) order, so
  // the retained set — and the sorted candidate vector — is bitwise
  // identical to the flat path (sharded_engine_test pins K in {8, 12}).
  if (static_cast<int>(shards_.size()) >= kTreeMergeMinShards) {
    std::vector<SlotTopK> partials(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      partials[s].per_slot.resize(num_slots);
      for (SlotIndex j = 0; j < num_slots; ++j) {
        shards_[s].topk.ExtractDescending(j, &partials[s].per_slot[j]);
      }
    }
    return TreeMergeToCandidates(std::move(partials), num_slots,
                                 num_advertisers, config_.pool);
  }

  // Re-offer every shard's retained entries into one global heap set. The
  // (weight, id) order is strict and insertion-order independent, and every
  // globally top-k entry is top-k within its own shard, so the merged heaps
  // hold exactly the entries SelectTopPerSlotCandidates(revenue, k) keeps.
  merged_topk_.Reset(num_slots, std::max(num_slots, 1));
  for (const Shard& shard : shards_) {
    for (SlotIndex j = 0; j < num_slots; ++j) {
      const TopKHeapSet::Entry* entries = shard.topk.entries(j);
      for (int e = 0; e < shard.topk.size(j); ++e) {
        merged_topk_.Offer(j, entries[e].weight, entries[e].id);
      }
    }
  }
  // Candidate extraction mirrors SelectTopPerSlotCandidates: union across
  // slots, deduplicated, sorted ascending (the sort makes the vector
  // canonical, so heap iteration order is immaterial).
  std::vector<char> seen(num_advertisers, 0);
  std::vector<AdvertiserId> candidates;
  candidates.reserve(static_cast<size_t>(num_slots) * num_slots);
  for (SlotIndex j = 0; j < num_slots; ++j) {
    const TopKHeapSet::Entry* entries = merged_topk_.entries(j);
    for (int e = 0; e < merged_topk_.size(j); ++e) {
      const AdvertiserId i = entries[e].id;
      if (!seen[i]) {
        seen[i] = 1;
        candidates.push_back(i);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

const AuctionOutcome& ShardedAuctionEngine::RunAuction() {
  return RunAuctionOn(query_gen_.Next());
}

const AuctionOutcome& ShardedAuctionEngine::RunAuctionOn(const Query& query) {
  PlanAuction(query, &plan_scratch_);
  return SettlePlanned(&plan_scratch_);
}

void ShardedAuctionEngine::PlanAuction(const Query& query,
                                       PlannedAuction* plan) {
  const int n = static_cast<int>(strategies_.size());
  const int k = workload_.config.num_slots;
  const ClickModel& model = *workload_.click_model;
  plan->outcome = AuctionOutcome{};
  plan->outcome.query = query;

  // --- Shard phase: Step 3 + the Theorem 2 matrix, fused and share-nothing.
  // Shards touch disjoint strategies, bid tables, caches, and matrix rows,
  // so the pool schedule cannot change any value.
  WallTimer timer;
  RevenueMatrix revenue(n, k);
  const bool reduced =
      config_.engine.wd_method == WdMethod::kReducedHungarian;
  const int num_shards = static_cast<int>(shards_.size());
  if (config_.pool != nullptr && num_shards > 1) {
    config_.pool->ParallelFor(num_shards, [&](int s) {
      RunShardPhase(&shards_[s], query, &revenue, reduced);
    });
  } else {
    for (int s = 0; s < num_shards; ++s) {
      RunShardPhase(&shards_[s], query, &revenue, reduced);
    }
  }
  plan->outcome.program_eval_ms = timer.ElapsedMillis();

  // --- Step 4: winner determination. The reduced method consumes the
  // merged shard candidates; the dense methods see the full matrix.
  timer.Reset();
  if (reduced) {
    plan->outcome.wd = SolveOnCandidates(revenue, MergeShardCandidates(n, k));
  } else {
    plan->outcome.wd = DetermineWinners(revenue, config_.engine.wd_method);
  }
  plan->outcome.wd_ms = timer.ElapsedMillis();

  // --- Step 6 prep: prices.
  timer.Reset();
  plan->prices = ComputePrices(config_.engine.pricing, revenue, model,
                               plan->outcome.wd.allocation);
  plan->outcome.pricing_ms = timer.ElapsedMillis();
}

const AuctionOutcome& ShardedAuctionEngine::SettlePlanned(
    PlannedAuction* plan) {
  const ClickModel& model = *workload_.click_model;
  outcome_ = std::move(plan->outcome);
  outcome_.prices = std::move(plan->prices);
  ++auctions_run_;

  // --- Step 5: user action simulation, charging, accounting, notifications.
  SettleAuction(config_.engine.pricing, model, outcome_.prices,
                &workload_.accounts, strategies_, &user_rng_, &outcome_);
  total_revenue_ += outcome_.revenue_charged;
  return outcome_;
}

ShardedAuctionEngine::ShardStats ShardedAuctionEngine::shard_stats(
    int shard) const {
  SSA_CHECK(shard >= 0 && shard < num_shards());
  const Shard& s = shards_[shard];
  return ShardStats{s.begin, s.end, s.cache.hits(), s.cache.misses()};
}

int64_t ShardedAuctionEngine::cache_hits() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.cache.hits();
  return total;
}

int64_t ShardedAuctionEngine::cache_misses() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.cache.misses();
  return total;
}

int64_t ShardedAuctionEngine::verified_recompiles() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.cache.verified_recompiles();
  return total;
}

void ShardedAuctionEngine::CaptureCheckpoint(EngineCheckpoint* ckpt) const {
  *ckpt = EngineCheckpoint{};
  ckpt->seq = static_cast<uint64_t>(auctions_run_);
  ckpt->total_revenue = total_revenue_;
  user_rng_.SaveState(ckpt->user_rng);
  ckpt->query_gen = query_gen_.SaveState();
  ckpt->num_advertisers = static_cast<int32_t>(strategies_.size());
  ckpt->num_slots = workload_.config.num_slots;
  ckpt->num_keywords = workload_.config.num_keywords;
  ckpt->accounts = workload_.accounts;
  ckpt->strategy_state.resize(strategies_.size());
  for (size_t i = 0; i < strategies_.size(); ++i) {
    strategies_[i]->SaveState(&ckpt->strategy_state[i]);
  }
  // Shard caches key on local index i - begin; the checkpoint stores keys by
  // global advertiser id so it is portable across shard layouts.
  ckpt->cache_keys.resize(strategies_.size());
  for (const Shard& shard : shards_) {
    const std::vector<CompiledBidsCache::KeySnapshot> local =
        shard.cache.ExportKeys();
    for (size_t j = 0; j < local.size(); ++j) {
      ckpt->cache_keys[shard.begin + j] = local[j];
    }
  }
}

Status ShardedAuctionEngine::RestoreCheckpoint(const EngineCheckpoint& ckpt) {
  const size_t n = strategies_.size();
  if (ckpt.num_advertisers != static_cast<int32_t>(n) ||
      ckpt.num_slots != workload_.config.num_slots ||
      ckpt.num_keywords != workload_.config.num_keywords) {
    return Status::InvalidArgument(
        "checkpoint workload shape does not match this engine");
  }
  if (ckpt.accounts.size() != n || ckpt.strategy_state.size() != n) {
    return Status::InvalidArgument("checkpoint population size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    SSA_RETURN_IF_ERROR(strategies_[i]->RestoreState(ckpt.strategy_state[i]));
  }
  workload_.accounts = ckpt.accounts;
  user_rng_.RestoreState(ckpt.user_rng);
  query_gen_.RestoreState(ckpt.query_gen);
  auctions_run_ = static_cast<int64_t>(ckpt.seq);
  total_revenue_ = ckpt.total_revenue;
  for (Shard& shard : shards_) {
    std::vector<CompiledBidsCache::KeySnapshot> local(shard.end - shard.begin);
    for (size_t j = 0; j < local.size(); ++j) {
      if (shard.begin + j < ckpt.cache_keys.size()) {
        local[j] = ckpt.cache_keys[shard.begin + j];
      }
    }
    shard.cache.PrimeExpectedKeys(local);
  }
  outcome_ = AuctionOutcome{};
  return Status::Ok();
}

Status ShardedAuctionEngine::WriteCheckpoint(const std::string& path) const {
  EngineCheckpoint ckpt;
  CaptureCheckpoint(&ckpt);
  return WriteCheckpointFile(path, ckpt);
}

Status ShardedAuctionEngine::RestoreFromCheckpoint(const std::string& path) {
  EngineCheckpoint ckpt;
  SSA_RETURN_IF_ERROR(ReadCheckpointFile(path, &ckpt));
  return RestoreCheckpoint(ckpt);
}

}  // namespace ssa
