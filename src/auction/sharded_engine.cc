#include "auction/sharded_engine.h"

#include <algorithm>
#include <utility>

#include "core/expected_revenue.h"
#include "durability/checkpoint.h"
#include "core/parallel_topk.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ssa {

int64_t ShardedAuctionEngine::PlanLane::cache_hits() const {
  int64_t total = 0;
  for (const ShardScratch& s : shards) total += s.cache.hits();
  return total;
}

int64_t ShardedAuctionEngine::PlanLane::cache_misses() const {
  int64_t total = 0;
  for (const ShardScratch& s : shards) total += s.cache.misses();
  return total;
}

ShardedAuctionEngine::ShardedAuctionEngine(
    const ShardedEngineConfig& config, Workload workload,
    std::vector<std::unique_ptr<BiddingStrategy>> strategies)
    : config_(config),
      workload_(std::move(workload)),
      strategies_(std::move(strategies)),
      query_gen_(workload_.config.num_keywords, config.engine.seed),
      user_rng_(config.engine.seed ^ 0x5eed0f0e125eedULL) {
  SSA_CHECK(strategies_.size() == workload_.accounts.size());
  const int n = static_cast<int>(strategies_.size());
  SSA_CHECK(config_.num_shards >= 1);
  const int num_shards = std::min(config_.num_shards, std::max(1, n));
  ranges_.resize(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    // Same balanced contiguous partition as the Section III-E tree leaves.
    ranges_[s].begin =
        static_cast<AdvertiserId>(static_cast<int64_t>(n) * s / num_shards);
    ranges_[s].end =
        static_cast<AdvertiserId>(static_cast<int64_t>(n) * (s + 1) /
                                  num_shards);
  }
  internal_lane_ = NewPlanLane();
  // The internal lane is the engine's only lane on the RunAuctionOn path, so
  // intra-query shard parallelism is the right use of the pool there.
  internal_lane_->pool = config_.pool;
}

std::unique_ptr<ShardedAuctionEngine::PlanLane>
ShardedAuctionEngine::NewPlanLane() const {
  auto lane = std::make_unique<PlanLane>();
  lane->shards.resize(ranges_.size());
  lane->pool = nullptr;
  return lane;
}

void ShardedAuctionEngine::CaptureBids(const Query& query,
                                       CapturedBids* bids) {
  const int n = static_cast<int>(strategies_.size());
  bids->resize(n);
  auto capture_range = [&](const ShardRange& range) {
    for (AdvertiserId i = range.begin; i < range.end; ++i) {
      BidsTable& table = (*bids)[i];
      table.Clear();
      strategies_[i]->MakeBids(query, workload_.accounts[i], &table);
    }
  };
  const int num_shards = static_cast<int>(ranges_.size());
  if (config_.pool != nullptr && num_shards > 1) {
    // Strategies of different advertisers share no state (Section II-B), so
    // the capture fans out across shards; only captures of *distinct
    // queries* must serialize.
    config_.pool->ParallelFor(num_shards,
                              [&](int s) { capture_range(ranges_[s]); });
  } else {
    for (int s = 0; s < num_shards; ++s) capture_range(ranges_[s]);
  }
}

void ShardedAuctionEngine::RunShardPhase(const ShardRange& range,
                                         PlanLane::ShardScratch* scratch,
                                         const CapturedBids& bids,
                                         RevenueMatrix* revenue,
                                         bool collect_topk) const {
  const int k = workload_.config.num_slots;
  const ClickModel& model = *workload_.click_model;
  for (AdvertiserId i = range.begin; i < range.end; ++i) {
    const CompiledBids& compiled =
        scratch->cache.Get(i - range.begin, bids[i], k);
    FillRevenueRow(compiled, model, revenue, i);
  }
  if (!collect_topk) return;
  // Local per-slot top-k over the shard's rows — the leaf step of the
  // Section III-E aggregation, with global advertiser ids so the merge is a
  // plain re-offer.
  scratch->topk.Reset(k, std::max(k, 1));
  const double* base = revenue->UnassignedData();
  for (AdvertiserId i = range.begin; i < range.end; ++i) {
    const double* row = revenue->Row(i);
    for (SlotIndex j = 0; j < k; ++j) {
      const double w = row[j] - base[i];
      if (w <= 0.0) continue;  // never beats leaving the slot empty
      scratch->topk.Offer(j, w, i);
    }
  }
}

std::vector<AdvertiserId> ShardedAuctionEngine::MergeShardCandidates(
    PlanLane* lane, int num_advertisers, int num_slots) const {
  // At K >= kTreeMergeMinShards, route the per-shard partials through the
  // Section III-E binary merge tree instead of one flat re-offer: each
  // shard's heaps become sorted per-slot top-k lists (the tree's leaf
  // aggregates), merged pairwise in ceil(log2 K) levels on the lane's pool.
  // Top-k-of-union is associative under the strict (weight, id) order, so
  // the retained set — and the sorted candidate vector — is bitwise
  // identical to the flat path (sharded_engine_test pins K in {8, 12}).
  const size_t num_shards = lane->shards.size();
  if (static_cast<int>(num_shards) >= kTreeMergeMinShards) {
    std::vector<SlotTopK> partials(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      partials[s].per_slot.resize(num_slots);
      for (SlotIndex j = 0; j < num_slots; ++j) {
        lane->shards[s].topk.ExtractDescending(j, &partials[s].per_slot[j]);
      }
    }
    return TreeMergeToCandidates(std::move(partials), num_slots,
                                 num_advertisers, lane->pool);
  }

  // Re-offer every shard's retained entries into one global heap set. The
  // (weight, id) order is strict and insertion-order independent, and every
  // globally top-k entry is top-k within its own shard, so the merged heaps
  // hold exactly the entries SelectTopPerSlotCandidates(revenue, k) keeps.
  TopKHeapSet& merged = lane->merged_topk;
  merged.Reset(num_slots, std::max(num_slots, 1));
  for (const PlanLane::ShardScratch& shard : lane->shards) {
    for (SlotIndex j = 0; j < num_slots; ++j) {
      const TopKHeapSet::Entry* entries = shard.topk.entries(j);
      for (int e = 0; e < shard.topk.size(j); ++e) {
        merged.Offer(j, entries[e].weight, entries[e].id);
      }
    }
  }
  // Candidate extraction mirrors SelectTopPerSlotCandidates: union across
  // slots, deduplicated, sorted ascending (the sort makes the vector
  // canonical, so heap iteration order is immaterial).
  std::vector<char> seen(num_advertisers, 0);
  std::vector<AdvertiserId> candidates;
  candidates.reserve(static_cast<size_t>(num_slots) * num_slots);
  for (SlotIndex j = 0; j < num_slots; ++j) {
    const TopKHeapSet::Entry* entries = merged.entries(j);
    for (int e = 0; e < merged.size(j); ++e) {
      const AdvertiserId i = entries[e].id;
      if (!seen[i]) {
        seen[i] = 1;
        candidates.push_back(i);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

const AuctionOutcome& ShardedAuctionEngine::RunAuction() {
  return RunAuctionOn(query_gen_.Next());
}

const AuctionOutcome& ShardedAuctionEngine::RunAuctionOn(const Query& query) {
  PlanAuction(query, &plan_scratch_);
  return SettlePlanned(&plan_scratch_);
}

void ShardedAuctionEngine::PlanCaptured(const Query& query,
                                        const CapturedBids& bids,
                                        PlanLane* lane,
                                        PlannedAuction* plan) const {
  const int n = static_cast<int>(strategies_.size());
  const int k = workload_.config.num_slots;
  const ClickModel& model = *workload_.click_model;
  SSA_CHECK(static_cast<int>(bids.size()) == n);
  SSA_CHECK(lane->shards.size() == ranges_.size());
  plan->outcome = AuctionOutcome{};
  plan->outcome.query = query;

  // --- Shard phase: compile + the Theorem 2 matrix, fused, share-nothing.
  // Shards touch disjoint caches, heaps, and matrix rows, so the pool
  // schedule cannot change any value.
  WallTimer timer;
  RevenueMatrix& revenue = lane->revenue;
  revenue.Reset(n, k);
  const bool reduced =
      config_.engine.wd_method == WdMethod::kReducedHungarian;
  const int num_shards = static_cast<int>(ranges_.size());
  if (lane->pool != nullptr && num_shards > 1) {
    lane->pool->ParallelFor(num_shards, [&](int s) {
      RunShardPhase(ranges_[s], &lane->shards[s], bids, &revenue, reduced);
    });
  } else {
    for (int s = 0; s < num_shards; ++s) {
      RunShardPhase(ranges_[s], &lane->shards[s], bids, &revenue, reduced);
    }
  }
  plan->outcome.program_eval_ms = timer.ElapsedMillis();

  // --- Step 4: winner determination. The reduced method consumes the
  // merged shard candidates; the dense methods see the full matrix.
  timer.Reset();
  if (reduced) {
    plan->outcome.wd = SolveOnCandidates(revenue,
                                         MergeShardCandidates(lane, n, k));
  } else {
    plan->outcome.wd = DetermineWinners(revenue, config_.engine.wd_method);
  }
  plan->outcome.wd_ms = timer.ElapsedMillis();

  // --- Step 6 prep: prices.
  timer.Reset();
  plan->prices = ComputePrices(config_.engine.pricing, revenue, model,
                               plan->outcome.wd.allocation);
  plan->outcome.pricing_ms = timer.ElapsedMillis();
}

void ShardedAuctionEngine::PlanAuction(const Query& query,
                                       PlannedAuction* plan) {
  // Capture (Step 3, order-dependent) then plan on the internal lane. The
  // reported program_eval_ms spans both halves, matching the fused phase the
  // pre-lane engine timed.
  WallTimer timer;
  CaptureBids(query, &capture_scratch_);
  const double capture_ms = timer.ElapsedMillis();
  PlanCaptured(query, capture_scratch_, internal_lane_.get(), plan);
  plan->outcome.program_eval_ms += capture_ms;
}

const AuctionOutcome& ShardedAuctionEngine::SettlePlanned(
    PlannedAuction* plan) {
  const ClickModel& model = *workload_.click_model;
  outcome_ = std::move(plan->outcome);
  outcome_.prices = std::move(plan->prices);
  ++auctions_run_;

  // --- Step 5: user action simulation, charging, accounting, notifications.
  SettleAuction(config_.engine.pricing, model, outcome_.prices,
                &workload_.accounts, strategies_, &user_rng_, &outcome_);
  total_revenue_ += outcome_.revenue_charged;
  return outcome_;
}

ShardedAuctionEngine::ShardStats ShardedAuctionEngine::shard_stats(
    int shard) const {
  SSA_CHECK(shard >= 0 && shard < num_shards());
  const ShardRange& range = ranges_[shard];
  const CompiledBidsCache& cache = internal_lane_->shards[shard].cache;
  return ShardStats{range.begin, range.end, cache.hits(), cache.misses()};
}

int64_t ShardedAuctionEngine::cache_hits() const {
  return internal_lane_->cache_hits();
}

int64_t ShardedAuctionEngine::cache_misses() const {
  return internal_lane_->cache_misses();
}

int64_t ShardedAuctionEngine::verified_recompiles() const {
  int64_t total = 0;
  for (const PlanLane::ShardScratch& s : internal_lane_->shards) {
    total += s.cache.verified_recompiles();
  }
  return total;
}

void ShardedAuctionEngine::CaptureCheckpoint(EngineCheckpoint* ckpt) const {
  *ckpt = EngineCheckpoint{};
  ckpt->seq = static_cast<uint64_t>(auctions_run_);
  ckpt->total_revenue = total_revenue_;
  user_rng_.SaveState(ckpt->user_rng);
  ckpt->query_gen = query_gen_.SaveState();
  ckpt->num_advertisers = static_cast<int32_t>(strategies_.size());
  ckpt->num_slots = workload_.config.num_slots;
  ckpt->num_keywords = workload_.config.num_keywords;
  ckpt->accounts = workload_.accounts;
  ckpt->strategy_state.resize(strategies_.size());
  for (size_t i = 0; i < strategies_.size(); ++i) {
    strategies_[i]->SaveState(&ckpt->strategy_state[i]);
  }
  // Shard caches key on local index i - begin; the checkpoint stores keys by
  // global advertiser id so it is portable across shard layouts. Only the
  // internal lane's caches persist — external PlanLanes are scratch.
  ckpt->cache_keys.resize(strategies_.size());
  for (size_t s = 0; s < ranges_.size(); ++s) {
    const std::vector<CompiledBidsCache::KeySnapshot> local =
        internal_lane_->shards[s].cache.ExportKeys();
    for (size_t j = 0; j < local.size(); ++j) {
      ckpt->cache_keys[ranges_[s].begin + j] = local[j];
    }
  }
}

Status ShardedAuctionEngine::RestoreCheckpoint(const EngineCheckpoint& ckpt) {
  const size_t n = strategies_.size();
  if (ckpt.num_advertisers != static_cast<int32_t>(n) ||
      ckpt.num_slots != workload_.config.num_slots ||
      ckpt.num_keywords != workload_.config.num_keywords) {
    return Status::InvalidArgument(
        "checkpoint workload shape does not match this engine");
  }
  if (ckpt.accounts.size() != n || ckpt.strategy_state.size() != n) {
    return Status::InvalidArgument("checkpoint population size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    SSA_RETURN_IF_ERROR(strategies_[i]->RestoreState(ckpt.strategy_state[i]));
  }
  workload_.accounts = ckpt.accounts;
  user_rng_.RestoreState(ckpt.user_rng);
  query_gen_.RestoreState(ckpt.query_gen);
  auctions_run_ = static_cast<int64_t>(ckpt.seq);
  total_revenue_ = ckpt.total_revenue;
  for (size_t s = 0; s < ranges_.size(); ++s) {
    const ShardRange& range = ranges_[s];
    std::vector<CompiledBidsCache::KeySnapshot> local(range.end - range.begin);
    for (size_t j = 0; j < local.size(); ++j) {
      if (range.begin + j < ckpt.cache_keys.size()) {
        local[j] = ckpt.cache_keys[range.begin + j];
      }
    }
    internal_lane_->shards[s].cache.PrimeExpectedKeys(local);
  }
  outcome_ = AuctionOutcome{};
  return Status::Ok();
}

Status ShardedAuctionEngine::WriteCheckpoint(const std::string& path) const {
  EngineCheckpoint ckpt;
  CaptureCheckpoint(&ckpt);
  return WriteCheckpointFile(path, ckpt);
}

Status ShardedAuctionEngine::RestoreFromCheckpoint(const std::string& path) {
  EngineCheckpoint ckpt;
  SSA_RETURN_IF_ERROR(ReadCheckpointFile(path, &ckpt));
  return RestoreCheckpoint(ckpt);
}

}  // namespace ssa
