#include "auction/auction_engine.h"

#include <utility>

#include "durability/checkpoint.h"
#include "util/timer.h"

namespace ssa {

void SettleAuction(
    PricingRule pricing, const ClickModel& model,
    const std::vector<Money>& prices,
    std::vector<AdvertiserAccount>* accounts,
    const std::vector<std::unique_ptr<BiddingStrategy>>& strategies,
    Rng* user_rng, AuctionOutcome* outcome) {
  const int k = static_cast<int>(prices.size());
  const int kw = outcome->query.keyword;
  for (SlotIndex j = 0; j < k; ++j) {
    const AdvertiserId i = outcome->wd.allocation.slot_to_advertiser[j];
    if (i < 0) continue;
    UserEvent event;
    event.advertiser = i;
    event.slot = j;
    event.clicked = user_rng->Bernoulli(model.ClickProbability(i, j));
    const double ppc = model.PurchaseProbabilityGivenClick(i, j);
    if (event.clicked && ppc > 0.0) {
      event.purchased = user_rng->Bernoulli(ppc);
    }
    AdvertiserAccount& account = (*accounts)[i];
    if (pricing == PricingRule::kVcg) {
      // Expected lump charge, independent of the realized click.
      event.charged = prices[j];
    } else if (event.clicked) {
      event.charged = prices[j];
    }
    if (event.clicked) {
      // The provider updates ROI inputs "each time a user searches for the
      // keyword and then clicks on the advertiser's ad".
      account.value_gained[kw] += account.value_per_click[kw];
    }
    if (event.charged > 0) {
      account.amount_spent += event.charged;
      account.spent_per_keyword[kw] += event.charged;
    }
    outcome->revenue_charged += event.charged;
    outcome->events.push_back(event);
  }

  // Outcome notifications: programs that received a slot learn about it
  // (and about clicks/purchases) — the Section II-B notification triggers.
  for (const UserEvent& event : outcome->events) {
    strategies[event.advertiser]->OnOutcome(
        outcome->query, (*accounts)[event.advertiser], event.slot,
        event.clicked, event.purchased);
  }
}

AuctionEngine::AuctionEngine(
    const EngineConfig& config, Workload workload,
    std::vector<std::unique_ptr<BiddingStrategy>> strategies)
    : config_(config),
      workload_(std::move(workload)),
      strategies_(std::move(strategies)),
      query_gen_(workload_.config.num_keywords, config.seed),
      user_rng_(config.seed ^ 0x5eed0f0e125eedULL) {
  SSA_CHECK(strategies_.size() == workload_.accounts.size());
  bids_.resize(strategies_.size());
}

const AuctionOutcome& AuctionEngine::RunAuction() {
  return RunAuctionOn(query_gen_.Next());
}

const AuctionOutcome& AuctionEngine::RunAuctionOn(const Query& query) {
  const int n = static_cast<int>(strategies_.size());
  const int k = workload_.config.num_slots;
  const ClickModel& model = *workload_.click_model;
  outcome_ = AuctionOutcome{};
  outcome_.query = query;
  ++auctions_run_;

  // --- Step 3: program evaluation (every program, eagerly).
  WallTimer timer;
  for (AdvertiserId i = 0; i < n; ++i) {
    bids_[i].Clear();
    strategies_[i]->MakeBids(outcome_.query, workload_.accounts[i], &bids_[i]);
  }
  outcome_.program_eval_ms = timer.ElapsedMillis();

  // --- Expected-revenue matrix (Theorem 2 construction) over compiled
  // bids. Tables whose content fingerprint is unchanged since the last
  // auction reuse their cached compilation; the build itself streams over
  // the flat rows (optionally across config_.matrix_pool).
  timer.Reset();
  compiled_view_.clear();
  for (AdvertiserId i = 0; i < n; ++i) {
    compiled_view_.push_back(&bid_cache_.Get(i, bids_[i], k));
  }
  const RevenueMatrix revenue =
      BuildRevenueMatrixCompiled(compiled_view_, model, config_.matrix_pool);
  outcome_.matrix_ms = timer.ElapsedMillis();

  // --- Step 4: winner determination.
  timer.Reset();
  outcome_.wd = DetermineWinners(revenue, config_.wd_method);
  outcome_.wd_ms = timer.ElapsedMillis();

  // --- Step 6 prep: prices.
  timer.Reset();
  outcome_.prices =
      ComputePrices(config_.pricing, revenue, model, outcome_.wd.allocation);
  outcome_.pricing_ms = timer.ElapsedMillis();

  // --- Step 5: user action simulation, then charging and accounting.
  SettleAuction(config_.pricing, model, outcome_.prices, &workload_.accounts,
                strategies_, &user_rng_, &outcome_);
  total_revenue_ += outcome_.revenue_charged;
  return outcome_;
}

void AuctionEngine::WhatIfAuction(const Query& query,
                                  AuctionOutcome* outcome) const {
  const int n = static_cast<int>(strategies_.size());
  const int k = workload_.config.num_slots;
  const ClickModel& model = *workload_.click_model;
  *outcome = AuctionOutcome{};
  outcome->query = query;

  // Local scratch throughout: the engine's reusable buffers (bids_,
  // bid_cache_, compiled_view_, outcome_) belong to the mutating path.
  WallTimer timer;
  std::vector<BidsTable> bids(n);
  for (AdvertiserId i = 0; i < n; ++i) {
    strategies_[i]->PeekBids(query, workload_.accounts[i], &bids[i]);
  }
  outcome->program_eval_ms = timer.ElapsedMillis();

  timer.Reset();
  CompiledBidsCache cache;
  cache.Reserve(static_cast<size_t>(n));
  std::vector<const CompiledBids*> compiled;
  compiled.reserve(n);
  for (AdvertiserId i = 0; i < n; ++i) {
    compiled.push_back(&cache.Get(i, bids[i], k));
  }
  const RevenueMatrix revenue =
      BuildRevenueMatrixCompiled(compiled, model, /*pool=*/nullptr);
  outcome->matrix_ms = timer.ElapsedMillis();

  timer.Reset();
  outcome->wd = DetermineWinners(revenue, config_.wd_method);
  outcome->wd_ms = timer.ElapsedMillis();

  timer.Reset();
  outcome->prices =
      ComputePrices(config_.pricing, revenue, model, outcome->wd.allocation);
  outcome->pricing_ms = timer.ElapsedMillis();
}

void AuctionEngine::CaptureCheckpoint(EngineCheckpoint* ckpt) const {
  *ckpt = EngineCheckpoint{};
  ckpt->seq = static_cast<uint64_t>(auctions_run_);
  ckpt->total_revenue = total_revenue_;
  user_rng_.SaveState(ckpt->user_rng);
  ckpt->query_gen = query_gen_.SaveState();
  ckpt->num_advertisers = static_cast<int32_t>(strategies_.size());
  ckpt->num_slots = workload_.config.num_slots;
  ckpt->num_keywords = workload_.config.num_keywords;
  ckpt->accounts = workload_.accounts;
  ckpt->strategy_state.resize(strategies_.size());
  for (size_t i = 0; i < strategies_.size(); ++i) {
    strategies_[i]->SaveState(&ckpt->strategy_state[i]);
  }
  ckpt->cache_keys = bid_cache_.ExportKeys();
}

Status AuctionEngine::RestoreCheckpoint(const EngineCheckpoint& ckpt) {
  const size_t n = strategies_.size();
  if (ckpt.num_advertisers != static_cast<int32_t>(n) ||
      ckpt.num_slots != workload_.config.num_slots ||
      ckpt.num_keywords != workload_.config.num_keywords) {
    return Status::InvalidArgument(
        "checkpoint workload shape does not match this engine");
  }
  if (ckpt.accounts.size() != n || ckpt.strategy_state.size() != n) {
    return Status::InvalidArgument("checkpoint population size mismatch");
  }
  for (size_t i = 0; i < n; ++i) {
    SSA_RETURN_IF_ERROR(strategies_[i]->RestoreState(ckpt.strategy_state[i]));
  }
  workload_.accounts = ckpt.accounts;
  user_rng_.RestoreState(ckpt.user_rng);
  query_gen_.RestoreState(ckpt.query_gen);
  auctions_run_ = static_cast<int64_t>(ckpt.seq);
  total_revenue_ = ckpt.total_revenue;
  bid_cache_.PrimeExpectedKeys(ckpt.cache_keys);
  outcome_ = AuctionOutcome{};
  return Status::Ok();
}

Status AuctionEngine::WriteCheckpoint(const std::string& path) const {
  EngineCheckpoint ckpt;
  CaptureCheckpoint(&ckpt);
  return WriteCheckpointFile(path, ckpt);
}

Status AuctionEngine::RestoreFromCheckpoint(const std::string& path) {
  EngineCheckpoint ckpt;
  SSA_RETURN_IF_ERROR(ReadCheckpointFile(path, &ckpt));
  return RestoreCheckpoint(ckpt);
}

}  // namespace ssa
