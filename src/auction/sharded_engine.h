#ifndef SSA_AUCTION_SHARDED_ENGINE_H_
#define SSA_AUCTION_SHARDED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "auction/auction_engine.h"
#include "auction/cost_model.h"
#include "auction/pricing.h"
#include "auction/query_gen.h"
#include "auction/workload.h"
#include "core/compiled_bids.h"
#include "core/expected_revenue.h"
#include "core/winner_determination.h"
#include "obs/trace.h"
#include "strategy/strategy.h"
#include "util/common.h"
#include "util/topk_heap.h"

namespace ssa {

class ThreadPool;
struct EngineCheckpoint;

/// Configuration of the sharded engine: the base engine knobs (winner
/// determination, pricing, seed) plus the shard count and the pool the
/// shards run on. `engine.matrix_pool` must be null — sharding replaces the
/// row-block parallelism with whole-shard tasks, and a configured pool that
/// silently did nothing would misrepresent the measured setup, so
/// construction rejects it loudly.
struct ShardedEngineConfig {
  EngineConfig engine;
  /// Number of shards K the advertiser population is partitioned into
  /// (initially contiguous ranges of ~n/K advertisers; Repartition /
  /// RebalanceShards may move the boundaries later). Clamped to
  /// [1, max(1, n)].
  int num_shards = 1;
  /// Optional (non-owning) pool: shard tasks run concurrently on it. With
  /// nullptr the shards execute sequentially — the output is identical
  /// either way (shards share nothing until the merge).
  ThreadPool* pool = nullptr;
  /// Per-advertiser cost feedback knobs (decay, attribution weights). The
  /// model is always maintained — its per-auction overhead is one timer per
  /// shard plus an O(n) EWMA fold inside the capture fan-out.
  CostModelOptions cost_model;
};

/// Horizontally partitioned auction engine: the advertiser population is
/// split across K shards, each owning its advertisers' bid tables and its
/// own compiled-bids cache. Per auction, every shard — share-nothing, in
/// parallel on the configured pool — runs its bidding programs, compiles or
/// reuses their truth tables, fills its rows of the expected-revenue matrix,
/// and selects its local per-slot top-k candidates into a TopKHeapSet. The
/// coordinator merges the K partial top-k sets (top-k of a union equals the
/// top-k of the per-part top-k's under the strict (weight, id) order), runs
/// the reduced matching, and settles the auction exactly like AuctionEngine.
///
/// Determinism contract: with equal seeds and workloads, every auction's
/// allocation, prices, user events, and account balances are bitwise
/// identical to the single-engine path, for any K, any pool, and any shard
/// *partition* — including partitions changed mid-stream by Repartition /
/// RebalanceShards — asserted by sharded_engine_test. Strategies of
/// different advertisers never share mutable state (Section II-B), which is
/// what makes the shard phase embarrassingly parallel.
///
/// Skew: the merge is a barrier, so the slowest shard sets auction latency.
/// The engine keeps a per-advertiser CostModel (EWMA of measured capture
/// nanoseconds attributed by rows emitted) and RebalanceShards moves the
/// contiguous boundaries to equalize predicted shard cost — see
/// docs/ARCHITECTURE.md §"Cost-model-driven shard rebalancing".
///
/// Planning lanes: one auction's plan splits into a *sequential* half that
/// runs the bidding programs (CaptureBids — strategies may mutate private
/// state, so captures must happen strictly in arrival order) and a *pure*
/// half (PlanCaptured — compile, revenue matrix, candidate merge, winner
/// determination, pricing) that is const on the engine and reads only the
/// captured bids plus per-lane scratch. Distinct PlanLanes may therefore
/// plan different queries concurrently; the serving executor exploits this
/// with an E-lane pool. Per-lane compiled-bids caches see different hit
/// patterns under different schedules, but compilation is a pure function
/// of (table, num_slots), so plans are bitwise-identical for any lane
/// count, assignment, or cache history (serving_test pins this).
class ShardedAuctionEngine {
 public:
  ShardedAuctionEngine(const ShardedEngineConfig& config, Workload workload,
                       std::vector<std::unique_ptr<BiddingStrategy>> strategies);

  /// Runs one complete auction and returns its record. The fused shard
  /// phase (program evaluation + compile + matrix rows + local top-k) is
  /// reported as program_eval_ms; matrix_ms stays 0.
  const AuctionOutcome& RunAuction();

  /// Runs one complete auction on an externally supplied query (the serving
  /// subsystem's ingestion entry). RunAuction() is exactly
  /// RunAuctionOn(query_gen.Next()).
  const AuctionOutcome& RunAuctionOn(const Query& query);

  /// The provider-side half of one auction, detached from its settlement —
  /// the unit the micro-batching AuctionServer schedules. A plan holds
  /// everything settlement needs; it touches no account, strategy-outcome,
  /// or user-RNG state until SettlePlanned applies it.
  struct PlannedAuction {
    AuctionOutcome outcome;      // query, wd, per-phase timings; events empty
    std::vector<Money> prices;   // per-slot charges for the allocation
  };

  /// One auction's bid emission, snapshotted: entry i is advertiser i's
  /// BidsTable for the query, exactly as MakeBids produced it. Owning the
  /// tables (rather than pointing into engine scratch) is what lets a later
  /// query's capture proceed while an earlier query's plan is still being
  /// computed on a lane.
  using CapturedBids = std::vector<BidsTable>;

  /// Per-lane planning scratch: one population-wide compiled-bids cache,
  /// per-shard top-k heaps and phase timers, the coordinator merge heap, and
  /// an arena-reused revenue matrix. Opaque to callers — create with
  /// NewPlanLane(), hand to PlanCaptured. A lane must not be used by two
  /// threads at once; distinct lanes are fully independent.
  ///
  /// The cache is keyed by *global* advertiser id and pre-sized to the
  /// population, so (a) parallel shard tasks of one lane touch disjoint
  /// entries race-free, and (b) Repartition invalidates nothing — an
  /// advertiser's compilation survives any boundary move.
  class PlanLane {
   public:
    /// Compiled-bids cache totals for this lane (per-lane telemetry; lane
    /// caches are scratch and never checkpointed).
    int64_t cache_hits() const { return cache.hits(); }
    int64_t cache_misses() const { return cache.misses(); }

    /// Trace track base for kShardPlan spans planned on this lane (shard s
    /// renders on track `base + s`). The serving executor assigns each
    /// external lane `200 + 100 * (lane_index + 1)`; the engine's internal
    /// lane keeps the default 200.
    void set_trace_track_base(int32_t base) { trace_track_base = base; }

   private:
    friend class ShardedAuctionEngine;
    struct ShardScratch {
      TopKHeapSet topk;  // local per-slot top-k, reused
      /// Accumulated RunShardPhase wall time for this shard on this lane —
      /// the slowest-shard/mean gap bench_sharded reports. Reset by
      /// Repartition (old per-shard spans are not comparable across
      /// layouts).
      int64_t phase_ns = 0;
    };
    /// Population-wide, global-id-keyed compiled-bids cache (see above).
    CompiledBidsCache cache;
    std::vector<ShardScratch> shards;
    /// Capture scratch for the const what-if path (WhatIfAuction) — tables
    /// PeekBids fills, reused across reads on this lane.
    std::vector<BidsTable> peek_capture;
    TopKHeapSet merged_topk;     // coordinator scratch, reused
    RevenueMatrix revenue{0, 0};  // arena-reused across auctions
    /// Pool the shard phase of *this lane* fans out on. The engine's own
    /// internal lane uses config.pool; lanes created by NewPlanLane() run
    /// their shard phase sequentially (nullptr) — cross-query lane
    /// parallelism replaces intra-query shard parallelism.
    ThreadPool* pool = nullptr;
    int32_t trace_track_base = 200;
  };

  /// Creates an independent planning lane (shard phase runs sequentially
  /// within the lane). Lanes may outlive nothing: the engine must outlive
  /// every lane created from it.
  std::unique_ptr<PlanLane> NewPlanLane() const;

  /// The sequential half of planning: runs every advertiser's bidding
  /// program for `query` against the *current* account state and snapshots
  /// the emitted tables into `*bids` (resized to the population). Shards'
  /// captures fan out on the configured pool (strategies of different
  /// advertisers share no state); distinct queries must be captured by one
  /// thread, strictly in arrival order, with no settlement in flight —
  /// MakeBids may mutate strategy-private state, which is exactly the
  /// per-query sequential dependency that cannot parallelize.
  ///
  /// `trace_seq` (here and on PlanCaptured/PlanAuction) is the serving
  /// layer's sampled trace sequence: nonzero stamps per-shard spans into the
  /// attached tracer; 0 (the default, and every pre-obs call site) records
  /// nothing. Tracing only reads clocks and writes the span ring, so values
  /// are bitwise-unaffected at any sampling rate.
  void CaptureBids(const Query& query, CapturedBids* bids,
                   uint64_t trace_seq = 0);

  /// The pure half of planning: compiles `bids` (via the lane's caches),
  /// fills the lane's revenue matrix, merges per-shard candidates, solves
  /// winner determination, and computes prices into `*plan`. Const on the
  /// engine and side-effect-free outside `lane`/`plan`: concurrent calls on
  /// distinct lanes are safe, and the result is a pure function of
  /// (query, bids, engine config) — bitwise-identical for any lane.
  void PlanCaptured(const Query& query, const CapturedBids& bids,
                    PlanLane* lane, PlannedAuction* plan,
                    uint64_t trace_seq = 0) const;

  /// Phases 3/4/6-prep on `query` against the *current* account state:
  /// CaptureBids + PlanCaptured on the engine's internal lane (whose shard
  /// phase fans out on the configured pool). Mutates only engine scratch
  /// (captured tables, compiled-bids caches, heaps) — accounts, strategies'
  /// outcome state and the user RNG are untouched, so planning is
  /// side-effect-free w.r.t. the auction trajectory until the plan is
  /// settled.
  void PlanAuction(const Query& query, PlannedAuction* plan,
                   uint64_t trace_seq = 0);

  /// The capture half as a *pure read*: every advertiser's program runs via
  /// PeekBids against the current account state, so no strategy-private
  /// state advances and the cost model / capture clocks stay untouched.
  /// Const on the engine, but NOT safe concurrently with CaptureBids /
  /// SettlePlanned on the same engine (PeekBids' default transiently
  /// mutates strategy state, and accounts are read mid-update otherwise);
  /// the follower serializes reads against applies with its mutex.
  void CaptureBidsForRead(const Query& query, CapturedBids* bids) const;

  /// One full what-if auction as a pure read: CaptureBidsForRead +
  /// PlanCaptured on `lane`. The resulting plan is bitwise-identical to
  /// what PlanAuction would produce for `query` at the current state —
  /// same bids (PeekBids contract), same pure planning half — but nothing
  /// in the engine moves, so the real trajectory is unperturbed. Same
  /// concurrency contract as CaptureBidsForRead.
  void WhatIfAuction(const Query& query, PlanLane* lane,
                     PlannedAuction* plan) const;

  /// Step 5/6 for a planned auction: simulates user actions (advancing the
  /// user RNG in plan order), charges winners, updates accounts, delivers
  /// outcome notifications, and folds revenue into the engine totals.
  /// Settling plans strictly in arrival order, each planned after its
  /// predecessor settled, reproduces the serial RunAuctionOn loop bitwise;
  /// planning a batch ahead of settlement trades that equivalence for
  /// throughput (bids within the batch see batch-start account state).
  const AuctionOutcome& SettlePlanned(PlannedAuction* plan);

  const std::vector<AdvertiserAccount>& accounts() const {
    return workload_.accounts;
  }
  const Workload& workload() const { return workload_; }
  const AuctionOutcome& last_outcome() const { return outcome_; }
  int64_t auctions_run() const { return auctions_run_; }
  Money total_revenue() const { return total_revenue_; }
  int num_shards() const { return static_cast<int>(ranges_.size()); }
  const std::vector<ShardRange>& shard_ranges() const { return ranges_; }

  /// The per-advertiser cost feedback (EWMA nanoseconds per auction) the
  /// rebalancer partitions on. Fed by every CaptureBids call — the serving
  /// path included — so it tracks the live query mix in any mode. Read only
  /// while no capture is in flight.
  const CostModel& cost_model() const { return cost_model_; }

  /// Attaches a span tracer (not owned; null detaches). Per-shard capture
  /// and plan slices of queries with a nonzero trace_seq are recorded into
  /// it, as are Repartition events. Set before any capture/plan is in
  /// flight; the tracer must outlive the engine's use of it.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Replaces the shard layout with `ranges` — contiguous, non-empty,
  /// covering exactly [0, n) in order (the shard *count* may change).
  /// Results are bitwise-identical under any valid partition: the merge is
  /// an order-independent top-k-of-union, and lane caches are keyed by
  /// global advertiser id, so no compilation is lost. Per-shard scratch
  /// (top-k heaps, phase timers) is rebuilt; external PlanLanes re-size
  /// their scratch lazily on their next PlanCaptured. Must not run
  /// concurrently with CaptureBids / PlanCaptured / SettlePlanned on any
  /// lane — the serving executor calls it only between epochs.
  Status Repartition(const std::vector<ShardRange>& ranges);

  /// Cost-model-driven rebalance: computes the equal-predicted-cost
  /// contiguous partition (ShardRebalancer::ComputeBalancedRanges over the
  /// cost model) and applies it when the *current* layout's predicted
  /// imbalance (max shard cost / mean) is at least `min_imbalance` and the
  /// boundaries actually move. Returns true iff the layout changed. Same
  /// concurrency contract as Repartition.
  bool RebalanceShards(double min_imbalance = 1.0);

  /// Per-shard observability: advertiser range, compiled-bids cache
  /// performance over that range on the engine's internal lane, accumulated
  /// shard-phase time on the internal lane, and the cost model's predicted
  /// per-auction cost for the range (external PlanLanes report through
  /// PlanLane::cache_hits()).
  struct ShardStats {
    AdvertiserId begin = 0;
    AdvertiserId end = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    /// Bid-capture wall time for the shard's range (every query, internal
    /// or lane-planned) since construction or the last Repartition.
    int64_t capture_ns = 0;
    /// RunShardPhase wall time accumulated on the internal lane since
    /// construction or the last Repartition.
    int64_t phase_ns = 0;
    /// Predicted per-auction cost (sum of the range's EWMAs, ns).
    double model_cost = 0;
  };
  ShardStats shard_stats(int shard) const;
  /// Internal-lane cache hits/misses summed over all shards (comparable to
  /// AuctionEngine::bid_cache() totals).
  int64_t cache_hits() const;
  int64_t cache_misses() const;
  /// Post-restore recompilations whose fingerprint matched the checkpointed
  /// key, summed over all shards.
  int64_t verified_recompiles() const;

  /// Durability hooks — same contract and file format as AuctionEngine's:
  /// the checkpoint is shard-layout-independent (cache keys are stored by
  /// global advertiser id), so a K-shard engine restores a checkpoint taken
  /// by a single engine or any other shard count, and vice versa. External
  /// PlanLane caches are scratch: never checkpointed, rebuilt on demand.
  void CaptureCheckpoint(EngineCheckpoint* ckpt) const;
  Status RestoreCheckpoint(const EngineCheckpoint& ckpt);
  Status WriteCheckpoint(const std::string& path) const;
  Status RestoreFromCheckpoint(const std::string& path);

 private:
  /// The share-nothing per-shard unit of the pure planning half: compiled-
  /// bids lookups (disjoint entries of the lane's shared cache),
  /// revenue-matrix rows, and (for the reduced method) the local per-slot
  /// top-k. Reads the captured tables; writes only the lane's shard
  /// scratch, the shard's cache entries, and its disjoint matrix rows.
  void RunShardPhase(const ShardRange& range, CompiledBidsCache* cache,
                     PlanLane::ShardScratch* scratch, const CapturedBids& bids,
                     RevenueMatrix* revenue, bool collect_topk) const;

  /// Merges the lane's per-shard top-k heaps into the global per-slot top-k
  /// and extracts the candidate union — identical to the single-engine
  /// SelectTopPerSlotCandidates(revenue, k) output. With fewer than
  /// kTreeMergeMinShards shards the coordinator re-offers every retained
  /// entry into one flat heap set (O(K k^2 log k)); at K >=
  /// kTreeMergeMinShards it routes the partials through the Section III-E
  /// binary merge tree (parallel_topk, ceil(log2 K) levels of O(k) list
  /// merges on the lane's pool) — same strict (weight, id) order, so the
  /// candidate vector is bitwise identical either way.
  std::vector<AdvertiserId> MergeShardCandidates(PlanLane* lane,
                                                 int num_advertisers,
                                                 int num_slots) const;

  /// Shard count at or above which the coordinator merge switches from the
  /// flat re-offer to the tree network.
  static constexpr int kTreeMergeMinShards = 8;

  ShardedEngineConfig config_;
  Workload workload_;
  /// Span sink for per-shard capture/plan slices (not owned; null = off).
  Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<BiddingStrategy>> strategies_;
  QueryGenerator query_gen_;
  Rng user_rng_;
  /// Advertisers [begin, end) per shard — shared read-only by every lane
  /// while any plan is in flight; rewritten only by Repartition.
  std::vector<ShardRange> ranges_;
  /// Per-advertiser EWMA cost, fed by the capture fan-out (shards write
  /// disjoint ranges). Deliberately *not* checkpointed: it is a performance
  /// hint, and a restored engine re-learns it within ~1/(1-decay) auctions.
  CostModel cost_model_;
  /// Per-shard capture wall time, the observable twin of the cost model's
  /// input. Indexed like ranges_; the capture fan-out writes disjoint
  /// entries, and Repartition (which owns the layout) resets it.
  std::vector<int64_t> capture_ns_;
  /// The engine's own lane (PlanAuction / RunAuctionOn path); its caches
  /// are the ones checkpoints persist and shard_stats reports.
  std::unique_ptr<PlanLane> internal_lane_;
  CapturedBids capture_scratch_;  // PlanAuction's capture, reused
  PlannedAuction plan_scratch_;   // RunAuctionOn's plan, reused
  AuctionOutcome outcome_;
  int64_t auctions_run_ = 0;
  Money total_revenue_ = 0;
};

}  // namespace ssa

#endif  // SSA_AUCTION_SHARDED_ENGINE_H_
