#ifndef SSA_AUCTION_SHARDED_ENGINE_H_
#define SSA_AUCTION_SHARDED_ENGINE_H_

#include <memory>
#include <vector>

#include "auction/auction_engine.h"
#include "auction/pricing.h"
#include "auction/query_gen.h"
#include "auction/workload.h"
#include "core/compiled_bids.h"
#include "core/winner_determination.h"
#include "strategy/strategy.h"
#include "util/common.h"
#include "util/topk_heap.h"

namespace ssa {

class ThreadPool;

/// Configuration of the sharded engine: the base engine knobs (winner
/// determination, pricing, seed) plus the shard count and the pool the
/// shards run on. `engine.matrix_pool` is ignored — sharding replaces the
/// row-block parallelism with whole-shard tasks.
struct ShardedEngineConfig {
  EngineConfig engine;
  /// Number of shards K the advertiser population is partitioned into
  /// (contiguous ranges of ~n/K advertisers). Clamped to [1, max(1, n)].
  int num_shards = 1;
  /// Optional (non-owning) pool: shard tasks run concurrently on it. With
  /// nullptr the shards execute sequentially — the output is identical
  /// either way (shards share nothing until the merge).
  ThreadPool* pool = nullptr;
};

/// Horizontally partitioned auction engine: the advertiser population is
/// split across K shards, each owning its advertisers' bid tables and its
/// own compiled-bids cache. Per auction, every shard — share-nothing, in
/// parallel on the configured pool — runs its bidding programs, compiles or
/// reuses their truth tables, fills its rows of the expected-revenue matrix,
/// and selects its local per-slot top-k candidates into a TopKHeapSet. The
/// coordinator merges the K partial top-k sets (top-k of a union equals the
/// top-k of the per-part top-k's under the strict (weight, id) order), runs
/// the reduced matching, and settles the auction exactly like AuctionEngine.
///
/// Determinism contract: with equal seeds and workloads, every auction's
/// allocation, prices, user events, and account balances are bitwise
/// identical to the single-engine path, for any K and any pool — asserted
/// by sharded_engine_test. Strategies of different advertisers never share
/// mutable state (Section II-B), which is what makes the shard phase
/// embarrassingly parallel.
class ShardedAuctionEngine {
 public:
  ShardedAuctionEngine(const ShardedEngineConfig& config, Workload workload,
                       std::vector<std::unique_ptr<BiddingStrategy>> strategies);

  /// Runs one complete auction and returns its record. The fused shard
  /// phase (program evaluation + compile + matrix rows + local top-k) is
  /// reported as program_eval_ms; matrix_ms stays 0.
  const AuctionOutcome& RunAuction();

  const std::vector<AdvertiserAccount>& accounts() const {
    return workload_.accounts;
  }
  const Workload& workload() const { return workload_; }
  const AuctionOutcome& last_outcome() const { return outcome_; }
  int64_t auctions_run() const { return auctions_run_; }
  Money total_revenue() const { return total_revenue_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Per-shard observability: advertiser range and compiled-bids cache
  /// performance (each shard compiles only its own population).
  struct ShardStats {
    AdvertiserId begin = 0;
    AdvertiserId end = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
  };
  ShardStats shard_stats(int shard) const;
  /// Cache hits/misses summed over all shards (comparable to
  /// AuctionEngine::bid_cache() totals).
  int64_t cache_hits() const;
  int64_t cache_misses() const;

 private:
  struct Shard {
    AdvertiserId begin = 0;  // advertisers [begin, end)
    AdvertiserId end = 0;
    std::vector<BidsTable> bids;  // local tables, reused across auctions
    CompiledBidsCache cache;      // keyed on local index i - begin
    TopKHeapSet topk;             // local per-slot top-k, reused
  };

  /// The share-nothing per-shard unit of one auction: bidding programs,
  /// compiled-bids lookups, revenue-matrix rows, and (for the reduced
  /// method) the local per-slot top-k. Writes only shard-owned state and
  /// the shard's disjoint matrix rows.
  void RunShardPhase(Shard* shard, const Query& query, RevenueMatrix* revenue,
                     bool collect_topk);

  /// Merges the shards' local top-k heaps into the global per-slot top-k
  /// and extracts the candidate union — identical to the single-engine
  /// SelectTopPerSlotCandidates(revenue, k) output.
  std::vector<AdvertiserId> MergeShardCandidates(int num_advertisers,
                                                 int num_slots);

  ShardedEngineConfig config_;
  Workload workload_;
  std::vector<std::unique_ptr<BiddingStrategy>> strategies_;
  QueryGenerator query_gen_;
  Rng user_rng_;
  std::vector<Shard> shards_;
  TopKHeapSet merged_topk_;  // coordinator scratch, reused across auctions
  AuctionOutcome outcome_;
  int64_t auctions_run_ = 0;
  Money total_revenue_ = 0;
};

}  // namespace ssa

#endif  // SSA_AUCTION_SHARDED_ENGINE_H_
