#include "auction/metrics.h"

#include <cstdio>

namespace ssa {

void CampaignMetrics::Record(const AuctionOutcome& outcome) {
  ++auctions_;
  revenue_ += outcome.revenue_charged;
  processing_ms_.Add(outcome.ProcessingMs());
  for (const UserEvent& event : outcome.events) {
    ++impressions_;
    if (static_cast<size_t>(event.slot) >= slot_impressions_.size()) {
      slot_impressions_.resize(event.slot + 1, 0);
      slot_clicks_.resize(event.slot + 1, 0);
    }
    ++slot_impressions_[event.slot];
    if (event.clicked) {
      ++clicks_;
      ++slot_clicks_[event.slot];
    }
    if (event.purchased) ++purchases_;
  }
}

double CampaignMetrics::ClickThroughRate() const {
  return impressions_ == 0
             ? 0.0
             : static_cast<double>(clicks_) / static_cast<double>(impressions_);
}

Money CampaignMetrics::RevenuePerAuction() const {
  return auctions_ == 0 ? 0.0 : revenue_ / static_cast<double>(auctions_);
}

double CampaignMetrics::FillRate(int num_slots) const {
  const double total = static_cast<double>(auctions_) * num_slots;
  return total == 0 ? 0.0 : static_cast<double>(impressions_) / total;
}

std::string CampaignMetrics::Report(int num_slots) const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "auctions %lld, revenue %.1f (%.2f/auction), CTR %.3f, "
                "fill %.3f\n",
                static_cast<long long>(auctions_), revenue_,
                RevenuePerAuction(), ClickThroughRate(), FillRate(num_slots));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "processing ms: mean %.3f p50 %.3f p99 %.3f max %.3f\n",
                processing_ms_.mean(), processing_ms_.Percentile(50),
                processing_ms_.Percentile(99), processing_ms_.max());
  out += buf;
  for (size_t j = 0; j < slot_impressions_.size(); ++j) {
    std::snprintf(buf, sizeof(buf),
                  "  slot %zu: %lld impressions, %lld clicks (ctr %.3f)\n",
                  j + 1, static_cast<long long>(slot_impressions_[j]),
                  static_cast<long long>(slot_clicks_[j]),
                  slot_impressions_[j] == 0
                      ? 0.0
                      : static_cast<double>(slot_clicks_[j]) /
                            static_cast<double>(slot_impressions_[j]));
    out += buf;
  }
  return out;
}

}  // namespace ssa
