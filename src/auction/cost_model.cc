#include "auction/cost_model.h"

#include <algorithm>
#include <cmath>

namespace ssa {

CostModel::CostModel(int num_advertisers, const CostModelOptions& options)
    : options_(options) {
  SSA_CHECK(num_advertisers >= 0);
  SSA_CHECK(options_.decay >= 0.0 && options_.decay < 1.0);
  SSA_CHECK(options_.base_weight >= 0.0);
  cost_.assign(static_cast<size_t>(num_advertisers), 0.0);
}

void CostModel::RecordRangeSample(AdvertiserId begin, AdvertiserId end,
                                  const std::vector<BidsTable>& bids,
                                  double range_ns) {
  SSA_CHECK(begin >= 0 && begin <= end &&
            static_cast<size_t>(end) <= cost_.size());
  SSA_CHECK(bids.size() == cost_.size());
  if (begin == end) return;
  // Two passes: total attribution weight, then the proportional EWMA fold.
  // Both are O(range) with O(1) per advertiser (rows() is a stored size).
  double total_weight = 0.0;
  for (AdvertiserId i = begin; i < end; ++i) {
    total_weight += options_.base_weight +
                    static_cast<double>(bids[static_cast<size_t>(i)].size());
  }
  if (total_weight <= 0.0) return;
  // Floor at 1ns: a span below the clock's resolution reads as 0, and a
  // shard whose captures *persistently* under-resolve would otherwise pin
  // its advertisers at zero cost and starve the rebalancer of signal. The
  // floor degrades gracefully to pure row-proportional attribution — only
  // ratios matter for partitioning.
  const double ns_per_weight = std::max(range_ns, 1.0) / total_weight;
  const double keep = options_.decay;
  const double fold = 1.0 - keep;
  for (AdvertiserId i = begin; i < end; ++i) {
    const double weight =
        options_.base_weight +
        static_cast<double>(bids[static_cast<size_t>(i)].size());
    const double sample = weight * ns_per_weight;
    double& cost = cost_[static_cast<size_t>(i)];
    cost = keep * cost + fold * sample;
  }
}

double CostModel::RangeCost(AdvertiserId begin, AdvertiserId end) const {
  SSA_CHECK(begin >= 0 && begin <= end &&
            static_cast<size_t>(end) <= cost_.size());
  double total = 0.0;
  for (AdvertiserId i = begin; i < end; ++i) {
    total += cost_[static_cast<size_t>(i)];
  }
  return total;
}

bool ShardRebalancer::Due(int64_t auctions_run) {
  if (options_.every <= 0) return false;
  if (auctions_run - last_due_ < options_.every) return false;
  last_due_ = auctions_run;
  return true;
}

std::vector<ShardRange> ShardRebalancer::ComputeBalancedRanges(
    const std::vector<double>& costs, int num_shards) {
  const int n = static_cast<int>(costs.size());
  SSA_CHECK(num_shards >= 1);
  const int k = std::min(num_shards, std::max(1, n));
  std::vector<ShardRange> ranges(static_cast<size_t>(k));
  if (n == 0) return ranges;

  double total = 0.0;
  for (double c : costs) total += c;

  if (total <= 0.0) {
    // No signal yet: the constructor's uniform split.
    for (int s = 0; s < k; ++s) {
      ranges[s].begin =
          static_cast<AdvertiserId>(static_cast<int64_t>(n) * s / k);
      ranges[s].end =
          static_cast<AdvertiserId>(static_cast<int64_t>(n) * (s + 1) / k);
    }
    return ranges;
  }

  double prefix = 0.0;
  int i = 0;
  for (int s = 0; s < k; ++s) {
    ranges[s].begin = static_cast<AdvertiserId>(i);
    if (s == k - 1) {
      ranges[s].end = static_cast<AdvertiserId>(n);
      break;
    }
    // Later shards must each keep at least one advertiser.
    const int max_end = n - (k - 1 - s);
    const double target = total * (s + 1) / k;
    // The shard takes at least one advertiser, then keeps extending while
    // the next advertiser moves the prefix closer to (or exactly onto) the
    // target — the closer side of the prefix-sum crossing.
    prefix += costs[static_cast<size_t>(i)];
    ++i;
    while (i < max_end &&
           std::abs(prefix + costs[static_cast<size_t>(i)] - target) <=
               std::abs(prefix - target)) {
      prefix += costs[static_cast<size_t>(i)];
      ++i;
    }
    ranges[s].end = static_cast<AdvertiserId>(i);
  }
  return ranges;
}

double ShardRebalancer::PredictedImbalance(
    const std::vector<double>& costs, const std::vector<ShardRange>& ranges) {
  SSA_CHECK(!ranges.empty());
  double total = 0.0;
  double worst = 0.0;
  for (const ShardRange& range : ranges) {
    double shard = 0.0;
    for (AdvertiserId i = range.begin; i < range.end; ++i) {
      shard += costs[static_cast<size_t>(i)];
    }
    total += shard;
    worst = std::max(worst, shard);
  }
  if (total <= 0.0) return 1.0;
  return worst / (total / static_cast<double>(ranges.size()));
}

}  // namespace ssa
