#include "auction/pricing.h"

#include <algorithm>

#include "core/winner_determination.h"
#include "matching/hungarian.h"

namespace ssa {

std::string PricingRuleName(PricingRule rule) {
  switch (rule) {
    case PricingRule::kPayYourBid:
      return "pay-your-bid";
    case PricingRule::kGeneralizedSecondPrice:
      return "generalized-second-price";
    case PricingRule::kVcg:
      return "vcg";
  }
  return "?";
}

std::vector<Money> PerClickPrices(PricingRule rule,
                                  const RevenueMatrix& revenue,
                                  const ClickModel& model,
                                  const Allocation& allocation) {
  const int n = revenue.num_advertisers();
  const int k = revenue.num_slots();
  SSA_CHECK(allocation.num_slots() == k);
  SSA_CHECK(rule != PricingRule::kVcg);  // VCG uses VcgExpectedCharges

  std::vector<char> is_winner(n, 0);
  for (AdvertiserId a : allocation.slot_to_advertiser) {
    if (a >= 0) is_winner[a] = 1;
  }

  std::vector<Money> prices(k, 0.0);
  for (SlotIndex j = 0; j < k; ++j) {
    const AdvertiserId i = allocation.slot_to_advertiser[j];
    if (i < 0) continue;
    const double ctr = model.ClickProbability(i, j);
    if (ctr <= 0.0) continue;  // never clicked, never charged
    const double own_bid = revenue.MarginalWeight(i, j) / ctr;
    if (rule == PricingRule::kPayYourBid) {
      prices[j] = std::max(0.0, own_bid);
      continue;
    }
    // GSP: expected revenue of the best advertiser who received no slot.
    double r_next = 0.0;
    for (AdvertiserId other = 0; other < n; ++other) {
      if (is_winner[other]) continue;
      r_next = std::max(r_next, revenue.MarginalWeight(other, j));
    }
    prices[j] = std::max(0.0, std::min(own_bid, r_next / ctr));
  }
  return prices;
}

std::vector<Money> VcgExpectedCharges(const RevenueMatrix& revenue,
                                      const Allocation& allocation) {
  const int n = revenue.num_advertisers();
  const int k = revenue.num_slots();
  const std::vector<double> w = MarginalWeights(revenue);

  // Candidate pool large enough that dropping any single winner leaves the
  // unconstrained optimum reachable: top (k+1) per slot always contains an
  // optimal matching avoiding any one advertiser.
  std::vector<AdvertiserId> pool = SelectTopPerSlotCandidates(revenue, k + 1);

  std::vector<Money> charges(k, 0.0);
  for (SlotIndex j = 0; j < k; ++j) {
    const AdvertiserId i = allocation.slot_to_advertiser[j];
    if (i < 0) continue;
    // Others' optimal welfare with i absent.
    std::vector<AdvertiserId> without;
    without.reserve(pool.size());
    for (AdvertiserId c : pool) {
      if (c != i) without.push_back(c);
    }
    const Allocation alt = MaxWeightMatchingSubset(w, n, k, without);
    // Others' welfare under the chosen allocation (excluding i's edge).
    const double others_now =
        allocation.total_weight - revenue.MarginalWeight(i, j);
    charges[j] = std::max(0.0, alt.total_weight - others_now);
  }
  return charges;
}

std::vector<Money> ComputePrices(PricingRule rule, const RevenueMatrix& revenue,
                                 const ClickModel& model,
                                 const Allocation& allocation) {
  if (rule == PricingRule::kVcg) {
    return VcgExpectedCharges(revenue, allocation);
  }
  return PerClickPrices(rule, revenue, model, allocation);
}

}  // namespace ssa
