#ifndef SSA_AUCTION_QUERY_GEN_H_
#define SSA_AUCTION_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace ssa {

/// One user search (Step 2 of the auction lifecycle). Following Section V,
/// a query selects one keyword out of the keyword universe; the chosen
/// keyword has relevance 1 and all others relevance 0. `time` is the auction
/// counter — the shared monotone variable the logical-update triggers key on.
struct Query {
  int keyword = 0;
  /// 1-based auction number ("time"): target spend rates are per-auction.
  int64_t time = 0;
  /// relevance[kw] in [0, 1]; the Figure 5 program bids on keywords with
  /// relevance > 0.7.
  std::vector<double> relevance;
};

/// Generates the Section V query stream: queries arrive at a constant rate,
/// each containing one keyword chosen uniformly at random.
class QueryGenerator {
 public:
  QueryGenerator(int num_keywords, uint64_t seed)
      : num_keywords_(num_keywords), rng_(seed) {
    SSA_CHECK(num_keywords >= 1);
  }

  Query Next() {
    Query q;
    q.keyword = static_cast<int>(rng_.NextBounded(num_keywords_));
    q.time = ++time_;
    q.relevance.assign(num_keywords_, 0.0);
    q.relevance[q.keyword] = 1.0;
    return q;
  }

  int num_keywords() const { return num_keywords_; }
  int64_t time() const { return time_; }

  /// Generator position for checkpointing: the RNG state plus the auction
  /// counter. Restoring it resumes the exact query stream.
  struct State {
    uint64_t rng[4] = {0, 0, 0, 0};
    int64_t time = 0;
  };
  State SaveState() const {
    State state;
    rng_.SaveState(state.rng);
    state.time = time_;
    return state;
  }
  void RestoreState(const State& state) {
    rng_.RestoreState(state.rng);
    time_ = state.time;
  }

 private:
  int num_keywords_;
  Rng rng_;
  int64_t time_ = 0;
};

}  // namespace ssa

#endif  // SSA_AUCTION_QUERY_GEN_H_
