#ifndef SSA_AUCTION_AUCTION_ENGINE_H_
#define SSA_AUCTION_AUCTION_ENGINE_H_

#include <memory>
#include <vector>

#include "auction/pricing.h"
#include "auction/query_gen.h"
#include "auction/workload.h"
#include "core/compiled_bids.h"
#include "core/winner_determination.h"
#include "strategy/strategy.h"
#include "util/common.h"

namespace ssa {

class ThreadPool;
struct EngineCheckpoint;

/// What happened to one filled slot after the page was served.
struct UserEvent {
  AdvertiserId advertiser = -1;
  SlotIndex slot = kNoSlot;
  bool clicked = false;
  bool purchased = false;
  /// Amount actually charged for this event (per-click price on click, or
  /// the expected VCG lump charge).
  Money charged = 0;
};

/// Full record of one auction, including the per-phase timings the Figure
/// 12/13 harnesses aggregate.
struct AuctionOutcome {
  Query query;
  WdResult wd;
  /// Per-slot charge for the allocation (GSP per-click or VCG lump) — what
  /// the settlement log persists alongside the realized events.
  std::vector<Money> prices;
  std::vector<UserEvent> events;  // one per filled slot, in slot order
  Money revenue_charged = 0;

  double program_eval_ms = 0;  // Step 3: running the bidding programs
  double matrix_ms = 0;        // building the expected-revenue matrix
  double wd_ms = 0;            // Step 4 proper: the matching / LP
  double pricing_ms = 0;       // Step 6
  /// Provider-side processing time per auction (the quantity Figures 12/13
  /// plot): program evaluation + matrix + winner determination + pricing.
  double ProcessingMs() const {
    return program_eval_ms + matrix_ms + wd_ms + pricing_ms;
  }
};

/// Engine configuration: which winner-determination method runs (LP, H, RH)
/// and which pricing rule charges the winners.
struct EngineConfig {
  WdMethod wd_method = WdMethod::kReducedHungarian;
  PricingRule pricing = PricingRule::kGeneralizedSecondPrice;
  /// Seed for the query stream and user-behavior simulation (independent of
  /// the workload seed so populations and traffic vary separately).
  uint64_t seed = 42;
  /// Optional (non-owning) pool for the revenue-matrix build: advertiser
  /// row blocks are filled in parallel. Output is identical either way
  /// (disjoint rows, bitwise-deterministic kernels).
  ThreadPool* matrix_pool = nullptr;
};

/// Steps 5/6 of the lifecycle, shared by AuctionEngine and
/// ShardedAuctionEngine: simulates user behavior for every filled slot of
/// outcome->wd.allocation, charges winners per `pricing`, updates accounts,
/// and delivers the Section II-B outcome notifications. Appends one
/// UserEvent per filled slot (in slot order) and accumulates
/// outcome->revenue_charged; `user_rng` advances exactly once per
/// click/purchase draw, so equal seeds yield bitwise-equal trajectories.
void SettleAuction(PricingRule pricing, const ClickModel& model,
                   const std::vector<Money>& prices,
                   std::vector<AdvertiserAccount>* accounts,
                   const std::vector<std::unique_ptr<BiddingStrategy>>& strategies,
                   Rng* user_rng, AuctionOutcome* outcome);

/// The eager auction engine: every advertiser's bidding program runs on
/// every auction (the baseline Section IV improves on). One RunAuction()
/// performs the full lifecycle — user search, program evaluation, winner
/// determination, user action simulation, pricing and accounting.
///
/// The RHTALU engine (strategy/logical_roi.h) implements the same lifecycle
/// with the Threshold Algorithm + logical updates and is observably
/// equivalent given equal seeds.
class AuctionEngine {
 public:
  AuctionEngine(const EngineConfig& config, Workload workload,
                std::vector<std::unique_ptr<BiddingStrategy>> strategies);

  /// Runs one complete auction on the next internally generated query and
  /// returns its record.
  const AuctionOutcome& RunAuction();

  /// Runs one complete auction on an externally supplied query (the serving
  /// subsystem's ingestion entry: the caller owns arrival order and the
  /// query's `time` stamp). RunAuction() is exactly
  /// RunAuctionOn(query_gen.Next()), so a caller feeding the same generated
  /// sequence reproduces the internal stream bitwise.
  const AuctionOutcome& RunAuctionOn(const Query& query);

  /// The provider-side half of one auction as a *pure read*: programs run
  /// via PeekBids (no strategy-state advance), compilation/matrix/winner
  /// determination/pricing go through caller-invisible local scratch, and
  /// no account, RNG, counter, or cache state moves. `outcome->events`
  /// stays empty and revenue_charged 0 — settlement is exactly the part a
  /// what-if must not do. Serial with any mutating call on this engine
  /// (PeekBids' default transiently mutates strategy state); the follower
  /// read path holds its apply mutex across this.
  void WhatIfAuction(const Query& query, AuctionOutcome* outcome) const;

  const std::vector<AdvertiserAccount>& accounts() const {
    return workload_.accounts;
  }
  const Workload& workload() const { return workload_; }
  const AuctionOutcome& last_outcome() const { return outcome_; }
  int64_t auctions_run() const { return auctions_run_; }
  Money total_revenue() const { return total_revenue_; }
  /// Compiled-bids cache stats: strategies usually re-emit identical tables
  /// for a keyword, so most auctions skip recompilation entirely.
  const CompiledBidsCache& bid_cache() const { return bid_cache_; }

  /// Durability hooks (src/durability/): snapshot / rewind the complete
  /// trajectory state — accounts, both RNG streams, auction counter, revenue
  /// accumulator, strategy blobs, compiled-bids cache keys. An engine
  /// restored from a checkpoint continues bitwise-identically to the
  /// uninterrupted run. Restore requires an engine built from the same
  /// workload shape and strategy lineup and fails without partial effects on
  /// shape mismatches (strategy-blob errors surface per strategy).
  void CaptureCheckpoint(EngineCheckpoint* ckpt) const;
  Status RestoreCheckpoint(const EngineCheckpoint& ckpt);
  /// File forms: versioned, CRC-guarded, atomically replaced on write.
  Status WriteCheckpoint(const std::string& path) const;
  Status RestoreFromCheckpoint(const std::string& path);

 private:
  EngineConfig config_;
  Workload workload_;
  std::vector<std::unique_ptr<BiddingStrategy>> strategies_;
  QueryGenerator query_gen_;
  Rng user_rng_;
  std::vector<BidsTable> bids_;  // reused across auctions
  /// Compiled form of bids_, cached across auctions keyed on content
  /// fingerprint (strategies that leave a table unchanged hit the cache).
  CompiledBidsCache bid_cache_;
  std::vector<const CompiledBids*> compiled_view_;  // reused across auctions
  AuctionOutcome outcome_;
  int64_t auctions_run_ = 0;
  Money total_revenue_ = 0;
};

}  // namespace ssa

#endif  // SSA_AUCTION_AUCTION_ENGINE_H_
