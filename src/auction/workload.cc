#include "auction/workload.h"

#include <algorithm>

namespace ssa {

Workload MakePaperWorkload(const WorkloadConfig& config) {
  SSA_CHECK(config.num_advertisers >= 0 && config.num_slots >= 1 &&
            config.num_keywords >= 1);
  SSA_CHECK(config.value_lo >= 0 && config.value_lo <= config.value_hi);
  Rng rng(config.seed);

  Workload w;
  w.config = config;
  w.accounts.reserve(config.num_advertisers);
  for (int i = 0; i < config.num_advertisers; ++i) {
    AdvertiserAccount account;
    account.value_per_click.resize(config.num_keywords);
    Money max_value = 0;
    do {
      max_value = 0;
      for (int kw = 0; kw < config.num_keywords; ++kw) {
        account.value_per_click[kw] = static_cast<Money>(
            rng.UniformInt(config.value_lo, config.value_hi));
        max_value = std::max(max_value, account.value_per_click[kw]);
      }
      // "subject to each bidder having at least one non-zero click value"
    } while (max_value <= 0);
    account.max_bid = account.value_per_click;
    account.value_gained.assign(config.num_keywords, 0.0);
    account.spent_per_keyword.assign(config.num_keywords, 0.0);
    // "target spending rates chosen uniformly at random between 1 and the
    // bidder's maximum value over all keywords"
    account.target_spend_rate =
        max_value > 1 ? rng.Uniform(1.0, static_cast<double>(max_value)) : 1.0;
    w.accounts.push_back(std::move(account));
  }

  w.click_model = std::make_shared<MatrixClickModel>(MakeSlotIntervalClickModel(
      config.num_advertisers, config.num_slots, rng, config.click_interval_lo,
      config.click_interval_hi, config.purchase_given_click));

  w.keyword_formulas.assign(config.num_keywords, Formula::Click());
  return w;
}

}  // namespace ssa
