#ifndef SSA_AUCTION_ACCOUNT_H_
#define SSA_AUCTION_ACCOUNT_H_

#include <vector>

#include "util/common.h"

namespace ssa {

/// Per-advertiser account state the search provider maintains automatically
/// for every bidding program (Section II-B): amount spent, per-keyword value
/// gained and spend, and the derived return on investment. Bidding
/// strategies read this; only the engine writes it (on clicks/charges).
struct AdvertiserAccount {
  /// Total amount charged to this advertiser so far.
  Money amount_spent = 0;
  /// Desired spend per auction ("target spending rate", Section II-C).
  double target_spend_rate = 0;

  /// The advertiser's private value of one click per keyword (the Section V
  /// workload draws these U{0..50}); doubles as the ROI "value gained" unit.
  std::vector<Money> value_per_click;
  /// Cap on the tentative bid per keyword (`maxbid` in Figure 4); the
  /// Section V workload sets it to the click value.
  std::vector<Money> max_bid;
  /// Total value realized from each keyword (clicks * value_per_click).
  std::vector<Money> value_gained;
  /// Amount charged attributable to each keyword.
  std::vector<Money> spent_per_keyword;

  /// Return on investment of a keyword: value gained / amount spent on it
  /// (Section II-C); zero before any spend.
  double Roi(int keyword) const {
    const Money spent = spent_per_keyword[keyword];
    return spent > 0 ? value_gained[keyword] / spent : 0.0;
  }

  int num_keywords() const { return static_cast<int>(value_per_click.size()); }

  /// True iff current spend is strictly below the target at auction `time`.
  bool Underspending(int64_t time) const {
    return amount_spent < target_spend_rate * static_cast<double>(time);
  }
  /// True iff current spend is strictly above the target at auction `time`.
  bool Overspending(int64_t time) const {
    return amount_spent > target_spend_rate * static_cast<double>(time);
  }
};

}  // namespace ssa

#endif  // SSA_AUCTION_ACCOUNT_H_
