#ifndef SSA_AUCTION_WORKLOAD_H_
#define SSA_AUCTION_WORKLOAD_H_

#include <memory>
#include <vector>

#include "auction/account.h"
#include "core/click_model.h"
#include "core/formula.h"
#include "util/common.h"
#include "util/rng.h"

namespace ssa {

/// Parameters of the Section V synthetic workload (the substitute for the
/// proprietary bid feeds the paper could not publish):
///   * 15 slots, 10 keywords, one keyword per query chosen uniformly;
///   * per-keyword click values U{0..50} cents, at least one non-zero;
///   * max bid = click value; target spend rate U(1, max click value);
///   * click probabilities from the slot-interval model on [0.1, 0.9].
struct WorkloadConfig {
  int num_advertisers = 1000;
  int num_slots = 15;
  int num_keywords = 10;
  int value_lo = 0;
  int value_hi = 50;
  double click_interval_lo = 0.1;
  double click_interval_hi = 0.9;
  double purchase_given_click = 0.0;
  uint64_t seed = 1;
};

/// A fully-instantiated population: accounts (values, caps, target rates)
/// plus the provider's click-probability estimates.
struct Workload {
  WorkloadConfig config;
  std::vector<AdvertiserAccount> accounts;
  std::shared_ptr<const MatrixClickModel> click_model;
  /// Formula each keyword's bid attaches to; the Section V experiments use
  /// plain Click for every keyword, examples override with multi-feature
  /// formulas.
  std::vector<Formula> keyword_formulas;
};

/// Builds the Section V workload deterministically from config.seed.
Workload MakePaperWorkload(const WorkloadConfig& config);

}  // namespace ssa

#endif  // SSA_AUCTION_WORKLOAD_H_
