#ifndef SSA_AUCTION_COST_MODEL_H_
#define SSA_AUCTION_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/bids_table.h"
#include "util/common.h"

namespace ssa {

/// Contiguous advertiser range [begin, end) owned by one shard. Public so
/// partitions can be computed (ShardRebalancer), applied
/// (ShardedAuctionEngine::Repartition) and inspected (ShardStats) without
/// reaching into the engine.
struct ShardRange {
  AdvertiserId begin = 0;
  AdvertiserId end = 0;
};

inline bool operator==(const ShardRange& a, const ShardRange& b) {
  return a.begin == b.begin && a.end == b.end;
}
inline bool operator!=(const ShardRange& a, const ShardRange& b) {
  return !(a == b);
}

struct CostModelOptions {
  /// EWMA retention per auction: cost <- decay * cost + (1 - decay) * sample.
  /// 0.9 forgets a workload shift in a few dozen auctions while smoothing
  /// over per-query keyword variation.
  double decay = 0.9;
  /// Fixed per-advertiser weight added to the per-row weight when
  /// attributing a range's measured nanoseconds across its advertisers —
  /// models the per-advertiser overhead (strategy dispatch, fingerprint,
  /// cache probe) that exists even for an empty table.
  double base_weight = 1.0;
};

/// Measured per-advertiser cost, exponentially decayed across auctions — the
/// feedback signal shard rebalancing equalizes. The two cheap signals the
/// engine already produces drive it: the *measured nanoseconds* of each
/// shard's program-evaluation (capture) span, attributed across the range's
/// advertisers proportionally to the *revenue-matrix rows they touched*
/// (rows emitted into their BidsTable; each row is one compiled mask column
/// and one matrix accumulation, so rows are the shared cost driver of both
/// planning halves). Per-advertiser clocks would cost two steady_clock reads
/// per advertiser per auction — more than many MakeBids calls — so the model
/// deliberately measures per *range* and attributes per row.
///
/// Units are nanoseconds-per-auction; only ratios matter for partitioning.
///
/// Threading: RecordRangeSample writes only cost_[begin, end), so concurrent
/// calls for the disjoint ranges of one auction (the capture fan-out) are
/// safe. Readers (costs, RangeCost) must not race a capture — the engine's
/// quiescent-telemetry convention.
class CostModel {
 public:
  CostModel(int num_advertisers, const CostModelOptions& options);

  /// Folds one auction's measured capture nanoseconds for advertisers
  /// [begin, end) into their EWMAs. `bids` is the full captured population
  /// (indexed by global advertiser id). Call exactly once per advertiser per
  /// auction (every advertiser is in exactly one shard range).
  void RecordRangeSample(AdvertiserId begin, AdvertiserId end,
                         const std::vector<BidsTable>& bids, double range_ns);

  double cost(AdvertiserId i) const {
    return cost_[static_cast<size_t>(i)];
  }
  const std::vector<double>& costs() const { return cost_; }
  /// Predicted per-auction cost of [begin, end): the sum of its EWMAs.
  double RangeCost(AdvertiserId begin, AdvertiserId end) const;
  double TotalCost() const { return RangeCost(0, num_advertisers()); }
  int num_advertisers() const { return static_cast<int>(cost_.size()); }
  /// Auctions folded in so far (capture calls NoteAuction once per query,
  /// from the sequential half — never from the range fan-out).
  int64_t auctions_sampled() const { return auctions_sampled_; }
  void NoteAuction() { ++auctions_sampled_; }

  const CostModelOptions& options() const { return options_; }

 private:
  CostModelOptions options_;
  std::vector<double> cost_;
  int64_t auctions_sampled_ = 0;
};

struct ShardRebalancerOptions {
  /// Auctions between rebalance attempts; 0 disables the periodic trigger
  /// (on-demand RebalanceShards still works).
  int64_t every = 1024;
  /// Keep the current layout while its predicted imbalance (slowest shard's
  /// predicted cost / mean shard cost) is below this — repartitioning is
  /// cheap but not free (per-shard scratch rebuilds, phase timers reset), so
  /// near-balanced layouts are left alone.
  double min_imbalance = 1.05;
};

/// Recomputes contiguous shard boundaries that equalize predicted per-shard
/// cost: a prefix-sum walk over the per-advertiser EWMAs cuts the population
/// where the running total crosses each shard's proportional target
/// (choosing the closer side of the crossing). Every shard keeps at least
/// one advertiser, so any cost vector — including all-zero, before the
/// model has samples — yields a valid partition.
class ShardRebalancer {
 public:
  explicit ShardRebalancer(const ShardRebalancerOptions& options)
      : options_(options) {}

  /// True when `auctions_run` has advanced `options.every` auctions past the
  /// last due point (never when `every` is 0). The caller decides *where* in
  /// its schedule to honor a due rebalance — the serving executor only does
  /// so at epoch boundaries.
  bool Due(int64_t auctions_run);

  /// The equal-predicted-cost contiguous partition of costs.size()
  /// advertisers into `num_shards` ranges (clamped to the population size).
  static std::vector<ShardRange> ComputeBalancedRanges(
      const std::vector<double>& costs, int num_shards);

  /// max-shard/mean-shard predicted cost of `ranges` under `costs`
  /// (1.0 = perfectly balanced; returns 1.0 when total cost is zero).
  static double PredictedImbalance(const std::vector<double>& costs,
                                   const std::vector<ShardRange>& ranges);

  const ShardRebalancerOptions& options() const { return options_; }

 private:
  ShardRebalancerOptions options_;
  int64_t last_due_ = 0;
};

}  // namespace ssa

#endif  // SSA_AUCTION_COST_MODEL_H_
