#ifndef SSA_AUCTION_PRICING_H_
#define SSA_AUCTION_PRICING_H_

#include <string>
#include <vector>

#include "core/click_model.h"
#include "core/expected_revenue.h"
#include "matching/allocation.h"
#include "util/common.h"

namespace ssa {

/// Pricing rules (Step 5/6 of the auction lifecycle). Winner determination
/// is pricing-agnostic — the paper's point is that, given winner
/// determination as a subroutine, all of these are "very simple
/// computations".
enum class PricingRule {
  /// First price: pay your (per-click-equivalent) bid.
  kPayYourBid,
  /// The "slight generalization of generalized second-pricing" of Section V:
  /// the winner of slot j pays, per click, the smallest amount that would
  /// still generate at least as much expected revenue in slot j as the best
  /// advertiser left without a slot — min(own bid, r_next(j) / ctr(i, j)).
  kGeneralizedSecondPrice,
  /// Vickrey pricing: each winner is charged its social opportunity cost
  /// (computed per auction as an expected lump charge, not per click).
  kVcg,
};

std::string PricingRuleName(PricingRule rule);

/// Per-click price for each slot of the allocation under kPayYourBid or
/// kGeneralizedSecondPrice. Entry j is 0 for empty slots. Prices are
/// per-click: the advertiser is charged only when a click occurs (the
/// pay-per-click contract of sponsored search).
///
/// The per-click-equivalent bid of winner i in slot j is
/// r_i(j) / P(click | i, j) — for a plain Click bid this is exactly the bid
/// value; for multi-feature bids it is the expected payment per expected
/// click.
std::vector<Money> PerClickPrices(PricingRule rule,
                                  const RevenueMatrix& revenue,
                                  const ClickModel& model,
                                  const Allocation& allocation);

/// Expected VCG charge per slot: (optimum without winner i) - (optimum's
/// weight excluding i's own edge). Individually rational (charge <= r_i(j))
/// and non-negative; verified by tests. O(k) extra matchings.
std::vector<Money> VcgExpectedCharges(const RevenueMatrix& revenue,
                                      const Allocation& allocation);

/// Dispatches to VcgExpectedCharges or PerClickPrices by rule — the single
/// Step 6 entry point shared by AuctionEngine and ShardedAuctionEngine.
std::vector<Money> ComputePrices(PricingRule rule, const RevenueMatrix& revenue,
                                 const ClickModel& model,
                                 const Allocation& allocation);

}  // namespace ssa

#endif  // SSA_AUCTION_PRICING_H_
