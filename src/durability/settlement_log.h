#ifndef SSA_DURABILITY_SETTLEMENT_LOG_H_
#define SSA_DURABILITY_SETTLEMENT_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "auction/auction_engine.h"
#include "obs/trace.h"
#include "util/histogram.h"
#include "util/status.h"

namespace ssa {

/// One settled auction, as persisted: everything needed to re-derive the
/// account deltas (the events carry charges and clicks per winner) and to
/// verify a replayed auction against what the pre-crash engine actually did.
/// `seq` is the engine's auction counter — records are strictly sequenced,
/// and recovery refuses a log with a gap.
struct SettlementRecord {
  uint64_t seq = 0;
  Query query;
  /// Winners per slot (slot_to_advertiser; -1 = unfilled).
  std::vector<AdvertiserId> winners;
  /// Per-slot charge for the allocation (GSP per-click or VCG lump).
  std::vector<Money> prices;
  /// Realized user behavior + charges, one entry per filled slot. These are
  /// the account deltas: clicked adds value_gained, charged adds spend.
  std::vector<UserEvent> events;
  double matching_weight = 0.0;
  double expected_revenue = 0.0;
  Money revenue_charged = 0;

  /// Builds the record for `outcome`, settled as auction number `seq`.
  static SettlementRecord FromOutcome(uint64_t seq,
                                      const AuctionOutcome& outcome);

  /// Bitwise comparison against a (re-)executed outcome — the recovery
  /// verification predicate. Exact double equality throughout: replay is
  /// only correct if it is bitwise.
  bool MatchesOutcome(const AuctionOutcome& outcome) const;
};

/// Fault-injection hook consulted by SettlementLogWriter on every append —
/// the test harness's lever for killing the engine at an exact auction index
/// and corrupting whatever had not yet been committed. Production writers
/// run without one.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Consulted after the framed record `seq` is staged into the writer's
  /// unsynced buffer. Returning true simulates process death at exactly this
  /// point: the writer passes the unsynced suffix to MutateUnsynced, writes
  /// whatever survives, and goes dead (every later call is a silent no-op,
  /// matching a killed process).
  virtual bool KillAt(uint64_t seq) {
    (void)seq;
    return false;
  }

  /// The fate of the bytes staged since the last durable commit, edited in
  /// place: erase all (clean kill — the OS never saw them), keep a prefix
  /// (torn write / short read), or flip bits (media corruption). The
  /// committed prefix of the log is never touched — that is the durability
  /// contract group commit buys.
  virtual void MutateUnsynced(std::string* unsynced) { unsynced->clear(); }
};

/// When appended records become durable.
enum class LogSyncMode {
  /// Stage in user space; write() to the OS every `group_records` appends
  /// and on Flush(). Survives process death for committed groups, not power
  /// loss.
  kBuffered,
  /// Like kBuffered plus fsync per group commit — the classic group commit:
  /// one fsync amortized over `group_records` settlements.
  kGroupFsync,
  /// write() + fsync every record. The durability ceiling and the cost
  /// floor bench_durability quantifies.
  kFsyncEach,
};

struct LogWriterOptions {
  LogSyncMode sync = LogSyncMode::kBuffered;
  /// Commit threshold in records for the buffered/group-fsync modes.
  size_t group_records = 32;

  // --- Observability sinks (not owned; null = off). The writer stays
  // single-threaded; the histograms are wait-free, so a metrics snapshot may
  // read them while the executor commits.
  /// fsync latency per sync, microseconds.
  LatencyHistogram* fsync_us = nullptr;
  /// Records per group commit (the group-size distribution).
  LatencyHistogram* commit_records = nullptr;
  /// kLogFsync spans (one per fsync, stamped with the last committed seq).
  Tracer* tracer = nullptr;
};

/// Append-only settlement-log writer: length-prefixed, CRC32-checksummed
/// frames, group-commit batching so the serving hot path pays one write (and
/// at most one fsync) per `group_records` settlements. Single-writer by
/// contract — the serving executor owns it, and no method is thread-safe:
/// Append/Flush must come from one thread, with Appends strictly in
/// settlement order (seq gaps are rejected). With planning lanes enabled
/// this contract is unchanged — lanes only plan; settlement (and hence
/// every Append) stays on the executor thread, in arrival order.
class SettlementLogWriter {
 public:
  /// Opens `path` for appending, creating it if absent. `next_seq` is the
  /// sequence number the first Append must carry (1 for a fresh log; the
  /// recovered seq + 1 after restore-then-replay). `injector` may be null
  /// and is not owned.
  static StatusOr<std::unique_ptr<SettlementLogWriter>> Open(
      const std::string& path, const LogWriterOptions& options,
      uint64_t next_seq = 1, FaultInjector* injector = nullptr);

  ~SettlementLogWriter();
  SettlementLogWriter(const SettlementLogWriter&) = delete;
  SettlementLogWriter& operator=(const SettlementLogWriter&) = delete;

  /// Stages one record; commits the pending group when the threshold is
  /// reached. Records must arrive in sequence (seq == next expected).
  Status Append(const SettlementRecord& record);

  /// Commits everything staged (write + fsync per the sync mode). The
  /// graceful-shutdown path: Stop() drains the executor, then flushes.
  Status Flush();

  /// True once a FaultInjector killed this writer; all operations are
  /// no-ops from then on.
  bool dead() const { return dead_; }

  uint64_t next_seq() const { return next_seq_; }
  int64_t records_appended() const { return records_appended_; }
  int64_t commits() const { return commits_; }
  int64_t syncs() const { return syncs_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  SettlementLogWriter(int fd, std::string path, const LogWriterOptions& opts,
                      uint64_t next_seq, FaultInjector* injector);

  /// Writes the pending buffer to the fd (+fsync per mode) and clears it.
  Status CommitPending(bool force_sync);
  /// Kill path: mutates the unsynced suffix per the injector, writes what
  /// survives, and marks the writer dead.
  void Die();

  const int fd_;
  const std::string path_;
  const LogWriterOptions options_;
  FaultInjector* const injector_;
  std::string pending_;
  size_t pending_records_ = 0;
  uint64_t next_seq_;
  bool dead_ = false;
  int64_t records_appended_ = 0;
  int64_t commits_ = 0;
  int64_t syncs_ = 0;
  uint64_t bytes_written_ = 0;
};

/// How a log scan's tail ended — the distinction that lets a live tailer
/// (src/replication/log_tailer.h) wait for more bytes instead of declaring
/// data loss.
enum class LogTailKind : uint8_t {
  /// The last byte of the file ends the last intact frame.
  kClean,
  /// The tail is a *prefix* of a well-formed frame: a short header or a
  /// payload shorter than its length prefix. Indistinguishable from a
  /// group-commit write in progress, so a tailer should wait and re-read;
  /// after a crash it is the classic torn-write artifact recovery truncates.
  kIncomplete,
  /// The tail is provably not a frame prefix: an insane length, a CRC
  /// mismatch on a complete payload, an undecodable payload, or a sequence
  /// gap. Waiting cannot fix it — truncate (recovery) or fail (tailer).
  kCorrupt,
};

/// What a log scan found. `valid_bytes` is the byte offset of the first
/// undecodable frame (== file size for a clean log): truncating the file to
/// it removes the corrupt tail while keeping every intact record.
struct LogReadStats {
  int64_t records = 0;
  uint64_t last_seq = 0;
  uint64_t valid_bytes = 0;
  /// Bytes past the last intact record (torn tail, bit flip, short read).
  uint64_t corrupt_bytes = 0;
  LogTailKind tail = LogTailKind::kClean;
  bool tail_truncated() const { return corrupt_bytes > 0; }
};

/// Reads every intact record of `path` in order. A frame that fails the
/// length, CRC, decode, or sequence check ends the scan: the suffix from
/// that offset on is reported in `stats->corrupt_bytes` rather than being an
/// error — a torn tail is an expected crash artifact, and the caller decides
/// whether to truncate (see RecoverEngine). A missing file reads as an empty
/// log.
Status ReadSettlementLog(const std::string& path,
                         std::vector<SettlementRecord>* records,
                         LogReadStats* stats);

/// Encodes `record` as one framed log entry:
///   [u32 payload_len][u32 crc32(payload)][payload]
/// (exposed for tests that hand-craft corrupt logs).
void EncodeLogFrame(const SettlementRecord& record, std::string* out);

/// What ParseLogFrame found at a buffer position.
enum class FrameParse : uint8_t {
  kRecord,      // one intact frame decoded; *frame_bytes consumed
  kIncomplete,  // the buffer ends inside a plausible frame (live tail)
  kCorrupt,     // provably not a frame (bad length / CRC / payload)
};

/// Decodes the frame starting at `data[pos]`. On kRecord, `*record` holds
/// the decoded settlement and `*frame_bytes` the framed size (header +
/// payload). Sequence continuity is the caller's concern — the frame itself
/// carries its seq. Shared by the recovery scan and the live tailer, so the
/// two agree byte-for-byte on what counts as intact.
FrameParse ParseLogFrame(std::string_view data, size_t pos,
                         SettlementRecord* record, size_t* frame_bytes);

}  // namespace ssa

#endif  // SSA_DURABILITY_SETTLEMENT_LOG_H_
