#ifndef SSA_DURABILITY_CHECKPOINT_H_
#define SSA_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "auction/account.h"
#include "auction/query_gen.h"
#include "core/compiled_bids.h"
#include "util/status.h"

namespace ssa {

/// Complete serializable engine state at a settlement boundary — everything
/// a freshly constructed engine (same config, workload, and strategy
/// construction as the original) needs to continue bitwise-identically to
/// the uninterrupted run:
///   * per-advertiser accounts (spend, per-keyword value/spend — the state
///     whose loss Section II-B makes every later bid wrong);
///   * both RNG streams (user behavior, query generation) plus the auction
///     counter, so draws resume mid-stream;
///   * each strategy's private state blob (tentative bids, program tables);
///   * the compiled-bids cache keys — compilations are pure, so only the
///     fingerprints persist: tables recompile on demand and the fingerprints
///     verify the restored strategies re-emit the checkpointed tables.
struct EngineCheckpoint {
  static constexpr uint32_t kVersion = 1;

  /// Settlement-log position: auctions settled when the checkpoint was
  /// taken. Recovery replays log records with seq > this.
  uint64_t seq = 0;
  double total_revenue = 0;
  uint64_t user_rng[4] = {0, 0, 0, 0};
  QueryGenerator::State query_gen;
  /// Workload shape, checked at restore: a checkpoint only restores into an
  /// engine built from the same population.
  int32_t num_advertisers = 0;
  int32_t num_slots = 0;
  int32_t num_keywords = 0;
  std::vector<AdvertiserAccount> accounts;
  /// One opaque blob per strategy (BiddingStrategy::SaveState).
  std::vector<std::string> strategy_state;
  /// One key per advertiser (globally indexed; the sharded engine maps them
  /// onto its per-shard caches).
  std::vector<CompiledBidsCache::KeySnapshot> cache_keys;
};

/// Serializes `ckpt` into the versioned checkpoint format:
///   "SSACKPT1" magic, u32 version, u64 payload_len, u32 crc32(payload),
///   payload.
void EncodeCheckpoint(const EngineCheckpoint& ckpt, std::string* out);

/// Decodes and validates (magic, version, length, CRC) a checkpoint image.
Status DecodeCheckpoint(std::string_view data, EngineCheckpoint* ckpt);

/// Writes atomically (tmp + fsync + rename): a crash mid-checkpoint leaves
/// the previous checkpoint intact, never a torn file.
Status WriteCheckpointFile(const std::string& path,
                           const EngineCheckpoint& ckpt);
Status ReadCheckpointFile(const std::string& path, EngineCheckpoint* ckpt);

}  // namespace ssa

#endif  // SSA_DURABILITY_CHECKPOINT_H_
