#include "durability/checkpoint.h"

#include <cstring>

#include "durability/wire.h"

namespace ssa {
namespace {

constexpr char kMagic[8] = {'S', 'S', 'A', 'C', 'K', 'P', 'T', '1'};

void EncodeAccount(const AdvertiserAccount& account, WireWriter* w) {
  w->PutDouble(account.amount_spent);
  w->PutDouble(account.target_spend_rate);
  w->PutDoubleVector(account.value_per_click);
  w->PutDoubleVector(account.max_bid);
  w->PutDoubleVector(account.value_gained);
  w->PutDoubleVector(account.spent_per_keyword);
}

Status DecodeAccount(WireReader* r, AdvertiserAccount* account) {
  SSA_RETURN_IF_ERROR(r->GetDouble(&account->amount_spent));
  SSA_RETURN_IF_ERROR(r->GetDouble(&account->target_spend_rate));
  SSA_RETURN_IF_ERROR(r->GetDoubleVector(&account->value_per_click));
  SSA_RETURN_IF_ERROR(r->GetDoubleVector(&account->max_bid));
  SSA_RETURN_IF_ERROR(r->GetDoubleVector(&account->value_gained));
  SSA_RETURN_IF_ERROR(r->GetDoubleVector(&account->spent_per_keyword));
  return Status::Ok();
}

void EncodePayload(const EngineCheckpoint& ckpt, std::string* out) {
  WireWriter w(out);
  w.PutU64(ckpt.seq);
  w.PutDouble(ckpt.total_revenue);
  for (uint64_t s : ckpt.user_rng) w.PutU64(s);
  for (uint64_t s : ckpt.query_gen.rng) w.PutU64(s);
  w.PutI64(ckpt.query_gen.time);
  w.PutI32(ckpt.num_advertisers);
  w.PutI32(ckpt.num_slots);
  w.PutI32(ckpt.num_keywords);
  w.PutU32(static_cast<uint32_t>(ckpt.accounts.size()));
  for (const AdvertiserAccount& account : ckpt.accounts) {
    EncodeAccount(account, &w);
  }
  w.PutU32(static_cast<uint32_t>(ckpt.strategy_state.size()));
  for (const std::string& blob : ckpt.strategy_state) w.PutString(blob);
  w.PutU32(static_cast<uint32_t>(ckpt.cache_keys.size()));
  for (const CompiledBidsCache::KeySnapshot& key : ckpt.cache_keys) {
    w.PutU8(key.valid ? 1 : 0);
    w.PutU64(key.fingerprint);
    w.PutI32(key.num_slots);
  }
}

Status DecodePayload(std::string_view payload, EngineCheckpoint* ckpt) {
  WireReader r(payload);
  SSA_RETURN_IF_ERROR(r.GetU64(&ckpt->seq));
  SSA_RETURN_IF_ERROR(r.GetDouble(&ckpt->total_revenue));
  for (uint64_t& s : ckpt->user_rng) SSA_RETURN_IF_ERROR(r.GetU64(&s));
  for (uint64_t& s : ckpt->query_gen.rng) SSA_RETURN_IF_ERROR(r.GetU64(&s));
  SSA_RETURN_IF_ERROR(r.GetI64(&ckpt->query_gen.time));
  SSA_RETURN_IF_ERROR(r.GetI32(&ckpt->num_advertisers));
  SSA_RETURN_IF_ERROR(r.GetI32(&ckpt->num_slots));
  SSA_RETURN_IF_ERROR(r.GetI32(&ckpt->num_keywords));
  uint32_t n = 0;
  SSA_RETURN_IF_ERROR(r.GetU32(&n));
  ckpt->accounts.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    SSA_RETURN_IF_ERROR(DecodeAccount(&r, &ckpt->accounts[i]));
  }
  SSA_RETURN_IF_ERROR(r.GetU32(&n));
  ckpt->strategy_state.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    SSA_RETURN_IF_ERROR(r.GetString(&ckpt->strategy_state[i]));
  }
  SSA_RETURN_IF_ERROR(r.GetU32(&n));
  ckpt->cache_keys.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t valid = 0;
    SSA_RETURN_IF_ERROR(r.GetU8(&valid));
    SSA_RETURN_IF_ERROR(r.GetU64(&ckpt->cache_keys[i].fingerprint));
    SSA_RETURN_IF_ERROR(r.GetI32(&ckpt->cache_keys[i].num_slots));
    ckpt->cache_keys[i].valid = valid != 0;
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in checkpoint payload");
  }
  return Status::Ok();
}

}  // namespace

void EncodeCheckpoint(const EngineCheckpoint& ckpt, std::string* out) {
  std::string payload;
  EncodePayload(ckpt, &payload);
  out->append(kMagic, sizeof(kMagic));
  WireWriter w(out);
  w.PutU32(EngineCheckpoint::kVersion);
  w.PutU64(payload.size());
  w.PutU32(Crc32(payload));
  out->append(payload);
}

Status DecodeCheckpoint(std::string_view data, EngineCheckpoint* ckpt) {
  constexpr size_t kHeaderBytes = sizeof(kMagic) + 4 + 8 + 4;
  if (data.size() < kHeaderBytes) {
    return Status::InvalidArgument("checkpoint too short for header");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  WireReader r(data.substr(sizeof(kMagic)));
  uint32_t version = 0, crc = 0;
  uint64_t payload_len = 0;
  SSA_RETURN_IF_ERROR(r.GetU32(&version));
  SSA_RETURN_IF_ERROR(r.GetU64(&payload_len));
  SSA_RETURN_IF_ERROR(r.GetU32(&crc));
  if (version != EngineCheckpoint::kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  const std::string_view payload = data.substr(kHeaderBytes);
  if (payload.size() != payload_len) {
    return Status::InvalidArgument("checkpoint payload length mismatch");
  }
  if (Crc32(payload) != crc) {
    return Status::InvalidArgument("checkpoint CRC mismatch");
  }
  return DecodePayload(payload, ckpt);
}

Status WriteCheckpointFile(const std::string& path,
                           const EngineCheckpoint& ckpt) {
  std::string data;
  EncodeCheckpoint(ckpt, &data);
  return AtomicWriteFile(path, data);
}

Status ReadCheckpointFile(const std::string& path, EngineCheckpoint* ckpt) {
  std::string data;
  SSA_RETURN_IF_ERROR(ReadFileToString(path, &data));
  return DecodeCheckpoint(data, ckpt);
}

}  // namespace ssa
