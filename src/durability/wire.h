#ifndef SSA_DURABILITY_WIRE_H_
#define SSA_DURABILITY_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ssa {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data` — the checksum
/// guarding every settlement-log record and checkpoint payload. A torn or
/// bit-flipped tail fails this check and is truncated instead of being
/// replayed into account state.
uint32_t Crc32(std::string_view data);

/// Little-endian binary encoder for the durability formats. Fixed-width
/// fields only: the encoding of a value is a pure function of the value, so
/// two engines in bitwise-identical states serialize to identical bytes
/// (checkpoints and log records can be compared byte-for-byte in tests).
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutBytes(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutBytes(&v, sizeof(v)); }
  /// Doubles travel as their IEEE-754 bit pattern — bitwise round trips,
  /// including negative zero and NaN payloads.
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }
  void PutDoubleVector(const std::vector<double>& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (double x : v) PutDouble(x);
  }

 private:
  void PutBytes(const void* p, size_t n) {
    // The library targets little-endian hosts (x86/aarch64); a fixed-width
    // memcpy is the canonical little-endian encoding there.
    out_->append(reinterpret_cast<const char*>(p), n);
  }

  std::string* out_;
};

/// Decoder over a byte range. Every Get returns a Status instead of
/// asserting: durability inputs are untrusted bytes off disk, and a short
/// read must surface as an error the recovery path can act on (truncate),
/// never as UB or an abort.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  Status GetU8(uint8_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetU32(uint32_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetU64(uint64_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetI32(int32_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetI64(int64_t* v) { return GetBytes(v, sizeof(*v)); }
  Status GetDouble(double* v) {
    uint64_t bits = 0;
    SSA_RETURN_IF_ERROR(GetU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::Ok();
  }
  Status GetString(std::string* s) {
    uint32_t n = 0;
    SSA_RETURN_IF_ERROR(GetU32(&n));
    if (n > remaining()) return ShortRead("string body");
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }
  Status GetDoubleVector(std::vector<double>* v) {
    uint32_t n = 0;
    SSA_RETURN_IF_ERROR(GetU32(&n));
    if (static_cast<size_t>(n) * sizeof(double) > remaining()) {
      return ShortRead("double vector body");
    }
    v->resize(n);
    for (uint32_t i = 0; i < n; ++i) SSA_RETURN_IF_ERROR(GetDouble(&(*v)[i]));
    return Status::Ok();
  }

 private:
  Status GetBytes(void* p, size_t n) {
    if (n > remaining()) return ShortRead("fixed-width field");
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }
  static Status ShortRead(const char* what) {
    return Status::InvalidArgument(std::string("short read: ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Whole-file helpers for the durability formats (Status-returning POSIX
/// I/O; no exceptions, no silent bool failures).
Status ReadFileToString(const std::string& path, std::string* out);
/// Writes `data` to `path`.tmp, fsyncs, then renames over `path` — a
/// checkpoint is either the complete new file or the complete old one,
/// never a torn mix.
Status AtomicWriteFile(const std::string& path, std::string_view data);
/// Truncates `path` to `size` bytes (recovery cutting a corrupt log tail).
Status TruncateFile(const std::string& path, uint64_t size);
bool FileExists(const std::string& path);

}  // namespace ssa

#endif  // SSA_DURABILITY_WIRE_H_
