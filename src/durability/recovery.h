#ifndef SSA_DURABILITY_RECOVERY_H_
#define SSA_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/settlement_log.h"
#include "durability/wire.h"
#include "util/status.h"

namespace ssa {

/// How the recovering engine obtains replay queries.
enum class QueryStream {
  /// The engine generates its own stream (RunAuction): replay re-executes
  /// via RunAuction() so the generator advances in lockstep, and verifies
  /// each generated query against the logged one — a divergence means the
  /// checkpoint and log disagree about the trajectory.
  kInternal,
  /// Queries arrived externally (the serving path): replay feeds each logged
  /// query back through RunAuctionOn().
  kExternal,
};

struct RecoveryOptions {
  /// Checkpoint to rewind to. Empty or missing file = recover from the
  /// engine's current (freshly constructed) state, replaying the whole log.
  std::string checkpoint_path;
  std::string log_path;
  QueryStream stream = QueryStream::kInternal;
  /// Compare every replayed auction bitwise against its logged record
  /// (allocation, prices, events, revenue). Leave on wherever the engine is
  /// deterministic — it turns silent divergence into a hard error.
  bool verify_outcomes = true;
  /// Truncate the log file to its last intact record when the tail is torn
  /// or corrupt, so the next writer appends after clean frames.
  bool truncate_corrupt_tail = true;
};

struct RecoveryReport {
  /// Auction count the checkpoint rewound to (0 = no checkpoint).
  uint64_t checkpoint_seq = 0;
  /// Log records re-executed on top of the checkpoint.
  int64_t records_replayed = 0;
  /// Records at or below checkpoint_seq, already folded into the checkpoint.
  int64_t records_skipped = 0;
  /// Bytes of torn/corrupt log tail discarded (0 for a clean log).
  uint64_t truncated_bytes = 0;
  bool tail_truncated = false;
  /// Engine position after recovery == last durable auction.
  uint64_t recovered_seq = 0;
  /// Replayed auctions whose outcome differed from the logged record
  /// (always 0 when recovery succeeds with verify_outcomes on).
  int64_t verify_mismatches = 0;
};

/// Restore-then-replay: rewinds `engine` to the checkpoint (if one exists),
/// then re-executes the settlement log's suffix. Because engines are
/// bitwise-deterministic, re-execution reconstructs accounts, RNG streams,
/// revenue, and strategy state exactly — the engine ends bitwise-identical
/// to the uninterrupted run at the last durable record, losing only the
/// unsynced suffix a crash destroyed. Works for AuctionEngine and
/// ShardedAuctionEngine (any shard count).
///
/// Single-threaded by contract: the caller must be the only party touching
/// `engine` for the duration (the serving path runs it inside Start(),
/// before the executor launches). Replay re-executes records strictly in
/// log-sequence order — the same arrival order the executor settled in.
template <typename Engine>
Status RecoverEngine(Engine* engine, const RecoveryOptions& options,
                     RecoveryReport* report) {
  *report = RecoveryReport{};

  if (!options.checkpoint_path.empty() &&
      FileExists(options.checkpoint_path)) {
    EngineCheckpoint ckpt;
    SSA_RETURN_IF_ERROR(ReadCheckpointFile(options.checkpoint_path, &ckpt));
    SSA_RETURN_IF_ERROR(engine->RestoreCheckpoint(ckpt));
    report->checkpoint_seq = ckpt.seq;
  }

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  SSA_RETURN_IF_ERROR(ReadSettlementLog(options.log_path, &records, &stats));
  report->tail_truncated = stats.tail_truncated();
  report->truncated_bytes = stats.corrupt_bytes;
  if (stats.tail_truncated() && options.truncate_corrupt_tail) {
    SSA_RETURN_IF_ERROR(TruncateFile(options.log_path, stats.valid_bytes));
  }

  uint64_t position = static_cast<uint64_t>(engine->auctions_run());
  for (const SettlementRecord& record : records) {
    if (record.seq <= position) {
      // Already folded into the checkpoint (checkpoints may trail or lead
      // individual log group commits).
      ++report->records_skipped;
      continue;
    }
    if (record.seq != position + 1) {
      return Status::DataLoss(
          "settlement log gap: engine at auction " + std::to_string(position) +
          ", next record is " + std::to_string(record.seq));
    }
    const AuctionOutcome* outcome = nullptr;
    if (options.stream == QueryStream::kInternal) {
      outcome = &engine->RunAuction();
      if (outcome->query.keyword != record.query.keyword ||
          outcome->query.time != record.query.time) {
        return Status::DataLoss(
            "replayed query diverges from log at auction " +
            std::to_string(record.seq));
      }
    } else {
      outcome = &engine->RunAuctionOn(record.query);
    }
    position = record.seq;
    ++report->records_replayed;
    if (options.verify_outcomes && !record.MatchesOutcome(*outcome)) {
      ++report->verify_mismatches;
      return Status::DataLoss(
          "replayed auction " + std::to_string(record.seq) +
          " diverges from its logged settlement");
    }
  }
  report->recovered_seq = position;
  return Status::Ok();
}

}  // namespace ssa

#endif  // SSA_DURABILITY_RECOVERY_H_
