#include "durability/settlement_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "durability/wire.h"

namespace ssa {
namespace {

/// Frames larger than this are treated as corruption: no auction encodes to
/// gigabytes, and an insane length prefix must not drive a giant allocation.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

void EncodePayload(const SettlementRecord& record, std::string* out) {
  WireWriter w(out);
  w.PutU64(record.seq);
  w.PutI32(record.query.keyword);
  w.PutI64(record.query.time);
  w.PutDoubleVector(record.query.relevance);
  w.PutU32(static_cast<uint32_t>(record.winners.size()));
  for (AdvertiserId id : record.winners) w.PutI32(id);
  w.PutDoubleVector(record.prices);
  w.PutU32(static_cast<uint32_t>(record.events.size()));
  for (const UserEvent& e : record.events) {
    w.PutI32(e.advertiser);
    w.PutI32(e.slot);
    w.PutU8(e.clicked ? 1 : 0);
    w.PutU8(e.purchased ? 1 : 0);
    w.PutDouble(e.charged);
  }
  w.PutDouble(record.matching_weight);
  w.PutDouble(record.expected_revenue);
  w.PutDouble(record.revenue_charged);
}

Status DecodePayload(std::string_view payload, SettlementRecord* record) {
  WireReader r(payload);
  SSA_RETURN_IF_ERROR(r.GetU64(&record->seq));
  SSA_RETURN_IF_ERROR(r.GetI32(&record->query.keyword));
  SSA_RETURN_IF_ERROR(r.GetI64(&record->query.time));
  SSA_RETURN_IF_ERROR(r.GetDoubleVector(&record->query.relevance));
  uint32_t n = 0;
  SSA_RETURN_IF_ERROR(r.GetU32(&n));
  record->winners.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    SSA_RETURN_IF_ERROR(r.GetI32(&record->winners[i]));
  }
  SSA_RETURN_IF_ERROR(r.GetDoubleVector(&record->prices));
  SSA_RETURN_IF_ERROR(r.GetU32(&n));
  record->events.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    UserEvent& e = record->events[i];
    uint8_t clicked = 0, purchased = 0;
    SSA_RETURN_IF_ERROR(r.GetI32(&e.advertiser));
    SSA_RETURN_IF_ERROR(r.GetI32(&e.slot));
    SSA_RETURN_IF_ERROR(r.GetU8(&clicked));
    SSA_RETURN_IF_ERROR(r.GetU8(&purchased));
    SSA_RETURN_IF_ERROR(r.GetDouble(&e.charged));
    e.clicked = clicked != 0;
    e.purchased = purchased != 0;
  }
  SSA_RETURN_IF_ERROR(r.GetDouble(&record->matching_weight));
  SSA_RETURN_IF_ERROR(r.GetDouble(&record->expected_revenue));
  SSA_RETURN_IF_ERROR(r.GetDouble(&record->revenue_charged));
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in log payload");
  }
  return Status::Ok();
}

}  // namespace

SettlementRecord SettlementRecord::FromOutcome(uint64_t seq,
                                               const AuctionOutcome& outcome) {
  SettlementRecord record;
  record.seq = seq;
  record.query = outcome.query;
  record.winners = outcome.wd.allocation.slot_to_advertiser;
  record.prices = outcome.prices;
  record.events = outcome.events;
  record.matching_weight = outcome.wd.matching_weight;
  record.expected_revenue = outcome.wd.expected_revenue;
  record.revenue_charged = outcome.revenue_charged;
  return record;
}

bool SettlementRecord::MatchesOutcome(const AuctionOutcome& outcome) const {
  if (query.keyword != outcome.query.keyword ||
      query.time != outcome.query.time ||
      winners != outcome.wd.allocation.slot_to_advertiser ||
      prices != outcome.prices ||
      matching_weight != outcome.wd.matching_weight ||
      expected_revenue != outcome.wd.expected_revenue ||
      revenue_charged != outcome.revenue_charged ||
      events.size() != outcome.events.size()) {
    return false;
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const UserEvent& a = events[i];
    const UserEvent& b = outcome.events[i];
    if (a.advertiser != b.advertiser || a.slot != b.slot ||
        a.clicked != b.clicked || a.purchased != b.purchased ||
        a.charged != b.charged) {
      return false;
    }
  }
  return true;
}

void EncodeLogFrame(const SettlementRecord& record, std::string* out) {
  std::string payload;
  EncodePayload(record, &payload);
  WireWriter w(out);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  out->append(payload);
}

StatusOr<std::unique_ptr<SettlementLogWriter>> SettlementLogWriter::Open(
    const std::string& path, const LogWriterOptions& options,
    uint64_t next_seq, FaultInjector* injector) {
  if (options.group_records < 1) {
    return Status::InvalidArgument("group_records must be >= 1");
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<SettlementLogWriter>(
      new SettlementLogWriter(fd, path, options, next_seq, injector));
}

SettlementLogWriter::SettlementLogWriter(int fd, std::string path,
                                         const LogWriterOptions& options,
                                         uint64_t next_seq,
                                         FaultInjector* injector)
    : fd_(fd),
      path_(std::move(path)),
      options_(options),
      injector_(injector),
      next_seq_(next_seq) {}

SettlementLogWriter::~SettlementLogWriter() {
  if (!dead_) Flush();  // best effort; Stop() should have flushed already
  ::close(fd_);
}

Status SettlementLogWriter::Append(const SettlementRecord& record) {
  if (dead_) return Status::Ok();  // a killed process appends nothing
  if (record.seq != next_seq_) {
    return Status::FailedPrecondition(
        "out-of-sequence settlement record: got " +
        std::to_string(record.seq) + ", want " + std::to_string(next_seq_));
  }
  EncodeLogFrame(record, &pending_);
  ++pending_records_;
  ++next_seq_;
  ++records_appended_;
  if (injector_ != nullptr && injector_->KillAt(record.seq)) {
    Die();
    return Status::Ok();
  }
  if (options_.sync == LogSyncMode::kFsyncEach ||
      pending_records_ >= options_.group_records) {
    return CommitPending(options_.sync == LogSyncMode::kFsyncEach);
  }
  return Status::Ok();
}

Status SettlementLogWriter::Flush() {
  if (dead_) return Status::Ok();
  return CommitPending(/*force_sync=*/false);
}

Status SettlementLogWriter::CommitPending(bool force_sync) {
  if (pending_.empty()) return Status::Ok();
  if (options_.commit_records != nullptr) {
    options_.commit_records->Record(pending_records_);
  }
  size_t written = 0;
  while (written < pending_.size()) {
    const ssize_t n =
        ::write(fd_, pending_.data() + written, pending_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write " + path_ + ": " + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  bytes_written_ += pending_.size();
  pending_.clear();
  pending_records_ = 0;
  ++commits_;
  if (force_sync || options_.sync == LogSyncMode::kGroupFsync) {
    const bool timed =
        options_.fsync_us != nullptr || options_.tracer != nullptr;
    const uint64_t t0 = timed ? Tracer::NowNs() : 0;
    if (::fsync(fd_) != 0) {
      return Status::Internal("fsync " + path_ + ": " + std::strerror(errno));
    }
    ++syncs_;
    if (timed) {
      const uint64_t t1 = Tracer::NowNs();
      if (options_.fsync_us != nullptr) {
        options_.fsync_us->Record((t1 - t0) / 1000);
      }
      if (options_.tracer != nullptr && options_.tracer->enabled()) {
        // The group fsync covers every record staged since the last commit;
        // stamp it with the last committed seq (next_seq_ - 1 >= 1).
        options_.tracer->RecordSpan(next_seq_ - 1, TraceStage::kLogFsync,
                                    /*track=*/0, t0, t1);
      }
    }
  }
  return Status::Ok();
}

void SettlementLogWriter::Die() {
  injector_->MutateUnsynced(&pending_);
  // Whatever the injector left of the unsynced suffix reaches the file —
  // modelling a partial page write / corrupted tail at the kill instant.
  size_t written = 0;
  while (written < pending_.size()) {
    const ssize_t n =
        ::write(fd_, pending_.data() + written, pending_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // dying anyway
    }
    written += static_cast<size_t>(n);
  }
  bytes_written_ += written;
  pending_.clear();
  pending_records_ = 0;
  dead_ = true;
}

FrameParse ParseLogFrame(std::string_view data, size_t pos,
                         SettlementRecord* record, size_t* frame_bytes) {
  // Frame: [u32 len][u32 crc][payload]. A buffer that ends inside the
  // header or the payload is a *plausible* frame prefix (a group commit may
  // be mid-write); everything else that fails is definitive corruption.
  if (data.size() - pos < 8) return FrameParse::kIncomplete;
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, data.data() + pos, 4);
  std::memcpy(&crc, data.data() + pos + 4, 4);
  if (len > kMaxFrameBytes) return FrameParse::kCorrupt;
  if (data.size() - pos - 8 < len) return FrameParse::kIncomplete;
  const std::string_view payload(data.data() + pos + 8, len);
  if (Crc32(payload) != crc) return FrameParse::kCorrupt;
  if (!DecodePayload(payload, record).ok()) return FrameParse::kCorrupt;
  *frame_bytes = 8 + static_cast<size_t>(len);
  return FrameParse::kRecord;
}

Status ReadSettlementLog(const std::string& path,
                         std::vector<SettlementRecord>* records,
                         LogReadStats* stats) {
  records->clear();
  *stats = LogReadStats{};
  std::string data;
  const Status read_status = ReadFileToString(path, &data);
  if (read_status.code() == StatusCode::kNotFound) {
    return Status::Ok();  // no log yet: empty history
  }
  SSA_RETURN_IF_ERROR(read_status);

  size_t pos = 0;
  while (pos < data.size()) {
    SettlementRecord record;
    size_t frame_bytes = 0;
    const FrameParse parse = ParseLogFrame(data, pos, &record, &frame_bytes);
    if (parse != FrameParse::kRecord) {
      stats->tail = parse == FrameParse::kIncomplete ? LogTailKind::kIncomplete
                                                     : LogTailKind::kCorrupt;
      break;
    }
    if (stats->records > 0 && record.seq != stats->last_seq + 1) {
      // A decodable frame with the wrong sequence is corruption, not a
      // write in progress — more bytes cannot repair a gap.
      stats->tail = LogTailKind::kCorrupt;
      break;
    }
    records->push_back(std::move(record));
    ++stats->records;
    stats->last_seq = records->back().seq;
    pos += frame_bytes;
  }
  stats->valid_bytes = pos;
  stats->corrupt_bytes = data.size() - pos;
  return Status::Ok();
}

}  // namespace ssa
