#include "durability/wire.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ssa {
namespace {

/// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// generated once on first use.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(std::string(op) + " " + path + ": " +
                          std::strerror(errno));
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

namespace {

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status status = WriteAll(fd, data, tmp);
  if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync", tmp);
  if (::close(fd) != 0 && status.ok()) status = Errno("close", tmp);
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_status = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return rename_status;
  }
  return Status::Ok();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace ssa
