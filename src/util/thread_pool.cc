#include "util/thread_pool.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/common.h"

namespace ssa {

ThreadPool::ThreadPool(int num_threads) {
  SSA_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  ParallelForChunks(n, [&fn](int begin, int end) {
    for (int i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunks(int n,
                                   const std::function<void(int, int)>& fn) {
  if (n <= 0) return;
  const int chunks = std::min<int>(n, 4 * num_threads());
  for (int c = 0; c < chunks; ++c) {
    const int begin = static_cast<int>(static_cast<int64_t>(n) * c / chunks);
    const int end =
        static_cast<int>(static_cast<int64_t>(n) * (c + 1) / chunks);
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ssa
