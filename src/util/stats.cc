#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace ssa {

void SummaryStats::Add(double x) {
  if (samples_.empty()) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  samples_.push_back(x);
  sorted_ = false;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(samples_.size());
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  if (samples_.size() < 2) return 0.0;
  return m2_ / static_cast<double>(samples_.size() - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

double SummaryStats::Percentile(double p) const {
  SSA_CHECK(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace ssa
