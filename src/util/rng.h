#ifndef SSA_UTIL_RNG_H_
#define SSA_UTIL_RNG_H_

#include <cstdint>

#include "util/common.h"

namespace ssa {

/// Deterministic, seedable pseudo-random generator (xoshiro256** with a
/// splitmix64-seeded state). All randomized components of the library
/// (workload generation, click simulation, tests) draw from this type so
/// that experiments are exactly reproducible from a single seed, and so that
/// two engines given equal seeds see identical random streams (the
/// RH-vs-RHTALU equivalence tests rely on this).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator; equal seeds yield equal streams.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&x);
  }

  /// Next raw 64 random bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n) {
    SSA_CHECK(n > 0);
    // Lemire-style rejection-free-enough bound; bias is negligible for the
    // magnitudes used here but we still reject to keep streams exact.
    uint64_t threshold = (-n) % n;
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SSA_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Copies the raw 256-bit generator state out (checkpointing): restoring
  /// it with RestoreState resumes the exact stream, which is what makes a
  /// restored engine's user-behavior draws bitwise-identical to the
  /// uninterrupted run.
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = s_[i];
  }
  void RestoreState(const uint64_t state[4]) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace ssa

#endif  // SSA_UTIL_RNG_H_
