#ifndef SSA_UTIL_HISTOGRAM_H_
#define SSA_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/common.h"

namespace ssa {

/// Log-bucketed latency histogram (HdrHistogram-style): each power-of-two
/// octave is split into 2^kSubBucketBits linear sub-buckets, so every
/// recorded value lands in a bucket whose width is at most 1/16 of its
/// magnitude — percentile estimates carry <= 6.25% relative error while the
/// whole table is ~1000 fixed counters regardless of range. Values below 16
/// are recorded exactly.
///
/// Units are the caller's choice (the serving telemetry records
/// microseconds). Record() is wait-free and thread-safe (relaxed atomic
/// increments — per-bucket counts are independent and the aggregates are
/// monotone counters); the read-side accessors (Percentile, mean, ...) take
/// a racy but internally consistent-enough snapshot and are meant for
/// reporting after or outside the hot path, not for synchronization.
class LatencyHistogram {
 public:
  LatencyHistogram() : counts_(kNumBuckets) {}

  // The histogram is identified by its counters; copying atomics is not
  // meaningful, use MergeFrom for aggregation.
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value. Thread-safe, wait-free.
  void Record(uint64_t value) {
    counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    AtomicMax(&max_, value);
    AtomicMin(&min_, value);
  }

  /// Total number of recorded values.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of all recorded values (exact).
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest / smallest recorded value (exact). 0 when empty.
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    const uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kEmptyMin ? 0 : m;
  }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Value at percentile p in [0, 100]: the upper bound of the first bucket
  /// whose cumulative count reaches ceil(p/100 * count). Exact for values
  /// < 16, within 6.25% above. Returns 0 when empty.
  uint64_t Percentile(double p) const {
    const uint64_t n = count();
    if (n == 0) return 0;
    if (p <= 0.0) return min();
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
    if (rank * 100 < static_cast<uint64_t>(p * static_cast<double>(n))) ++rank;
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += counts_[b].load(std::memory_order_relaxed);
      if (seen >= rank) {
        const uint64_t upper = BucketUpper(b);
        const uint64_t hi = max();
        return upper < hi ? upper : hi;  // never report beyond the true max
      }
    }
    return max();
  }

  /// Folds `other`'s counters into this histogram. Not concurrency-safe
  /// against writers of either side — post-run aggregation only.
  void MergeFrom(const LatencyHistogram& other) {
    for (int b = 0; b < kNumBuckets; ++b) {
      counts_[b].fetch_add(other.counts_[b].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    if (other.count() > 0) {
      AtomicMax(&max_, other.max());
      AtomicMin(&min_, other.min());
    }
  }

  /// Clears every counter. Not concurrency-safe against writers.
  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    min_.store(kEmptyMin, std::memory_order_relaxed);
  }

  /// Invokes `fn(upper, count)` for every non-empty bucket in ascending
  /// value order, where `upper` is the bucket's inclusive upper bound and
  /// `count` its occupancy. Same read-side contract as Percentile: a racy
  /// but per-bucket-consistent snapshot, for reporting/export only.
  template <typename Fn>
  void ForEachBucket(Fn&& fn) const {
    for (int b = 0; b < kNumBuckets; ++b) {
      const uint64_t c = counts_[b].load(std::memory_order_relaxed);
      if (c != 0) fn(BucketUpper(b), c);
    }
  }

  /// Inclusive upper bound of the value range mapped to bucket `b` (exposed
  /// for the unit tests pinning the bucket geometry).
  static uint64_t BucketUpper(int b) {
    if (b < kSubBuckets) return static_cast<uint64_t>(b);
    const int block = b / kSubBuckets;  // >= 1
    const int sub = b % kSubBuckets;
    const int shift = block - 1;
    const uint64_t lower = static_cast<uint64_t>(kSubBuckets + sub) << shift;
    return lower + ((static_cast<uint64_t>(1) << shift) - 1);
  }

 private:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  // Exact [0, 16) region plus sub-bucketed octaves up to msb 63: the top
  // index is (63 - kSubBucketBits + 1) * kSubBuckets + (kSubBuckets - 1).
  static constexpr int kNumBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;
  static constexpr uint64_t kEmptyMin = ~static_cast<uint64_t>(0);

  static int BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    const int msb = 63 - __builtin_clzll(v);  // >= kSubBucketBits
    const int shift = msb - kSubBucketBits;
    const int sub =
        static_cast<int>((v >> shift) & (kSubBuckets - 1));
    return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
  }

  static void AtomicMax(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t cur = slot->load(std::memory_order_relaxed);
    while (v > cur &&
           !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void AtomicMin(std::atomic<uint64_t>* slot, uint64_t v) {
    uint64_t cur = slot->load(std::memory_order_relaxed);
    while (v < cur &&
           !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{kEmptyMin};
};

}  // namespace ssa

#endif  // SSA_UTIL_HISTOGRAM_H_
