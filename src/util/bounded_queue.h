#ifndef SSA_UTIL_BOUNDED_QUEUE_H_
#define SSA_UTIL_BOUNDED_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/common.h"

namespace ssa {

/// What the ingestion queue does with a producer once it is full (the
/// admission-control knob of the serving subsystem).
enum class BackpressurePolicy {
  /// Block the producer until a consumer frees a slot (lossless; pushes the
  /// queueing delay back into the caller).
  kBlock,
  /// Fail the push immediately (load shedding; the caller sees the verdict
  /// and can retry, degrade, or count the drop).
  kReject,
  /// Evict the oldest queued element to admit the new one (freshness over
  /// completeness — stale queries are worth the least).
  kDropOldest,
};

/// Verdict of one push against the configured backpressure policy.
enum class QueuePushResult {
  kAccepted,
  kRejected,       // kReject policy, queue full
  kDroppedOldest,  // accepted, but the oldest element was evicted
  kClosed,         // queue closed — no further admissions
};

/// Bounded multi-producer/multi-consumer FIFO with pluggable backpressure —
/// the lock-based QueryQueue of the serving subsystem. One mutex plus two
/// condition variables: simple, fair enough, and correct under TSan; the
/// lock-free MpmcRingQueue below is the upgrade path for reject-policy
/// ingestion where producers must never block on a mutex.
///
/// Lifecycle: producers Push() until Close(); consumers Pop()/PopBatch()
/// drain remaining elements after Close() and then observe end-of-stream
/// (false). Admission counters are relaxed atomics readable concurrently.
template <typename T>
class BoundedQueue {
 public:
  BoundedQueue(size_t capacity, BackpressurePolicy policy)
      : capacity_(capacity), policy_(policy) {
    SSA_CHECK(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admits `value` per the backpressure policy. Thread-safe.
  QueuePushResult Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return QueuePushResult::kClosed;
    QueuePushResult result = QueuePushResult::kAccepted;
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case BackpressurePolicy::kBlock:
          not_full_.wait(lock,
                         [&] { return items_.size() < capacity_ || closed_; });
          if (closed_) return QueuePushResult::kClosed;
          break;
        case BackpressurePolicy::kReject:
          rejected_.fetch_add(1, std::memory_order_relaxed);
          return QueuePushResult::kRejected;
        case BackpressurePolicy::kDropOldest:
          items_.pop_front();
          dropped_oldest_.fetch_add(1, std::memory_order_relaxed);
          result = QueuePushResult::kDroppedOldest;
          break;
      }
    }
    items_.push_back(std::move(value));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    not_empty_.notify_one();
    return result;
  }

  /// Blocking pop. Returns false iff the queue is closed and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    popped_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop. Returns false when currently empty.
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    popped_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Micro-batch pop: blocks for the first element (indefinitely, like
  /// Pop), then keeps collecting until `max_batch` elements are held or
  /// `deadline` has elapsed *since the first element was obtained* — the
  /// size-or-deadline trigger of the micro-batching server. Appends to
  /// `*out` (not cleared). Returns false iff closed and drained; a true
  /// return delivers at least one element. Close() wakes the deadline wait
  /// early so shutdown never stalls a partially filled batch.
  bool PopBatch(std::vector<T>* out, size_t max_batch,
                std::chrono::nanoseconds deadline) {
    SSA_CHECK(max_batch >= 1);
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    const auto batch_deadline = std::chrono::steady_clock::now() + deadline;
    size_t taken = 0;
    for (;;) {
      while (!items_.empty() && taken < max_batch) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
      if (taken >= max_batch || closed_) break;
      if (not_empty_.wait_until(lock, batch_deadline, [&] {
            return !items_.empty() || closed_;
          })) {
        continue;  // more items (or closed) — loop to collect / exit
      }
      break;  // deadline expired with a partial batch
    }
    popped_.fetch_add(taken, std::memory_order_relaxed);
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Closes the queue: subsequent pushes fail with kClosed, blocked
  /// producers wake and fail, consumers drain then see end-of-stream.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return capacity_; }
  BackpressurePolicy policy() const { return policy_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // Admission counters (relaxed; safe to read concurrently).
  int64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  int64_t dropped_oldest() const {
    return dropped_oldest_.load(std::memory_order_relaxed);
  }
  int64_t popped() const { return popped_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  const BackpressurePolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> dropped_oldest_{0};
  std::atomic<int64_t> popped_{0};
};

/// Lock-free bounded MPMC ring (Vyukov's bounded queue): each cell carries a
/// sequence number producers and consumers claim with one CAS on the shared
/// head/tail counters; a full or empty ring fails the operation instead of
/// blocking, so the only backpressure policy it can express is kReject —
/// which is exactly the ingestion fast path (producers on the request path
/// must never sleep on a queue mutex). The serving layer pairs it with a
/// spin-then-yield consumer; everything else should prefer BoundedQueue.
///
/// Progress: TryPush/TryPop are lock-free (a stalled thread cannot block
/// others' unrelated operations) and linearizable per cell via the
/// acquire/release sequence handshake.
template <typename T>
class MpmcRingQueue {
 public:
  /// Capacity is rounded up to a power of two (>= 2).
  explicit MpmcRingQueue(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRingQueue(const MpmcRingQueue&) = delete;
  MpmcRingQueue& operator=(const MpmcRingQueue&) = delete;

  /// Attempts to enqueue; false when the ring is full.
  bool TryPush(T value) {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full: the cell still holds an unconsumed element
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Attempts to dequeue; false when the ring is empty.
  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return mask_ + 1; }

  /// Instantaneous (racy) element count — monitoring only.
  size_t SizeApprox() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace ssa

#endif  // SSA_UTIL_BOUNDED_QUEUE_H_
