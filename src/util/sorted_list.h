#ifndef SSA_UTIL_SORTED_LIST_H_
#define SSA_UTIL_SORTED_LIST_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/common.h"

namespace ssa {

/// An (id, key) list kept sorted by key descending (ties broken by id
/// ascending, for determinism). Backing store is a contiguous vector:
/// insert/erase are O(n) memmoves, which is fast in practice for the list
/// sizes the logical-update engine maintains (Section IV-B), and sorted
/// scans — what the Threshold Algorithm consumes — are cache-friendly.
///
/// Keys are stored values; callers that implement the paper's "logical
/// update" keep a separate adjustment variable and interpret the effective
/// key as `stored + adjustment` (the ordering is invariant under a shared
/// adjustment, which is the whole point of Section IV-B).
class SortedKeyList {
 public:
  struct Entry {
    double key;  // stored key (descending order)
    int32_t id;
  };

  /// True before `id` would order before `(key, id)` pairs of others.
  static bool Before(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id < b.id;
  }

  /// Inserts (id, key). The id must not already be present.
  void Insert(int32_t id, double key) {
    Entry e{key, id};
    auto it = std::lower_bound(entries_.begin(), entries_.end(), e, Before);
    entries_.insert(it, e);
  }

  /// Removes the entry for `id` whose stored key is `key`. The pair must be
  /// present; callers track stored keys exactly (they are integral cents
  /// adjusted by integral deltas, so equality is exact).
  void Erase(int32_t id, double key) {
    Entry e{key, id};
    auto it = std::lower_bound(entries_.begin(), entries_.end(), e, Before);
    SSA_CHECK_MSG(it != entries_.end() && it->id == id && it->key == key,
                  "SortedKeyList::Erase: entry not found");
    entries_.erase(it);
  }

  /// Bulk initialization: takes ownership of an already-sorted entry vector
  /// (checked). O(n), versus n * O(n) incremental inserts.
  void AssignSorted(std::vector<Entry> entries) {
    for (size_t i = 1; i < entries.size(); ++i) {
      SSA_CHECK_MSG(Before(entries[i - 1], entries[i]),
                    "AssignSorted: entries not sorted");
    }
    entries_ = std::move(entries);
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Entry with the largest key (first in descending order).
  const Entry& Top() const {
    SSA_CHECK(!entries_.empty());
    return entries_.front();
  }

  /// Entry with the smallest key.
  const Entry& Bottom() const {
    SSA_CHECK(!entries_.empty());
    return entries_.back();
  }

  /// i-th entry in descending key order.
  const Entry& At(size_t i) const {
    SSA_CHECK(i < entries_.size());
    return entries_[i];
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace ssa

#endif  // SSA_UTIL_SORTED_LIST_H_
