#ifndef SSA_UTIL_STATS_H_
#define SSA_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace ssa {

/// Online accumulator for scalar samples: count, mean, variance (Welford),
/// min/max, and percentiles (kept exactly; sample counts here are small —
/// per-auction timings). Used by benchmark harnesses and engine statistics.
class SummaryStats {
 public:
  /// Adds one sample.
  void Add(double x);

  size_t count() const { return samples_.size(); }
  double mean() const { return count() == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Exact percentile via nearest-rank on the sorted samples; p in [0,100].
  double Percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ssa

#endif  // SSA_UTIL_STATS_H_
