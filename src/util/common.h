#ifndef SSA_UTIL_COMMON_H_
#define SSA_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// Basic shared types for the sponsored-search-auction library.
namespace ssa {

/// Identifies an advertiser (0-based dense index into the current auction's
/// advertiser population).
using AdvertiserId = int32_t;

/// Identifies a slot on the search-result page. Slot 0 is the topmost,
/// most prominent slot. `kNoSlot` means the advertiser is unassigned.
using SlotIndex = int32_t;

inline constexpr SlotIndex kNoSlot = -1;

/// Monetary amounts, in cents (the paper quotes bids in cents).
using Money = double;

}  // namespace ssa

/// Invariant check that stays on in release builds. The library follows the
/// no-exceptions convention; violated invariants abort with a location.
#define SSA_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SSA_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SSA_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "SSA_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#endif  // SSA_UTIL_COMMON_H_
