#ifndef SSA_UTIL_STATUS_H_
#define SSA_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/common.h"

namespace ssa {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// Unrecoverable loss or corruption of persisted state (a settlement-log
  /// gap, a replay that diverges from its logged record).
  kDataLoss,
  /// Transiently unservable: no follower satisfies the requested read
  /// consistency within the wait budget. Retrying later may succeed.
  kUnavailable,
};

/// Lightweight error-or-success result, in the style of absl::Status.
/// The library avoids exceptions; fallible operations (parsing, LP solving,
/// language interpretation) return Status or StatusOr<T>.
class Status {
 public:
  /// Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "INVALID_ARGUMENT: bad formula".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// non-ok StatusOr aborts (library is exception-free).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    SSA_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SSA_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    SSA_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    SSA_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && {
    SSA_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(value_);
  }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace ssa

/// Early-returns the enclosing function with `expr`'s Status when it is not
/// OK. `expr` is evaluated exactly once. The durability subsystem's I/O is
/// written entirely in this style — no bool/exception mixes.
#define SSA_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::ssa::Status _ssa_status_ = (expr);          \
    if (!_ssa_status_.ok()) return _ssa_status_;  \
  } while (0)

/// Evaluates `expr` (a StatusOr<T>), early-returning its Status on error,
/// otherwise moving the value into `lhs` (which may be a declaration).
#define SSA_ASSIGN_OR_RETURN(lhs, expr) \
  SSA_ASSIGN_OR_RETURN_IMPL_(           \
      SSA_STATUS_CONCAT_(_ssa_statusor_, __LINE__), lhs, expr)

#define SSA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = *std::move(tmp)

#define SSA_STATUS_CONCAT_(a, b) SSA_STATUS_CONCAT_IMPL_(a, b)
#define SSA_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // SSA_UTIL_STATUS_H_
