#ifndef SSA_UTIL_THREAD_POOL_H_
#define SSA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ssa {

/// Fixed-size worker pool used by the parallel winner-determination paths
/// (Section III-E tree aggregation, Section III-F 2^k heavyweight subsets).
/// Tasks are arbitrary std::function<void()>; WaitIdle() provides the
/// per-phase barrier the tree network needs.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task for execution by any worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

  /// Convenience: runs fn(i) for i in [0, n) across the pool and waits.
  /// Implemented on top of ParallelForChunks, so the pool sees one task per
  /// chunk (≈4x threads), not one heap-allocated std::function per index.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  /// Partitions [0, n) into ~4x num_threads() contiguous ranges and runs
  /// fn(begin, end) once per range on the pool, then waits. The over-
  /// decomposition (4x) keeps workers load-balanced when range costs are
  /// uneven while submission stays O(threads), and contiguous ranges let
  /// dense kernels (revenue-matrix blocks, tree top-k leaves) stream
  /// cache-friendly rows.
  void ParallelForChunks(int n, const std::function<void(int, int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace ssa

#endif  // SSA_UTIL_THREAD_POOL_H_
