#ifndef SSA_UTIL_EPOCH_H_
#define SSA_UTIL_EPOCH_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.h"

namespace ssa {

/// The in-order commit half of a plan/settle pipeline: producers (planning
/// lanes) finish tickets in whatever order the scheduler gives them, while a
/// single consumer (the settler) drains tickets strictly in ticket order —
/// the "settlement barrier" of the serving executor's epoch pipeline, kept
/// generic because any stage that fans work out and must re-serialize its
/// results (log appends, replicated reads off the settlement log) needs
/// exactly this shape.
///
/// Protocol per epoch: the consumer calls Reset(count), producers call
/// MarkReady(ticket) exactly once per ticket in [0, count), and the consumer
/// calls AwaitReady(0), AwaitReady(1), ... — each call blocks until that
/// ticket's producer finished. MarkReady/AwaitReady synchronize (mutex), so
/// everything a producer wrote before MarkReady(t) is visible to the
/// consumer after AwaitReady(t) returns.
///
/// Thread-safety: MarkReady is safe from any thread; Reset and AwaitReady
/// belong to the single consumer and must not run concurrently with each
/// other or with MarkReady calls for a previous epoch (the consumer
/// guarantees that by awaiting every ticket before Reset).
class OrderedCommitBarrier {
 public:
  /// Opens an epoch of `count` tickets, all pending. Consumer only; every
  /// ticket of the previous epoch must have been awaited.
  void Reset(int64_t count) {
    SSA_CHECK(count >= 0);
    std::lock_guard<std::mutex> lock(mu_);
    ready_.assign(static_cast<size_t>(count), 0);
  }

  /// Marks `ticket` complete. Any thread; at most once per ticket.
  void MarkReady(int64_t ticket) {
    // The notify stays under the lock deliberately: the consumer may tear
    // the barrier down as soon as its last AwaitReady returns, and a
    // notify outside the lock could still be touching the condvar at that
    // point. Under the lock, notify happens-before the consumer's
    // wait-return, so destruction is safe.
    std::lock_guard<std::mutex> lock(mu_);
    SSA_CHECK(ticket >= 0 && ticket < static_cast<int64_t>(ready_.size()));
    ready_[static_cast<size_t>(ticket)] = 1;
    ready_cv_.notify_all();
  }

  /// Blocks until `ticket` is ready. Consumer only.
  void AwaitReady(int64_t ticket) {
    std::unique_lock<std::mutex> lock(mu_);
    SSA_CHECK(ticket >= 0 && ticket < static_cast<int64_t>(ready_.size()));
    ready_cv_.wait(lock,
                   [&] { return ready_[static_cast<size_t>(ticket)] != 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable ready_cv_;
  std::vector<char> ready_;  // guarded by mu_
};

/// A fixed set of worker threads with *stable lane indices*, draining one
/// shared FIFO of integer tickets: the execution half of the planning-lane
/// pipeline. Each worker runs body(lane, ticket) for the tickets it pops;
/// the stable lane index lets the caller give every worker its own scratch
/// arena (per-lane compiled-bids caches, revenue matrices, top-k heaps)
/// without any sharing between lanes.
///
/// Dispatch() synchronizes with the body invocation (queue mutex), so
/// everything the dispatcher wrote before Dispatch(t) is visible to the lane
/// running body(lane, t). Completion is the caller's business — pair with
/// OrderedCommitBarrier (the body's last act marks the ticket ready).
///
/// Lifecycle: construction starts the workers; the destructor completes
/// every dispatched ticket, then joins. Dispatch is safe from any thread,
/// though the serving executor uses a single dispatcher.
class LanePool {
 public:
  LanePool(int num_lanes, std::function<void(int lane, int64_t ticket)> body)
      : body_(std::move(body)) {
    SSA_CHECK(num_lanes >= 1);
    workers_.reserve(static_cast<size_t>(num_lanes));
    for (int lane = 0; lane < num_lanes; ++lane) {
      workers_.emplace_back([this, lane] { WorkerLoop(lane); });
    }
  }

  LanePool(const LanePool&) = delete;
  LanePool& operator=(const LanePool&) = delete;

  ~LanePool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutting_down_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Enqueues one ticket for any lane.
  void Dispatch(int64_t ticket) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      SSA_CHECK(!shutting_down_);
      tickets_.push_back(ticket);
    }
    work_cv_.notify_one();
  }

  int num_lanes() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop(int lane) {
    for (;;) {
      int64_t ticket;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [&] { return !tickets_.empty() || shutting_down_; });
        if (tickets_.empty()) return;  // shutting down and drained
        ticket = tickets_.front();
        tickets_.pop_front();
      }
      body_(lane, ticket);
    }
  }

  std::function<void(int lane, int64_t ticket)> body_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<int64_t> tickets_;  // guarded by mu_
  bool shutting_down_ = false;   // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace ssa

#endif  // SSA_UTIL_EPOCH_H_
