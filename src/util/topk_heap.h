#ifndef SSA_UTIL_TOPK_HEAP_H_
#define SSA_UTIL_TOPK_HEAP_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "util/common.h"

namespace ssa {

/// A set of size-bounded min-heaps over (weight, advertiser) pairs stored in
/// one flat buffer — the reusable scratch behind the per-slot top-k kernels
/// (Section III-E candidate selection and the tree-aggregation leaves).
/// Replaces one std::priority_queue allocation per slot per call with a
/// single buffer that Reset() recycles, so the per-auction hot path stops
/// churning the allocator.
///
/// Ordering is the strict (weight, id) pair order the selection kernels rely
/// on: deterministic and insertion-order independent, so the retained top-k
/// set per heap is identical to the previous priority_queue implementation.
/// Tie-break: among equal weights the *larger* advertiser id ranks higher
/// (is retained first), so ExtractDescending lists tied entries with ids
/// descending. Within one auction ids are unique, so the order is total and
/// the retained set is a pure function of the offered multiset.
class TopKHeapSet {
 public:
  struct Entry {
    double weight;
    AdvertiserId id;
  };

  /// Prepares `num_heaps` empty heaps of capacity `capacity` each, reusing
  /// the existing buffer when large enough. Capacity 0 is a valid degenerate
  /// top-0: every Offer is rejected (k = 0 keeps no candidates).
  void Reset(int num_heaps, int capacity) {
    SSA_CHECK(num_heaps >= 0 && capacity >= 0);
    num_heaps_ = num_heaps;
    capacity_ = capacity;
    sizes_.assign(num_heaps, 0);
    const size_t needed = static_cast<size_t>(num_heaps) * capacity;
    if (entries_.size() < needed) entries_.resize(needed);
  }

  int num_heaps() const { return num_heaps_; }
  int size(int heap) const { return sizes_[heap]; }
  /// Heap-ordered (not sorted) view of a heap's current entries.
  const Entry* entries(int heap) const {
    return entries_.data() + static_cast<size_t>(heap) * capacity_;
  }

  /// Inserts (weight, id) into `heap`; once the heap is full, replaces the
  /// minimum iff (weight, id) strictly beats it. Returns whether the entry
  /// was retained.
  bool Offer(int heap, double weight, AdvertiserId id) {
    if (capacity_ == 0) return false;  // top-0 retains nothing
    Entry* e = entries_.data() + static_cast<size_t>(heap) * capacity_;
    int& n = sizes_[heap];
    const Entry x{weight, id};
    if (n < capacity_) {
      int i = n++;
      while (i > 0) {  // sift up
        const int parent = (i - 1) / 2;
        if (!Less(x, e[parent])) break;
        e[i] = e[parent];
        i = parent;
      }
      e[i] = x;
      return true;
    }
    if (!Less(e[0], x)) return false;  // does not beat the current minimum
    int i = 0;  // replace the root, sift down
    for (;;) {
      int child = 2 * i + 1;
      if (child >= capacity_) break;
      if (child + 1 < capacity_ && Less(e[child + 1], e[child])) ++child;
      if (!Less(e[child], x)) break;
      e[i] = e[child];
      i = child;
    }
    e[i] = x;
    return true;
  }

  /// Copies `heap`'s entries into *out sorted descending by (weight, id).
  void ExtractDescending(
      int heap, std::vector<std::pair<double, AdvertiserId>>* out) const {
    const Entry* e = entries(heap);
    const int n = sizes_[heap];
    out->clear();
    out->reserve(n);
    for (int i = 0; i < n; ++i) out->emplace_back(e[i].weight, e[i].id);
    std::sort(out->rbegin(), out->rend());
  }

 private:
  static bool Less(const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.id < b.id;
  }

  int num_heaps_ = 0;
  int capacity_ = 0;
  std::vector<int> sizes_;
  std::vector<Entry> entries_;
};

}  // namespace ssa

#endif  // SSA_UTIL_TOPK_HEAP_H_
