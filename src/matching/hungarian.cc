#include "matching/hungarian.h"

#include <limits>
#include <numeric>

namespace ssa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shortest-augmenting-path Hungarian algorithm (Jonker-Volgenant / e-maxx
/// formulation), minimization. Rows are the k slots; columns are the
/// candidate advertisers plus, when `allow_unmatched` is true, k zero-cost
/// dummy columns so a slot can stay empty. Cost of (slot row, advertiser
/// col) is the negated weight. O(k^2 * (|candidates| + k)).
template <typename CostFn>
void SolveJv(int num_rows, int num_cols, const CostFn& cost,
             std::vector<int>* col_to_row) {
  const int k = num_rows;
  const int nc = num_cols;
  // 1-based arrays per the classical presentation; index 0 is the virtual
  // source row/column.
  std::vector<double> u(k + 1, 0.0), v(nc + 1, 0.0);
  std::vector<int> p(nc + 1, 0), way(nc + 1, 0);
  std::vector<double> minv(nc + 1);
  std::vector<char> used(nc + 1);

  for (int i = 1; i <= k; ++i) {
    p[0] = i;
    int j0 = 0;
    std::fill(minv.begin(), minv.end(), kInf);
    std::fill(used.begin(), used.end(), 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      int j1 = -1;
      double delta = kInf;
      for (int j = 1; j <= nc; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      SSA_CHECK_MSG(j1 != -1, "Hungarian: no augmenting column");
      for (int j = 0; j <= nc; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  col_to_row->assign(p.begin(), p.end());
}

/// Shared driver: candidate columns first, then (optionally) k dummy
/// zero-cost columns that let a slot stay empty.
Allocation Solve(const std::vector<double>& weights, int n, int k,
                 const std::vector<AdvertiserId>& candidates,
                 bool allow_unmatched) {
  SSA_CHECK(weights.size() == static_cast<size_t>(n) * k);
  const int m = static_cast<int>(candidates.size());
  SSA_CHECK_MSG(allow_unmatched || m >= k,
                "perfect matching needs at least k candidates");
  Allocation result = Allocation::Empty(n, k);
  if (k == 0) return result;

  const int num_cols = m + (allow_unmatched ? k : 0);
  auto cost = [&](int slot, int col) -> double {
    if (col >= m) return 0.0;  // dummy: slot left empty, weight 0
    return -weights[static_cast<size_t>(candidates[col]) * k + slot];
  };

  std::vector<int> col_to_row;
  SolveJv(k, num_cols, cost, &col_to_row);

  for (int col = 1; col <= m; ++col) {
    const int row = col_to_row[col];
    if (row == 0) continue;
    const AdvertiserId adv = candidates[col - 1];
    const SlotIndex slot = row - 1;
    result.slot_to_advertiser[slot] = adv;
    result.advertiser_to_slot[adv] = slot;
    result.total_weight += weights[static_cast<size_t>(adv) * k + slot];
  }
  return result;
}

}  // namespace

Allocation MaxWeightMatchingDense(const std::vector<double>& weights, int n,
                                  int k) {
  std::vector<AdvertiserId> all(n);
  std::iota(all.begin(), all.end(), 0);
  return Solve(weights, n, k, all, /*allow_unmatched=*/true);
}

Allocation MaxWeightMatchingSubset(
    const std::vector<double>& weights, int n, int k,
    const std::vector<AdvertiserId>& candidates) {
  return Solve(weights, n, k, candidates, /*allow_unmatched=*/true);
}

Allocation MaxWeightPerfectMatchingSubset(
    const std::vector<double>& weights, int n, int k,
    const std::vector<AdvertiserId>& candidates) {
  return Solve(weights, n, k, candidates, /*allow_unmatched=*/false);
}

}  // namespace ssa
