#include "matching/munkres.h"

#include <algorithm>
#include <limits>

namespace ssa {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// Advertiser-major classical Hungarian (Kuhn-Munkres with the shortest-
// augmenting-path formulation): one phase per *advertiser*, each phase
// relaxing over all n + k columns (k shared slot columns plus one private
// zero-cost dummy column per advertiser, so "no slot" is representable).
// Cost is minimized over the negated weights; the potentials (u, v) are the
// classical duals. Every advertiser is processed and every phase touches
// the full column set — the straightforward O(nk(n+k))-flavored usage the
// paper benchmarks as method "H", in contrast to the slot-major kernel in
// matching/hungarian.h that RH runs on the reduced graph.
Allocation MunkresMatching(const std::vector<double>& weights, int n, int k) {
  SSA_CHECK(weights.size() == static_cast<size_t>(n) * k);
  Allocation result = Allocation::Empty(n, k);
  if (k == 0 || n == 0) return result;

  const int num_cols = k + n;  // slot columns 0..k-1, dummy of row i = k + i
  auto cost = [&](int row, int col) -> double {
    if (col < k) return -weights[static_cast<size_t>(row) * k + col];
    return col - k == row ? 0.0 : kInf;  // only your own dummy
  };

  // 1-based arrays (index 0 = virtual source), e-maxx formulation.
  std::vector<double> u(n + 1, 0.0), v(num_cols + 1, 0.0);
  std::vector<int> p(num_cols + 1, 0), way(num_cols + 1, 0);
  std::vector<double> minv(num_cols + 1);
  std::vector<char> used(num_cols + 1);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::fill(minv.begin(), minv.end(), kInf);
    std::fill(used.begin(), used.end(), 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      int j1 = -1;
      double delta = kInf;
      for (int j = 1; j <= num_cols; ++j) {
        if (used[j]) continue;
        const double c = cost(i0 - 1, j - 1);
        if (c < kInf) {
          const double cur = c - u[i0] - v[j];
          if (cur < minv[j]) {
            minv[j] = cur;
            way[j] = j0;
          }
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      SSA_CHECK_MSG(j1 != -1 && delta < kInf, "Munkres: no augmenting column");
      for (int j = 0; j <= num_cols; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  for (int col = 1; col <= k; ++col) {
    const int row = p[col];
    if (row == 0) continue;
    const AdvertiserId adv = row - 1;
    const SlotIndex slot = col - 1;
    result.slot_to_advertiser[slot] = adv;
    result.advertiser_to_slot[adv] = slot;
    result.total_weight += weights[static_cast<size_t>(adv) * k + slot];
  }
  return result;
}

}  // namespace ssa
