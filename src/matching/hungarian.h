#ifndef SSA_MATCHING_HUNGARIAN_H_
#define SSA_MATCHING_HUNGARIAN_H_

#include <vector>

#include "matching/allocation.h"
#include "util/common.h"

namespace ssa {

/// Maximum-weight bipartite matching between k slots and n advertisers via
/// the shortest-augmenting-path (Jonker-Volgenant) formulation of the
/// Hungarian algorithm, O(k^2 * n). Negative-weight edges are never forced:
/// each slot may instead match a zero-weight dummy, i.e. stay empty. This is
/// the kernel RH runs on the reduced bipartite graph (Section III-E), where
/// n <= k^2 and the cost is the paper's O(k^5) term (O(k^4) for this
/// variant).
///
/// `weights` is advertiser-major, weights[i * k + j] = w(advertiser i,
/// slot j).
Allocation MaxWeightMatchingDense(const std::vector<double>& weights, int n,
                                  int k);

/// Same, restricted to the advertisers in `candidates` (the reduced graph of
/// Figure 11). Indices in the result refer to the original advertiser ids.
Allocation MaxWeightMatchingSubset(const std::vector<double>& weights, int n,
                                   int k,
                                   const std::vector<AdvertiserId>& candidates);

/// Forced perfect matching of all k slots (used by the heavyweight solver,
/// where a heavy slot *must* receive a heavyweight advertiser even at
/// negative marginal weight). Requires candidates.size() >= k. Returns the
/// maximum-weight perfect-on-slots matching.
Allocation MaxWeightPerfectMatchingSubset(
    const std::vector<double>& weights, int n, int k,
    const std::vector<AdvertiserId>& candidates);

}  // namespace ssa

#endif  // SSA_MATCHING_HUNGARIAN_H_
