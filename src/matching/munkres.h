#ifndef SSA_MATCHING_MUNKRES_H_
#define SSA_MATCHING_MUNKRES_H_

#include <vector>

#include "matching/allocation.h"
#include "util/common.h"

namespace ssa {

/// Maximum-weight matching via the *classical* cover-based Kuhn-Munkres
/// algorithm applied the straightforward way the paper benchmarks as method
/// "H" (Section III-D): advertisers are the left vertex set (rows), slots
/// the right, and every advertiser must be assigned — to a slot or to a
/// private zero-weight dummy column ("no slot"). Termination requires one
/// starred zero per *advertiser*, so the cover/adjust machinery runs O(n)
/// times over an n x (k+1) matrix: the O(nk(n+k)) cost the paper cites,
/// super-linear in n. The reduced method RH exists precisely to avoid this;
/// the fast slot-major JV kernel lives in matching/hungarian.h.
///
/// `weights` is advertiser-major, weights[i * k + j]. Returns an optimal
/// allocation (slots may stay empty; negative-weight edges are never
/// chosen).
Allocation MunkresMatching(const std::vector<double>& weights, int n, int k);

}  // namespace ssa

#endif  // SSA_MATCHING_MUNKRES_H_
