#ifndef SSA_MATCHING_BRUTE_FORCE_H_
#define SSA_MATCHING_BRUTE_FORCE_H_

#include <vector>

#include "matching/allocation.h"
#include "util/common.h"

namespace ssa {

/// Exhaustive search over all (n+1)^k partial assignments (each slot takes
/// one unused advertiser or stays empty). Exponential — test oracle only;
/// asserts n and k are small enough to enumerate.
Allocation BruteForceMatching(const std::vector<double>& weights, int n, int k);

}  // namespace ssa

#endif  // SSA_MATCHING_BRUTE_FORCE_H_
