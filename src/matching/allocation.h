#ifndef SSA_MATCHING_ALLOCATION_H_
#define SSA_MATCHING_ALLOCATION_H_

#include <vector>

#include "util/common.h"

namespace ssa {

/// A slot assignment: at most one slot per advertiser (the paper's
/// monopolization rule) and at most one advertiser per slot. Slots may stay
/// empty when every candidate's marginal weight is negative.
struct Allocation {
  /// slot_to_advertiser[j] = advertiser in slot j, or -1 for an empty slot.
  std::vector<AdvertiserId> slot_to_advertiser;
  /// advertiser_to_slot[i] = slot of advertiser i, or kNoSlot.
  std::vector<SlotIndex> advertiser_to_slot;
  /// Sum of matching weights of the chosen edges.
  double total_weight = 0.0;

  /// An empty allocation over n advertisers and k slots.
  static Allocation Empty(int num_advertisers, int num_slots) {
    Allocation a;
    a.slot_to_advertiser.assign(num_slots, -1);
    a.advertiser_to_slot.assign(num_advertisers, kNoSlot);
    return a;
  }

  int num_slots() const { return static_cast<int>(slot_to_advertiser.size()); }
  int num_advertisers() const {
    return static_cast<int>(advertiser_to_slot.size());
  }

  /// Number of slots actually filled.
  int NumAssigned() const {
    int c = 0;
    for (AdvertiserId a : slot_to_advertiser) c += (a >= 0);
    return c;
  }
};

}  // namespace ssa

#endif  // SSA_MATCHING_ALLOCATION_H_
