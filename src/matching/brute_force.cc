#include "matching/brute_force.h"

#include <cmath>

namespace ssa {
namespace {

void Search(const std::vector<double>& weights, int n, int k, int slot,
            std::vector<AdvertiserId>* current, std::vector<char>* used,
            double weight_so_far, Allocation* best) {
  if (slot == k) {
    if (weight_so_far > best->total_weight) {
      best->total_weight = weight_so_far;
      best->slot_to_advertiser = *current;
    }
    return;
  }
  // Leave this slot empty.
  (*current)[slot] = -1;
  Search(weights, n, k, slot + 1, current, used, weight_so_far, best);
  // Or fill it with any unused advertiser.
  for (AdvertiserId i = 0; i < n; ++i) {
    if ((*used)[i]) continue;
    (*used)[i] = 1;
    (*current)[slot] = i;
    Search(weights, n, k, slot + 1, current, used,
           weight_so_far + weights[static_cast<size_t>(i) * k + slot], best);
    (*used)[i] = 0;
  }
  (*current)[slot] = -1;
}

}  // namespace

Allocation BruteForceMatching(const std::vector<double>& weights, int n,
                              int k) {
  SSA_CHECK(weights.size() == static_cast<size_t>(n) * k);
  SSA_CHECK_MSG(std::pow(n + 1.0, k) < 5e7,
                "brute force instance too large; oracle use only");
  Allocation best = Allocation::Empty(n, k);
  best.total_weight = 0.0;  // empty assignment is always feasible
  std::vector<AdvertiserId> current(k, -1);
  std::vector<char> used(n, 0);
  Search(weights, n, k, 0, &current, &used, 0.0, &best);
  best.advertiser_to_slot.assign(n, kNoSlot);
  for (int j = 0; j < k; ++j) {
    if (best.slot_to_advertiser[j] >= 0) {
      best.advertiser_to_slot[best.slot_to_advertiser[j]] = j;
    }
  }
  return best;
}

}  // namespace ssa
