# Empty dependencies file for example_expressive_program.
# This may be replaced when dependencies are built.
