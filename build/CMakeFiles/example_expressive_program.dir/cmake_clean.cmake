file(REMOVE_RECURSE
  "CMakeFiles/example_expressive_program.dir/examples/expressive_program.cc.o"
  "CMakeFiles/example_expressive_program.dir/examples/expressive_program.cc.o.d"
  "example_expressive_program"
  "example_expressive_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_expressive_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
