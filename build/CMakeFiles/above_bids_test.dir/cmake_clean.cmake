file(REMOVE_RECURSE
  "CMakeFiles/above_bids_test.dir/tests/above_bids_test.cc.o"
  "CMakeFiles/above_bids_test.dir/tests/above_bids_test.cc.o.d"
  "above_bids_test"
  "above_bids_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/above_bids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
