# Empty dependencies file for above_bids_test.
# This may be replaced when dependencies are built.
