file(REMOVE_RECURSE
  "CMakeFiles/winner_determination_test.dir/tests/winner_determination_test.cc.o"
  "CMakeFiles/winner_determination_test.dir/tests/winner_determination_test.cc.o.d"
  "winner_determination_test"
  "winner_determination_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winner_determination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
