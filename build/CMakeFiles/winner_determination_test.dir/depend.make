# Empty dependencies file for winner_determination_test.
# This may be replaced when dependencies are built.
