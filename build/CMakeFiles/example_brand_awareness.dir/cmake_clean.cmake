file(REMOVE_RECURSE
  "CMakeFiles/example_brand_awareness.dir/examples/brand_awareness.cc.o"
  "CMakeFiles/example_brand_awareness.dir/examples/brand_awareness.cc.o.d"
  "example_brand_awareness"
  "example_brand_awareness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_brand_awareness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
