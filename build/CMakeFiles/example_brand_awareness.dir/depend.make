# Empty dependencies file for example_brand_awareness.
# This may be replaced when dependencies are built.
