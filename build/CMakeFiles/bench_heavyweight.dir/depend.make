# Empty dependencies file for bench_heavyweight.
# This may be replaced when dependencies are built.
