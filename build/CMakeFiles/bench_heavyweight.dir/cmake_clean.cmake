file(REMOVE_RECURSE
  "CMakeFiles/bench_heavyweight.dir/bench/bench_heavyweight.cc.o"
  "CMakeFiles/bench_heavyweight.dir/bench/bench_heavyweight.cc.o.d"
  "bench_heavyweight"
  "bench_heavyweight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heavyweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
