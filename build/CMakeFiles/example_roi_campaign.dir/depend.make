# Empty dependencies file for example_roi_campaign.
# This may be replaced when dependencies are built.
