file(REMOVE_RECURSE
  "CMakeFiles/example_roi_campaign.dir/examples/roi_campaign.cc.o"
  "CMakeFiles/example_roi_campaign.dir/examples/roi_campaign.cc.o.d"
  "example_roi_campaign"
  "example_roi_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_roi_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
