file(REMOVE_RECURSE
  "CMakeFiles/roi_strategy_test.dir/tests/roi_strategy_test.cc.o"
  "CMakeFiles/roi_strategy_test.dir/tests/roi_strategy_test.cc.o.d"
  "roi_strategy_test"
  "roi_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roi_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
