# Empty dependencies file for roi_strategy_test.
# This may be replaced when dependencies are built.
