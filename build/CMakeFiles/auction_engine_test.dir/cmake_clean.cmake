file(REMOVE_RECURSE
  "CMakeFiles/auction_engine_test.dir/tests/auction_engine_test.cc.o"
  "CMakeFiles/auction_engine_test.dir/tests/auction_engine_test.cc.o.d"
  "auction_engine_test"
  "auction_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
