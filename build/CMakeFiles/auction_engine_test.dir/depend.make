# Empty dependencies file for auction_engine_test.
# This may be replaced when dependencies are built.
