# Empty dependencies file for bench_separable.
# This may be replaced when dependencies are built.
