file(REMOVE_RECURSE
  "CMakeFiles/bench_separable.dir/bench/bench_separable.cc.o"
  "CMakeFiles/bench_separable.dir/bench/bench_separable.cc.o.d"
  "bench_separable"
  "bench_separable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
