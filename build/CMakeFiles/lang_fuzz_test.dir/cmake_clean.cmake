file(REMOVE_RECURSE
  "CMakeFiles/lang_fuzz_test.dir/tests/lang_fuzz_test.cc.o"
  "CMakeFiles/lang_fuzz_test.dir/tests/lang_fuzz_test.cc.o.d"
  "lang_fuzz_test"
  "lang_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
