# Empty dependencies file for click_model_test.
# This may be replaced when dependencies are built.
