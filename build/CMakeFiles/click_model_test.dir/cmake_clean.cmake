file(REMOVE_RECURSE
  "CMakeFiles/click_model_test.dir/tests/click_model_test.cc.o"
  "CMakeFiles/click_model_test.dir/tests/click_model_test.cc.o.d"
  "click_model_test"
  "click_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/click_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
