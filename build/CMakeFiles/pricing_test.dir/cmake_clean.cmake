file(REMOVE_RECURSE
  "CMakeFiles/pricing_test.dir/tests/pricing_test.cc.o"
  "CMakeFiles/pricing_test.dir/tests/pricing_test.cc.o.d"
  "pricing_test"
  "pricing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
