# Empty dependencies file for lang_interpreter_test.
# This may be replaced when dependencies are built.
