file(REMOVE_RECURSE
  "CMakeFiles/lang_interpreter_test.dir/tests/lang_interpreter_test.cc.o"
  "CMakeFiles/lang_interpreter_test.dir/tests/lang_interpreter_test.cc.o.d"
  "lang_interpreter_test"
  "lang_interpreter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
