# Empty dependencies file for db_table_test.
# This may be replaced when dependencies are built.
