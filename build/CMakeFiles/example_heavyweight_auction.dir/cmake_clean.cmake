file(REMOVE_RECURSE
  "CMakeFiles/example_heavyweight_auction.dir/examples/heavyweight_auction.cc.o"
  "CMakeFiles/example_heavyweight_auction.dir/examples/heavyweight_auction.cc.o.d"
  "example_heavyweight_auction"
  "example_heavyweight_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heavyweight_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
