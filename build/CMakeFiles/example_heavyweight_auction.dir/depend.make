# Empty dependencies file for example_heavyweight_auction.
# This may be replaced when dependencies are built.
