# Empty dependencies file for bids_table_test.
# This may be replaced when dependencies are built.
