file(REMOVE_RECURSE
  "CMakeFiles/bids_table_test.dir/tests/bids_table_test.cc.o"
  "CMakeFiles/bids_table_test.dir/tests/bids_table_test.cc.o.d"
  "bids_table_test"
  "bids_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bids_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
