file(REMOVE_RECURSE
  "CMakeFiles/expected_revenue_test.dir/tests/expected_revenue_test.cc.o"
  "CMakeFiles/expected_revenue_test.dir/tests/expected_revenue_test.cc.o.d"
  "expected_revenue_test"
  "expected_revenue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expected_revenue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
