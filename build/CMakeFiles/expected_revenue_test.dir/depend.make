# Empty dependencies file for expected_revenue_test.
# This may be replaced when dependencies are built.
