# Empty dependencies file for threshold_algorithm_test.
# This may be replaced when dependencies are built.
