file(REMOVE_RECURSE
  "CMakeFiles/threshold_algorithm_test.dir/tests/threshold_algorithm_test.cc.o"
  "CMakeFiles/threshold_algorithm_test.dir/tests/threshold_algorithm_test.cc.o.d"
  "threshold_algorithm_test"
  "threshold_algorithm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
