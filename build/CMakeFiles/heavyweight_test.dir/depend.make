# Empty dependencies file for heavyweight_test.
# This may be replaced when dependencies are built.
