file(REMOVE_RECURSE
  "CMakeFiles/heavyweight_test.dir/tests/heavyweight_test.cc.o"
  "CMakeFiles/heavyweight_test.dir/tests/heavyweight_test.cc.o.d"
  "heavyweight_test"
  "heavyweight_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavyweight_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
