# Empty dependencies file for position_strategies_test.
# This may be replaced when dependencies are built.
