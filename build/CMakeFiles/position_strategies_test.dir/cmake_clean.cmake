file(REMOVE_RECURSE
  "CMakeFiles/position_strategies_test.dir/tests/position_strategies_test.cc.o"
  "CMakeFiles/position_strategies_test.dir/tests/position_strategies_test.cc.o.d"
  "position_strategies_test"
  "position_strategies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/position_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
