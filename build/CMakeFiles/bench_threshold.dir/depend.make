# Empty dependencies file for bench_threshold.
# This may be replaced when dependencies are built.
