file(REMOVE_RECURSE
  "CMakeFiles/bench_threshold.dir/bench/bench_threshold.cc.o"
  "CMakeFiles/bench_threshold.dir/bench/bench_threshold.cc.o.d"
  "bench_threshold"
  "bench_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
