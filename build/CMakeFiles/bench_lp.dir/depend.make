# Empty dependencies file for bench_lp.
# This may be replaced when dependencies are built.
