file(REMOVE_RECURSE
  "CMakeFiles/bench_lp.dir/bench/bench_lp.cc.o"
  "CMakeFiles/bench_lp.dir/bench/bench_lp.cc.o.d"
  "bench_lp"
  "bench_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
