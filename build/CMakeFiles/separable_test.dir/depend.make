# Empty dependencies file for separable_test.
# This may be replaced when dependencies are built.
