file(REMOVE_RECURSE
  "CMakeFiles/separable_test.dir/tests/separable_test.cc.o"
  "CMakeFiles/separable_test.dir/tests/separable_test.cc.o.d"
  "separable_test"
  "separable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/separable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
