# Empty dependencies file for compiled_bids_test.
# This may be replaced when dependencies are built.
