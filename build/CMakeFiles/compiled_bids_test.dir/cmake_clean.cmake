file(REMOVE_RECURSE
  "CMakeFiles/compiled_bids_test.dir/tests/compiled_bids_test.cc.o"
  "CMakeFiles/compiled_bids_test.dir/tests/compiled_bids_test.cc.o.d"
  "compiled_bids_test"
  "compiled_bids_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_bids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
