file(REMOVE_RECURSE
  "CMakeFiles/logical_roi_test.dir/tests/logical_roi_test.cc.o"
  "CMakeFiles/logical_roi_test.dir/tests/logical_roi_test.cc.o.d"
  "logical_roi_test"
  "logical_roi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_roi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
