# Empty dependencies file for logical_roi_test.
# This may be replaced when dependencies are built.
