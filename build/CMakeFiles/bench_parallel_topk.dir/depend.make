# Empty dependencies file for bench_parallel_topk.
# This may be replaced when dependencies are built.
