file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_topk.dir/bench/bench_parallel_topk.cc.o"
  "CMakeFiles/bench_parallel_topk.dir/bench/bench_parallel_topk.cc.o.d"
  "bench_parallel_topk"
  "bench_parallel_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
