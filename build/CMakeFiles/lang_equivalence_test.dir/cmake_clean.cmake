file(REMOVE_RECURSE
  "CMakeFiles/lang_equivalence_test.dir/tests/lang_equivalence_test.cc.o"
  "CMakeFiles/lang_equivalence_test.dir/tests/lang_equivalence_test.cc.o.d"
  "lang_equivalence_test"
  "lang_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
