# Empty dependencies file for lang_equivalence_test.
# This may be replaced when dependencies are built.
