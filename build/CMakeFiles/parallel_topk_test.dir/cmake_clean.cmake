file(REMOVE_RECURSE
  "CMakeFiles/parallel_topk_test.dir/tests/parallel_topk_test.cc.o"
  "CMakeFiles/parallel_topk_test.dir/tests/parallel_topk_test.cc.o.d"
  "parallel_topk_test"
  "parallel_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
