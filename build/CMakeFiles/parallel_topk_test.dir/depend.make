# Empty dependencies file for parallel_topk_test.
# This may be replaced when dependencies are built.
