# Empty dependencies file for daypart_strategy_test.
# This may be replaced when dependencies are built.
