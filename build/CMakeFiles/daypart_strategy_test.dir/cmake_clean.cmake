file(REMOVE_RECURSE
  "CMakeFiles/daypart_strategy_test.dir/tests/daypart_strategy_test.cc.o"
  "CMakeFiles/daypart_strategy_test.dir/tests/daypart_strategy_test.cc.o.d"
  "daypart_strategy_test"
  "daypart_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daypart_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
