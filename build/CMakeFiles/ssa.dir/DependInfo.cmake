
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auction/auction_engine.cc" "CMakeFiles/ssa.dir/src/auction/auction_engine.cc.o" "gcc" "CMakeFiles/ssa.dir/src/auction/auction_engine.cc.o.d"
  "/root/repo/src/auction/metrics.cc" "CMakeFiles/ssa.dir/src/auction/metrics.cc.o" "gcc" "CMakeFiles/ssa.dir/src/auction/metrics.cc.o.d"
  "/root/repo/src/auction/pricing.cc" "CMakeFiles/ssa.dir/src/auction/pricing.cc.o" "gcc" "CMakeFiles/ssa.dir/src/auction/pricing.cc.o.d"
  "/root/repo/src/auction/workload.cc" "CMakeFiles/ssa.dir/src/auction/workload.cc.o" "gcc" "CMakeFiles/ssa.dir/src/auction/workload.cc.o.d"
  "/root/repo/src/core/above_bids.cc" "CMakeFiles/ssa.dir/src/core/above_bids.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/above_bids.cc.o.d"
  "/root/repo/src/core/bids_table.cc" "CMakeFiles/ssa.dir/src/core/bids_table.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/bids_table.cc.o.d"
  "/root/repo/src/core/click_model.cc" "CMakeFiles/ssa.dir/src/core/click_model.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/click_model.cc.o.d"
  "/root/repo/src/core/compiled_bids.cc" "CMakeFiles/ssa.dir/src/core/compiled_bids.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/compiled_bids.cc.o.d"
  "/root/repo/src/core/expected_revenue.cc" "CMakeFiles/ssa.dir/src/core/expected_revenue.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/expected_revenue.cc.o.d"
  "/root/repo/src/core/formula.cc" "CMakeFiles/ssa.dir/src/core/formula.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/formula.cc.o.d"
  "/root/repo/src/core/formula_parser.cc" "CMakeFiles/ssa.dir/src/core/formula_parser.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/formula_parser.cc.o.d"
  "/root/repo/src/core/heavyweight.cc" "CMakeFiles/ssa.dir/src/core/heavyweight.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/heavyweight.cc.o.d"
  "/root/repo/src/core/parallel_topk.cc" "CMakeFiles/ssa.dir/src/core/parallel_topk.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/parallel_topk.cc.o.d"
  "/root/repo/src/core/separable.cc" "CMakeFiles/ssa.dir/src/core/separable.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/separable.cc.o.d"
  "/root/repo/src/core/winner_determination.cc" "CMakeFiles/ssa.dir/src/core/winner_determination.cc.o" "gcc" "CMakeFiles/ssa.dir/src/core/winner_determination.cc.o.d"
  "/root/repo/src/db/table.cc" "CMakeFiles/ssa.dir/src/db/table.cc.o" "gcc" "CMakeFiles/ssa.dir/src/db/table.cc.o.d"
  "/root/repo/src/db/value.cc" "CMakeFiles/ssa.dir/src/db/value.cc.o" "gcc" "CMakeFiles/ssa.dir/src/db/value.cc.o.d"
  "/root/repo/src/lang/interpreter.cc" "CMakeFiles/ssa.dir/src/lang/interpreter.cc.o" "gcc" "CMakeFiles/ssa.dir/src/lang/interpreter.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "CMakeFiles/ssa.dir/src/lang/lexer.cc.o" "gcc" "CMakeFiles/ssa.dir/src/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "CMakeFiles/ssa.dir/src/lang/parser.cc.o" "gcc" "CMakeFiles/ssa.dir/src/lang/parser.cc.o.d"
  "/root/repo/src/lp/assignment_lp.cc" "CMakeFiles/ssa.dir/src/lp/assignment_lp.cc.o" "gcc" "CMakeFiles/ssa.dir/src/lp/assignment_lp.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "CMakeFiles/ssa.dir/src/lp/simplex.cc.o" "gcc" "CMakeFiles/ssa.dir/src/lp/simplex.cc.o.d"
  "/root/repo/src/matching/brute_force.cc" "CMakeFiles/ssa.dir/src/matching/brute_force.cc.o" "gcc" "CMakeFiles/ssa.dir/src/matching/brute_force.cc.o.d"
  "/root/repo/src/matching/hungarian.cc" "CMakeFiles/ssa.dir/src/matching/hungarian.cc.o" "gcc" "CMakeFiles/ssa.dir/src/matching/hungarian.cc.o.d"
  "/root/repo/src/matching/munkres.cc" "CMakeFiles/ssa.dir/src/matching/munkres.cc.o" "gcc" "CMakeFiles/ssa.dir/src/matching/munkres.cc.o.d"
  "/root/repo/src/strategy/logical_roi.cc" "CMakeFiles/ssa.dir/src/strategy/logical_roi.cc.o" "gcc" "CMakeFiles/ssa.dir/src/strategy/logical_roi.cc.o.d"
  "/root/repo/src/strategy/position_strategies.cc" "CMakeFiles/ssa.dir/src/strategy/position_strategies.cc.o" "gcc" "CMakeFiles/ssa.dir/src/strategy/position_strategies.cc.o.d"
  "/root/repo/src/strategy/program_strategy.cc" "CMakeFiles/ssa.dir/src/strategy/program_strategy.cc.o" "gcc" "CMakeFiles/ssa.dir/src/strategy/program_strategy.cc.o.d"
  "/root/repo/src/strategy/roi_strategy.cc" "CMakeFiles/ssa.dir/src/strategy/roi_strategy.cc.o" "gcc" "CMakeFiles/ssa.dir/src/strategy/roi_strategy.cc.o.d"
  "/root/repo/src/strategy/threshold_algorithm.cc" "CMakeFiles/ssa.dir/src/strategy/threshold_algorithm.cc.o" "gcc" "CMakeFiles/ssa.dir/src/strategy/threshold_algorithm.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/ssa.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/ssa.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/ssa.dir/src/util/status.cc.o" "gcc" "CMakeFiles/ssa.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/ssa.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/ssa.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
