file(REMOVE_RECURSE
  "libssa.a"
)
