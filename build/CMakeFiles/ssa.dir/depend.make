# Empty dependencies file for ssa.
# This may be replaced when dependencies are built.
