file(REMOVE_RECURSE
  "CMakeFiles/bench_program_eval.dir/bench/bench_program_eval.cc.o"
  "CMakeFiles/bench_program_eval.dir/bench/bench_program_eval.cc.o.d"
  "bench_program_eval"
  "bench_program_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_program_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
