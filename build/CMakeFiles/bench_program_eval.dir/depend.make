# Empty dependencies file for bench_program_eval.
# This may be replaced when dependencies are built.
