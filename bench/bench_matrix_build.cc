// Ablation H: expected-revenue matrix construction — the Theorem 2 table
// that every auction builds before winner determination. Compares:
//
//   * Baseline:  tree-walking BuildRevenueMatrixBaseline (recursive
//                Formula::Evaluate per (row, slot, outcome) — the seed
//                implementation),
//   * Compiled:  BuildRevenueMatrix (compile to flat truth tables, then
//                stream; compile cost included),
//   * Cached:    BuildRevenueMatrixCompiled over pre-compiled rows (the
//                engine's steady state: fingerprint cache hit, zero compile
//                cost),
//   * Parallel:  Cached + ThreadPool over advertiser blocks.
//
// The acceptance point of the compilation PR is n=5000, k=8; see
// bench/README.md for recorded numbers.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/compiled_bids.h"
#include "core/expected_revenue.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ssa {
namespace {

/// Representative multi-feature bid mix: position bids (Slot disjunctions),
/// click bids, purchase bids and guarded combinations — heavier than the
/// Section V Click-only tables so the formula walk cost is visible.
Formula RandomBidFormula(Rng& rng, int k) {
  switch (rng.NextBounded(5)) {
    case 0:
      return Formula::Click();
    case 1: {
      std::vector<SlotIndex> slots;
      const int count = 1 + static_cast<int>(rng.NextBounded(3));
      for (int s = 0; s < count; ++s) {
        slots.push_back(static_cast<SlotIndex>(rng.NextBounded(k)));
      }
      return Formula::AnySlot(slots);
    }
    case 2:
      return Formula::Click() &&
             Formula::Slot(static_cast<SlotIndex>(rng.NextBounded(k)));
    case 3:
      return Formula::Purchase() ||
             (Formula::Click() &&
              Formula::Slot(static_cast<SlotIndex>(rng.NextBounded(k))));
    default:
      return !Formula::Slot(static_cast<SlotIndex>(rng.NextBounded(k)));
  }
}

std::vector<BidsTable> MakeBids(int n, int k, Rng& rng) {
  std::vector<BidsTable> bids(n);
  for (int i = 0; i < n; ++i) {
    const int rows = 1 + static_cast<int>(rng.NextBounded(3));
    for (int r = 0; r < rows; ++r) {
      bids[i].AddBid(RandomBidFormula(rng, k),
                     static_cast<Money>(rng.UniformInt(1, 50)));
    }
  }
  return bids;
}

MatrixClickModel MakeModel(int n, int k, Rng& rng) {
  std::vector<double> click(static_cast<size_t>(n) * k);
  for (auto& p : click) p = rng.Uniform(0.1, 0.9);
  return MatrixClickModel(n, k, click);
}

struct Instance {
  std::vector<BidsTable> bids;
  std::unique_ptr<MatrixClickModel> model;
  std::vector<CompiledBids> compiled;
  std::vector<const CompiledBids*> view;
};

Instance MakeInstance(int n, int k) {
  Rng rng(12345);
  Instance inst;
  inst.bids = MakeBids(n, k, rng);
  inst.model = std::make_unique<MatrixClickModel>(MakeModel(n, k, rng));
  inst.compiled.reserve(n);
  for (int i = 0; i < n; ++i) {
    inst.compiled.push_back(CompiledBids::Compile(inst.bids[i], k));
    inst.view.push_back(&inst.compiled.back());
  }
  return inst;
}

void BM_MatrixBaselineTreeWalk(benchmark::State& state) {
  const Instance inst = MakeInstance(static_cast<int>(state.range(0)),
                                     static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRevenueMatrixBaseline(inst.bids, *inst.model));
  }
}
BENCHMARK(BM_MatrixBaselineTreeWalk)
    ->Args({1000, 8})
    ->Args({5000, 8})
    ->Args({5000, 15})
    ->Unit(benchmark::kMillisecond);

void BM_MatrixCompiled(benchmark::State& state) {
  const Instance inst = MakeInstance(static_cast<int>(state.range(0)),
                                     static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRevenueMatrix(inst.bids, *inst.model));
  }
}
BENCHMARK(BM_MatrixCompiled)
    ->Args({1000, 8})
    ->Args({5000, 8})
    ->Args({5000, 15})
    ->Args({10000, 8})
    ->Args({100000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_MatrixCompiledCached(benchmark::State& state) {
  const Instance inst = MakeInstance(static_cast<int>(state.range(0)),
                                     static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRevenueMatrixCompiled(inst.view, *inst.model));
  }
}
BENCHMARK(BM_MatrixCompiledCached)
    ->Args({1000, 8})
    ->Args({5000, 8})
    ->Args({5000, 15})
    ->Args({10000, 8})
    ->Args({100000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_MatrixCompiledParallel(benchmark::State& state) {
  const Instance inst = MakeInstance(static_cast<int>(state.range(0)),
                                     static_cast<int>(state.range(1)));
  ThreadPool pool(static_cast<int>(state.range(2)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildRevenueMatrixCompiled(inst.view, *inst.model, &pool));
  }
}
BENCHMARK(BM_MatrixCompiledParallel)
    ->Args({5000, 8, 2})
    ->Args({5000, 8, 4})
    ->Args({5000, 15, 4})
    ->Args({10000, 8, 4})
    ->Args({100000, 8, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssa
