// Durability overhead: auction throughput with the settlement log off vs on
// at each sync mode, plus checkpoint write/restore and restore-then-replay
// recovery costs. Answers the question the durability design hinges on: what
// does a sequenced, CRC-checked, group-committed log cost per auction, and
// how fast can a crashed engine get back to its pre-crash state?
//
//   log=off        baseline engine loop, no durability
//   log=buffered   append + CRC, group write() every G records, no fsync
//   log=group      append + CRC, write()+fsync every G records
//   log=each       write()+fsync every record (upper bound)
//
// Knobs (env): SSA_DUR_N (advertisers, default 5000), SSA_DUR_AUCTIONS
// (measured auctions, default 2000), SSA_DUR_WARMUP (default 100),
// SSA_DUR_GROUP (group size, default 32), SSA_SEED,
// SSA_DUR_QUICK=1 (CI smoke: tiny population and counts).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "durability/checkpoint.h"
#include "durability/recovery.h"
#include "durability/settlement_log.h"
#include "util/timer.h"

namespace ssa {
namespace bench {
namespace {

std::string TempPath(const std::string& name) {
  return "/tmp/ssa_bench_durability_" + name;
}

std::unique_ptr<AuctionEngine> MakeEngine(int n, uint64_t seed) {
  EngineConfig config;
  config.seed = seed + 1;
  Workload workload = PaperWorkload(n, seed);
  auto strategies = RoiStrategies(workload);
  return std::make_unique<AuctionEngine>(config, std::move(workload),
                                         std::move(strategies));
}

/// Runs warmup+measured auctions, appending each settlement to `writer`
/// (nullptr = log off). Returns measured auctions per second.
double MeasureQps(AuctionEngine* engine, SettlementLogWriter* writer,
                  int warmup, int measured) {
  for (int t = 0; t < warmup; ++t) {
    const AuctionOutcome& outcome = engine->RunAuction();
    if (writer != nullptr) {
      (void)writer->Append(SettlementRecord::FromOutcome(
          static_cast<uint64_t>(engine->auctions_run()), outcome));
    }
  }
  WallTimer timer;
  for (int t = 0; t < measured; ++t) {
    const AuctionOutcome& outcome = engine->RunAuction();
    if (writer != nullptr) {
      (void)writer->Append(SettlementRecord::FromOutcome(
          static_cast<uint64_t>(engine->auctions_run()), outcome));
    }
  }
  if (writer != nullptr) (void)writer->Flush();
  return measured / (timer.ElapsedMillis() / 1e3);
}

void RunLogModes(int n, int warmup, int measured, size_t group,
                 uint64_t seed) {
  std::printf("-- settlement log overhead (n=%d, auctions=%d, group=%zu)\n",
              n, measured, group);
  std::printf("%-12s %12s %14s %10s\n", "log", "qps", "bytes/auction",
              "vs off");

  double baseline = 0;
  struct ModeRow {
    const char* name;
    bool enabled;
    LogSyncMode sync;
  };
  const ModeRow rows[] = {
      {"off", false, LogSyncMode::kBuffered},
      {"buffered", true, LogSyncMode::kBuffered},
      {"group", true, LogSyncMode::kGroupFsync},
      {"each", true, LogSyncMode::kFsyncEach},
  };
  // Best-of-trials per mode, trials interleaved across modes: single-trial
  // back-to-back runs at production populations are dominated by machine
  // noise and frequency drift (the auction is ~ms, the append ~µs), which
  // otherwise reads as phantom log overhead on whichever mode ran last.
  const int trials = static_cast<int>(EnvInt("SSA_DUR_TRIALS", 3));
  const size_t num_rows = sizeof(rows) / sizeof(rows[0]);
  double best_qps[num_rows] = {};
  double bytes_per_auction[num_rows] = {};
  for (int trial = 0; trial < trials; ++trial) {
    for (size_t m = 0; m < num_rows; ++m) {
      const ModeRow& row = rows[m];
      auto engine = MakeEngine(n, seed);
      std::unique_ptr<SettlementLogWriter> writer;
      const std::string path = TempPath(row.name);
      std::remove(path.c_str());
      if (row.enabled) {
        LogWriterOptions options;
        options.sync = row.sync;
        options.group_records = group;
        auto opened =
            SettlementLogWriter::Open(path, options, /*next_seq=*/1);
        if (!opened.ok()) {
          std::printf("%-12s open failed: %s\n", row.name,
                      opened.status().ToString().c_str());
          continue;
        }
        writer = std::move(*opened);
      }
      best_qps[m] = std::max(
          best_qps[m],
          MeasureQps(engine.get(), writer.get(), warmup, measured));
      if (writer != nullptr) {
        bytes_per_auction[m] = static_cast<double>(writer->bytes_written()) /
                               static_cast<double>(warmup + measured);
      }
      std::remove(path.c_str());
    }
  }
  for (size_t m = 0; m < num_rows; ++m) {
    if (!rows[m].enabled) baseline = best_qps[m];
    std::printf("%-12s %12.0f %14.1f %9.2fx\n", rows[m].name, best_qps[m],
                bytes_per_auction[m],
                baseline > 0 ? best_qps[m] / baseline : 1.0);
  }
}

void RunRecoveryCosts(int n, int auctions, size_t group, uint64_t seed) {
  std::printf("-- checkpoint + recovery (n=%d, log suffix=%d auctions)\n", n,
              auctions);
  const std::string log_path = TempPath("recovery_log");
  const std::string ckpt_path = TempPath("recovery_ckpt");
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());

  // Build a checkpoint and a post-checkpoint log suffix.
  auto engine = MakeEngine(n, seed);
  {
    WallTimer timer;
    (void)engine->WriteCheckpoint(ckpt_path);
    std::printf("%-28s %10.2f ms\n", "checkpoint write",
                timer.ElapsedMillis());
  }
  {
    LogWriterOptions options;
    options.sync = LogSyncMode::kBuffered;
    options.group_records = group;
    auto writer = SettlementLogWriter::Open(log_path, options, /*next_seq=*/1);
    if (!writer.ok()) return;
    for (int t = 0; t < auctions; ++t) {
      const AuctionOutcome& outcome = engine->RunAuction();
      (void)(*writer)->Append(SettlementRecord::FromOutcome(
          static_cast<uint64_t>(engine->auctions_run()), outcome));
    }
    (void)(*writer)->Flush();
  }

  // Recover a fresh engine: checkpoint restore + full-suffix replay.
  auto recovered = MakeEngine(n, seed);
  RecoveryOptions options;
  options.checkpoint_path = ckpt_path;
  options.log_path = log_path;
  options.stream = QueryStream::kInternal;
  RecoveryReport report;
  WallTimer timer;
  const Status status = RecoverEngine(recovered.get(), options, &report);
  const double ms = timer.ElapsedMillis();
  if (!status.ok()) {
    std::printf("recovery failed: %s\n", status.ToString().c_str());
    return;
  }
  std::printf("%-28s %10.2f ms  (%" PRId64 " auctions, %.0f/s)\n",
              "restore + replay", ms, report.records_replayed,
              report.records_replayed / (ms / 1e3));
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
}

void Main() {
  const bool quick = EnvInt("SSA_DUR_QUICK", 0) != 0;
  const int n = static_cast<int>(EnvInt("SSA_DUR_N", quick ? 200 : 5000));
  const int measured =
      static_cast<int>(EnvInt("SSA_DUR_AUCTIONS", quick ? 100 : 2000));
  const int warmup =
      static_cast<int>(EnvInt("SSA_DUR_WARMUP", quick ? 10 : 100));
  const size_t group =
      static_cast<size_t>(EnvInt("SSA_DUR_GROUP", 32));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("SSA_SEED", 7));

  RunLogModes(n, warmup, measured, group, seed);
  RunRecoveryCosts(n, measured, group, seed);
}

}  // namespace
}  // namespace bench
}  // namespace ssa

int main() {
  ssa::bench::Main();
  return 0;
}
