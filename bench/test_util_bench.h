#ifndef SSA_BENCH_TEST_UTIL_BENCH_H_
#define SSA_BENCH_TEST_UTIL_BENCH_H_

#include "core/expected_revenue.h"
#include "util/rng.h"

namespace ssa {
namespace bench_util {

/// Random revenue matrix shaped like the Section V workload: weights are
/// ctr (slot-interval distributed) times an integral bid U{0..50}.
inline RevenueMatrix RandomRevenue(int n, int k, Rng& rng) {
  RevenueMatrix m(n, k);
  const double width = 0.8 / k;
  for (int i = 0; i < n; ++i) {
    const double bid = static_cast<double>(rng.UniformInt(0, 50));
    for (int j = 0; j < k; ++j) {
      const double lo = 0.9 - width * (j + 1);
      m.Set(i, j, rng.Uniform(lo, lo + width) * bid);
    }
  }
  return m;
}

}  // namespace bench_util
}  // namespace ssa

#endif  // SSA_BENCH_TEST_UTIL_BENCH_H_
