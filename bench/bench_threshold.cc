// Ablation E: Threshold Algorithm sublinearity (Section IV-A). Compares TA
// top-k over (ctr, bid) sorted lists against a full linear scan, and reports
// the fraction of the input TA actually probed. Narrower per-slot ctr
// intervals (higher slots) correlate the two orders and let TA stop earlier.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "strategy/threshold_algorithm.h"
#include "util/rng.h"

namespace ssa {
namespace {

struct Instance {
  std::vector<double> ctr;
  std::vector<double> bid;
  std::vector<std::pair<double, int32_t>> ctr_sorted;
  std::vector<std::pair<double, int32_t>> bid_sorted;
};

/// Zero-copy sorted-access view (VectorSortedList would copy the n-entry
/// vector every iteration and mask TA's sublinearity).
class RefSortedList : public SortedAccessList {
 public:
  explicit RefSortedList(const std::vector<std::pair<double, int32_t>>& e)
      : entries_(e) {}
  bool Next(int32_t* id, double* value) override {
    if (pos_ >= entries_.size()) return false;
    *value = entries_[pos_].first;
    *id = entries_[pos_].second;
    ++pos_;
    return true;
  }

 private:
  const std::vector<std::pair<double, int32_t>>& entries_;
  size_t pos_ = 0;
};

Instance MakeInstance(int n, double ctr_lo, double ctr_hi, uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.ctr.resize(n);
  inst.bid.resize(n);
  for (int i = 0; i < n; ++i) {
    inst.ctr[i] = rng.Uniform(ctr_lo, ctr_hi);
    inst.bid[i] = static_cast<double>(rng.UniformInt(0, 50));
  }
  auto sorted = [&](const std::vector<double>& attr) {
    std::vector<std::pair<double, int32_t>> out;
    for (int i = 0; i < n; ++i) out.emplace_back(attr[i], i);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    return out;
  };
  inst.ctr_sorted = sorted(inst.ctr);
  inst.bid_sorted = sorted(inst.bid);
  return inst;
}

void BM_ThresholdTopK(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 16;
  const Instance inst = MakeInstance(n, 0.7, 0.9, 11);
  int64_t accesses = 0, runs = 0;
  for (auto _ : state) {
    RefSortedList lc(inst.ctr_sorted);
    RefSortedList lb(inst.bid_sorted);
    const auto result = ThresholdTopK(
        {&lc, &lb}, [&](int32_t id) { return inst.ctr[id] * inst.bid[id]; },
        [](const std::vector<double>& c) { return c[0] * c[1]; }, k, n);
    benchmark::DoNotOptimize(result);
    accesses += result.sorted_accesses;
    ++runs;
  }
  state.counters["probed_fraction"] = benchmark::Counter(
      static_cast<double>(accesses) / runs / (2.0 * n));
}
BENCHMARK(BM_ThresholdTopK)->RangeMultiplier(4)->Range(1000, 256000);

void BM_FullScanTopK(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 16;
  const Instance inst = MakeInstance(n, 0.7, 0.9, 11);
  for (auto _ : state) {
    // Size-k heap over all n scores — what RH's selection does per slot.
    std::vector<std::pair<double, int32_t>> heap;
    heap.reserve(k + 1);
    for (int i = 0; i < n; ++i) {
      const double s = inst.ctr[i] * inst.bid[i];
      if (static_cast<int>(heap.size()) < k) {
        heap.emplace_back(s, i);
        std::push_heap(heap.begin(), heap.end(), std::greater<>());
      } else if (heap.front().first < s) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<>());
        heap.back() = {s, i};
        std::push_heap(heap.begin(), heap.end(), std::greater<>());
      }
    }
    benchmark::DoNotOptimize(heap);
  }
}
BENCHMARK(BM_FullScanTopK)->RangeMultiplier(4)->Range(1000, 256000);

// Wide ctr interval (weakly correlated orders): TA's worst case.
void BM_ThresholdTopKWideInterval(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 16;
  const Instance inst = MakeInstance(n, 0.1, 0.9, 13);
  for (auto _ : state) {
    RefSortedList lc(inst.ctr_sorted);
    RefSortedList lb(inst.bid_sorted);
    benchmark::DoNotOptimize(ThresholdTopK(
        {&lc, &lb}, [&](int32_t id) { return inst.ctr[id] * inst.bid[id]; },
        [](const std::vector<double>& c) { return c[0] * c[1]; }, k, n));
  }
}
BENCHMARK(BM_ThresholdTopKWideInterval)->RangeMultiplier(4)->Range(1000, 256000);

}  // namespace
}  // namespace ssa
