// Ablation D: the Section III-E tree-aggregation network. Sweeps the number
// of leaf blocks (machines) and reports both wall time on a thread pool and
// the modeled critical path ((n/p) k log k leaf work + k log p merge
// levels).

#include <benchmark/benchmark.h>

#include "core/parallel_topk.h"
#include "test_util_bench.h"
#include "util/thread_pool.h"

namespace ssa {
namespace {

constexpr int kSlots = 15;
constexpr int kAdvertisers = 100000;

const RevenueMatrix& SharedMatrix() {
  static const RevenueMatrix* matrix = [] {
    Rng rng(7);
    return new RevenueMatrix(
        bench_util::RandomRevenue(kAdvertisers, kSlots, rng));
  }();
  return *matrix;
}

void BM_TreeTopKSerial(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  double critical = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    const TreeAggregationResult r = TreeTopKAggregate(SharedMatrix(), blocks);
    benchmark::DoNotOptimize(r.candidates.size());
    critical += r.critical_path_ms;
    ++runs;
  }
  state.counters["critical_path_ms"] =
      benchmark::Counter(critical / static_cast<double>(runs));
}
BENCHMARK(BM_TreeTopKSerial)->RangeMultiplier(2)->Range(1, 64)
    ->Unit(benchmark::kMillisecond);

void BM_TreeTopKPooled(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  static ThreadPool* pool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  double critical = 0;
  int64_t runs = 0;
  for (auto _ : state) {
    const TreeAggregationResult r =
        TreeTopKAggregate(SharedMatrix(), blocks, pool);
    benchmark::DoNotOptimize(r.candidates.size());
    critical += r.critical_path_ms;
    ++runs;
  }
  state.counters["critical_path_ms"] =
      benchmark::Counter(critical / static_cast<double>(runs));
}
BENCHMARK(BM_TreeTopKPooled)->RangeMultiplier(2)->Range(1, 64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssa
