// Reproduces Figure 13: average time per auction (ms) for RH versus RHTALU
// as the number of advertisers grows to 20000 — the payoff of Section IV's
// program-evaluation reduction (Threshold Algorithm + logical updates +
// triggers). RH re-runs every bidder's program and rebuilds the expected-
// revenue matrix each auction (linear in n); RHTALU touches only the
// per-keyword adjustment variables, fired triggers, clicked winners and the
// advertisers the TA probes.
//
// Also prints the RHTALU work counters (TA sorted accesses per auction,
// triggers fired, list moves) to substantiate the sublinearity claim.

#include <cstdio>

#include "bench_common.h"
#include "strategy/logical_roi.h"

namespace ssa {
namespace bench {
namespace {

int Main() {
  const int warmup = static_cast<int>(EnvInt("SSA_FIG13_WARMUP", 100));
  const int measured = static_cast<int>(EnvInt("SSA_FIG13_AUCTIONS", 200));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("SSA_SEED", 1));

  std::printf(
      "# Figure 13: time per auction (ms) vs number of advertisers — RH vs "
      "RHTALU\n");
  std::printf("# 15 slots, 10 keywords, ROI bidders, GSP pricing; avg over "
              "%d auctions after %d warmup\n",
              measured, warmup);
  std::printf("%8s %12s %12s %12s %16s %12s\n", "n", "RH", "RHTALU",
              "RH/RHTALU", "TA probes/slot", "moves/auction");

  const int sweep[] = {2000, 4000, 6000, 8000, 10000,
                       12000, 14000, 16000, 18000, 20000};
  for (int n : sweep) {
    // Eager RH engine.
    Workload w_eager = PaperWorkload(n, seed);
    EngineConfig config;
    config.seed = seed + 1;
    auto strategies = RoiStrategies(w_eager);
    AuctionEngine eager(config, std::move(w_eager), std::move(strategies));
    const double rh_ms = AverageAuctionMs(eager, warmup, measured);

    // RHTALU engine, with work counters sampled over the measured window.
    LogicalRoiEngine logical(config, PaperWorkload(n, seed));
    for (int t = 0; t < warmup; ++t) logical.RunAuction();
    const auto before = logical.stats();
    double talu_total = 0;
    for (int t = 0; t < measured; ++t) {
      talu_total += logical.RunAuction().ProcessingMs();
    }
    const double talu_ms = talu_total / measured;
    const auto after = logical.stats();
    const double probes_per_slot =
        static_cast<double>(after.ta_sorted_accesses -
                            before.ta_sorted_accesses) /
        (static_cast<double>(measured) * 15);
    const double moves_per_auction =
        static_cast<double>(after.list_moves - before.list_moves) / measured;

    std::printf("%8d %12.3f %12.3f %12.1f %16.1f %12.1f\n", n, rh_ms, talu_ms,
                rh_ms / talu_ms, probes_per_slot, moves_per_auction);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ssa

int main() { return ssa::bench::Main(); }
