// Ablation A: the separable fast path (Section III-C) versus general
// matching. When separability holds, the O(n log k) sort allocation matches
// the Hungarian optimum at a fraction of the cost — the efficiency current
// engines buy by restricting expressiveness.

#include <benchmark/benchmark.h>

#include "core/expected_revenue.h"
#include "core/separable.h"
#include "core/winner_determination.h"
#include "util/rng.h"

namespace ssa {
namespace {

constexpr int kSlots = 15;

struct Setup {
  SeparableClickModel model;
  std::vector<Money> values;
  RevenueMatrix revenue;
};

Setup MakeSetup(int n) {
  Rng rng(5);
  SeparableClickModel model = MakeRandomSeparableClickModel(n, kSlots, rng);
  std::vector<Money> values(n);
  for (auto& v : values) v = static_cast<Money>(rng.UniformInt(1, 50));
  RevenueMatrix revenue(n, kSlots);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kSlots; ++j) {
      revenue.Set(i, j, model.ClickProbability(i, j) * values[i]);
    }
  }
  return Setup{std::move(model), std::move(values), std::move(revenue)};
}

void BM_SeparableSortAllocate(benchmark::State& state) {
  const Setup s = MakeSetup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeparableAllocate(s.values, s.model));
  }
}
BENCHMARK(BM_SeparableSortAllocate)->RangeMultiplier(4)->Range(1000, 64000);

void BM_GeneralReducedHungarian(benchmark::State& state) {
  const Setup s = MakeSetup(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetermineWinners(s.revenue, WdMethod::kReducedHungarian));
  }
}
BENCHMARK(BM_GeneralReducedHungarian)->RangeMultiplier(4)->Range(1000, 64000);

void BM_SeparabilityCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Setup s = MakeSetup(n);
  std::vector<double> click;
  click.reserve(static_cast<size_t>(n) * kSlots);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < kSlots; ++j) {
      click.push_back(s.model.ClickProbability(i, j));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSeparable(click, n, kSlots, 1e-9));
  }
}
BENCHMARK(BM_SeparabilityCheck)->RangeMultiplier(4)->Range(1000, 64000);

}  // namespace
}  // namespace ssa
