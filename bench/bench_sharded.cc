// Sharded vs single-engine auction throughput: the full RunAuction()
// lifecycle (program evaluation, compiled-bids lookups, revenue matrix,
// reduced-Hungarian winner determination, pricing, settlement) on the
// Section V paper workload, across population sizes n ∈ {1k, 10k, 100k}.
//
// Compared engines:
//   * Single:        AuctionEngine, everything sequential,
//   * SingleTPool:   AuctionEngine with the row-block matrix_pool (PR 1),
//   * Sharded/K:     ShardedAuctionEngine, K shards on a K-thread pool —
//                    programs, compilation, matrix rows and local top-k all
//                    run share-nothing per shard.
//
// All three produce bitwise-identical auction trajectories for equal seeds
// (asserted by sharded_engine_test), so the comparison is pure scheduling.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "auction/auction_engine.h"
#include "auction/sharded_engine.h"
#include "strategy/roi_strategy.h"
#include "util/thread_pool.h"

namespace ssa {
namespace {

std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  strategies.reserve(workload.config.num_advertisers);
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

WorkloadConfig BenchConfig(int n) {
  WorkloadConfig config;  // paper defaults: 15 slots, 10 keywords
  config.num_advertisers = n;
  config.seed = 12345;
  return config;
}

void BM_SingleEngineAuction(benchmark::State& state) {
  Workload w = MakePaperWorkload(BenchConfig(static_cast<int>(state.range(0))));
  EngineConfig config;
  AuctionEngine engine(config, w, RoiStrategies(w));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RunAuction().revenue_charged);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleEngineAuction)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_SingleEngineMatrixPool(benchmark::State& state) {
  Workload w = MakePaperWorkload(BenchConfig(static_cast<int>(state.range(0))));
  ThreadPool pool(static_cast<int>(state.range(1)));
  EngineConfig config;
  config.matrix_pool = &pool;
  AuctionEngine engine(config, w, RoiStrategies(w));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RunAuction().revenue_charged);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleEngineMatrixPool)
    ->Args({10000, 4})
    ->Args({100000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_ShardedAuction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  Workload w = MakePaperWorkload(BenchConfig(n));
  ThreadPool pool(shards);
  ShardedEngineConfig config;
  config.num_shards = shards;
  config.pool = &pool;
  ShardedAuctionEngine engine(config, w, RoiStrategies(w));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RunAuction().revenue_charged);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedAuction)
    ->Args({1000, 2})
    ->Args({1000, 4})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssa
