// Sharded-engine benchmark harness (custom main, no google-benchmark):
//
//   1. Throughput: the full RunAuction() lifecycle (program evaluation,
//      compiled-bids lookups, revenue matrix, reduced-Hungarian winner
//      determination, pricing, settlement) on the Section V paper workload —
//      AuctionEngine vs ShardedAuctionEngine at K ∈ {2, 4, 8}. All engines
//      produce bitwise-identical trajectories for equal seeds (asserted by
//      sharded_engine_test), so the comparison is pure scheduling.
//
//   2. Zipf skew ablation: a population where advertiser i emits
//      1 + 63·(400·(i+1)/n)^(−s) bid rows per auction, s ∈ {0, 0.8, 1.2}
//      (rank rescaled so the relative skew is n-invariant). Under the
//      uniform contiguous partition the low-index shard does nearly all the
//      work; the ablation reports per-shard phase times and the
//      slowest-shard/mean gap before vs after one cost-model-driven
//      RebalanceShards(), plus a lockstep bitwise check against a twin
//      engine that keeps the uniform layout. The shard phase runs
//      *sequentially* (no pool), so the per-shard spans measure the work a
//      shard owns rather than scheduler interleaving — the right signal on
//      any core count, and the merge-barrier latency bound either way.
//
// Knobs (env): SSA_SHARD_N (advertisers, default 2000),
// SSA_SHARD_AUCTIONS (measured per config, default 200), SSA_SHARD_WARMUP
// (default 30), SSA_SEED, SSA_SHARD_QUICK=1 (CI smoke: tiny counts).
// Flags: --json[=path] appends a machine-readable report (to stdout or
// `path`) after the human-readable tables.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "auction/auction_engine.h"
#include "auction/sharded_engine.h"
#include "util/timer.h"

namespace ssa {
namespace bench {
namespace {

/// Zipf-skewed bidding program: advertiser i re-emits the same
/// 1 + 63·(400·(i+1)/n)^(−s) rows (capped at 1024) every auction. The rank
/// is rescaled to a 400-advertiser grid so the *relative* skew — and hence
/// the shard imbalance the ablation measures — is population-invariant
/// instead of washing out as n grows. Stable tables make the compiled-bids
/// caches hit after the first auction, so the recurring per-advertiser
/// cost — bid emission in capture, fingerprint verification in the shard
/// phase — is proportional to the row count, which is exactly the skew the
/// cost model must learn and the rebalancer must flatten. Stateless, so
/// checkpoints and restores stay trivial.
class ZipfStrategy : public BiddingStrategy {
 public:
  ZipfStrategy(int index, int population, double s, int num_slots)
      : num_slots_(num_slots) {
    const double rank = (index + 1) * (400.0 / population);
    rows_ = 1 + std::min(1023, static_cast<int>(63.0 * std::pow(rank, -s)));
    values_.reserve(rows_);
    for (int r = 0; r < rows_; ++r) {
      values_.push_back(1.0 + ((index * 31 + r * 7) % 97) * 0.01);
    }
  }

  void MakeBids(const Query& query, const AdvertiserAccount& account,
                BidsTable* bids) override {
    (void)query;
    (void)account;
    for (int r = 0; r < rows_; ++r) {
      bids->AddBid(Formula::Slot(r % num_slots_) && Formula::Click(),
                   values_[r]);
    }
  }

 private:
  int num_slots_;
  int rows_;
  std::vector<Money> values_;
};

std::vector<std::unique_ptr<BiddingStrategy>> ZipfStrategies(
    const Workload& workload, double s) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  strategies.reserve(workload.config.num_advertisers);
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(std::make_unique<ZipfStrategy>(
        i, workload.config.num_advertisers, s, workload.config.num_slots));
  }
  return strategies;
}

/// Average ms/auction over `measured` auctions after `warmup` unmeasured
/// ones, by wall clock (works for either engine type).
template <typename Engine>
double MeasureMsPerAuction(Engine& engine, int warmup, int measured) {
  for (int t = 0; t < warmup; ++t) engine.RunAuction();
  WallTimer timer;
  for (int t = 0; t < measured; ++t) engine.RunAuction();
  return timer.ElapsedMillis() / measured;
}

struct ThroughputRow {
  std::string engine;
  int shards = 1;
  double ms_per_auction = 0;
};

struct SkewResult {
  double s = 0;
  int shards = 0;
  std::vector<double> phase_ms_before;  // per shard, uniform layout
  std::vector<double> phase_ms_after;   // per shard, rebalanced layout
  double gap_before = 0;  // slowest-shard / mean, uniform
  double gap_after = 0;   // slowest-shard / mean, rebalanced
  bool rebalanced = false;
  bool bitwise_identical = false;  // vs the uniform-layout twin
};

/// Collects each shard's accumulated work time — bid capture plus shard
/// phase, the two per-advertiser-proportional stages a shard owns — and
/// returns slowest-shard / mean.
double CollectPhases(const ShardedAuctionEngine& engine,
                     std::vector<double>* phase_ms) {
  phase_ms->clear();
  double total = 0, worst = 0;
  for (int shard = 0; shard < engine.num_shards(); ++shard) {
    const ShardedAuctionEngine::ShardStats stats = engine.shard_stats(shard);
    const double ms = (stats.capture_ns + stats.phase_ns) / 1e6;
    phase_ms->push_back(ms);
    total += ms;
    worst = std::max(worst, ms);
  }
  const double mean = total / engine.num_shards();
  return mean > 0 ? worst / mean : 1.0;
}

SkewResult RunSkewAblation(int n, int shards, double s, int measured,
                           uint64_t seed) {
  SkewResult result;
  result.s = s;
  result.shards = shards;

  // Both engines share workload, seed, and strategies; only the shard
  // layout will diverge. No pool: per-shard phase spans are pure work.
  Workload w1 = PaperWorkload(n, seed);
  Workload w2 = PaperWorkload(n, seed);
  auto strategies1 = ZipfStrategies(w1, s);
  auto strategies2 = ZipfStrategies(w2, s);
  ShardedEngineConfig config;
  config.engine.seed = seed + 1;
  config.num_shards = shards;
  ShardedAuctionEngine rebalanced(config, std::move(w1),
                                  std::move(strategies1));
  ShardedAuctionEngine uniform(config, std::move(w2), std::move(strategies2));

  result.bitwise_identical = true;
  auto lockstep = [&](int auctions) {
    for (int t = 0; t < auctions; ++t) {
      const AuctionOutcome& a = rebalanced.RunAuction();
      const AuctionOutcome& b = uniform.RunAuction();
      if (a.revenue_charged != b.revenue_charged ||
          a.wd.allocation.slot_to_advertiser !=
              b.wd.allocation.slot_to_advertiser) {
        result.bitwise_identical = false;
      }
    }
  };

  // Phase 1: uniform layout. The cost model learns the skew while the
  // per-shard phase clocks accumulate the imbalance.
  lockstep(measured);
  result.gap_before = CollectPhases(rebalanced, &result.phase_ms_before);

  // One cost-driven rebalance at the phase boundary (the serving executor's
  // epoch-boundary trigger, condensed), with the serving default hysteresis
  // so a near-flat layout (s=0) is left alone rather than chasing noise.
  // Repartition resets the work clocks, so phase 2 measures the new layout
  // alone.
  result.rebalanced =
      rebalanced.RebalanceShards(ShardRebalancerOptions{}.min_imbalance);

  // Phase 2: rebalanced layout vs the same uniform twin, still lockstep —
  // the determinism proof rides along with the measurement.
  lockstep(measured);
  result.gap_after = CollectPhases(rebalanced, &result.phase_ms_after);
  if (rebalanced.total_revenue() != uniform.total_revenue()) {
    result.bitwise_identical = false;
  }
  return result;
}

void PrintPhaseRow(const char* label, double s, double gap,
                   const std::vector<double>& phase_ms) {
  std::printf("%4.1f  %-10s %8.3f  [", s, label, gap);
  for (size_t i = 0; i < phase_ms.size(); ++i) {
    std::printf("%s%.1f", i == 0 ? "" : " ", phase_ms[i]);
  }
  std::printf("] ms\n");
}

std::string JsonDoubleArray(const std::vector<double>& values) {
  std::string out = "[";
  char buf[32];
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.4f", i == 0 ? "" : ", ", values[i]);
    out += buf;
  }
  return out + "]";
}

void WriteJson(std::FILE* f, int n, int auctions,
               const std::vector<ThroughputRow>& throughput,
               const std::vector<SkewResult>& skew) {
  std::fprintf(f, "{\n  \"bench\": \"bench_sharded\",\n");
  std::fprintf(f, "  \"n\": %d,\n  \"auctions\": %d,\n", n, auctions);
  std::fprintf(f, "  \"throughput\": [\n");
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputRow& row = throughput[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"shards\": %d, "
                 "\"ms_per_auction\": %.4f}%s\n",
                 row.engine.c_str(), row.shards, row.ms_per_auction,
                 i + 1 < throughput.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"zipf\": [\n");
  for (size_t i = 0; i < skew.size(); ++i) {
    const SkewResult& r = skew[i];
    const double excess_before = r.gap_before - 1.0;
    const double excess_after = r.gap_after - 1.0;
    const double reduction =
        excess_after > 0 ? excess_before / excess_after : excess_before;
    std::fprintf(f, "    {\"s\": %.1f, \"shards\": %d,\n", r.s, r.shards);
    std::fprintf(f, "     \"phase_ms_before\": %s,\n",
                 JsonDoubleArray(r.phase_ms_before).c_str());
    std::fprintf(f, "     \"phase_ms_after\": %s,\n",
                 JsonDoubleArray(r.phase_ms_after).c_str());
    std::fprintf(f,
                 "     \"gap_before\": %.4f, \"gap_after\": %.4f, "
                 "\"excess_reduction\": %.4f,\n",
                 r.gap_before, r.gap_after, reduction);
    std::fprintf(f,
                 "     \"rebalanced\": %s, \"bitwise_identical\": %s}%s\n",
                 r.rebalanced ? "true" : "false",
                 r.bitwise_identical ? "true" : "false",
                 i + 1 < skew.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

int Main(int argc, char** argv) {
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s (supported: --json[=path])\n",
                   argv[i]);
      return 2;
    }
  }

  const bool quick = EnvInt("SSA_SHARD_QUICK", 0) != 0;
  const int n = static_cast<int>(EnvInt("SSA_SHARD_N", quick ? 400 : 2000));
  const int auctions =
      static_cast<int>(EnvInt("SSA_SHARD_AUCTIONS", quick ? 60 : 200));
  const int warmup =
      static_cast<int>(EnvInt("SSA_SHARD_WARMUP", quick ? 10 : 30));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("SSA_SEED", 12345));

  std::printf("# Sharded engine bench: n=%d advertisers, %d measured "
              "auctions per config, %d warmup\n\n",
              n, auctions, warmup);

  // --- Throughput: single vs sharded on the ROI paper workload. The shard
  // phase runs sequentially (pool-free) so the numbers compare partition
  // overhead, not host parallelism — identical work, different layout.
  std::printf("## Throughput (paper workload, ROI strategies)\n");
  std::printf("%-10s %6s %14s\n", "engine", "shards", "ms/auction");
  std::vector<ThroughputRow> throughput;
  {
    Workload w = PaperWorkload(n, seed);
    auto strategies = RoiStrategies(w);
    EngineConfig config;
    config.seed = seed + 1;
    AuctionEngine engine(config, std::move(w), std::move(strategies));
    ThroughputRow row{"single", 1,
                      MeasureMsPerAuction(engine, warmup, auctions)};
    std::printf("%-10s %6d %14.3f\n", row.engine.c_str(), row.shards,
                row.ms_per_auction);
    throughput.push_back(row);
  }
  for (int shards : {2, 4, 8}) {
    Workload w = PaperWorkload(n, seed);
    auto strategies = RoiStrategies(w);
    ShardedEngineConfig config;
    config.engine.seed = seed + 1;
    config.num_shards = shards;
    ShardedAuctionEngine engine(config, std::move(w), std::move(strategies));
    ThroughputRow row{"sharded", shards,
                      MeasureMsPerAuction(engine, warmup, auctions)};
    std::printf("%-10s %6d %14.3f\n", row.engine.c_str(), row.shards,
                row.ms_per_auction);
    throughput.push_back(row);
  }

  // --- Zipf skew ablation: cost-model-driven rebalancing vs the uniform
  // layout, with the bitwise twin check riding along.
  const int skew_shards = 4;
  std::printf("\n## Zipf skew ablation (K=%d shards, rows_i = 1 + "
              "63*(400(i+1)/n)^-s, sequential shard phase)\n",
              skew_shards);
  std::printf("   s  layout        gap  per-shard phase totals\n");
  std::vector<SkewResult> skew;
  for (double s : {0.0, 0.8, 1.2}) {
    const SkewResult r = RunSkewAblation(n, skew_shards, s, auctions, seed);
    PrintPhaseRow("uniform", r.s, r.gap_before, r.phase_ms_before);
    PrintPhaseRow(r.rebalanced ? "rebalanced" : "unchanged", r.s,
                  r.gap_after, r.phase_ms_after);
    const double excess_before = r.gap_before - 1.0;
    const double excess_after = r.gap_after - 1.0;
    std::printf("      -> slowest-shard excess %.3f -> %.3f (%.1fx "
                "reduction), bitwise-identical: %s\n",
                excess_before, excess_after,
                excess_after > 0 ? excess_before / excess_after
                                 : excess_before,
                r.bitwise_identical ? "yes" : "NO");
    skew.push_back(r);
  }

  if (json) {
    std::FILE* f = json_path.empty() ? stdout
                                     : std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
    if (!json_path.empty()) {
      std::printf("\nJSON report written to %s\n", json_path.c_str());
    } else {
      std::printf("\n");
    }
    WriteJson(f, n, auctions, throughput, skew);
    if (!json_path.empty()) std::fclose(f);
  }

  // The ablation doubles as a regression gate: rebalancing must never
  // break determinism.
  for (const SkewResult& r : skew) {
    if (!r.bitwise_identical) {
      std::fprintf(stderr,
                   "FAIL: rebalanced engine diverged from the uniform twin "
                   "at s=%.1f\n",
                   r.s);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ssa

int main(int argc, char** argv) { return ssa::bench::Main(argc, argv); }
