// Reproduces Figure 12: average winner-determination time per auction (ms,
// log scale in the paper) for the four methods LP, H, RH, RHTALU as the
// number of advertisers grows, on the Section V workload (15 slots, 10
// keywords, ROI-heuristic bidders, generalized second pricing).
//
// The LP method uses the from-scratch dense-tableau simplex (the GLPK
// substitute), which is slower than GLPK's sparse revised simplex; it runs
// over the full sweep by default (cap adjustable via SSA_LP_MAX_N) with
// fewer measured auctions per point. The ordering LP >> H >> RH > RHTALU —
// the figure's point — holds throughout.
//
// Output: one row per population size, one column per method, plus the
// speedup columns EXPERIMENTS.md quotes.

#include <cstdio>

#include "bench_common.h"
#include "strategy/logical_roi.h"

namespace ssa {
namespace bench {
namespace {

double MeasureEager(int n, WdMethod method, int warmup, int measured,
                    uint64_t seed) {
  Workload workload = PaperWorkload(n, seed);
  EngineConfig config;
  config.wd_method = method;
  config.seed = seed + 1;
  auto strategies = RoiStrategies(workload);
  AuctionEngine engine(config, std::move(workload), std::move(strategies));
  return AverageAuctionMs(engine, warmup, measured);
}

double MeasureRhtalu(int n, int warmup, int measured, uint64_t seed) {
  EngineConfig config;
  config.seed = seed + 1;
  LogicalRoiEngine engine(config, PaperWorkload(n, seed));
  for (int t = 0; t < warmup; ++t) engine.RunAuction();
  double total = 0;
  for (int t = 0; t < measured; ++t) {
    total += engine.RunAuction().ProcessingMs();
  }
  return total / measured;
}

int Main() {
  const int64_t lp_max_n = EnvInt("SSA_LP_MAX_N", 5000);
  const int warmup = static_cast<int>(EnvInt("SSA_FIG12_WARMUP", 50));
  const int measured = static_cast<int>(EnvInt("SSA_FIG12_AUCTIONS", 100));
  const int lp_measured = static_cast<int>(EnvInt("SSA_FIG12_LP_AUCTIONS", 3));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("SSA_SEED", 1));

  std::printf(
      "# Figure 12: winner-determination time per auction (ms) vs number of "
      "advertisers\n");
  std::printf(
      "# 15 slots, 10 keywords, ROI bidders, GSP pricing; avg over %d "
      "auctions (LP: %d)\n",
      measured, lp_measured);
  std::printf("# LP = assignment LP via dense simplex (GLPK substitute, "
              "capped at n <= %lld)\n",
              static_cast<long long>(lp_max_n));
  std::printf("%8s %12s %12s %12s %12s %10s %10s\n", "n", "LP", "H", "RH",
              "RHTALU", "H/RH", "RH/RHTALU");

  const int sweep[] = {100, 250, 500, 1000, 1500, 2000,
                       2500, 3000, 3500, 4000, 4500, 5000};
  for (int n : sweep) {
    double lp_ms = -1;
    if (n <= lp_max_n) {
      lp_ms = MeasureEager(n, WdMethod::kLp, /*warmup=*/5, lp_measured, seed);
    }
    const double h_ms =
        MeasureEager(n, WdMethod::kHungarian, warmup, measured, seed);
    const double rh_ms =
        MeasureEager(n, WdMethod::kReducedHungarian, warmup, measured, seed);
    const double talu_ms = MeasureRhtalu(n, warmup, measured, seed);

    char lp_buf[32];
    if (lp_ms >= 0) {
      std::snprintf(lp_buf, sizeof(lp_buf), "%12.3f", lp_ms);
    } else {
      std::snprintf(lp_buf, sizeof(lp_buf), "%12s", "-");
    }
    std::printf("%8d %s %12.3f %12.3f %12.3f %10.1f %10.1f\n", n, lp_buf,
                h_ms, rh_ms, talu_ms, h_ms / rh_ms, rh_ms / talu_ms);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ssa

int main() { return ssa::bench::Main(); }
