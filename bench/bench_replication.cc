// Replication costs: can a follower keep up, and do reads scale out?
//
//   apply          leader settle throughput (auction + log append) vs the
//                  follower's apply throughput (tail + re-execute + verify)
//                  over the same log. A follower whose apply rate is below
//                  the leader's settle rate falls behind without bound, so
//                  the ratio is the headline number. The replayed replica is
//                  checked bitwise against the leader before any number is
//                  reported — a diverged replay makes the timings
//                  meaningless, so that check failing is a hard error.
//   read_scaling   aggregate snapshot-read QPS (EstimatePrices, kAny
//                  consistency) from a fixed reader pool against 1, 2, 4
//                  caught-up followers. Reads on one follower serialize with
//                  its applies behind one mutex, so scale-out comes from
//                  follower count — this section measures how much.
//
// Knobs (env): SSA_REPL_N (advertisers, default 2000), SSA_REPL_AUCTIONS
// (log length, default 1500), SSA_REPL_SHARDS (default 2), SSA_REPL_READERS
// (reader threads, default 8), SSA_REPL_READ_MS (measure window per follower
// count, default 400), SSA_SEED, SSA_REPL_QUICK=1 (CI smoke: tiny sizes).
// Flags: --json[=path] appends a machine-readable report.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "auction/sharded_engine.h"
#include "bench_common.h"
#include "durability/settlement_log.h"
#include "replication/follower.h"
#include "serving/read_replicas.h"
#include "util/timer.h"

namespace ssa {
namespace bench {
namespace {

std::string TempPath(const std::string& name) {
  return "/tmp/ssa_bench_replication_" + name;
}

struct Params {
  int n = 2000;
  int auctions = 1500;
  int shards = 2;
  int readers = 8;
  int read_ms = 400;
  uint64_t seed = 7;
};

ShardedEngineConfig EngineConfigFor(const Params& p) {
  ShardedEngineConfig config;
  config.engine.seed = p.seed + 1;
  config.num_shards = p.shards;
  return config;
}

std::unique_ptr<ShardedAuctionEngine> MakeLeaderEngine(const Params& p) {
  Workload workload = PaperWorkload(p.n, p.seed);
  auto strategies = RoiStrategies(workload);
  return std::make_unique<ShardedAuctionEngine>(
      EngineConfigFor(p), std::move(workload), std::move(strategies));
}

std::unique_ptr<FollowerEngine> MakeFollower(const Params& p,
                                             const std::string& log_path) {
  FollowerConfig config;
  config.engine = EngineConfigFor(p);
  config.log_path = log_path;
  // Caught-up followers only need the poll loop for liveness here; a long
  // interval keeps idle apply threads from stealing cycles from the
  // measured readers.
  config.poll_interval = std::chrono::milliseconds(20);
  Workload workload = PaperWorkload(p.n, p.seed);
  auto strategies = RoiStrategies(workload);
  return std::make_unique<FollowerEngine>(config, std::move(workload),
                                          std::move(strategies));
}

bool AccountsBitwiseEq(const std::vector<AdvertiserAccount>& a,
                       const std::vector<AdvertiserAccount>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].amount_spent != b[i].amount_spent ||
        a[i].spent_per_keyword != b[i].spent_per_keyword ||
        a[i].value_gained != b[i].value_gained) {
      return false;
    }
  }
  return true;
}

struct ApplyResult {
  double settle_qps = 0;
  double apply_qps = 0;
  bool bitwise = false;
};

/// Leader settles `auctions` records into a fresh log (timed), then one
/// follower replays the whole log from seq 1 (timed) and is compared
/// bitwise.
ApplyResult RunApplySection(const Params& p, const std::string& log_path) {
  ApplyResult result;
  std::remove(log_path.c_str());

  std::unique_ptr<ShardedAuctionEngine> leader = MakeLeaderEngine(p);
  {
    LogWriterOptions options;
    options.sync = LogSyncMode::kBuffered;
    options.group_records = 32;
    auto writer = SettlementLogWriter::Open(log_path, options);
    if (!writer.ok()) {
      std::printf("log open failed: %s\n", writer.status().ToString().c_str());
      return result;
    }
    WallTimer timer;
    for (int t = 0; t < p.auctions; ++t) {
      const AuctionOutcome& outcome = leader->RunAuction();
      (void)(*writer)->Append(SettlementRecord::FromOutcome(
          static_cast<uint64_t>(leader->auctions_run()), outcome));
    }
    (void)(*writer)->Flush();
    result.settle_qps = p.auctions / (timer.ElapsedMillis() / 1e3);
  }

  std::unique_ptr<FollowerEngine> follower = MakeFollower(p, log_path);
  WallTimer timer;
  const Status started = follower->Start();
  if (!started.ok()) {
    std::printf("follower start failed: %s\n", started.ToString().c_str());
    return result;
  }
  const bool caught_up = follower->WaitForSeq(
      static_cast<uint64_t>(p.auctions), std::chrono::milliseconds(600000));
  const double apply_s = timer.ElapsedMillis() / 1e3;
  if (!caught_up) {
    std::printf("follower never caught up: %s\n",
                follower->status().ToString().c_str());
    return result;
  }
  result.apply_qps = p.auctions / apply_s;

  std::vector<AdvertiserAccount> accounts;
  result.bitwise = follower->AccountsSnapshot(&accounts, nullptr).ok() &&
                   AccountsBitwiseEq(accounts, leader->accounts());
  follower->Stop();
  return result;
}

/// Aggregate read QPS from `p.readers` threads against `num_followers`
/// caught-up followers for `p.read_ms` milliseconds.
double RunReadScaling(const Params& p, const std::string& log_path,
                      int num_followers) {
  ReadReplicaSetConfig config;
  config.num_followers = num_followers;
  ReadReplicaSet replicas(config,
                          [&](int) { return MakeFollower(p, log_path); });
  if (!replicas.Start().ok()) return 0;
  for (int f = 0; f < num_followers; ++f) {
    if (!replicas.follower(f)->WaitForSeq(static_cast<uint64_t>(p.auctions),
                                          std::chrono::milliseconds(600000))) {
      std::printf("follower %d never caught up\n", f);
      return 0;
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> threads;
  threads.reserve(p.readers);
  const int num_keywords = PaperWorkload(1, p.seed).config.num_keywords;
  for (int r = 0; r < p.readers; ++r) {
    threads.emplace_back([&, r] {
      QueryGenerator gen(num_keywords, p.seed + 100 + static_cast<uint64_t>(r));
      std::vector<Money> prices;
      int64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (replicas.EstimatePrices(ReadOptions{}, gen.Next(), &prices).ok()) {
          ++local;
        }
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(p.read_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double elapsed_s = timer.ElapsedMillis() / 1e3;
  replicas.Stop();
  return static_cast<double>(reads.load()) / elapsed_s;
}

int Main(int argc, char** argv) {
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s (supported: --json[=path])\n",
                   argv[i]);
      return 2;
    }
  }

  const bool quick = EnvInt("SSA_REPL_QUICK", 0) != 0;
  Params p;
  p.n = static_cast<int>(EnvInt("SSA_REPL_N", quick ? 200 : 2000));
  p.auctions =
      static_cast<int>(EnvInt("SSA_REPL_AUCTIONS", quick ? 120 : 1500));
  p.shards = static_cast<int>(EnvInt("SSA_REPL_SHARDS", 2));
  p.readers = static_cast<int>(EnvInt("SSA_REPL_READERS", quick ? 4 : 8));
  p.read_ms = static_cast<int>(EnvInt("SSA_REPL_READ_MS", quick ? 60 : 400));
  p.seed = static_cast<uint64_t>(EnvInt("SSA_SEED", 7));

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("# Replication: n=%d advertisers, %d-auction log, %d shards, "
              "%u cores\n",
              p.n, p.auctions, p.shards, cores);
  std::printf("# (read scale-out needs cores: followers serve reads on "
              "independent replicas,\n#  so reads/s tracks "
              "min(followers, free cores) x per-replica what-if rate)\n\n");

  const std::string log_path = TempPath("log");
  std::printf("## Apply throughput (follower must out-run the leader)\n");
  const ApplyResult apply = RunApplySection(p, log_path);
  if (!apply.bitwise) {
    std::printf("FAILED: follower replica is not bitwise-equal to the "
                "leader\n");
    std::remove(log_path.c_str());
    return 1;
  }
  std::printf("%-22s %12.0f auctions/s\n", "leader settle", apply.settle_qps);
  std::printf("%-22s %12.0f records/s  (%.2fx leader, bitwise ok)\n",
              "follower apply", apply.apply_qps,
              apply.settle_qps > 0 ? apply.apply_qps / apply.settle_qps : 0);

  std::printf("\n## Read scaling (%d reader threads, kAny reads)\n",
              p.readers);
  std::printf("%-10s %12s %10s\n", "followers", "reads/s", "vs f=1");
  const std::vector<int> follower_counts = quick ? std::vector<int>{1, 2}
                                                 : std::vector<int>{1, 2, 4};
  std::vector<double> read_qps;
  for (int f : follower_counts) {
    read_qps.push_back(RunReadScaling(p, log_path, f));
    std::printf("%-10d %12.0f %9.2fx\n", f, read_qps.back(),
                read_qps[0] > 0 ? read_qps.back() / read_qps[0] : 0);
  }
  std::remove(log_path.c_str());

  if (json) {
    std::FILE* f = json_path.empty() ? stdout
                                     : std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_replication\",\n");
    std::fprintf(f, "  \"n\": %d,\n  \"auctions\": %d,\n  \"shards\": %d,\n",
                 p.n, p.auctions, p.shards);
    std::fprintf(f, "  \"readers\": %d,\n  \"cores\": %u,\n"
                 "  \"bitwise\": true,\n",
                 p.readers, cores);
    std::fprintf(f, "  \"apply\": {\"leader_settle_qps\": %.1f, "
                 "\"follower_apply_qps\": %.1f, \"ratio\": %.3f},\n",
                 apply.settle_qps, apply.apply_qps,
                 apply.settle_qps > 0 ? apply.apply_qps / apply.settle_qps
                                      : 0);
    std::fprintf(f, "  \"read_scaling\": [\n");
    for (size_t i = 0; i < follower_counts.size(); ++i) {
      std::fprintf(f, "    {\"followers\": %d, \"reads_per_s\": %.1f}%s\n",
                   follower_counts[i], read_qps[i],
                   i + 1 < follower_counts.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (!json_path.empty()) std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ssa

int main(int argc, char** argv) { return ssa::bench::Main(argc, argv); }
