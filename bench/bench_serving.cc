// Serving-layer load generator: drives the AuctionServer (bounded ingestion
// queue -> micro-batched sharded auctions -> batched settlement) with
// closed- and open-loop traffic and reports sustained throughput plus
// queue-wait and end-to-end latency percentiles from the server's own
// log-bucketed histograms.
//
//   * Closed loop: P producers submit back-to-back under the kBlock policy —
//     measures the engine-bound ceiling (sustained qps) per shard count x
//     batch size x settlement mode.
//   * Open loop: one producer with Poisson arrivals (exponential
//     inter-arrival times from util/rng.h) at a sweep of offered rates
//     around the measured ceiling, kReject policy — measures how the
//     latency tail and shed rate move as utilization approaches 1 (the
//     closed-loop ceiling), which closed-loop harnesses cannot see.
//
// Knobs (env): SSA_SERVE_N (advertisers, default 10000),
// SSA_SERVE_AUCTIONS (measured auctions per config, default 500),
// SSA_SERVE_WARMUP (default 50), SSA_SERVE_PRODUCERS (default 2),
// SSA_SEED, SSA_SERVE_QUICK=1 (CI smoke: tiny population and counts).
// Flags: --json[=path] appends a machine-readable report (to stdout or
// `path`) after the human-readable tables.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "serving/auction_server.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ssa {
namespace bench {
namespace {

using std::chrono::duration;
using std::chrono::microseconds;
using std::chrono::steady_clock;

struct LoadResult {
  double qps = 0;          // completed / measured wall time
  double offered_qps = 0;  // open loop only: submissions / wall time
  int64_t completed = 0;
  int64_t rejected = 0;
  uint64_t queue_p50 = 0, queue_p95 = 0, queue_p99 = 0;
  uint64_t e2e_p50 = 0, e2e_p95 = 0, e2e_p99 = 0;
};

struct ServeSetup {
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<AuctionServer> server;
};

ServeSetup MakeServer(int n, int shards, int batch, ServingMode mode,
                      BackpressurePolicy policy, uint64_t seed,
                      int lanes = 0, bool metrics = true,
                      uint32_t trace_every = 0) {
  ServeSetup setup;
  if (shards > 1) setup.pool = std::make_unique<ThreadPool>(shards);
  ServerConfig config;
  config.engine.engine.seed = seed + 1;
  config.engine.num_shards = shards;
  config.engine.pool = setup.pool.get();
  config.queue_capacity = 1024;
  config.backpressure = policy;
  config.max_batch_size = batch;
  config.batch_deadline = microseconds(200);
  config.mode = mode;
  config.num_plan_lanes = lanes;
  config.obs.metrics = metrics;
  config.obs.trace.sample_every = trace_every;
  Workload workload = PaperWorkload(n, seed);
  auto strategies = RoiStrategies(workload);
  setup.server = std::make_unique<AuctionServer>(config, std::move(workload),
                                                 std::move(strategies));
  setup.server->Start();
  return setup;
}

/// Submits `count` queries and blocks until the server settled all of them.
void SubmitAndDrain(AuctionServer* server, QueryGenerator* gen, int count) {
  const int64_t target = server->completed() + count;
  for (int i = 0; i < count; ++i) server->Submit(gen->Next());
  while (server->completed() < target) {
    std::this_thread::sleep_for(microseconds(200));
  }
}

void FillPercentiles(const AuctionServer& server, LoadResult* r) {
  r->queue_p50 = server.queue_wait_us().Percentile(50);
  r->queue_p95 = server.queue_wait_us().Percentile(95);
  r->queue_p99 = server.queue_wait_us().Percentile(99);
  r->e2e_p50 = server.end_to_end_us().Percentile(50);
  r->e2e_p95 = server.end_to_end_us().Percentile(95);
  r->e2e_p99 = server.end_to_end_us().Percentile(99);
}

LoadResult RunClosedLoop(int n, int shards, int batch, ServingMode mode,
                         int producers, int warmup, int auctions,
                         uint64_t seed, int lanes = 0, bool metrics = true,
                         uint32_t trace_every = 0,
                         std::string* metrics_json = nullptr) {
  ServeSetup setup =
      MakeServer(n, shards, batch, mode, BackpressurePolicy::kBlock, seed,
                 lanes, metrics, trace_every);
  AuctionServer& server = *setup.server;
  QueryGenerator warmup_gen(10, seed + 2);
  SubmitAndDrain(&server, &warmup_gen, warmup);
  server.ResetTelemetry();

  const int64_t completed_before = server.completed();
  const auto start = steady_clock::now();
  std::vector<std::thread> threads;
  const int per_producer = auctions / producers;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&server, p, per_producer, seed] {
      QueryGenerator gen(10, seed + 100 + p);
      for (int i = 0; i < per_producer; ++i) server.Submit(gen.Next());
    });
  }
  for (auto& t : threads) t.join();
  const int64_t target = completed_before + int64_t{producers} * per_producer;
  while (server.completed() < target) {
    std::this_thread::sleep_for(microseconds(200));
  }
  const double elapsed = duration<double>(steady_clock::now() - start).count();

  LoadResult r;
  r.completed = server.completed() - completed_before;
  r.qps = static_cast<double>(r.completed) / elapsed;
  FillPercentiles(server, &r);
  server.Stop();
  if (metrics_json != nullptr) {
    // Stop() published the terminal engine/log gauges: this snapshot is the
    // unified registry view of the whole run.
    *metrics_json = ExportMetricsJson(server.metrics().Snapshot());
  }
  return r;
}

LoadResult RunOpenLoop(int n, int shards, int batch, double rate_qps,
                       int warmup, int auctions, uint64_t seed,
                       int lanes = 0) {
  ServeSetup setup =
      MakeServer(n, shards, batch, ServingMode::kBatchedSettlement,
                 BackpressurePolicy::kReject, seed, lanes);
  AuctionServer& server = *setup.server;
  QueryGenerator warmup_gen(10, seed + 2);
  SubmitAndDrain(&server, &warmup_gen, warmup);
  server.ResetTelemetry();

  const int64_t completed_before = server.completed();
  const int64_t rejected_before = server.rejected();
  QueryGenerator gen(10, seed + 3);
  Rng arrivals(seed + 4);
  const auto start = steady_clock::now();
  auto next_arrival = start;
  for (int i = 0; i < auctions; ++i) {
    // Exponential inter-arrival: a Poisson process at rate_qps.
    const double gap_s =
        -std::log(1.0 - arrivals.NextDouble()) / rate_qps;
    next_arrival += microseconds(static_cast<int64_t>(gap_s * 1e6));
    std::this_thread::sleep_until(next_arrival);
    server.Submit(gen.Next());
  }
  const double offered_elapsed =
      duration<double>(steady_clock::now() - start).count();
  // Drain what was admitted.
  const int64_t admitted =
      auctions - (server.rejected() - rejected_before);
  while (server.completed() - completed_before < admitted) {
    std::this_thread::sleep_for(microseconds(200));
  }
  const double elapsed = duration<double>(steady_clock::now() - start).count();

  LoadResult r;
  r.completed = server.completed() - completed_before;
  r.rejected = server.rejected() - rejected_before;
  r.offered_qps = static_cast<double>(auctions) / offered_elapsed;
  r.qps = static_cast<double>(r.completed) / elapsed;
  FillPercentiles(server, &r);
  server.Stop();
  return r;
}

const char* ModeName(ServingMode mode) {
  return mode == ServingMode::kDeterministicReplay ? "replay" : "batched";
}

/// One measured configuration, for the optional JSON report.
struct JsonRow {
  std::string section;  // "closed_loop" | "lane_sweep" | "open_loop"
  std::string label;    // mode or load label
  int lanes = 0;
  int shards = 0;
  int batch = 0;
  LoadResult r;
};

void WriteJson(std::FILE* f, int n, int auctions, int producers,
               const std::vector<JsonRow>& rows,
               const std::string& metrics_json) {
  std::fprintf(f, "{\n  \"bench\": \"bench_serving\",\n");
  std::fprintf(f, "  \"n\": %d,\n  \"auctions\": %d,\n  \"producers\": %d,\n",
               n, auctions, producers);
  if (!metrics_json.empty()) {
    // Unified registry snapshot (serving + engine + durability telemetry)
    // from the fully-instrumented obs_overhead run.
    std::fprintf(f, "  \"metrics\": %s,\n", metrics_json.c_str());
  }
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"section\": \"%s\", \"label\": \"%s\", \"lanes\": %d, "
        "\"shards\": %d, \"batch\": %d,\n"
        "     \"qps\": %.1f, \"offered_qps\": %.1f, \"completed\": %lld, "
        "\"rejected\": %lld,\n"
        "     \"queue_us\": {\"p50\": %llu, \"p95\": %llu, \"p99\": %llu},\n"
        "     \"e2e_us\": {\"p50\": %llu, \"p95\": %llu, \"p99\": %llu}}%s\n",
        row.section.c_str(), row.label.c_str(), row.lanes, row.shards,
        row.batch, row.r.qps, row.r.offered_qps,
        static_cast<long long>(row.r.completed),
        static_cast<long long>(row.r.rejected),
        static_cast<unsigned long long>(row.r.queue_p50),
        static_cast<unsigned long long>(row.r.queue_p95),
        static_cast<unsigned long long>(row.r.queue_p99),
        static_cast<unsigned long long>(row.r.e2e_p50),
        static_cast<unsigned long long>(row.r.e2e_p95),
        static_cast<unsigned long long>(row.r.e2e_p99),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

void PrintRow(const char* label, int shards, int batch, const LoadResult& r) {
  std::printf("%-10s %6d %6d %9.1f %8lld %8lld %8lld %8lld %8lld %8lld\n",
              label, shards, batch, r.qps,
              static_cast<long long>(r.queue_p50),
              static_cast<long long>(r.queue_p95),
              static_cast<long long>(r.queue_p99),
              static_cast<long long>(r.e2e_p50),
              static_cast<long long>(r.e2e_p95),
              static_cast<long long>(r.e2e_p99));
}

int Main(int argc, char** argv) {
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s (supported: --json[=path])\n",
                   argv[i]);
      return 2;
    }
  }
  std::vector<JsonRow> json_rows;

  const bool quick = EnvInt("SSA_SERVE_QUICK", 0) != 0;
  const int n = static_cast<int>(EnvInt("SSA_SERVE_N", quick ? 500 : 10000));
  const int auctions =
      static_cast<int>(EnvInt("SSA_SERVE_AUCTIONS", quick ? 120 : 500));
  const int warmup =
      static_cast<int>(EnvInt("SSA_SERVE_WARMUP", quick ? 20 : 50));
  const int producers = static_cast<int>(EnvInt("SSA_SERVE_PRODUCERS", 2));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("SSA_SEED", 1));

  std::printf("# Serving load: n=%d advertisers, %d measured auctions per "
              "config, %d warmup, %d producers\n",
              n, auctions, warmup, producers);
  std::printf("# latencies in microseconds (log-bucketed histogram, <=6.25%% "
              "relative error)\n\n");

  // --- Closed loop: engine-bound ceiling per shards x batch x mode.
  std::printf("## Closed loop (kBlock backpressure)\n");
  std::printf("%-10s %6s %6s %9s %8s %8s %8s %8s %8s %8s\n", "mode",
              "shards", "batch", "qps", "qw_p50", "qw_p95", "qw_p99",
              "e2e_p50", "e2e_p95", "e2e_p99");
  const std::vector<int> shard_sweep = quick ? std::vector<int>{1}
                                             : std::vector<int>{1, 4, 8};
  const std::vector<int> batch_sweep =
      quick ? std::vector<int>{8} : std::vector<int>{1, 16};
  double reference_qps = 0;
  for (int shards : shard_sweep) {
    for (int batch : batch_sweep) {
      const LoadResult r =
          RunClosedLoop(n, shards, batch, ServingMode::kDeterministicReplay,
                        producers, warmup, auctions, seed);
      PrintRow(ModeName(ServingMode::kDeterministicReplay), shards, batch, r);
      json_rows.push_back({"closed_loop",
                           ModeName(ServingMode::kDeterministicReplay), 0,
                           shards, batch, r});
      reference_qps = std::max(reference_qps, r.qps);
    }
  }
  {
    const int shards = quick ? 1 : 4;
    const int batch = quick ? 8 : 16;
    const LoadResult r =
        RunClosedLoop(n, shards, batch, ServingMode::kBatchedSettlement,
                      producers, warmup, auctions, seed);
    PrintRow(ModeName(ServingMode::kBatchedSettlement), shards, batch, r);
    json_rows.push_back({"closed_loop",
                         ModeName(ServingMode::kBatchedSettlement), 0, shards,
                         batch, r});
    reference_qps = std::max(reference_qps, r.qps);
  }

  // --- Planning-lane sweep: replicate the pure planning half across E lane
  // workers (batched settlement, fixed shards/batch). E=0 is the in-thread
  // executor baseline. On a single-core host this measures the pipeline's
  // coordination overhead, not its speedup — the lane scaling is designed
  // for multi-core hosts; values are E-invariant either way.
  std::printf("\n## Planning-lane sweep (closed loop, batched settlement)\n");
  std::printf("%-10s %6s %6s %6s %9s %8s %8s %8s %8s %8s %8s\n", "mode",
              "lanes", "shards", "batch", "qps", "qw_p50", "qw_p95",
              "qw_p99", "e2e_p50", "e2e_p95", "e2e_p99");
  const int lane_shards = 1;  // isolate lanes from shard-pool effects
  const int lane_batch = quick ? 8 : 16;
  const std::vector<int> lane_sweep =
      quick ? std::vector<int>{0, 2} : std::vector<int>{0, 1, 2, 4, 8};
  int best_lanes = 0;
  double best_lane_qps = 0;
  for (int lanes : lane_sweep) {
    const LoadResult r = RunClosedLoop(
        n, lane_shards, lane_batch, ServingMode::kBatchedSettlement,
        producers, warmup, auctions, seed, lanes);
    std::printf("%-10s %6d %6d %6d %9.1f %8lld %8lld %8lld %8lld %8lld "
                "%8lld\n",
                "batched", lanes, lane_shards, lane_batch, r.qps,
                static_cast<long long>(r.queue_p50),
                static_cast<long long>(r.queue_p95),
                static_cast<long long>(r.queue_p99),
                static_cast<long long>(r.e2e_p50),
                static_cast<long long>(r.e2e_p95),
                static_cast<long long>(r.e2e_p99));
    json_rows.push_back({"lane_sweep", "batched", lanes, lane_shards,
                         lane_batch, r});
    if (r.qps > best_lane_qps) {
      best_lane_qps = r.qps;
      best_lanes = lanes;
    }
  }

  // --- Observability overhead: the same closed-loop replay config with
  // instrumentation off, metrics only, and metrics + tracing at 1-in-64 and
  // full sampling. Lanes are on so the barrier-wait and per-shard span
  // instrumentation is actually exercised. The contract: metrics + 1-in-64
  // tracing must be cheap enough to leave on in production (~2% of the
  // uninstrumented ceiling; single-run qps noise on a shared host can
  // exceed that, which is why the row reports the measured delta).
  std::printf("\n## Observability overhead (closed loop, replay)\n");
  std::printf("%-12s %6s %6s %6s %9s %9s %8s %8s\n", "obs", "lanes",
              "shards", "batch", "qps", "delta%", "e2e_p50", "e2e_p99");
  const int obs_shards = quick ? 1 : 4;
  const int obs_batch = quick ? 8 : 16;
  const int obs_lanes = 2;
  struct ObsCase {
    const char* label;
    bool metrics;
    uint32_t trace_every;
  };
  const ObsCase obs_cases[] = {
      {"off", false, 0},
      {"metrics", true, 0},
      {"trace_1in64", true, 64},
      {"trace_full", true, 1},
  };
  // Interleaved best-of-R: host-frequency drift between sittings swamps a
  // ~2% effect in any single sample, so each case runs R times round-robin
  // (drift hits every case equally) and the best run represents it.
  const int obs_reps = quick ? 1 : 3;
  constexpr int kObsCases = 4;
  std::string metrics_json;
  LoadResult obs_best[kObsCases];
  for (int rep = 0; rep < obs_reps; ++rep) {
    for (int i = 0; i < kObsCases; ++i) {
      const ObsCase& c = obs_cases[i];
      // Keep the unified registry snapshot from the recommended production
      // configuration (metrics + 1-in-64 tracing) for the JSON report.
      std::string* sink =
          std::strcmp(c.label, "trace_1in64") == 0 ? &metrics_json : nullptr;
      const LoadResult r = RunClosedLoop(
          n, obs_shards, obs_batch, ServingMode::kDeterministicReplay,
          producers, warmup, auctions, seed, obs_lanes, c.metrics,
          c.trace_every, sink);
      if (r.qps > obs_best[i].qps) obs_best[i] = r;
    }
  }
  const double obs_off_qps = obs_best[0].qps;
  for (int i = 0; i < kObsCases; ++i) {
    const LoadResult& r = obs_best[i];
    const double delta = 100.0 * (obs_off_qps - r.qps) / obs_off_qps;
    std::printf("%-12s %6d %6d %6d %9.1f %9.2f %8lld %8lld\n",
                obs_cases[i].label, obs_lanes, obs_shards, obs_batch, r.qps,
                delta, static_cast<long long>(r.e2e_p50),
                static_cast<long long>(r.e2e_p99));
    json_rows.push_back({"obs_overhead", obs_cases[i].label, obs_lanes,
                         obs_shards, obs_batch, r});
  }

  // --- Open loop: Poisson arrivals around the measured ceiling.
  std::printf("\n## Open loop (Poisson arrivals, kReject, batched "
              "settlement; rates relative to the %.1f qps ceiling)\n",
              reference_qps);
  std::printf("%-10s %6s %6s %6s %9s %9s %7s %8s %8s %8s %8s\n", "load",
              "lanes", "shards", "batch", "offered", "qps", "shed%",
              "qw_p50", "qw_p95", "qw_p99", "e2e_p99");
  const int shards = quick ? 1 : 4;
  const int batch = quick ? 8 : 16;
  const std::vector<double> load_factors =
      quick ? std::vector<double>{0.5} : std::vector<double>{0.5, 0.8, 1.2};
  auto print_open = [&](const char* label, int lanes, int row_shards,
                        const LoadResult& r) {
    const double shed =
        100.0 * static_cast<double>(r.rejected) /
        static_cast<double>(r.completed + r.rejected);
    std::printf("%-10s %6d %6d %6d %9.1f %9.1f %7.2f %8lld %8lld %8lld "
                "%8lld\n",
                label, lanes, row_shards, batch, r.offered_qps, r.qps, shed,
                static_cast<long long>(r.queue_p50),
                static_cast<long long>(r.queue_p95),
                static_cast<long long>(r.queue_p99),
                static_cast<long long>(r.e2e_p99));
  };
  for (double factor : load_factors) {
    const double rate = std::max(1.0, factor * reference_qps);
    const LoadResult r =
        RunOpenLoop(n, shards, batch, rate, warmup, auctions, seed);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1fx", factor);
    print_open(label, 0, shards, r);
    json_rows.push_back({"open_loop", label, 0, shards, batch, r});
  }
  // The best lane count from the sweep under the same near-saturation load:
  // does pipelined planning move the open-loop tail?
  {
    const double rate = std::max(1.0, 0.8 * reference_qps);
    const LoadResult r = RunOpenLoop(n, lane_shards, lane_batch, rate,
                                     warmup, auctions, seed, best_lanes);
    char label[32];
    std::snprintf(label, sizeof(label), "0.8xE%d", best_lanes);
    print_open(label, best_lanes, lane_shards, r);
    json_rows.push_back({"open_loop", label, best_lanes, lane_shards,
                         lane_batch, r});
  }

  if (json) {
    std::FILE* f = json_path.empty() ? stdout
                                     : std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    if (!json_path.empty()) {
      std::printf("\nJSON report written to %s\n", json_path.c_str());
    } else {
      std::printf("\n");
    }
    WriteJson(f, n, auctions, producers, json_rows, metrics_json);
    if (!json_path.empty()) std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ssa

int main(int argc, char** argv) { return ssa::bench::Main(argc, argv); }
