// Ablation G: bidding-program evaluation cost — native C++ RoiStrategy
// versus the interpreted Figure 5 program (Section II-B language). The
// interpreter's per-auction cost motivates both Section IV (evaluate fewer
// programs) and compiling hot strategies natively.

#include <memory>

#include <benchmark/benchmark.h>

#include "strategy/program_strategy.h"
#include "strategy/roi_strategy.h"
#include "util/rng.h"

namespace ssa {
namespace {

constexpr const char kEqualizeRoi[] = R"sql(
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent < targetSpendRate * time THEN
    UPDATE Keywords SET bid = bid + 1
    WHERE roi = ( SELECT MAX( K.roi ) FROM Keywords K )
      AND relevance > 0 AND bid < maxbid;
  ELSEIF amtSpent > targetSpendRate * time THEN
    UPDATE Keywords SET bid = bid - 1
    WHERE roi = ( SELECT MIN( K.roi ) FROM Keywords K )
      AND relevance > 0 AND bid > 0;
  ENDIF;
  UPDATE Bids SET value =
    ( SELECT SUM( K.bid ) FROM Keywords K
      WHERE K.relevance > 0.7 AND K.formula = Bids.formula );
}
)sql";

constexpr int kKeywords = 10;

AdvertiserAccount MakeAccount(Rng& rng) {
  AdvertiserAccount a;
  a.value_per_click.resize(kKeywords);
  for (auto& v : a.value_per_click) {
    v = static_cast<Money>(rng.UniformInt(1, 50));
  }
  a.max_bid = a.value_per_click;
  a.value_gained.assign(kKeywords, 0.0);
  a.spent_per_keyword.assign(kKeywords, 0.0);
  a.target_spend_rate = rng.Uniform(1.0, 50.0);
  return a;
}

Query MakeQuery(Rng& rng, int64_t time) {
  Query q;
  q.keyword = static_cast<int>(rng.NextBounded(kKeywords));
  q.time = time;
  q.relevance.assign(kKeywords, 0.0);
  q.relevance[q.keyword] = 1.0;
  return q;
}

void BM_NativeRoiStrategy(benchmark::State& state) {
  Rng rng(1);
  AdvertiserAccount account = MakeAccount(rng);
  RoiStrategy strategy(std::vector<Formula>(kKeywords, Formula::Click()));
  BidsTable bids;
  int64_t t = 0;
  for (auto _ : state) {
    bids.Clear();
    strategy.MakeBids(MakeQuery(rng, ++t), account, &bids);
    benchmark::DoNotOptimize(bids);
  }
}
BENCHMARK(BM_NativeRoiStrategy);

void BM_InterpretedRoiProgram(benchmark::State& state) {
  Rng rng(1);
  AdvertiserAccount account = MakeAccount(rng);
  std::vector<ProgramStrategy::KeywordSpec> specs;
  for (int kw = 0; kw < kKeywords; ++kw) {
    specs.push_back({"kw" + std::to_string(kw), Formula::Click()});
  }
  auto strategy = ProgramStrategy::Create(kEqualizeRoi, specs);
  SSA_CHECK(strategy.ok());
  BidsTable bids;
  int64_t t = 0;
  for (auto _ : state) {
    bids.Clear();
    (*strategy)->MakeBids(MakeQuery(rng, ++t), account, &bids);
    benchmark::DoNotOptimize(bids);
  }
}
BENCHMARK(BM_InterpretedRoiProgram);

void BM_ProgramParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::ParseProgram(kEqualizeRoi));
  }
}
BENCHMARK(BM_ProgramParseOnly);

}  // namespace
}  // namespace ssa
