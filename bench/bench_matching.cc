// Ablation B: the two halves of the paper's RH bound O(nk log k + k^5) —
// per-slot top-k selection versus matching kernels — and the baselines.
// Shows (i) the classical cover-based Munkres ("H") scaling super-linearly
// in n, (ii) the JV kernel on the full graph, (iii) selection + reduced JV
// (the RH composition), and (iv) the selection step alone.

#include <benchmark/benchmark.h>

#include "core/winner_determination.h"
#include "matching/hungarian.h"
#include "matching/munkres.h"
#include "test_util_bench.h"

namespace ssa {
namespace {

constexpr int kSlots = 15;

void BM_MunkresFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const RevenueMatrix m = bench_util::RandomRevenue(n, kSlots, rng);
  const std::vector<double> w = MarginalWeights(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MunkresMatching(w, n, kSlots));
  }
}
BENCHMARK(BM_MunkresFull)->RangeMultiplier(2)->Range(250, 16000);

void BM_JvFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const RevenueMatrix m = bench_util::RandomRevenue(n, kSlots, rng);
  const std::vector<double> w = MarginalWeights(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightMatchingDense(w, n, kSlots));
  }
}
BENCHMARK(BM_JvFull)->RangeMultiplier(2)->Range(250, 16000);

void BM_TopKSelection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const RevenueMatrix m = bench_util::RandomRevenue(n, kSlots, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectTopPerSlotCandidates(m, kSlots));
  }
}
BENCHMARK(BM_TopKSelection)->RangeMultiplier(2)->Range(250, 16000);

void BM_ReducedHungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const RevenueMatrix m = bench_util::RandomRevenue(n, kSlots, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetermineWinners(m, WdMethod::kReducedHungarian));
  }
}
BENCHMARK(BM_ReducedHungarian)->RangeMultiplier(2)->Range(250, 16000);

// The k^5-ish root cost in isolation: reduced graph of k^2 candidates.
void BM_ReducedKernelOnly(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(2);
  const int m = k * k;
  std::vector<double> w(static_cast<size_t>(m) * k);
  for (double& x : w) x = rng.Uniform(0.0, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxWeightMatchingDense(w, m, k));
  }
}
BENCHMARK(BM_ReducedKernelOnly)->DenseRange(5, 25, 5);

}  // namespace
}  // namespace ssa
