#ifndef SSA_BENCH_BENCH_COMMON_H_
#define SSA_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "auction/auction_engine.h"
#include "strategy/roi_strategy.h"

namespace ssa {
namespace bench {

/// Environment-variable override with a default (benchmark knobs).
inline int64_t EnvInt(const char* name, int64_t default_value) {
  const char* v = std::getenv(name);
  return v == nullptr ? default_value : std::atoll(v);
}

/// The Section V population: every advertiser runs the ROI heuristic.
inline std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  strategies.reserve(workload.config.num_advertisers);
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

/// Builds the paper's workload (15 slots, 10 keywords) with n advertisers.
inline Workload PaperWorkload(int n, uint64_t seed) {
  WorkloadConfig config;
  config.num_advertisers = n;
  config.seed = seed;
  return MakePaperWorkload(config);
}

/// Average provider-side processing time per auction over `measured`
/// auctions after `warmup` unmeasured ones (the bid dynamics need to ramp
/// before timings are representative).
inline double AverageAuctionMs(AuctionEngine& engine, int warmup,
                               int measured) {
  for (int t = 0; t < warmup; ++t) engine.RunAuction();
  double total = 0;
  for (int t = 0; t < measured; ++t) {
    total += engine.RunAuction().ProcessingMs();
  }
  return total / measured;
}

}  // namespace bench
}  // namespace ssa

#endif  // SSA_BENCH_BENCH_COMMON_H_
