// Ablation C: the Section III-F heavyweight solver — O(2^k (n log k + k^5))
// serial versus the "2^k processing units" thread-pool parallelization.
// Sweeps k (the 2^k term dominates) at fixed n.

#include <memory>

#include <benchmark/benchmark.h>

#include "core/heavyweight.h"
#include "util/thread_pool.h"

namespace ssa {
namespace {

struct Setup {
  std::vector<BidsTable> bids;
  std::vector<bool> is_heavy;
  std::unique_ptr<ShadowHeavyClickModel> model;
};

Setup MakeSetup(int n, int k) {
  Rng rng(17);
  Setup s;
  auto base = std::make_shared<MatrixClickModel>(
      MakeSlotIntervalClickModel(n, k, rng));
  s.is_heavy.resize(n);
  for (int i = 0; i < n; ++i) s.is_heavy[i] = rng.Bernoulli(0.2);
  s.model = std::make_unique<ShadowHeavyClickModel>(base, s.is_heavy, 0.5,
                                                    0.15);
  s.bids.resize(n);
  for (int i = 0; i < n; ++i) {
    s.bids[i].AddBid(Formula::Click(),
                     static_cast<Money>(rng.UniformInt(1, 50)));
  }
  return s;
}

void BM_HeavySerial(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Setup s = MakeSetup(200, k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetermineWinnersHeavy(s.bids, *s.model, s.is_heavy));
  }
}
BENCHMARK(BM_HeavySerial)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

void BM_HeavyPooled(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Setup s = MakeSetup(200, k);
  static ThreadPool* pool = new ThreadPool(
      std::max(2u, std::thread::hardware_concurrency()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetermineWinnersHeavy(s.bids, *s.model, s.is_heavy, pool));
  }
}
BENCHMARK(BM_HeavyPooled)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

// n-scaling at fixed k: confirms the per-mask cost stays near-linear in n.
void BM_HeavySerialN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Setup s = MakeSetup(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetermineWinnersHeavy(s.bids, *s.model, s.is_heavy));
  }
}
BENCHMARK(BM_HeavySerialN)->RangeMultiplier(4)->Range(100, 6400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssa
