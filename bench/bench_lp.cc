// Ablation F: the LP baseline in isolation — dense-tableau simplex on the
// assignment polytope (the GLPK substitute). Quantifies why the LP curve in
// Figure 12 is capped: cost grows superlinearly with both tableau area and
// iteration count. Counters report simplex iterations per solve.

#include <benchmark/benchmark.h>

#include "core/winner_determination.h"
#include "lp/assignment_lp.h"
#include "lp/simplex.h"
#include "test_util_bench.h"

namespace ssa {
namespace {

void BM_AssignmentLpSimplex(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 15;
  Rng rng(3);
  const RevenueMatrix m = bench_util::RandomRevenue(n, k, rng);
  const std::vector<double> w = MarginalWeights(m);
  int64_t iterations = 0;
  int64_t solves = 0;
  for (auto _ : state) {
    const LpProblem lp = BuildAssignmentLp(w, n, k);
    auto sol = SolveLpMax(lp);
    benchmark::DoNotOptimize(sol);
    iterations += sol.ok() ? sol->iterations : 0;
    ++solves;
  }
  state.counters["simplex_iters"] =
      benchmark::Counter(static_cast<double>(iterations) / solves);
}
BENCHMARK(BM_AssignmentLpSimplex)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_JvSameInstance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 15;
  Rng rng(3);
  const RevenueMatrix m = bench_util::RandomRevenue(n, k, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DetermineWinners(m, WdMethod::kReducedHungarian));
  }
}
BENCHMARK(BM_JvSameInstance)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ssa
