#include <gtest/gtest.h>

#include "core/expected_revenue.h"

namespace ssa {
namespace {

// One advertiser, two slots; click 0.5 / 0.2; purchase-given-click 0.4 / 0.1.
MatrixClickModel TinyModel() {
  return MatrixClickModel(1, 2, {0.5, 0.2}, {0.4, 0.1});
}

TEST(ExpectedRevenueTest, ClickBid) {
  MatrixClickModel model = TinyModel();
  BidsTable bids;
  bids.AddBid(Formula::Click(), 10);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, kNoSlot), 0.0);
}

TEST(ExpectedRevenueTest, PurchaseBid) {
  MatrixClickModel model = TinyModel();
  BidsTable bids;
  bids.AddBid(Formula::Purchase(), 100);
  // P(purchase | slot 0) = 0.5 * 0.4 = 0.2.
  EXPECT_NEAR(ExpectedPayment(bids, model, 0, 0), 20.0, 1e-12);
  EXPECT_NEAR(ExpectedPayment(bids, model, 0, 1), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, kNoSlot), 0.0);
}

TEST(ExpectedRevenueTest, SlotOnlyBidIsDeterministicGivenSlot) {
  MatrixClickModel model = TinyModel();
  BidsTable bids;
  bids.AddBid(Formula::Slot(1), 7);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 1), 7.0);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, kNoSlot), 0.0);
}

TEST(ExpectedRevenueTest, NegatedSlotBidPaysWhenUnassigned) {
  // "Top slot or nothing": pays when unassigned too — the baseline r(⊥).
  MatrixClickModel model = TinyModel();
  BidsTable bids;
  bids.AddBid(!Formula::AnySlot({0, 1}) || Formula::Slot(0), 9);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 0), 9.0);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, kNoSlot), 9.0);
}

TEST(ExpectedRevenueTest, OrBidRowsAdd) {
  MatrixClickModel model = TinyModel();
  BidsTable bids;
  bids.AddBid(Formula::Click(), 10);    // 5.0 in slot 0
  bids.AddBid(Formula::Purchase(), 100);  // 20.0 in slot 0
  EXPECT_NEAR(ExpectedPayment(bids, model, 0, 0), 25.0, 1e-12);
}

TEST(ExpectedRevenueTest, ConjunctionClickAndSlot) {
  MatrixClickModel model = TinyModel();
  BidsTable bids;
  bids.AddBid(Formula::Click() && Formula::Slot(0), 10);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 0), 5.0);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 1), 0.0);
}

TEST(ExpectedRevenueTest, BuildMatrixAndMarginals) {
  MatrixClickModel model(2, 2, {0.5, 0.2, 0.4, 0.1});
  std::vector<BidsTable> bids(2);
  bids[0].AddBid(Formula::Click(), 10);
  // Advertiser 1 prefers not to be shown unless in the top slot.
  bids[1].AddBid(Formula::Slot(0) || !Formula::AnySlot({0, 1}), 6);

  RevenueMatrix m = BuildRevenueMatrix(bids, model);
  EXPECT_EQ(m.num_advertisers(), 2);
  EXPECT_EQ(m.num_slots(), 2);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.AtUnassigned(0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.AtUnassigned(1), 6.0);

  // Marginal weights: advertiser 1 in slot 1 *loses* 6 vs staying out.
  EXPECT_DOUBLE_EQ(m.MarginalWeight(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.MarginalWeight(1, 1), -6.0);
  EXPECT_DOUBLE_EQ(m.UnassignedTotal(), 6.0);
}

TEST(ExpectedRevenueTest, TrueFormulaAlwaysPays) {
  MatrixClickModel model = TinyModel();
  BidsTable bids;
  bids.AddBid(Formula::True(), 3);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(ExpectedPayment(bids, model, 0, kNoSlot), 3.0);
}

TEST(ExpectedRevenueTest, PurchaseGivenNoClickPath) {
  // Custom model where purchases can happen without a click.
  class NoClickPurchaseModel : public ClickModel {
   public:
    int num_advertisers() const override { return 1; }
    int num_slots() const override { return 1; }
    double ClickProbability(AdvertiserId, SlotIndex) const override {
      return 0.5;
    }
    double PurchaseProbabilityGivenClick(AdvertiserId,
                                         SlotIndex) const override {
      return 0.0;
    }
    double PurchaseProbabilityGivenNoClick(AdvertiserId,
                                           SlotIndex) const override {
      return 0.2;
    }
  };
  NoClickPurchaseModel model;
  BidsTable bids;
  bids.AddBid(Formula::Purchase(), 10);
  // P(purchase) = 0.5*0 + 0.5*0.2 = 0.1.
  EXPECT_NEAR(ExpectedPayment(bids, model, 0, 0), 1.0, 1e-12);
}

}  // namespace
}  // namespace ssa
