#include <gtest/gtest.h>

#include "strategy/roi_strategy.h"

namespace ssa {
namespace {

AdvertiserAccount MakeAccount(std::vector<Money> values, double rate) {
  AdvertiserAccount a;
  a.value_per_click = values;
  a.max_bid = values;
  a.value_gained.assign(values.size(), 0.0);
  a.spent_per_keyword.assign(values.size(), 0.0);
  a.target_spend_rate = rate;
  return a;
}

Query MakeQuery(int kw, int64_t time, int num_keywords) {
  Query q;
  q.keyword = kw;
  q.time = time;
  q.relevance.assign(num_keywords, 0.0);
  q.relevance[kw] = 1.0;
  return q;
}

TEST(RoiStrategyTest, UnderspendingRampsQueriedKeyword) {
  AdvertiserAccount account = MakeAccount({10, 20}, 5.0);
  RoiStrategy strategy({Formula::Click(), Formula::Click()});
  BidsTable bids;
  for (int64_t t = 1; t <= 3; ++t) {
    bids.Clear();
    strategy.MakeBids(MakeQuery(0, t, 2), account, &bids);
  }
  // Spent stays 0 (never charged) -> underspending every auction; all ROIs
  // are 0 so every keyword is argmax; only the queried keyword moves.
  EXPECT_DOUBLE_EQ(strategy.tentative_bids()[0], 3.0);
  EXPECT_DOUBLE_EQ(strategy.tentative_bids()[1], 0.0);
}

TEST(RoiStrategyTest, BidCapsAtMaxBid) {
  AdvertiserAccount account = MakeAccount({2, 5}, 10.0);
  RoiStrategy strategy({Formula::Click(), Formula::Click()});
  BidsTable bids;
  for (int64_t t = 1; t <= 10; ++t) {
    bids.Clear();
    strategy.MakeBids(MakeQuery(0, t, 2), account, &bids);
  }
  EXPECT_DOUBLE_EQ(strategy.tentative_bids()[0], 2.0);  // capped at max_bid
}

TEST(RoiStrategyTest, OverspendingDecrementsMinRoiKeyword) {
  AdvertiserAccount account = MakeAccount({10, 10}, 1.0);
  RoiStrategy strategy({Formula::Click(), Formula::Click()});
  BidsTable bids;
  // Ramp keyword 0 for two auctions while underspending.
  strategy.MakeBids(MakeQuery(0, 1, 2), account, &bids);
  bids.Clear();
  strategy.MakeBids(MakeQuery(0, 2, 2), account, &bids);
  EXPECT_DOUBLE_EQ(strategy.tentative_bids()[0], 2.0);

  // Now the advertiser is massively overspending; keyword 0 has roi 0.5
  // (gained 5, spent 10), keyword 1 roi 0 => keyword 1 is argmin; querying
  // keyword 0 must NOT decrement it (it is not the argmin).
  account.amount_spent = 100.0;
  account.spent_per_keyword[0] = 10.0;
  account.value_gained[0] = 5.0;
  bids.Clear();
  strategy.MakeBids(MakeQuery(0, 3, 2), account, &bids);
  EXPECT_DOUBLE_EQ(strategy.tentative_bids()[0], 2.0);

  // Querying keyword 1 (argmin, but bid already 0) cannot go negative.
  bids.Clear();
  strategy.MakeBids(MakeQuery(1, 4, 2), account, &bids);
  EXPECT_DOUBLE_EQ(strategy.tentative_bids()[1], 0.0);

  // Make keyword 0 the argmin: now a query on it decrements.
  account.value_gained[0] = 0.0;
  account.spent_per_keyword[0] = 10.0;  // roi 0 == keyword 1's roi (tie: both argmin)
  bids.Clear();
  strategy.MakeBids(MakeQuery(0, 5, 2), account, &bids);
  EXPECT_DOUBLE_EQ(strategy.tentative_bids()[0], 1.0);
}

TEST(RoiStrategyTest, NeitherBranchWhenExactlyOnTarget) {
  AdvertiserAccount account = MakeAccount({10}, 2.0);
  account.amount_spent = 2.0;  // exactly rate * time at t = 1
  RoiStrategy strategy({Formula::Click()});
  BidsTable bids;
  strategy.MakeBids(MakeQuery(0, 1, 1), account, &bids);
  EXPECT_DOUBLE_EQ(strategy.tentative_bids()[0], 0.0);
}

TEST(RoiStrategyTest, EmitsQueriedKeywordRowOnly) {
  AdvertiserAccount account = MakeAccount({10, 20}, 5.0);
  RoiStrategy strategy({Formula::Click(), Formula::Click() && Formula::Slot(0)});
  BidsTable bids;
  strategy.MakeBids(MakeQuery(1, 1, 2), account, &bids);
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_TRUE(bids.rows()[0].formula.StructurallyEquals(
      Formula::Click() && Formula::Slot(0)));
  EXPECT_DOUBLE_EQ(bids.rows()[0].value, 1.0);
}

TEST(RoiStrategyTest, SharedFormulaRowsSum) {
  // Two keywords with the same formula and relevance > 0.7: values sum into
  // a single row (lines 22-27 of Figure 5).
  AdvertiserAccount account = MakeAccount({10, 10}, 5.0);
  RoiStrategy strategy({Formula::Click(), Formula::Click()});
  Query q = MakeQuery(0, 1, 2);
  q.relevance[1] = 0.9;  // both keywords relevant this time
  BidsTable bids;
  strategy.MakeBids(q, account, &bids);
  ASSERT_EQ(bids.size(), 1u);
  // Keyword 0 ramped to 1 (queried, relevance 1); keyword 1 also has
  // relevance > 0 and roi == max, so it ramps too; the row sums to 2.
  EXPECT_DOUBLE_EQ(bids.rows()[0].value, 2.0);
}

}  // namespace
}  // namespace ssa
