#include <gtest/gtest.h>

#include "db/table.h"

namespace ssa {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Number(3.5).is_number());
  EXPECT_DOUBLE_EQ(Value::Number(3.5).number(), 3.5);
  EXPECT_TRUE(Value::String("hi").is_string());
  EXPECT_EQ(Value::String("hi").str(), "hi");
  EXPECT_DOUBLE_EQ(Value::Bool(true).number(), 1.0);
}

TEST(ValueTest, Truthiness) {
  EXPECT_TRUE(Value::Number(1).Truthy());
  EXPECT_TRUE(Value::Number(-0.5).Truthy());
  EXPECT_FALSE(Value::Number(0).Truthy());
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::String("x").Truthy());
}

TEST(ValueTest, EqualitySemantics) {
  EXPECT_TRUE(Value::Number(2).EqualsValue(Value::Number(2)));
  EXPECT_FALSE(Value::Number(2).EqualsValue(Value::Number(3)));
  EXPECT_TRUE(Value::String("a").EqualsValue(Value::String("a")));
  EXPECT_FALSE(Value::String("a").EqualsValue(Value::Number(1)));
  // NULL equals nothing, not even NULL (SQL-style).
  EXPECT_FALSE(Value::Null().EqualsValue(Value::Null()));
  EXPECT_FALSE(Value::Null().EqualsValue(Value::Number(0)));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Number(42).ToString(), "42");
  EXPECT_EQ(Value::String("boot").ToString(), "'boot'");
}

TEST(TableTest, SchemaAndRows) {
  Table t("Keywords", {"text", "bid"});
  EXPECT_EQ(t.name(), "Keywords");
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.ColumnIndex("bid"), 1);
  EXPECT_EQ(t.ColumnIndex("missing"), -1);
  EXPECT_TRUE(t.HasColumn("text"));

  t.InsertRow({Value::String("boot"), Value::Number(5)});
  t.InsertRow({Value::String("shoe"), Value::Number(8)});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.At(0, 0).str(), "boot");
  EXPECT_DOUBLE_EQ(t.At(1, "bid").number(), 8);

  t.Set(0, "bid", Value::Number(6));
  EXPECT_DOUBLE_EQ(t.At(0, 1).number(), 6);

  t.Clear();
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.num_columns(), 2);  // schema survives
}

TEST(DatabaseTest, CatalogLookup) {
  Database db;
  Table* k = db.AddTable("Keywords", {"text"});
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(db.GetTable("Keywords"), k);
  EXPECT_EQ(db.GetTable("keywords"), nullptr);  // case-sensitive
  EXPECT_EQ(db.GetTable("Bids"), nullptr);
  const Database& cdb = db;
  EXPECT_EQ(cdb.GetTable("Keywords"), k);
}

}  // namespace
}  // namespace ssa
