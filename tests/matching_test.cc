#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "matching/hungarian.h"
#include "matching/munkres.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssa {
namespace {

void ExpectValidAllocation(const Allocation& a, int n, int k) {
  ASSERT_EQ(a.num_slots(), k);
  ASSERT_EQ(a.num_advertisers(), n);
  std::vector<int> count(n, 0);
  for (SlotIndex j = 0; j < k; ++j) {
    const AdvertiserId i = a.slot_to_advertiser[j];
    if (i >= 0) {
      ASSERT_LT(i, n);
      EXPECT_EQ(a.advertiser_to_slot[i], j);
      ++count[i];
    }
  }
  for (int c : count) EXPECT_LE(c, 1);  // one slot per advertiser
}

// Figure 9 revenue matrix: Nike(9,5) Adidas(8,7) Reebok(7,6) Sketchers(7,4).
// Optimal: Nike->slot1, Adidas->slot2 (9 + 7 = 16).
TEST(HungarianTest, PaperFigure9Example) {
  const std::vector<double> w = {9, 5, 8, 7, 7, 6, 7, 4};
  Allocation a = MaxWeightMatchingDense(w, 4, 2);
  EXPECT_DOUBLE_EQ(a.total_weight, 16.0);
  EXPECT_EQ(a.slot_to_advertiser[0], 0);  // Nike
  EXPECT_EQ(a.slot_to_advertiser[1], 1);  // Adidas
}

TEST(HungarianTest, LeavesSlotEmptyOnNegativeWeights) {
  const std::vector<double> w = {-1, -2, -3, -4};
  Allocation a = MaxWeightMatchingDense(w, 2, 2);
  EXPECT_DOUBLE_EQ(a.total_weight, 0.0);
  EXPECT_EQ(a.NumAssigned(), 0);
}

TEST(HungarianTest, MixedSignsPicksOnlyProfitable) {
  // Advertiser 0: +5 in slot 0, -1 in slot 1. Advertiser 1: negative both.
  const std::vector<double> w = {5, -1, -2, -3};
  Allocation a = MaxWeightMatchingDense(w, 2, 2);
  EXPECT_DOUBLE_EQ(a.total_weight, 5.0);
  EXPECT_EQ(a.slot_to_advertiser[0], 0);
  EXPECT_EQ(a.slot_to_advertiser[1], -1);
}

TEST(HungarianTest, FewerAdvertisersThanSlots) {
  const std::vector<double> w = {3, 2, 1};
  Allocation a = MaxWeightMatchingDense(w, 1, 3);
  EXPECT_DOUBLE_EQ(a.total_weight, 3.0);
  EXPECT_EQ(a.NumAssigned(), 1);
}

TEST(HungarianTest, SubsetRestrictsCandidates) {
  const std::vector<double> w = {9, 5, 8, 7, 7, 6, 7, 4};
  Allocation a = MaxWeightMatchingSubset(w, 4, 2, {2, 3});
  // Only Reebok & Sketchers available: best is Reebok->1? (7) + Sketchers...
  // options: (2:7,3:4)=11 via slots (0,1); (3:7,2:6)=13.
  EXPECT_DOUBLE_EQ(a.total_weight, 13.0);
  EXPECT_EQ(a.slot_to_advertiser[0], 3);
  EXPECT_EQ(a.slot_to_advertiser[1], 2);
}

TEST(HungarianTest, PerfectMatchingForcedEvenIfNegative) {
  const std::vector<double> w = {-5, -1, -2, -8};
  Allocation a = MaxWeightPerfectMatchingSubset(w, 2, 2, {0, 1});
  EXPECT_EQ(a.NumAssigned(), 2);
  // Best perfect: 0->slot1 (-1) + 1->slot0 (-2) = -3.
  EXPECT_DOUBLE_EQ(a.total_weight, -3.0);
}

TEST(MunkresTest, PaperFigure9Example) {
  const std::vector<double> w = {9, 5, 8, 7, 7, 6, 7, 4};
  Allocation a = MunkresMatching(w, 4, 2);
  EXPECT_DOUBLE_EQ(a.total_weight, 16.0);
}

TEST(MunkresTest, NegativeWeightsLeaveEmpty) {
  const std::vector<double> w = {-1, -2, -3, -4};
  Allocation a = MunkresMatching(w, 2, 2);
  EXPECT_DOUBLE_EQ(a.total_weight, 0.0);
}

TEST(BruteForceTest, TinyExhaustive) {
  const std::vector<double> w = {9, 5, 8, 7, 7, 6, 7, 4};
  Allocation a = BruteForceMatching(w, 4, 2);
  EXPECT_DOUBLE_EQ(a.total_weight, 16.0);
}

// Property: all three solvers agree with the exhaustive optimum on random
// instances, including matrices with negative entries.
class MatchingAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(MatchingAgreement, AllSolversOptimal) {
  const auto [n, k, negatives] = GetParam();
  Rng rng(1000 + n * 31 + k * 7 + negatives);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<double> w = testing_util::RandomWeights(
        n, k, rng, negatives ? -5.0 : 0.0, 10.0);
    const Allocation oracle = BruteForceMatching(w, n, k);
    const Allocation jv = MaxWeightMatchingDense(w, n, k);
    const Allocation mk = MunkresMatching(w, n, k);
    ExpectValidAllocation(jv, n, k);
    ExpectValidAllocation(mk, n, k);
    EXPECT_NEAR(jv.total_weight, oracle.total_weight, 1e-9)
        << "JV suboptimal at trial " << trial;
    EXPECT_NEAR(mk.total_weight, oracle.total_weight, 1e-6)
        << "Munkres suboptimal at trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatchingAgreement,
    ::testing::Values(std::make_tuple(1, 1, false), std::make_tuple(3, 2, false),
                      std::make_tuple(5, 3, false), std::make_tuple(7, 3, false),
                      std::make_tuple(4, 4, false), std::make_tuple(6, 2, true),
                      std::make_tuple(5, 3, true), std::make_tuple(3, 4, true),
                      std::make_tuple(8, 2, true)));

// Larger randomized cross-check (JV vs Munkres only; brute force too slow).
TEST(MatchingAgreement, LargeJvVersusMunkres) {
  Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 200, k = 10;
    const std::vector<double> w =
        testing_util::RandomWeights(n, k, rng, -2.0, 10.0);
    const Allocation jv = MaxWeightMatchingDense(w, n, k);
    const Allocation mk = MunkresMatching(w, n, k);
    EXPECT_NEAR(jv.total_weight, mk.total_weight, 1e-6);
  }
}

TEST(MatchingTest, ZeroSlotsOrAdvertisers) {
  Allocation a = MaxWeightMatchingDense({}, 0, 0);
  EXPECT_EQ(a.NumAssigned(), 0);
  Allocation b = MunkresMatching({}, 0, 3);
  EXPECT_EQ(b.NumAssigned(), 0);
}

}  // namespace
}  // namespace ssa
