#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/formula.h"
#include "core/formula_parser.h"

namespace ssa {
namespace {

AdvertiserOutcome Outcome(SlotIndex slot, bool clicked, bool purchased,
                          uint32_t heavy = 0) {
  AdvertiserOutcome o;
  o.slot = slot;
  o.clicked = clicked;
  o.purchased = purchased;
  o.heavy_slot_mask = heavy;
  return o;
}

TEST(FormulaTest, SlotPredicate) {
  const Formula f = Formula::Slot(2);
  EXPECT_TRUE(f.Evaluate(Outcome(2, false, false)));
  EXPECT_FALSE(f.Evaluate(Outcome(1, false, false)));
  EXPECT_FALSE(f.Evaluate(Outcome(kNoSlot, false, false)));
}

TEST(FormulaTest, ClickAndPurchasePredicates) {
  EXPECT_TRUE(Formula::Click().Evaluate(Outcome(0, true, false)));
  EXPECT_FALSE(Formula::Click().Evaluate(Outcome(0, false, true)));
  EXPECT_TRUE(Formula::Purchase().Evaluate(Outcome(0, false, true)));
  EXPECT_FALSE(Formula::Purchase().Evaluate(Outcome(0, true, false)));
}

TEST(FormulaTest, HeavyInSlotPredicate) {
  const Formula f = Formula::HeavyInSlot(1);
  EXPECT_TRUE(f.Evaluate(Outcome(0, false, false, 0b010)));
  EXPECT_FALSE(f.Evaluate(Outcome(0, false, false, 0b101)));
}

TEST(FormulaTest, Connectives) {
  const Formula f = (Formula::Click() && Formula::Slot(0)) ||
                    !Formula::Purchase();
  EXPECT_TRUE(f.Evaluate(Outcome(0, true, true)));    // click & slot0
  EXPECT_TRUE(f.Evaluate(Outcome(3, false, false)));  // !purchase
  EXPECT_FALSE(f.Evaluate(Outcome(3, true, true)));
}

TEST(FormulaTest, ConstantsAndDefault) {
  EXPECT_TRUE(Formula::True().Evaluate(Outcome(kNoSlot, false, false)));
  EXPECT_FALSE(Formula::False().Evaluate(Outcome(0, true, true)));
  Formula default_constructed;
  EXPECT_TRUE(default_constructed.Evaluate(Outcome(kNoSlot, false, false)));
}

// The Figure 3 Bids-table semantics: "5 if Purchase; 2 if Slot1 or Slot2".
TEST(FormulaTest, PaperFigure3Formulas) {
  const Formula purchase = Formula::Purchase();
  const Formula slot12 = Formula::AnySlot({0, 1});
  // Purchase in slot 1: both formulas true.
  EXPECT_TRUE(purchase.Evaluate(Outcome(0, true, true)));
  EXPECT_TRUE(slot12.Evaluate(Outcome(0, true, true)));
  // Displayed in slot 3, no purchase: neither.
  EXPECT_FALSE(purchase.Evaluate(Outcome(2, true, false)));
  EXPECT_FALSE(slot12.Evaluate(Outcome(2, true, false)));
}

TEST(FormulaTest, AnySlotEmptyIsFalse) {
  EXPECT_FALSE(Formula::AnySlot({}).Evaluate(Outcome(0, true, true)));
}

TEST(FormulaTest, DependsOnlyOnOwnPlacement) {
  EXPECT_TRUE((Formula::Click() && Formula::Slot(0))
                  .DependsOnlyOnOwnPlacement());
  EXPECT_FALSE((Formula::Click() && Formula::HeavyInSlot(0))
                   .DependsOnlyOnOwnPlacement());
  EXPECT_FALSE(Formula::Not(Formula::HeavyInSlot(3))
                   .DependsOnlyOnOwnPlacement());
}

TEST(FormulaTest, MentionsUserAction) {
  EXPECT_TRUE(Formula::Click().MentionsUserAction());
  EXPECT_TRUE((Formula::Slot(1) || Formula::Purchase()).MentionsUserAction());
  EXPECT_FALSE(Formula::Slot(1).MentionsUserAction());
}

TEST(FormulaTest, MaxSlotIndex) {
  EXPECT_EQ(Formula::Click().MaxSlotIndex(), kNoSlot);
  EXPECT_EQ((Formula::Slot(4) && Formula::HeavyInSlot(9)).MaxSlotIndex(), 9);
}

TEST(FormulaTest, StructuralEquality) {
  const Formula a = Formula::Click() && Formula::Slot(0);
  const Formula b = Formula::Click() && Formula::Slot(0);
  const Formula c = Formula::Slot(0) && Formula::Click();
  EXPECT_TRUE(a.StructurallyEquals(b));
  EXPECT_FALSE(a.StructurallyEquals(c));  // structural, not semantic
}

// --- Parser -----------------------------------------------------------------

TEST(FormulaParserTest, ParsesPaperExamples) {
  // Figure 4 formulas.
  auto f1 = ParseFormula("Click & Slot1");
  ASSERT_TRUE(f1.ok());
  EXPECT_TRUE(f1->Evaluate(Outcome(0, true, false)));
  EXPECT_FALSE(f1->Evaluate(Outcome(1, true, false)));

  auto f2 = ParseFormula("Purchase");
  ASSERT_TRUE(f2.ok());
  EXPECT_TRUE(f2->Evaluate(Outcome(kNoSlot, false, true)));

  auto f3 = ParseFormula("Slot1 | Slot2");
  ASSERT_TRUE(f3.ok());
  EXPECT_TRUE(f3->Evaluate(Outcome(1, false, false)));
  EXPECT_FALSE(f3->Evaluate(Outcome(2, false, false)));
}

TEST(FormulaParserTest, PrecedenceAndBeforeOr) {
  auto f = ParseFormula("Click | Purchase & Slot1");
  ASSERT_TRUE(f.ok());
  // Parsed as Click | (Purchase & Slot1).
  EXPECT_TRUE(f->Evaluate(Outcome(5, true, false)));
  EXPECT_TRUE(f->Evaluate(Outcome(0, false, true)));
  EXPECT_FALSE(f->Evaluate(Outcome(5, false, true)));
}

TEST(FormulaParserTest, NotAndParens) {
  auto f = ParseFormula("!(Slot1 | Slot2) & Click");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Evaluate(Outcome(2, true, false)));
  EXPECT_FALSE(f->Evaluate(Outcome(0, true, false)));
}

TEST(FormulaParserTest, KeywordOperatorsCaseInsensitive) {
  auto f = ParseFormula("click AND slot2 OR NOT purchase");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Evaluate(Outcome(1, true, true)));
  EXPECT_TRUE(f->Evaluate(Outcome(0, false, false)));
}

TEST(FormulaParserTest, HeavyPredicates) {
  auto f = ParseFormula("Heavy1 | HeavyInSlot3");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->Evaluate(Outcome(0, false, false, 0b001)));
  EXPECT_TRUE(f->Evaluate(Outcome(0, false, false, 0b100)));
  EXPECT_FALSE(f->Evaluate(Outcome(0, false, false, 0b010)));
}

TEST(FormulaParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("").ok());
  EXPECT_FALSE(ParseFormula("Click &").ok());
  EXPECT_FALSE(ParseFormula("(Click").ok());
  EXPECT_FALSE(ParseFormula("Slot0").ok());   // slots are 1-based
  EXPECT_FALSE(ParseFormula("Slot").ok());    // missing index
  EXPECT_FALSE(ParseFormula("Banana").ok());  // unknown predicate
  EXPECT_FALSE(ParseFormula("Click Click").ok());
}

// Round-trip property: ToString() output reparses to an equivalent formula.
class FormulaRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(FormulaRoundTrip, ToStringReparses) {
  auto original = ParseFormula(GetParam());
  ASSERT_TRUE(original.ok());
  auto reparsed = ParseFormula(original->ToString());
  ASSERT_TRUE(reparsed.ok()) << original->ToString();
  // Compare semantics over a grid of outcomes.
  for (SlotIndex slot : {kNoSlot, 0, 1, 2, 3}) {
    for (int c = 0; c < 2; ++c) {
      for (int p = 0; p < 2; ++p) {
        for (uint32_t heavy : {0u, 1u, 7u}) {
          const AdvertiserOutcome o = Outcome(slot, c, p, heavy);
          EXPECT_EQ(original->Evaluate(o), reparsed->Evaluate(o));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formulas, FormulaRoundTrip,
    ::testing::Values("Click", "Purchase", "Slot1", "Slot4", "Heavy2", "True",
                      "False", "Click & Slot1", "Slot1 | Slot2",
                      "!(Click | Purchase) & Slot3",
                      "Purchase & (Slot1 | Slot2)",
                      "!Heavy1 & Click & !Slot2",
                      "Click & !Purchase | Slot2 & Heavy3"));

}  // namespace
}  // namespace ssa
