#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "core/heavyweight.h"
#include "util/rng.h"

namespace ssa {
namespace {

std::shared_ptr<const MatrixClickModel> BaseModel(int n, int k, Rng& rng) {
  return std::make_shared<MatrixClickModel>(
      MakeSlotIntervalClickModel(n, k, rng));
}

TEST(ShadowModelTest, HeavyweightsAboveDampenClicks) {
  Rng rng(3);
  auto base = BaseModel(2, 3, rng);
  ShadowHeavyClickModel model(base, {true, false}, 0.5, 0.2);
  // No heavyweights: base probability.
  EXPECT_DOUBLE_EQ(model.ClickProbability(1, 2, 0),
                   base->ClickProbability(1, 2));
  // One heavyweight above slot 2 halves a lightweight's clicks.
  EXPECT_DOUBLE_EQ(model.ClickProbability(1, 2, 0b001),
                   base->ClickProbability(1, 2) * 0.5);
  // Two heavyweights above: quartered.
  EXPECT_DOUBLE_EQ(model.ClickProbability(1, 2, 0b011),
                   base->ClickProbability(1, 2) * 0.25);
  // Heavy advertiser suffers the smaller shadow.
  EXPECT_DOUBLE_EQ(model.ClickProbability(0, 2, 0b001),
                   base->ClickProbability(0, 2) * 0.8);
  // Heavyweights at or below the slot do not shadow it.
  EXPECT_DOUBLE_EQ(model.ClickProbability(1, 0, 0b110),
                   base->ClickProbability(1, 0));
}

TEST(TableModelTest, ExplicitLookup) {
  // 1 advertiser, 2 slots, 4 masks.
  std::vector<double> click(1 * 2 * 4, 0.0);
  auto idx = [](int i, int j, uint32_t mask) {
    return ((static_cast<size_t>(i) * 2 + j) << 2) + mask;
  };
  click[idx(0, 0, 0b00)] = 0.9;
  click[idx(0, 0, 0b10)] = 0.6;
  click[idx(0, 1, 0b01)] = 0.3;
  TableHeavyClickModel model(1, 2, click);
  EXPECT_DOUBLE_EQ(model.ClickProbability(0, 0, 0b00), 0.9);
  EXPECT_DOUBLE_EQ(model.ClickProbability(0, 0, 0b10), 0.6);
  EXPECT_DOUBLE_EQ(model.ClickProbability(0, 1, 0b01), 0.3);
}

TEST(HeavyExpectedPaymentTest, HeavyFormulaBid) {
  Rng rng(5);
  auto base = BaseModel(2, 2, rng);
  ShadowHeavyClickModel model(base, {true, false}, 0.4, 0.1);
  // "3 cents if I get slot 2 and there is a *lightweight* in slot 1" — the
  // paper's example bid, expressible as Slot2 & !Heavy1.
  BidsTable bids;
  bids.AddBid(Formula::Slot(1) && !Formula::HeavyInSlot(0), 3);
  EXPECT_DOUBLE_EQ(ExpectedPaymentHeavy(bids, model, 1, 1, 0b00), 3.0);
  EXPECT_DOUBLE_EQ(ExpectedPaymentHeavy(bids, model, 1, 1, 0b01), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedPaymentHeavy(bids, model, 1, 0, 0b00), 0.0);
}

TEST(HeavyExpectedPaymentTest, ClickBidUsesMaskedProbability) {
  Rng rng(7);
  auto base = BaseModel(2, 2, rng);
  ShadowHeavyClickModel model(base, {true, false}, 0.5, 0.5);
  BidsTable bids;
  bids.AddBid(Formula::Click(), 10);
  EXPECT_DOUBLE_EQ(ExpectedPaymentHeavy(bids, model, 1, 1, 0b01),
                   base->ClickProbability(1, 1) * 0.5 * 10);
}

// Property: the 2^k decomposition equals exhaustive search over assignments.
class HeavySolverAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(HeavySolverAgreement, MatchesBruteForce) {
  const auto [n, k, seed] = GetParam();
  Rng rng(seed);
  auto base = BaseModel(n, k, rng);
  std::vector<bool> is_heavy(n);
  for (int i = 0; i < n; ++i) is_heavy[i] = rng.Bernoulli(0.4);
  ShadowHeavyClickModel model(base, is_heavy, 0.5, 0.2);

  std::vector<BidsTable> bids(n);
  for (int i = 0; i < n; ++i) {
    bids[i].AddBid(Formula::Click(), static_cast<Money>(rng.UniformInt(1, 50)));
    if (rng.Bernoulli(0.5)) {
      // Multi-feature heavy-aware bid: pay extra for the top slot with no
      // heavyweight above anywhere.
      Formula no_heavy = Formula::True();
      for (int j = 0; j < k; ++j) no_heavy = no_heavy && !Formula::HeavyInSlot(j);
      bids[i].AddBid(Formula::Slot(0) && no_heavy,
                     static_cast<Money>(rng.UniformInt(1, 20)));
    }
    if (rng.Bernoulli(0.3)) {
      bids[i].AddBid(!Formula::AnySlot({0}) && Formula::HeavyInSlot(0),
                     static_cast<Money>(rng.UniformInt(1, 10)));
    }
  }

  const HeavyWdResult fast = DetermineWinnersHeavy(bids, model, is_heavy);
  const HeavyWdResult oracle = BruteForceHeavy(bids, model, is_heavy);
  EXPECT_NEAR(fast.expected_revenue, oracle.expected_revenue, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HeavySolverAgreement,
    ::testing::Values(std::make_tuple(3, 2, 11u), std::make_tuple(4, 2, 12u),
                      std::make_tuple(4, 3, 13u), std::make_tuple(5, 3, 14u),
                      std::make_tuple(6, 2, 15u), std::make_tuple(5, 2, 16u),
                      std::make_tuple(6, 3, 17u)));

TEST(HeavySolverTest, ParallelMatchesSerial) {
  Rng rng(21);
  const int n = 12, k = 4;
  auto base = BaseModel(n, k, rng);
  std::vector<bool> is_heavy(n);
  for (int i = 0; i < n; ++i) is_heavy[i] = rng.Bernoulli(0.3);
  ShadowHeavyClickModel model(base, is_heavy, 0.4, 0.1);
  std::vector<BidsTable> bids(n);
  for (int i = 0; i < n; ++i) {
    bids[i].AddBid(Formula::Click(), static_cast<Money>(rng.UniformInt(1, 50)));
  }
  ThreadPool pool(4);
  const HeavyWdResult serial = DetermineWinnersHeavy(bids, model, is_heavy);
  const HeavyWdResult parallel =
      DetermineWinnersHeavy(bids, model, is_heavy, &pool);
  EXPECT_NEAR(serial.expected_revenue, parallel.expected_revenue, 1e-9);
}

TEST(HeavySolverTest, MaskMatchesAllocation) {
  Rng rng(33);
  const int n = 6, k = 3;
  auto base = BaseModel(n, k, rng);
  std::vector<bool> is_heavy = {true, true, false, false, false, true};
  ShadowHeavyClickModel model(base, is_heavy, 0.5, 0.2);
  std::vector<BidsTable> bids(n);
  for (int i = 0; i < n; ++i) {
    bids[i].AddBid(Formula::Click(), static_cast<Money>(rng.UniformInt(1, 50)));
  }
  const HeavyWdResult r = DetermineWinnersHeavy(bids, model, is_heavy);
  // The declared mask must equal the realized heavyweight positions.
  for (int j = 0; j < k; ++j) {
    const AdvertiserId a = r.allocation.slot_to_advertiser[j];
    const bool declared = (r.heavy_slot_mask >> j) & 1u;
    const bool realized = a >= 0 && is_heavy[a];
    EXPECT_EQ(declared, realized) << "slot " << j;
  }
}

TEST(HeavySolverTest, NoHeavyweightsReducesToPlainMatching) {
  Rng rng(55);
  const int n = 8, k = 3;
  auto base = BaseModel(n, k, rng);
  std::vector<bool> none(n, false);
  ShadowHeavyClickModel model(base, none, 0.5, 0.2);
  std::vector<BidsTable> bids(n);
  for (int i = 0; i < n; ++i) {
    bids[i].AddBid(Formula::Click(), static_cast<Money>(rng.UniformInt(1, 50)));
  }
  const HeavyWdResult r = DetermineWinnersHeavy(bids, model, none);
  EXPECT_EQ(r.heavy_slot_mask, 0u);
  const HeavyWdResult oracle = BruteForceHeavy(bids, model, none);
  EXPECT_NEAR(r.expected_revenue, oracle.expected_revenue, 1e-9);
}

}  // namespace
}  // namespace ssa
