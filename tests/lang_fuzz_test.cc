// Randomized robustness sweep over the bidding-program language: generated
// programs (valid and deliberately broken) must either execute cleanly or
// surface a Status error — never crash, hang, or corrupt tables.

#include <string>

#include <gtest/gtest.h>

#include "lang/interpreter.h"
#include "lang/parser.h"
#include "util/rng.h"

namespace ssa {
namespace lang {
namespace {

/// Generates a random expression over columns {a, b}, scalars {s, t} and
/// literals, with bounded depth.
std::string RandomExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.35)) {
    switch (rng.NextBounded(5)) {
      case 0:
        return std::to_string(rng.UniformInt(0, 9));
      case 1:
        return "a";
      case 2:
        return "b";
      case 3:
        return "s";
      default:
        return "t";
    }
  }
  static const char* kOps[] = {"+", "-", "*", "/", "<", ">", "=",
                               "<=", ">=", "<>", "AND", "OR"};
  const char* op = kOps[rng.NextBounded(12)];
  return "(" + RandomExpr(rng, depth - 1) + " " + op + " " +
         RandomExpr(rng, depth - 1) + ")";
}

/// Condition for a trigger-level IF: only scalars and literals. Columns
/// {a, b} exist only inside a row scope (UPDATE binds one row at a time), so
/// a bare column in a top-level condition is a type error the interpreter
/// correctly reports — the generator must not emit it if programs are to
/// execute cleanly.
std::string RandomScalarExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.35)) {
    switch (rng.NextBounded(3)) {
      case 0:
        return std::to_string(rng.UniformInt(0, 9));
      case 1:
        return "s";
      default:
        return "t";
    }
  }
  static const char* kOps[] = {"+", "-", "*", "/", "<", ">", "=",
                               "<=", ">=", "<>", "AND", "OR"};
  const char* op = kOps[rng.NextBounded(12)];
  return "(" + RandomScalarExpr(rng, depth - 1) + " " + op + " " +
         RandomScalarExpr(rng, depth - 1) + ")";
}

std::string RandomStatement(Rng& rng) {
  switch (rng.NextBounded(3)) {
    case 0:
      return "UPDATE T SET a = " + RandomExpr(rng, 3) + ";";
    case 1:
      return "UPDATE T SET b = " + RandomExpr(rng, 2) + " WHERE " +
             RandomExpr(rng, 2) + ";";
    default:
      // No trailing ';' after ENDIF (optional per Figure 5): exercises the
      // statement-after-ENDIF parse that used to be masked by the generator
      // gluing statements together without whitespace ("ENDIFUPDATE").
      return "IF " + RandomScalarExpr(rng, 2) + " THEN UPDATE T SET a = " +
             RandomExpr(rng, 2) + "; ELSE UPDATE T SET b = " +
             RandomExpr(rng, 2) + "; ENDIF";
  }
}

class LangFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LangFuzzTest, GeneratedProgramsNeverCrash) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    std::string body;
    const int num_statements = 1 + static_cast<int>(rng.NextBounded(4));
    for (int s = 0; s < num_statements; ++s) {
      // Statements are whitespace-separated, never glued: "ENDIF" followed
      // directly by "UPDATE" would lex as one identifier.
      if (!body.empty()) body += ' ';
      body += RandomStatement(rng);
    }
    const std::string source =
        "CREATE TRIGGER f AFTER INSERT ON Query {" + body + "}";

    auto program = ParseProgram(source);
    ASSERT_TRUE(program.ok()) << source << "\n" << program.status().ToString();

    Database db;
    Table* t = db.AddTable("T", {"a", "b"});
    for (int r = 0; r < 3; ++r) {
      t->InsertRow({Value::Number(static_cast<double>(r)),
                    Value::Number(static_cast<double>(10 - r))});
    }
    ScalarEnv scalars;
    scalars.Set("s", 2.0);
    scalars.Set("t", 5.0);
    const Status status =
        Interpreter::FireTriggers(*program, "Query", &db, scalars);
    // Generated programs are type-correct modulo NULLs (division by zero),
    // so execution must succeed; cell values must stay number-or-null.
    ASSERT_TRUE(status.ok()) << source << "\n" << status.ToString();
    for (int r = 0; r < t->num_rows(); ++r) {
      for (int c = 0; c < t->num_columns(); ++c) {
        const Value& v = t->At(r, c);
        ASSERT_TRUE(v.is_number() || v.is_null());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LangFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(LangFuzzTest, MangledSourcesFailCleanly) {
  // Truncations and character swaps of a valid program: parser must return
  // a Status, never crash.
  const std::string valid =
      "CREATE TRIGGER f AFTER INSERT ON Query {"
      " IF a > 0 THEN UPDATE T SET a = (SELECT MAX(b) FROM T) + 1; ENDIF }";
  for (size_t cut = 0; cut < valid.size(); cut += 3) {
    auto truncated = ParseProgram(valid.substr(0, cut));
    if (!truncated.ok()) {
      EXPECT_FALSE(truncated.status().message().empty());
    }
  }
  Rng rng(99);
  for (int iter = 0; iter < 300; ++iter) {
    std::string mangled = valid;
    const size_t pos = rng.NextBounded(mangled.size());
    mangled[pos] = static_cast<char>('!' + rng.NextBounded(90));
    auto result = ParseProgram(mangled);  // ok or clean error, either way
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

}  // namespace
}  // namespace lang
}  // namespace ssa
