#include <algorithm>

#include <gtest/gtest.h>

#include "core/parallel_topk.h"
#include "core/winner_determination.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/topk_heap.h"

namespace ssa {
namespace {

// The tree network must produce the same candidate set as the sequential
// per-slot heaps, regardless of the leaf partitioning.
class TreeTopKBlocks : public ::testing::TestWithParam<int> {};

TEST_P(TreeTopKBlocks, MatchesSequentialSelection) {
  const int num_blocks = GetParam();
  Rng rng(17);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(300, 6, rng, 10.0, 3.0);
  const std::vector<AdvertiserId> sequential =
      SelectTopPerSlotCandidates(m, 6);
  const TreeAggregationResult tree = TreeTopKAggregate(m, num_blocks);
  EXPECT_EQ(tree.candidates, sequential);
}

INSTANTIATE_TEST_SUITE_P(Blocks, TreeTopKBlocks,
                         ::testing::Values(1, 2, 3, 7, 16, 300));

TEST(TreeTopKTest, WithThreadPoolSameResult) {
  Rng rng(23);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(500, 8, rng, 10.0, 2.0);
  ThreadPool pool(4);
  const TreeAggregationResult serial = TreeTopKAggregate(m, 16, nullptr);
  const TreeAggregationResult parallel = TreeTopKAggregate(m, 16, &pool);
  EXPECT_EQ(serial.candidates, parallel.candidates);
}

TEST(TreeTopKTest, MergeLevelsIsLogOfBlocks) {
  Rng rng(5);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(64, 3, rng);
  EXPECT_EQ(TreeTopKAggregate(m, 1).merge_levels, 0);
  EXPECT_EQ(TreeTopKAggregate(m, 2).merge_levels, 1);
  EXPECT_EQ(TreeTopKAggregate(m, 8).merge_levels, 3);
  // Non-power-of-two: ceil(log2 6) = 3.
  EXPECT_EQ(TreeTopKAggregate(m, 6).merge_levels, 3);
}

TEST(TreeTopKTest, SolveOnTreeCandidatesIsOptimal) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    RevenueMatrix m = testing_util::RandomRevenueMatrix(150, 5, rng, 10.0, 3.0);
    const TreeAggregationResult tree = TreeTopKAggregate(m, 8);
    const WdResult via_tree = SolveOnCandidates(m, tree.candidates);
    const WdResult exact = DetermineWinners(m, WdMethod::kHungarian);
    EXPECT_NEAR(via_tree.expected_revenue, exact.expected_revenue, 1e-9);
  }
}

TEST(TreeTopKTest, CriticalPathAccountsLeafAndLevels) {
  Rng rng(41);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(2000, 10, rng);
  const TreeAggregationResult r = TreeTopKAggregate(m, 32);
  double sum = r.leaf_critical_ms;
  for (double level : r.level_critical_ms) sum += level;
  EXPECT_NEAR(r.critical_path_ms, sum, 1e-9);
  EXPECT_EQ(static_cast<int>(r.level_critical_ms.size()), r.merge_levels);
}

TEST(TreeTopKTest, MoreBlocksThanAdvertisersClamps) {
  Rng rng(43);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(5, 2, rng);
  const TreeAggregationResult r = TreeTopKAggregate(m, 64);
  const std::vector<AdvertiserId> sequential = SelectTopPerSlotCandidates(m, 2);
  EXPECT_EQ(r.candidates, sequential);
}

TEST(TreeTopKTest, ZeroSlotsYieldsNoCandidates) {
  // k = 0: a matrix with no slots selects nobody, through both the
  // sequential heaps (top-0) and the tree network.
  Rng rng(47);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(20, 0, rng);
  EXPECT_TRUE(SelectTopPerSlotCandidates(m, 0).empty());
  EXPECT_TRUE(TreeTopKAggregate(m, 4).candidates.empty());
}

TEST(TreeTopKTest, MoreSlotsThanAdvertisers) {
  // k >= n: every advertiser with any positive marginal weight is a
  // candidate, and tree and sequential selection agree exactly.
  Rng rng(53);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(3, 8, rng, 10.0, 3.0);
  const std::vector<AdvertiserId> sequential = SelectTopPerSlotCandidates(m, 8);
  for (int blocks : {1, 2, 3}) {
    EXPECT_EQ(TreeTopKAggregate(m, blocks).candidates, sequential);
  }
}

TEST(TreeTopKTest, TiedRevenuesStableAcrossPartitionings) {
  // All-equal positive weights force every retained set to be decided by
  // the documented id tie-break (higher id ranks first); any leaf
  // partitioning must select the same candidates as the sequential scan.
  RevenueMatrix m(30, 4);
  for (AdvertiserId i = 0; i < 30; ++i) {
    for (SlotIndex j = 0; j < 4; ++j) m.Set(i, j, 5.0);
  }
  const std::vector<AdvertiserId> sequential = SelectTopPerSlotCandidates(m, 4);
  // Top-4 per slot under the tie-break = the four largest ids.
  EXPECT_EQ(sequential, (std::vector<AdvertiserId>{26, 27, 28, 29}));
  for (int blocks : {1, 2, 5, 16, 30}) {
    EXPECT_EQ(TreeTopKAggregate(m, blocks).candidates, sequential)
        << "blocks=" << blocks;
  }
}

TEST(TreeTopKTest, TreeMergeToCandidatesMatchesFlatSelection) {
  // The exposed partial-merge entry (what the sharded coordinator feeds):
  // leaves built from disjoint advertiser ranges, merged by the tree, must
  // reproduce SelectTopPerSlotCandidates — including duplicate weights
  // across partials.
  Rng rng(59);
  RevenueMatrix m(200, 5);
  for (AdvertiserId i = 0; i < 200; ++i) {
    for (SlotIndex j = 0; j < 5; ++j) {
      // Coarse weights: plenty of cross-leaf ties.
      m.Set(i, j, static_cast<double>(rng.NextBounded(8)));
    }
  }
  const std::vector<AdvertiserId> sequential = SelectTopPerSlotCandidates(m, 5);
  for (int parts : {2, 7, 16}) {
    std::vector<SlotTopK> partials(parts);
    for (int p = 0; p < parts; ++p) {
      const AdvertiserId lo = static_cast<AdvertiserId>(200 * p / parts);
      const AdvertiserId hi = static_cast<AdvertiserId>(200 * (p + 1) / parts);
      partials[p].per_slot.resize(5);
      TopKHeapSet heaps;
      heaps.Reset(5, 5);
      const double* base = m.UnassignedData();
      for (AdvertiserId i = lo; i < hi; ++i) {
        for (SlotIndex j = 0; j < 5; ++j) {
          const double w = m.Row(i)[j] - base[i];
          if (w > 0.0) heaps.Offer(j, w, i);
        }
      }
      for (SlotIndex j = 0; j < 5; ++j) {
        heaps.ExtractDescending(j, &partials[p].per_slot[j]);
      }
    }
    ThreadPool pool(3);
    std::vector<SlotTopK> copy = partials;
    EXPECT_EQ(TreeMergeToCandidates(std::move(partials), 5, 200, nullptr),
              sequential)
        << "serial merge, parts=" << parts;
    EXPECT_EQ(TreeMergeToCandidates(std::move(copy), 5, 200, &pool),
              sequential)
        << "pooled merge, parts=" << parts;
  }
}

}  // namespace
}  // namespace ssa
