#include <algorithm>

#include <gtest/gtest.h>

#include "core/parallel_topk.h"
#include "core/winner_determination.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssa {
namespace {

// The tree network must produce the same candidate set as the sequential
// per-slot heaps, regardless of the leaf partitioning.
class TreeTopKBlocks : public ::testing::TestWithParam<int> {};

TEST_P(TreeTopKBlocks, MatchesSequentialSelection) {
  const int num_blocks = GetParam();
  Rng rng(17);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(300, 6, rng, 10.0, 3.0);
  const std::vector<AdvertiserId> sequential =
      SelectTopPerSlotCandidates(m, 6);
  const TreeAggregationResult tree = TreeTopKAggregate(m, num_blocks);
  EXPECT_EQ(tree.candidates, sequential);
}

INSTANTIATE_TEST_SUITE_P(Blocks, TreeTopKBlocks,
                         ::testing::Values(1, 2, 3, 7, 16, 300));

TEST(TreeTopKTest, WithThreadPoolSameResult) {
  Rng rng(23);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(500, 8, rng, 10.0, 2.0);
  ThreadPool pool(4);
  const TreeAggregationResult serial = TreeTopKAggregate(m, 16, nullptr);
  const TreeAggregationResult parallel = TreeTopKAggregate(m, 16, &pool);
  EXPECT_EQ(serial.candidates, parallel.candidates);
}

TEST(TreeTopKTest, MergeLevelsIsLogOfBlocks) {
  Rng rng(5);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(64, 3, rng);
  EXPECT_EQ(TreeTopKAggregate(m, 1).merge_levels, 0);
  EXPECT_EQ(TreeTopKAggregate(m, 2).merge_levels, 1);
  EXPECT_EQ(TreeTopKAggregate(m, 8).merge_levels, 3);
  // Non-power-of-two: ceil(log2 6) = 3.
  EXPECT_EQ(TreeTopKAggregate(m, 6).merge_levels, 3);
}

TEST(TreeTopKTest, SolveOnTreeCandidatesIsOptimal) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    RevenueMatrix m = testing_util::RandomRevenueMatrix(150, 5, rng, 10.0, 3.0);
    const TreeAggregationResult tree = TreeTopKAggregate(m, 8);
    const WdResult via_tree = SolveOnCandidates(m, tree.candidates);
    const WdResult exact = DetermineWinners(m, WdMethod::kHungarian);
    EXPECT_NEAR(via_tree.expected_revenue, exact.expected_revenue, 1e-9);
  }
}

TEST(TreeTopKTest, CriticalPathAccountsLeafAndLevels) {
  Rng rng(41);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(2000, 10, rng);
  const TreeAggregationResult r = TreeTopKAggregate(m, 32);
  double sum = r.leaf_critical_ms;
  for (double level : r.level_critical_ms) sum += level;
  EXPECT_NEAR(r.critical_path_ms, sum, 1e-9);
  EXPECT_EQ(static_cast<int>(r.level_critical_ms.size()), r.merge_levels);
}

TEST(TreeTopKTest, MoreBlocksThanAdvertisersClamps) {
  Rng rng(43);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(5, 2, rng);
  const TreeAggregationResult r = TreeTopKAggregate(m, 64);
  const std::vector<AdvertiserId> sequential = SelectTopPerSlotCandidates(m, 2);
  EXPECT_EQ(r.candidates, sequential);
}

}  // namespace
}  // namespace ssa
