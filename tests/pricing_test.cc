#include <gtest/gtest.h>

#include "auction/pricing.h"
#include "core/winner_determination.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssa {
namespace {

// Two advertisers, one slot; click bids so per-click prices are intuitive.
struct SimpleSetting {
  MatrixClickModel model;
  RevenueMatrix revenue;
  Allocation allocation;

  SimpleSetting(double ctr0, double ctr1, Money bid0, Money bid1)
      : model(2, 1, {ctr0, ctr1}), revenue(2, 1) {
    revenue.Set(0, 0, ctr0 * bid0);
    revenue.Set(1, 0, ctr1 * bid1);
    WdResult wd = DetermineWinners(revenue, WdMethod::kHungarian);
    allocation = wd.allocation;
  }
};

TEST(PricingTest, PayYourBidEqualsPerClickBid) {
  SimpleSetting s(0.5, 0.4, 10, 6);
  ASSERT_EQ(s.allocation.slot_to_advertiser[0], 0);
  const auto prices =
      PerClickPrices(PricingRule::kPayYourBid, s.revenue, s.model,
                     s.allocation);
  EXPECT_NEAR(prices[0], 10.0, 1e-12);
}

TEST(PricingTest, GspChargesRunnerUpEquivalent) {
  SimpleSetting s(0.5, 0.4, 10, 6);
  const auto prices = PerClickPrices(PricingRule::kGeneralizedSecondPrice,
                                     s.revenue, s.model, s.allocation);
  // Runner-up expected revenue 0.4 * 6 = 2.4; per-click price 2.4 / 0.5.
  EXPECT_NEAR(prices[0], 4.8, 1e-12);
  EXPECT_LE(prices[0], 10.0);  // never above own bid
}

TEST(PricingTest, GspZeroWithoutCompetition) {
  SimpleSetting s(0.5, 0.4, 10, 0);
  const auto prices = PerClickPrices(PricingRule::kGeneralizedSecondPrice,
                                     s.revenue, s.model, s.allocation);
  EXPECT_NEAR(prices[0], 0.0, 1e-12);
}

TEST(PricingTest, EmptySlotsPriceZero) {
  RevenueMatrix revenue(1, 2);
  revenue.Set(0, 0, 5.0);
  revenue.Set(0, 1, 1.0);
  MatrixClickModel model(1, 2, {0.5, 0.1});
  const WdResult wd = DetermineWinners(revenue, WdMethod::kHungarian);
  const auto prices = PerClickPrices(PricingRule::kGeneralizedSecondPrice,
                                     revenue, model, wd.allocation);
  ASSERT_EQ(wd.allocation.slot_to_advertiser[0], 0);
  EXPECT_EQ(wd.allocation.slot_to_advertiser[1], -1);
  EXPECT_DOUBLE_EQ(prices[1], 0.0);
}

// GSP property sweep: price is always in [0, own per-click bid], and equals
// the best excluded advertiser's revenue divided by the winner's ctr when
// that is lower.
TEST(PricingTest, GspBoundedByOwnBid) {
  Rng rng(61);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 30, k = 5;
    RevenueMatrix revenue = testing_util::RandomRevenueMatrix(n, k, rng);
    MatrixClickModel model = MakeSlotIntervalClickModel(n, k, rng);
    const WdResult wd = DetermineWinners(revenue, WdMethod::kReducedHungarian);
    const auto prices = PerClickPrices(PricingRule::kGeneralizedSecondPrice,
                                       revenue, model, wd.allocation);
    for (SlotIndex j = 0; j < k; ++j) {
      const AdvertiserId i = wd.allocation.slot_to_advertiser[j];
      if (i < 0) continue;
      const double own = revenue.MarginalWeight(i, j) /
                         model.ClickProbability(i, j);
      EXPECT_GE(prices[j], 0.0);
      EXPECT_LE(prices[j], own + 1e-9);
    }
  }
}

// VCG properties: non-negative charges, individual rationality (charge never
// exceeds the winner's expected value), and zero charge when a winner has no
// externality (no competition).
TEST(PricingTest, VcgProperties) {
  Rng rng(71);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 20, k = 4;
    RevenueMatrix revenue = testing_util::RandomRevenueMatrix(n, k, rng);
    const WdResult wd = DetermineWinners(revenue, WdMethod::kReducedHungarian);
    const auto charges = VcgExpectedCharges(revenue, wd.allocation);
    for (SlotIndex j = 0; j < k; ++j) {
      const AdvertiserId i = wd.allocation.slot_to_advertiser[j];
      if (i < 0) {
        EXPECT_DOUBLE_EQ(charges[j], 0.0);
        continue;
      }
      EXPECT_GE(charges[j], -1e-9);
      EXPECT_LE(charges[j], revenue.MarginalWeight(i, j) + 1e-9)
          << "IR violated for slot " << j;
    }
  }
}

TEST(PricingTest, VcgSingleBidderPaysNothing) {
  RevenueMatrix revenue(1, 2);
  revenue.Set(0, 0, 8.0);
  revenue.Set(0, 1, 3.0);
  const WdResult wd = DetermineWinners(revenue, WdMethod::kHungarian);
  const auto charges = VcgExpectedCharges(revenue, wd.allocation);
  EXPECT_NEAR(charges[0], 0.0, 1e-12);
}

TEST(PricingTest, VcgHandExample) {
  // Two bidders, one slot: VCG charge = runner-up's displaced welfare.
  RevenueMatrix revenue(2, 1);
  revenue.Set(0, 0, 10.0);
  revenue.Set(1, 0, 7.0);
  const WdResult wd = DetermineWinners(revenue, WdMethod::kHungarian);
  ASSERT_EQ(wd.allocation.slot_to_advertiser[0], 0);
  const auto charges = VcgExpectedCharges(revenue, wd.allocation);
  EXPECT_NEAR(charges[0], 7.0, 1e-12);
}

TEST(PricingTest, RuleNames) {
  EXPECT_EQ(PricingRuleName(PricingRule::kPayYourBid), "pay-your-bid");
  EXPECT_EQ(PricingRuleName(PricingRule::kGeneralizedSecondPrice),
            "generalized-second-price");
  EXPECT_EQ(PricingRuleName(PricingRule::kVcg), "vcg");
}

}  // namespace
}  // namespace ssa
