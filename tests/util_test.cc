#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/epoch.h"
#include "util/rng.h"
#include "util/sorted_list.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/topk_heap.h"

namespace ssa {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.NextBounded(10);
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.UniformInt(0, 50);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 50);
    saw_lo |= (x == 0);
    saw_hi |= (x == 50);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StatsTest, MeanVarianceMinMax) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, Percentiles) {
  SummaryStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad");
}

TEST(StatusOrTest, ValueAndStatus) {
  StatusOr<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(SortedKeyListTest, KeepsDescendingOrder) {
  SortedKeyList list;
  list.Insert(1, 5.0);
  list.Insert(2, 9.0);
  list.Insert(3, 7.0);
  list.Insert(4, 7.0);  // tie: id ascending
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list.At(0).id, 2);
  EXPECT_EQ(list.At(1).id, 3);
  EXPECT_EQ(list.At(2).id, 4);
  EXPECT_EQ(list.At(3).id, 1);
}

TEST(SortedKeyListTest, EraseExactEntry) {
  SortedKeyList list;
  list.Insert(1, 5.0);
  list.Insert(2, 5.0);
  list.Erase(1, 5.0);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list.Top().id, 2);
}

TEST(SortedKeyListTest, AssignSortedBulk) {
  SortedKeyList list;
  list.AssignSorted({{3.0, 7}, {2.0, 1}, {2.0, 5}});
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Top().id, 7);
  EXPECT_EQ(list.Bottom().id, 5);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(257, [&hits](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksPartitionsExactly) {
  ThreadPool pool(3);
  for (int n : {1, 2, 7, 12, 100, 1003}) {
    std::vector<std::atomic<int>> hits(n);
    std::atomic<int> chunks{0};
    pool.ParallelForChunks(n, [&](int begin, int end) {
      EXPECT_LE(0, begin);
      EXPECT_LT(begin, end);
      EXPECT_LE(end, n);
      chunks.fetch_add(1);
      for (int i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    // One task per chunk, at most ~4x threads, never more than n.
    EXPECT_LE(chunks.load(), std::min(n, 4 * pool.num_threads()));
    EXPECT_GE(chunks.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForChunksEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelForChunks(0, [&](int, int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(TopKHeapSetTest, MatchesPriorityQueueSemantics) {
  // The flat heap set must retain exactly the top-capacity entries under
  // the strict (weight, id) pair order, independent of insertion order.
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int capacity = 1 + static_cast<int>(rng.NextBounded(8));
    const int entries = static_cast<int>(rng.NextBounded(40));
    TopKHeapSet heaps;
    heaps.Reset(2, capacity);
    std::vector<std::pair<double, AdvertiserId>> all;
    for (int e = 0; e < entries; ++e) {
      // Duplicate weights exercise the id tie-break.
      const double w = static_cast<double>(rng.NextBounded(10));
      heaps.Offer(0, w, e);
      heaps.Offer(1, w, e);
      all.emplace_back(w, e);
    }
    std::sort(all.rbegin(), all.rend());
    if (static_cast<int>(all.size()) > capacity) all.resize(capacity);
    for (int h = 0; h < 2; ++h) {
      std::vector<std::pair<double, AdvertiserId>> got;
      heaps.ExtractDescending(h, &got);
      EXPECT_EQ(got, all);
    }
  }
}

TEST(TopKHeapSetTest, CapacityZeroRetainsNothing) {
  // Top-0 is a valid degenerate configuration (k = 0): every offer is
  // rejected and extraction yields empty lists.
  TopKHeapSet heaps;
  heaps.Reset(3, 0);
  EXPECT_FALSE(heaps.Offer(0, 5.0, 1));
  EXPECT_FALSE(heaps.Offer(2, 1e9, 2));
  for (int h = 0; h < 3; ++h) EXPECT_EQ(heaps.size(h), 0);
  std::vector<std::pair<double, AdvertiserId>> out;
  heaps.ExtractDescending(1, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TopKHeapSetTest, CapacityBeyondPopulationKeepsEverything) {
  // k >= n: no offer is ever evicted; extraction is a full descending sort.
  TopKHeapSet heaps;
  heaps.Reset(1, 100);
  for (int e = 0; e < 10; ++e) {
    EXPECT_TRUE(heaps.Offer(0, static_cast<double>(e % 4), e));
  }
  EXPECT_EQ(heaps.size(0), 10);
  std::vector<std::pair<double, AdvertiserId>> got;
  heaps.ExtractDescending(0, &got);
  ASSERT_EQ(got.size(), 10u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_TRUE(got[i - 1] > got[i]) << "strict (weight, id) descending";
  }
}

TEST(TopKHeapSetTest, TiedWeightsBreakByIdDescending) {
  // The documented stable tie-break: among equal weights the larger id
  // ranks higher, independent of insertion order.
  for (const std::vector<AdvertiserId> order :
       {std::vector<AdvertiserId>{1, 2, 3, 4, 5},
        std::vector<AdvertiserId>{5, 4, 3, 2, 1},
        std::vector<AdvertiserId>{3, 1, 5, 2, 4}}) {
    TopKHeapSet heaps;
    heaps.Reset(1, 3);
    for (AdvertiserId id : order) heaps.Offer(0, 7.0, id);
    std::vector<std::pair<double, AdvertiserId>> got;
    heaps.ExtractDescending(0, &got);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].second, 5);
    EXPECT_EQ(got[1].second, 4);
    EXPECT_EQ(got[2].second, 3);
  }
}

TEST(OrderedCommitBarrierTest, ConsumerSeesProducerWritesInTicketOrder) {
  // Producers complete tickets in a scrambled order; the consumer drains
  // 0, 1, 2, ... and must observe each ticket's payload — the
  // MarkReady/AwaitReady happens-before edge the serving settler relies on.
  constexpr int64_t kTickets = 64;
  OrderedCommitBarrier barrier;
  barrier.Reset(kTickets);
  std::vector<int64_t> payload(kTickets, -1);  // written pre-MarkReady only
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      // Stride the tickets across producers back to front, so readiness
      // arrives far from ticket order.
      for (int64_t t = kTickets - 1 - p; t >= 0; t -= kProducers) {
        payload[t] = t * 7;
        barrier.MarkReady(t);
      }
    });
  }
  for (int64_t t = 0; t < kTickets; ++t) {
    barrier.AwaitReady(t);
    EXPECT_EQ(payload[t], t * 7);
  }
  for (std::thread& t : producers) t.join();
}

TEST(OrderedCommitBarrierTest, ResetOpensAFreshEpoch) {
  OrderedCommitBarrier barrier;
  for (int epoch = 0; epoch < 3; ++epoch) {
    barrier.Reset(2);
    barrier.MarkReady(1);  // out of order within the epoch
    barrier.MarkReady(0);
    barrier.AwaitReady(0);
    barrier.AwaitReady(1);
  }
}

TEST(LanePoolTest, EveryTicketRunsExactlyOnceOnSomeLane) {
  constexpr int kLanes = 3;
  constexpr int64_t kTickets = 200;
  std::vector<std::atomic<int>> runs(kTickets);
  for (auto& r : runs) r.store(0);
  std::vector<std::atomic<int64_t>> per_lane(kLanes);
  for (auto& c : per_lane) c.store(0);
  OrderedCommitBarrier barrier;
  barrier.Reset(kTickets);
  {
    LanePool pool(kLanes, [&](int lane, int64_t ticket) {
      ASSERT_GE(lane, 0);
      ASSERT_LT(lane, kLanes);
      runs[ticket].fetch_add(1);
      per_lane[lane].fetch_add(1);
      barrier.MarkReady(ticket);
    });
    EXPECT_EQ(pool.num_lanes(), kLanes);
    for (int64_t t = 0; t < kTickets; ++t) pool.Dispatch(t);
    for (int64_t t = 0; t < kTickets; ++t) barrier.AwaitReady(t);
  }
  int64_t total = 0;
  for (int64_t t = 0; t < kTickets; ++t) {
    EXPECT_EQ(runs[t].load(), 1) << "ticket " << t;
  }
  for (const auto& c : per_lane) total += c.load();
  EXPECT_EQ(total, kTickets);
}

TEST(LanePoolTest, DestructorDrainsDispatchedTickets) {
  // Tickets dispatched but not yet run must still execute before join —
  // the lane pool's part of the Stop() drain contract.
  constexpr int64_t kTickets = 50;
  std::atomic<int64_t> ran{0};
  {
    LanePool pool(2, [&](int, int64_t) { ran.fetch_add(1); });
    for (int64_t t = 0; t < kTickets; ++t) pool.Dispatch(t);
  }  // destructor: drain, then join
  EXPECT_EQ(ran.load(), kTickets);
}

TEST(ThreadPoolTest, WaitIdleThenReuse) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
  pool.ParallelFor(10, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace ssa
