#include <memory>

#include <gtest/gtest.h>

#include "auction/auction_engine.h"
#include "strategy/logical_roi.h"
#include "strategy/roi_strategy.h"

namespace ssa {
namespace {

/// The central Section IV claim, as an executable property: the RHTALU
/// engine (Threshold Algorithm + logical updates + triggers) is observably
/// identical to eagerly evaluating every bidder's ROI program and running
/// RH — same winners, same clicks, same charges, same account balances and
/// same tentative bids, auction by auction.
class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void RunEquivalence(const WorkloadConfig& wc, const EngineConfig& ec,
                      int num_auctions) {
    Workload w_eager = MakePaperWorkload(wc);
    Workload w_logical = MakePaperWorkload(wc);

    std::vector<std::unique_ptr<BiddingStrategy>> strategies;
    std::vector<RoiStrategy*> raw;
    for (int i = 0; i < wc.num_advertisers; ++i) {
      auto s = std::make_unique<RoiStrategy>(w_eager.keyword_formulas);
      raw.push_back(s.get());
      strategies.push_back(std::move(s));
    }
    AuctionEngine eager(ec, std::move(w_eager), std::move(strategies));
    LogicalRoiEngine logical(ec, std::move(w_logical));

    for (int t = 0; t < num_auctions; ++t) {
      const AuctionOutcome oe = eager.RunAuction();
      const AuctionOutcome& ol = logical.RunAuction();

      ASSERT_EQ(oe.query.keyword, ol.query.keyword) << "auction " << t;
      ASSERT_EQ(oe.wd.allocation.slot_to_advertiser,
                ol.wd.allocation.slot_to_advertiser)
          << "winner divergence at auction " << t;
      ASSERT_NEAR(oe.wd.expected_revenue, ol.wd.expected_revenue, 1e-9);
      ASSERT_EQ(oe.events.size(), ol.events.size());
      for (size_t i = 0; i < oe.events.size(); ++i) {
        ASSERT_EQ(oe.events[i].advertiser, ol.events[i].advertiser);
        ASSERT_EQ(oe.events[i].clicked, ol.events[i].clicked);
        ASSERT_EQ(oe.events[i].purchased, ol.events[i].purchased);
        ASSERT_DOUBLE_EQ(oe.events[i].charged, ol.events[i].charged)
            << "charge divergence at auction " << t << " slot " << i;
      }
      ASSERT_DOUBLE_EQ(oe.revenue_charged, ol.revenue_charged);

      // Tentative bids: every bidder, every keyword, bit for bit.
      for (int i = 0; i < wc.num_advertisers; ++i) {
        for (int kw = 0; kw < wc.num_keywords; ++kw) {
          ASSERT_DOUBLE_EQ(raw[i]->tentative_bids()[kw],
                           logical.EffectiveBid(i, kw))
              << "bid divergence at auction " << t << " advertiser " << i
              << " keyword " << kw;
        }
      }
    }

    // Account trajectories end identical.
    for (int i = 0; i < wc.num_advertisers; ++i) {
      const AdvertiserAccount& ae = eager.accounts()[i];
      const AdvertiserAccount& al = logical.accounts()[i];
      EXPECT_DOUBLE_EQ(ae.amount_spent, al.amount_spent);
      for (int kw = 0; kw < wc.num_keywords; ++kw) {
        EXPECT_DOUBLE_EQ(ae.value_gained[kw], al.value_gained[kw]);
        EXPECT_DOUBLE_EQ(ae.spent_per_keyword[kw], al.spent_per_keyword[kw]);
      }
    }
  }
};

TEST_P(EquivalenceTest, SmallPopulationLongHorizon) {
  WorkloadConfig wc;
  wc.num_advertisers = 30;
  wc.num_slots = 5;
  wc.num_keywords = 4;
  wc.seed = GetParam();
  EngineConfig ec;
  ec.seed = GetParam() * 31 + 7;
  RunEquivalence(wc, ec, 1500);
}

TEST_P(EquivalenceTest, PaperShapedWorkload) {
  WorkloadConfig wc;  // 15 slots, 10 keywords — the Section V shape
  wc.num_advertisers = 120;
  wc.seed = GetParam() + 100;
  EngineConfig ec;
  ec.seed = GetParam() * 13 + 1;
  RunEquivalence(wc, ec, 400);
}

TEST_P(EquivalenceTest, PayYourBidPricing) {
  WorkloadConfig wc;
  wc.num_advertisers = 25;
  wc.num_slots = 3;
  wc.num_keywords = 3;
  wc.seed = GetParam() + 200;
  EngineConfig ec;
  ec.pricing = PricingRule::kPayYourBid;
  ec.seed = GetParam() * 17 + 3;
  RunEquivalence(wc, ec, 800);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest, ::testing::Values(1u, 2u, 3u));

TEST(LogicalRoiEngineTest, StatsAccumulate) {
  WorkloadConfig wc;
  wc.num_advertisers = 500;
  wc.seed = 5;
  EngineConfig ec;
  ec.seed = 6;
  LogicalRoiEngine engine(ec, MakePaperWorkload(wc));
  for (int t = 0; t < 100; ++t) engine.RunAuction();
  const LogicalRoiEngine::Stats& stats = engine.stats();
  EXPECT_GT(stats.ta_sorted_accesses, 0);
  EXPECT_GT(stats.list_moves, 0);
  // TA sublinearity: average sorted accesses per slot-query well below n.
  const double per_slot_probe =
      static_cast<double>(stats.ta_sorted_accesses) / (100.0 * 15);
  EXPECT_LT(per_slot_probe, 2.0 * 500)  // trivially bounded by both lists
      << "TA probed beyond the input size";
}

TEST(LogicalRoiEngineTest, DeterministicGivenSeeds) {
  WorkloadConfig wc;
  wc.num_advertisers = 60;
  wc.seed = 9;
  EngineConfig ec;
  ec.seed = 10;
  LogicalRoiEngine a(ec, MakePaperWorkload(wc));
  LogicalRoiEngine b(ec, MakePaperWorkload(wc));
  for (int t = 0; t < 300; ++t) {
    const AuctionOutcome& oa = a.RunAuction();
    const AuctionOutcome& ob = b.RunAuction();
    ASSERT_EQ(oa.wd.allocation.slot_to_advertiser,
              ob.wd.allocation.slot_to_advertiser);
    ASSERT_DOUBLE_EQ(oa.revenue_charged, ob.revenue_charged);
  }
}

}  // namespace
}  // namespace ssa
