// Durability subsystem tests: wire-format round trips, CRC corruption
// detection, settlement-log write/read in every sync mode, torn-tail
// truncation, checkpoint/restore for both engines, and restore-then-replay
// recovery arriving bitwise at the uninterrupted trajectory. Crash-shaped
// fault schedules (random kill points, bit flips under a live server) live
// in fault_injection_test.cc; this file covers the building blocks.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "auction/auction_engine.h"
#include "auction/sharded_engine.h"
#include "durability/checkpoint.h"
#include "durability/recovery.h"
#include "durability/settlement_log.h"
#include "durability/wire.h"
#include "strategy/roi_strategy.h"
#include "util/status.h"

namespace ssa {
namespace {

std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

WorkloadConfig SmallConfig(uint64_t seed = 1) {
  WorkloadConfig config;
  config.num_advertisers = 30;
  config.num_slots = 4;
  config.num_keywords = 3;
  config.seed = seed;
  return config;
}

/// Fresh temp path per test (the suite runs single-process; collisions
/// across tests are avoided by name).
std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/ssa_durability_" + name;
}

void ExpectAccountsBitwiseEq(const std::vector<AdvertiserAccount>& a,
                             const std::vector<AdvertiserAccount>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].amount_spent, b[i].amount_spent);
    ASSERT_EQ(a[i].spent_per_keyword, b[i].spent_per_keyword);
    ASSERT_EQ(a[i].value_gained, b[i].value_gained);
  }
}

TEST(WireFormatTest, RoundTripsEveryFieldType) {
  std::string buf;
  WireWriter w(&buf);
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-42);
  w.PutI64(-(1ll << 40));
  w.PutDouble(-0.0);  // signed zero must survive bitwise
  w.PutString("auction");
  w.PutDoubleVector({1.5, -2.25, 1e-300});

  WireReader r(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  double d = 1;
  std::string s;
  std::vector<double> v;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI32(&i32).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetDoubleVector(&v).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -(1ll << 40));
  EXPECT_TRUE(std::signbit(d));
  EXPECT_EQ(d, 0.0);
  EXPECT_EQ(s, "auction");
  EXPECT_EQ(v, (std::vector<double>{1.5, -2.25, 1e-300}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireFormatTest, ShortReadsErrorInsteadOfAsserting) {
  std::string buf;
  WireWriter(&buf).PutU32(123);
  WireReader r(buf);
  uint64_t u64 = 0;
  EXPECT_FALSE(r.GetU64(&u64).ok());  // only 4 bytes present

  // A string whose declared length exceeds the buffer must not over-read.
  std::string lying;
  WireWriter(&lying).PutU32(1000);
  lying += "abc";
  WireReader r2(lying);
  std::string s;
  EXPECT_FALSE(r2.GetString(&s).ok());
}

TEST(WireFormatTest, Crc32CatchesSingleBitFlip) {
  std::string data = "settlement record payload";
  const uint32_t clean = Crc32(data);
  data[5] ^= 0x10;
  EXPECT_NE(clean, Crc32(data));
}

Status FailingOp() { return Status::Internal("boom"); }
Status PassThrough(bool fail, int* side_effects) {
  if (fail) SSA_RETURN_IF_ERROR(FailingOp());
  ++(*side_effects);
  return Status::Ok();
}
StatusOr<int> MaybeInt(bool fail) {
  if (fail) return Status::NotFound("none");
  return 7;
}
Status AssignOrReturnUser(bool fail, int* out) {
  SSA_ASSIGN_OR_RETURN(const int v, MaybeInt(fail));
  *out = v;
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagatesAndShortCircuits) {
  int side_effects = 0;
  EXPECT_EQ(PassThrough(true, &side_effects).code(), StatusCode::kInternal);
  EXPECT_EQ(side_effects, 0);
  EXPECT_TRUE(PassThrough(false, &side_effects).ok());
  EXPECT_EQ(side_effects, 1);
}

TEST(StatusMacroTest, AssignOrReturnMovesValueOrPropagates) {
  int out = 0;
  EXPECT_TRUE(AssignOrReturnUser(false, &out).ok());
  EXPECT_EQ(out, 7);
  out = 0;
  EXPECT_EQ(AssignOrReturnUser(true, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(out, 0);
}

/// Runs `count` auctions on `engine`, appending each settlement to `writer`.
template <typename Engine>
void RunAndLog(Engine* engine, SettlementLogWriter* writer, int count) {
  for (int i = 0; i < count; ++i) {
    const AuctionOutcome& outcome = engine->RunAuction();
    ASSERT_TRUE(writer
                    ->Append(SettlementRecord::FromOutcome(
                        static_cast<uint64_t>(engine->auctions_run()),
                        outcome))
                    .ok());
  }
}

class SettlementLogTest : public ::testing::TestWithParam<LogSyncMode> {};

TEST_P(SettlementLogTest, WriteReadRoundTrip) {
  const std::string path = TempPath("log_roundtrip");
  std::remove(path.c_str());

  Workload w = MakePaperWorkload(SmallConfig(3));
  EngineConfig config;
  config.seed = 5;
  AuctionEngine engine(config, w, RoiStrategies(w));

  LogWriterOptions options;
  options.sync = GetParam();
  options.group_records = 4;
  auto writer = SettlementLogWriter::Open(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  RunAndLog(&engine, writer->get(), 10);
  ASSERT_TRUE((*writer)->Flush().ok());
  EXPECT_EQ((*writer)->records_appended(), 10);
  if (GetParam() == LogSyncMode::kFsyncEach) {
    EXPECT_EQ((*writer)->syncs(), (*writer)->commits());
  }
  writer->reset();

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_EQ(stats.records, 10);
  EXPECT_EQ(stats.last_seq, 10u);
  EXPECT_FALSE(stats.tail_truncated());
  ASSERT_EQ(records.size(), 10u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 1);
    EXPECT_EQ(records[i].query.time, static_cast<int64_t>(i + 1));
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllSyncModes, SettlementLogTest,
                         ::testing::Values(LogSyncMode::kBuffered,
                                           LogSyncMode::kGroupFsync,
                                           LogSyncMode::kFsyncEach));

TEST(SettlementLogReaderTest, TornTailIsReportedAndTruncatable) {
  const std::string path = TempPath("log_torn");
  std::remove(path.c_str());

  Workload w = MakePaperWorkload(SmallConfig(7));
  EngineConfig config;
  config.seed = 11;
  AuctionEngine engine(config, w, RoiStrategies(w));
  {
    auto writer = SettlementLogWriter::Open(path, LogWriterOptions{});
    ASSERT_TRUE(writer.ok());
    RunAndLog(&engine, writer->get(), 6);
    ASSERT_TRUE((*writer)->Flush().ok());
  }

  // Append a torn frame: a valid record's prefix, cut mid-payload.
  std::string frame;
  EncodeLogFrame(
      SettlementRecord::FromOutcome(7, engine.RunAuction()), &frame);
  {
    FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(frame.data(), 1, frame.size() / 2, f);
    std::fclose(f);
  }

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_EQ(stats.records, 6);
  EXPECT_TRUE(stats.tail_truncated());
  EXPECT_EQ(stats.corrupt_bytes, frame.size() / 2);

  // Truncate at the corruption point; the log reads clean afterwards.
  ASSERT_TRUE(TruncateFile(path, stats.valid_bytes).ok());
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_EQ(stats.records, 6);
  EXPECT_FALSE(stats.tail_truncated());
  std::remove(path.c_str());
}

TEST(SettlementLogReaderTest, MidLogBitFlipEndsScanAtCorruption) {
  const std::string path = TempPath("log_bitflip");
  std::remove(path.c_str());
  Workload w = MakePaperWorkload(SmallConfig(13));
  EngineConfig config;
  config.seed = 17;
  AuctionEngine engine(config, w, RoiStrategies(w));
  {
    auto writer = SettlementLogWriter::Open(path, LogWriterOptions{});
    ASSERT_TRUE(writer.ok());
    RunAndLog(&engine, writer->get(), 8);
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data).ok());
  data[data.size() / 2] ^= 0x01;  // flip one bit mid-file
  ASSERT_TRUE(AtomicWriteFile(path, data).ok());

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_LT(stats.records, 8);  // scan stopped at the flipped frame
  EXPECT_TRUE(stats.tail_truncated());
  EXPECT_EQ(stats.valid_bytes + stats.corrupt_bytes, data.size());
  std::remove(path.c_str());
}

TEST(SettlementLogWriterTest, RejectsOutOfSequenceRecords) {
  const std::string path = TempPath("log_seq");
  std::remove(path.c_str());
  Workload w = MakePaperWorkload(SmallConfig(19));
  EngineConfig config;
  config.seed = 23;
  AuctionEngine engine(config, w, RoiStrategies(w));
  auto writer = SettlementLogWriter::Open(path, LogWriterOptions{});
  ASSERT_TRUE(writer.ok());
  const AuctionOutcome& outcome = engine.RunAuction();
  EXPECT_TRUE((*writer)->Append(SettlementRecord::FromOutcome(1, outcome)).ok());
  const Status skip =
      (*writer)->Append(SettlementRecord::FromOutcome(3, outcome));
  EXPECT_EQ(skip.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

/// Checkpoint round trip: run, checkpoint, keep running (the oracle
/// trajectory); then restore a fresh engine and verify it reproduces the
/// post-checkpoint trajectory bitwise.
template <typename Engine, typename MakeEngine>
void CheckpointRoundTrip(MakeEngine make_engine) {
  const std::string path = TempPath("ckpt_roundtrip");
  std::remove(path.c_str());

  std::unique_ptr<Engine> original = make_engine();
  for (int i = 0; i < 40; ++i) original->RunAuction();
  ASSERT_TRUE(original->WriteCheckpoint(path).ok());
  const Money revenue_at_checkpoint = original->total_revenue();

  std::vector<AuctionOutcome> expected;
  for (int i = 0; i < 25; ++i) expected.push_back(original->RunAuction());

  std::unique_ptr<Engine> restored = make_engine();
  ASSERT_TRUE(restored->RestoreFromCheckpoint(path).ok());
  EXPECT_EQ(restored->auctions_run(), 40);
  EXPECT_EQ(restored->total_revenue(), revenue_at_checkpoint);
  for (int i = 0; i < 25; ++i) {
    const AuctionOutcome& got = restored->RunAuction();
    const AuctionOutcome& want = expected[i];
    ASSERT_EQ(got.query.keyword, want.query.keyword);
    ASSERT_EQ(got.query.time, want.query.time);
    ASSERT_EQ(got.wd.allocation.slot_to_advertiser,
              want.wd.allocation.slot_to_advertiser);
    ASSERT_EQ(got.prices, want.prices);
    ASSERT_EQ(got.revenue_charged, want.revenue_charged);
  }
  ExpectAccountsBitwiseEq(original->accounts(), restored->accounts());
  ASSERT_EQ(original->total_revenue(), restored->total_revenue());
  std::remove(path.c_str());
}

TEST(CheckpointTest, SingleEngineRoundTripIsBitwise) {
  CheckpointRoundTrip<AuctionEngine>([] {
    Workload w = MakePaperWorkload(SmallConfig(29));
    EngineConfig config;
    config.seed = 31;
    return std::make_unique<AuctionEngine>(config, w, RoiStrategies(w));
  });
}

TEST(CheckpointTest, ShardedEngineRoundTripIsBitwise) {
  CheckpointRoundTrip<ShardedAuctionEngine>([] {
    Workload w = MakePaperWorkload(SmallConfig(29));
    ShardedEngineConfig config;
    config.engine.seed = 31;
    config.num_shards = 3;
    return std::make_unique<ShardedAuctionEngine>(config, w, RoiStrategies(w));
  });
}

TEST(CheckpointTest, CheckpointIsPortableAcrossShardLayouts) {
  // A checkpoint taken by the single engine restores into a sharded engine
  // (cache keys are stored by global advertiser id) and the trajectories
  // stay bitwise-equal — the same determinism contract the engines already
  // share, now across a persistence boundary.
  const std::string path = TempPath("ckpt_portable");
  std::remove(path.c_str());
  Workload w = MakePaperWorkload(SmallConfig(37));
  EngineConfig config;
  config.seed = 41;
  AuctionEngine single(config, w, RoiStrategies(w));
  for (int i = 0; i < 30; ++i) single.RunAuction();
  ASSERT_TRUE(single.WriteCheckpoint(path).ok());

  ShardedEngineConfig sharded_config;
  sharded_config.engine = config;
  sharded_config.num_shards = 4;
  ShardedAuctionEngine sharded(sharded_config, w, RoiStrategies(w));
  ASSERT_TRUE(sharded.RestoreFromCheckpoint(path).ok());

  for (int i = 0; i < 20; ++i) {
    const AuctionOutcome& want = single.RunAuction();
    const AuctionOutcome& got = sharded.RunAuction();
    ASSERT_EQ(got.query.keyword, want.query.keyword);
    ASSERT_EQ(got.wd.allocation.slot_to_advertiser,
              want.wd.allocation.slot_to_advertiser);
    ASSERT_EQ(got.revenue_charged, want.revenue_charged);
  }
  ExpectAccountsBitwiseEq(single.accounts(), sharded.accounts());
  // Restored strategies re-emitted the checkpointed tables: recompilations
  // verified against the primed fingerprints.
  EXPECT_GT(sharded.verified_recompiles(), 0);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CheckpointIsPortableAcrossRepartitionedLayouts) {
  // Shard-layout independence end to end: the writer runs on a *rebalanced*
  // (unequal) layout, the reader restores onto a different unequal layout
  // and keeps repartitioning afterwards — trajectories stay bitwise and
  // every recompilation still verifies against the checkpointed keys
  // (cache keys are global-advertiser-id indexed on both sides).
  const std::string path = TempPath("ckpt_repartitioned");
  std::remove(path.c_str());
  Workload w = MakePaperWorkload(SmallConfig(59));
  ShardedEngineConfig config;
  config.engine.seed = 61;
  config.num_shards = 4;

  ShardedAuctionEngine writer(config, w, RoiStrategies(w));
  ASSERT_TRUE(writer.Repartition({{0, 3}, {3, 7}, {7, 25}, {25, 30}}).ok());
  for (int i = 0; i < 30; ++i) writer.RunAuction();
  ASSERT_TRUE(writer.WriteCheckpoint(path).ok());

  ShardedAuctionEngine reader(config, w, RoiStrategies(w));
  ASSERT_TRUE(
      reader.Repartition({{0, 15}, {15, 28}, {28, 29}, {29, 30}}).ok());
  ASSERT_TRUE(reader.RestoreFromCheckpoint(path).ok());
  EXPECT_EQ(reader.auctions_run(), 30);

  for (int i = 0; i < 30; ++i) {
    const AuctionOutcome& want = writer.RunAuction();
    const AuctionOutcome& got = reader.RunAuction();
    ASSERT_EQ(got.query.keyword, want.query.keyword);
    ASSERT_EQ(got.wd.allocation.slot_to_advertiser,
              want.wd.allocation.slot_to_advertiser);
    ASSERT_EQ(got.revenue_charged, want.revenue_charged);
    if (i == 10) {
      // Keep moving boundaries after the restore: still bitwise.
      ASSERT_TRUE(reader.Repartition({{0, 10}, {10, 30}}).ok());
    }
    if (i == 20) {
      reader.RebalanceShards();
    }
  }
  ExpectAccountsBitwiseEq(writer.accounts(), reader.accounts());
  ASSERT_EQ(writer.total_revenue(), reader.total_revenue());
  // The restored strategies re-emitted the checkpointed tables, and the
  // fingerprint verification survived the layout changes.
  EXPECT_GT(reader.verified_recompiles(), 0);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RestoreRejectsShapeMismatchAndCorruption) {
  const std::string path = TempPath("ckpt_reject");
  std::remove(path.c_str());
  Workload w = MakePaperWorkload(SmallConfig(43));
  EngineConfig config;
  config.seed = 47;
  AuctionEngine engine(config, w, RoiStrategies(w));
  for (int i = 0; i < 5; ++i) engine.RunAuction();
  ASSERT_TRUE(engine.WriteCheckpoint(path).ok());

  // Different population shape: restore must refuse without side effects.
  WorkloadConfig other_config = SmallConfig(43);
  other_config.num_advertisers = 12;
  Workload other = MakePaperWorkload(other_config);
  AuctionEngine mismatched(config, other, RoiStrategies(other));
  EXPECT_EQ(mismatched.RestoreFromCheckpoint(path).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mismatched.auctions_run(), 0);

  // Flip one payload bit: the CRC must catch it.
  std::string data;
  ASSERT_TRUE(ReadFileToString(path, &data).ok());
  data[data.size() - 3] ^= 0x40;
  ASSERT_TRUE(AtomicWriteFile(path, data).ok());
  AuctionEngine fresh(config, w, RoiStrategies(w));
  EXPECT_FALSE(fresh.RestoreFromCheckpoint(path).ok());

  // Missing file is NotFound, not a crash.
  std::remove(path.c_str());
  EXPECT_EQ(fresh.RestoreFromCheckpoint(path).code(), StatusCode::kNotFound);
}

TEST(RecoveryTest, RestoreThenReplayReachesUninterruptedState) {
  const std::string log_path = TempPath("recover_log");
  const std::string ckpt_path = TempPath("recover_ckpt");
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());

  auto make_engine = [] {
    Workload w = MakePaperWorkload(SmallConfig(53));
    EngineConfig config;
    config.seed = 59;
    return std::make_unique<AuctionEngine>(config, w, RoiStrategies(w));
  };

  // Uninterrupted oracle: 70 auctions, checkpoint at 40, logging all along.
  auto oracle = make_engine();
  {
    auto writer = SettlementLogWriter::Open(log_path, LogWriterOptions{});
    ASSERT_TRUE(writer.ok());
    RunAndLog(oracle.get(), writer->get(), 40);
    ASSERT_TRUE(oracle->WriteCheckpoint(ckpt_path).ok());
    RunAndLog(oracle.get(), writer->get(), 30);
    ASSERT_TRUE((*writer)->Flush().ok());
  }

  // Recover a fresh engine from checkpoint + log.
  auto recovered = make_engine();
  RecoveryOptions options;
  options.checkpoint_path = ckpt_path;
  options.log_path = log_path;
  options.stream = QueryStream::kInternal;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(recovered.get(), options, &report).ok());
  EXPECT_EQ(report.checkpoint_seq, 40u);
  EXPECT_EQ(report.records_skipped, 40);
  EXPECT_EQ(report.records_replayed, 30);
  EXPECT_EQ(report.recovered_seq, 70u);
  EXPECT_FALSE(report.tail_truncated);
  EXPECT_EQ(report.verify_mismatches, 0);

  ExpectAccountsBitwiseEq(oracle->accounts(), recovered->accounts());
  ASSERT_EQ(oracle->total_revenue(), recovered->total_revenue());
  // The next auction after recovery matches the uninterrupted run exactly:
  // RNG streams and query generator resumed mid-stream.
  const AuctionOutcome& want = oracle->RunAuction();
  const AuctionOutcome& got = recovered->RunAuction();
  ASSERT_EQ(got.query.keyword, want.query.keyword);
  ASSERT_EQ(got.wd.allocation.slot_to_advertiser,
            want.wd.allocation.slot_to_advertiser);
  ASSERT_EQ(got.prices, want.prices);
  ASSERT_EQ(got.revenue_charged, want.revenue_charged);
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(RecoveryTest, NoCheckpointReplaysWholeLogFromScratch) {
  const std::string log_path = TempPath("recover_nockpt");
  std::remove(log_path.c_str());
  auto make_engine = [] {
    Workload w = MakePaperWorkload(SmallConfig(61));
    EngineConfig config;
    config.seed = 67;
    return std::make_unique<AuctionEngine>(config, w, RoiStrategies(w));
  };
  auto oracle = make_engine();
  {
    auto writer = SettlementLogWriter::Open(log_path, LogWriterOptions{});
    ASSERT_TRUE(writer.ok());
    RunAndLog(oracle.get(), writer->get(), 20);
    ASSERT_TRUE((*writer)->Flush().ok());
  }
  auto recovered = make_engine();
  RecoveryOptions options;
  options.log_path = log_path;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(recovered.get(), options, &report).ok());
  EXPECT_EQ(report.checkpoint_seq, 0u);
  EXPECT_EQ(report.records_replayed, 20);
  ExpectAccountsBitwiseEq(oracle->accounts(), recovered->accounts());
  std::remove(log_path.c_str());
}

TEST(RecoveryTest, SequenceGapIsDataLoss) {
  const std::string log_path = TempPath("recover_gap");
  std::remove(log_path.c_str());
  Workload w = MakePaperWorkload(SmallConfig(71));
  EngineConfig config;
  config.seed = 73;
  AuctionEngine engine(config, w, RoiStrategies(w));
  // Hand-craft a log starting at seq 5: a fresh engine (position 0) cannot
  // bridge the gap and must refuse rather than replay a wrong suffix.
  std::string frames;
  EncodeLogFrame(SettlementRecord::FromOutcome(5, engine.RunAuction()),
                 &frames);
  ASSERT_TRUE(AtomicWriteFile(log_path, frames).ok());

  AuctionEngine fresh(config, w, RoiStrategies(w));
  RecoveryOptions options;
  options.log_path = log_path;
  RecoveryReport report;
  EXPECT_EQ(RecoverEngine(&fresh, options, &report).code(),
            StatusCode::kDataLoss);
  std::remove(log_path.c_str());
}

}  // namespace
}  // namespace ssa
