#include <gtest/gtest.h>

#include "core/above_bids.h"

namespace ssa {
namespace {

TEST(AboveBidsTest, RevenueSemantics) {
  // Bid: advertiser 0 pays 5 if placed above advertiser 1.
  const std::vector<AboveBid> bids = {{0, 1, 5}};
  // 0 above 1.
  EXPECT_DOUBLE_EQ(AboveBidsRevenue({0, 1}, 3, bids), 5.0);
  // 1 above 0.
  EXPECT_DOUBLE_EQ(AboveBidsRevenue({1, 0}, 3, bids), 0.0);
  // 0 placed, 1 unassigned: still "above".
  EXPECT_DOUBLE_EQ(AboveBidsRevenue({0, -1}, 3, bids), 5.0);
  // 0 unassigned: bidder never pays.
  EXPECT_DOUBLE_EQ(AboveBidsRevenue({1, -1}, 3, bids), 0.0);
  EXPECT_DOUBLE_EQ(AboveBidsRevenue({-1, -1}, 3, bids), 0.0);
}

TEST(AboveBidsTest, ExhaustiveFindsMutualBidOptimum) {
  // 0 pays 5 to be above 1; 1 pays 3 to be above 0 — only one can win.
  const std::vector<AboveBid> bids = {{0, 1, 5}, {1, 0, 3}};
  const AboveWdResult r = SolveAboveBidsExhaustive(2, 2, bids);
  EXPECT_DOUBLE_EQ(r.revenue, 5.0);
}

TEST(AboveBidsTest, ExhaustiveHandlesEmptyBids) {
  const AboveWdResult r = SolveAboveBidsExhaustive(3, 2, {});
  EXPECT_DOUBLE_EQ(r.revenue, 0.0);
}

TEST(AboveBidsTest, FeedbackArcEncoding) {
  // Cycle 0 -> 1 -> 2 -> 0 with weights 4, 4, 4 and k = 3: any ordering
  // breaks exactly one arc, so the optimum keeps 8.
  const auto bids = EncodeFeedbackArcInstance({{0, 1, 4.0}, {1, 2, 4.0},
                                               {2, 0, 4.0}});
  const AboveWdResult r = SolveAboveBidsExhaustive(3, 3, bids);
  EXPECT_DOUBLE_EQ(r.revenue, 8.0);
}

TEST(AboveBidsTest, GreedyIsFeasibleAndAtMostOptimal) {
  const auto bids = EncodeFeedbackArcInstance(
      {{0, 1, 4.0}, {1, 2, 4.0}, {2, 0, 4.0}, {0, 2, 1.0}});
  const AboveWdResult greedy = SolveAboveBidsGreedy(3, 3, bids);
  const AboveWdResult exact = SolveAboveBidsExhaustive(3, 3, bids);
  EXPECT_LE(greedy.revenue, exact.revenue + 1e-12);
  // Greedy revenue must match a re-evaluation of its own ordering.
  EXPECT_DOUBLE_EQ(greedy.revenue,
                   AboveBidsRevenue(greedy.slot_to_advertiser, 3, bids));
}

// Randomized: greedy never beats exhaustive, and exhaustive revenue is
// monotone in k (more slots cannot hurt). On small instances greedy often
// matches; Theorem 3 (APX-hardness) says no polynomial algorithm closes the
// gap in general.
TEST(AboveBidsTest, RandomGreedyNeverBeatsExhaustive) {
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % 10;
  };
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<AboveBid> bids;
    const int n = 4;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && next() < 5) {
          bids.push_back({u, v, static_cast<Money>(1 + next())});
        }
      }
    }
    const AboveWdResult greedy = SolveAboveBidsGreedy(n, 2, bids);
    const AboveWdResult exact2 = SolveAboveBidsExhaustive(n, 2, bids);
    const AboveWdResult exact3 = SolveAboveBidsExhaustive(n, 3, bids);
    EXPECT_LE(greedy.revenue, exact2.revenue + 1e-12);
    EXPECT_LE(exact2.revenue, exact3.revenue + 1e-12);  // monotone in k
  }
}

}  // namespace
}  // namespace ssa
