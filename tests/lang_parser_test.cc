#include <gtest/gtest.h>

#include "lang/parser.h"

namespace ssa {
namespace lang {
namespace {

// Figure 5 verbatim (modulo the paper's known typo on line 11, where the
// overspending branch should test '>' — kept faithful here since the parser
// does not care).
constexpr const char kFigure5[] = R"sql(
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent / time < targetSpendRate THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi =
      ( SELECT MAX( K.roi )
        FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent / time > targetSpendRate
  THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi =
      ( SELECT MIN( K.roi )
        FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value =
    ( SELECT SUM( K.bid )
      FROM Keywords K
      WHERE K.relevance > 0.7
      AND K.formula = Bids.formula );
}
)sql";

TEST(ParserTest, ParsesFigure5) {
  auto program = ParseProgram(kFigure5);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->triggers.size(), 1u);
  const TriggerDecl& trigger = program->triggers[0];
  EXPECT_EQ(trigger.name, "bid");
  EXPECT_EQ(trigger.table, "Query");
  ASSERT_EQ(trigger.body.size(), 2u);  // IF block + Bids update

  const Stmt& if_stmt = *trigger.body[0];
  ASSERT_EQ(if_stmt.kind, Stmt::Kind::kIf);
  ASSERT_EQ(if_stmt.branches.size(), 2u);  // IF + ELSEIF
  EXPECT_TRUE(if_stmt.else_body.empty());
  // Each branch body is a single UPDATE on Keywords.
  for (const auto& [cond, body] : if_stmt.branches) {
    ASSERT_NE(cond, nullptr);
    ASSERT_EQ(body.size(), 1u);
    EXPECT_EQ(body[0]->kind, Stmt::Kind::kUpdate);
    EXPECT_EQ(body[0]->table, "Keywords");
    ASSERT_EQ(body[0]->assignments.size(), 1u);
    EXPECT_EQ(body[0]->assignments[0].column, "bid");
    ASSERT_NE(body[0]->where, nullptr);
  }

  const Stmt& update = *trigger.body[1];
  ASSERT_EQ(update.kind, Stmt::Kind::kUpdate);
  EXPECT_EQ(update.table, "Bids");
  ASSERT_EQ(update.assignments.size(), 1u);
  // RHS is a scalar subquery with a correlated WHERE.
  const Expr& rhs = *update.assignments[0].value;
  ASSERT_EQ(rhs.kind, Expr::Kind::kSubquery);
  EXPECT_EQ(rhs.aggregate, AggregateFn::kSum);
  EXPECT_EQ(rhs.agg_qualifier, "K");
  EXPECT_EQ(rhs.agg_column, "bid");
  EXPECT_EQ(rhs.from_table, "Keywords");
  EXPECT_EQ(rhs.from_alias, "K");
  ASSERT_NE(rhs.where, nullptr);
}

TEST(ParserTest, SubqueryWithoutAliasOrWhere) {
  auto p = ParseProgram(
      "CREATE TRIGGER t AFTER INSERT ON Query {"
      " UPDATE T SET x = (SELECT COUNT(y) FROM T); }");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Expr& rhs = *p->triggers[0].body[0]->assignments[0].value;
  EXPECT_EQ(rhs.aggregate, AggregateFn::kCount);
  EXPECT_TRUE(rhs.from_alias.empty());
  EXPECT_EQ(rhs.where, nullptr);
}

TEST(ParserTest, MultipleAssignments) {
  auto p = ParseProgram(
      "CREATE TRIGGER t AFTER INSERT ON Query {"
      " UPDATE T SET a = 1, b = a + 2 WHERE a < b; }");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->triggers[0].body[0]->assignments.size(), 2u);
}

TEST(ParserTest, ElseBranch) {
  auto p = ParseProgram(
      "CREATE TRIGGER t AFTER INSERT ON Query {"
      " IF x > 0 THEN UPDATE T SET a = 1; ELSE UPDATE T SET a = 2; ENDIF }");
  ASSERT_TRUE(p.ok());
  const Stmt& s = *p->triggers[0].body[0];
  EXPECT_EQ(s.branches.size(), 1u);
  EXPECT_EQ(s.else_body.size(), 1u);
}

TEST(ParserTest, NestedIf) {
  auto p = ParseProgram(
      "CREATE TRIGGER t AFTER INSERT ON Query {"
      " IF x > 0 THEN IF y > 0 THEN UPDATE T SET a = 1; ENDIF ENDIF }");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Stmt& outer = *p->triggers[0].body[0];
  ASSERT_EQ(outer.branches[0].second.size(), 1u);
  EXPECT_EQ(outer.branches[0].second[0]->kind, Stmt::Kind::kIf);
}

TEST(ParserTest, MultipleTriggers) {
  auto p = ParseProgram(
      "CREATE TRIGGER a AFTER INSERT ON Query { }"
      "CREATE TRIGGER b AFTER INSERT ON Click { UPDATE T SET x = 1; }");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->triggers.size(), 2u);
  EXPECT_EQ(p->triggers[1].table, "Click");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("CREATE TRIGGER").ok());
  EXPECT_FALSE(ParseProgram("UPDATE T SET a = 1;").ok());  // outside trigger
  EXPECT_FALSE(
      ParseProgram("CREATE TRIGGER t AFTER INSERT ON Q { UPDATE T a = 1; }")
          .ok());  // missing SET
  EXPECT_FALSE(
      ParseProgram("CREATE TRIGGER t AFTER INSERT ON Q { IF x THEN }")
          .ok());  // missing ENDIF
  EXPECT_FALSE(
      ParseProgram(
          "CREATE TRIGGER t AFTER INSERT ON Q { UPDATE T SET a = ; }")
          .ok());  // missing expression
}

TEST(ParserTest, OperatorPrecedence) {
  auto p = ParseProgram(
      "CREATE TRIGGER t AFTER INSERT ON Q {"
      " UPDATE T SET a = 1 + 2 * 3; }");
  ASSERT_TRUE(p.ok());
  const Expr& rhs = *p->triggers[0].body[0]->assignments[0].value;
  ASSERT_EQ(rhs.kind, Expr::Kind::kBinary);
  EXPECT_EQ(rhs.op, BinaryOp::kAdd);  // * binds tighter
  EXPECT_EQ(rhs.rhs->op, BinaryOp::kMul);
}

}  // namespace
}  // namespace lang
}  // namespace ssa
