// Section IV-A's motivating scenario: "advertisers all use the same general
// strategy of starting each day by bidding low and then gradually increasing
// their bids as the end of the day approaches. However, they might each
// start with a different amount and might increase their bids at different
// rates." The advertiser-specific parameters (start, rate) live in sorted
// lists; time-of-day is a shared global; the per-slot score
// w_ij * f_j(start_i + rate_i * t) is monotone in every parameter — exactly
// what the Threshold Algorithm needs.
//
// This test (1) expresses the strategy as a bidding program in the
// Section II-B language and checks it against a native implementation, and
// (2) runs TA over the (ctr, current-bid) lists to find the per-slot top-k
// without scanning all advertisers, validating the Section IV-A pipeline on
// a second strategy besides ROI equalization.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "strategy/program_strategy.h"
#include "strategy/threshold_algorithm.h"
#include "util/rng.h"

namespace ssa {
namespace {

// The dayparting program: bid = min(maxbid, start + rate * time). The
// advertiser-specific start/rate are prefilled into private columns the
// provider does not touch (the Keywords table doubles as program state).
constexpr const char kDaypart[] = R"sql(
CREATE TRIGGER bid AFTER INSERT ON Query
{
  UPDATE Keywords SET bid = startAmount + rampRate * time;
  UPDATE Keywords SET bid = maxbid WHERE bid > maxbid;
  UPDATE Bids
  SET value =
    ( SELECT SUM( K.bid ) FROM Keywords K
      WHERE K.relevance > 0.7 AND K.formula = Bids.formula );
}
)sql";

// ProgramStrategy owns the Keywords schema; extend it by... the language
// resolves unknown identifiers against scalars, so start/rate ride in as
// scalars here. Per-advertiser values come from each strategy's own env —
// we emulate by substituting literals into the source.
std::string MaterializeProgram(double start, double rate) {
  std::string src = kDaypart;
  auto replace_all = [&src](const std::string& from, const std::string& to) {
    size_t pos = 0;
    while ((pos = src.find(from, pos)) != std::string::npos) {
      src.replace(pos, from.size(), to);
      pos += to.size();
    }
  };
  replace_all("startAmount", std::to_string(start));
  replace_all("rampRate", std::to_string(rate));
  return src;
}

TEST(DaypartStrategyTest, ProgramMatchesClosedForm) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const double start = static_cast<double>(rng.UniformInt(0, 10));
    const double rate = static_cast<double>(rng.UniformInt(1, 3));
    const Money maxbid = static_cast<Money>(rng.UniformInt(20, 60));

    auto strategy = ProgramStrategy::Create(MaterializeProgram(start, rate),
                                            {{"kw0", Formula::Click()}});
    ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

    AdvertiserAccount account;
    account.value_per_click = {maxbid};
    account.max_bid = {maxbid};
    account.value_gained = {0};
    account.spent_per_keyword = {0};
    account.target_spend_rate = 1;

    for (int64_t t = 1; t <= 50; t += 7) {
      Query q;
      q.keyword = 0;
      q.time = t;
      q.relevance = {1.0};
      BidsTable bids;
      (*strategy)->MakeBids(q, account, &bids);
      ASSERT_EQ(bids.size(), 1u);
      const double expected =
          std::min(static_cast<double>(maxbid), start + rate * t);
      EXPECT_DOUBLE_EQ(bids.rows()[0].value, expected)
          << "t=" << t << " start=" << start << " rate=" << rate;
    }
  }
}

TEST(DaypartStrategyTest, ThresholdAlgorithmFindsTopBiddersMidDay) {
  // n advertisers with per-advertiser (start, rate); at a fixed time-of-day
  // the current bid is monotone in both parameters, so TA over the
  // (start + rate * t)-sorted list x ctr-sorted list is exact.
  Rng rng(9);
  const int n = 4000, k = 10;
  std::vector<double> start(n), rate(n), ctr(n);
  for (int i = 0; i < n; ++i) {
    start[i] = static_cast<double>(rng.UniformInt(0, 20));
    rate[i] = rng.Uniform(0.01, 0.5);
    ctr[i] = rng.Uniform(0.4, 0.9);
  }
  const double t = 300.0;  // mid-day
  auto bid_at = [&](int i) { return start[i] + rate[i] * t; };

  auto sorted_by = [&](auto value_fn) {
    std::vector<std::pair<double, int32_t>> entries;
    for (int i = 0; i < n; ++i) entries.emplace_back(value_fn(i), i);
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    return entries;
  };
  VectorSortedList bid_list(sorted_by(bid_at));
  VectorSortedList ctr_list(sorted_by([&](int i) { return ctr[i]; }));

  const auto ta = ThresholdTopK(
      {&bid_list, &ctr_list},
      [&](int32_t id) { return ctr[id] * bid_at(id); },
      [](const std::vector<double>& c) { return c[0] * c[1]; }, k, n);

  std::vector<std::pair<double, int32_t>> all;
  for (int i = 0; i < n; ++i) all.emplace_back(ctr[i] * bid_at(i), i);
  std::sort(all.rbegin(), all.rend());
  ASSERT_EQ(ta.top.size(), static_cast<size_t>(k));
  for (int r = 0; r < k; ++r) EXPECT_EQ(ta.top[r].second, all[r].second);
  // Sublinear probing: far fewer sorted accesses than 2n.
  EXPECT_LT(ta.sorted_accesses, n);
}

}  // namespace
}  // namespace ssa
