#include <gtest/gtest.h>

#include "lang/interpreter.h"
#include "lang/parser.h"

namespace ssa {
namespace lang {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  /// Wraps statements into a trigger, parses and fires it against db_.
  Status Run(const std::string& body) {
    auto program =
        ParseProgram("CREATE TRIGGER t AFTER INSERT ON Query {" + body + "}");
    if (!program.ok()) return program.status();
    return Interpreter::FireTriggers(*program, "Query", &db_, scalars_);
  }

  Database db_;
  ScalarEnv scalars_;
};

TEST_F(InterpreterTest, SimpleUpdateAllRows) {
  Table* t = db_.AddTable("T", {"a"});
  t->InsertRow({Value::Number(1)});
  t->InsertRow({Value::Number(2)});
  ASSERT_TRUE(Run("UPDATE T SET a = a + 10;").ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 11);
  EXPECT_DOUBLE_EQ(t->At(1, 0).number(), 12);
}

TEST_F(InterpreterTest, WhereFiltersRows) {
  Table* t = db_.AddTable("T", {"a", "b"});
  t->InsertRow({Value::Number(1), Value::Number(0)});
  t->InsertRow({Value::Number(5), Value::Number(0)});
  ASSERT_TRUE(Run("UPDATE T SET b = 1 WHERE a > 3;").ok());
  EXPECT_DOUBLE_EQ(t->At(0, 1).number(), 0);
  EXPECT_DOUBLE_EQ(t->At(1, 1).number(), 1);
}

TEST_F(InterpreterTest, SimultaneousAssignmentSemantics) {
  // SQL evaluates all SET expressions against the pre-update row: swapping
  // works.
  Table* t = db_.AddTable("T", {"a", "b"});
  t->InsertRow({Value::Number(3), Value::Number(7)});
  ASSERT_TRUE(Run("UPDATE T SET a = b, b = a;").ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 7);
  EXPECT_DOUBLE_EQ(t->At(0, 1).number(), 3);
}

TEST_F(InterpreterTest, ScalarVariables) {
  Table* t = db_.AddTable("T", {"a"});
  t->InsertRow({Value::Number(0)});
  scalars_.Set("amtSpent", 12.0);
  scalars_.Set("time", 4.0);
  ASSERT_TRUE(Run("UPDATE T SET a = amtSpent / time;").ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 3.0);
}

TEST_F(InterpreterTest, ColumnShadowsScalar) {
  Table* t = db_.AddTable("T", {"time"});
  t->InsertRow({Value::Number(99)});
  scalars_.Set("time", 4.0);
  Table* out = db_.AddTable("Out", {"x"});
  out->InsertRow({Value::Number(0)});
  ASSERT_TRUE(Run("UPDATE Out SET x = (SELECT MAX(time) FROM T);").ok());
  EXPECT_DOUBLE_EQ(out->At(0, 0).number(), 99);
}

TEST_F(InterpreterTest, AggregatesOverTable) {
  Table* t = db_.AddTable("T", {"v"});
  for (double x : {4.0, 9.0, 2.0}) t->InsertRow({Value::Number(x)});
  Table* out = db_.AddTable("Out", {"mx", "mn", "sm", "ct", "av"});
  out->InsertRow({Value::Number(0), Value::Number(0), Value::Number(0),
                  Value::Number(0), Value::Number(0)});
  ASSERT_TRUE(Run("UPDATE Out SET"
                  " mx = (SELECT MAX(v) FROM T),"
                  " mn = (SELECT MIN(v) FROM T),"
                  " sm = (SELECT SUM(v) FROM T),"
                  " ct = (SELECT COUNT(v) FROM T),"
                  " av = (SELECT AVG(v) FROM T);")
                  .ok());
  EXPECT_DOUBLE_EQ(out->At(0, 0).number(), 9);
  EXPECT_DOUBLE_EQ(out->At(0, 1).number(), 2);
  EXPECT_DOUBLE_EQ(out->At(0, 2).number(), 15);
  EXPECT_DOUBLE_EQ(out->At(0, 3).number(), 3);
  EXPECT_DOUBLE_EQ(out->At(0, 4).number(), 5);
}

TEST_F(InterpreterTest, EmptyAggregates) {
  db_.AddTable("T", {"v"});  // no rows
  Table* out = db_.AddTable("Out", {"mx", "sm", "ct"});
  out->InsertRow({Value::Number(-1), Value::Number(-1), Value::Number(-1)});
  ASSERT_TRUE(Run("UPDATE Out SET"
                  " mx = (SELECT MAX(v) FROM T),"
                  " sm = (SELECT SUM(v) FROM T),"
                  " ct = (SELECT COUNT(v) FROM T);")
                  .ok());
  EXPECT_TRUE(out->At(0, 0).is_null());  // MAX of empty => NULL
  EXPECT_DOUBLE_EQ(out->At(0, 1).number(), 0);
  EXPECT_DOUBLE_EQ(out->At(0, 2).number(), 0);
}

TEST_F(InterpreterTest, NullComparesFalse) {
  db_.AddTable("Empty", {"v"});
  Table* t = db_.AddTable("T", {"a"});
  t->InsertRow({Value::Number(1)});
  // a = NULL is false, so no row updates.
  ASSERT_TRUE(
      Run("UPDATE T SET a = 2 WHERE a = (SELECT MAX(v) FROM Empty);").ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 1);
}

TEST_F(InterpreterTest, CorrelatedSubquery) {
  // The Figure 5 pattern: Bids.value = SUM of matching keywords' bids.
  Table* keywords = db_.AddTable("Keywords", {"formula", "bid", "relevance"});
  keywords->InsertRow(
      {Value::String("Click"), Value::Number(4), Value::Number(1)});
  keywords->InsertRow(
      {Value::String("Click"), Value::Number(8), Value::Number(0)});
  keywords->InsertRow(
      {Value::String("Purchase"), Value::Number(6), Value::Number(1)});
  Table* bids = db_.AddTable("Bids", {"formula", "value"});
  bids->InsertRow({Value::String("Click"), Value::Number(0)});
  bids->InsertRow({Value::String("Purchase"), Value::Number(0)});
  ASSERT_TRUE(Run("UPDATE Bids SET value ="
                  " (SELECT SUM(K.bid) FROM Keywords K"
                  "  WHERE K.relevance > 0.7"
                  "  AND K.formula = Bids.formula);")
                  .ok());
  EXPECT_DOUBLE_EQ(bids->At(0, 1).number(), 4);  // only the relevant Click row
  EXPECT_DOUBLE_EQ(bids->At(1, 1).number(), 6);
}

TEST_F(InterpreterTest, IfElseifElse) {
  Table* t = db_.AddTable("T", {"a"});
  t->InsertRow({Value::Number(0)});
  scalars_.Set("x", 5.0);
  ASSERT_TRUE(Run("IF x < 0 THEN UPDATE T SET a = 1;"
                  " ELSEIF x < 10 THEN UPDATE T SET a = 2;"
                  " ELSE UPDATE T SET a = 3; ENDIF")
                  .ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 2);
  scalars_.Set("x", 50.0);
  ASSERT_TRUE(Run("IF x < 0 THEN UPDATE T SET a = 1;"
                  " ELSEIF x < 10 THEN UPDATE T SET a = 2;"
                  " ELSE UPDATE T SET a = 3; ENDIF")
                  .ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 3);
}

TEST_F(InterpreterTest, LogicAndNot) {
  Table* t = db_.AddTable("T", {"a", "b"});
  t->InsertRow({Value::Number(1), Value::Number(0)});
  t->InsertRow({Value::Number(1), Value::Number(1)});
  t->InsertRow({Value::Number(0), Value::Number(1)});
  ASSERT_TRUE(Run("UPDATE T SET a = 9 WHERE a = 1 AND NOT b = 1;").ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 9);
  EXPECT_DOUBLE_EQ(t->At(1, 0).number(), 1);
  EXPECT_DOUBLE_EQ(t->At(2, 0).number(), 0);
}

TEST_F(InterpreterTest, DivisionByZeroIsNull) {
  Table* t = db_.AddTable("T", {"a"});
  t->InsertRow({Value::Number(7)});
  scalars_.Set("z", 0.0);
  // 1/z is NULL; NULL < 5 is false; row untouched.
  ASSERT_TRUE(Run("UPDATE T SET a = 0 WHERE 1 / z < 5;").ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 7);
}

TEST_F(InterpreterTest, StringEquality) {
  Table* t = db_.AddTable("T", {"name", "hit"});
  t->InsertRow({Value::String("boot"), Value::Number(0)});
  t->InsertRow({Value::String("shoe"), Value::Number(0)});
  ASSERT_TRUE(Run("UPDATE T SET hit = 1 WHERE name = 'boot';").ok());
  EXPECT_DOUBLE_EQ(t->At(0, 1).number(), 1);
  EXPECT_DOUBLE_EQ(t->At(1, 1).number(), 0);
}

TEST_F(InterpreterTest, ErrorsSurface) {
  EXPECT_FALSE(Run("UPDATE Missing SET a = 1;").ok());
  Table* t = db_.AddTable("T", {"a"});
  t->InsertRow({Value::Number(1)});
  EXPECT_FALSE(Run("UPDATE T SET nosuch = 1;").ok());
  EXPECT_FALSE(Run("UPDATE T SET a = nosuchvar;").ok());
  EXPECT_FALSE(Run("UPDATE T SET a = (SELECT MAX(v) FROM Nowhere);").ok());
}

TEST_F(InterpreterTest, TriggersFilterByTable) {
  Table* t = db_.AddTable("T", {"a"});
  t->InsertRow({Value::Number(0)});
  auto program = ParseProgram(
      "CREATE TRIGGER q AFTER INSERT ON Query { UPDATE T SET a = a + 1; }"
      "CREATE TRIGGER c AFTER INSERT ON Click { UPDATE T SET a = a + 10; }");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(
      Interpreter::FireTriggers(*program, "Query", &db_, scalars_).ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 1);
  ASSERT_TRUE(
      Interpreter::FireTriggers(*program, "Click", &db_, scalars_).ok());
  EXPECT_DOUBLE_EQ(t->At(0, 0).number(), 11);
}

}  // namespace
}  // namespace lang
}  // namespace ssa
