#include "util/bounded_queue.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ssa {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;

TEST(BoundedQueueTest, FifoSingleThread) {
  BoundedQueue<int> q(8, BackpressurePolicy::kBlock);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.Push(i), QueuePushResult::kAccepted);
  }
  EXPECT_EQ(q.size(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(&v));
  EXPECT_EQ(q.accepted(), 5);
  EXPECT_EQ(q.popped(), 5);
}

TEST(BoundedQueueTest, RejectPolicySheds) {
  BoundedQueue<int> q(2, BackpressurePolicy::kReject);
  EXPECT_EQ(q.Push(1), QueuePushResult::kAccepted);
  EXPECT_EQ(q.Push(2), QueuePushResult::kAccepted);
  EXPECT_EQ(q.Push(3), QueuePushResult::kRejected);
  EXPECT_EQ(q.Push(4), QueuePushResult::kRejected);
  EXPECT_EQ(q.accepted(), 2);
  EXPECT_EQ(q.rejected(), 2);
  int v;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_EQ(q.Push(5), QueuePushResult::kAccepted);
}

TEST(BoundedQueueTest, DropOldestEvictsHead) {
  BoundedQueue<int> q(3, BackpressurePolicy::kDropOldest);
  for (int i = 1; i <= 3; ++i) q.Push(i);
  EXPECT_EQ(q.Push(4), QueuePushResult::kDroppedOldest);
  EXPECT_EQ(q.Push(5), QueuePushResult::kDroppedOldest);
  EXPECT_EQ(q.dropped_oldest(), 2);
  // 1 and 2 were evicted; survivors in FIFO order.
  int v;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 4);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 5);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, BlockPolicyBlocksUntilConsumed) {
  BoundedQueue<int> q(1, BackpressurePolicy::kBlock);
  EXPECT_EQ(q.Push(1), QueuePushResult::kAccepted);
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(q.Push(2), QueuePushResult::kAccepted);
    second_admitted.store(true);
  });
  // The producer must be stuck while the queue is full.
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_FALSE(second_admitted.load());
  int v;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> q(1, BackpressurePolicy::kBlock);
  q.Push(1);
  std::thread producer([&] {
    // Full queue, nobody consuming: blocks until Close() fails the push.
    EXPECT_EQ(q.Push(2), QueuePushResult::kClosed);
  });
  std::this_thread::sleep_for(milliseconds(20));
  q.Close();
  producer.join();
  // After close, consumers drain what was admitted, then see end-of-stream.
  int v;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_EQ(q.Push(3), QueuePushResult::kClosed);
}

TEST(BoundedQueueTest, PopBatchSizeTrigger) {
  BoundedQueue<int> q(16, BackpressurePolicy::kBlock);
  for (int i = 0; i < 10; ++i) q.Push(i);
  std::vector<int> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 4, milliseconds(100)));
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  ASSERT_TRUE(q.PopBatch(&batch, 4, milliseconds(100)));
  EXPECT_EQ(batch.size(), 8u);  // appends
  EXPECT_EQ(batch[7], 7);
}

TEST(BoundedQueueTest, PopBatchDeadlineTriggerDeliversPartial) {
  BoundedQueue<int> q(16, BackpressurePolicy::kBlock);
  q.Push(1);
  q.Push(2);
  std::vector<int> batch;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(q.PopBatch(&batch, 8, milliseconds(30)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  // Must have given late arrivals a chance but not blocked forever.
  EXPECT_LT(elapsed, milliseconds(2000));
}

TEST(BoundedQueueTest, PopBatchPicksUpLateArrivalsWithinDeadline) {
  BoundedQueue<int> q(16, BackpressurePolicy::kBlock);
  q.Push(1);
  std::thread late([&q] {
    std::this_thread::sleep_for(milliseconds(10));
    q.Push(2);
  });
  std::vector<int> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 2, milliseconds(500)));
  late.join();
  // Either the late element made the batch (usual) or it is still queued.
  if (batch.size() == 2u) {
    EXPECT_EQ(batch[1], 2);
  } else {
    int v;
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, 2);
  }
}

TEST(BoundedQueueTest, PopBatchReturnsFalseOnlyWhenClosedAndDrained) {
  BoundedQueue<int> q(4, BackpressurePolicy::kBlock);
  q.Push(7);
  q.Close();
  std::vector<int> batch;
  ASSERT_TRUE(q.PopBatch(&batch, 8, milliseconds(5)));
  EXPECT_EQ(batch, std::vector<int>{7});
  EXPECT_FALSE(q.PopBatch(&batch, 8, milliseconds(5)));
}

TEST(BoundedQueueTest, MpmcStressNothingLostOrDuplicated) {
  // 4 producers x 4 consumers over a small queue: every pushed value is
  // popped exactly once. (The TSan job runs this to certify the locking.)
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(8, BackpressurePolicy::kBlock);
  std::vector<std::vector<int>> consumed(kConsumers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&q, &consumed, c] {
      int v;
      while (q.Pop(&v)) consumed[c].push_back(v);
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_EQ(q.Push(p * kPerProducer + i), QueuePushResult::kAccepted);
      }
    });
  }
  for (size_t t = kConsumers; t < threads.size(); ++t) threads[t].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[c].join();

  std::set<int> all;
  size_t total = 0;
  for (const auto& vec : consumed) {
    total += vec.size();
    all.insert(vec.begin(), vec.end());
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(all.size(), total) << "duplicated elements";
}

TEST(MpmcRingQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpmcRingQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpmcRingQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(MpmcRingQueue<int>(9).capacity(), 16u);
  EXPECT_EQ(MpmcRingQueue<int>(1000).capacity(), 1024u);
}

TEST(MpmcRingQueueTest, FifoAndFullEmptySingleThread) {
  MpmcRingQueue<int> q(4);
  int v;
  EXPECT_FALSE(q.TryPop(&v));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99)) << "full ring must reject";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(&v));
  // Wrap-around: reuse after a full drain.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(round * 10 + i));
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(q.TryPop(&v));
      EXPECT_EQ(v, round * 10 + i);
    }
  }
}

TEST(MpmcRingQueueTest, MpmcStressNothingLostOrDuplicated) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  MpmcRingQueue<int> q(64);
  std::atomic<bool> done{false};
  std::vector<std::vector<int>> consumed(kConsumers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      int v;
      for (;;) {
        if (q.TryPop(&v)) {
          consumed[c].push_back(v);
        } else if (done.load(std::memory_order_acquire)) {
          if (!q.TryPop(&v)) break;  // drained after done
          consumed[c].push_back(v);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!q.TryPush(p * kPerProducer + i)) std::this_thread::yield();
      }
    });
  }
  for (size_t t = kConsumers; t < threads.size(); ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) threads[c].join();

  std::set<int> all;
  size_t total = 0;
  for (const auto& vec : consumed) {
    total += vec.size();
    all.insert(vec.begin(), vec.end());
  }
  EXPECT_EQ(total, static_cast<size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(all.size(), total) << "duplicated elements";
}

}  // namespace
}  // namespace ssa
