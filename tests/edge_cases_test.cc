// Edge cases and adversarial inputs across modules: massive ties, empty
// populations, degenerate dimensions, deep formulas, and cross-checks under
// deliberately hostile weight matrices.

#include <set>

#include <gtest/gtest.h>

#include "auction/query_gen.h"
#include "auction/workload.h"
#include "core/formula_parser.h"
#include "core/winner_determination.h"
#include "matching/brute_force.h"
#include "matching/hungarian.h"
#include "matching/munkres.h"
#include "strategy/threshold_algorithm.h"
#include "util/sorted_list.h"

namespace ssa {
namespace {

TEST(EdgeCaseTest, MatchingAllEqualWeights) {
  // Every edge identical: any size-k matching is optimal; solvers must not
  // loop or disagree on the objective despite total degeneracy.
  for (int n : {1, 3, 10, 50}) {
    for (int k : {1, 2, 5}) {
      const std::vector<double> w(static_cast<size_t>(n) * k, 7.0);
      const double expect = 7.0 * std::min(n, k);
      EXPECT_DOUBLE_EQ(MaxWeightMatchingDense(w, n, k).total_weight, expect);
      EXPECT_DOUBLE_EQ(MunkresMatching(w, n, k).total_weight, expect);
      if (n <= 10 && k <= 3) {
        EXPECT_DOUBLE_EQ(BruteForceMatching(w, n, k).total_weight, expect);
      }
    }
  }
}

TEST(EdgeCaseTest, MatchingAllZeroWeights) {
  const std::vector<double> w(20, 0.0);
  const Allocation a = MaxWeightMatchingDense(w, 10, 2);
  EXPECT_DOUBLE_EQ(a.total_weight, 0.0);
}

TEST(EdgeCaseTest, SingleAdvertiserManySlots) {
  std::vector<double> w = {1, 5, 3, 2};
  const Allocation a = MaxWeightMatchingDense(w, 1, 4);
  EXPECT_EQ(a.advertiser_to_slot[0], 1);
  EXPECT_DOUBLE_EQ(a.total_weight, 5.0);
  const Allocation m = MunkresMatching(w, 1, 4);
  EXPECT_DOUBLE_EQ(m.total_weight, 5.0);
}

TEST(EdgeCaseTest, WinnerDeterminationEmptyPopulation) {
  RevenueMatrix m(0, 5);
  const WdResult r = DetermineWinners(m, WdMethod::kReducedHungarian);
  EXPECT_EQ(r.allocation.NumAssigned(), 0);
  EXPECT_DOUBLE_EQ(r.expected_revenue, 0.0);
}

TEST(EdgeCaseTest, WinnerDeterminationOneSlot) {
  RevenueMatrix m(4, 1);
  for (int i = 0; i < 4; ++i) m.Set(i, 0, i + 1.0);
  for (WdMethod method : {WdMethod::kLp, WdMethod::kHungarian,
                          WdMethod::kReducedHungarian, WdMethod::kBruteForce}) {
    const WdResult r = DetermineWinners(m, method);
    EXPECT_EQ(r.allocation.slot_to_advertiser[0], 3) << WdMethodName(method);
    EXPECT_DOUBLE_EQ(r.expected_revenue, 4.0);
  }
}

TEST(EdgeCaseTest, DeepFormulaNesting) {
  // 200 nested negations: evaluation must be exact (even parity => id).
  Formula f = Formula::Click();
  for (int i = 0; i < 200; ++i) f = !f;
  AdvertiserOutcome o;
  o.clicked = true;
  EXPECT_TRUE(f.Evaluate(o));
  // And a wide disjunction over 100 slots round-trips through the parser.
  std::vector<SlotIndex> slots;
  for (int j = 0; j < 100; ++j) slots.push_back(j);
  const Formula wide = Formula::AnySlot(slots);
  auto reparsed = ParseFormula(wide.ToString());
  ASSERT_TRUE(reparsed.ok());
  o.slot = 99;
  EXPECT_TRUE(reparsed->Evaluate(o));
  o.slot = 100;
  EXPECT_FALSE(reparsed->Evaluate(o));
}

TEST(EdgeCaseTest, SortedKeyListMatchesMultisetReference) {
  Rng rng(55);
  SortedKeyList list;
  std::multiset<std::pair<double, int32_t>> reference;  // (-key, id) mirror
  std::vector<std::pair<int32_t, double>> live;
  for (int step = 0; step < 2000; ++step) {
    if (!live.empty() && rng.Bernoulli(0.4)) {
      const size_t pick = rng.NextBounded(live.size());
      auto [id, key] = live[pick];
      list.Erase(id, key);
      reference.erase(reference.find({-key, id}));
      live.erase(live.begin() + pick);
    } else {
      const int32_t id = static_cast<int32_t>(step);
      const double key = static_cast<double>(rng.UniformInt(0, 50));
      list.Insert(id, key);
      reference.emplace(-key, id);
      live.emplace_back(id, key);
    }
    ASSERT_EQ(list.size(), reference.size());
    if (!reference.empty()) {
      const auto& top = *reference.begin();
      ASSERT_EQ(list.Top().id, top.second);
      ASSERT_EQ(list.Top().key, -top.first);
    }
  }
}

TEST(EdgeCaseTest, QueryGeneratorUniformAndSequential) {
  QueryGenerator gen(10, 77);
  std::vector<int> counts(10, 0);
  for (int t = 1; t <= 20000; ++t) {
    const Query q = gen.Next();
    ASSERT_EQ(q.time, t);
    ASSERT_GE(q.keyword, 0);
    ASSERT_LT(q.keyword, 10);
    ASSERT_DOUBLE_EQ(q.relevance[q.keyword], 1.0);
    ++counts[q.keyword];
  }
  for (int c : counts) {
    EXPECT_GT(c, 1600);  // ~2000 expected; loose 4-sigma-ish bounds
    EXPECT_LT(c, 2400);
  }
}

TEST(EdgeCaseTest, WorkloadDeterministicAndIndependentOfOtherDraws) {
  WorkloadConfig config;
  config.num_advertisers = 50;
  config.seed = 123;
  const Workload a = MakePaperWorkload(config);
  const Workload b = MakePaperWorkload(config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.accounts[i].value_per_click, b.accounts[i].value_per_click);
    EXPECT_DOUBLE_EQ(a.accounts[i].target_spend_rate,
                     b.accounts[i].target_spend_rate);
  }
}

TEST(EdgeCaseTest, ThresholdAlgorithmThreeListsSumScore) {
  // TA generalizes beyond two lists / product scores: sum of three
  // attributes, cross-checked against a full scan.
  Rng rng(31);
  const int n = 500, k = 7;
  std::vector<std::vector<double>> attrs(3, std::vector<double>(n));
  for (auto& a : attrs) {
    for (double& x : a) x = rng.Uniform(0.0, 1.0);
  }
  std::vector<std::unique_ptr<VectorSortedList>> lists;
  std::vector<SortedAccessList*> raw;
  for (const auto& a : attrs) {
    std::vector<std::pair<double, int32_t>> entries;
    for (int i = 0; i < n; ++i) entries.emplace_back(a[i], i);
    std::sort(entries.begin(), entries.end(), [](const auto& x, const auto& y) {
      if (x.first != y.first) return x.first > y.first;
      return x.second < y.second;
    });
    lists.push_back(std::make_unique<VectorSortedList>(std::move(entries)));
    raw.push_back(lists.back().get());
  }
  auto score = [&](int32_t id) {
    return attrs[0][id] + attrs[1][id] + attrs[2][id];
  };
  const auto ta = ThresholdTopK(
      raw, score,
      [](const std::vector<double>& c) { return c[0] + c[1] + c[2]; }, k, n);
  // Reference.
  std::vector<std::pair<double, int32_t>> all;
  for (int i = 0; i < n; ++i) all.emplace_back(score(i), i);
  std::sort(all.rbegin(), all.rend());
  ASSERT_EQ(ta.top.size(), static_cast<size_t>(k));
  for (int r = 0; r < k; ++r) {
    EXPECT_EQ(ta.top[r].second, all[r].second) << "rank " << r;
  }
  EXPECT_LT(ta.sorted_accesses, 3 * n);  // never worse than reading all lists
}

TEST(EdgeCaseTest, MunkresKGreaterThanN) {
  // More slots than advertisers with negative entries sprinkled in.
  const std::vector<double> w = {5, -2, 3, 1,   // adv 0
                                 4, 6, -1, 2};  // adv 1
  const Allocation a = MunkresMatching(w, 2, 4);
  const Allocation b = MaxWeightMatchingDense(w, 2, 4);
  const Allocation oracle = BruteForceMatching(w, 2, 4);
  EXPECT_DOUBLE_EQ(a.total_weight, oracle.total_weight);
  EXPECT_DOUBLE_EQ(b.total_weight, oracle.total_weight);
}

}  // namespace
}  // namespace ssa
