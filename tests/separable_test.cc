#include <gtest/gtest.h>

#include "core/expected_revenue.h"
#include "core/separable.h"
#include "core/winner_determination.h"
#include "util/rng.h"

namespace ssa {
namespace {

// Build the revenue matrix for per-click value bids under any click model.
RevenueMatrix ClickBidMatrix(const std::vector<Money>& values,
                             const ClickModel& model) {
  std::vector<BidsTable> bids(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    bids[i].AddBid(Formula::Click(), values[i]);
  }
  return BuildRevenueMatrix(bids, model);
}

TEST(SeparableTest, SortAllocationMatchesHungarianOnSeparableModel) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 20, k = 4;
    SeparableClickModel model = MakeRandomSeparableClickModel(n, k, rng);
    std::vector<Money> values(n);
    for (Money& v : values) v = static_cast<Money>(rng.UniformInt(1, 50));

    const Allocation fast = SeparableAllocate(values, model);
    const WdResult exact =
        DetermineWinners(ClickBidMatrix(values, model), WdMethod::kHungarian);
    EXPECT_NEAR(fast.total_weight, exact.expected_revenue, 1e-9)
        << "trial " << trial;
  }
}

TEST(SeparableTest, SortAllocationSuboptimalOnNonSeparableModel) {
  // Crafted non-separable instance where the sort-based rule loses under a
  // natural rank-one fit. True probabilities: advertiser 0 is flat across
  // slots, advertiser 1 collapses outside the top slot; the optimum pairs
  // adv 1 with slot 0 and adv 0 with slot 1.
  MatrixClickModel model(2, 2,
                         {0.5, 0.5,    // adv 0: indifferent to position
                          0.6, 0.1});  // adv 1: top slot or nothing
  std::vector<Money> values = {10, 10};
  // Optimal: adv1->slot0 (6) + adv0->slot1 (5) = 11.
  const WdResult exact =
      DetermineWinners(ClickBidMatrix(values, model), WdMethod::kBruteForce);
  EXPECT_DOUBLE_EQ(exact.expected_revenue, 11.0);

  // A provider fitting separable factors from observed data would use row /
  // column means: advertiser factors (0.5, 0.35), slot factors (0.55, 0.3)
  // normalized. That fit ranks adv 0 above adv 1, seating adv 0 in the top
  // slot — expected revenue 5 + 1 = 6 < 11. The separability restriction,
  // not the fit, is what loses the revenue (Section III-C).
  SeparableClickModel fitted({0.5, 0.35}, {1.0, 0.55});
  const Allocation fast = SeparableAllocate(values, fitted);
  ASSERT_EQ(fast.slot_to_advertiser[0], 0);
  double fast_true_revenue = 0.0;
  for (SlotIndex j = 0; j < 2; ++j) {
    const AdvertiserId i = fast.slot_to_advertiser[j];
    if (i >= 0) fast_true_revenue += model.ClickProbability(i, j) * values[i];
  }
  EXPECT_LT(fast_true_revenue, exact.expected_revenue);
}

TEST(SeparableTest, ZeroValueAdvertisersNeverWin) {
  SeparableClickModel model({1.0, 1.0, 1.0}, {0.5, 0.25});
  const Allocation a = SeparableAllocate({0, 0, 0}, model);
  EXPECT_EQ(a.NumAssigned(), 0);
}

TEST(SeparableTest, TopSlotGetsTopScore) {
  SeparableClickModel model({2.0, 1.0, 3.0}, {0.3, 0.2});
  const Allocation a = SeparableAllocate({10, 10, 10}, model);
  EXPECT_EQ(a.slot_to_advertiser[0], 2);  // highest alpha * v
  EXPECT_EQ(a.slot_to_advertiser[1], 0);
  EXPECT_EQ(a.advertiser_to_slot[1], kNoSlot);
}

TEST(SeparableTest, MoreSlotsThanAdvertisers) {
  SeparableClickModel model({1.0}, {0.5, 0.4, 0.3});
  const Allocation a = SeparableAllocate({8}, model);
  EXPECT_EQ(a.slot_to_advertiser[0], 0);
  EXPECT_EQ(a.NumAssigned(), 1);
  EXPECT_DOUBLE_EQ(a.total_weight, 4.0);
}

TEST(IsSeparableTest, RankOneDetection) {
  EXPECT_TRUE(IsSeparable({0.8, 0.4, 0.6, 0.3}, 2, 2));   // Figure 8
  EXPECT_FALSE(IsSeparable({0.7, 0.4, 0.6, 0.3}, 2, 2));  // Figure 7
  // Any 1 x k or n x 1 matrix is trivially separable.
  EXPECT_TRUE(IsSeparable({0.9, 0.1, 0.5}, 1, 3));
  EXPECT_TRUE(IsSeparable({0.9, 0.1, 0.5}, 3, 1));
}

}  // namespace
}  // namespace ssa
