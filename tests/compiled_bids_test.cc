// Property tests for the bid-compilation layer: compiled payments and
// expected payments must equal the tree-walking BidsTable evaluation *bit
// for bit* on randomized formulas (the compiled path is a pure
// representation change), and the engine's fingerprint cache must
// invalidate exactly when table content changes.

#include <vector>

#include <gtest/gtest.h>

#include "core/click_model.h"
#include "core/compiled_bids.h"
#include "core/expected_revenue.h"
#include "core/heavyweight.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ssa {
namespace {

/// Random formula over Slot/Click/Purchase (and optionally HeavyInSlot)
/// with bounded depth — the lang_fuzz_test generator recipe applied to the
/// bid-formula language. Slot arguments deliberately range one past
/// `num_slots` to exercise out-of-range predicates (never true on a k-slot
/// page).
Formula RandomFormula(Rng& rng, int depth, int num_slots, bool allow_heavy) {
  if (depth == 0 || rng.Bernoulli(0.35)) {
    switch (rng.NextBounded(allow_heavy ? 6 : 5)) {
      case 0:
        return Formula::True();
      case 1:
        return Formula::False();
      case 2:
        return Formula::Click();
      case 3:
        return Formula::Purchase();
      case 4:
        return Formula::Slot(
            static_cast<SlotIndex>(rng.NextBounded(num_slots + 1)));
      default:
        return Formula::HeavyInSlot(
            static_cast<SlotIndex>(rng.NextBounded(num_slots + 1)));
    }
  }
  switch (rng.NextBounded(3)) {
    case 0:
      return !RandomFormula(rng, depth - 1, num_slots, allow_heavy);
    case 1:
      return RandomFormula(rng, depth - 1, num_slots, allow_heavy) &&
             RandomFormula(rng, depth - 1, num_slots, allow_heavy);
    default:
      return RandomFormula(rng, depth - 1, num_slots, allow_heavy) ||
             RandomFormula(rng, depth - 1, num_slots, allow_heavy);
  }
}

BidsTable RandomTable(Rng& rng, int num_slots, bool allow_heavy) {
  BidsTable bids;
  const int rows = static_cast<int>(rng.NextBounded(7));  // 0..6, empty ok
  for (int r = 0; r < rows; ++r) {
    bids.AddBid(RandomFormula(rng, 4, num_slots, allow_heavy),
                static_cast<Money>(rng.UniformInt(0, 50)));
  }
  return bids;
}

MatrixClickModel RandomModel(Rng& rng, int n, int k) {
  std::vector<double> click(static_cast<size_t>(n) * k);
  std::vector<double> purchase(static_cast<size_t>(n) * k);
  for (auto& p : click) {
    // Include exact zeros: the evaluators' zero-probability skip must agree.
    p = rng.Bernoulli(0.2) ? 0.0 : rng.Uniform(0.0, 1.0);
  }
  for (auto& p : purchase) p = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.0, 1.0);
  return MatrixClickModel(n, k, click, purchase);
}

TEST(CompiledBidsTest, PaymentMatchesTreeWalkOnRandomFormulas) {
  Rng rng(20260729);
  for (int iter = 0; iter < 300; ++iter) {
    const int k = 1 + static_cast<int>(rng.NextBounded(10));
    const BidsTable bids = RandomTable(rng, k, /*allow_heavy=*/false);
    const CompiledBids compiled = CompiledBids::Compile(bids, k);
    ASSERT_EQ(compiled.num_rows(), bids.size());
    AdvertiserOutcome outcome;
    for (SlotIndex slot = kNoSlot; slot < k; ++slot) {
      outcome.slot = slot;
      for (int b = 0; b < 4; ++b) {
        outcome.clicked = (b & 2) != 0;
        outcome.purchased = (b & 1) != 0;
        // Exact equality: compiled accumulation reproduces the tree walk.
        EXPECT_EQ(compiled.Payment(outcome), bids.Payment(outcome))
            << bids.ToString() << " slot=" << slot << " b=" << b;
      }
    }
  }
}

TEST(CompiledBidsTest, ExpectedPaymentMatchesTreeWalkExactly) {
  Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    const int k = 1 + static_cast<int>(rng.NextBounded(8));
    const MatrixClickModel model = RandomModel(rng, 1, k);
    const BidsTable bids = RandomTable(rng, k, /*allow_heavy=*/false);
    const CompiledBids compiled = CompiledBids::Compile(bids, k);
    double prob[4];
    for (SlotIndex slot = kNoSlot; slot < k; ++slot) {
      OutcomeProbabilities(model, 0, slot, prob);
      EXPECT_EQ(compiled.ExpectedPayment(slot, prob),
                ExpectedPayment(bids, model, 0, slot))
          << bids.ToString() << " slot=" << slot;
    }
  }
}

/// The pre-SIMD scalar mask kernel, reimplemented over the public dense
/// accessors: four row-order accumulators with (mask >> b) & 1 weights,
/// then the zero-skipping probability combine. The production kernel (SWAR
/// lane packing, or the AVX2 specialization when built with -mavx2) must
/// reproduce it bit for bit — the SIMD path may never reassociate a lane.
Money ScalarReferenceExpectedPayment(const CompiledBids& compiled,
                                     SlotIndex slot, const double prob[4]) {
  const double* v = compiled.values();
  const uint8_t* m = compiled.MasksForSlot(slot);
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t r = 0; r < compiled.num_rows(); ++r) {
    for (int b = 0; b < 4; ++b) {
      acc[b] += v[r] * static_cast<double>((m[r] >> b) & 1);
    }
  }
  Money expected = 0;
  for (int b = 0; b < 4; ++b) {
    if (prob[b] == 0.0) continue;
    expected += prob[b] * acc[b];
  }
  return expected;
}

TEST(CompiledBidsTest, SimdKernelMatchesScalarReferenceBitwise) {
  Rng rng(31337);
  for (int iter = 0; iter < 500; ++iter) {
    const int k = 1 + static_cast<int>(rng.NextBounded(12));
    const BidsTable bids = RandomTable(rng, k, /*allow_heavy=*/false);
    const CompiledBids compiled = CompiledBids::Compile(bids, k);
    // Random distributions, including exact zeros and unnormalized values —
    // the kernel contract is per-lane arithmetic, not probability hygiene.
    double prob[4];
    for (double& p : prob) {
      p = rng.Bernoulli(0.25) ? 0.0 : rng.Uniform(0.0, 1.0);
    }
    for (SlotIndex slot = kNoSlot; slot < k; ++slot) {
      EXPECT_EQ(compiled.ExpectedPayment(slot, prob),
                ScalarReferenceExpectedPayment(compiled, slot, prob))
          << bids.ToString() << " slot=" << slot;
    }
  }
}

TEST(CompiledBidsTest, HeavyCompilationMatchesTreeWalkExactly) {
  Rng rng(4242);
  for (int iter = 0; iter < 100; ++iter) {
    const int k = 1 + static_cast<int>(rng.NextBounded(5));
    const BidsTable bids = RandomTable(rng, k, /*allow_heavy=*/true);
    auto base = std::make_shared<MatrixClickModel>(RandomModel(rng, 1, k));
    const ShadowHeavyClickModel model(base, std::vector<bool>(1, false),
                                      /*light_shadow=*/0.3,
                                      /*heavy_shadow=*/0.1,
                                      /*purchase_given_click=*/0.25);
    for (uint32_t mask = 0; mask < (1u << k); ++mask) {
      const CompiledBids compiled = CompiledBids::CompileHeavy(bids, k, mask);
      AdvertiserOutcome outcome;
      outcome.heavy_slot_mask = mask;
      for (SlotIndex slot = kNoSlot; slot < k; ++slot) {
        outcome.slot = slot;
        for (int b = 0; b < 4; ++b) {
          outcome.clicked = (b & 2) != 0;
          outcome.purchased = (b & 1) != 0;
          EXPECT_EQ(compiled.Payment(outcome), bids.Payment(outcome));
        }
        // Reconstruct the heavy outcome distribution the way
        // ExpectedPaymentHeavy does, and require exact agreement.
        const bool assigned = slot != kNoSlot;
        const double pc =
            assigned ? model.ClickProbability(0, slot, mask) : 0.0;
        const double ppc =
            assigned ? model.PurchaseProbabilityGivenClick(0, slot, mask)
                     : 0.0;
        const double prob[4] = {1.0 - pc, 0.0, pc * (1.0 - ppc), pc * ppc};
        const Money compiled_expected = compiled.ExpectedPayment(slot, prob);
        EXPECT_EQ(ExpectedPaymentHeavy(bids, model, 0, slot, mask),
                  compiled_expected);
      }
    }
  }
}

TEST(CompiledBidsTest, CompileRejectsHeavyFormulas) {
  BidsTable bids;
  bids.AddBid(Formula::HeavyInSlot(0), 5);
  EXPECT_DEATH(CompiledBids::Compile(bids, 3), "CompileHeavy");
}

TEST(BuildRevenueMatrixTest, CompiledMatchesBaselineBitForBit) {
  Rng rng(99);
  const int n = 40;
  const int k = 7;
  const MatrixClickModel model = RandomModel(rng, n, k);
  std::vector<BidsTable> bids;
  bids.reserve(n);
  for (int i = 0; i < n; ++i) {
    bids.push_back(RandomTable(rng, k, /*allow_heavy=*/false));
  }

  const RevenueMatrix baseline = BuildRevenueMatrixBaseline(bids, model);
  const RevenueMatrix compiled = BuildRevenueMatrix(bids, model);
  ThreadPool pool(3);
  const RevenueMatrix parallel = BuildRevenueMatrix(bids, model, &pool);

  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(compiled.AtUnassigned(i), baseline.AtUnassigned(i));
    EXPECT_EQ(parallel.AtUnassigned(i), baseline.AtUnassigned(i));
    for (int j = 0; j < k; ++j) {
      EXPECT_EQ(compiled.At(i, j), baseline.At(i, j)) << i << "," << j;
      EXPECT_EQ(parallel.At(i, j), baseline.At(i, j)) << i << "," << j;
    }
  }
}

TEST(FingerprintBidsTest, SensitiveToContent) {
  BidsTable a;
  a.AddBid(Formula::Slot(0) && Formula::Click(), 10);
  a.AddBid(Formula::Purchase(), 3);

  BidsTable same;
  same.AddBid(Formula::Slot(0) && Formula::Click(), 10);
  same.AddBid(Formula::Purchase(), 3);
  EXPECT_EQ(FingerprintBids(a), FingerprintBids(same));

  BidsTable other_value = same;
  other_value.Clear();
  other_value.AddBid(Formula::Slot(0) && Formula::Click(), 11);
  other_value.AddBid(Formula::Purchase(), 3);
  EXPECT_NE(FingerprintBids(a), FingerprintBids(other_value));

  BidsTable other_formula;
  other_formula.AddBid(Formula::Slot(1) && Formula::Click(), 10);
  other_formula.AddBid(Formula::Purchase(), 3);
  EXPECT_NE(FingerprintBids(a), FingerprintBids(other_formula));

  BidsTable extra_row = same;
  extra_row.AddBid(Formula::True(), 0);
  EXPECT_NE(FingerprintBids(a), FingerprintBids(extra_row));

  BidsTable reordered;
  reordered.AddBid(Formula::Purchase(), 3);
  reordered.AddBid(Formula::Slot(0) && Formula::Click(), 10);
  EXPECT_NE(FingerprintBids(a), FingerprintBids(reordered));
}

TEST(CompiledBidsCacheTest, HitsOnUnchangedContentMissesOnChange) {
  CompiledBidsCache cache;
  BidsTable bids;
  bids.AddBid(Formula::Slot(0), 7);

  const CompiledBids* first = &cache.Get(0, bids, 4);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  // Same content (even a freshly rebuilt table) => cache hit, same entry.
  BidsTable rebuilt;
  rebuilt.AddBid(Formula::Slot(0), 7);
  const CompiledBids* second = &cache.Get(0, rebuilt, 4);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(first, second);

  // Changed value => recompile.
  BidsTable changed;
  changed.AddBid(Formula::Slot(0), 8);
  const CompiledBids& recompiled = cache.Get(0, changed, 4);
  EXPECT_EQ(cache.misses(), 2);
  AdvertiserOutcome outcome;
  outcome.slot = 0;
  EXPECT_EQ(recompiled.Payment(outcome), 8.0);

  // Different slot count invalidates even with equal content.
  cache.Get(0, changed, 5);
  EXPECT_EQ(cache.misses(), 3);

  // Other advertisers occupy independent entries.
  cache.Get(3, bids, 4);
  EXPECT_EQ(cache.misses(), 4);
  cache.Get(3, bids, 4);
  EXPECT_EQ(cache.hits(), 2);
}

TEST(CompiledBidsCacheTest, RangeCountersPartitionTheTotals) {
  // Global-id keying keeps per-shard observability through range sums: any
  // contiguous partition of [0, n) must add back up to the cache totals.
  CompiledBidsCache cache;
  cache.Reserve(6);
  BidsTable bids;
  bids.AddBid(Formula::Click(), 2);
  for (AdvertiserId i = 0; i < 6; ++i) cache.Get(i, bids, 3);     // 6 misses
  for (AdvertiserId i = 0; i < 4; ++i) cache.Get(i, bids, 3);     // 4 hits
  EXPECT_EQ(cache.misses(), 6);
  EXPECT_EQ(cache.hits(), 4);
  EXPECT_EQ(cache.MissesInRange(0, 2) + cache.MissesInRange(2, 6), 6);
  EXPECT_EQ(cache.HitsInRange(0, 2) + cache.HitsInRange(2, 6), 4);
  EXPECT_EQ(cache.HitsInRange(4, 6), 0);
}

TEST(CompiledBidsCacheTest, FingerprintIdenticalRecompileIsVerifiedAndEqual) {
  // The checkpoint contract: a restored engine re-runs its strategies, and a
  // table whose fingerprint matches the checkpointed key must recompile to
  // the *identical* compiled form (compilation is a pure function of
  // (table, num_slots)) — counted as a verified recompile.
  const int k = 5;
  Rng rng(20260808);
  CompiledBidsCache original;
  std::vector<BidsTable> tables;
  for (AdvertiserId i = 0; i < 8; ++i) {
    tables.push_back(RandomTable(rng, k, /*allow_heavy=*/false));
    original.Get(i, tables.back(), k);
  }

  CompiledBidsCache restored;
  restored.Reserve(8);
  restored.PrimeExpectedKeys(original.ExportKeys());
  EXPECT_EQ(restored.verified_recompiles(), 0);
  for (AdvertiserId i = 0; i < 8; ++i) {
    // "Re-emitted" table with identical content, rebuilt from scratch.
    BidsTable reemitted = tables[static_cast<size_t>(i)];
    ASSERT_EQ(FingerprintBids(reemitted),
              FingerprintBids(tables[static_cast<size_t>(i)]));
    const CompiledBids& recompiled = restored.Get(i, reemitted, k);
    const CompiledBids& first =
        original.Get(i, tables[static_cast<size_t>(i)], k);
    // Identical compiled tables, bit for bit: row values and every slot
    // state's mask column.
    ASSERT_EQ(recompiled.num_rows(), first.num_rows());
    for (size_t r = 0; r < first.num_rows(); ++r) {
      EXPECT_EQ(recompiled.values()[r], first.values()[r]);
    }
    for (SlotIndex slot = kNoSlot; slot < k; ++slot) {
      const uint8_t* a = first.MasksForSlot(slot);
      const uint8_t* b = recompiled.MasksForSlot(slot);
      for (size_t r = 0; r < first.num_rows(); ++r) EXPECT_EQ(a[r], b[r]);
    }
  }
  EXPECT_EQ(restored.verified_recompiles(), 8);
}

TEST(CompiledBidsCacheTest, EntriesStableAcrossCacheGrowth) {
  // The engine collects one pointer per advertiser while the cache grows;
  // earlier entries must not move (deque storage).
  CompiledBidsCache cache;
  BidsTable bids;
  bids.AddBid(Formula::Click(), 2);
  std::vector<const CompiledBids*> view;
  for (AdvertiserId i = 0; i < 200; ++i) view.push_back(&cache.Get(i, bids, 3));
  for (AdvertiserId i = 0; i < 200; ++i) {
    EXPECT_EQ(view[i], &cache.Get(i, bids, 3));
  }
}

}  // namespace
}  // namespace ssa
