#include <memory>

#include <gtest/gtest.h>

#include "auction/metrics.h"
#include "strategy/position_strategies.h"
#include "strategy/roi_strategy.h"
#include "strategy/program_strategy.h"

namespace ssa {
namespace {

std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload, int from, int to) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  for (int i = from; i < to; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

TEST(PositionTargetStrategyTest, ConvergesNearTargetSlot) {
  WorkloadConfig wc;
  wc.num_advertisers = 20;
  wc.num_slots = 5;
  wc.num_keywords = 3;
  wc.seed = 3;
  Workload workload = MakePaperWorkload(wc);

  auto strategies = RoiStrategies(workload, 1, wc.num_advertisers);
  auto target = std::make_unique<PositionTargetStrategy>(/*target_slot=*/2,
                                                         /*max_bid=*/200);
  PositionTargetStrategy* raw = target.get();
  strategies.insert(strategies.begin(), std::move(target));

  EngineConfig ec;
  ec.seed = 4;
  AuctionEngine engine(ec, std::move(workload), std::move(strategies));
  int hits = 0, wins = 0;
  for (int t = 0; t < 800; ++t) {
    const AuctionOutcome& out = engine.RunAuction();
    if (t < 300) continue;  // let the ladder settle
    const SlotIndex slot = out.wd.allocation.advertiser_to_slot[0];
    if (slot != kNoSlot) {
      ++wins;
      hits += (slot >= 1 && slot <= 3);  // within one of the target
    }
  }
  EXPECT_GT(wins, 100);
  EXPECT_GT(static_cast<double>(hits) / wins, 0.6)
      << "targeting failed: bid=" << raw->current_bid();
}

TEST(AboveCompetitorStrategyTest, StaysAboveRival) {
  WorkloadConfig wc;
  wc.num_advertisers = 15;
  wc.num_slots = 4;
  wc.num_keywords = 2;
  wc.seed = 9;
  Workload workload = MakePaperWorkload(wc);

  // Advertiser 0 tracks advertiser 1 (an ROI bidder).
  auto chaser = std::make_unique<AboveCompetitorStrategy>(0, 1, /*max_bid=*/300);
  AboveCompetitorStrategy* raw = chaser.get();
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  strategies.push_back(std::move(chaser));
  for (auto& s : RoiStrategies(workload, 1, wc.num_advertisers)) {
    strategies.push_back(std::move(s));
  }

  EngineConfig ec;
  ec.seed = 10;
  AuctionEngine engine(ec, std::move(workload), std::move(strategies));
  int rival_displayed = 0, above = 0;
  for (int t = 0; t < 800; ++t) {
    const AuctionOutcome& out = engine.RunAuction();
    raw->ObservePage(out);  // third-party page monitoring
    if (t < 300) continue;
    const SlotIndex mine = out.wd.allocation.advertiser_to_slot[0];
    const SlotIndex theirs = out.wd.allocation.advertiser_to_slot[1];
    if (theirs != kNoSlot) {
      ++rival_displayed;
      above += (mine != kNoSlot && mine < theirs);
    }
  }
  if (rival_displayed > 50) {
    EXPECT_GT(static_cast<double>(above) / rival_displayed, 0.5);
  }
}

TEST(BudgetedStrategyTest, StopsAtBudget) {
  WorkloadConfig wc;
  wc.num_advertisers = 10;
  wc.num_slots = 3;
  wc.num_keywords = 2;
  wc.seed = 21;
  Workload workload = MakePaperWorkload(wc);

  const Money kBudget = 50;
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  strategies.push_back(std::make_unique<BudgetedStrategy>(
      std::make_unique<RoiStrategy>(workload.keyword_formulas), kBudget));
  for (auto& s : RoiStrategies(workload, 1, wc.num_advertisers)) {
    strategies.push_back(std::move(s));
  }
  EngineConfig ec;
  ec.seed = 22;
  AuctionEngine engine(ec, std::move(workload), std::move(strategies));
  for (int t = 0; t < 1500; ++t) engine.RunAuction();
  const Money spent = engine.accounts()[0].amount_spent;
  // One overshooting click is possible (budget checked pre-auction), but the
  // guard must have kicked in near the budget, far below unconstrained spend.
  Money max_click_price = 0;
  for (Money v : engine.accounts()[0].value_per_click) {
    max_click_price = std::max(max_click_price, v);
  }
  EXPECT_LE(spent, kBudget + max_click_price);
}

TEST(MetricsTest, AggregatesCampaign) {
  WorkloadConfig wc;
  wc.num_advertisers = 20;
  wc.num_slots = 4;
  wc.num_keywords = 3;
  wc.seed = 31;
  Workload workload = MakePaperWorkload(wc);
  auto strategies = RoiStrategies(workload, 0, wc.num_advertisers);
  EngineConfig ec;
  ec.seed = 32;
  AuctionEngine engine(ec, std::move(workload), std::move(strategies));

  CampaignMetrics metrics;
  Money revenue = 0;
  for (int t = 0; t < 300; ++t) {
    const AuctionOutcome& out = engine.RunAuction();
    metrics.Record(out);
    revenue += out.revenue_charged;
  }
  EXPECT_EQ(metrics.auctions(), 300);
  EXPECT_DOUBLE_EQ(metrics.revenue(), revenue);
  EXPECT_GT(metrics.impressions(), 0);
  EXPECT_GE(metrics.impressions(), metrics.clicks());
  EXPECT_GE(metrics.ClickThroughRate(), 0.0);
  EXPECT_LE(metrics.ClickThroughRate(), 1.0);
  EXPECT_LE(metrics.FillRate(wc.num_slots), 1.0);
  EXPECT_FALSE(metrics.Report(wc.num_slots).empty());
  // Slot CTR should decrease with slot position (the slot-interval model).
  const auto& imp = metrics.slot_impressions();
  ASSERT_GE(imp.size(), 2u);
  EXPECT_GT(imp[0], 0);
}

// Section II-B notification triggers: a program reacts to clicks by
// recording them in a private table.
TEST(NotificationTriggerTest, ClickTriggerFires) {
  constexpr const char kProgram[] = R"sql(
    CREATE TRIGGER bid AFTER INSERT ON Query
    {
      UPDATE Bids SET value = 10;
    }
    CREATE TRIGGER onslot AFTER INSERT ON Slot
    {
      UPDATE Keywords SET relevance = wonSlot;  -- reuse a column as a probe
    }
    CREATE TRIGGER onclick AFTER INSERT ON Click
    {
      UPDATE Keywords SET bid = bid + 1;        -- count clicks in `bid`
    }
  )sql";
  auto strategy = ProgramStrategy::Create(
      kProgram, {{"kw0", Formula::Click()}});
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  AdvertiserAccount account;
  account.value_per_click = {10};
  account.max_bid = {10};
  account.value_gained = {0};
  account.spent_per_keyword = {0};
  account.target_spend_rate = 1;

  Query query;
  query.keyword = 0;
  query.time = 1;
  query.relevance = {1.0};

  BidsTable bids;
  (*strategy)->MakeBids(query, account, &bids);
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_DOUBLE_EQ(bids.rows()[0].value, 10.0);

  EXPECT_DOUBLE_EQ((*strategy)->TentativeBid(0), 0.0);
  (*strategy)->OnOutcome(query, account, /*slot=*/2, /*clicked=*/true,
                         /*purchased=*/false);
  EXPECT_DOUBLE_EQ((*strategy)->TentativeBid(0), 1.0);  // click counted
  (*strategy)->OnOutcome(query, account, /*slot=*/0, /*clicked=*/false,
                         /*purchased=*/false);
  EXPECT_DOUBLE_EQ((*strategy)->TentativeBid(0), 1.0);  // no click, no count
}

}  // namespace
}  // namespace ssa
