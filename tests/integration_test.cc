#include <memory>

#include <gtest/gtest.h>

#include "auction/auction_engine.h"
#include "core/heavyweight.h"
#include "core/winner_determination.h"
#include "strategy/roi_strategy.h"

namespace ssa {
namespace {

/// A static multi-feature strategy: fixed Bids table every auction (the
/// Section I motivating bidders — brand-awareness and leader-positioning).
class FixedBidsStrategy : public BiddingStrategy {
 public:
  explicit FixedBidsStrategy(BidsTable bids) : bids_(std::move(bids)) {}
  void MakeBids(const Query&, const AdvertiserAccount&,
                BidsTable* bids) override {
    *bids = bids_;
  }

 private:
  BidsTable bids_;
};

// End-to-end multi-feature auction: purchase bids, slot-position bids and
// "top or nothing" bids all compete; the engine's RH choice must equal the
// brute-force optimum every auction.
TEST(IntegrationTest, MultiFeatureAuctionMatchesBruteForce) {
  const int n = 6, k = 3, kws = 2;
  WorkloadConfig wc;
  wc.num_advertisers = n;
  wc.num_slots = k;
  wc.num_keywords = kws;
  wc.purchase_given_click = 0.3;
  wc.seed = 41;
  Workload workload = MakePaperWorkload(wc);

  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  {
    BidsTable b0;  // plain click bidder
    b0.AddBid(Formula::Click(), 30);
    strategies.push_back(std::make_unique<FixedBidsStrategy>(b0));

    BidsTable b1;  // purchase-focused
    b1.AddBid(Formula::Purchase(), 200);
    strategies.push_back(std::make_unique<FixedBidsStrategy>(b1));

    BidsTable b2;  // brand: top or bottom, not the middle
    b2.AddBid(Formula::Slot(0) || Formula::Slot(2), 10);
    strategies.push_back(std::make_unique<FixedBidsStrategy>(b2));

    BidsTable b3;  // leader: top slot or not displayed at all
    b3.AddBid(Formula::Slot(0) || !Formula::AnySlot({0, 1, 2}), 8);
    strategies.push_back(std::make_unique<FixedBidsStrategy>(b3));

    BidsTable b4;  // click in a premium position
    b4.AddBid(Formula::Click() && (Formula::Slot(0) || Formula::Slot(1)), 25);
    strategies.push_back(std::make_unique<FixedBidsStrategy>(b4));

    BidsTable b5;  // combined purchase + position
    b5.AddBid(Formula::Purchase(), 100);
    b5.AddBid(Formula::Slot(1), 5);
    strategies.push_back(std::make_unique<FixedBidsStrategy>(b5));
  }

  EngineConfig config;
  config.seed = 42;
  AuctionEngine engine(config, workload, std::move(strategies));
  for (int t = 0; t < 100; ++t) {
    const AuctionOutcome& out = engine.RunAuction();
    // Recompute the optimum exhaustively from the same revenue matrix.
    std::vector<BidsTable> bids(n);
    bids[0].AddBid(Formula::Click(), 30);
    bids[1].AddBid(Formula::Purchase(), 200);
    bids[2].AddBid(Formula::Slot(0) || Formula::Slot(2), 10);
    bids[3].AddBid(Formula::Slot(0) || !Formula::AnySlot({0, 1, 2}), 8);
    bids[4].AddBid(Formula::Click() && (Formula::Slot(0) || Formula::Slot(1)),
                   25);
    bids[5].AddBid(Formula::Purchase(), 100);
    bids[5].AddBid(Formula::Slot(1), 5);
    const RevenueMatrix m = BuildRevenueMatrix(bids, *workload.click_model);
    const WdResult oracle = DetermineWinners(m, WdMethod::kBruteForce);
    EXPECT_NEAR(out.wd.expected_revenue, oracle.expected_revenue, 1e-9)
        << "auction " << t;
  }
}

// A campaign mixing ROI-dynamic bidders with static multi-feature bidders:
// smoke test for long-horizon stability and accounting invariants.
TEST(IntegrationTest, MixedStrategyCampaign) {
  WorkloadConfig wc;
  wc.num_advertisers = 30;
  wc.num_slots = 6;
  wc.num_keywords = 5;
  wc.seed = 51;
  Workload workload = MakePaperWorkload(wc);

  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  for (int i = 0; i < wc.num_advertisers; ++i) {
    if (i % 3 == 0) {
      BidsTable b;
      b.AddBid(Formula::Slot(0) || !Formula::AnySlot({0, 1, 2, 3, 4, 5}),
               static_cast<Money>(5 + i % 7));
      strategies.push_back(std::make_unique<FixedBidsStrategy>(b));
    } else {
      strategies.push_back(
          std::make_unique<RoiStrategy>(workload.keyword_formulas));
    }
  }
  EngineConfig config;
  config.seed = 52;
  AuctionEngine engine(config, workload, std::move(strategies));
  Money last_spent_total = 0;
  for (int t = 0; t < 500; ++t) {
    engine.RunAuction();
    Money spent_total = 0;
    for (const AdvertiserAccount& a : engine.accounts()) {
      spent_total += a.amount_spent;
    }
    EXPECT_GE(spent_total, last_spent_total);  // spend is monotone
    last_spent_total = spent_total;
  }
  EXPECT_NEAR(last_spent_total, engine.total_revenue(), 1e-6);
}

// Heavyweight end-to-end: the Section III-F solver on a workload-sized
// instance stays consistent with its own mask semantics and dominates the
// mask-0 (heavyweights-banned) solution.
TEST(IntegrationTest, HeavyweightSolverDominatesPlainWhenShadowsMatter) {
  Rng rng(61);
  const int n = 10, k = 3;
  auto base = std::make_shared<MatrixClickModel>(
      MakeSlotIntervalClickModel(n, k, rng));
  std::vector<bool> is_heavy(n, false);
  for (int i = 0; i < 3; ++i) is_heavy[i] = true;
  ShadowHeavyClickModel model(base, is_heavy, 0.6, 0.2);

  std::vector<BidsTable> bids(n);
  for (int i = 0; i < n; ++i) {
    bids[i].AddBid(Formula::Click(), static_cast<Money>(rng.UniformInt(5, 50)));
  }
  const HeavyWdResult best = DetermineWinnersHeavy(bids, model, is_heavy);

  // Restricting to mask 0 (no heavyweight may win) is one feasible choice;
  // the unrestricted optimum can only be better or equal.
  std::vector<BidsTable> light_bids;
  std::vector<AdvertiserId> light_ids;
  for (int i = 0; i < n; ++i) {
    if (!is_heavy[i]) {
      light_bids.push_back(bids[i]);
      light_ids.push_back(i);
    }
  }
  RevenueMatrix m(static_cast<int>(light_bids.size()), k);
  for (size_t a = 0; a < light_bids.size(); ++a) {
    for (int j = 0; j < k; ++j) {
      m.Set(static_cast<int>(a), j,
            ExpectedPaymentHeavy(light_bids[a], model, light_ids[a], j, 0));
    }
  }
  const WdResult mask0 = DetermineWinners(m, WdMethod::kHungarian);
  EXPECT_GE(best.expected_revenue, mask0.expected_revenue - 1e-9);
}

}  // namespace
}  // namespace ssa
