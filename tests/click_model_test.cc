#include <gtest/gtest.h>

#include "core/click_model.h"
#include "core/separable.h"

namespace ssa {
namespace {

// Figure 7: non-separable click probabilities.
const double kFigure7[] = {0.7, 0.4,   // Nike
                           0.6, 0.3};  // Adidas

// Figure 8: separable (Nike 4, Adidas 3; slots 0.2, 0.1).
const double kFigure8[] = {0.8, 0.4,   // Nike
                           0.6, 0.3};  // Adidas

TEST(ClickModelTest, MatrixModelLookup) {
  MatrixClickModel model(2, 2, {kFigure7, kFigure7 + 4});
  EXPECT_EQ(model.num_advertisers(), 2);
  EXPECT_EQ(model.num_slots(), 2);
  EXPECT_DOUBLE_EQ(model.ClickProbability(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(model.ClickProbability(1, 1), 0.3);
  EXPECT_DOUBLE_EQ(model.PurchaseProbabilityGivenClick(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.PurchaseProbabilityGivenNoClick(0, 0), 0.0);
}

TEST(ClickModelTest, MatrixModelWithPurchase) {
  MatrixClickModel model(1, 2, {0.5, 0.25}, {0.1, 0.2});
  EXPECT_DOUBLE_EQ(model.PurchaseProbabilityGivenClick(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(model.PurchaseProbabilityGivenClick(0, 1), 0.2);
}

TEST(ClickModelTest, Figure7IsNotSeparableFigure8Is) {
  EXPECT_FALSE(IsSeparable({kFigure7, kFigure7 + 4}, 2, 2));
  EXPECT_TRUE(IsSeparable({kFigure8, kFigure8 + 4}, 2, 2));
}

TEST(ClickModelTest, SeparableModelMultiplies) {
  SeparableClickModel model({4.0, 3.0}, {0.2, 0.1});
  EXPECT_DOUBLE_EQ(model.ClickProbability(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(model.ClickProbability(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(model.ClickProbability(1, 0), 0.6);
  EXPECT_DOUBLE_EQ(model.ClickProbability(1, 1), 0.3);
}

TEST(ClickModelTest, SeparableModelClampsToOne) {
  SeparableClickModel model({5.0}, {0.3});
  EXPECT_DOUBLE_EQ(model.ClickProbability(0, 0), 1.0);
}

// Section V: [0.1, 0.9] split into k intervals; slot j draws from the
// (j+1)-th highest interval, so higher slots always out-click lower ones.
TEST(ClickModelTest, SlotIntervalGeneratorRespectsIntervals) {
  Rng rng(99);
  const int n = 50, k = 15;
  MatrixClickModel model = MakeSlotIntervalClickModel(n, k, rng);
  const double width = (0.9 - 0.1) / k;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      const double p = model.ClickProbability(i, j);
      const double lo = 0.9 - width * (j + 1);
      EXPECT_GE(p, lo) << "advertiser " << i << " slot " << j;
      EXPECT_LT(p, lo + width) << "advertiser " << i << " slot " << j;
    }
  }
  // Disjoint intervals imply strict dominance of higher slots.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j + 1 < k; ++j) {
      EXPECT_GT(model.ClickProbability(i, j), model.ClickProbability(i, j + 1));
    }
  }
}

TEST(ClickModelTest, SlotIntervalGeneratorIsGenerallyNonSeparable) {
  Rng rng(123);
  const int n = 8, k = 4;
  MatrixClickModel model = MakeSlotIntervalClickModel(n, k, rng);
  std::vector<double> click;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) click.push_back(model.ClickProbability(i, j));
  }
  EXPECT_FALSE(IsSeparable(click, n, k));
}

TEST(ClickModelTest, SlotIntervalGeneratorDeterministicInSeed) {
  Rng a(5), b(5);
  MatrixClickModel ma = MakeSlotIntervalClickModel(10, 3, a);
  MatrixClickModel mb = MakeSlotIntervalClickModel(10, 3, b);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(ma.ClickProbability(i, j), mb.ClickProbability(i, j));
    }
  }
}

TEST(ClickModelTest, RandomSeparableModelIsSeparable) {
  Rng rng(77);
  SeparableClickModel model = MakeRandomSeparableClickModel(12, 5, rng);
  std::vector<double> click;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 5; ++j) click.push_back(model.ClickProbability(i, j));
  }
  EXPECT_TRUE(IsSeparable(click, 12, 5, 1e-9));
}

}  // namespace
}  // namespace ssa
