// Concurrency stress tests for the serving subsystem's admission and
// shutdown contracts: Stop() drains every admitted request before the
// executor exits, and the admission counters stay exactly conserved under
// multi-threaded Submit() for every backpressure policy.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serving/auction_server.h"
#include "strategy/roi_strategy.h"

namespace ssa {
namespace {

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.num_advertisers = 20;
  config.num_slots = 3;
  config.num_keywords = 3;
  config.seed = seed;
  return config;
}

std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

std::unique_ptr<AuctionServer> MakeServer(const ServerConfig& config) {
  Workload workload = MakePaperWorkload(SmallConfig(41));
  auto strategies = RoiStrategies(workload);
  return std::make_unique<AuctionServer>(config, std::move(workload),
                                         std::move(strategies));
}

/// Per-producer tally of every Submit() verdict.
struct SubmitTally {
  int64_t accepted = 0;
  int64_t dropped_oldest = 0;
  int64_t rejected = 0;
  int64_t closed = 0;

  void Count(QueuePushResult result) {
    switch (result) {
      case QueuePushResult::kAccepted:
        ++accepted;
        break;
      case QueuePushResult::kDroppedOldest:
        ++dropped_oldest;
        break;
      case QueuePushResult::kRejected:
        ++rejected;
        break;
      case QueuePushResult::kClosed:
        ++closed;
        break;
    }
  }

  int64_t total() const {
    return accepted + dropped_oldest + rejected + closed;
  }
};

/// Launches `producers` threads each submitting `per_producer` queries as
/// fast as they can, then returns the merged tally.
SubmitTally HammerSubmit(AuctionServer* server, int producers,
                         int per_producer) {
  std::vector<SubmitTally> tallies(producers);
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      QueryGenerator gen(3, /*seed=*/1000 + static_cast<uint64_t>(p));
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < per_producer; ++i) {
        tallies[p].Count(server->Submit(gen.Next()));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  SubmitTally merged;
  for (const SubmitTally& t : tallies) {
    merged.accepted += t.accepted;
    merged.dropped_oldest += t.dropped_oldest;
    merged.rejected += t.rejected;
    merged.closed += t.closed;
  }
  return merged;
}

// --- Drain-on-stop -----------------------------------------------------------

/// Stop() must let the executor settle every admitted request before it
/// joins: completed == admitted, and the engine ran exactly that many
/// auctions — nothing stranded in the queue, nothing settled twice.
TEST(ServingDrainTest, StopDrainsEveryAdmittedRequestLockingQueue) {
  ServerConfig config;
  config.engine.num_shards = 2;
  config.queue_capacity = 64;
  config.backpressure = BackpressurePolicy::kBlock;
  config.max_batch_size = 8;
  auto server = MakeServer(config);
  ASSERT_TRUE(server->Start().ok());

  const int kProducers = 4;
  const int kPerProducer = 500;
  SubmitTally tally = HammerSubmit(server.get(), kProducers, kPerProducer);
  server->Stop();

  ASSERT_EQ(tally.total(), kProducers * kPerProducer);
  // kBlock never rejects or drops while the queue is open.
  EXPECT_EQ(tally.rejected, 0);
  EXPECT_EQ(tally.dropped_oldest, 0);
  EXPECT_EQ(tally.closed, 0);
  const int64_t admitted = tally.accepted;
  EXPECT_EQ(server->accepted(), admitted);
  EXPECT_EQ(server->completed(), admitted);
  EXPECT_EQ(server->engine().auctions_run(), admitted);
}

TEST(ServingDrainTest, StopDrainsEveryAdmittedRequestLockFreeQueue) {
  ServerConfig config;
  config.engine.num_shards = 2;
  config.queue_capacity = 64;
  config.backpressure = BackpressurePolicy::kReject;
  config.queue_impl = QueueImpl::kLockFree;
  config.max_batch_size = 8;
  auto server = MakeServer(config);
  ASSERT_TRUE(server->Start().ok());

  const int kProducers = 4;
  const int kPerProducer = 2000;
  SubmitTally tally = HammerSubmit(server.get(), kProducers, kPerProducer);
  server->Stop();

  ASSERT_EQ(tally.total(), kProducers * kPerProducer);
  const int64_t admitted = tally.accepted;
  EXPECT_EQ(server->accepted(), admitted);
  EXPECT_EQ(server->rejected(), tally.rejected);
  EXPECT_EQ(server->completed(), admitted);
  EXPECT_EQ(server->engine().auctions_run(), admitted);
}

/// The lane pipeline under full producer pressure: 4 lane workers planning
/// concurrently with the executor capturing/settling, both serving modes,
/// every admitted request settled exactly once. This is the TSan target for
/// the lane pool's happens-before edges (dispatch-queue mutex for captures,
/// barrier mutex for plans).
TEST(ServingLaneStressTest, LanePipelineDrainsUnderProducerPressure) {
  for (ServingMode mode :
       {ServingMode::kDeterministicReplay, ServingMode::kBatchedSettlement}) {
    ServerConfig config;
    config.engine.num_shards = 2;
    config.queue_capacity = 64;
    config.backpressure = BackpressurePolicy::kBlock;
    config.max_batch_size = 8;
    config.mode = mode;
    config.num_plan_lanes = 4;
    auto server = MakeServer(config);
    ASSERT_TRUE(server->Start().ok());

    const int kProducers = 4;
    const int kPerProducer = 500;
    SubmitTally tally = HammerSubmit(server.get(), kProducers, kPerProducer);
    server->Stop();

    ASSERT_EQ(tally.total(), kProducers * kPerProducer);
    EXPECT_EQ(tally.rejected, 0);
    EXPECT_EQ(tally.closed, 0);
    EXPECT_EQ(server->accepted(), tally.accepted);
    EXPECT_EQ(server->completed(), tally.accepted);
    EXPECT_EQ(server->engine().auctions_run(), tally.accepted);
  }
}

/// Producers racing Stop() itself: whatever a producer saw admitted must
/// still be settled, even if its push interleaved with the close. Trials
/// sweep the lane count 0..3 so the shutdown race also covers the lane
/// pipeline's epoch drain.
TEST(ServingDrainTest, ProducersRacingStopNeverStrandAdmittedRequests) {
  for (int trial = 0; trial < 8; ++trial) {
    ServerConfig config;
    config.engine.num_shards = 2;
    config.queue_capacity = 32;
    config.backpressure = BackpressurePolicy::kReject;
    config.queue_impl =
        trial % 2 == 0 ? QueueImpl::kLocking : QueueImpl::kLockFree;
    config.max_batch_size = 4;
    config.num_plan_lanes = trial / 2;  // 0, 0, 1, 1, 2, 2, 3, 3
    auto server = MakeServer(config);
    ASSERT_TRUE(server->Start().ok());

    const int kProducers = 4;
    std::vector<SubmitTally> tallies(kProducers);
    std::vector<std::thread> threads;
    std::atomic<bool> quit{false};
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        QueryGenerator gen(3, /*seed=*/7000 + static_cast<uint64_t>(p));
        while (!quit.load(std::memory_order_acquire)) {
          tallies[p].Count(server->Submit(gen.Next()));
        }
      });
    }
    // Let producers build pressure, then stop mid-stream.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    server->Stop();
    quit.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();

    int64_t admitted = 0;
    for (const SubmitTally& t : tallies) {
      admitted += t.accepted + t.dropped_oldest;
    }
    // Every admission either pre-dates the close (drained) or is the
    // lock-free in-flight race Stop() explicitly waits out. Either way:
    EXPECT_EQ(server->completed(), admitted - server->dropped_oldest());
    EXPECT_EQ(server->engine().auctions_run(), server->completed());
  }
}

// --- Concurrent backpressure accounting --------------------------------------

/// kDropOldest under producer pressure: admissions are conserved —
/// accepted + rejected == submitted from both the producers' and the
/// queue's ledgers, and the executor settles exactly the survivors.
TEST(ServingBackpressureTest, ConcurrentDropOldestConservesRequests) {
  ServerConfig config;
  config.engine.num_shards = 2;
  config.queue_capacity = 4;  // tiny: force evictions
  config.backpressure = BackpressurePolicy::kDropOldest;
  config.max_batch_size = 2;
  auto server = MakeServer(config);
  ASSERT_TRUE(server->Start().ok());

  const int kProducers = 4;
  const int kPerProducer = 1500;
  SubmitTally tally = HammerSubmit(server.get(), kProducers, kPerProducer);
  server->Stop();

  const int64_t submitted = kProducers * kPerProducer;
  ASSERT_EQ(tally.total(), submitted);
  EXPECT_EQ(tally.rejected, 0);  // kDropOldest never rejects
  EXPECT_EQ(tally.closed, 0);
  // Both admission verdicts count as accepted in the queue's ledger.
  EXPECT_EQ(server->accepted(), submitted);
  EXPECT_GT(server->dropped_oldest(), 0);
  // The producers' eviction observations and the queue's agree.
  EXPECT_EQ(server->dropped_oldest(), tally.dropped_oldest);
  // Survivors — and only survivors — get settled.
  EXPECT_EQ(server->completed(), submitted - server->dropped_oldest());
  EXPECT_EQ(server->engine().auctions_run(), server->completed());
}

/// kReject under producer pressure: accepted + rejected == submitted, and
/// every accepted request is settled.
TEST(ServingBackpressureTest, ConcurrentRejectConservesRequests) {
  for (QueueImpl impl : {QueueImpl::kLocking, QueueImpl::kLockFree}) {
    ServerConfig config;
    config.engine.num_shards = 2;
    config.queue_capacity = 4;
    config.backpressure = BackpressurePolicy::kReject;
    config.queue_impl = impl;
    config.max_batch_size = 2;
    auto server = MakeServer(config);
    ASSERT_TRUE(server->Start().ok());

    const int kProducers = 4;
    const int kPerProducer = 1500;
    SubmitTally tally = HammerSubmit(server.get(), kProducers, kPerProducer);
    server->Stop();

    const int64_t submitted = kProducers * kPerProducer;
    ASSERT_EQ(tally.total(), submitted);
    EXPECT_EQ(tally.dropped_oldest, 0);
    EXPECT_EQ(tally.closed, 0);
    EXPECT_EQ(tally.accepted + tally.rejected, submitted);
    EXPECT_EQ(server->accepted(), tally.accepted);
    EXPECT_EQ(server->rejected(), tally.rejected);
    EXPECT_GT(server->rejected(), 0);
    EXPECT_EQ(server->completed(), tally.accepted);
    EXPECT_EQ(server->engine().auctions_run(), server->completed());
  }
}

}  // namespace
}  // namespace ssa
