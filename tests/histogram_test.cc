#include "util/histogram.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ssa {
namespace {

TEST(LatencyHistogramTest, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below 16 land in width-1 buckets: every percentile is exact.
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.Percentile(50), 7u);    // rank 8 of 16 -> value 7
  EXPECT_EQ(h.Percentile(100), 15u);
  EXPECT_EQ(h.Percentile(0), 0u);
}

TEST(LatencyHistogramTest, PercentileRelativeErrorBounded) {
  // Log-bucketing promises <= 1/16 relative error above the exact region.
  Rng rng(99);
  std::vector<uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20000; ++i) {
    // Span several octaves: 16 .. ~1e6.
    const uint64_t v = 16 + rng.NextBounded(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const size_t rank = static_cast<size_t>(p / 100.0 * values.size());
    const uint64_t exact = values[std::min(rank, values.size() - 1)];
    const uint64_t approx = h.Percentile(p);
    EXPECT_GE(approx * 16.0, exact * 15.0)
        << "p" << p << " under-estimates beyond bucket width";
    EXPECT_LE(static_cast<double>(approx), exact * (1.0 + 1.0 / 16.0) + 1.0)
        << "p" << p << " over-estimates beyond bucket width";
  }
}

TEST(LatencyHistogramTest, PercentileNeverExceedsMax) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(1001);
  EXPECT_EQ(h.Percentile(100), 1001u);
  EXPECT_EQ(h.max(), 1001u);
  EXPECT_LE(h.Percentile(50), 1001u);
}

TEST(LatencyHistogramTest, SingleValueEverywhere) {
  LatencyHistogram h;
  h.Record(12345);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_LE(h.Percentile(p), 12345u);
    EXPECT_GE(h.Percentile(p) * 16.0, 12345u * 15.0);
  }
  EXPECT_EQ(h.min(), 12345u);
  EXPECT_EQ(h.max(), 12345u);
  EXPECT_DOUBLE_EQ(h.mean(), 12345.0);
}

TEST(LatencyHistogramTest, BucketGeometryIsMonotoneAndContiguous) {
  // Upper bounds must strictly increase and each bucket must start right
  // after the previous one ends (no value can fall between buckets).
  uint64_t prev_upper = LatencyHistogram::BucketUpper(0);
  EXPECT_EQ(prev_upper, 0u);
  for (int b = 1; b < 512; ++b) {
    const uint64_t upper = LatencyHistogram::BucketUpper(b);
    EXPECT_GT(upper, prev_upper) << "bucket " << b;
    prev_upper = upper;
  }
}

TEST(LatencyHistogramTest, MergeFromEqualsCombinedRecording) {
  Rng rng(7);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBounded(100000);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p));
  }
}

TEST(LatencyHistogramTest, MergeFromEmptyPreservesMinMaxSentinels) {
  // Folding an empty histogram in must not clobber min (the kEmptyMin
  // sentinel is guarded) or max; folding into an empty one must adopt both.
  LatencyHistogram a, empty;
  a.Record(100);
  a.Record(9000);
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 9000u);

  LatencyHistogram b;
  b.MergeFrom(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 100u);
  EXPECT_EQ(b.max(), 9000u);

  // Empty-into-empty stays empty (min sentinel maps to 0, not ~0).
  LatencyHistogram c;
  c.MergeFrom(empty);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.min(), 0u);
  EXPECT_EQ(c.max(), 0u);
}

TEST(LatencyHistogramTest, ForEachBucketCoversEveryRecord) {
  Rng rng(41);
  LatencyHistogram h;
  constexpr int kRecords = 10000;
  for (int i = 0; i < kRecords; ++i) h.Record(rng.NextBounded(1 << 22));
  uint64_t total = 0;
  uint64_t prev_upper = 0;
  bool first = true;
  h.ForEachBucket([&](uint64_t upper, uint64_t count) {
    EXPECT_GT(count, 0u);  // only non-empty buckets are visited
    if (!first) {
      EXPECT_GT(upper, prev_upper);  // ascending value order
    }
    first = false;
    prev_upper = upper;
    total += count;
  });
  EXPECT_EQ(total, static_cast<uint64_t>(kRecords));
  // The last visited bucket must be able to hold the max.
  EXPECT_GE(prev_upper, h.max());
}

TEST(LatencyHistogramTest, ForEachBucketEmptyVisitsNothing) {
  LatencyHistogram h;
  int calls = 0;
  h.ForEachBucket([&](uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(LatencyHistogramTest, ForEachBucketExactRegionUppersAreValues) {
  // Values below 16 land in width-1 buckets whose upper bound IS the value.
  LatencyHistogram h;
  h.Record(3);
  h.Record(3);
  h.Record(7);
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
  h.ForEachBucket([&](uint64_t upper, uint64_t count) {
    buckets.emplace_back(upper, count);
  });
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], (std::pair<uint64_t, uint64_t>{3, 2}));
  EXPECT_EQ(buckets[1], (std::pair<uint64_t, uint64_t>{7, 1}));
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  h.Record(3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(99), 3u);
}

TEST(LatencyHistogramTest, ConcurrentRecordLosesNothing) {
  // Record is wait-free with relaxed atomics; N threads x M records must
  // all be counted (also the TSan target for the telemetry write path).
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(rng.NextBounded(1 << 20));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ssa
