#include "util/histogram.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace ssa {
namespace {

TEST(LatencyHistogramTest, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below 16 land in width-1 buckets: every percentile is exact.
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.Percentile(50), 7u);    // rank 8 of 16 -> value 7
  EXPECT_EQ(h.Percentile(100), 15u);
  EXPECT_EQ(h.Percentile(0), 0u);
}

TEST(LatencyHistogramTest, PercentileRelativeErrorBounded) {
  // Log-bucketing promises <= 1/16 relative error above the exact region.
  Rng rng(99);
  std::vector<uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20000; ++i) {
    // Span several octaves: 16 .. ~1e6.
    const uint64_t v = 16 + rng.NextBounded(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    const size_t rank = static_cast<size_t>(p / 100.0 * values.size());
    const uint64_t exact = values[std::min(rank, values.size() - 1)];
    const uint64_t approx = h.Percentile(p);
    EXPECT_GE(approx * 16.0, exact * 15.0)
        << "p" << p << " under-estimates beyond bucket width";
    EXPECT_LE(static_cast<double>(approx), exact * (1.0 + 1.0 / 16.0) + 1.0)
        << "p" << p << " over-estimates beyond bucket width";
  }
}

TEST(LatencyHistogramTest, PercentileNeverExceedsMax) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(1001);
  EXPECT_EQ(h.Percentile(100), 1001u);
  EXPECT_EQ(h.max(), 1001u);
  EXPECT_LE(h.Percentile(50), 1001u);
}

TEST(LatencyHistogramTest, SingleValueEverywhere) {
  LatencyHistogram h;
  h.Record(12345);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_LE(h.Percentile(p), 12345u);
    EXPECT_GE(h.Percentile(p) * 16.0, 12345u * 15.0);
  }
  EXPECT_EQ(h.min(), 12345u);
  EXPECT_EQ(h.max(), 12345u);
  EXPECT_DOUBLE_EQ(h.mean(), 12345.0);
}

TEST(LatencyHistogramTest, BucketGeometryIsMonotoneAndContiguous) {
  // Upper bounds must strictly increase and each bucket must start right
  // after the previous one ends (no value can fall between buckets).
  uint64_t prev_upper = LatencyHistogram::BucketUpper(0);
  EXPECT_EQ(prev_upper, 0u);
  for (int b = 1; b < 512; ++b) {
    const uint64_t upper = LatencyHistogram::BucketUpper(b);
    EXPECT_GT(upper, prev_upper) << "bucket " << b;
    prev_upper = upper;
  }
}

TEST(LatencyHistogramTest, MergeFromEqualsCombinedRecording) {
  Rng rng(7);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBounded(100000);
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {50.0, 95.0, 99.0}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p));
  }
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  h.Record(3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Percentile(99), 3u);
}

TEST(LatencyHistogramTest, ConcurrentRecordLosesNothing) {
  // Record is wait-free with relaxed atomics; N threads x M records must
  // all be counted (also the TSan target for the telemetry write path).
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(rng.NextBounded(1 << 20));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ssa
