// Crash-recovery fault injection: kill the durability pipeline at a random
// auction index, corrupt whatever had not been committed (clean kill, torn
// write, bit flip), recover by restore-then-replay, and assert the remaining
// trajectory is bitwise identical to a run that never crashed — for the
// single engine, the sharded engine, and the serving subsystem. Loss is
// asserted to be bounded by the unsynced group-commit suffix.
//
// Schedules derive from SSA_FAULT_SEED (default 12345) so CI can sweep many
// random kill points; on failure the seed printed below reproduces the run.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "auction/auction_engine.h"
#include "auction/sharded_engine.h"
#include "durability/recovery.h"
#include "durability/settlement_log.h"
#include "serving/auction_server.h"
#include "strategy/roi_strategy.h"
#include "util/rng.h"

namespace ssa {
namespace {

constexpr int kTotalAuctions = 60;
constexpr int kCheckpointAt = 20;
constexpr size_t kGroupRecords = 8;

uint64_t BaseSeed() {
  const char* env = std::getenv("SSA_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 12345;
}

enum class KillMode { kCleanKill, kTornWrite, kBitFlip };

const char* ModeName(KillMode mode) {
  switch (mode) {
    case KillMode::kCleanKill:
      return "clean-kill";
    case KillMode::kTornWrite:
      return "torn-write";
    case KillMode::kBitFlip:
      return "bit-flip";
  }
  return "?";
}

/// Kills the writer at one scripted sequence number and mutates the unsynced
/// suffix per the mode: drop it all (the OS never saw it), keep a byte
/// prefix (torn page write), or flip one mid-buffer bit (media corruption).
class ScriptedFaultInjector : public FaultInjector {
 public:
  ScriptedFaultInjector(uint64_t kill_seq, KillMode mode)
      : kill_seq_(kill_seq), mode_(mode) {}

  bool KillAt(uint64_t seq) override { return seq == kill_seq_; }

  void MutateUnsynced(std::string* unsynced) override {
    switch (mode_) {
      case KillMode::kCleanKill:
        unsynced->clear();
        return;
      case KillMode::kTornWrite:
        unsynced->resize(unsynced->size() / 2);
        return;
      case KillMode::kBitFlip:
        if (!unsynced->empty()) {
          (*unsynced)[unsynced->size() / 2] ^= 0x04;
        }
        return;
    }
  }

 private:
  const uint64_t kill_seq_;
  const KillMode mode_;
};

struct FaultSchedule {
  uint64_t seed = 0;
  uint64_t kill_seq = 0;
  KillMode mode = KillMode::kCleanKill;

  std::string Describe() const {
    return std::string("seed=") + std::to_string(seed) +
           " kill_seq=" + std::to_string(kill_seq) + " mode=" +
           ModeName(mode);
  }
};

/// Deterministic schedule #index for the configured base seed: a kill point
/// strictly after the checkpoint and a corruption mode.
FaultSchedule MakeSchedule(int index) {
  FaultSchedule schedule;
  schedule.seed = BaseSeed() + static_cast<uint64_t>(index);
  Rng rng(schedule.seed ^ 0xfa111a70ull);
  schedule.kill_seq =
      kCheckpointAt + 1 +
      rng.NextBounded(kTotalAuctions - kCheckpointAt);  // in (C, N]
  schedule.mode = static_cast<KillMode>(rng.NextBounded(3));
  return schedule;
}

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.num_advertisers = 30;
  config.num_slots = 4;
  config.num_keywords = 3;
  config.seed = seed;
  return config;
}

std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/ssa_fault_" + name;
}

void ExpectAccountsBitwiseEq(const std::vector<AdvertiserAccount>& a,
                             const std::vector<AdvertiserAccount>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].amount_spent, b[i].amount_spent);
    ASSERT_EQ(a[i].spent_per_keyword, b[i].spent_per_keyword);
    ASSERT_EQ(a[i].value_gained, b[i].value_gained);
  }
}

/// Engine-level kill/recover cycle over the internal query stream:
///   1. oracle runs all N auctions, never crashing;
///   2. a victim runs with a logging writer that dies at kill_seq
///      (checkpoint taken at kCheckpointAt);
///   3. a fresh engine recovers from checkpoint + log and replays;
///   4. the recovered engine finishes the remaining auctions.
/// Final accounts, revenue, and the post-recovery trajectory must be
/// bitwise-equal to the oracle's.
template <typename Engine, typename MakeEngine>
void RunEngineKillCycle(MakeEngine make_engine, const FaultSchedule& schedule,
                        const std::string& tag) {
  SCOPED_TRACE(schedule.Describe());
  const std::string log_path = TempPath(tag + "_log");
  const std::string ckpt_path = TempPath(tag + "_ckpt");
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());

  // Oracle: uninterrupted.
  std::unique_ptr<Engine> oracle = make_engine();
  for (int i = 0; i < kTotalAuctions; ++i) oracle->RunAuction();

  // Victim: logs every settlement; the writer dies at kill_seq.
  ScriptedFaultInjector injector(schedule.kill_seq, schedule.mode);
  std::unique_ptr<Engine> victim = make_engine();
  {
    LogWriterOptions options;
    options.sync = LogSyncMode::kBuffered;
    options.group_records = kGroupRecords;
    auto writer = SettlementLogWriter::Open(log_path, options,
                                            /*next_seq=*/1, &injector);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int i = 0; i < kTotalAuctions; ++i) {
      const AuctionOutcome& outcome = victim->RunAuction();
      ASSERT_TRUE((*writer)
                      ->Append(SettlementRecord::FromOutcome(
                          static_cast<uint64_t>(victim->auctions_run()),
                          outcome))
                      .ok());
      if (victim->auctions_run() == kCheckpointAt) {
        ASSERT_TRUE((*writer)->Flush().ok());
        ASSERT_TRUE(victim->WriteCheckpoint(ckpt_path).ok());
      }
    }
    EXPECT_TRUE((*writer)->dead());
  }

  // Recover a fresh engine.
  std::unique_ptr<Engine> recovered = make_engine();
  RecoveryOptions options;
  options.checkpoint_path = ckpt_path;
  options.log_path = log_path;
  options.stream = QueryStream::kInternal;
  RecoveryReport report;
  ASSERT_TRUE(RecoverEngine(recovered.get(), options, &report).ok());
  EXPECT_EQ(report.checkpoint_seq, static_cast<uint64_t>(kCheckpointAt));
  EXPECT_EQ(report.verify_mismatches, 0);

  // Loss bound: everything up to the kill minus at most one unsynced group.
  const uint64_t recovered_seq = report.recovered_seq;
  EXPECT_LE(recovered_seq, schedule.kill_seq);
  EXPECT_GE(recovered_seq + kGroupRecords, schedule.kill_seq);
  EXPECT_GE(recovered_seq, static_cast<uint64_t>(kCheckpointAt));
  EXPECT_EQ(recovered->auctions_run(), static_cast<int64_t>(recovered_seq));

  // Finish the run: the remaining trajectory must be the oracle's, bitwise.
  for (int64_t i = recovered->auctions_run(); i < kTotalAuctions; ++i) {
    recovered->RunAuction();
  }
  ExpectAccountsBitwiseEq(oracle->accounts(), recovered->accounts());
  ASSERT_EQ(oracle->total_revenue(), recovered->total_revenue());
  // And the next auction after the horizon still agrees.
  const AuctionOutcome& want = oracle->RunAuction();
  const AuctionOutcome& got = recovered->RunAuction();
  ASSERT_EQ(got.query.keyword, want.query.keyword);
  ASSERT_EQ(got.wd.allocation.slot_to_advertiser,
            want.wd.allocation.slot_to_advertiser);
  ASSERT_EQ(got.prices, want.prices);
  ASSERT_EQ(got.revenue_charged, want.revenue_charged);

  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(FaultInjectionTest, SingleEngineSurvivesRandomKills) {
  for (int i = 0; i < 4; ++i) {
    RunEngineKillCycle<AuctionEngine>(
        [] {
          Workload w = MakePaperWorkload(SmallConfig(101));
          EngineConfig config;
          config.seed = 103;
          return std::make_unique<AuctionEngine>(config, w, RoiStrategies(w));
        },
        MakeSchedule(i), "single" + std::to_string(i));
  }
}

TEST(FaultInjectionTest, ShardedEngineSurvivesRandomKills) {
  for (int i = 0; i < 4; ++i) {
    RunEngineKillCycle<ShardedAuctionEngine>(
        [] {
          Workload w = MakePaperWorkload(SmallConfig(107));
          ShardedEngineConfig config;
          config.engine.seed = 109;
          config.num_shards = 3;
          return std::make_unique<ShardedAuctionEngine>(config, w,
                                                        RoiStrategies(w));
        },
        MakeSchedule(100 + i), "sharded" + std::to_string(i));
  }
}

/// Serving-mode cycle: session 1 serves the first kCheckpointAt queries and
/// checkpoints on shutdown; session 2 recovers, serves on, and is killed at
/// kill_seq; session 3 recovers (truncating any corrupt tail), re-serves the
/// lost-and-remaining suffix, and must land bitwise on the serial oracle.
void RunServingKillCycle(const FaultSchedule& schedule,
                         const std::string& tag) {
  SCOPED_TRACE(schedule.Describe());
  const std::string log_path = TempPath(tag + "_log");
  const std::string ckpt_path = TempPath(tag + "_ckpt");
  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());

  const uint64_t workload_seed = 211;
  const uint64_t engine_seed = 223;
  Workload oracle_workload = MakePaperWorkload(SmallConfig(workload_seed));
  QueryGenerator gen(oracle_workload.config.num_keywords, engine_seed);
  std::vector<Query> queries;
  for (int i = 0; i < kTotalAuctions; ++i) queries.push_back(gen.Next());

  // Serial oracle over the same arrival sequence.
  EngineConfig engine_config;
  engine_config.seed = engine_seed;
  AuctionEngine oracle(engine_config, oracle_workload,
                       RoiStrategies(oracle_workload));
  for (const Query& q : queries) oracle.RunAuctionOn(q);

  auto make_server = [&](FaultInjector* injector) {
    ServerConfig config;
    config.engine.engine = engine_config;
    config.engine.num_shards = 2;
    config.max_batch_size = 4;
    config.mode = ServingMode::kDeterministicReplay;
    config.durability.log_path = log_path;
    config.durability.checkpoint_path = ckpt_path;
    config.durability.writer.sync = LogSyncMode::kBuffered;
    config.durability.writer.group_records = kGroupRecords;
    config.durability.injector = injector;
    Workload w = MakePaperWorkload(SmallConfig(workload_seed));
    auto strategies = RoiStrategies(w);
    return std::make_unique<AuctionServer>(config, std::move(w),
                                           std::move(strategies));
  };

  // Session 1: serve up to the checkpoint, shut down cleanly, checkpoint.
  {
    auto server = make_server(nullptr);
    ASSERT_TRUE(server->Start().ok());
    for (int i = 0; i < kCheckpointAt; ++i) {
      ASSERT_EQ(server->Submit(queries[i]), QueuePushResult::kAccepted);
    }
    server->Stop();
    ASSERT_TRUE(server->log_status().ok());
    ASSERT_EQ(server->engine().auctions_run(), kCheckpointAt);
    ASSERT_TRUE(server->WriteCheckpoint().ok());
  }

  // Session 2: recover (replays nothing or the clean suffix), serve the
  // rest; the injected fault kills the log writer at kill_seq.
  ScriptedFaultInjector injector(schedule.kill_seq, schedule.mode);
  {
    auto server = make_server(&injector);
    ASSERT_TRUE(server->Start().ok());
    ASSERT_EQ(server->recovery().recovered_seq,
              static_cast<uint64_t>(kCheckpointAt));
    for (int i = kCheckpointAt; i < kTotalAuctions; ++i) {
      ASSERT_EQ(server->Submit(queries[i]), QueuePushResult::kAccepted);
    }
    server->Stop();
    ASSERT_TRUE(server->log_writer() != nullptr &&
                server->log_writer()->dead());
  }

  // Session 3: recover past the crash, then re-serve everything the crash
  // destroyed. Recovery must truncate any corrupt tail rather than fail.
  {
    auto server = make_server(nullptr);
    ASSERT_TRUE(server->Start().ok());
    const RecoveryReport& report = server->recovery();
    EXPECT_EQ(report.checkpoint_seq, static_cast<uint64_t>(kCheckpointAt));
    EXPECT_EQ(report.verify_mismatches, 0);
    const uint64_t recovered_seq = report.recovered_seq;
    EXPECT_LE(recovered_seq, schedule.kill_seq);
    EXPECT_GE(recovered_seq + kGroupRecords, schedule.kill_seq);
    EXPECT_EQ(server->checkpoint_age(),
              static_cast<int64_t>(recovered_seq) - kCheckpointAt);
    for (uint64_t i = recovered_seq; i < kTotalAuctions; ++i) {
      ASSERT_EQ(server->Submit(queries[i]), QueuePushResult::kAccepted);
    }
    server->Stop();
    ASSERT_TRUE(server->log_status().ok());
    ASSERT_EQ(server->engine().auctions_run(), kTotalAuctions);
    ExpectAccountsBitwiseEq(oracle.accounts(), server->engine().accounts());
    ASSERT_EQ(oracle.total_revenue(), server->engine().total_revenue());
  }

  std::remove(log_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST(FaultInjectionTest, ServingModeSurvivesRandomKills) {
  for (int i = 0; i < 3; ++i) {
    RunServingKillCycle(MakeSchedule(200 + i), "serving" + std::to_string(i));
  }
}

TEST(FaultInjectionTest, EveryKillModeExercisedAtGroupBoundaryAndMidGroup) {
  // Pin the corner cases a random sweep may miss: a kill exactly at a group
  // boundary (the staged group includes a commit-eligible record) and one
  // mid-group, for each corruption mode.
  const KillMode modes[] = {KillMode::kCleanKill, KillMode::kTornWrite,
                            KillMode::kBitFlip};
  int index = 0;
  for (KillMode mode : modes) {
    for (uint64_t kill : {static_cast<uint64_t>(kCheckpointAt + kGroupRecords),
                          static_cast<uint64_t>(kCheckpointAt + kGroupRecords +
                                                3)}) {
      FaultSchedule schedule;
      schedule.seed = 0;
      schedule.kill_seq = kill;
      schedule.mode = mode;
      RunEngineKillCycle<AuctionEngine>(
          [] {
            Workload w = MakePaperWorkload(SmallConfig(227));
            EngineConfig config;
            config.seed = 229;
            return std::make_unique<AuctionEngine>(config, w,
                                                   RoiStrategies(w));
          },
          schedule, "pinned" + std::to_string(index++));
    }
  }
}

}  // namespace
}  // namespace ssa
