// CostModel / ShardRebalancer unit behavior: EWMA folding, row-proportional
// attribution, the prefix-sum balanced partition, and the imbalance metric —
// the pieces cost-driven rebalancing composes from. Engine-level effects
// (bitwise identity under Repartition, gap reduction under skew) live in
// sharded_engine_test and bench_sharded.

#include <vector>

#include <gtest/gtest.h>

#include "auction/cost_model.h"
#include "core/bids_table.h"

namespace ssa {
namespace {

/// A captured population where advertiser i emitted `rows[i]` bid rows.
std::vector<BidsTable> BidsWithRows(const std::vector<int>& rows) {
  std::vector<BidsTable> bids(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int r = 0; r < rows[i]; ++r) {
      bids[i].AddBid(Formula::True(), 1.0);
    }
  }
  return bids;
}

TEST(CostModelTest, AttributesRangeTimeProportionallyToRows) {
  CostModelOptions options;
  options.decay = 0.0;  // cost == last sample, no history
  options.base_weight = 0.0;
  CostModel model(4, options);
  const auto bids = BidsWithRows({1, 3, 0, 4});
  model.RecordRangeSample(0, 4, bids, /*range_ns=*/800.0);
  // 8 rows over 800ns => 100ns per row.
  EXPECT_DOUBLE_EQ(model.cost(0), 100.0);
  EXPECT_DOUBLE_EQ(model.cost(1), 300.0);
  EXPECT_DOUBLE_EQ(model.cost(2), 0.0);
  EXPECT_DOUBLE_EQ(model.cost(3), 400.0);
  EXPECT_DOUBLE_EQ(model.TotalCost(), 800.0);
  EXPECT_DOUBLE_EQ(model.RangeCost(1, 3), 300.0);
}

TEST(CostModelTest, BaseWeightCoversEmptyTables) {
  CostModelOptions options;
  options.decay = 0.0;
  options.base_weight = 1.0;
  CostModel model(2, options);
  const auto bids = BidsWithRows({0, 0});
  model.RecordRangeSample(0, 2, bids, 100.0);
  // Even advertisers that emitted nothing carry their fixed overhead.
  EXPECT_DOUBLE_EQ(model.cost(0), 50.0);
  EXPECT_DOUBLE_EQ(model.cost(1), 50.0);
}

TEST(CostModelTest, EwmaDecaysOldSamples) {
  CostModelOptions options;
  options.decay = 0.5;
  options.base_weight = 0.0;
  CostModel model(1, options);
  const auto bids = BidsWithRows({2});
  model.RecordRangeSample(0, 1, bids, 100.0);
  EXPECT_DOUBLE_EQ(model.cost(0), 50.0);  // 0.5*0 + 0.5*100
  model.RecordRangeSample(0, 1, bids, 100.0);
  EXPECT_DOUBLE_EQ(model.cost(0), 75.0);  // 0.5*50 + 0.5*100
  // A workload shift shows up geometrically fast. A span below clock
  // resolution (0 ns) is floored at 1 ns so the signal never pins at zero.
  model.RecordRangeSample(0, 1, bids, 0.0);
  EXPECT_DOUBLE_EQ(model.cost(0), 38.0);  // 0.5*75 + 0.5*1
}

TEST(CostModelTest, SubResolutionSpansStillCarryRowSignal) {
  // On coarse clocks every capture span can read 0; the 1ns floor keeps the
  // model row-proportional instead of all-zero, so the rebalancer still
  // sees the skew.
  CostModelOptions options;
  options.decay = 0.0;
  options.base_weight = 0.0;
  CostModel model(2, options);
  const auto bids = BidsWithRows({1, 3});
  model.RecordRangeSample(0, 2, bids, 0.0);
  EXPECT_GT(model.cost(1), model.cost(0));
  EXPECT_DOUBLE_EQ(model.TotalCost(), 1.0);
}

TEST(CostModelTest, DisjointRangesCoverPopulationIndependently) {
  CostModelOptions options;
  options.decay = 0.0;
  options.base_weight = 0.0;
  CostModel model(4, options);
  const auto bids = BidsWithRows({1, 1, 1, 1});
  // Two shards of one auction record their own spans.
  model.RecordRangeSample(0, 2, bids, 200.0);
  model.RecordRangeSample(2, 4, bids, 600.0);
  model.NoteAuction();
  EXPECT_DOUBLE_EQ(model.cost(0), 100.0);
  EXPECT_DOUBLE_EQ(model.cost(3), 300.0);
  EXPECT_EQ(model.auctions_sampled(), 1);
}

TEST(ShardRebalancerTest, UniformSplitWithoutSignal) {
  const std::vector<double> costs(8, 0.0);
  const auto ranges = ShardRebalancer::ComputeBalancedRanges(costs, 4);
  ASSERT_EQ(ranges.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(ranges[s].begin, 2 * s);
    EXPECT_EQ(ranges[s].end, 2 * s + 2);
  }
}

TEST(ShardRebalancerTest, BalancesSkewedCosts) {
  // One hot advertiser dominating: it should end up nearly alone.
  std::vector<double> costs(8, 1.0);
  costs[0] = 100.0;
  const auto ranges = ShardRebalancer::ComputeBalancedRanges(costs, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].begin, 0);
  EXPECT_EQ(ranges[0].end, 1);  // the hot advertiser alone
  EXPECT_EQ(ranges.back().end, 8);
  // The balanced layout must not be *worse* than uniform.
  std::vector<ShardRange> uniform;
  for (int s = 0; s < 4; ++s) {
    uniform.push_back(ShardRange{2 * s, 2 * s + 2});
  }
  EXPECT_LE(ShardRebalancer::PredictedImbalance(costs, ranges),
            ShardRebalancer::PredictedImbalance(costs, uniform));
}

TEST(ShardRebalancerTest, PartitionIsAlwaysValid) {
  // Adversarial cost vectors must still yield contiguous, non-empty,
  // covering partitions for every shard count.
  const std::vector<std::vector<double>> vectors = {
      {0, 0, 0, 0, 0, 1000},       // all cost at the end
      {1000, 0, 0, 0, 0, 0},       // all cost at the front
      {1, 1, 1, 1, 1, 1},          // flat
      {100, 1, 100, 1, 100, 1},    // alternating
  };
  for (const auto& costs : vectors) {
    for (int k = 1; k <= 6; ++k) {
      const auto ranges = ShardRebalancer::ComputeBalancedRanges(costs, k);
      ASSERT_EQ(ranges.size(), static_cast<size_t>(k));
      AdvertiserId next = 0;
      for (const ShardRange& range : ranges) {
        EXPECT_EQ(range.begin, next);
        EXPECT_LT(range.begin, range.end);
        next = range.end;
      }
      EXPECT_EQ(next, static_cast<AdvertiserId>(costs.size()));
    }
  }
}

TEST(ShardRebalancerTest, ClampsShardCountToPopulation) {
  const std::vector<double> costs = {5.0, 3.0};
  const auto ranges = ShardRebalancer::ComputeBalancedRanges(costs, 7);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].begin, 0);
  EXPECT_EQ(ranges[1].end, 2);
}

TEST(ShardRebalancerTest, PredictedImbalanceIsMaxOverMean) {
  const std::vector<double> costs = {3.0, 1.0, 1.0, 1.0};
  const std::vector<ShardRange> ranges = {{0, 2}, {2, 4}};  // 4 vs 2
  EXPECT_DOUBLE_EQ(ShardRebalancer::PredictedImbalance(costs, ranges),
                   4.0 / 3.0);
  const std::vector<ShardRange> balanced = {{0, 1}, {1, 4}};  // 3 vs 3
  EXPECT_DOUBLE_EQ(ShardRebalancer::PredictedImbalance(costs, balanced), 1.0);
}

TEST(ShardRebalancerTest, DueHonorsPeriodAndDisable) {
  ShardRebalancerOptions options;
  options.every = 10;
  ShardRebalancer rebalancer(options);
  EXPECT_FALSE(rebalancer.Due(5));
  EXPECT_TRUE(rebalancer.Due(10));
  EXPECT_FALSE(rebalancer.Due(15));  // period restarts at the due point
  EXPECT_TRUE(rebalancer.Due(21));

  ShardRebalancerOptions off;
  off.every = 0;
  ShardRebalancer disabled(off);
  EXPECT_FALSE(disabled.Due(1000000));
}

}  // namespace
}  // namespace ssa
