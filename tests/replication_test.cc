// Replication: log tail classification, the live tailer, the follower
// engine, and the read-routing layer.
//
// The load-bearing property throughout is the bitwise replay contract: a
// follower that bootstraps from the leader's checkpoint and re-executes the
// settlement log reaches account state bitwise-identical to the leader at
// every applied sequence — including across a kill/restart at a
// seed-derived point (the same SSA_FAULT_SEED sweep fault_injection_test
// uses for the leader's own recovery).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "auction/auction_engine.h"
#include "auction/sharded_engine.h"
#include "auction/workload.h"
#include "durability/settlement_log.h"
#include "durability/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/follower.h"
#include "replication/log_tailer.h"
#include "serving/auction_server.h"
#include "serving/read_replicas.h"
#include "strategy/roi_strategy.h"
#include "util/rng.h"

namespace ssa {
namespace {

using std::chrono::milliseconds;

constexpr int kTotalAuctions = 60;
constexpr int kCheckpointAt = 20;
constexpr uint64_t kWorkloadSeed = 71;
constexpr uint64_t kEngineSeed = 977;

uint64_t BaseSeed() {
  const char* env = std::getenv("SSA_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 12345;
}

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.num_advertisers = 30;
  config.num_slots = 4;
  config.num_keywords = 3;
  config.seed = seed;
  return config;
}

std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/ssa_repl_" + name;
}

void ExpectAccountsBitwiseEq(const std::vector<AdvertiserAccount>& a,
                             const std::vector<AdvertiserAccount>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].amount_spent, b[i].amount_spent) << "advertiser " << i;
    ASSERT_EQ(a[i].spent_per_keyword, b[i].spent_per_keyword)
        << "advertiser " << i;
    ASSERT_EQ(a[i].value_gained, b[i].value_gained) << "advertiser " << i;
  }
}

/// A small synthetic record with distinguishable per-seq content — enough
/// for the frame/tailer tests, which never replay it.
SettlementRecord TinyRecord(uint64_t seq) {
  SettlementRecord r;
  r.seq = seq;
  r.query.keyword = static_cast<int>(seq % 3);
  r.query.time = static_cast<int64_t>(seq);
  r.query.relevance = {0.0, 1.0, 0.0};
  r.winners = {static_cast<AdvertiserId>(seq % 5), -1};
  r.prices = {static_cast<Money>(seq), 0};
  UserEvent event;
  event.advertiser = static_cast<AdvertiserId>(seq % 5);
  event.slot = 0;
  event.clicked = (seq % 2) == 0;
  event.charged = static_cast<Money>(seq);
  r.events = {event};
  r.matching_weight = 1.5 * static_cast<double>(seq);
  r.expected_revenue = 2.5 * static_cast<double>(seq);
  r.revenue_charged = static_cast<Money>(seq);
  return r;
}

void AppendRaw(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string FreshPath(const std::string& name) {
  const std::string path = TempPath(name);
  std::remove(path.c_str());
  return path;
}

// ---------------------------------------------------------------------------
// Tail classification (ReadSettlementLog + LogTailKind)
// ---------------------------------------------------------------------------

TEST(LogTailClassificationTest, CleanLogEndsClean) {
  const std::string path = FreshPath("tail_clean");
  std::string bytes;
  EncodeLogFrame(TinyRecord(1), &bytes);
  EncodeLogFrame(TinyRecord(2), &bytes);
  AppendRaw(path, bytes);

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(stats.tail, LogTailKind::kClean);
  EXPECT_EQ(stats.corrupt_bytes, 0u);
  EXPECT_EQ(stats.last_seq, 2u);
}

TEST(LogTailClassificationTest, ShortHeaderIsIncomplete) {
  const std::string path = FreshPath("tail_short_header");
  std::string bytes;
  EncodeLogFrame(TinyRecord(1), &bytes);
  std::string frame2;
  EncodeLogFrame(TinyRecord(2), &frame2);
  bytes += frame2.substr(0, 4);  // half the [len][crc] header
  AppendRaw(path, bytes);

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.tail, LogTailKind::kIncomplete);
  EXPECT_EQ(stats.corrupt_bytes, 4u);
}

TEST(LogTailClassificationTest, ShortPayloadIsIncomplete) {
  const std::string path = FreshPath("tail_short_payload");
  std::string bytes;
  EncodeLogFrame(TinyRecord(1), &bytes);
  std::string frame2;
  EncodeLogFrame(TinyRecord(2), &frame2);
  bytes += frame2.substr(0, frame2.size() / 2);  // header + partial payload
  AppendRaw(path, bytes);

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.tail, LogTailKind::kIncomplete);
}

TEST(LogTailClassificationTest, CrcMismatchOnCompletePayloadIsCorrupt) {
  const std::string path = FreshPath("tail_crc");
  std::string bytes;
  EncodeLogFrame(TinyRecord(1), &bytes);
  std::string frame2;
  EncodeLogFrame(TinyRecord(2), &frame2);
  frame2[frame2.size() - 1] ^= 0x10;  // payload bit flip, frame complete
  bytes += frame2;
  AppendRaw(path, bytes);

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.tail, LogTailKind::kCorrupt);
  EXPECT_EQ(stats.corrupt_bytes, frame2.size());
}

TEST(LogTailClassificationTest, SequenceGapIsCorrupt) {
  const std::string path = FreshPath("tail_gap");
  std::string bytes;
  EncodeLogFrame(TinyRecord(1), &bytes);
  EncodeLogFrame(TinyRecord(3), &bytes);  // skips seq 2
  AppendRaw(path, bytes);

  std::vector<SettlementRecord> records;
  LogReadStats stats;
  ASSERT_TRUE(ReadSettlementLog(path, &records, &stats).ok());
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(stats.tail, LogTailKind::kCorrupt);
}

// ---------------------------------------------------------------------------
// LogTailer
// ---------------------------------------------------------------------------

TEST(LogTailerTest, InterleavedWithBufferedWriter) {
  const std::string path = FreshPath("tailer_interleaved");
  LogWriterOptions options;
  options.sync = LogSyncMode::kBuffered;
  options.group_records = 4;
  auto writer = SettlementLogWriter::Open(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  auto tailer = LogTailer::Open(path);
  ASSERT_TRUE(tailer.ok()) << tailer.status().ToString();

  constexpr int kRecords = 22;
  std::vector<SettlementRecord> delivered;
  for (uint64_t seq = 1; seq <= kRecords; ++seq) {
    ASSERT_TRUE((*writer)->Append(TinyRecord(seq)).ok());
    // Poll after every append: only fully committed groups may surface, and
    // an uncommitted group must read as a clean "nothing yet" poll, never
    // an error.
    ASSERT_TRUE((*tailer)->Poll(&delivered).ok());
    EXPECT_EQ(delivered.size(),
              (seq / options.group_records) * options.group_records);
  }
  ASSERT_TRUE((*writer)->Flush().ok());
  ASSERT_TRUE((*tailer)->Poll(&delivered).ok());
  ASSERT_EQ(delivered.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(delivered[i].seq, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(delivered[i].revenue_charged,
              static_cast<Money>(i + 1));  // content, not just the seq
  }
  EXPECT_EQ((*tailer)->last_seq(), static_cast<uint64_t>(kRecords));
  EXPECT_EQ((*tailer)->records_delivered(), kRecords);
  EXPECT_EQ((*tailer)->bytes_behind(), 0u);
}

TEST(LogTailerTest, CarriesFrameSplitAcrossPolls) {
  const std::string path = FreshPath("tailer_split");
  std::string frame1, frame2;
  EncodeLogFrame(TinyRecord(1), &frame1);
  EncodeLogFrame(TinyRecord(2), &frame2);

  AppendRaw(path, frame1 + frame2.substr(0, frame2.size() / 2));
  auto tailer = LogTailer::Open(path);
  ASSERT_TRUE(tailer.ok());

  std::vector<SettlementRecord> records;
  ASSERT_TRUE((*tailer)->Poll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
  // The in-progress half-frame is byte lag, not corruption.
  EXPECT_EQ((*tailer)->bytes_behind(), frame2.size() - frame2.size() / 2);

  AppendRaw(path, frame2.substr(frame2.size() / 2));
  ASSERT_TRUE((*tailer)->Poll(&records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_EQ((*tailer)->bytes_behind(), 0u);
}

TEST(LogTailerTest, OpensBeforeTheLogExists) {
  const std::string path = FreshPath("tailer_noent");
  auto tailer = LogTailer::Open(path);
  ASSERT_TRUE(tailer.ok());

  std::vector<SettlementRecord> records;
  ASSERT_TRUE((*tailer)->Poll(&records).ok());
  EXPECT_TRUE(records.empty());

  std::string frame;
  EncodeLogFrame(TinyRecord(1), &frame);
  AppendRaw(path, frame);
  ASSERT_TRUE((*tailer)->Poll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
}

TEST(LogTailerTest, StartAfterSeqSkipsWithoutDelivering) {
  const std::string path = FreshPath("tailer_resume");
  std::string bytes;
  for (uint64_t seq = 1; seq <= 30; ++seq) {
    EncodeLogFrame(TinyRecord(seq), &bytes);
  }
  AppendRaw(path, bytes);

  LogTailerOptions options;
  options.start_after_seq = 10;
  auto tailer = LogTailer::Open(path, options);
  ASSERT_TRUE(tailer.ok());
  EXPECT_EQ((*tailer)->last_seq(), 10u);

  std::vector<SettlementRecord> records;
  ASSERT_TRUE((*tailer)->Poll(&records).ok());
  ASSERT_EQ(records.size(), 20u);
  EXPECT_EQ(records.front().seq, 11u);
  EXPECT_EQ(records.back().seq, 30u);
}

TEST(LogTailerTest, CorruptionIsSticky) {
  const std::string path = FreshPath("tailer_corrupt");
  std::string bytes, frame2;
  EncodeLogFrame(TinyRecord(1), &bytes);
  EncodeLogFrame(TinyRecord(2), &frame2);
  frame2[frame2.size() - 2] ^= 0x01;
  bytes += frame2;
  AppendRaw(path, bytes);

  auto tailer = LogTailer::Open(path);
  ASSERT_TRUE(tailer.ok());
  std::vector<SettlementRecord> records;
  const Status first = (*tailer)->Poll(&records);
  EXPECT_EQ(first.code(), StatusCode::kDataLoss) << first.ToString();
  EXPECT_EQ(records.size(), 1u);  // the intact prefix was still delivered

  // Appending good bytes afterwards cannot resynchronize a corrupt tailer.
  std::string frame3;
  EncodeLogFrame(TinyRecord(3), &frame3);
  AppendRaw(path, frame3);
  const Status second = (*tailer)->Poll(&records);
  EXPECT_EQ(second.code(), StatusCode::kDataLoss);
  EXPECT_EQ(records.size(), 1u);
}

TEST(LogTailerTest, FileShrinkIsDataLoss) {
  const std::string path = FreshPath("tailer_shrink");
  std::string bytes;
  EncodeLogFrame(TinyRecord(1), &bytes);
  EncodeLogFrame(TinyRecord(2), &bytes);
  AppendRaw(path, bytes);

  auto tailer = LogTailer::Open(path);
  ASSERT_TRUE(tailer.ok());
  std::vector<SettlementRecord> records;
  ASSERT_TRUE((*tailer)->Poll(&records).ok());
  ASSERT_EQ(records.size(), 2u);

  ASSERT_TRUE(TruncateFile(path, bytes.size() / 2).ok());
  const Status polled = (*tailer)->Poll(&records);
  EXPECT_EQ(polled.code(), StatusCode::kDataLoss) << polled.ToString();
}

TEST(LogTailerTest, ConcurrentWithWriterThread) {
  const std::string path = FreshPath("tailer_concurrent");
  constexpr int kRecords = 200;

  std::thread writer_thread([&] {
    LogWriterOptions options;
    options.sync = LogSyncMode::kBuffered;
    options.group_records = 8;
    auto writer = SettlementLogWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= kRecords; ++seq) {
      ASSERT_TRUE((*writer)->Append(TinyRecord(seq)).ok());
      if (seq % 16 == 0) std::this_thread::yield();
    }
    ASSERT_TRUE((*writer)->Flush().ok());
  });

  auto tailer = LogTailer::Open(path);
  ASSERT_TRUE(tailer.ok());
  std::vector<SettlementRecord> records;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (records.size() < kRecords &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE((*tailer)->Poll(&records).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  writer_thread.join();
  ASSERT_TRUE((*tailer)->Poll(&records).ok());
  ASSERT_EQ(records.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(records[i].seq, static_cast<uint64_t>(i + 1));
  }
}

// ---------------------------------------------------------------------------
// PeekBids (the const read path's foundation)
// ---------------------------------------------------------------------------

/// A deliberately stateful strategy withOUT a PeekBids override: each
/// MakeBids advances a counter and bids the counter value. Exercises the
/// default save/run/restore implementation.
class CountingStrategy : public BiddingStrategy {
 public:
  explicit CountingStrategy(Formula formula) : formula_(formula) {}

  void MakeBids(const Query& query, const AdvertiserAccount& account,
                BidsTable* bids) override {
    (void)query;
    (void)account;
    ++calls_;
    bids->AddBid(formula_, static_cast<Money>(calls_));
  }

  void SaveState(std::string* out) const override {
    WireWriter(out).PutI64(calls_);
  }

  Status RestoreState(std::string_view blob) override {
    WireReader reader(blob);
    SSA_RETURN_IF_ERROR(reader.GetI64(&calls_));
    return Status::Ok();
  }

  int64_t calls() const { return calls_; }

 private:
  Formula formula_;
  int64_t calls_ = 0;
};

TEST(PeekBidsTest, DefaultPeekMatchesNextMakeWithoutAdvancing) {
  Workload workload = MakePaperWorkload(SmallConfig(kWorkloadSeed));
  CountingStrategy strategy(workload.keyword_formulas[0]);
  QueryGenerator gen(workload.config.num_keywords, 5);
  const Query query = gen.Next();
  const AdvertiserAccount& account = workload.accounts[0];

  BidsTable peek1, peek2, made;
  strategy.PeekBids(query, account, &peek1);
  EXPECT_EQ(strategy.calls(), 0);  // state untouched
  strategy.PeekBids(query, account, &peek2);
  ASSERT_EQ(peek1.size(), 1u);
  EXPECT_EQ(peek1.rows()[0].value, peek2.rows()[0].value);

  strategy.MakeBids(query, account, &made);
  EXPECT_EQ(strategy.calls(), 1);
  // The peek predicted exactly what the next real call produced.
  EXPECT_EQ(made.rows()[0].value, peek1.rows()[0].value);
}

TEST(PeekBidsTest, RoiPeekMatchesMakeAndNeverPerturbs) {
  Workload workload = MakePaperWorkload(SmallConfig(kWorkloadSeed));
  // Twin strategies on the same account: A is peeked before every make, B
  // is never peeked. Their emissions must stay identical forever.
  RoiStrategy peeked(workload.keyword_formulas);
  RoiStrategy control(workload.keyword_formulas);
  QueryGenerator gen(workload.config.num_keywords, 9);
  const AdvertiserAccount& account = workload.accounts[3];

  for (int i = 0; i < 25; ++i) {
    const Query query = gen.Next();
    BidsTable peeked_bids, made_a, made_b;
    peeked.PeekBids(query, account, &peeked_bids);
    peeked.MakeBids(query, account, &made_a);
    control.MakeBids(query, account, &made_b);
    EXPECT_EQ(peeked_bids.ToString(), made_a.ToString()) << "auction " << i;
    EXPECT_EQ(made_a.ToString(), made_b.ToString()) << "auction " << i;
  }
}

// ---------------------------------------------------------------------------
// Const what-if paths on both engines
// ---------------------------------------------------------------------------

TEST(WhatIfAuctionTest, SingleEngineWhatIfIsPure) {
  const WorkloadConfig wc = SmallConfig(kWorkloadSeed);
  EngineConfig config;
  config.seed = kEngineSeed;
  Workload w1 = MakePaperWorkload(wc);
  Workload w2 = MakePaperWorkload(wc);
  AuctionEngine probed(config, w1, RoiStrategies(w1));
  AuctionEngine control(config, w2, RoiStrategies(w2));

  QueryGenerator gen(wc.num_keywords, kEngineSeed);
  for (int i = 0; i < 40; ++i) {
    const Query query = gen.Next();
    AuctionOutcome what_if;
    probed.WhatIfAuction(query, &what_if);
    EXPECT_TRUE(what_if.events.empty());
    EXPECT_EQ(what_if.revenue_charged, 0);

    const AuctionOutcome& real = control.RunAuctionOn(query);
    // The what-if predicted the allocation and prices the control engine
    // (same state) actually cleared at.
    EXPECT_EQ(what_if.wd.allocation.slot_to_advertiser,
              real.wd.allocation.slot_to_advertiser)
        << "auction " << i;
    EXPECT_EQ(what_if.prices, real.prices) << "auction " << i;

    // And the what-if did not perturb the probed engine: its own real
    // auction still matches the control bitwise.
    const AuctionOutcome& mine = probed.RunAuctionOn(query);
    EXPECT_EQ(mine.wd.allocation.slot_to_advertiser,
              real.wd.allocation.slot_to_advertiser);
    EXPECT_EQ(mine.prices, real.prices);
    EXPECT_EQ(mine.revenue_charged, real.revenue_charged);
  }
  ExpectAccountsBitwiseEq(probed.accounts(), control.accounts());
  EXPECT_EQ(probed.total_revenue(), control.total_revenue());
}

TEST(WhatIfAuctionTest, ShardedEngineWhatIfIsPure) {
  const WorkloadConfig wc = SmallConfig(kWorkloadSeed);
  ShardedEngineConfig config;
  config.engine.seed = kEngineSeed;
  config.num_shards = 3;
  ShardedEngineConfig control_config = config;
  control_config.num_shards = 2;  // shard layout must not matter

  Workload w1 = MakePaperWorkload(wc);
  Workload w2 = MakePaperWorkload(wc);
  ShardedAuctionEngine probed(config, w1, RoiStrategies(w1));
  ShardedAuctionEngine control(control_config, w2, RoiStrategies(w2));
  std::unique_ptr<ShardedAuctionEngine::PlanLane> lane = probed.NewPlanLane();

  QueryGenerator gen(wc.num_keywords, kEngineSeed);
  for (int i = 0; i < 40; ++i) {
    const Query query = gen.Next();
    ShardedAuctionEngine::PlannedAuction plan;
    probed.WhatIfAuction(query, lane.get(), &plan);
    EXPECT_TRUE(plan.outcome.events.empty());

    const AuctionOutcome& real = control.RunAuctionOn(query);
    EXPECT_EQ(plan.outcome.wd.allocation.slot_to_advertiser,
              real.wd.allocation.slot_to_advertiser)
        << "auction " << i;
    EXPECT_EQ(plan.prices, real.prices) << "auction " << i;

    const AuctionOutcome& mine = probed.RunAuctionOn(query);
    EXPECT_EQ(mine.revenue_charged, real.revenue_charged) << "auction " << i;
  }
  ExpectAccountsBitwiseEq(probed.accounts(), control.accounts());
  EXPECT_EQ(probed.total_revenue(), control.total_revenue());
}

// ---------------------------------------------------------------------------
// FollowerEngine
// ---------------------------------------------------------------------------

struct LeaderArtifacts {
  std::string log_path;
  std::string ckpt_path;
  std::vector<Query> queries;
  std::vector<AdvertiserAccount> final_accounts;
  Money final_revenue = 0;
};

ShardedEngineConfig ReplicaEngineConfig(int num_shards) {
  ShardedEngineConfig config;
  config.engine.seed = kEngineSeed;
  config.num_shards = num_shards;
  return config;
}

std::unique_ptr<ShardedAuctionEngine> MakeReplicaEngine(int num_shards) {
  Workload workload = MakePaperWorkload(SmallConfig(kWorkloadSeed));
  auto strategies = RoiStrategies(workload);
  return std::make_unique<ShardedAuctionEngine>(ReplicaEngineConfig(num_shards),
                                                std::move(workload),
                                                std::move(strategies));
}

/// Runs a leader for kTotalAuctions settlements: checkpoint at
/// kCheckpointAt, every settlement appended to the log, flushed at the end.
LeaderArtifacts RunLeader(const std::string& tag) {
  LeaderArtifacts leader;
  leader.log_path = FreshPath(tag + "_log");
  leader.ckpt_path = FreshPath(tag + "_ckpt");

  QueryGenerator gen(SmallConfig(kWorkloadSeed).num_keywords, kEngineSeed);
  for (int i = 0; i < kTotalAuctions; ++i) leader.queries.push_back(gen.Next());

  std::unique_ptr<ShardedAuctionEngine> engine = MakeReplicaEngine(2);
  LogWriterOptions options;
  options.sync = LogSyncMode::kBuffered;
  options.group_records = 8;
  auto writer = SettlementLogWriter::Open(leader.log_path, options);
  SSA_CHECK(writer.ok());
  for (const Query& query : leader.queries) {
    const AuctionOutcome& outcome = engine->RunAuctionOn(query);
    SSA_CHECK((*writer)
                  ->Append(SettlementRecord::FromOutcome(
                      static_cast<uint64_t>(engine->auctions_run()), outcome))
                  .ok());
    if (engine->auctions_run() == kCheckpointAt) {
      SSA_CHECK(engine->WriteCheckpoint(leader.ckpt_path).ok());
    }
  }
  SSA_CHECK((*writer)->Flush().ok());
  leader.final_accounts = engine->accounts();
  leader.final_revenue = engine->total_revenue();
  return leader;
}

FollowerConfig MakeFollowerConfig(const LeaderArtifacts& leader,
                                  int num_shards) {
  FollowerConfig config;
  config.engine = ReplicaEngineConfig(num_shards);
  config.checkpoint_path = leader.ckpt_path;
  config.log_path = leader.log_path;
  return config;
}

std::unique_ptr<FollowerEngine> MakeFollower(const FollowerConfig& config) {
  Workload workload = MakePaperWorkload(SmallConfig(kWorkloadSeed));
  auto strategies = RoiStrategies(workload);
  return std::make_unique<FollowerEngine>(config, std::move(workload),
                                          std::move(strategies));
}

TEST(FollowerEngineTest, CatchesUpBitwiseFromCheckpoint) {
  const LeaderArtifacts leader = RunLeader("follower_catchup");

  MetricsRegistry metrics;
  Tracer tracer(TraceConfig{/*sample_every=*/1});
  FollowerConfig config = MakeFollowerConfig(leader, /*num_shards=*/3);
  config.metrics = &metrics;
  config.metric_labels = "follower=\"f0\"";
  config.tracer = &tracer;
  config.leader_seq = [] { return uint64_t{kTotalAuctions}; };

  std::unique_ptr<FollowerEngine> follower = MakeFollower(config);
  ASSERT_TRUE(follower->Start().ok());
  ASSERT_TRUE(follower->WaitForSeq(kTotalAuctions, milliseconds(10000)));
  EXPECT_EQ(follower->applied_seq(), static_cast<uint64_t>(kTotalAuctions));
  // Bootstrapped at the checkpoint, so only the suffix was replayed.
  EXPECT_EQ(follower->records_applied(), kTotalAuctions - kCheckpointAt);
  EXPECT_TRUE(follower->status().ok());

  std::vector<AdvertiserAccount> accounts;
  uint64_t applied_at = 0;
  ASSERT_TRUE(follower->AccountsSnapshot(&accounts, &applied_at).ok());
  EXPECT_EQ(applied_at, static_cast<uint64_t>(kTotalAuctions));
  ExpectAccountsBitwiseEq(accounts, leader.final_accounts);

  Money revenue = 0;
  ASSERT_TRUE(follower->TotalRevenue(&revenue).ok());
  EXPECT_EQ(revenue, leader.final_revenue);

  // What-if reads work and do not perturb the replica.
  QueryGenerator gen(SmallConfig(kWorkloadSeed).num_keywords, 31337);
  for (int i = 0; i < 5; ++i) {
    ShardedAuctionEngine::PlannedAuction plan;
    ASSERT_TRUE(follower->WhatIf(gen.Next(), &plan, &applied_at).ok());
    EXPECT_EQ(applied_at, static_cast<uint64_t>(kTotalAuctions));
  }
  std::vector<Money> prices;
  ASSERT_TRUE(follower->EstimatePrices(gen.Next(), &prices).ok());
  ASSERT_TRUE(follower->AccountsSnapshot(&accounts, nullptr).ok());
  ExpectAccountsBitwiseEq(accounts, leader.final_accounts);

  follower->Stop();
  EXPECT_FALSE(follower->running());

  // Satellite: replication lag/throughput observability was published.
  const MetricsSnapshot snapshot = metrics.Snapshot();
  bool saw_applied = false, saw_lag_seq = false, saw_lag_bytes = false,
       saw_counter = false;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.labels != "follower=\"f0\"") continue;
    if (sample.name == "replication_applied_seq") {
      saw_applied = true;
      EXPECT_EQ(sample.value, static_cast<double>(kTotalAuctions));
    } else if (sample.name == "replication_lag_seq") {
      saw_lag_seq = true;
      EXPECT_EQ(sample.value, 0.0);
    } else if (sample.name == "replication_lag_bytes") {
      saw_lag_bytes = true;
      EXPECT_EQ(sample.value, 0.0);
    } else if (sample.name == "replication_records_applied_total") {
      saw_counter = true;
      EXPECT_EQ(sample.value,
                static_cast<double>(kTotalAuctions - kCheckpointAt));
    }
  }
  EXPECT_TRUE(saw_applied && saw_lag_seq && saw_lag_bytes && saw_counter);

  // And each applied record left a follower_apply span (full sampling).
  const std::vector<TraceEvent> spans = tracer.Drain();
  int apply_spans = 0;
  for (const TraceEvent& span : spans) {
    if (span.stage == TraceStage::kFollowerApply) ++apply_spans;
  }
  EXPECT_EQ(apply_spans, kTotalAuctions - kCheckpointAt);
}

TEST(FollowerEngineTest, ReplaysFromSeqOneWithoutCheckpoint) {
  const LeaderArtifacts leader = RunLeader("follower_full_replay");
  FollowerConfig config = MakeFollowerConfig(leader, /*num_shards=*/1);
  config.checkpoint_path.clear();

  std::unique_ptr<FollowerEngine> follower = MakeFollower(config);
  ASSERT_TRUE(follower->Start().ok());
  ASSERT_TRUE(follower->WaitForSeq(kTotalAuctions, milliseconds(10000)));
  EXPECT_EQ(follower->records_applied(), kTotalAuctions);

  std::vector<AdvertiserAccount> accounts;
  ASSERT_TRUE(follower->AccountsSnapshot(&accounts, nullptr).ok());
  ExpectAccountsBitwiseEq(accounts, leader.final_accounts);
}

TEST(FollowerEngineTest, DivergentReplicaFailsSticky) {
  const LeaderArtifacts leader = RunLeader("follower_diverge");
  FollowerConfig config = MakeFollowerConfig(leader, /*num_shards=*/2);
  config.checkpoint_path.clear();   // a checkpoint restore would bring the
  config.engine.engine.seed = 999;  // right RNG state along; replay alone
                                    // diverges on the wrong seed
  std::unique_ptr<FollowerEngine> follower = MakeFollower(config);
  ASSERT_TRUE(follower->Start().ok());
  EXPECT_FALSE(follower->WaitForSeq(kTotalAuctions, milliseconds(10000)));
  const Status status = follower->status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();

  ShardedAuctionEngine::PlannedAuction plan;
  QueryGenerator gen(SmallConfig(kWorkloadSeed).num_keywords, 1);
  EXPECT_FALSE(follower->WhatIf(gen.Next(), &plan).ok());
}

/// Satellite 3: the kill/restart sweep. A follower is frozen at a
/// seed-derived applied-seq (the "kill"), its state checkpointed, and a
/// successor bootstrapped from that checkpoint must finish the log bitwise
/// equal to the leader — the replica analogue of the leader's own
/// crash-recovery sweep, driven by the same SSA_FAULT_SEED.
TEST(FollowerEngineTest, KillRestartSweepIsBitwise) {
  const LeaderArtifacts leader = RunLeader("follower_sweep");
  constexpr int kSchedules = 4;
  for (int index = 0; index < kSchedules; ++index) {
    const uint64_t seed = BaseSeed() + static_cast<uint64_t>(index);
    Rng rng(seed ^ 0xf0110fe7ull);
    const uint64_t kill_seq =
        kCheckpointAt + 1 + rng.NextBounded(kTotalAuctions - kCheckpointAt);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " kill_seq=" + std::to_string(kill_seq));

    // Follower A applies up to the kill point and freezes there.
    FollowerConfig config_a = MakeFollowerConfig(leader, /*num_shards=*/3);
    config_a.apply_limit_seq = kill_seq;
    std::unique_ptr<FollowerEngine> a = MakeFollower(config_a);
    ASSERT_TRUE(a->Start().ok());
    ASSERT_TRUE(a->WaitForSeq(kill_seq, milliseconds(10000)));
    // Give the apply loop a moment to prove it holds at the limit.
    EXPECT_EQ(a->applied_seq(), kill_seq);

    // Its state at the kill point is bitwise the leader's at that seq.
    std::unique_ptr<ShardedAuctionEngine> oracle = MakeReplicaEngine(2);
    for (uint64_t i = 0; i < kill_seq; ++i) {
      oracle->RunAuctionOn(leader.queries[i]);
    }
    std::vector<AdvertiserAccount> at_kill;
    ASSERT_TRUE(a->AccountsSnapshot(&at_kill, nullptr).ok());
    ExpectAccountsBitwiseEq(at_kill, oracle->accounts());

    // The dying follower's own checkpoint seeds its successor.
    const std::string ckpt =
        FreshPath("follower_sweep_ckpt_" + std::to_string(index));
    ASSERT_TRUE(a->WriteCheckpoint(ckpt).ok());
    a->Stop();

    FollowerConfig config_b = MakeFollowerConfig(leader, /*num_shards=*/2);
    config_b.checkpoint_path = ckpt;
    std::unique_ptr<FollowerEngine> b = MakeFollower(config_b);
    ASSERT_TRUE(b->Start().ok());
    EXPECT_EQ(b->applied_seq(), kill_seq);  // bootstrapped at the kill point
    ASSERT_TRUE(b->WaitForSeq(kTotalAuctions, milliseconds(10000)));
    EXPECT_EQ(b->records_applied(),
              static_cast<int64_t>(kTotalAuctions - kill_seq));
    std::vector<AdvertiserAccount> final_accounts;
    ASSERT_TRUE(b->AccountsSnapshot(&final_accounts, nullptr).ok());
    ExpectAccountsBitwiseEq(final_accounts, leader.final_accounts);
  }
}

// ---------------------------------------------------------------------------
// ReadReplicaSet
// ---------------------------------------------------------------------------

TEST(ReadReplicaSetTest, RoutesByConsistency) {
  const LeaderArtifacts leader = RunLeader("replicas_routing");
  std::atomic<uint64_t> leader_seq{kTotalAuctions};

  ReadReplicaSetConfig config;
  config.num_followers = 2;
  config.leader_seq = [&] { return leader_seq.load(); };
  ReadReplicaSet replicas(config, [&](int i) {
    // Different shard counts per follower: replicas need not mirror the
    // leader's layout to be bitwise replicas.
    return MakeFollower(MakeFollowerConfig(leader, /*num_shards=*/i + 1));
  });
  ASSERT_TRUE(replicas.Start().ok());

  // Read-your-writes at the leader's final settled seq: the router may have
  // to wait out the catch-up, then every answer reflects seq 60.
  ReadOptions at_least;
  at_least.consistency = ReadConsistency::kAtLeastSeq;
  at_least.min_seq = kTotalAuctions;
  at_least.wait_timeout = milliseconds(10000);
  QueryGenerator gen(SmallConfig(kWorkloadSeed).num_keywords, 7);
  std::vector<Money> prices;
  uint64_t applied_at = 0;
  ASSERT_TRUE(
      replicas.EstimatePrices(at_least, gen.Next(), &prices, &applied_at).ok());
  EXPECT_GE(applied_at, static_cast<uint64_t>(kTotalAuctions));

  EXPECT_EQ(replicas.min_applied_seq(), static_cast<uint64_t>(kTotalAuctions));
  EXPECT_EQ(replicas.max_applied_seq(), static_cast<uint64_t>(kTotalAuctions));

  // kAny rotates across both healthy followers.
  ReadOptions any;
  bool saw[2] = {false, false};
  for (int i = 0; i < 8; ++i) {
    auto routed = replicas.Route(any);
    ASSERT_TRUE(routed.ok());
    for (int f = 0; f < 2; ++f) {
      if (*routed == replicas.follower(f)) saw[f] = true;
    }
  }
  EXPECT_TRUE(saw[0] && saw[1]);

  // Account reads route like everything else, and the snapshot is the
  // leader's state bitwise.
  AdvertiserAccount account;
  ASSERT_TRUE(replicas.AccountSnapshot(at_least, 7, &account, nullptr).ok());
  EXPECT_EQ(account.amount_spent, leader.final_accounts[7].amount_spent);

  // A write token past everything the log holds cannot be served.
  ReadOptions unreachable = at_least;
  unreachable.min_seq = kTotalAuctions + 1000;
  unreachable.wait_timeout = milliseconds(50);
  auto routed = replicas.Route(unreachable);
  ASSERT_FALSE(routed.ok());
  EXPECT_EQ(routed.status().code(), StatusCode::kUnavailable);

  // Bounded staleness: fine while the leader is at 60, unavailable the
  // moment the leader claims to be far ahead of every replica.
  ReadOptions bounded;
  bounded.consistency = ReadConsistency::kBoundedStaleness;
  bounded.max_lag_seq = 0;
  EXPECT_TRUE(replicas.Route(bounded).ok());
  leader_seq.store(kTotalAuctions + 500);
  auto stale = replicas.Route(bounded);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kUnavailable);
  bounded.max_lag_seq = 500;
  EXPECT_TRUE(replicas.Route(bounded).ok());
  leader_seq.store(kTotalAuctions);

  // Restart = kill + rebuild through the factory; the replacement catches
  // back up and serves read-your-writes again.
  ASSERT_TRUE(replicas.RestartFollower(0).ok());
  ASSERT_TRUE(
      replicas.EstimatePrices(at_least, gen.Next(), &prices, &applied_at).ok());
  EXPECT_GE(applied_at, static_cast<uint64_t>(kTotalAuctions));

  replicas.Stop();
}

TEST(ReadReplicaSetTest, BoundedStalenessNeedsLeaderSeq) {
  const LeaderArtifacts leader = RunLeader("replicas_no_leader_seq");
  ReadReplicaSetConfig config;
  config.num_followers = 1;
  ReadReplicaSet replicas(config, [&](int) {
    return MakeFollower(MakeFollowerConfig(leader, /*num_shards=*/1));
  });
  ASSERT_TRUE(replicas.Start().ok());
  ReadOptions bounded;
  bounded.consistency = ReadConsistency::kBoundedStaleness;
  auto routed = replicas.Route(bounded);
  ASSERT_FALSE(routed.ok());
  EXPECT_EQ(routed.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Leader-side integration: settled_seq token + durability gauges
// ---------------------------------------------------------------------------

TEST(LeaderIntegrationTest, SettledSeqTokenAndDurabilityGauges) {
  const std::string log_path = FreshPath("leader_gauges_log");
  const std::string ckpt_path = FreshPath("leader_gauges_ckpt");

  ServerConfig config;
  config.engine = ReplicaEngineConfig(2);
  config.durability.log_path = log_path;
  config.durability.checkpoint_path = ckpt_path;
  config.durability.writer.sync = LogSyncMode::kBuffered;
  config.durability.writer.group_records = 8;

  Workload workload = MakePaperWorkload(SmallConfig(kWorkloadSeed));
  auto strategies = RoiStrategies(workload);
  AuctionServer server(config, std::move(workload), std::move(strategies));
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.settled_seq(), 0u);

  QueryGenerator gen(SmallConfig(kWorkloadSeed).num_keywords, kEngineSeed);
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(server.Submit(gen.Next()), QueuePushResult::kAccepted);
  }
  server.Stop();

  // The read-your-writes token equals the engine's settled count after the
  // drain — this is the value clients pass as ReadOptions::min_seq.
  EXPECT_EQ(server.settled_seq(), 30u);
  EXPECT_EQ(server.settled_seq(),
            static_cast<uint64_t>(server.engine().auctions_run()));

  // Satellite 2: PR 6 durability telemetry is visible in the registry.
  const MetricsSnapshot snapshot = server.metrics().Snapshot();
  bool saw_age = false, saw_mode = false, saw_group = false,
       saw_recovered = false, saw_truncated = false;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name == "durability_checkpoint_age") saw_age = true;
    if (sample.name == "durability_sync_mode") {
      saw_mode = true;
      EXPECT_EQ(sample.value, 0.0);  // kBuffered
    }
    if (sample.name == "durability_group_records") {
      saw_group = true;
      EXPECT_EQ(sample.value, 8.0);
    }
    if (sample.name == "recovery_recovered_seq") saw_recovered = true;
    if (sample.name == "recovery_tail_truncated") saw_truncated = true;
  }
  EXPECT_TRUE(saw_age);
  EXPECT_TRUE(saw_mode);
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(saw_recovered);
  EXPECT_TRUE(saw_truncated);
}

/// End-to-end: a serving leader with followers tailing its live log — the
/// deployment shape docs/ARCHITECTURE.md §5 describes. Submits in waves,
/// uses the settled_seq token for read-your-writes, and pins the follower
/// snapshot bitwise against the leader engine after the drain.
TEST(LeaderIntegrationTest, ServerPlusFollowersEndToEnd) {
  const std::string log_path = FreshPath("leader_e2e_log");

  ServerConfig config;
  config.engine = ReplicaEngineConfig(2);
  config.durability.log_path = log_path;
  config.durability.writer.sync = LogSyncMode::kBuffered;
  config.durability.writer.group_records = 4;

  Workload workload = MakePaperWorkload(SmallConfig(kWorkloadSeed));
  auto strategies = RoiStrategies(workload);
  AuctionServer server(config, std::move(workload), std::move(strategies));
  ASSERT_TRUE(server.Start().ok());

  ReadReplicaSetConfig replica_config;
  replica_config.num_followers = 2;
  replica_config.leader_seq = [&server] { return server.settled_seq(); };
  ReadReplicaSet replicas(replica_config, [&](int i) {
    FollowerConfig follower;
    follower.engine = ReplicaEngineConfig(i + 1);
    follower.log_path = log_path;
    follower.leader_seq = [&server] { return server.settled_seq(); };
    Workload w = MakePaperWorkload(SmallConfig(kWorkloadSeed));
    auto s = RoiStrategies(w);
    return std::make_unique<FollowerEngine>(follower, std::move(w),
                                            std::move(s));
  });
  ASSERT_TRUE(replicas.Start().ok());

  QueryGenerator gen(SmallConfig(kWorkloadSeed).num_keywords, kEngineSeed);
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(server.Submit(gen.Next()), QueuePushResult::kAccepted);
    }
    // Probe mid-stream: any-consistency reads must succeed while the
    // leader is still settling (answers are just stale).
    ShardedAuctionEngine::PlannedAuction plan;
    ASSERT_TRUE(replicas.WhatIf(ReadOptions{}, gen.Next(), &plan).ok());
  }
  server.Stop();  // drains + flushes the log

  const uint64_t token = server.settled_seq();
  EXPECT_EQ(token, 60u);
  ReadOptions read_your_writes;
  read_your_writes.consistency = ReadConsistency::kAtLeastSeq;
  read_your_writes.min_seq = token;
  read_your_writes.wait_timeout = milliseconds(10000);
  for (int f = 0; f < 2; ++f) {
    SSA_CHECK(replicas.follower(f)->WaitForSeq(token, milliseconds(10000)));
    std::vector<AdvertiserAccount> accounts;
    uint64_t applied_at = 0;
    ASSERT_TRUE(
        replicas.follower(f)->AccountsSnapshot(&accounts, &applied_at).ok());
    EXPECT_GE(applied_at, token);
    ExpectAccountsBitwiseEq(accounts, server.engine().accounts());
  }
  AdvertiserAccount account;
  ASSERT_TRUE(
      replicas.AccountSnapshot(read_your_writes, 0, &account, nullptr).ok());
  EXPECT_EQ(account.amount_spent, server.engine().accounts()[0].amount_spent);
  replicas.Stop();
}

}  // namespace
}  // namespace ssa
