#include <gtest/gtest.h>

#include "lp/assignment_lp.h"
#include "lp/simplex.h"
#include "matching/brute_force.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssa {
namespace {

TEST(SimplexTest, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at (2,6).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {3, 5};
  lp.AddRow({{0, 1.0}}, 4);
  lp.AddRow({{1, 2.0}}, 12);
  lp.AddRow({{0, 3.0}, {1, 2.0}}, 18);
  auto sol = SolveLpMax(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 36.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 6.0, 1e-9);
}

TEST(SimplexTest, AllSlackOptimumWhenObjectiveNegative) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1, -2};
  lp.AddRow({{0, 1.0}, {1, 1.0}}, 10);
  auto sol = SolveLpMax(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 0.0, 1e-12);
  EXPECT_NEAR(sol->x[0], 0.0, 1e-12);
  EXPECT_NEAR(sol->x[1], 0.0, 1e-12);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.AddRow({{0, 1.0}, {1, -1.0}}, 1);  // x - y <= 1: y free to grow
  auto sol = SolveLpMax(lp);
  ASSERT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Redundant constraints meeting at the same vertex (degeneracy).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.AddRow({{0, 1.0}}, 1);
  lp.AddRow({{0, 1.0}, {1, 1.0}}, 2);
  lp.AddRow({{0, 2.0}, {1, 2.0}}, 4);  // duplicate of the previous, scaled
  lp.AddRow({{1, 1.0}}, 1);
  auto sol = SolveLpMax(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 2.0, 1e-9);
}

TEST(SimplexTest, EqualityThroughPairedRowsNotNeeded) {
  // max x s.t. x <= 7 (single var sanity).
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.AddRow({{0, 1.0}}, 7);
  auto sol = SolveLpMax(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 7.0, 1e-9);
}

TEST(AssignmentLpTest, BuildHasTwoNonzerosPerColumn) {
  const std::vector<double> w = {1, 2, 3, 4, 5, 6};
  LpProblem lp = BuildAssignmentLp(w, 3, 2);
  EXPECT_EQ(lp.num_vars, 6);
  EXPECT_EQ(lp.rows.size(), 5u);  // 3 advertisers + 2 slots
  std::vector<int> appearances(6, 0);
  for (const auto& row : lp.rows) {
    for (const auto& [var, coef] : row.coefficients) {
      EXPECT_DOUBLE_EQ(coef, 1.0);
      ++appearances[var];
    }
  }
  for (int a : appearances) EXPECT_EQ(a, 2);
}

TEST(AssignmentLpTest, MatchesPaperFigure9) {
  const std::vector<double> w = {9, 5, 8, 7, 7, 6, 7, 4};
  auto alloc = SolveAssignmentLp(w, 4, 2);
  ASSERT_TRUE(alloc.ok());
  EXPECT_NEAR(alloc->total_weight, 16.0, 1e-9);
}

// Chvátal integrality in practice: the simplex optimum of the assignment LP
// is integral on random instances, and matches the exhaustive optimum.
class AssignmentLpRandom : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentLpRandom, IntegralAndOptimal) {
  Rng rng(500 + GetParam());
  const int n = 3 + GetParam() % 5;
  const int k = 2 + GetParam() % 3;
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> w =
        testing_util::RandomWeights(n, k, rng, -3.0, 10.0);
    auto lp = SolveAssignmentLp(w, n, k);
    ASSERT_TRUE(lp.ok()) << lp.status().ToString();
    const Allocation oracle = BruteForceMatching(w, n, k);
    EXPECT_NEAR(lp->total_weight, oracle.total_weight, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentLpRandom, ::testing::Range(0, 8));

}  // namespace
}  // namespace ssa
