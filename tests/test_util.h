#ifndef SSA_TESTS_TEST_UTIL_H_
#define SSA_TESTS_TEST_UTIL_H_

#include <vector>

#include "core/expected_revenue.h"
#include "util/rng.h"

namespace ssa {
namespace testing_util {

/// Random marginal-weight matrix (advertiser-major), values in [lo, hi].
inline std::vector<double> RandomWeights(int n, int k, Rng& rng,
                                         double lo = 0.0, double hi = 10.0) {
  std::vector<double> w(static_cast<size_t>(n) * k);
  for (double& x : w) x = rng.Uniform(lo, hi);
  return w;
}

/// Random revenue matrix with assigned entries in [0, hi] and unassigned
/// baselines in [0, base_hi] (so marginal weights can be negative).
inline RevenueMatrix RandomRevenueMatrix(int n, int k, Rng& rng,
                                         double hi = 10.0,
                                         double base_hi = 0.0) {
  RevenueMatrix m(n, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) m.Set(i, j, rng.Uniform(0.0, hi));
    if (base_hi > 0.0) m.SetUnassigned(i, rng.Uniform(0.0, base_hi));
  }
  return m;
}

}  // namespace testing_util
}  // namespace ssa

#endif  // SSA_TESTS_TEST_UTIL_H_
