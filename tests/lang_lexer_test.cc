#include <gtest/gtest.h>

#include "lang/lexer.h"

namespace ssa {
namespace lang {
namespace {

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("create TRIGGER Update selECT");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // 4 + end
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "CREATE");
  EXPECT_EQ((*tokens)[1].text, "TRIGGER");
  EXPECT_EQ((*tokens)[2].text, "UPDATE");
  EXPECT_EQ((*tokens)[3].text, "SELECT");
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Tokenize("amtSpent Keywords K_1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "amtSpent");
  EXPECT_EQ((*tokens)[1].text, "Keywords");
  EXPECT_EQ((*tokens)[2].text, "K_1");
}

TEST(LexerTest, NumbersAndOperators) {
  auto tokens = Tokenize("bid = bid + 1.5 * 2 / x - 3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kPlus);
  EXPECT_DOUBLE_EQ((*tokens)[4].number, 1.5);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kStar);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kSlash);
  EXPECT_EQ((*tokens)[9].kind, TokenKind::kMinus);
}

TEST(LexerTest, Comparisons) {
  auto tokens = Tokenize("< <= > >= <> =");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kEq);
}

TEST(LexerTest, StringsAndComments) {
  auto tokens = Tokenize("'Click & Slot1' -- a comment\n42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "Click & Slot1");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(LexerTest, QualifiedNames) {
  auto tokens = Tokenize("K.roi");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "K");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[2].text, "roi");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("bid @ 3").ok());
}

TEST(LexerTest, TracksLines) {
  auto tokens = Tokenize("a\nb\n\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 4);
}

}  // namespace
}  // namespace lang
}  // namespace ssa
