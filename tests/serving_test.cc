// AuctionServer contract tests. The load-bearing one is deterministic
// replay: a fixed query sequence served through the async subsystem — any
// batch size, any shard count, any pool, either queue implementation — must
// settle bitwise-identically to the serial AuctionEngine loop. Batching and
// queuing may only change *when* work happens, never *what* it computes.

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "auction/auction_engine.h"
#include "serving/auction_server.h"
#include "strategy/roi_strategy.h"
#include "util/thread_pool.h"

namespace ssa {
namespace {

using std::chrono::microseconds;

std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

WorkloadConfig SmallConfig(uint64_t seed = 1) {
  WorkloadConfig config;
  config.num_advertisers = 40;
  config.num_slots = 5;
  config.num_keywords = 4;
  config.seed = seed;
  return config;
}

/// The fixed arrival sequence both sides consume: what QueryGenerator would
/// produce inside the engines, materialized up front.
std::vector<Query> MakeQuerySequence(int count, int num_keywords,
                                     uint64_t seed) {
  QueryGenerator gen(num_keywords, seed);
  std::vector<Query> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) queries.push_back(gen.Next());
  return queries;
}

/// Bitwise comparison of two auction outcomes (same fields
/// sharded_engine_test pins).
void ExpectOutcomeBitwiseEq(const AuctionOutcome& a, const AuctionOutcome& b) {
  ASSERT_EQ(a.query.keyword, b.query.keyword);
  ASSERT_EQ(a.query.time, b.query.time);
  ASSERT_EQ(a.wd.allocation.slot_to_advertiser,
            b.wd.allocation.slot_to_advertiser);
  ASSERT_EQ(a.wd.matching_weight, b.wd.matching_weight);
  ASSERT_EQ(a.wd.expected_revenue, b.wd.expected_revenue);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t e = 0; e < a.events.size(); ++e) {
    ASSERT_EQ(a.events[e].advertiser, b.events[e].advertiser);
    ASSERT_EQ(a.events[e].slot, b.events[e].slot);
    ASSERT_EQ(a.events[e].clicked, b.events[e].clicked);
    ASSERT_EQ(a.events[e].purchased, b.events[e].purchased);
    ASSERT_EQ(a.events[e].charged, b.events[e].charged);  // exact doubles
  }
  ASSERT_EQ(a.revenue_charged, b.revenue_charged);
}

void ExpectAccountsBitwiseEq(const std::vector<AdvertiserAccount>& a,
                             const std::vector<AdvertiserAccount>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].amount_spent, b[i].amount_spent);
    ASSERT_EQ(a[i].spent_per_keyword, b[i].spent_per_keyword);
    ASSERT_EQ(a[i].value_gained, b[i].value_gained);
  }
}

/// Serves `queries` through a server built from `config`, collecting every
/// settled outcome in completion order.
std::vector<AuctionOutcome> ServeAll(const ServerConfig& config,
                                     uint64_t workload_seed,
                                     const std::vector<Query>& queries,
                                     std::vector<AdvertiserAccount>* accounts,
                                     Money* total_revenue) {
  Workload workload = MakePaperWorkload(SmallConfig(workload_seed));
  auto strategies = RoiStrategies(workload);
  AuctionServer server(config, std::move(workload), std::move(strategies));
  std::vector<AuctionOutcome> outcomes;  // written only by the executor
  server.set_on_complete(
      [&outcomes](const AuctionOutcome& out) { outcomes.push_back(out); });
  server.Start();
  for (const Query& q : queries) {
    EXPECT_EQ(server.Submit(q), QueuePushResult::kAccepted);
  }
  server.Stop();
  *accounts = server.engine().accounts();
  *total_revenue = server.engine().total_revenue();
  return outcomes;
}

struct ReplayParam {
  int max_batch = 1;
  int num_shards = 1;
  int pool_threads = 0;  // 0 = no pool
  QueueImpl queue_impl = QueueImpl::kLocking;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  int num_plan_lanes = 0;  // 0 = in-thread planning
  int64_t rebalance_every = 0;  // 0 = epoch-boundary rebalancing off
  bool full_tracing = false;  // trace every query (sample_every = 1)
};

void RunReplayEquivalence(const ReplayParam& param) {
  const uint64_t workload_seed = 11;
  const uint64_t engine_seed = 13;
  const int num_queries = 120;

  // Serial oracle: the plain AuctionEngine fed the same arrival sequence.
  Workload w = MakePaperWorkload(SmallConfig(workload_seed));
  const std::vector<Query> queries =
      MakeQuerySequence(num_queries, w.config.num_keywords, engine_seed);
  EngineConfig engine_config;
  engine_config.seed = engine_seed;
  AuctionEngine serial(engine_config, w, RoiStrategies(w));
  std::vector<AuctionOutcome> expected;
  for (const Query& q : queries) expected.push_back(serial.RunAuctionOn(q));

  std::unique_ptr<ThreadPool> pool;
  if (param.pool_threads > 0) {
    pool = std::make_unique<ThreadPool>(param.pool_threads);
  }
  ServerConfig config;
  config.engine.engine = engine_config;
  config.engine.num_shards = param.num_shards;
  config.engine.pool = pool.get();
  config.queue_capacity = 256;
  config.backpressure = param.backpressure;
  config.queue_impl = param.queue_impl;
  config.max_batch_size = param.max_batch;
  config.batch_deadline = microseconds(100);
  config.mode = ServingMode::kDeterministicReplay;
  config.num_plan_lanes = param.num_plan_lanes;
  if (param.full_tracing) config.obs.trace.sample_every = 1;
  config.rebalance.every = param.rebalance_every;
  // Move boundaries on any measured imbalance: maximal churn, so the
  // equivalence check exercises as many repartitions as possible.
  config.rebalance.min_imbalance = 1.0;

  std::vector<AdvertiserAccount> accounts;
  Money total_revenue = 0;
  const std::vector<AuctionOutcome> got =
      ServeAll(config, workload_seed, queries, &accounts, &total_revenue);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectOutcomeBitwiseEq(expected[i], got[i]);
  }
  ExpectAccountsBitwiseEq(serial.accounts(), accounts);
  ASSERT_EQ(serial.total_revenue(), total_revenue);
}

TEST(ServingReplayTest, BatchSizeOneSingleShard) {
  RunReplayEquivalence({/*max_batch=*/1, /*num_shards=*/1});
}

TEST(ServingReplayTest, MicroBatchesSingleShard) {
  RunReplayEquivalence({/*max_batch=*/8, /*num_shards=*/1});
}

TEST(ServingReplayTest, MicroBatchesShardedOnPool) {
  RunReplayEquivalence(
      {/*max_batch=*/16, /*num_shards=*/3, /*pool_threads=*/3});
}

TEST(ServingReplayTest, LargeBatchManyShardsTreeMerge) {
  // 8 shards crosses kTreeMergeMinShards: the coordinator merge goes
  // through the parallel_topk tree network and must stay bitwise.
  RunReplayEquivalence(
      {/*max_batch=*/64, /*num_shards=*/8, /*pool_threads=*/4});
}

TEST(ServingReplayTest, LockFreeQueueReplay) {
  ReplayParam param;
  param.max_batch = 8;
  param.num_shards = 2;
  param.pool_threads = 2;
  param.queue_impl = QueueImpl::kLockFree;
  param.backpressure = BackpressurePolicy::kReject;  // ring is reject-only
  RunReplayEquivalence(param);
}

TEST(ServingLaneReplayTest, MatrixMatchesSerialEngineBitwise) {
  // The lane-count half of the determinism contract: replaying through E
  // planning lanes — every lane with its own caches, heaps, and matrix
  // arena — must reproduce the serial engine loop bitwise, for every
  // E x shard-count x queue-implementation combination. Per-lane cache
  // divergence (different lanes see different slots) may only move time,
  // never values.
  for (int lanes : {1, 2, 4, 8}) {
    for (int shards : {1, 4}) {
      for (QueueImpl queue : {QueueImpl::kLocking, QueueImpl::kLockFree}) {
        SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                     " shards=" + std::to_string(shards) + " queue=" +
                     (queue == QueueImpl::kLocking ? "locking" : "lockfree"));
        ReplayParam param;
        param.max_batch = 8;
        param.num_shards = shards;
        param.queue_impl = queue;
        param.backpressure = queue == QueueImpl::kLockFree
                                 ? BackpressurePolicy::kReject
                                 : BackpressurePolicy::kBlock;
        param.num_plan_lanes = lanes;
        RunReplayEquivalence(param);
      }
    }
  }
}

TEST(ServingLaneReplayTest, LanesComposeWithCapturePoolAndTreeMerge) {
  // Lanes on top of everything else at once: the capture fans out across 8
  // shards on a pool, the lane-side merge takes the tree path (8 >=
  // kTreeMergeMinShards), and 4 lanes race over the plans.
  ReplayParam param;
  param.max_batch = 32;
  param.num_shards = 8;
  param.pool_threads = 3;
  param.num_plan_lanes = 4;
  RunReplayEquivalence(param);
}

TEST(ServingRebalanceTest, ReplayMatrixStaysBitwiseWithRebalancingEnabled) {
  // The serving half of the rebalancing contract: with epoch-boundary
  // rebalancing churning the shard layout mid-stream (every 8 auctions, any
  // imbalance), deterministic replay must stay bitwise-equal to the serial
  // engine — across lane counts and both queue implementations. Rebalancing
  // may move work between shards, never values.
  for (int lanes : {0, 2, 4}) {
    for (QueueImpl queue : {QueueImpl::kLocking, QueueImpl::kLockFree}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes) + " queue=" +
                   (queue == QueueImpl::kLocking ? "locking" : "lockfree"));
      ReplayParam param;
      param.max_batch = 8;
      param.num_shards = 4;
      param.queue_impl = queue;
      param.backpressure = queue == QueueImpl::kLockFree
                               ? BackpressurePolicy::kReject
                               : BackpressurePolicy::kBlock;
      param.num_plan_lanes = lanes;
      param.rebalance_every = 8;
      RunReplayEquivalence(param);
    }
  }
}

TEST(ServingObservabilityTest, ReplayStaysBitwiseUnderFullTracing) {
  // The observability half of the determinism contract: with every query
  // traced (sample_every = 1) and metrics on, replay must still reproduce
  // the serial engine bitwise across lane and shard counts. Instrumentation
  // reads clocks and writes side state; it must never move an auction value.
  for (int lanes : {1, 4}) {
    for (int shards : {1, 4}) {
      SCOPED_TRACE("lanes=" + std::to_string(lanes) +
                   " shards=" + std::to_string(shards));
      ReplayParam param;
      param.max_batch = 8;
      param.num_shards = shards;
      param.num_plan_lanes = lanes;
      param.full_tracing = true;
      RunReplayEquivalence(param);
    }
  }
}

TEST(ServingObservabilityTest, MetricsAndTraceExposePipelineSignals) {
  // Acceptance check for the pipeline signals ROADMAP item 2 asks for: the
  // per-lane merge-barrier wait and the per-shard capture/plan slices must
  // be visible in the Prometheus snapshot and in the Perfetto trace.
  const uint64_t workload_seed = 41;
  Workload w = MakePaperWorkload(SmallConfig(workload_seed));
  const std::vector<Query> queries =
      MakeQuerySequence(80, w.config.num_keywords, 43);
  ServerConfig config;
  config.engine.engine.seed = 43;
  config.engine.num_shards = 2;
  config.max_batch_size = 8;
  config.num_plan_lanes = 2;
  config.mode = ServingMode::kDeterministicReplay;
  config.obs.trace.sample_every = 1;
  auto strategies = RoiStrategies(w);
  AuctionServer server(config, std::move(w), std::move(strategies));
  server.Start();
  for (const Query& q : queries) {
    ASSERT_EQ(server.Submit(q), QueuePushResult::kAccepted);
  }
  server.Stop();

  // Prometheus side: stage histograms, per-lane barrier waits, per-shard
  // engine gauges, admission counters.
  const std::string prom =
      ExportPrometheus(server.metrics().Snapshot(), &server.metrics());
  EXPECT_NE(prom.find("serving_accepted_total 80"), std::string::npos);
  EXPECT_NE(prom.find("serving_completed_total 80"), std::string::npos);
  EXPECT_NE(prom.find("serving_barrier_wait_us_count{lane=\"0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("serving_barrier_wait_us_count{lane=\"1\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("serving_queue_wait_us_count"), std::string::npos);
  EXPECT_NE(prom.find("engine_shard_capture_ns{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("trace_spans_recorded_total"), std::string::npos);

  // Trace side: every pipeline stage appears, including the per-shard
  // capture/plan slices and the per-slot barrier wait.
  const std::vector<TraceEvent> events = server.DrainTrace();
  ASSERT_FALSE(events.empty());
  std::set<TraceStage> stages;
  std::set<int32_t> plan_tracks;
  for (const TraceEvent& e : events) {
    stages.insert(e.stage);
    if (e.stage == TraceStage::kPlan) plan_tracks.insert(e.track);
  }
  for (TraceStage want :
       {TraceStage::kQuery, TraceStage::kQueueWait, TraceStage::kCapture,
        TraceStage::kPlan, TraceStage::kBarrierWait, TraceStage::kSettle,
        TraceStage::kBatch, TraceStage::kShardCapture,
        TraceStage::kShardPlan}) {
    EXPECT_TRUE(stages.count(want)) << TraceStageName(want);
  }
  // kPlan spans land on the lane tracks (1 + e), not the executor track.
  EXPECT_TRUE(plan_tracks.count(1));
  EXPECT_TRUE(plan_tracks.count(2));
  const std::string chrome = Tracer::ExportChromeTrace(events);
  EXPECT_NE(chrome.find("\"barrier_wait\""), std::string::npos);
  EXPECT_NE(chrome.find("\"shard_plan\""), std::string::npos);
  EXPECT_NE(chrome.find("shard 1 capture"), std::string::npos);
}

TEST(ServingRebalanceTest, RebalanceKeepsValidPartitionAndFeedsCostModel) {
  Workload w = MakePaperWorkload(SmallConfig(113));
  const int num_queries = 100;
  const std::vector<Query> queries =
      MakeQuerySequence(num_queries, w.config.num_keywords, 127);
  ServerConfig config;
  config.engine.engine.seed = 127;
  config.engine.num_shards = 4;
  config.max_batch_size = 4;
  config.rebalance.every = 4;
  config.rebalance.min_imbalance = 1.0;
  AuctionServer server(config, std::move(w), [] {
    Workload tmp = MakePaperWorkload(SmallConfig(113));
    return RoiStrategies(tmp);
  }());
  server.Start();
  for (const Query& q : queries) {
    ASSERT_EQ(server.Submit(q), QueuePushResult::kAccepted);
  }
  server.Stop();
  EXPECT_EQ(server.completed(), num_queries);
  // Whatever the rebalancer did, the layout must still be a contiguous
  // cover of the population with the configured shard count.
  const auto& ranges = server.engine().shard_ranges();
  ASSERT_EQ(ranges.size(), 4u);
  AdvertiserId next = 0;
  for (const ShardRange& range : ranges) {
    EXPECT_EQ(range.begin, next);
    EXPECT_LT(range.begin, range.end);
    next = range.end;
  }
  EXPECT_EQ(next, 40);
  // The cost model saw every served auction, and the rebalance counter
  // never exceeds the number of due checks.
  EXPECT_EQ(server.engine().cost_model().auctions_sampled(), num_queries);
  EXPECT_LE(server.rebalances(), num_queries / 4);
  EXPECT_GE(server.rebalances(), 0);
}

/// Serves `queries` with every submission admitted *before* Start(): batch
/// composition becomes deterministic (the executor always pops full
/// max_batch_size batches from a pre-filled queue), which is what lets two
/// batched-settlement runs be compared bitwise.
std::vector<AuctionOutcome> ServePreloaded(
    const ServerConfig& config, uint64_t workload_seed,
    const std::vector<Query>& queries,
    std::vector<AdvertiserAccount>* accounts, Money* total_revenue) {
  Workload workload = MakePaperWorkload(SmallConfig(workload_seed));
  auto strategies = RoiStrategies(workload);
  AuctionServer server(config, std::move(workload), std::move(strategies));
  std::vector<AuctionOutcome> outcomes;
  server.set_on_complete(
      [&outcomes](const AuctionOutcome& out) { outcomes.push_back(out); });
  for (const Query& q : queries) {
    EXPECT_EQ(server.Submit(q), QueuePushResult::kAccepted);
  }
  server.Start();
  server.Stop();
  *accounts = server.engine().accounts();
  *total_revenue = server.engine().total_revenue();
  return outcomes;
}

TEST(ServingLaneBatchedTest, LanesMatchInThreadBatchedPathBitwise) {
  // kBatchedSettlement is where lanes overlap settlement with planning —
  // but with identical batch composition the *values* must not move: the
  // lane pipeline and the in-thread batched loop both plan every slot
  // against batch-start state and settle in arrival order. Preloading the
  // queue pins the batch boundaries, so E=0 vs E=4 (and E=4 vs itself)
  // compare bitwise.
  const uint64_t workload_seed = 89;
  Workload w = MakePaperWorkload(SmallConfig(workload_seed));
  const std::vector<Query> queries =
      MakeQuerySequence(96, w.config.num_keywords, 97);

  ServerConfig config;
  config.engine.engine.seed = 97;
  config.queue_capacity = 128;
  config.max_batch_size = 16;
  config.mode = ServingMode::kBatchedSettlement;

  std::vector<AdvertiserAccount> accounts_base, accounts_lanes, accounts_rerun;
  Money revenue_base = 0, revenue_lanes = 0, revenue_rerun = 0;
  const auto base = ServePreloaded(config, workload_seed, queries,
                                   &accounts_base, &revenue_base);
  config.num_plan_lanes = 4;
  const auto lanes = ServePreloaded(config, workload_seed, queries,
                                    &accounts_lanes, &revenue_lanes);
  const auto rerun = ServePreloaded(config, workload_seed, queries,
                                    &accounts_rerun, &revenue_rerun);

  ASSERT_EQ(base.size(), queries.size());
  ASSERT_EQ(lanes.size(), queries.size());
  for (size_t i = 0; i < base.size(); ++i) {
    ExpectOutcomeBitwiseEq(base[i], lanes[i]);
    ExpectOutcomeBitwiseEq(lanes[i], rerun[i]);
  }
  ExpectAccountsBitwiseEq(accounts_base, accounts_lanes);
  ExpectAccountsBitwiseEq(accounts_lanes, accounts_rerun);
  ASSERT_EQ(revenue_base, revenue_lanes);
  ASSERT_EQ(revenue_lanes, revenue_rerun);
}

TEST(ServingBatchedSettlementTest, EqualsReplayAtBatchSizeOne) {
  // With one query per batch there is nothing to defer: batched settlement
  // degenerates to the replay path and must match the serial loop bitwise.
  const uint64_t workload_seed = 17;
  const uint64_t engine_seed = 19;
  Workload w = MakePaperWorkload(SmallConfig(workload_seed));
  const std::vector<Query> queries =
      MakeQuerySequence(80, w.config.num_keywords, engine_seed);
  EngineConfig engine_config;
  engine_config.seed = engine_seed;
  AuctionEngine serial(engine_config, w, RoiStrategies(w));
  std::vector<AuctionOutcome> expected;
  for (const Query& q : queries) expected.push_back(serial.RunAuctionOn(q));

  ServerConfig config;
  config.engine.engine = engine_config;
  config.max_batch_size = 1;
  config.mode = ServingMode::kBatchedSettlement;
  std::vector<AdvertiserAccount> accounts;
  Money total_revenue = 0;
  const std::vector<AuctionOutcome> got =
      ServeAll(config, workload_seed, queries, &accounts, &total_revenue);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectOutcomeBitwiseEq(expected[i], got[i]);
  }
  ExpectAccountsBitwiseEq(serial.accounts(), accounts);
}

TEST(ServingBatchedSettlementTest, DeterministicGivenArrivalOrder) {
  // Larger batches defer settlement (bids see batch-start accounts), which
  // may diverge from the serial loop — but two identical runs must agree
  // with each other exactly, and conservation invariants must hold.
  const uint64_t workload_seed = 23;
  Workload w = MakePaperWorkload(SmallConfig(workload_seed));
  const std::vector<Query> queries =
      MakeQuerySequence(100, w.config.num_keywords, 29);

  ServerConfig config;
  config.engine.engine.seed = 29;
  config.max_batch_size = 16;
  // A deadline this long guarantees identical batch boundaries are not
  // required for determinism: settlement order is arrival order regardless.
  config.batch_deadline = microseconds(500);
  config.mode = ServingMode::kBatchedSettlement;

  std::vector<AdvertiserAccount> accounts_a, accounts_b;
  Money revenue_a = 0, revenue_b = 0;
  const auto run_a =
      ServeAll(config, workload_seed, queries, &accounts_a, &revenue_a);
  const auto run_b =
      ServeAll(config, workload_seed, queries, &accounts_b, &revenue_b);
  ASSERT_EQ(run_a.size(), queries.size());
  ASSERT_EQ(run_b.size(), queries.size());
  for (size_t i = 0; i < run_a.size(); ++i) {
    // Settlement order is arrival order: outcome i is query i.
    ASSERT_EQ(run_a[i].query.time, queries[i].time);
    ExpectOutcomeBitwiseEq(run_a[i], run_b[i]);
  }
  ExpectAccountsBitwiseEq(accounts_a, accounts_b);
  ASSERT_EQ(revenue_a, revenue_b);
  // Conservation: what advertisers spent is what the provider charged.
  Money spent = 0;
  for (const auto& account : accounts_a) spent += account.amount_spent;
  EXPECT_NEAR(spent, revenue_a, 1e-9);
}

TEST(ServingBackpressureTest, RejectShedsDeterministicallyBeforeStart) {
  // Submitting before Start() makes admission deterministic: with a
  // capacity-C reject queue, exactly C of C+R submissions are admitted.
  Workload w = MakePaperWorkload(SmallConfig(31));
  const std::vector<Query> queries =
      MakeQuerySequence(12, w.config.num_keywords, 37);
  ServerConfig config;
  config.engine.engine.seed = 37;
  config.queue_capacity = 8;
  config.backpressure = BackpressurePolicy::kReject;
  AuctionServer server(config, std::move(w), [] {
    Workload tmp = MakePaperWorkload(SmallConfig(31));
    return RoiStrategies(tmp);
  }());
  int accepted = 0, rejected = 0;
  for (const Query& q : queries) {
    const QueuePushResult r = server.Submit(q);
    (r == QueuePushResult::kAccepted ? accepted : rejected) += 1;
  }
  EXPECT_EQ(accepted, 8);
  EXPECT_EQ(rejected, 4);
  EXPECT_EQ(server.accepted(), 8);
  EXPECT_EQ(server.rejected(), 4);
  server.Start();
  server.Stop();
  EXPECT_EQ(server.completed(), 8);
  EXPECT_EQ(server.engine().auctions_run(), 8);
}

TEST(ServingBackpressureTest, DropOldestKeepsFreshest) {
  Workload w = MakePaperWorkload(SmallConfig(41));
  const std::vector<Query> queries =
      MakeQuerySequence(10, w.config.num_keywords, 43);
  ServerConfig config;
  config.engine.engine.seed = 43;
  config.queue_capacity = 4;
  config.backpressure = BackpressurePolicy::kDropOldest;
  AuctionServer server(config, std::move(w), [] {
    Workload tmp = MakePaperWorkload(SmallConfig(41));
    return RoiStrategies(tmp);
  }());
  std::vector<int64_t> served_times;
  server.set_on_complete([&served_times](const AuctionOutcome& out) {
    served_times.push_back(out.query.time);
  });
  for (const Query& q : queries) {
    const QueuePushResult r = server.Submit(q);
    EXPECT_NE(r, QueuePushResult::kRejected);
  }
  EXPECT_EQ(server.dropped_oldest(), 6);
  server.Start();
  server.Stop();
  // The six oldest were evicted; queries 7..10 (1-based times) survive.
  EXPECT_EQ(served_times, (std::vector<int64_t>{7, 8, 9, 10}));
}

TEST(ServingBackpressureTest, LockFreeRejectCountsDeterministically) {
  Workload w = MakePaperWorkload(SmallConfig(47));
  const std::vector<Query> queries =
      MakeQuerySequence(11, w.config.num_keywords, 53);
  ServerConfig config;
  config.engine.engine.seed = 53;
  config.queue_capacity = 8;  // ring capacity is exact at powers of two
  config.queue_impl = QueueImpl::kLockFree;
  config.backpressure = BackpressurePolicy::kReject;
  AuctionServer server(config, std::move(w), [] {
    Workload tmp = MakePaperWorkload(SmallConfig(47));
    return RoiStrategies(tmp);
  }());
  for (const Query& q : queries) server.Submit(q);
  EXPECT_EQ(server.accepted(), 8);
  EXPECT_EQ(server.rejected(), 3);
  server.Start();
  server.Stop();
  EXPECT_EQ(server.completed(), 8);
}

TEST(ServingTelemetryTest, StageHistogramsCoverEveryServedQuery) {
  Workload w = MakePaperWorkload(SmallConfig(61));
  const int num_queries = 60;
  const std::vector<Query> queries =
      MakeQuerySequence(num_queries, w.config.num_keywords, 67);
  ServerConfig config;
  config.engine.engine.seed = 67;
  config.max_batch_size = 8;
  AuctionServer server(config, std::move(w), [] {
    Workload tmp = MakePaperWorkload(SmallConfig(61));
    return RoiStrategies(tmp);
  }());
  server.Start();
  for (const Query& q : queries) {
    ASSERT_EQ(server.Submit(q), QueuePushResult::kAccepted);
  }
  server.Stop();

  EXPECT_EQ(server.completed(), num_queries);
  EXPECT_EQ(server.queue_wait_us().count(),
            static_cast<uint64_t>(num_queries));
  EXPECT_EQ(server.auction_us().count(), static_cast<uint64_t>(num_queries));
  EXPECT_EQ(server.settlement_us().count(),
            static_cast<uint64_t>(num_queries));
  EXPECT_EQ(server.end_to_end_us().count(),
            static_cast<uint64_t>(num_queries));
  // End-to-end includes the queue wait: its tail cannot undercut it.
  EXPECT_GE(server.end_to_end_us().Percentile(99),
            server.queue_wait_us().Percentile(99) * 15 / 16);
  // Micro-batching must actually batch: fewer batches than queries, at
  // least ceil(queries / max_batch).
  EXPECT_GE(server.batches(), num_queries / 8);
  EXPECT_LE(server.batches(), num_queries);
}

TEST(ServingLifecycleTest, StopIsIdempotentAndSubmitAfterCloseFails) {
  Workload w = MakePaperWorkload(SmallConfig(71));
  ServerConfig config;
  config.engine.engine.seed = 73;
  AuctionServer server(config, std::move(w), [] {
    Workload tmp = MakePaperWorkload(SmallConfig(71));
    return RoiStrategies(tmp);
  }());
  QueryGenerator gen(4, 73);
  server.Start();
  EXPECT_EQ(server.Submit(gen.Next()), QueuePushResult::kAccepted);
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_EQ(server.Submit(gen.Next()), QueuePushResult::kClosed);
  EXPECT_EQ(server.completed(), 1);
}

TEST(ServingLifecycleTest, ConcurrentProducersAllServedUnderBlockPolicy) {
  // The MPMC claim, end to end: 4 producer threads, tiny queue, block
  // policy — every submission must eventually settle exactly once.
  Workload w = MakePaperWorkload(SmallConfig(79));
  ServerConfig config;
  config.engine.engine.seed = 83;
  config.queue_capacity = 4;
  config.max_batch_size = 4;
  AuctionServer server(config, std::move(w), [] {
    Workload tmp = MakePaperWorkload(SmallConfig(79));
    return RoiStrategies(tmp);
  }());
  server.Start();
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 25;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&server, p] {
      QueryGenerator gen(4, 100 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_EQ(server.Submit(gen.Next()), QueuePushResult::kAccepted);
      }
    });
  }
  for (auto& t : producers) t.join();
  server.Stop();
  EXPECT_EQ(server.completed(), kProducers * kPerProducer);
  EXPECT_EQ(server.engine().auctions_run(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace ssa
