#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "core/winner_determination.h"
#include "test_util.h"
#include "util/rng.h"

namespace ssa {
namespace {

RevenueMatrix Figure9Matrix() {
  // Nike(9,5) Adidas(8,7) Reebok(7,6) Sketchers(7,4); zero baselines.
  RevenueMatrix m(4, 2);
  const double values[4][2] = {{9, 5}, {8, 7}, {7, 6}, {7, 4}};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 2; ++j) m.Set(i, j, values[i][j]);
  }
  return m;
}

TEST(WinnerDeterminationTest, MethodNames) {
  EXPECT_EQ(WdMethodName(WdMethod::kLp), "LP");
  EXPECT_EQ(WdMethodName(WdMethod::kHungarian), "H");
  EXPECT_EQ(WdMethodName(WdMethod::kReducedHungarian), "RH");
  EXPECT_EQ(WdMethodName(WdMethod::kBruteForce), "BF");
}

// Figures 9-11: the reduced graph keeps Nike, Adidas, Reebok (the per-slot
// top-2 union) and drops Sketchers; the optimum is unchanged.
TEST(WinnerDeterminationTest, Figure10ReducedGraphCandidates) {
  RevenueMatrix m = Figure9Matrix();
  std::vector<AdvertiserId> candidates = SelectTopPerSlotCandidates(m, 2);
  // Slot 1 top-2: Nike(9), Adidas(8). Slot 2 top-2: Adidas(7), Reebok(6).
  EXPECT_EQ(candidates, (std::vector<AdvertiserId>{0, 1, 2}));
}

TEST(WinnerDeterminationTest, Figure9AllMethodsAgree) {
  RevenueMatrix m = Figure9Matrix();
  for (WdMethod method : {WdMethod::kLp, WdMethod::kHungarian,
                          WdMethod::kReducedHungarian, WdMethod::kBruteForce}) {
    WdResult r = DetermineWinners(m, method);
    EXPECT_DOUBLE_EQ(r.expected_revenue, 16.0) << WdMethodName(method);
    EXPECT_EQ(r.allocation.slot_to_advertiser[0], 0);
    EXPECT_EQ(r.allocation.slot_to_advertiser[1], 1);
  }
}

TEST(WinnerDeterminationTest, UnassignedBaselineAddsConstant) {
  RevenueMatrix m(2, 1);
  m.Set(0, 0, 5);
  m.Set(1, 0, 4);
  m.SetUnassigned(0, 2);  // advertiser 0 pays 2 even when left out
  m.SetUnassigned(1, 0);
  WdResult r = DetermineWinners(m, WdMethod::kReducedHungarian);
  // Marginals: adv0 -> 3, adv1 -> 4: assign adv1; revenue 4 + baseline 2.
  EXPECT_EQ(r.allocation.slot_to_advertiser[0], 1);
  EXPECT_DOUBLE_EQ(r.matching_weight, 4.0);
  EXPECT_DOUBLE_EQ(r.expected_revenue, 6.0);
}

TEST(WinnerDeterminationTest, NegativeMarginalsLeaveSlotsEmpty) {
  RevenueMatrix m(2, 2);
  m.Set(0, 0, 1);
  m.Set(0, 1, 0);
  m.Set(1, 0, 2);
  m.Set(1, 1, 1);
  m.SetUnassigned(0, 5);  // both advertisers prefer staying out
  m.SetUnassigned(1, 9);
  WdResult r = DetermineWinners(m, WdMethod::kReducedHungarian);
  EXPECT_EQ(r.allocation.NumAssigned(), 0);
  EXPECT_DOUBLE_EQ(r.expected_revenue, 14.0);
}

TEST(WinnerDeterminationTest, TopPerSlotRespectsLimit) {
  Rng rng(7);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(100, 5, rng);
  std::vector<AdvertiserId> c1 = SelectTopPerSlotCandidates(m, 1);
  EXPECT_LE(c1.size(), 5u);
  std::vector<AdvertiserId> c5 = SelectTopPerSlotCandidates(m, 5);
  EXPECT_LE(c5.size(), 25u);
  EXPECT_TRUE(std::is_sorted(c5.begin(), c5.end()));
  // Monotone: growing the per-slot budget only adds candidates.
  for (AdvertiserId id : c1) {
    EXPECT_TRUE(std::binary_search(c5.begin(), c5.end(), id));
  }
}

// The paper's exchange argument: matching on the per-slot top-k union is
// exactly optimal. Property-tested against the full Hungarian on random
// instances with nonzero unassigned baselines.
class WdAgreement : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WdAgreement, ReducedEqualsFullAndLp) {
  const auto [n, k] = GetParam();
  Rng rng(99 + 13 * n + k);
  for (int trial = 0; trial < 15; ++trial) {
    RevenueMatrix m = testing_util::RandomRevenueMatrix(n, k, rng, 10.0, 4.0);
    const WdResult rh = DetermineWinners(m, WdMethod::kReducedHungarian);
    const WdResult h = DetermineWinners(m, WdMethod::kHungarian);
    EXPECT_NEAR(rh.expected_revenue, h.expected_revenue, 1e-7);
    if (n <= 12) {
      const WdResult lp = DetermineWinners(m, WdMethod::kLp);
      const WdResult bf = DetermineWinners(m, WdMethod::kBruteForce);
      EXPECT_NEAR(rh.expected_revenue, lp.expected_revenue, 1e-7);
      EXPECT_NEAR(rh.expected_revenue, bf.expected_revenue, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WdAgreement,
                         ::testing::Values(std::make_tuple(5, 3),
                                           std::make_tuple(8, 4),
                                           std::make_tuple(12, 3),
                                           std::make_tuple(60, 5),
                                           std::make_tuple(200, 8),
                                           std::make_tuple(500, 15)));

TEST(WinnerDeterminationTest, SolveOnCandidatesMatchesWhenSupersetGiven) {
  Rng rng(31);
  RevenueMatrix m = testing_util::RandomRevenueMatrix(50, 4, rng);
  std::vector<AdvertiserId> all(50);
  for (int i = 0; i < 50; ++i) all[i] = i;
  const WdResult full = SolveOnCandidates(m, all);
  const WdResult reduced = DetermineWinners(m, WdMethod::kReducedHungarian);
  EXPECT_NEAR(full.expected_revenue, reduced.expected_revenue, 1e-9);
}

}  // namespace
}  // namespace ssa
