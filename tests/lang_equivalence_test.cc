#include <memory>

#include <gtest/gtest.h>

#include "auction/auction_engine.h"
#include "strategy/program_strategy.h"
#include "strategy/roi_strategy.h"

namespace ssa {
namespace {

// The Figure 5 Equalize-ROI program, with two fidelity fixes documented in
// DESIGN.md: the paper's line-11 typo ('<' in the overspending branch) is
// corrected to '>', and the spend-rate tests are written in the multiplied
// form `amtSpent < targetSpendRate * time` so the floating-point comparison
// is bit-identical to the native RoiStrategy (the paper's `amtSpent / time <
// targetSpendRate` is algebraically the same for time > 0).
constexpr const char kEqualizeRoi[] = R"sql(
CREATE TRIGGER bid AFTER INSERT ON Query
{
  IF amtSpent < targetSpendRate * time THEN
    UPDATE Keywords
    SET bid = bid + 1
    WHERE roi =
      ( SELECT MAX( K.roi )
        FROM Keywords K )
      AND relevance > 0
      AND bid < maxbid;
  ELSEIF amtSpent > targetSpendRate * time
  THEN
    UPDATE Keywords
    SET bid = bid - 1
    WHERE roi =
      ( SELECT MIN( K.roi )
        FROM Keywords K )
      AND relevance > 0
      AND bid > 0;
  ENDIF;

  UPDATE Bids
  SET value =
    ( SELECT SUM( K.bid )
      FROM Keywords K
      WHERE K.relevance > 0.7
      AND K.formula = Bids.formula );
}
)sql";

std::vector<ProgramStrategy::KeywordSpec> Specs(const Workload& w) {
  std::vector<ProgramStrategy::KeywordSpec> specs;
  for (size_t kw = 0; kw < w.keyword_formulas.size(); ++kw) {
    specs.push_back({"kw" + std::to_string(kw), w.keyword_formulas[kw]});
  }
  return specs;
}

// Section II-C's program, interpreted, must reproduce the native strategy's
// behavior exactly: same bids, same winners, same charges, over a full
// simulated campaign.
TEST(LangEquivalenceTest, InterpretedFigure5MatchesNativeRoi) {
  WorkloadConfig wc;
  wc.num_advertisers = 25;
  wc.num_slots = 4;
  wc.num_keywords = 3;
  wc.seed = 77;
  EngineConfig ec;
  ec.seed = 78;

  Workload w_native = MakePaperWorkload(wc);
  Workload w_interp = MakePaperWorkload(wc);

  std::vector<std::unique_ptr<BiddingStrategy>> native;
  std::vector<RoiStrategy*> native_raw;
  std::vector<std::unique_ptr<BiddingStrategy>> interpreted;
  std::vector<ProgramStrategy*> interp_raw;
  for (int i = 0; i < wc.num_advertisers; ++i) {
    auto n = std::make_unique<RoiStrategy>(w_native.keyword_formulas);
    native_raw.push_back(n.get());
    native.push_back(std::move(n));
    auto p = ProgramStrategy::Create(kEqualizeRoi, Specs(w_interp));
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    interp_raw.push_back(p->get());
    interpreted.push_back(*std::move(p));
  }

  AuctionEngine eager(ec, std::move(w_native), std::move(native));
  AuctionEngine interp(ec, std::move(w_interp), std::move(interpreted));

  for (int t = 0; t < 600; ++t) {
    const AuctionOutcome on = eager.RunAuction();
    const AuctionOutcome& oi = interp.RunAuction();
    ASSERT_EQ(on.query.keyword, oi.query.keyword);
    ASSERT_EQ(on.wd.allocation.slot_to_advertiser,
              oi.wd.allocation.slot_to_advertiser)
        << "winner divergence at auction " << t;
    ASSERT_DOUBLE_EQ(on.revenue_charged, oi.revenue_charged)
        << "revenue divergence at auction " << t;
    for (int i = 0; i < wc.num_advertisers; ++i) {
      for (int kw = 0; kw < wc.num_keywords; ++kw) {
        ASSERT_DOUBLE_EQ(native_raw[i]->tentative_bids()[kw],
                         interp_raw[i]->TentativeBid(kw))
            << "auction " << t << " advertiser " << i << " keyword " << kw;
      }
    }
  }
}

// Figure 4 / Figure 6 worked example: Keywords table state from the paper
// produces exactly the Figure 6 Bids table.
TEST(LangEquivalenceTest, PaperFigure6WorkedExample) {
  // Keywords (after lines 1-20): boot/Click&Slot1 bid 4 rel 0.8;
  // shoe/Click bid 8 rel 0.2.
  auto formula_boot = Formula::Click() && Formula::Slot(0);
  auto formula_shoe = Formula::Click();
  auto strategy = ProgramStrategy::Create(
      // Only the Bids-update stage: bids are preset via the account below by
      // running the full program against an account crafted so the IF does
      // not fire (exactly on target).
      R"sql(
      CREATE TRIGGER bid AFTER INSERT ON Query
      {
        UPDATE Keywords SET bid = 4 WHERE formula = '(Click & Slot1)';
        UPDATE Keywords SET bid = 8 WHERE formula = 'Click';
        UPDATE Bids
        SET value =
          ( SELECT SUM( K.bid )
            FROM Keywords K
            WHERE K.relevance > 0.7
            AND K.formula = Bids.formula );
      }
      )sql",
      {{"boot", formula_boot}, {"shoe", formula_shoe}});
  ASSERT_TRUE(strategy.ok()) << strategy.status().ToString();

  AdvertiserAccount account;
  account.value_per_click = {5, 6};
  account.max_bid = {5, 6};
  account.value_gained = {0, 0};
  account.spent_per_keyword = {0, 0};
  account.target_spend_rate = 1;

  Query query;
  query.keyword = 0;
  query.time = 1;
  query.relevance = {0.8, 0.2};  // the paper's relevance scores

  BidsTable bids;
  (*strategy)->MakeBids(query, account, &bids);
  // Figure 6: Click & Slot1 -> 4 ("boot" relevant at 0.8), Click -> 0
  // ("shoe" at 0.2 fails the 0.7 cut; SUM over empty set -> 0).
  ASSERT_EQ(bids.size(), 2u);
  EXPECT_TRUE(bids.rows()[0].formula.StructurallyEquals(formula_boot));
  EXPECT_DOUBLE_EQ(bids.rows()[0].value, 4.0);
  EXPECT_TRUE(bids.rows()[1].formula.StructurallyEquals(formula_shoe));
  EXPECT_DOUBLE_EQ(bids.rows()[1].value, 0.0);
}

}  // namespace
}  // namespace ssa
