// ShardedAuctionEngine equivalence: for any shard count K and any pool, the
// sharded engine must reproduce the single-engine auction trajectory
// *bitwise* — allocations, prices, user events, revenue, and account
// balances. The shard phase only re-partitions share-nothing work and the
// top-k merge preserves the exact candidate set, so nothing may drift.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "auction/auction_engine.h"
#include "auction/sharded_engine.h"
#include "strategy/roi_strategy.h"
#include "util/thread_pool.h"

namespace ssa {
namespace {

std::vector<std::unique_ptr<BiddingStrategy>> RoiStrategies(
    const Workload& workload) {
  std::vector<std::unique_ptr<BiddingStrategy>> strategies;
  for (int i = 0; i < workload.config.num_advertisers; ++i) {
    strategies.push_back(
        std::make_unique<RoiStrategy>(workload.keyword_formulas));
  }
  return strategies;
}

WorkloadConfig SmallConfig(uint64_t seed = 1) {
  WorkloadConfig config;
  config.num_advertisers = 40;
  config.num_slots = 5;
  config.num_keywords = 4;
  config.seed = seed;
  return config;
}

/// Runs both engines in lockstep and asserts bitwise-equal trajectories.
void ExpectBitwiseEquivalent(AuctionEngine* single,
                             ShardedAuctionEngine* sharded, int auctions) {
  for (int t = 0; t < auctions; ++t) {
    const AuctionOutcome& a = single->RunAuction();
    const AuctionOutcome& b = sharded->RunAuction();
    ASSERT_EQ(a.query.keyword, b.query.keyword);
    ASSERT_EQ(a.wd.allocation.slot_to_advertiser,
              b.wd.allocation.slot_to_advertiser);
    ASSERT_EQ(a.wd.matching_weight, b.wd.matching_weight);
    ASSERT_EQ(a.wd.expected_revenue, b.wd.expected_revenue);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t e = 0; e < a.events.size(); ++e) {
      ASSERT_EQ(a.events[e].advertiser, b.events[e].advertiser);
      ASSERT_EQ(a.events[e].slot, b.events[e].slot);
      ASSERT_EQ(a.events[e].clicked, b.events[e].clicked);
      ASSERT_EQ(a.events[e].purchased, b.events[e].purchased);
      ASSERT_EQ(a.events[e].charged, b.events[e].charged);  // exact doubles
    }
    ASSERT_EQ(a.revenue_charged, b.revenue_charged);
  }
  ASSERT_EQ(single->total_revenue(), sharded->total_revenue());
  // Account state must have evolved identically (ROI inputs feed future
  // bids, so any divergence here would compound).
  const auto& accounts_a = single->accounts();
  const auto& accounts_b = sharded->accounts();
  ASSERT_EQ(accounts_a.size(), accounts_b.size());
  for (size_t i = 0; i < accounts_a.size(); ++i) {
    ASSERT_EQ(accounts_a[i].amount_spent, accounts_b[i].amount_spent);
    ASSERT_EQ(accounts_a[i].spent_per_keyword, accounts_b[i].spent_per_keyword);
    ASSERT_EQ(accounts_a[i].value_gained, accounts_b[i].value_gained);
  }
}

class ShardedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedEquivalenceTest, MatchesSingleEngineBitwise) {
  const int num_shards = GetParam();
  Workload w1 = MakePaperWorkload(SmallConfig(11));
  Workload w2 = MakePaperWorkload(SmallConfig(11));
  EngineConfig engine_config;
  engine_config.seed = 13;
  ShardedEngineConfig sharded_config;
  sharded_config.engine = engine_config;
  sharded_config.num_shards = num_shards;
  AuctionEngine single(engine_config, w1, RoiStrategies(w1));
  ShardedAuctionEngine sharded(sharded_config, w2, RoiStrategies(w2));
  ASSERT_EQ(sharded.num_shards(), num_shards);
  ExpectBitwiseEquivalent(&single, &sharded, 150);
}

TEST_P(ShardedEquivalenceTest, MatchesSingleEngineBitwiseOnPool) {
  const int num_shards = GetParam();
  Workload w1 = MakePaperWorkload(SmallConfig(23));
  Workload w2 = MakePaperWorkload(SmallConfig(23));
  EngineConfig engine_config;
  engine_config.seed = 29;
  ThreadPool pool(3);
  ShardedEngineConfig sharded_config;
  sharded_config.engine = engine_config;
  sharded_config.num_shards = num_shards;
  sharded_config.pool = &pool;
  AuctionEngine single(engine_config, w1, RoiStrategies(w1));
  ShardedAuctionEngine sharded(sharded_config, w2, RoiStrategies(w2));
  ExpectBitwiseEquivalent(&single, &sharded, 100);
}

// 8 and 12 cross ShardedAuctionEngine::kTreeMergeMinShards: those instances
// run the coordinator merge through the Section III-E parallel_topk tree
// network (12 also exercises the odd-node promotion), and must stay as
// bitwise as the flat re-offer path below the threshold.
INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedEquivalenceTest,
                         ::testing::Values(1, 2, 7, 8, 12));

TEST(ShardedEngineTest, DenseWdMethodsAlsoMatch) {
  // The non-reduced methods skip the top-k merge and run on the full
  // matrix; they must match the single engine too.
  for (const WdMethod method : {WdMethod::kLp, WdMethod::kHungarian}) {
    WorkloadConfig wc = SmallConfig(21);
    wc.num_advertisers = 15;  // keep the LP small
    wc.num_slots = 4;
    Workload w1 = MakePaperWorkload(wc);
    Workload w2 = MakePaperWorkload(wc);
    EngineConfig engine_config;
    engine_config.wd_method = method;
    ShardedEngineConfig sharded_config;
    sharded_config.engine = engine_config;
    sharded_config.num_shards = 3;
    AuctionEngine single(engine_config, w1, RoiStrategies(w1));
    ShardedAuctionEngine sharded(sharded_config, w2, RoiStrategies(w2));
    ExpectBitwiseEquivalent(&single, &sharded, 60);
  }
}

TEST(ShardedEngineTest, VcgPricingMatches) {
  Workload w1 = MakePaperWorkload(SmallConfig(31));
  Workload w2 = MakePaperWorkload(SmallConfig(31));
  EngineConfig engine_config;
  engine_config.pricing = PricingRule::kVcg;
  ShardedEngineConfig sharded_config;
  sharded_config.engine = engine_config;
  sharded_config.num_shards = 2;
  AuctionEngine single(engine_config, w1, RoiStrategies(w1));
  ShardedAuctionEngine sharded(sharded_config, w2, RoiStrategies(w2));
  ExpectBitwiseEquivalent(&single, &sharded, 50);
}

TEST(ShardedEngineTest, PurchaseWorkloadMatchesBitwise) {
  // purchase_given_click > 0 adds a second user-RNG draw per clicked slot;
  // the sharded engine must keep the draw sequence — and thus purchases,
  // value updates, and accounts — bitwise identical, including across the
  // tree-merge shard counts.
  for (const int num_shards : {2, 8}) {
    WorkloadConfig wc = SmallConfig(59);
    wc.purchase_given_click = 0.5;
    Workload w1 = MakePaperWorkload(wc);
    Workload w2 = MakePaperWorkload(wc);
    EngineConfig engine_config;
    engine_config.seed = 61;
    ShardedEngineConfig sharded_config;
    sharded_config.engine = engine_config;
    sharded_config.num_shards = num_shards;
    AuctionEngine single(engine_config, w1, RoiStrategies(w1));
    ShardedAuctionEngine sharded(sharded_config, w2, RoiStrategies(w2));
    ExpectBitwiseEquivalent(&single, &sharded, 120);
    // The purchase path must actually fire for the equivalence to mean
    // anything.
    int purchases = 0;
    for (int t = 0; t < 50; ++t) {
      for (const UserEvent& e : sharded.RunAuction().events) {
        purchases += e.purchased;
      }
    }
    EXPECT_GT(purchases, 0);
  }
}

TEST(ShardedEngineTest, ShardPartitionCoversPopulationOnce) {
  Workload w = MakePaperWorkload(SmallConfig(41));
  ShardedEngineConfig config;
  config.num_shards = 7;
  ShardedAuctionEngine engine(config, w, RoiStrategies(w));
  AdvertiserId next = 0;
  for (int s = 0; s < engine.num_shards(); ++s) {
    const auto stats = engine.shard_stats(s);
    EXPECT_EQ(stats.begin, next);
    EXPECT_LT(stats.begin, stats.end);
    next = stats.end;
  }
  EXPECT_EQ(next, 40);
}

TEST(ShardedEngineTest, PerShardCachesHitOnStableBids) {
  // ROI strategies mostly re-emit unchanged tables; each shard's private
  // cache must absorb its own population's lookups.
  Workload w = MakePaperWorkload(SmallConfig(43));
  ShardedEngineConfig config;
  config.num_shards = 4;
  ShardedAuctionEngine engine(config, w, RoiStrategies(w));
  const int auctions = 30;
  for (int t = 0; t < auctions; ++t) engine.RunAuction();
  EXPECT_EQ(engine.cache_hits() + engine.cache_misses(),
            static_cast<int64_t>(40) * auctions);
  EXPECT_GT(engine.cache_hits(), 0);
  for (int s = 0; s < engine.num_shards(); ++s) {
    const auto stats = engine.shard_stats(s);
    // Every shard compiled at least its own first-auction tables.
    EXPECT_GE(stats.cache_misses, stats.end - stats.begin);
  }
}

TEST(ShardedEngineTest, ArbitraryUnequalPartitionsMatchBitwise) {
  // Determinism may not depend on *where* the boundaries sit: wildly
  // unequal contiguous partitions must reproduce the serial trajectory.
  const std::vector<std::vector<ShardRange>> layouts = {
      {{0, 1}, {1, 39}, {39, 40}},
      {{0, 37}, {37, 38}, {38, 39}, {39, 40}},
      {{0, 2}, {2, 4}, {4, 8}, {8, 16}, {16, 40}},
  };
  for (const auto& layout : layouts) {
    Workload w1 = MakePaperWorkload(SmallConfig(67));
    Workload w2 = MakePaperWorkload(SmallConfig(67));
    EngineConfig engine_config;
    engine_config.seed = 71;
    ShardedEngineConfig sharded_config;
    sharded_config.engine = engine_config;
    sharded_config.num_shards = static_cast<int>(layout.size());
    AuctionEngine single(engine_config, w1, RoiStrategies(w1));
    ShardedAuctionEngine sharded(sharded_config, w2, RoiStrategies(w2));
    ASSERT_TRUE(sharded.Repartition(layout).ok());
    ASSERT_EQ(sharded.shard_ranges(), layout);
    ExpectBitwiseEquivalent(&single, &sharded, 80);
  }
}

TEST(ShardedEngineTest, MidStreamRepartitionKeepsBitwiseIdentity) {
  // Boundaries move *between* auctions while strategy/account state is live
  // — including a change of shard count — and nothing may drift.
  Workload w1 = MakePaperWorkload(SmallConfig(73));
  Workload w2 = MakePaperWorkload(SmallConfig(73));
  EngineConfig engine_config;
  engine_config.seed = 79;
  ShardedEngineConfig sharded_config;
  sharded_config.engine = engine_config;
  sharded_config.num_shards = 4;
  AuctionEngine single(engine_config, w1, RoiStrategies(w1));
  ShardedAuctionEngine sharded(sharded_config, w2, RoiStrategies(w2));

  ExpectBitwiseEquivalent(&single, &sharded, 40);
  ASSERT_TRUE(sharded.Repartition({{0, 30}, {30, 35}, {35, 40}}).ok());
  ExpectBitwiseEquivalent(&single, &sharded, 40);
  ASSERT_TRUE(
      sharded.Repartition({{0, 5}, {5, 10}, {10, 20}, {20, 32}, {32, 40}})
          .ok());
  ExpectBitwiseEquivalent(&single, &sharded, 40);
  // Collapse to one shard and back out to the tree-merge regime.
  ASSERT_TRUE(sharded.Repartition({{0, 40}}).ok());
  ExpectBitwiseEquivalent(&single, &sharded, 20);
  std::vector<ShardRange> eight;
  for (AdvertiserId s = 0; s < 8; ++s) {
    eight.push_back(ShardRange{s * 5, (s + 1) * 5});
  }
  ASSERT_TRUE(sharded.Repartition(eight).ok());
  ExpectBitwiseEquivalent(&single, &sharded, 40);
}

TEST(ShardedEngineTest, RepartitionPreservesCompiledBids) {
  // Global-id cache keying: moving a boundary must not recompile anything a
  // twin engine with a fixed layout would not also recompile.
  Workload w1 = MakePaperWorkload(SmallConfig(83));
  Workload w2 = MakePaperWorkload(SmallConfig(83));
  ShardedEngineConfig config;
  config.engine.seed = 89;
  config.num_shards = 4;
  ShardedAuctionEngine fixed(config, w1, RoiStrategies(w1));
  ShardedAuctionEngine moving(config, w2, RoiStrategies(w2));
  for (int t = 0; t < 30; ++t) {
    fixed.RunAuction();
    moving.RunAuction();
    if (t % 10 == 9) {
      const AdvertiserId cut = 5 + t % 13;  // 14, 5, 11 over the run
      ASSERT_TRUE(
          moving.Repartition({{0, cut}, {cut, 20}, {20, 40}}).ok());
    }
  }
  // Identical trajectories produce identical table churn; with nothing
  // invalidated by the boundary moves, miss counts must agree exactly.
  EXPECT_EQ(moving.cache_misses(), fixed.cache_misses());
  EXPECT_EQ(moving.cache_hits(), fixed.cache_hits());
}

TEST(ShardedEngineTest, RepartitionRejectsInvalidLayouts) {
  Workload w = MakePaperWorkload(SmallConfig(97));
  ShardedEngineConfig config;
  config.num_shards = 2;
  ShardedAuctionEngine engine(config, w, RoiStrategies(w));
  EXPECT_FALSE(engine.Repartition({}).ok());                       // empty
  EXPECT_FALSE(engine.Repartition({{0, 20}}).ok());                // short
  EXPECT_FALSE(engine.Repartition({{5, 20}, {20, 40}}).ok());      // gap head
  EXPECT_FALSE(engine.Repartition({{0, 20}, {21, 40}}).ok());      // gap mid
  EXPECT_FALSE(engine.Repartition({{0, 20}, {20, 20}, {20, 40}}).ok());
  EXPECT_FALSE(engine.Repartition({{0, 20}, {20, 41}}).ok());      // overrun
  // The failed attempts left the engine usable on its original layout.
  engine.RunAuction();
  EXPECT_EQ(engine.auctions_run(), 1);
}

TEST(ShardedEngineTest, RebalanceShardsEqualizesSkewedCost) {
  // ROI strategies emit roughly uniform work, so seed the skew directly:
  // after enough auctions the cost model has a signal, and a rebalance from
  // a deliberately terrible layout must (a) move boundaries, (b) reduce
  // predicted imbalance, and (c) keep the trajectory bitwise.
  Workload w1 = MakePaperWorkload(SmallConfig(101));
  Workload w2 = MakePaperWorkload(SmallConfig(101));
  EngineConfig engine_config;
  engine_config.seed = 103;
  ShardedEngineConfig sharded_config;
  sharded_config.engine = engine_config;
  sharded_config.num_shards = 4;
  AuctionEngine single(engine_config, w1, RoiStrategies(w1));
  ShardedAuctionEngine sharded(sharded_config, w2, RoiStrategies(w2));

  // A pathological layout: one shard owns nearly everything.
  ASSERT_TRUE(
      sharded.Repartition({{0, 37}, {37, 38}, {38, 39}, {39, 40}}).ok());
  ExpectBitwiseEquivalent(&single, &sharded, 60);
  ASSERT_GT(sharded.cost_model().auctions_sampled(), 0);
  const double before = ShardRebalancer::PredictedImbalance(
      sharded.cost_model().costs(), sharded.shard_ranges());
  ASSERT_GT(before, 1.5);  // the bad layout must actually look bad

  ASSERT_TRUE(sharded.RebalanceShards());
  const double after = ShardRebalancer::PredictedImbalance(
      sharded.cost_model().costs(), sharded.shard_ranges());
  EXPECT_LT(after, before);
  EXPECT_EQ(sharded.num_shards(), 4);
  // Repeating immediately is a no-op: the layout is already balanced.
  EXPECT_FALSE(sharded.RebalanceShards(1.05));
  // And the trajectory is still bitwise after the move.
  ExpectBitwiseEquivalent(&single, &sharded, 60);
}

TEST(ShardedEngineTest, ShardStatsExposeCostAndPhaseTime) {
  Workload w = MakePaperWorkload(SmallConfig(107));
  ShardedEngineConfig config;
  config.num_shards = 4;
  ShardedAuctionEngine engine(config, w, RoiStrategies(w));
  for (int t = 0; t < 20; ++t) engine.RunAuction();
  double total_cost = 0.0;
  for (int s = 0; s < engine.num_shards(); ++s) {
    const auto stats = engine.shard_stats(s);
    EXPECT_GE(stats.capture_ns, 0);
    EXPECT_GE(stats.phase_ns, 0);
    EXPECT_GT(stats.model_cost, 0.0);
    total_cost += stats.model_cost;
  }
  // Repartition owns the layout and restarts the per-shard work clocks.
  ASSERT_TRUE(engine.Repartition({{0, 5}, {5, 40}}).ok());
  EXPECT_EQ(engine.shard_stats(0).capture_ns, 0);
  EXPECT_EQ(engine.shard_stats(1).phase_ns, 0);
  // Per-range partial sums vs one flat pass: same values, different
  // association — equal only up to rounding.
  const double flat_total = engine.cost_model().TotalCost();
  EXPECT_NEAR(total_cost, flat_total, 1e-9 * flat_total);
  EXPECT_EQ(engine.cost_model().auctions_sampled(), 20);
}

TEST(ShardedEngineTest, RejectsMatrixPoolConfiguration) {
  // engine.matrix_pool is the single-engine row-block knob; the sharded
  // engine replaces it with whole-shard tasks and must fail loudly rather
  // than silently ignore it.
  Workload w = MakePaperWorkload(SmallConfig(109));
  ThreadPool pool(2);
  ShardedEngineConfig config;
  config.engine.matrix_pool = &pool;
  config.num_shards = 2;
  auto strategies = RoiStrategies(w);
  EXPECT_DEATH(ShardedAuctionEngine(config, w, std::move(strategies)),
               "matrix_pool");
}

TEST(ShardedEngineTest, ClampsShardCountToPopulation) {
  WorkloadConfig wc = SmallConfig(47);
  wc.num_advertisers = 3;
  Workload w = MakePaperWorkload(wc);
  ShardedEngineConfig config;
  config.num_shards = 16;
  ShardedAuctionEngine engine(config, w, RoiStrategies(w));
  EXPECT_EQ(engine.num_shards(), 3);
  engine.RunAuction();  // must still run cleanly
  EXPECT_EQ(engine.auctions_run(), 1);
}

}  // namespace
}  // namespace ssa
